package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lintkit"
)

// The driver's flag surface (-C, -list, -only, -workers, -json) and
// exit-code contract are process-level behavior: cli.NewObs binds the
// shared observability flags onto the default FlagSet, so the binary is
// exercised end-to-end via os/exec rather than by calling main twice.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

func lintBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "atomlint-test-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "atomlint")
		out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			buildBin = ""
			os.RemoveAll(dir)
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build atomlint: %v", buildErr)
	}
	t.Cleanup(func() {}) // binary shared across tests; removed by TestMain below
	return buildBin
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildBin != "" {
		os.RemoveAll(filepath.Dir(buildBin))
	}
	os.Exit(code)
}

func runLint(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(lintBinary(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return out.String(), errb.String(), exit
}

// findingModule writes a module with exactly one deterministic finding
// (internal/metrics is determinism-scoped but absent from the hotpath
// and aliasing required tables).
func findingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                      "module fixturemod\n\ngo 1.22\n",
		"internal/metrics/metrics.go": "package metrics\n\nimport \"time\"\n\n// Stamp is nondeterministic on purpose.\nfunc Stamp() int64 { return time.Now().Unix() }\n",
	}
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestListFlag(t *testing.T) {
	stdout, _, exit := runLint(t, "-list")
	if exit != lintkit.ExitClean {
		t.Fatalf("-list exit = %d, want 0", exit)
	}
	for _, a := range lintkit.All {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout)
		}
	}
	if n := strings.Count(stdout, "\n"); n != len(lintkit.All) {
		t.Errorf("-list lines = %d, want %d", n, len(lintkit.All))
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	_, stderr, exit := runLint(t, "-only", "nosuch")
	if exit != lintkit.ExitError {
		t.Fatalf("-only nosuch exit = %d, want %d", exit, lintkit.ExitError)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", stderr)
	}
}

func TestChdirFindingsAndOnlyFilter(t *testing.T) {
	dir := findingModule(t)
	stdout, _, exit := runLint(t, "-C", dir)
	if exit != lintkit.ExitFindings {
		t.Fatalf("-C exit = %d, want %d; output:\n%s", exit, lintkit.ExitFindings, stdout)
	}
	if !strings.Contains(stdout, "time.Now") || !strings.Contains(stdout, "finding(s)") {
		t.Errorf("findings output missing diagnostic or summary:\n%s", stdout)
	}

	// Restricting to an analyzer that has nothing to say exits clean.
	stdout, _, exit = runLint(t, "-C", dir, "-only", "locks")
	if exit != lintkit.ExitClean {
		t.Errorf("-only locks exit = %d, want 0; output:\n%s", exit, stdout)
	}
}

func TestLoadErrorExit(t *testing.T) {
	_, _, exit := runLint(t, "-C", t.TempDir())
	if exit != lintkit.ExitError {
		t.Errorf("non-module dir exit = %d, want %d", exit, lintkit.ExitError)
	}
}

func TestJSONFlag(t *testing.T) {
	dir := findingModule(t)
	stdout, _, exit := runLint(t, "-C", dir, "-json")
	if exit != lintkit.ExitFindings {
		t.Fatalf("-json exit = %d, want %d", exit, lintkit.ExitFindings)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Analyzer != "determinism" {
		t.Errorf("-json findings = %+v, want one determinism finding", findings)
	}
}

func TestWorkersByteIdentical(t *testing.T) {
	dir := findingModule(t)
	one, _, exit1 := runLint(t, "-C", dir, "-workers", "1")
	eight, _, exit8 := runLint(t, "-C", dir, "-workers", "8")
	if exit1 != lintkit.ExitFindings || exit8 != lintkit.ExitFindings {
		t.Fatalf("exits = %d/%d, want %d", exit1, exit8, lintkit.ExitFindings)
	}
	if one != eight {
		t.Errorf("-workers 1 and -workers 8 stdout differ:\n--- 1:\n%s--- 8:\n%s", one, eight)
	}
}

func TestVerboseTimings(t *testing.T) {
	dir := findingModule(t)
	_, stderr, _ := runLint(t, "-C", dir, "-v")
	for _, a := range lintkit.All {
		if !strings.Contains(stderr, a.Name) {
			t.Errorf("-v stderr missing per-analyzer timing for %s:\n%s", a.Name, stderr)
		}
	}
}
