// Command atomlint runs the project's static-analysis suite
// (internal/lintkit) over the module: determinism, hotpath, wiresafety,
// locks, aliasing, and lifecycle. It loads every package with the
// standard library's go/parser + go/types only — no external analysis
// frameworks.
//
// Usage:
//
//	atomlint [-C dir] [-only analyzer[,analyzer]] [-workers n] [-json] [packages]
//
// Packages are import-path patterns relative to the module
// ("./...", "./internal/bgp", "repro/internal/mrt/..."); none means the
// whole module. Exit status: 0 clean, 1 findings, 2 load error.
//
// The analyzer×package grid runs on a bounded worker pool (-workers,
// default one per CPU); findings are byte-identical at any worker
// count. -json emits the findings as a JSON array for CI artifacts.
// Under -v the per-analyzer wall time is printed to stderr.
//
// The shared observability flags apply (-trace, -v, -listen, -sample,
// -progress, -trace-out): a lint of a large module can be profiled and
// watched like any pipeline run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lintkit"
)

const tool = "atomlint"

func main() {
	dir := flag.String("C", ".", "module root directory")
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	workers := flag.Int("workers", 0, "concurrent analyzer×package tasks (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI artifacts)")
	o := cli.NewObs(tool)
	flag.Parse()

	if *list {
		for _, a := range lintkit.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lintkit.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range lintkit.All {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "atomlint: unknown analyzer %q\n", name)
				os.Exit(lintkit.ExitError)
			}
		}
	}

	opts := lintkit.Options{Workers: *workers, JSON: *jsonOut}
	if o.Verbose {
		opts.Timings = os.Stderr
	}

	// os.Exit skips defers, so the obs lifecycle brackets the run
	// explicitly: trace/report/trace-out are written before exiting.
	o.Start()
	o.Root.SetAttr("analyzers", len(analyzers))
	o.Root.SetAttr("workers", *workers)
	code := lintkit.MainOpts(os.Stdout, *dir, flag.Args(), analyzers, opts)
	o.Root.SetAttr("exit", code)
	o.Finish()
	os.Exit(code)
}
