// Command atomrepro regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	atomrepro -list
//	atomrepro -run table1,table3 -scale 0.02
//	atomrepro -run all -scale 0.01 -seed 7
//	atomrepro -run figure4 -workers 8
//	atomrepro -run figure4 -listen :0 -sample 1s -progress -trace-out run.trace.json
//
// Every run is deterministic in (-seed, -scale) alone: -workers (the
// pipeline's worker-pool bound, default one per CPU, 1 = sequential)
// changes wall-clock only, never a number. Larger scales approach
// the paper's absolute numbers at the cost of runtime; the default is
// laptop-friendly and preserves every shape comparison.
//
// Long runs can be watched live: -listen serves Prometheus /metrics,
// /healthz, /runreport and pprof for the run's duration (the bound
// address is announced on stderr), -sample feeds runtime health into
// the metrics, -progress streams per-era JSON progress events (with
// throughput and ETA) on stderr, and -trace-out writes a
// Perfetto-loadable trace of the stage tree on exit. None of them
// changes any output number.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/longitudinal"
)

const tool = "atomrepro"

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		run   = flag.String("run", "all", "comma-separated experiment IDs, or all | tables | figures")
		scale = flag.Float64("scale", 0.01, "world scale (1.0 = paper scale)")
		seed  = flag.Uint64("seed", 7, "simulation seed")
		slow  = flag.Bool("wire", false, "use the full MRT wire round-trip instead of the fast path")
	)
	workers := cli.NewWorkers()
	o := cli.NewObs(tool)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	o.Start()
	defer o.Finish()

	cfg := longitudinal.DefaultConfig(*seed)
	cfg.Scale = *scale
	cfg.FastPath = !*slow
	cfg.Workers = *workers
	cfg.Metrics = o.Registry
	cfg.Progress = o.Progress

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "tables", "figures":
		for _, e := range experiments.All() {
			if (*run == "tables") == strings.HasPrefix(e.ID, "table") {
				selected = append(selected, e)
			}
		}
	default:
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		sp := o.Root.Child("experiment")
		sp.SetAttr("id", e.ID)
		ecfg := cfg
		ecfg.Trace = sp // nest each experiment's era/stage spans
		start := time.Now()
		if err := e.Run(ecfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		sp.End()
		fmt.Printf("  [%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
