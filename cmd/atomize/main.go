// Command atomize computes policy atoms from MRT RIB archives (such as
// those gensim writes, or any RFC 6396 TABLE_DUMP_V2 dump) and prints
// the general statistics of Tables 1/4.
//
// Usage:
//
//	atomize [-family 4|6] [-afek2002] [-updates glob] data/*.rib.mrt
//
// The collector name for each archive is derived from the file name
// (everything before the first dot). Update archives, when given, feed
// the abnormal-peer detection (§A8.3) before atom computation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sanitize"
	"repro/internal/textplot"
)

func main() {
	var (
		family    = flag.Int("family", 4, "address family: 4 or 6")
		afek      = flag.Bool("afek2002", false, "use Afek et al.'s 2002 methodology (all prefixes, no filters)")
		updates   = flag.String("updates", "", "glob of update archives for abnormal-peer detection")
		formation = flag.Bool("formation", false, "also print the formation-distance distribution")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: atomize [flags] <rib.mrt>...")
		os.Exit(2)
	}

	sources := loadSources(flag.Args())
	var warnings []bgpstream.Warning
	if *updates != "" {
		paths, err := filepath.Glob(*updates)
		if err != nil {
			fatal(err)
		}
		us := bgpstream.NewStream(nil, loadSources(paths)...)
		if _, err := us.All(); err != nil {
			fatal(err)
		}
		warnings = us.Warnings()
	}

	opts := sanitize.Defaults()
	if *afek {
		opts = sanitize.Afek2002()
	}
	opts.Family = *family
	snap, rep, err := sanitize.Clean(sources, warnings, opts)
	if err != nil {
		fatal(err)
	}
	atoms := core.ComputeAtoms(snap)
	st := atoms.Stats()

	tbl := &textplot.Table{Title: "Policy atom statistics", Headers: []string{"Metric", "Value"}}
	tbl.AddRow("Vantage points", fmt.Sprint(len(snap.VPs)))
	tbl.AddRow("Full feeds", fmt.Sprint(rep.FullFeeds))
	tbl.AddRow("Prefixes admitted", fmt.Sprintf("%d (of %d seen)", rep.PrefixesAdmitted, rep.PrefixesSeen))
	tbl.AddRow("Prefixes", fmt.Sprint(st.Prefixes))
	tbl.AddRow("ASes", fmt.Sprint(st.ASes))
	tbl.AddRow("Atoms", fmt.Sprint(st.Atoms))
	tbl.AddRow("Single-atom ASes", fmt.Sprintf("%d (%.1f%%)", st.SingleAtomASes, 100*float64(st.SingleAtomASes)/float64(max(1, st.ASes))))
	tbl.AddRow("Single-prefix atoms", fmt.Sprintf("%d (%.1f%%)", st.SinglePrefixAtoms, 100*float64(st.SinglePrefixAtoms)/float64(max(1, st.Atoms))))
	tbl.AddRow("Mean atom size", fmt.Sprintf("%.2f", st.MeanAtomSize))
	tbl.AddRow("99th pct atom size", fmt.Sprint(st.P99AtomSize))
	tbl.AddRow("Largest atom", fmt.Sprint(st.LargestAtom))
	tbl.AddRow("MOAS prefixes", fmt.Sprintf("%d (%.2f%%)", st.MOASPrefixes, 100*float64(st.MOASPrefixes)/float64(max(1, st.Prefixes))))
	tbl.Render(os.Stdout)

	if len(rep.RemovedPeerASes) > 0 {
		fmt.Println("\nRemoved abnormal peer ASes:")
		for asn, reason := range rep.RemovedPeerASes {
			fmt.Printf("  AS%-8d %s\n", asn, reason)
		}
	}
	if *formation {
		res := metrics.FormationDistances(atoms, metrics.DefaultFormationOptions())
		ftbl := &textplot.Table{Title: "\nFormation distances", Headers: []string{"distance", "atoms", "share"}}
		for d := 1; d < len(res.AtomsAtDistance); d++ {
			if res.AtomsAtDistance[d] == 0 {
				continue
			}
			ftbl.AddRow(fmt.Sprint(d), fmt.Sprint(res.AtomsAtDistance[d]),
				textplot.Percent(float64(res.AtomsAtDistance[d])/float64(max(1, res.TotalAtoms))))
		}
		ftbl.Render(os.Stdout)
	}
}

func loadSources(paths []string) []bgpstream.Source {
	var out []bgpstream.Source
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		name := filepath.Base(p)
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[:i]
		}
		out = append(out, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomize:", err)
	os.Exit(1)
}
