// Command atomize computes policy atoms from MRT RIB archives (such as
// those gensim writes, or any RFC 6396 TABLE_DUMP_V2 dump) and prints
// the general statistics of Tables 1/4.
//
// Usage:
//
//	atomize [-family 4|6] [-afek2002] [-updates glob] [-replay] [-workers n] [-trace out.json] [-v] data/*.rib.mrt
//
// The collector name for each archive is derived from the file name
// (everything before the first dot). -workers bounds the worker pool
// for sanitization and atom grouping (default one per CPU, 1 =
// sequential); output is identical at any value. Update archives, when given, feed
// the abnormal-peer detection (§A8.3) before atom computation; archives
// that match the glob but decode zero elements are reported, since a
// bad glob would otherwise silently disable the detection.
//
// -replay (requires -updates) churn-replays the update archives into
// the snapshot through the incremental core.AtomIndex: every
// announce/withdraw re-buckets just the touched prefix row, -workers
// parallelizes the decode while deltas apply in the stream's
// deterministic serve order, and the post-replay atom statistics are
// printed next to the replay accounting. -replay-verify additionally
// recomputes atoms from scratch on the final matrix and fails loudly
// if the incrementally maintained partition differs — the CLI face of
// the differential harness.
//
// -trace writes a JSON run report (stage span tree + stream/sanitize
// counters); -v prints the same report as a text tree on stderr;
// -cpuprofile / -memprofile capture pprof profiles. The live flags
// work here too: -listen serves /metrics, /healthz, /runreport and
// pprof while the run lasts, -sample feeds runtime health into the
// registry, and -trace-out writes a Perfetto-loadable trace on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bgpstream"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/sanitize"
	"repro/internal/textplot"
)

const tool = "atomize"

func main() {
	var (
		family    = flag.Int("family", 4, "address family: 4 or 6")
		afek      = flag.Bool("afek2002", false, "use Afek et al.'s 2002 methodology (all prefixes, no filters)")
		updates   = flag.String("updates", "", "glob of update archives for abnormal-peer detection")
		formation = flag.Bool("formation", false, "also print the formation-distance distribution")
		replayOn  = flag.Bool("replay", false, "churn-replay the -updates archives through the incremental atom index")
		replayVfy = flag.Bool("replay-verify", false, "after -replay, recompute atoms from scratch and fail on any difference")
	)
	workers := cli.NewWorkers()
	o := cli.NewObs(tool)
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Usage("atomize [flags] <rib.mrt>...")
	}
	o.Start()
	defer o.Finish()

	lsp := o.Root.Child("load")
	sources := cli.LoadSources(tool, flag.Args())
	lsp.SetAttr("rib_archives", len(sources))
	lsp.End()

	if *replayOn && *updates == "" {
		cli.Fatal(tool, fmt.Errorf("-replay requires -updates (the archives to replay)"))
	}
	var warnings []bgpstream.Warning
	var flaps map[uint32]int
	var quarantined []string
	var updSources []bgpstream.Source
	if *updates != "" {
		usp := o.Root.Child("updates")
		paths, err := filepath.Glob(*updates)
		if err != nil {
			cli.Fatal(tool, err)
		}
		if len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "%s: warning: -updates glob %q matched no files; abnormal-peer detection disabled\n", tool, *updates)
			o.Registry.Counter("atomize.empty_update_archives").Inc()
		}
		// Byte-backed sources are reusable across streams: the same
		// slice feeds both the abnormal-peer scan and -replay.
		updSources = cli.LoadSources(tool, paths)
		us := bgpstream.NewStream(nil, updSources...)
		us.SetMetrics(o.Registry)
		us.SetWorkers(*workers)
		if _, err := us.All(); err != nil {
			cli.Fatal(tool, err)
		}
		warnings = us.Warnings()
		flaps = us.StateFlaps()
		quarantined = us.Quarantined()
		for _, name := range quarantined {
			fmt.Fprintf(os.Stderr, "%s: warning: update archive %q quarantined (degradation budget exceeded)\n", tool, name)
		}
		// An archive that matched the glob but decoded nothing
		// contributes no warnings — and therefore silently weakens the
		// §A8.3 abnormal-peer detection. Surface it.
		empty := 0
		for collector, n := range us.SourceElemCounts() {
			if n == 0 {
				empty++
				fmt.Fprintf(os.Stderr, "%s: warning: update archive %q decoded zero elements\n", tool, collector)
				o.Registry.Counter("atomize.empty_update_archives").Inc()
			}
		}
		usp.SetAttr("archives", len(paths))
		usp.SetAttr("warnings", len(warnings))
		usp.SetAttr("empty_archives", empty)
		usp.End()
	}

	opts := sanitize.Defaults()
	if *afek {
		opts = sanitize.Afek2002()
	}
	opts.Family = *family
	opts.Workers = *workers
	opts.Span = o.Root
	opts.Metrics = o.Registry
	opts.SessionFlaps = flaps
	if len(quarantined) > 0 {
		opts.QuarantinedCollectors = map[string]bool{}
		for _, name := range quarantined {
			opts.QuarantinedCollectors[name] = true
		}
	}
	snap, rep, err := sanitize.Clean(sources, warnings, opts)
	if err != nil {
		cli.Fatal(tool, err)
	}
	atoms := core.ComputeAtomsSpanWorkers(snap, o.Root, *workers)

	ssp := o.Root.Child("stats")
	st := atoms.Stats()
	ssp.End()

	tbl := &textplot.Table{Title: "Policy atom statistics", Headers: []string{"Metric", "Value"}}
	tbl.AddRow("Vantage points", fmt.Sprint(len(snap.VPs)))
	tbl.AddRow("Full feeds", fmt.Sprint(rep.FullFeeds))
	tbl.AddRow("Prefixes admitted", fmt.Sprintf("%d (of %d seen)", rep.PrefixesAdmitted, rep.PrefixesSeen))
	tbl.AddRow("Prefixes", fmt.Sprint(st.Prefixes))
	tbl.AddRow("ASes", fmt.Sprint(st.ASes))
	tbl.AddRow("Atoms", fmt.Sprint(st.Atoms))
	tbl.AddRow("Single-atom ASes", fmt.Sprintf("%d (%.1f%%)", st.SingleAtomASes, 100*float64(st.SingleAtomASes)/float64(max(1, st.ASes))))
	tbl.AddRow("Single-prefix atoms", fmt.Sprintf("%d (%.1f%%)", st.SinglePrefixAtoms, 100*float64(st.SinglePrefixAtoms)/float64(max(1, st.Atoms))))
	tbl.AddRow("Mean atom size", fmt.Sprintf("%.2f", st.MeanAtomSize))
	tbl.AddRow("99th pct atom size", fmt.Sprint(st.P99AtomSize))
	tbl.AddRow("Largest atom", fmt.Sprint(st.LargestAtom))
	tbl.AddRow("MOAS prefixes", fmt.Sprintf("%d (%.2f%%)", st.MOASPrefixes, 100*float64(st.MOASPrefixes)/float64(max(1, st.Prefixes))))
	if len(rep.QuarantinedCollectors) > 0 {
		tbl.AddRow("Quarantined collectors", fmt.Sprintf("%d (%d feeds)", len(rep.QuarantinedCollectors), rep.QuarantinedFeeds))
	}
	tbl.Render(os.Stdout)

	if len(rep.RemovedPeerASes) > 0 {
		fmt.Println("\nRemoved abnormal peer ASes:")
		// Sorted: map iteration order would vary run to run.
		asns := make([]uint32, 0, len(rep.RemovedPeerASes))
		for asn := range rep.RemovedPeerASes {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			fmt.Printf("  AS%-8d %s\n", asn, rep.RemovedPeerASes[asn])
		}
	}
	if *formation {
		res := metrics.FormationDistancesSpan(atoms, metrics.DefaultFormationOptions(), o.Root)
		ftbl := &textplot.Table{Title: "\nFormation distances", Headers: []string{"distance", "atoms", "share"}}
		for d := 1; d < len(res.AtomsAtDistance); d++ {
			if res.AtomsAtDistance[d] == 0 {
				continue
			}
			ftbl.AddRow(fmt.Sprint(d), fmt.Sprint(res.AtomsAtDistance[d]),
				textplot.Percent(float64(res.AtomsAtDistance[d])/float64(max(1, res.TotalAtoms))))
		}
		ftbl.Render(os.Stdout)
	}

	if *replayOn {
		ix := core.NewAtomIndex(snap)
		rst, err := replay.Run(ix, updSources, replay.Options{
			Workers:  *workers,
			Metrics:  o.Registry,
			Span:     o.Root,
			Progress: o.Progress,
		})
		if err != nil {
			cli.Fatal(tool, err)
		}
		for _, name := range rst.Quarantined {
			fmt.Fprintf(os.Stderr, "%s: warning: replay source %q quarantined (degradation budget exceeded)\n", tool, name)
		}
		rtbl := &textplot.Table{Title: "\nChurn replay", Headers: []string{"Metric", "Value"}}
		rtbl.AddRow("Elements", fmt.Sprint(rst.Elems))
		rtbl.AddRow("Deltas applied", fmt.Sprint(rst.Applied))
		rtbl.AddRow("Duplicate no-ops", fmt.Sprint(rst.NoOps))
		rtbl.AddRow("Atoms created", fmt.Sprint(rst.Created))
		rtbl.AddRow("Atoms retired", fmt.Sprint(rst.Retired))
		rtbl.AddRow("Skipped (prefix not admitted)", fmt.Sprint(rst.SkippedPrefix))
		rtbl.AddRow("Skipped (peer not a VP)", fmt.Sprint(rst.SkippedVP))
		rtbl.AddRow("Skipped (unusable path)", fmt.Sprint(rst.SkippedUnusable))
		rtbl.AddRow("Skipped (non-route element)", fmt.Sprint(rst.SkippedType))
		rtbl.AddRow("Stream warnings", fmt.Sprint(rst.Warnings))
		rtbl.AddRow("Atoms before replay", fmt.Sprint(st.Atoms))
		rtbl.AddRow("Atoms after replay", fmt.Sprint(ix.AtomCount()))
		rtbl.Render(os.Stdout)

		if *replayVfy {
			vsp := o.Root.Child("replay_verify")
			inc := ix.Materialize(*workers)
			bat := core.ComputeAtomsWorkers(snap, *workers)
			vsp.End()
			if !sameAtoms(inc, bat) {
				cli.Fatal(tool, fmt.Errorf("replay verify: incremental partition differs from batch recompute on the final snapshot"))
			}
			fmt.Println("\nReplay verify: incremental == batch on the final snapshot")
		}
	}
}

// sameAtoms reports whether two atom sets over the same snapshot (and
// hence the same intern table, so raw IDs are comparable) describe the
// same partition.
func sameAtoms(a, b *core.AtomSet) bool {
	if len(a.Atoms) != len(b.Atoms) || len(a.ByPrefix) != len(b.ByPrefix) {
		return false
	}
	for i := range a.ByPrefix {
		if a.ByPrefix[i] != b.ByPrefix[i] {
			return false
		}
	}
	for i := range a.Atoms {
		x, y := &a.Atoms[i], &b.Atoms[i]
		if x.ID != y.ID || x.Origin != y.Origin || x.MOASConflict != y.MOASConflict ||
			len(x.Prefixes) != len(y.Prefixes) || len(x.Vector) != len(y.Vector) {
			return false
		}
		for j := range x.Prefixes {
			if x.Prefixes[j] != y.Prefixes[j] {
				return false
			}
		}
		for j := range x.Vector {
			if x.Vector[j] != y.Vector[j] {
				return false
			}
		}
	}
	return true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
