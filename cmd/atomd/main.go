// atomd serves the atom partition live: it bootstraps the serving
// universe from RIB archives (the sanitize pipeline, exactly as
// atomize), then accepts per-collector update streams on the ingest
// port and answers point queries — SameAtom, MemberCount, prefix→atom,
// materialized snapshots — over HTTP (/atoms on the -listen debug
// server) and the binary query port, while the resident AtomIndex
// re-buckets each update in O(row). SIGINT/SIGTERM drains every
// session and exits cleanly.
//
// Usage:
//
//	atomd [flags] rib.mrt ...
//
// Quick start:
//
//	atomd -listen 127.0.0.1:8280 -ingest 127.0.0.1:8264 \
//	      -query 127.0.0.1:8265 rrc00.rib.mrt route-views2.rib.mrt
//	curl 'http://127.0.0.1:8280/atoms/epoch'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atomd"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/sanitize"
)

const tool = "atomd"

func main() {
	workers := cli.NewWorkers()
	ingest := flag.String("ingest", "127.0.0.1:0", "TCP `addr` for per-collector ingest sessions")
	query := flag.String("query", "127.0.0.1:0", "TCP `addr` for the binary query port")
	family := flag.Int("family", 4, "address family to admit (4 or 6)")
	o := cli.NewObs(tool)
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Usage("atomd [flags] rib.mrt ...")
	}
	if o.Listen == "" {
		// The daemon's whole point is being queried; always expose the
		// HTTP surface even when the operator gave no -listen.
		o.Listen = "127.0.0.1:0"
	}
	// Pre-seed the registry so the server's instruments land on the
	// same registry the debug server scrapes.
	o.Registry = obs.NewRegistry()

	sources := cli.LoadSources(tool, flag.Args())
	opts := sanitize.Defaults()
	opts.Family = *family
	opts.Workers = *workers
	opts.Metrics = o.Registry
	snap, rep, err := sanitize.Clean(sources, nil, opts)
	if err != nil {
		cli.Fatal(tool, err)
	}

	srv, err := atomd.NewServer(atomd.Config{
		Snapshot:   snap,
		IngestAddr: *ingest,
		QueryAddr:  *query,
		Workers:    *workers,
		Metrics:    o.Registry,
	})
	if err != nil {
		cli.Fatal(tool, err)
	}
	o.ExtraMux = srv.RegisterHTTP
	o.Start()
	defer o.Finish()

	fmt.Fprintf(os.Stderr, "%s: serving %d prefixes x %d vps (%d admitted of %d seen), %d atoms at epoch 0\n",
		tool, srv.PrefixCount(), len(snap.VPs), rep.PrefixesAdmitted, rep.PrefixesSeen, srv.AtomCount())
	fmt.Fprintf(os.Stderr, "%s: ingest on %s, binary queries on %s\n", tool, srv.Addr(), srv.QueryAddr())

	done := make(chan struct{})
	stop := cli.OnSignal(func() {
		fmt.Fprintf(os.Stderr, "%s: draining ingest sessions\n", tool)
		srv.Shutdown()
		close(done)
	})
	defer stop()
	<-done

	st := srv.DeltaStats()
	fmt.Fprintf(os.Stderr, "%s: drained at epoch %d: %d updates (%d applied, %d no-ops), %d atoms\n",
		tool, srv.Epoch(), st.Updates, st.Applied, st.NoOps, srv.AtomCount())
	for _, src := range srv.IngestStats() {
		fmt.Fprintf(os.Stderr, "%s:   %s: %d sessions, %d bytes, %d elems, %d applied\n",
			tool, src.Collector, src.Sessions, src.Bytes, src.Elems, src.Applied)
	}
	if quar := srv.Quarantined(); len(quar) > 0 {
		fmt.Fprintf(os.Stderr, "%s: quarantined: %v\n", tool, quar)
	}
}
