// Command gensim synthesizes MRT archives — TABLE_DUMP_V2 RIB dumps and
// BGP4MP update streams — for one era of the simulated Internet, in the
// same wire format RIPE RIS and RouteViews publish.
//
// Usage:
//
//	gensim -out ./data -year 2024 -quarter 4 -scale 0.01 -seed 7 [-workers n] [-trace out.json] [-v]
//
// Writes one <collector>.rib.mrt and one <collector>.updates.mrt file
// per simulated collector. Output depends only on (-seed, -scale,
// -year, -quarter); -workers trades wall-clock for cores, and the
// shared observability flags (-trace, -v, -listen, -sample, -progress,
// -trace-out) expose the run without changing a byte of it.
//
// With -faults, gensim additionally writes seeded-corrupt copies of
// every archive under <out>/faulted/, plus faults.schedule — the
// canonical fault plan (see internal/faultgen). The damaged set depends
// only on (-fault-seed, the clean archives, the class list), so a
// failing downstream run is reproducible from the flags alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/collector"
	"repro/internal/faultgen"
	"repro/internal/longitudinal"
	"repro/internal/topology"

	"repro/internal/cli"
)

const tool = "gensim"

func main() {
	var (
		out       = flag.String("out", "./data", "output directory")
		year      = flag.Int("year", 2024, "snapshot year (2002-2024)")
		quarter   = flag.Int("quarter", 1, "snapshot quarter (1-4)")
		scale     = flag.Float64("scale", 0.01, "world scale (1.0 = paper scale)")
		seed      = flag.Uint64("seed", 7, "simulation seed")
		hours     = flag.Float64("update-hours", 4, "hours of updates after the snapshot")
		artifacts = flag.Bool("artifacts", true, "inject the paper's data defects (ADD-PATH, AS65000, duplicates)")
		faults    = flag.String("faults", "", "also emit fault-injected archives: comma-separated class list, or \"all\"")
		faultSeed = flag.Uint64("fault-seed", 1, "fault schedule seed (independent of -seed)")
		faultsPer = flag.Int("faults-per-archive", 1, "faults of each class planned per archive")
	)
	workers := cli.NewWorkers()
	o := cli.NewObs(tool)
	flag.Parse()
	o.Start()
	defer o.Finish()

	era := topology.EraOf(*year, *quarter)
	cfg := longitudinal.DefaultConfig(*seed)
	cfg.Scale = *scale
	cfg.Artifacts = *artifacts
	cfg.Workers = *workers
	cfg.Trace = o.Root
	cfg.Metrics = o.Registry
	cfg.Progress = o.Progress
	r := longitudinal.NewEraRun(cfg, era)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		cli.Fatal(tool, err)
	}

	rsp := o.Root.Child("build_ribs")
	ts := collector.EpochOf(era)
	ov := r.Model.OverlayAt(r.Graph, longitudinal.OffsetBase, r.Infra.FullFeedASNs())
	snap := collector.BuildRIBs(r.Graph, r.Infra, ov, ts)
	archives := make(map[string][]byte)
	total := 0
	for name, data := range snap.Archives {
		path := filepath.Join(*out, name+".rib.mrt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			cli.Fatal(tool, err)
		}
		archives[name+".rib.mrt"] = data
		total += len(data)
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	rsp.SetAttr("archives", len(snap.Archives))
	rsp.SetAttr("bytes", total)
	rsp.End()

	usp := o.Root.Child("build_updates")
	ucfg := collector.UpdateConfig{
		Model:           r.Model,
		FromT:           longitudinal.OffsetBase,
		ToT:             longitudinal.OffsetBase + *hours/24,
		BaseTime:        ts,
		FullMessageProb: cfg.FullMessageProb.At(era),
		FlapRate:        cfg.FlapRate.At(era),
	}
	updates := collector.BuildUpdates(r.Graph, r.Infra, ucfg)
	updateBytes := 0
	for name, data := range updates {
		path := filepath.Join(*out, name+".updates.mrt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			cli.Fatal(tool, err)
		}
		archives[name+".updates.mrt"] = data
		total += len(data)
		updateBytes += len(data)
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	usp.SetAttr("archives", len(updates))
	usp.SetAttr("bytes", updateBytes)
	usp.End()

	if *faults != "" {
		classes, err := faultgen.ParseClasses(*faults)
		if err != nil {
			cli.Fatal(tool, err)
		}
		fsp := o.Root.Child("inject_faults")
		sched, err := faultgen.Plan(faultgen.Config{
			Seed:             *faultSeed,
			Classes:          classes,
			FaultsPerArchive: *faultsPer,
		}, archives)
		if err != nil {
			cli.Fatal(tool, err)
		}
		damaged, err := faultgen.Apply(sched, archives)
		if err != nil {
			cli.Fatal(tool, err)
		}
		fdir := filepath.Join(*out, "faulted")
		if err := os.MkdirAll(fdir, 0o755); err != nil {
			cli.Fatal(tool, err)
		}
		faultBytes := 0
		for name, data := range damaged {
			path := filepath.Join(fdir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				cli.Fatal(tool, err)
			}
			faultBytes += len(data)
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
		}
		schedPath := filepath.Join(fdir, "faults.schedule")
		if err := os.WriteFile(schedPath, sched.Marshal(), 0o644); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Printf("wrote %s (%d faults)\n", schedPath, len(sched.Faults))
		fsp.SetAttr("faults", len(sched.Faults))
		fsp.SetAttr("bytes", faultBytes)
		fsp.End()
	}

	v4, v6 := r.Graph.TotalPrefixes()
	fmt.Printf("era %v: %d ASes, %d v4 + %d v6 prefixes, %d collectors, %d full feeds, %d bytes total\n",
		era, r.Graph.NumASes(), v4, v6, len(r.Infra.Collectors), len(r.Infra.FullFeedASNs()), total)
}
