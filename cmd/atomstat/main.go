// Command atomstat prints the data-sanitization diagnostics of §2.4 for
// MRT RIB archives: per-feed table sizes, full-feed inference, the
// prefix admission funnel, and the visibility-threshold sensitivity
// grid (Table 7).
//
// Usage:
//
//	atomstat [-family 4|6] [-grid] [-workers n] [-trace out.json] [-v] data/*.rib.mrt
//
// -workers bounds the sanitization worker pool (default one per CPU,
// 1 = sequential); the report is identical at any value. The shared
// observability flags apply (-trace, -v, -listen, -sample, -trace-out).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/sanitize"
	"repro/internal/textplot"
)

const tool = "atomstat"

func main() {
	var (
		family = flag.Int("family", 4, "address family: 4 or 6")
		grid   = flag.Bool("grid", false, "print the Table 7 threshold sensitivity grid")
	)
	workers := cli.NewWorkers()
	o := cli.NewObs(tool)
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Usage("atomstat [flags] <rib.mrt>...")
	}
	o.Start()
	defer o.Finish()

	lsp := o.Root.Child("load")
	sources := cli.LoadSources(tool, flag.Args())
	lsp.SetAttr("rib_archives", len(sources))
	lsp.End()

	opts := sanitize.Defaults()
	opts.Family = *family
	opts.Workers = *workers
	opts.Span = o.Root
	opts.Metrics = o.Registry
	_, rep, err := sanitize.Clean(sources, nil, opts)
	if err != nil {
		cli.Fatal(tool, err)
	}

	feeds := &textplot.Table{Title: "Feeds", Headers: []string{"vantage point", "prefixes", "dups", "priv-asn", "as-set", "loops", "full?"}}
	for _, f := range rep.Feeds {
		feeds.AddRow(f.VP.String(), fmt.Sprint(f.UniquePrefixes), fmt.Sprint(f.Duplicates),
			fmt.Sprint(f.PrivateASN), fmt.Sprint(f.ASSetDropped), fmt.Sprint(f.LoopDropped),
			fmt.Sprint(f.FullFeed))
	}
	feeds.Render(os.Stdout)

	fmt.Printf("\nFull-feed inference: max table %d, threshold %d (90%%), %d full feeds\n",
		rep.MaxPrefixCount, rep.FullFeedThreshold, rep.FullFeeds)
	fmt.Printf("Prefix funnel: %d seen -> %d admitted (length %d, <2 collectors %d, <4 peer ASes %d)\n",
		rep.PrefixesSeen, rep.PrefixesAdmitted, rep.DroppedByLength, rep.DroppedByCollector, rep.DroppedByPeerASes)
	fmt.Printf("MOAS prefixes among admitted: %d\n", rep.MOASPrefixes)
	// Sorted: map iteration order would vary run to run.
	asns := make([]uint32, 0, len(rep.RemovedPeerASes))
	for asn := range rep.RemovedPeerASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		fmt.Printf("removed peer AS%d: %s\n", asn, rep.RemovedPeerASes[asn])
	}

	if *grid {
		gsp := o.Root.Child("visibility_grid")
		gopts := opts
		gopts.Span = gsp // nest the sweep's second pipeline pass
		vis, err := sanitize.VisibilityIndex(sources, nil, gopts)
		if err != nil {
			cli.Fatal(tool, err)
		}
		gsp.End()
		tbl := &textplot.Table{Title: "\nTable 7 sensitivity grid", Headers: []string{"collectors \\ peers", "1", "2", "3", "4", "5"}}
		for c := 1; c <= 3; c++ {
			row := []string{fmt.Sprint(c)}
			for a := 1; a <= 5; a++ {
				row = append(row, fmt.Sprint(vis.Count(c, a)))
			}
			tbl.AddRow(row...)
		}
		tbl.Render(os.Stdout)
	}
}
