// Golden end-to-end fixture for the atomd daemon: boot from the golden
// RIB archives, stream the golden update archives through real TCP
// ingest sessions, then pin every query surface — the HTTP JSON
// bodies, the binary query-port replies, the ingest ledger, and the
// materialized snapshot text — byte-for-byte in testdata/golden/
// atomd.txt. Any change to the wire protocol, the decode path, the
// apply loop, or the render format fails here and must be re-pinned
// deliberately with:
//
//	go test -run TestGoldenAtomd -update
package repro

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/atomd"
	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/faultgen/harness"
	"repro/internal/sanitize"
)

func TestGoldenAtomd(t *testing.T) {
	cfg := goldenConfig()
	w := harness.BuildWorld(cfg)

	ribNames := make([]string, 0, len(w.Ribs))
	for name := range w.Ribs {
		ribNames = append(ribNames, name)
	}
	sort.Strings(ribNames)
	var ribs []bgpstream.Source
	for _, name := range ribNames {
		ribs = append(ribs, bgpstream.BytesSource(name, w.Ribs[name], bgp.Options{}))
	}
	opts := sanitize.Defaults()
	opts.Family = 4 // cmd/atomd's default
	snap, _, err := sanitize.Clean(ribs, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := atomd.NewServer(atomd.Config{Snapshot: snap, Workers: cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	mux := http.NewServeMux()
	srv.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Sequential per-collector sessions: flush boundaries depend only on
	// each session's own byte stream, so the ledger and epoch are
	// deterministic.
	updNames := make([]string, 0, len(w.Upds))
	for name := range w.Upds {
		updNames = append(updNames, name)
	}
	sort.Strings(updNames)
	for _, name := range updNames {
		c, err := atomd.Dial(srv.Addr(), name)
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		if err := c.Send(w.Upds[name]); err != nil {
			t.Fatalf("send %s: %v", name, err)
		}
		if err := c.Drain(); err != nil {
			t.Fatalf("drain %s: %v", name, err)
		}
		c.Close()
	}

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "golden atomd v1\n")
	fmt.Fprintf(&b, "scenario topo=%d scale=%g era=%dQ%d collectors=%d\n",
		cfg.TopoSeed, cfg.Scale, cfg.Year, cfg.Quarter, cfg.Collectors)

	pfx := snap.Prefixes[0]
	fmt.Fprintf(&b, "http /atoms/epoch %s", get("/atoms/epoch"))
	fmt.Fprintf(&b, "http /atoms/sameatom?p=0&q=1 %s", get("/atoms/sameatom?p=0&q=1"))
	fmt.Fprintf(&b, "http /atoms/membercount?p=0 %s", get("/atoms/membercount?p=0"))
	fmt.Fprintf(&b, "http /atoms/prefix?prefix=%s %s", pfx, get("/atoms/prefix?prefix="+pfx.String()))
	fmt.Fprintf(&b, "http /atoms/ingest %s", get("/atoms/ingest"))

	qc, err := atomd.DialQuery(srv.QueryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	epoch, atoms, prefixes, err := qc.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "binary epoch %d atoms %d prefixes %d\n", epoch, atoms, prefixes)
	same, _, err := qc.SameAtom(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "binary sameatom 0 1 %v\n", same)
	count, _, err := qc.MemberCount(0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "binary membercount 0 %d\n", count)
	row, atom, count, _, err := qc.PrefixAtom(pfx)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "binary prefixatom %s row %d atom %d count %d\n", pfx, row, atom, count)

	fmt.Fprintf(&b, "snapshot:\n%s", get("/atoms/snapshot?workers=1"))
	checkGolden(t, "atomd.txt", []byte(b.String()))
}
