// Package repro is a from-scratch Go reproduction of "Replication: A Two
// Decade Review of Policy Atoms — Tracing the Evolution of AS Path
// Sharing Prefixes" (Wu, Bischof, Testart, Dainotti; IMC 2025).
//
// A policy atom is a maximal group of prefixes that share the same AS
// path at every BGP vantage point. The paper recomputes atoms over 20+
// years of RIPE RIS / RouteViews data with a modernized sanitization
// methodology and re-runs the four analyses of Afek et al. (2002):
// general statistics, update-record correlation, formation distance,
// and stability — for IPv4 and IPv6.
//
// This module rebuilds the entire measurement stack with the standard
// library only: an MRT (RFC 6396/8050) codec, a BGP UPDATE (RFC
// 4271/4760/6793/7911) codec, a BGPStream-like element layer, a
// Gao-Rexford policy-routing simulator over a generated 2004–2024
// Internet, a collector infrastructure with deliberate data defects,
// the paper's §2.4 sanitization pipeline, atom computation, the four
// analyses, and an experiment harness that regenerates every table and
// figure. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
//
// Start with:
//
//	go run ./examples/quickstart
//	go run ./cmd/atomrepro -list
package repro
