// Benchmarks: one per table and figure of the paper's evaluation (see
// DESIGN.md's experiment index). Each benchmark drives the code path
// that regenerates the corresponding artifact at a small, fixed scale,
// so `go test -bench . -benchmem` exercises and times the whole
// reproduction surface.
//
// Scales are deliberately small (benchmarks measure the machinery, not
// the Internet); `cmd/atomrepro -scale` runs the full-size versions.
package repro

import (
	"fmt"
	"io"
	"math"
	"net/netip"
	"sort"
	"testing"
	"time"

	"repro/internal/aspath"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/prefixset"
	"repro/internal/topology"
)

// benchConfig is the shared tiny-scale configuration.
func benchConfig() longitudinal.Config {
	cfg := longitudinal.DefaultConfig(7)
	cfg.Scale = 0.004
	return cfg
}

// runExperiment benches one experiment end to end.
func runExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables ---

func BenchmarkTable1GeneralStats(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkTable2FormationDistance(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkTable3Stability(b *testing.B)          { runExperiment(b, "table3") }
func BenchmarkTable4IPv6Stats(b *testing.B)          { runExperiment(b, "table4") }
func BenchmarkTable5AbnormalPeers(b *testing.B)      { runExperiment(b, "table5") }
func BenchmarkTable6Repro2002Stability(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7Sensitivity(b *testing.B)        { runExperiment(b, "table7") }

// --- Figures ---

func BenchmarkFig1FormationMethods(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkFig2Distributions(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig3UpdateCorrelation(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig4FormationTrend(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig5StabilityTrend(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6SplitObservers(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7SplitBreakdown(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8IPv6Distributions(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9IPv6StabilityTrend(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10IPv6UpdateCorr(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11IPv6FormationTrend(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12FullFeedThreshold(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkFig13FullFeedPeers(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14Repro2002Stats(b *testing.B)      { runExperiment(b, "fig14") }
func BenchmarkFig15Repro2002UpdateCorr(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16SplitBreakdownFull(b *testing.B)  { runExperiment(b, "fig16") }

// Ablation experiments (DESIGN.md design choices).

func BenchmarkAblationSanitize(b *testing.B)          { runExperiment(b, "ablation-sanitize") }
func BenchmarkAblationFormationSampling(b *testing.B) { runExperiment(b, "ablation-sampling") }

// --- Ablations and core micro-benchmarks (DESIGN.md design choices) ---

// BenchmarkAtomComputation isolates the core contribution: grouping a
// sanitized snapshot's route matrix into atoms.
func BenchmarkAtomComputation(b *testing.B) {
	r := longitudinal.NewEraRun(benchConfig(), topology.EraOf(2024, 4))
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		b.Fatal(err)
	}
	snap := atoms.Snap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeAtoms(snap)
	}
}

// churnOp is one pre-decoded delta: route (prefix row p, VP column v)
// becomes id.
type churnOp struct {
	p, v int
	id   aspath.ID
}

// decodeChurnOps decodes the era's standard update window and maps each
// element onto the snapshot's matrix — the same mapping replay.Run
// performs — once, outside any benchmark timer, so the timed loop below
// measures only the delta kernel.
func decodeChurnOps(b *testing.B, r *longitudinal.EraRun, snap *core.Snapshot) []churnOp {
	b.Helper()
	prefixRow := make(map[netip.Prefix]int, len(snap.Prefixes))
	for i, p := range snap.Prefixes {
		prefixRow[prefixset.Canonical(p)] = i
	}
	vpCol := make(map[core.VP]int, len(snap.VPs))
	for i, vp := range snap.VPs {
		vpCol[vp] = i
	}
	sources := r.UpdateSources(longitudinal.OffsetBase, longitudinal.OffsetBase+longitudinal.UpdateHours)
	st := bgpstream.NewStream(&bgpstream.Filter{V4Only: true}, sources...)
	st.SetIntern(snap.Paths)
	var ops []churnOp
	for {
		e, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		var id aspath.ID
		switch e.Type {
		case bgpstream.ElemAnnounce, bgpstream.ElemRIB:
			if e.PathUnusable {
				continue
			}
			id = e.InternedPath
		case bgpstream.ElemWithdraw:
			id = aspath.Empty
		default:
			continue
		}
		p, ok := prefixRow[prefixset.Canonical(e.Prefix)]
		if !ok {
			continue
		}
		v, ok := vpCol[core.VP{Collector: e.Collector, ASN: e.PeerASN}]
		if !ok {
			continue
		}
		ops = append(ops, churnOp{p: p, v: v, id: id})
	}
	return ops
}

// BenchmarkChurnReplay measures incremental atom maintenance against
// the same era snapshot BenchmarkAtomComputation recomputes from
// scratch: the standard 4-hour update window is decoded and mapped once
// outside the timer, then its deltas cycle through a warm AtomIndex
// while every ApplyUpdate is individually stamped. Reported metrics:
//
//   - updates/s — sustained delta application rate (kernel only;
//     decode is excluded by construction);
//   - p99_rebucket_ns — nearest-rank 99th percentile of one
//     ApplyUpdate. The replay bar is p99 ≥100× under
//     BenchmarkAtomComputation's ns/op: an update's worst common case
//     must beat recomputing the partition by two orders of magnitude.
//
// The op mix is the real stream's — announces, withdrawals, and the
// duplicates that no-op — so the distribution reflects replay, not a
// synthetic best case. Steady state allocates nothing (the warm-up
// pass brings free lists and the bucket table to high water first).
func BenchmarkChurnReplay(b *testing.B) {
	r := longitudinal.NewEraRun(benchConfig(), topology.EraOf(2024, 4))
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		b.Fatal(err)
	}
	snap := atoms.Snap
	ops := decodeChurnOps(b, r, snap)
	if len(ops) == 0 {
		b.Fatal("update window mapped to zero deltas")
	}
	ix := core.NewAtomIndex(snap)
	for _, op := range ops {
		ix.ApplyUpdate(op.p, op.v, op.id) // warm free lists and buckets
	}
	samples := make([]int64, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i%len(ops)]
		t0 := time.Now()
		ix.ApplyUpdate(op.p, op.v, op.id)
		samples[i] = int64(time.Since(t0))
	}
	b.StopTimer()
	if ix.AtomCount() == 0 {
		b.Fatal("index churned to zero atoms")
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := int(math.Ceil(0.99*float64(len(samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	b.ReportMetric(float64(samples[rank]), "p99_rebucket_ns")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkSnapshotBuildFastPath measures the in-memory snapshot path
// (the ablation against the MRT wire round-trip below).
func BenchmarkSnapshotBuildFastPath(b *testing.B) {
	cfg := benchConfig()
	cfg.FastPath = true
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2016, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.SnapshotAt(longitudinal.OffsetBase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTrendParallel measures the parallel longitudinal sweep
// end to end — six independent eras fanned out across the worker pool.
// workers=1 is the sequential baseline; the speedup at higher counts is
// bounded by GOMAXPROCS, which scripts/bench.sh records per entry (it
// reruns this matrix under `go test -cpu 8` so an 8-worker pool is
// measured against an 8-way scheduler even on a small host).
func BenchmarkRunTrendParallel(b *testing.B) {
	eras := []topology.Era{
		topology.EraOf(2004, 1), topology.EraOf(2008, 1),
		topology.EraOf(2012, 1), topology.EraOf(2016, 1),
		topology.EraOf(2020, 1), topology.EraOf(2024, 1),
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				points, err := longitudinal.RunTrend(cfg, eras)
				if err != nil {
					b.Fatal(err)
				}
				if len(points) != len(eras) {
					b.Fatalf("points = %d", len(points))
				}
			}
		})
	}
}

// BenchmarkSnapshotBuildWirePath measures the full MRT encode → parse →
// sanitize round-trip (proven equivalent to the fast path).
func BenchmarkSnapshotBuildWirePath(b *testing.B) {
	cfg := benchConfig()
	cfg.FastPath = false
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2016, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.SnapshotAt(longitudinal.OffsetBase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormationMethodIII vs II: the paper's §3.4.2 method choice.
func benchFormation(b *testing.B, method metrics.FormationMethod) {
	r := longitudinal.NewEraRun(benchConfig(), topology.EraOf(2024, 4))
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		b.Fatal(err)
	}
	opts := metrics.DefaultFormationOptions()
	opts.Method = method
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.FormationDistances(atoms, opts)
	}
}

func BenchmarkFormationMethodIII(b *testing.B) { benchFormation(b, metrics.MethodUniqueCount) }
func BenchmarkFormationMethodII(b *testing.B)  { benchFormation(b, metrics.MethodStripBeforeDistance) }
func BenchmarkFormationMethodI(b *testing.B)   { benchFormation(b, metrics.MethodStripBeforeGrouping) }

// BenchmarkStabilityCompare isolates CAM+MPM between two snapshots.
func BenchmarkStabilityCompare(b *testing.B) {
	r := longitudinal.NewEraRun(benchConfig(), topology.EraOf(2024, 4))
	s1, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		b.Fatal(err)
	}
	s2, _, err := r.SnapshotAt(longitudinal.OffsetBase + longitudinal.Offset8h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.CompareStability(s1, s2)
	}
}
