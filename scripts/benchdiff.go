//go:build ignore

// benchdiff compares two bench.sh result files and prints per-benchmark
// deltas: ns/op, B/op, and allocs/op, with the ratio old/new (so >1
// means the new run improved). Benchmarks present in only one file are
// listed as added/removed.
//
// Usage: go run scripts/benchdiff.go OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type file struct {
	Bench   string   `json:"bench"`
	Results []result `json:"results"`
}

func load(path string) (file, error) {
	var f file
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(b, &f)
}

func ratio(old, new float64) string {
	if new <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", old/new)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldF, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newF, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	oldBy := map[string]result{}
	for _, r := range oldF.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("%s (%s) -> %s (%s)\n", os.Args[1], oldF.Bench, os.Args[2], newF.Bench)
	seen := map[string]bool{}
	for _, n := range newF.Results {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Printf("%s  (added)\n", n.Name)
			fmt.Printf("  ns/op %.0f  B/op %.0f  allocs/op %.0f\n", n.NsOp, n.BOp, n.AllocsOp)
			continue
		}
		fmt.Println(n.Name)
		fmt.Printf("  ns/op      %14.0f -> %14.0f  (%s)\n", o.NsOp, n.NsOp, ratio(o.NsOp, n.NsOp))
		fmt.Printf("  B/op       %14.0f -> %14.0f  (%s)\n", o.BOp, n.BOp, ratio(o.BOp, n.BOp))
		fmt.Printf("  allocs/op  %14.0f -> %14.0f  (%s)\n", o.AllocsOp, n.AllocsOp, ratio(o.AllocsOp, n.AllocsOp))
	}
	for _, o := range oldF.Results {
		if !seen[o.Name] {
			fmt.Printf("%-55s (removed)\n", o.Name)
		}
	}
}
