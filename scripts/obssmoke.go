//go:build ignore

// obssmoke drives one live atomrepro run with every observability flag
// on and verifies the run from the outside, the way an operator would:
// it waits for the debug server's announce line on stderr, scrapes
// /healthz, /metrics (linted against the repo's exposition conventions
// via obs.LintPromText), and /runreport while the run is in flight,
// then checks the -progress JSON stream and the -trace-out file after
// exit. Everything asserted here is the operator-facing contract; a
// change that breaks it breaks real dashboards, not just tests.
//
// Usage: go run scripts/obssmoke.go
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obssmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// get fetches one debug endpoint with a deadline and returns the body.
func get(url string) string {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: read: %v", url, err)
	}
	return string(body)
}

func main() {
	tmp, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		fail("mkdtemp: %v", err)
	}
	defer os.RemoveAll(tmp)
	tracePath := filepath.Join(tmp, "run.trace.json")

	cmd := exec.Command("go", "run", "./cmd/atomrepro",
		"-run", "table1", "-scale", "0.004",
		"-listen", "127.0.0.1:0", "-sample", "50ms", "-progress",
		"-trace-out", tracePath)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fail("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fail("start: %v", err)
	}

	// Stderr carries three kinds of lines: the one-time announce line
	// with the bound address, -progress JSON events, and anything the
	// toolchain prints. Scrapes happen inline the moment the address
	// appears — the run is still executing eras then, so /metrics and
	// /runreport reflect a run in flight, not a finished one.
	const announce = ": observability on http://"
	scraped := false
	events := map[string]int{}
	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, announce); i >= 0 {
			addr := line[i+len(announce):]
			if j := strings.Index(addr, "/"); j >= 0 {
				addr = addr[:j]
			}
			base := "http://" + addr
			scrape(base)
			scraped = true
			continue
		}
		var ev struct {
			Event string `json:"event"`
		}
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Event != "" {
			events[ev.Event]++
		}
	}
	if err := cmd.Wait(); err != nil {
		fail("atomrepro exited: %v", err)
	}
	if !scraped {
		fail("announce line never appeared on stderr")
	}
	// table1 runs two eras; Obs.Finish closes the stream with run_done.
	if events["era_done"] < 1 {
		fail("no era_done progress events (saw %v)", events)
	}
	if events["run_done"] != 1 {
		fail("run_done events = %d, want 1 (saw %v)", events["run_done"], events)
	}
	checkTrace(tracePath)
	fmt.Println("obssmoke: OK (scraped live /metrics, /healthz, /runreport; progress stream and trace round-trip verified)")
}

// scrape hits every debug endpoint while the run is live.
func scrape(base string) {
	health := get(base + "/healthz")
	var h struct {
		Status string `json:"status"`
		Tool   string `json:"tool"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		fail("/healthz not JSON: %v\n%s", err, health)
	}
	if h.Status != "ok" || h.Tool != "atomrepro" {
		fail("/healthz = %+v", h)
	}

	metrics := get(base + "/metrics")
	if problems := obs.LintPromText(metrics); len(problems) > 0 {
		fail("/metrics violates exposition conventions:\n  %s", strings.Join(problems, "\n  "))
	}
	if !strings.Contains(metrics, "atom_runtime_goroutines") {
		fail("/metrics missing the sampler's runtime gauges:\n%s", metrics)
	}

	report := get(base + "/runreport")
	var rep struct {
		Tool string `json:"tool"`
		Span struct {
			Name string `json:"name"`
		} `json:"span"`
	}
	if err := json.Unmarshal([]byte(report), &rep); err != nil {
		fail("/runreport not JSON: %v", err)
	}
	if rep.Tool != "atomrepro" || rep.Span.Name != "atomrepro" {
		fail("/runreport = %+v", rep)
	}
}

// checkTrace round-trips the -trace-out file: a Perfetto-loadable
// object whose X events all carry ph/ts/dur/name.
func checkTrace(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("trace-out: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		fail("trace-out not JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		fail("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	names := map[string]bool{}
	complete := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		names[ev.Name] = true
		if ev.TS == nil || ev.Dur == nil || ev.Name == "" {
			fail("X event missing ts/dur/name: %+v", ev)
		}
	}
	if complete == 0 {
		fail("trace has no complete (X) events")
	}
	if !names["atomrepro"] || !names["experiment"] {
		fail("trace missing root/experiment spans: %v", names)
	}
}
