//go:build ignore

// benchhost prints the benchmark host's parallelism facts as JSON
// fragment fields: the physical core count visible to the runtime and
// the effective GOMAXPROCS (what the scheduler will actually use).
// bench.sh embeds both in BENCH_*.json — PR2 recorded "cores": 1 from
// a container-confined nproc, which made its speedup numbers
// uninterpretable.
//
// Usage: go run scripts/benchhost.go
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Printf("%d %d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
}
