//go:build ignore

// Command fuzzcorpus regenerates the checked-in fuzz seed corpora from
// faultgen-damaged archives, so the fuzzers start from inputs shaped
// like real collector damage instead of random bytes:
//
//	internal/mrt/testdata/fuzz/FuzzReadRecord     — whole damaged archives
//	internal/mrt/testdata/fuzz/FuzzParseMessage   — BGP4MP bodies framed out of them
//	internal/bgp/testdata/fuzz/FuzzParseUpdate    — bit-flipped UPDATE messages
//	internal/atomd/testdata/fuzz/FuzzIngestFrame  — ingest sessions framing those archives
//
// Run from the repo root:
//
//	go run scripts/fuzzcorpus.go
//
// Output is deterministic (fixed seeds, pure-hash mutations): rerunning
// rewrites byte-identical files.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"

	"repro/internal/atomd"
	"repro/internal/bgp"
	"repro/internal/faultgen"
	"repro/internal/mrt"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzcorpus:", err)
	os.Exit(1)
}

// corpusEntry renders values in the `go test fuzz v1` corpus encoding.
func corpusEntry(vals ...any) []byte {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, v := range vals {
		switch x := v.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%q)\n", x)
		case uint16:
			fmt.Fprintf(&b, "uint16(%d)\n", x)
		case bool:
			fmt.Fprintf(&b, "bool(%v)\n", x)
		default:
			fatal(fmt.Errorf("unsupported corpus value type %T", v))
		}
	}
	return b.Bytes()
}

func writeEntry(dir, name string, vals ...any) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(vals...), 0o644); err != nil {
		fatal(err)
	}
}

// cleanArchive builds the small parseable archive every damaged variant
// starts from: PIT, RIB records, and BGP4MP messages.
func cleanArchive() []byte {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		Peers: []mrt.Peer{{
			BGPID: netip.MustParseAddr("203.0.113.1"),
			Addr:  netip.MustParseAddr("203.0.113.1"),
			ASN:   65001,
		}},
	}
	body, err := pit.Marshal()
	if err != nil {
		fatal(err)
	}
	if err := w.WriteRecord(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body}); err != nil {
		fatal(err)
	}
	for i := 0; i < 6; i++ {
		rib := &mrt.RIB{
			Sequence: uint32(i),
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			Entries:  []mrt.RIBEntry{{PeerIndex: 0, Originated: 1000}},
		}
		rb, err := rib.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := w.WriteRecord(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: rb}); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		u, err := bgp.NewAnnouncement(
			[]uint32{65001, 400000 + uint32(i)},
			netip.MustParseAddr("10.0.0.1"),
			[]netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 0, 2 + byte(i), 0}), 24)},
		)
		if err != nil {
			fatal(err)
		}
		data, err := u.Marshal(bgp.Options{AS4: true})
		if err != nil {
			fatal(err)
		}
		m := &mrt.Message{
			PeerAS: 65001, LocalAS: 65002,
			PeerAddr:  netip.MustParseAddr("203.0.113.1"),
			LocalAddr: netip.MustParseAddr("203.0.113.2"),
			AS4:       true, Data: data,
		}
		mb, err := m.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := w.WriteRecord(mrt.Record{Timestamp: 1004 + uint32(i), Type: mrt.TypeBGP4MP, Subtype: m.Subtype(), Body: mb}); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	return buf.Bytes()
}

// frameMessages walks an archive the way bgpstream does — Next with a
// bounded Resync loop — and returns the BGP4MP (subtype, body) pairs it
// frames, damaged or not.
func frameMessages(data []byte) [][2]any {
	var out [][2]any
	rd := mrt.NewReader(bytes.NewReader(data))
	resyncs := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if resyncs >= 8 {
				break
			}
			resyncs++
			if _, rerr := rd.Resync(1 << 16); rerr != nil {
				break
			}
			continue
		}
		if rec.Type == mrt.TypeBGP4MP || rec.Type == mrt.TypeBGP4MPET {
			out = append(out, [2]any{rec.Subtype, append([]byte(nil), rec.Body...)})
		}
	}
	return out
}

// flip deterministically flips one bit per step, a cheap stand-in for
// the bit-flip fault class on a bare message.
func flip(data []byte, steps int) []byte {
	out := append([]byte(nil), data...)
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < steps && len(out) > 0; i++ {
		h = (h ^ uint64(i)) * 0xbf58476d1ce4e5b9
		h ^= h >> 29
		out[h%uint64(len(out))] ^= 1 << ((h >> 8) % 8)
	}
	return out
}

// frameSession wraps payload bytes as one complete atomd ingest
// session — hello, MTU-sized data frames, EOF — the honest wire shape
// FuzzIngestFrame mutates from.
func frameSession(collector string, payload []byte) []byte {
	var out []byte
	out = atomd.AppendFrame(out, atomd.FrameHello, 0, []byte(collector))
	off := uint64(0)
	for len(payload) > 0 {
		n := len(payload)
		if n > 1500 {
			n = 1500
		}
		out = atomd.AppendFrame(out, atomd.FrameData, off, payload[:n])
		off += uint64(n)
		payload = payload[n:]
	}
	return atomd.AppendFrame(out, atomd.FrameEOF, off, nil)
}

func main() {
	readDir := filepath.Join("internal", "mrt", "testdata", "fuzz", "FuzzReadRecord")
	msgDir := filepath.Join("internal", "mrt", "testdata", "fuzz", "FuzzParseMessage")
	updDir := filepath.Join("internal", "bgp", "testdata", "fuzz", "FuzzParseUpdate")
	ingestDir := filepath.Join("internal", "atomd", "testdata", "fuzz", "FuzzIngestFrame")

	clean := cleanArchive()
	archives := map[string][]byte{"seed": clean}
	writeEntry(readDir, "seed-clean", clean)
	writeEntry(ingestDir, "seed-clean", frameSession("rrc00", clean), uint16(33))

	// One damaged archive per fault class: the archive itself seeds
	// FuzzReadRecord; the message records framed out of it (including
	// post-resync garbage framings) seed FuzzParseMessage.
	for _, class := range faultgen.AllClasses() {
		sched, err := faultgen.Plan(faultgen.Config{Seed: 11, Classes: []faultgen.Class{class}}, archives)
		if err != nil {
			fatal(err)
		}
		damaged, err := faultgen.Apply(sched, archives)
		if err != nil {
			fatal(err)
		}
		writeEntry(readDir, "seed-"+class.String(), damaged["seed"])
		for i, sb := range frameMessages(damaged["seed"]) {
			if i >= 2 {
				break
			}
			writeEntry(msgDir, fmt.Sprintf("seed-%s-%d", class, i), sb[0], sb[1])
		}
		// Record-level damage riding inside honest frames, and the same
		// session with frame-level bit flips on top — both split
		// mid-stream by the fuzzer's second Feed.
		framed := frameSession("rrc00", damaged["seed"])
		writeEntry(ingestDir, "seed-"+class.String(), framed, uint16(len(framed)/2))
		writeEntry(ingestDir, "seed-"+class.String()+"-flip", flip(framed, 4), uint16(97))
	}

	// UPDATE corpus: canonical messages plus bit-flipped variants under
	// each session-option combination.
	nh := netip.MustParseAddr("10.0.0.1")
	ann, err := bgp.NewAnnouncement([]uint32{65001, 400000, 65003}, nh,
		[]netip.Prefix{netip.MustParsePrefix("192.0.2.0/24"), netip.MustParsePrefix("198.51.100.0/25")})
	if err != nil {
		fatal(err)
	}
	ann.Attrs = append(ann.Attrs, bgp.MED(10), bgp.Communities{0x10001})
	ann6, err := bgp.NewAnnouncement([]uint32{65001, 65002}, netip.MustParseAddr("2001:db8::1"),
		[]netip.Prefix{netip.MustParsePrefix("2001:db8::/32")})
	if err != nil {
		fatal(err)
	}
	wd, err := bgp.NewWithdrawal([]netip.Prefix{netip.MustParsePrefix("198.51.100.0/25")})
	if err != nil {
		fatal(err)
	}
	opts := []bgp.Options{{}, {AS4: true}, {AS4: true, AddPath: true}}
	for oi, opt := range opts {
		for ui, u := range []*bgp.Update{ann, ann6, wd} {
			msg, err := u.Marshal(opt)
			if err != nil {
				fatal(err)
			}
			writeEntry(updDir, fmt.Sprintf("seed-o%d-u%d", oi, ui), msg, opt.AS4, opt.AddPath)
			for steps := 1; steps <= 3; steps++ {
				writeEntry(updDir, fmt.Sprintf("seed-o%d-u%d-flip%d", oi, ui, steps),
					flip(msg, steps), opt.AS4, opt.AddPath)
			}
		}
	}
	fmt.Println("fuzz corpora regenerated under internal/{mrt,bgp,atomd}/testdata/fuzz/")
}
