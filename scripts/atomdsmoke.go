//go:build ignore

// atomdsmoke drives one live atomd daemon the way an operator would:
// build the binary, boot it over the golden RIB archives, wait for the
// announce lines on stderr, stream the golden update archives through
// real TCP ingest sessions, query the HTTP and binary ports while the
// daemon is live, then SIGTERM it and demand a clean drain and exit.
// Everything asserted here is the operator-facing contract from the
// README quick start.
//
// Usage: go run scripts/atomdsmoke.go
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomd"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atomdsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func get(url string) string {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: read: %v", url, err)
	}
	return string(body)
}

// epochDoc decodes one /atoms/epoch body.
func epochDoc(body string) (epoch uint64, atoms int) {
	var doc struct {
		Epoch uint64 `json:"epoch"`
		Atoms int    `json:"atoms"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		fail("/atoms/epoch not JSON: %v\n%s", err, body)
	}
	return doc.Epoch, doc.Atoms
}

func main() {
	tmp, err := os.MkdirTemp("", "atomdsmoke")
	if err != nil {
		fail("mkdtemp: %v", err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "atomd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/atomd").CombinedOutput(); err != nil {
		fail("go build ./cmd/atomd: %v\n%s", err, out)
	}

	collectors := []string{"route-views2", "rrc00"}
	var ribArgs []string
	for _, c := range collectors {
		ribArgs = append(ribArgs, filepath.Join("testdata", "golden", c+".rib.mrt"))
	}
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0", "-workers", "1"}, ribArgs...)...)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fail("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fail("start: %v", err)
	}

	// Stderr carries the obs announce line (HTTP address) and atomd's
	// own "ingest on X, binary queries on Y" line; the drive sequence
	// fires once both are known. After SIGTERM the drain summary lines
	// must appear.
	const announce = ": observability on http://"
	const ports = ": ingest on "
	var httpBase, ingestAddr, queryAddr string
	driven, drained := false, false
	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, announce); i >= 0 {
			addr := line[i+len(announce):]
			if j := strings.Index(addr, "/"); j >= 0 {
				addr = addr[:j]
			}
			httpBase = "http://" + addr
		}
		if i := strings.Index(line, ports); i >= 0 {
			rest := line[i+len(ports):]
			ingestAddr, queryAddr, _ = strings.Cut(rest, ", binary queries on ")
		}
		if strings.Contains(line, "drained at epoch") {
			drained = true
		}
		if !driven && httpBase != "" && ingestAddr != "" && queryAddr != "" {
			driven = true
			drive(httpBase, ingestAddr, queryAddr, collectors)
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				fail("SIGTERM: %v", err)
			}
		}
	}
	if err := cmd.Wait(); err != nil {
		fail("atomd exited uncleanly: %v", err)
	}
	if !driven {
		fail("announce lines never appeared on stderr")
	}
	if !drained {
		fail("no drain summary after SIGTERM")
	}
	fmt.Println("atomdsmoke: OK (live ingest over TCP, HTTP + binary queries answered, SIGTERM drained cleanly)")
}

// drive ingests the golden update archives and queries both surfaces.
func drive(httpBase, ingestAddr, queryAddr string, collectors []string) {
	epoch0, atoms0 := epochDoc(get(httpBase + "/atoms/epoch"))
	if epoch0 != 0 || atoms0 == 0 {
		fail("boot state: epoch=%d atoms=%d, want epoch 0 and atoms > 0", epoch0, atoms0)
	}

	for _, c := range collectors {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", c+".updates.mrt"))
		if err != nil {
			fail("updates: %v", err)
		}
		cl, err := atomd.Dial(ingestAddr, c)
		if err != nil {
			fail("dial ingest %s: %v", c, err)
		}
		if err := cl.Send(data); err != nil {
			fail("send %s: %v", c, err)
		}
		if err := cl.Drain(); err != nil {
			fail("drain %s: %v", c, err)
		}
		cl.Close()
	}

	epoch1, atoms1 := epochDoc(get(httpBase + "/atoms/epoch"))
	if epoch1 == 0 || atoms1 == 0 {
		fail("post-ingest state: epoch=%d atoms=%d, want an advanced epoch", epoch1, atoms1)
	}

	var ingest struct {
		Sources []struct {
			Collector string `json:"collector"`
			Updates   int    `json:"updates"`
		} `json:"sources"`
		Quarantined []string `json:"quarantined"`
	}
	if err := json.Unmarshal([]byte(get(httpBase+"/atoms/ingest")), &ingest); err != nil {
		fail("/atoms/ingest not JSON: %v", err)
	}
	if len(ingest.Sources) != len(collectors) || len(ingest.Quarantined) != 0 {
		fail("/atoms/ingest = %+v, want %d clean sources", ingest, len(collectors))
	}

	qc, err := atomd.DialQuery(queryAddr)
	if err != nil {
		fail("dial query: %v", err)
	}
	defer qc.Close()
	qe, qa, _, err := qc.Epoch()
	if err != nil {
		fail("binary epoch: %v", err)
	}
	if qe != epoch1 || qa != atoms1 {
		fail("binary epoch (%d,%d) disagrees with HTTP (%d,%d)", qe, qa, epoch1, atoms1)
	}
	same, _, err := qc.SameAtom(0, 0)
	if err != nil || !same {
		fail("binary sameatom(0,0) = (%v,%v), want true", same, err)
	}
	if !strings.Contains(get(httpBase+"/atoms/snapshot?workers=1"), "atom 0 ") {
		fail("/atoms/snapshot missing atom lines")
	}
}
