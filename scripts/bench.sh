#!/bin/sh
# bench.sh — run the PR's key benchmarks with -benchmem and distill
# them into BENCH_pr2.json: one entry per benchmark (ns/op, B/op,
# allocs/op) plus the RunTrend parallel speedup (workers=1 vs the
# largest pool) and the machine's core count, since the achievable
# speedup is bounded by it. Run via `make bench` or directly.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_pr2.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== root benchmarks (end-to-end pipeline)"
go test -run xxx -bench 'BenchmarkAtomComputation$|BenchmarkSnapshotBuildFastPath$|BenchmarkRunTrendParallel' \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== core benchmarks (sharded grouping, origin kernel)"
go test -run xxx -bench 'BenchmarkComputeAtomsWorkers|BenchmarkVectorOrigin' \
    -benchmem ./internal/core/ | tee -a "$RAW"

awk '
BEGIN { n = 0 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "B/op")      bytes[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    order[n++] = name
}
END {
    printf "{\n  \"bench\": \"pr2 parallel pipeline\",\n"
    cmd = "nproc 2>/dev/null || echo 1"; cmd | getline nc; close(cmd)
    printf "  \"cores\": %d,\n", nc
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
    }
    printf "  ]"
    base = ns["BenchmarkRunTrendParallel/workers=1"]
    best = ""
    for (i = 0; i < n; i++) {
        if (order[i] ~ /^BenchmarkRunTrendParallel\/workers=/ && order[i] != "BenchmarkRunTrendParallel/workers=1")
            best = order[i]   # benchmarks run in ascending worker order
    }
    if (base != "" && best != "" && ns[best] > 0)
        printf ",\n  \"run_trend_speedup\": {\"baseline\": \"workers=1\", \"against\": \"%s\", \"speedup\": %.3f}", \
            best, base / ns[best]
    printf "\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
