#!/bin/sh
# bench.sh — run the PR's key benchmarks with -benchmem and distill
# them into BENCH_pr3.json: one entry per benchmark (ns/op, B/op,
# allocs/op) plus the RunTrend parallel speedup (workers=1 vs the
# largest pool) and the host's parallelism facts. Core counts come from
# the Go runtime (scripts/benchhost.go) rather than nproc: PR2's
# container-confined nproc recorded "cores": 1, which made its speedup
# numbers uninterpretable.
#
# Usage:
#   scripts/bench.sh            run benchmarks, write BENCH_pr3.json,
#                               and (if a previous BENCH_*.json exists)
#                               print per-benchmark deltas against it
#   scripts/bench.sh compare    just diff BENCH_pr3.json against the
#                               previous BENCH_*.json
# Run via `make bench` or directly.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_pr3.json

# prev_bench prints the newest BENCH_*.json that is not $OUT.
prev_bench() {
    ls BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort | tail -n 1
}

compare() {
    PREV=$(prev_bench)
    if [ -z "$PREV" ]; then
        echo "bench: no previous BENCH_*.json to compare against"
        return 0
    fi
    if [ ! -f "$OUT" ]; then
        echo "bench: $OUT not found; run scripts/bench.sh first" >&2
        return 1
    fi
    echo "== comparing $PREV -> $OUT"
    go run scripts/benchdiff.go "$PREV" "$OUT"
}

if [ "${1:-}" = "compare" ]; then
    compare
    exit $?
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== root benchmarks (end-to-end pipeline)"
go test -run xxx -bench 'BenchmarkAtomComputation$|BenchmarkSnapshotBuildFastPath$|BenchmarkRunTrendParallel' \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== core benchmarks (sharded grouping, origin kernel)"
go test -run xxx -bench 'BenchmarkComputeAtomsWorkers|BenchmarkVectorOrigin' \
    -benchmem ./internal/core/ | tee -a "$RAW"

HOST=$(go run scripts/benchhost.go)
NUMCPU=${HOST% *}
MAXPROCS=${HOST#* }

awk -v numcpu="$NUMCPU" -v maxprocs="$MAXPROCS" '
BEGIN { n = 0 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "B/op")      bytes[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    order[n++] = name
}
END {
    printf "{\n  \"bench\": \"pr3 flat matrix + zero-alloc hot paths\",\n"
    printf "  \"cores\": %d,\n", numcpu
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
    }
    printf "  ]"
    base = ns["BenchmarkRunTrendParallel/workers=1"]
    best = ""
    for (i = 0; i < n; i++) {
        if (order[i] ~ /^BenchmarkRunTrendParallel\/workers=/ && order[i] != "BenchmarkRunTrendParallel/workers=1")
            best = order[i]   # benchmarks run in ascending worker order
    }
    if (base != "" && best != "" && ns[best] > 0)
        printf ",\n  \"run_trend_speedup\": {\"baseline\": \"workers=1\", \"against\": \"%s\", \"speedup\": %.3f}", \
            best, base / ns[best]
    printf "\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
compare
