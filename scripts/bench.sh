#!/bin/sh
# bench.sh — run the PR's key benchmarks with -benchmem and distill
# them into BENCH_pr6.json: one entry per benchmark (ns/op, B/op,
# allocs/op, the GOMAXPROCS it ran under) plus a run_trend_speedup
# block with the per-worker speedup of the parallel longitudinal sweep
# against its sequential baseline. The RunTrend matrix runs twice: at
# the host's native GOMAXPROCS and again pinned to 8 via `go test
# -cpu 8` (entries carry a "-8" name suffix and "cores": 8) — on a
# small host the second run oversubscribes the scheduler, so its
# speedup measures scheduling overhead rather than parallelism, but it
# is measured, not assumed. Core counts come from the Go runtime
# (scripts/benchhost.go) rather than nproc: PR2's container-confined
# nproc recorded "cores": 1, which made its speedup numbers
# uninterpretable.
#
# Usage:
#   scripts/bench.sh            run benchmarks, write BENCH_pr6.json,
#                               and (if a previous BENCH_*.json exists)
#                               print per-benchmark deltas against it
#   scripts/bench.sh compare    just diff BENCH_pr6.json against the
#                               previous BENCH_*.json
# Run via `make bench` or directly.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_pr6.json

# prev_bench prints the newest BENCH_*.json that is not $OUT.
prev_bench() {
    ls BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort | tail -n 1
}

compare() {
    PREV=$(prev_bench)
    if [ -z "$PREV" ]; then
        echo "bench: no previous BENCH_*.json to compare against"
        return 0
    fi
    if [ ! -f "$OUT" ]; then
        echo "bench: $OUT not found; run scripts/bench.sh first" >&2
        return 1
    fi
    echo "== comparing $PREV -> $OUT"
    go run scripts/benchdiff.go "$PREV" "$OUT"
}

if [ "${1:-}" = "compare" ]; then
    compare
    exit $?
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== root benchmarks (end-to-end pipeline)"
go test -run xxx -bench 'BenchmarkAtomComputation$|BenchmarkSnapshotBuildFastPath$|BenchmarkRunTrendParallel' \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== RunTrend matrix at GOMAXPROCS=8 (-cpu 8)"
go test -run xxx -bench 'BenchmarkRunTrendParallel' -cpu 8 \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== core benchmarks (sharded grouping, origin kernel)"
go test -run xxx -bench 'BenchmarkComputeAtomsWorkers|BenchmarkVectorOrigin' \
    -benchmem ./internal/core/ | tee -a "$RAW"

HOST=$(go run scripts/benchhost.go)
NUMCPU=${HOST% *}
MAXPROCS=${HOST#* }

awk -v numcpu="$NUMCPU" -v maxprocs="$MAXPROCS" '
BEGIN { n = 0 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    # A trailing -N is the GOMAXPROCS the benchmark ran under (Go omits
    # it when GOMAXPROCS is 1). Keep it in the name — the -cpu 8 rerun
    # must not collide with the native entry — and record it as cores.
    cores = maxprocs
    if (match(name, /-[0-9]+$/)) cores = substr(name, RSTART + 1)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "B/op")      bytes[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
    }
    if (!(name in core)) order[n++] = name
    core[name] = cores
}
function basekey(name,  suffix) {
    # Baseline key for a workers=N entry: same -cpu suffix, workers=1.
    suffix = ""
    if (match(name, /-[0-9]+$/)) suffix = substr(name, RSTART)
    return "BenchmarkRunTrendParallel/workers=1" suffix
}
END {
    printf "{\n  \"bench\": \"pr6 live observability: /metrics exposition, trace export, runtime sampling (flags off)\",\n"
    printf "  \"cores\": %d,\n", numcpu
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"cores\": %d, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, core[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
    }
    printf "  ]"
    m = 0; bestsp = 0; best = ""
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkRunTrendParallel\/workers=/) continue
        if (name ~ /^BenchmarkRunTrendParallel\/workers=1(-[0-9]+)?$/) continue
        bk = basekey(name)
        if (!(bk in ns) || ns[name] <= 0) continue
        sp = ns[bk] / ns[name]
        perw[m++] = sprintf("{\"name\": \"%s\", \"cores\": %d, \"speedup\": %.3f}", name, core[name], sp)
        if (sp > bestsp) {
            bestsp = sp
            best = sprintf("{\"name\": \"%s\", \"cores\": %d, \"speedup\": %.3f}", name, core[name], sp)
        }
    }
    if (m > 0) {
        printf ",\n  \"run_trend_speedup\": {\n    \"baseline\": \"workers=1 at the same GOMAXPROCS\",\n    \"per_worker\": [\n"
        for (i = 0; i < m; i++)
            printf "      %s%s\n", perw[i], (i < m-1 ? "," : "")
        printf "    ],\n    \"best\": %s\n  }", best
    }
    printf "\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
compare
