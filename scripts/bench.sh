#!/bin/sh
# bench.sh — run the PR's key benchmarks with -benchmem and distill
# them into BENCH_pr10.json: one entry per benchmark (ns/op, B/op,
# allocs/op, the GOMAXPROCS it ran under), a run_trend_speedup block
# with the per-worker speedup of the parallel longitudinal sweep
# against its sequential baseline, a decode_throughput block (MB/s and
# elems/s per decode worker count, plus the raw reader-vs-BytesReader
# floor), a churn_replay block (sustained updates/s through the
# incremental AtomIndex, the nearest-rank p99 of one ApplyUpdate
# re-bucket, and that p99's speedup against full batch recomputation —
# this run's and the previous PR's), a daemon block (atomd point-query
# latency on the published view, which must stay allocation-free, and
# end-to-end TCP ingest throughput), and a vs_prev block with the RunTrend workers=1 time and
# allocation ratios against the previous PR's BENCH file. The RunTrend
# matrix runs twice: at the host's native GOMAXPROCS and again pinned
# to 8 via `go test -cpu 8` (entries carry a "-8" name suffix and
# "cores": 8) — on a small host the second run oversubscribes the
# scheduler, so its speedup measures scheduling overhead rather than
# parallelism, but it is measured, not assumed. Core counts come from
# the Go runtime (scripts/benchhost.go) rather than nproc: PR2's
# container-confined nproc recorded "cores": 1, which made its speedup
# numbers uninterpretable.
#
# Usage:
#   scripts/bench.sh            run benchmarks, write BENCH_pr10.json,
#                               and (if a previous BENCH_*.json exists)
#                               print per-benchmark deltas against it
#   scripts/bench.sh compare    just diff BENCH_pr10.json against the
#                               previous BENCH_*.json
# Run via `make bench` or directly.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_pr10.json

# prev_bench prints the newest BENCH_*.json that is not $OUT.
prev_bench() {
    ls BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort | tail -n 1
}

compare() {
    PREV=$(prev_bench)
    if [ -z "$PREV" ]; then
        echo "bench: no previous BENCH_*.json to compare against"
        return 0
    fi
    if [ ! -f "$OUT" ]; then
        echo "bench: $OUT not found; run scripts/bench.sh first" >&2
        return 1
    fi
    echo "== comparing $PREV -> $OUT"
    go run scripts/benchdiff.go "$PREV" "$OUT"
}

if [ "${1:-}" = "compare" ]; then
    compare
    exit $?
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== root benchmarks (end-to-end pipeline)"
go test -run xxx -bench 'BenchmarkAtomComputation$|BenchmarkSnapshotBuildFastPath$|BenchmarkRunTrendParallel' \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== RunTrend matrix at GOMAXPROCS=8 (-cpu 8)"
go test -run xxx -bench 'BenchmarkRunTrendParallel' -cpu 8 \
    -benchmem -benchtime 2x . | tee -a "$RAW"

echo "== churn replay benchmark (incremental delta kernel, p99 re-bucket latency)"
go test -run xxx -bench 'BenchmarkChurnReplay$' \
    -benchmem -benchtime 2s . | tee -a "$RAW"

echo "== core benchmarks (sharded grouping, origin kernel, delta kernel)"
go test -run xxx -bench 'BenchmarkComputeAtomsWorkers|BenchmarkVectorOrigin|BenchmarkApplyUpdate$' \
    -benchmem ./internal/core/ | tee -a "$RAW"

echo "== daemon benchmarks (atomd query hot path + TCP ingest throughput)"
go test -run xxx -bench 'BenchmarkAtomd' \
    -benchmem ./internal/atomd/ | tee -a "$RAW"

echo "== decode benchmarks (zero-copy reader, per-source fan-out)"
go test -run xxx -bench 'BenchmarkBytesReader$|BenchmarkReader$' \
    -benchmem ./internal/mrt/ | tee -a "$RAW"
go test -run xxx -bench 'BenchmarkStreamDecode' \
    -benchmem ./internal/bgpstream/ | tee -a "$RAW"

HOST=$(go run scripts/benchhost.go)
NUMCPU=${HOST% *}
MAXPROCS=${HOST#* }

# Previous PR's RunTrend workers=1 baseline, for the vs_prev ratios.
PREV=$(prev_bench)
PREV_NS=0
PREV_ALLOCS=0
PREV_AC_NS=0
if [ -n "$PREV" ]; then
    LINE=$(grep '"BenchmarkRunTrendParallel/workers=1"' "$PREV" | head -n 1 || true)
    if [ -n "$LINE" ]; then
        PREV_NS=$(printf '%s\n' "$LINE" | sed 's/.*"ns_op": *\([0-9]*\).*/\1/')
        PREV_ALLOCS=$(printf '%s\n' "$LINE" | sed 's/.*"allocs_op": *\([0-9]*\).*/\1/')
    fi
    # Previous PR's full-recompute time: the floor the delta kernel's
    # p99 is measured against across PRs.
    LINE=$(grep '"BenchmarkAtomComputation"' "$PREV" | head -n 1 || true)
    if [ -n "$LINE" ]; then
        PREV_AC_NS=$(printf '%s\n' "$LINE" | sed 's/.*"ns_op": *\([0-9]*\).*/\1/')
    fi
fi

awk -v numcpu="$NUMCPU" -v maxprocs="$MAXPROCS" \
    -v prevfile="$PREV" -v prevns="$PREV_NS" -v prevallocs="$PREV_ALLOCS" \
    -v prevac="$PREV_AC_NS" '
BEGIN { n = 0 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    # A trailing -N is the GOMAXPROCS the benchmark ran under (Go omits
    # it when GOMAXPROCS is 1). Keep it in the name — the -cpu 8 rerun
    # must not collide with the native entry — and record it as cores.
    cores = maxprocs
    if (match(name, /-[0-9]+$/)) cores = substr(name, RSTART + 1)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name] = $i
        if ($(i+1) == "B/op")      bytes[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
        if ($(i+1) == "MB/s")      mbs[name] = $i
        if ($(i+1) == "elems/s")   eps[name] = $i
        if ($(i+1) == "updates/s") ups[name] = $i
        if ($(i+1) == "p99_rebucket_ns") p99[name] = $i
    }
    if (!(name in core)) order[n++] = name
    core[name] = cores
}
function basekey(name,  suffix) {
    # Baseline key for a workers=N entry: same -cpu suffix, workers=1.
    suffix = ""
    if (match(name, /-[0-9]+$/)) suffix = substr(name, RSTART)
    return "BenchmarkRunTrendParallel/workers=1" suffix
}
END {
    printf "{\n  \"bench\": \"pr10 atomd: streaming atom daemon serving point queries under live ingest\",\n"
    printf "  \"cores\": %d,\n", numcpu
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"cores\": %d, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, core[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
    }
    printf "  ]"
    m = 0; bestsp = 0; best = ""
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkRunTrendParallel\/workers=/) continue
        if (name ~ /^BenchmarkRunTrendParallel\/workers=1(-[0-9]+)?$/) continue
        bk = basekey(name)
        if (!(bk in ns) || ns[name] <= 0) continue
        sp = ns[bk] / ns[name]
        perw[m++] = sprintf("{\"name\": \"%s\", \"cores\": %d, \"speedup\": %.3f}", name, core[name], sp)
        if (sp > bestsp) {
            bestsp = sp
            best = sprintf("{\"name\": \"%s\", \"cores\": %d, \"speedup\": %.3f}", name, core[name], sp)
        }
    }
    if (m > 0) {
        printf ",\n  \"run_trend_speedup\": {\n    \"baseline\": \"workers=1 at the same GOMAXPROCS\",\n    \"per_worker\": [\n"
        for (i = 0; i < m; i++)
            printf "      %s%s\n", perw[i], (i < m-1 ? "," : "")
        printf "    ],\n    \"best\": %s\n  }", best
    }
    d = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkStreamDecode\/workers=/) continue
        dec[d++] = sprintf("{\"name\": \"%s\", \"cores\": %d, \"mb_s\": %s, \"elems_s\": %s, \"allocs_op\": %s}", \
            name, core[name], mbs[name], eps[name], allocs[name])
    }
    if (d > 0) {
        printf ",\n  \"decode_throughput\": {\n    \"per_worker\": [\n"
        for (i = 0; i < d; i++)
            printf "      %s%s\n", dec[i], (i < d-1 ? "," : "")
        printf "    ]"
        for (name in mbs) {
            if (name ~ /^BenchmarkBytesReader(-[0-9]+)?$/)
                printf ",\n    \"bytes_reader_mb_s\": %s, \"bytes_reader_allocs_op\": %s", mbs[name], allocs[name]
            if (name ~ /^BenchmarkReader(-[0-9]+)?$/)
                printf ",\n    \"bufio_reader_mb_s\": %s", mbs[name]
        }
        printf "\n  }"
    }
    cr = ""; ac = ""
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name ~ /^BenchmarkChurnReplay(-[0-9]+)?$/) cr = name
        if (ac == "" && name ~ /^BenchmarkAtomComputation(-[0-9]+)?$/) ac = name
    }
    if (cr != "") {
        printf ",\n  \"churn_replay\": {\n"
        printf "    \"updates_s\": %s,\n", ups[cr]
        printf "    \"p99_rebucket_ns\": %s,\n", p99[cr]
        printf "    \"allocs_op\": %s", allocs[cr]
        if (ac != "" && p99[cr] > 0)
            printf ",\n    \"full_recompute_ns\": %s,\n    \"p99_speedup_vs_full\": %.1f", ns[ac], ns[ac] / p99[cr]
        if (prevac > 0 && p99[cr] > 0)
            printf ",\n    \"prev_full_recompute_ns\": %s,\n    \"p99_speedup_vs_prev_full\": %.1f", prevac, prevac / p99[cr]
        printf "\n  }"
    }
    dq = 0; ding = ""
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name ~ /^BenchmarkAtomdQuery\//)
            dqa[dq++] = sprintf("{\"name\": \"%s\", \"cores\": %d, \"ns_op\": %s, \"allocs_op\": %s}", \
                name, core[name], ns[name], allocs[name])
        if (name ~ /^BenchmarkAtomdIngest(-[0-9]+)?$/) ding = name
    }
    if (dq > 0 || ding != "") {
        printf ",\n  \"daemon\": {\n"
        if (dq > 0) {
            printf "    \"query\": [\n"
            for (i = 0; i < dq; i++)
                printf "      %s%s\n", dqa[i], (i < dq-1 ? "," : "")
            printf "    ]"
        }
        if (ding != "") {
            if (dq > 0) printf ",\n"
            printf "    \"ingest\": {\"updates_s\": %s, \"ns_op\": %s, \"allocs_op\": %s}", \
                ups[ding], ns[ding], allocs[ding]
        }
        printf "\n  }"
    }
    base = "BenchmarkRunTrendParallel/workers=1"
    if (prevns > 0 && (base in ns)) {
        printf ",\n  \"vs_prev\": {\n    \"baseline_file\": \"%s\",\n", prevfile
        printf "    \"run_trend_workers1\": {\"ns_speedup\": %.3f, \"allocs_ratio\": %.3f,", prevns / ns[base], allocs[base] / prevallocs
        printf " \"prev_allocs_op\": %s, \"allocs_op\": %s}\n  }", prevallocs, allocs[base]
    }
    printf "\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
compare
