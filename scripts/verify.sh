#!/bin/sh
# verify.sh — the repo's full pre-merge check: vet, atomlint, build,
# tests, a race-detector smoke of the concurrency-sensitive packages
# (the obs instruments are lock-free atomics; bgpstream caches counters;
# collector and routing fan work out to the pool), the fault-injection
# harness under -race, the incremental atom-maintenance differential
# (replay vs batch recompute, incl. faultgen-damaged churn) under -race
# plus a churn-bench smoke, the atomd daemon-vs-batch differential and
# shutdown-lifecycle tests under -race, a live-observability smoke
# (start atomrepro with -listen, scrape /metrics and /healthz mid-run,
# lint the exposition), a live-daemon smoke (boot cmd/atomd, TCP
# ingest, HTTP + binary queries, SIGTERM drain), coverage floors on the
# packages the fault model hardens plus the observability layer and the
# daemon, and short fuzz smokes of the wire codecs and the ingest frame
# protocol. Run via `make verify` or directly. Coverage profiles land
# in coverage/ (the CI artifact).
set -eu

cd "$(dirname "$0")/.."

# check_coverage <pkg-dir> <floor-percent>: run the package's tests with
# a coverage profile and fail if total statement coverage drops below
# the floor. Floors sit a few points under the measured value so routine
# churn passes but a hollowed-out test suite does not.
check_coverage() {
	pkg="$1"; floor="$2"
	name="$(basename "$pkg")"
	out="$(go test -coverprofile="coverage/$name.out" "./$pkg/" 2>&1)" || {
		echo "$out"; exit 1
	}
	pct="$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p' | head -1)"
	if [ -z "$pct" ]; then
		echo "coverage: no percentage reported for $pkg"; exit 1
	fi
	ok="$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')"
	if [ "$ok" != 1 ]; then
		echo "coverage: $pkg at $pct% is below the $floor% floor"
		exit 1
	fi
	echo "coverage: $pkg $pct% (floor $floor%)"
}

echo "== go vet ./..."
go vet ./...

echo "== atomlint ./... (determinism, hotpath, wiresafety, locks, aliasing, lifecycle)"
lint_start="$(date +%s)"
go run ./cmd/atomlint -workers 0 ./...
lint_elapsed="$(( $(date +%s) - lint_start ))"
# Lint wall-time gate: the parallel grid keeps the full-suite sweep
# (including go run's compile) well under this; a blowout means an
# analyzer regressed to superlinear work.
if [ "$lint_elapsed" -gt 120 ]; then
	echo "atomlint took ${lint_elapsed}s, over the 120s wall-time gate"
	exit 1
fi
echo "atomlint wall time: ${lint_elapsed}s (gate 120s)"

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (smoke: internal/obs internal/bgpstream)"
go test -race -count=1 ./internal/obs/ ./internal/bgpstream/

echo "== go test -race (worker pool + striped intern table)"
go test -race -count=1 ./internal/parallel/ ./internal/aspath/

echo "== go test -race (collector + routing engine)"
go test -race -count=1 ./internal/collector/ ./internal/routing/

echo "== go test -race (determinism at every worker count)"
go test -race -count=1 -run 'Determinism' ./internal/core/ ./internal/longitudinal/

echo "== go test -race (decode fan-out: merge order, batch API, golden text across workers)"
go test -race -count=1 -run 'TestStreamDeterministicAcrossWorkers|TestNextBatchMatchesNext' ./internal/bgpstream/
go test -race -count=1 -run 'TestExperimentDeterministicAcrossDecodeWorkers' .

echo "== go test -race (fault-injection harness: absorb or contain, never silent)"
go test -race -count=1 -run 'TestHarness' ./internal/faultgen/harness/

echo "== go test -race (incremental atom maintenance: delta differential, incl. faultgen-damaged churn)"
go test -race -count=1 ./internal/replay/
go test -race -count=1 -run 'TestRunChurnReplayDifferential' ./internal/longitudinal/

echo "== go test -race (atomd: daemon-vs-batch differential, shutdown lifecycle, concurrent queries)"
go test -race -count=1 -run 'TestDaemon|TestShutdown|TestRestart|TestConcurrent' ./internal/atomd/

echo "== live observability smoke (atomrepro -listen: scrape /metrics, /healthz, /runreport; promlint)"
go run scripts/obssmoke.go

echo "== live daemon smoke (cmd/atomd: TCP ingest, HTTP + binary queries, SIGTERM drain)"
go run scripts/atomdsmoke.go

echo "== coverage floors (profiles in coverage/)"
mkdir -p coverage
check_coverage internal/bgpstream 90
check_coverage internal/sanitize 84
check_coverage internal/mrt 90
check_coverage internal/obs 85
check_coverage internal/lintkit 85
check_coverage internal/atomd 85

echo "== fuzz smoke (5s per wire codec + reader resync loop)"
go test -fuzz FuzzParseMessage -fuzztime 5s -run '^$' ./internal/mrt/
go test -fuzz FuzzReadRecord -fuzztime 5s -run '^$' ./internal/mrt/
go test -fuzz FuzzParseUpdate -fuzztime 5s -run '^$' ./internal/bgp/
go test -fuzz FuzzIngestFrame -fuzztime 5s -run '^$' ./internal/atomd/

echo "== bench smoke (-benchtime=1x: bench code must compile and run)"
go test -run xxx -bench . -benchtime 1x -benchmem . ./internal/core/ ./internal/aspath/

echo "== decode bench smoke (zero-copy reader + stream fan-out)"
go test -run xxx -bench 'BenchmarkBytesReader$|BenchmarkReader$' -benchtime 1x -benchmem ./internal/mrt/
go test -run xxx -bench 'BenchmarkStreamDecode' -benchtime 1x -benchmem ./internal/bgpstream/

echo "== churn bench smoke (delta kernel: p99 + updates/s metrics must report)"
go test -run xxx -bench 'BenchmarkChurnReplay$' -benchtime 100x -benchmem .
go test -run xxx -bench 'BenchmarkApplyUpdate$' -benchtime 100x -benchmem ./internal/core/

echo "== daemon bench smoke (query hot path + TCP ingest throughput)"
go test -run xxx -bench 'BenchmarkAtomd' -benchtime 1x -benchmem ./internal/atomd/

echo "verify: OK"
