#!/bin/sh
# verify.sh — the repo's full pre-merge check: vet, atomlint, build,
# tests, a race-detector smoke of the concurrency-sensitive packages
# (the obs instruments are lock-free atomics; bgpstream caches counters;
# collector and routing fan work out to the pool), and short fuzz smokes
# of the wire codecs. Run via `make verify` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== atomlint ./... (determinism, hotpath, wiresafety, locks)"
go run ./cmd/atomlint ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (smoke: internal/obs internal/bgpstream)"
go test -race -count=1 ./internal/obs/ ./internal/bgpstream/

echo "== go test -race (worker pool + striped intern table)"
go test -race -count=1 ./internal/parallel/ ./internal/aspath/

echo "== go test -race (collector + routing engine)"
go test -race -count=1 ./internal/collector/ ./internal/routing/

echo "== go test -race (determinism at every worker count)"
go test -race -count=1 -run 'Determinism' ./internal/core/ ./internal/longitudinal/

echo "== fuzz smoke (5s per wire codec)"
go test -fuzz FuzzParseMessage -fuzztime 5s -run '^$' ./internal/mrt/
go test -fuzz FuzzParseUpdate -fuzztime 5s -run '^$' ./internal/bgp/

echo "== bench smoke (-benchtime=1x: bench code must compile and run)"
go test -run xxx -bench . -benchtime 1x -benchmem . ./internal/core/ ./internal/aspath/

echo "verify: OK"
