#!/bin/sh
# verify.sh — the repo's full pre-merge check: vet, build, tests, and a
# race-detector smoke of the concurrency-sensitive packages (the obs
# instruments are lock-free atomics; bgpstream caches counters).
# Run via `make verify` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (smoke: internal/obs internal/bgpstream)"
go test -race -count=1 ./internal/obs/ ./internal/bgpstream/

echo "== go test -race (worker pool + striped intern table)"
go test -race -count=1 ./internal/parallel/ ./internal/aspath/

echo "== go test -race (determinism at every worker count)"
go test -race -count=1 -run 'Determinism' ./internal/core/ ./internal/longitudinal/

echo "== bench smoke (-benchtime=1x: bench code must compile and run)"
go test -run xxx -bench . -benchtime 1x -benchmem . ./internal/core/ ./internal/aspath/

echo "verify: OK"
