package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// etRecord builds a BGP4MP_ET record with the given microsecond stamp.
func etRecord(micro uint32, body []byte) Record {
	return Record{Timestamp: 5000, Micro: micro, Type: TypeBGP4MPET, Subtype: SubMessageAS4, Body: body}
}

// TestBytesReaderZeroAlloc pins the zero-copy contract: iterating a
// clean in-memory archive allocates nothing — not per record, not per
// stream. The reader itself lives on the stack (value construction);
// every Body is a sub-slice of the archive.
func TestBytesReaderZeroAlloc(t *testing.T) {
	data := marshalRecords(t,
		resyncRecord(t, 1),
		etRecord(123456, []byte{9, 8, 7}),
		resyncRecord(t, 2),
	)
	var sink Record
	allocs := testing.AllocsPerRun(200, func() {
		r := BytesReader{data: data}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				panic(err)
			}
			sink = rec
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("BytesReader.Next allocates %.1f per stream, want 0", allocs)
	}
}

func TestBytesReaderBodyAliasesData(t *testing.T) {
	data := marshalRecords(t, resyncRecord(t, 1))
	rec, err := NewBytesReader(data).Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Body) == 0 {
		t.Fatal("empty body")
	}
	// Mutating the archive must show through the record: Body is a view,
	// not a copy.
	data[headerLen] ^= 0xff
	if rec.Body[0] != data[headerLen] {
		t.Error("Body does not alias the backing array")
	}
	// The sub-slice is capacity-capped so appends cannot bleed into the
	// next record's header.
	if cap(rec.Body) != len(rec.Body) {
		t.Errorf("Body cap = %d, want %d (capped view)", cap(rec.Body), len(rec.Body))
	}
}

// traceEvent is one step of a decode-with-recovery run: either a
// decoded record, or an error class, or a resync outcome with its skip
// count. Reader and BytesReader must produce identical traces over the
// same bytes — that is the parity contract the bgpstream degradation
// machinery depends on.
type traceEvent struct {
	rec     Record
	kind    string
	skipped int
}

func decodeTrace(t *testing.T, next func() (Record, error), resync func(int) (int, error), budget int) []traceEvent {
	t.Helper()
	var tr []traceEvent
	for steps := 0; steps < 100; steps++ {
		rec, err := next()
		switch {
		case err == nil:
			tr = append(tr, traceEvent{rec: rec, kind: "record"})
			continue
		case err == io.EOF:
			return append(tr, traceEvent{kind: "eof"})
		case errors.Is(err, ErrTruncated):
			tr = append(tr, traceEvent{kind: "truncated"})
		case errors.Is(err, ErrBadRecord):
			tr = append(tr, traceEvent{kind: "bad-record"})
		default:
			t.Fatalf("unexpected decode error: %v", err)
		}
		skipped, rerr := resync(budget)
		switch {
		case rerr == nil:
			tr = append(tr, traceEvent{kind: "resync", skipped: skipped})
		case rerr == io.EOF:
			return append(tr, traceEvent{kind: "resync-eof", skipped: skipped})
		case errors.Is(rerr, ErrTruncated):
			return append(tr, traceEvent{kind: "resync-budget", skipped: skipped})
		default:
			t.Fatalf("unexpected resync error: %v", rerr)
		}
	}
	t.Fatal("decode trace did not terminate")
	return nil
}

func sameTrace(a, b []traceEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.kind != y.kind || x.skipped != y.skipped {
			return false
		}
		if x.rec.Timestamp != y.rec.Timestamp || x.rec.Micro != y.rec.Micro ||
			x.rec.Type != y.rec.Type || x.rec.Subtype != y.rec.Subtype ||
			!bytes.Equal(x.rec.Body, y.rec.Body) {
			return false
		}
	}
	return true
}

// TestBytesReaderParity runs both readers over the same damaged
// streams and demands byte-identical traces: same records, same error
// classes in the same positions, same resync skip counts. This is what
// lets bgpstream swap readers per source without changing a single
// warning or degradation decision.
func TestBytesReaderParity(t *testing.T) {
	r1 := resyncRecord(t, 1)
	r2 := resyncRecord(t, 2)
	clean := marshalRecords(t, r1, etRecord(77, []byte{1, 2, 3, 4, 5}), r2)

	garbage := append([]byte(nil), marshalRecords(t, r1)...)
	garbage = append(garbage, bytes.Repeat([]byte{0xff}, 20)...)
	garbage = append(garbage, marshalRecords(t, r2)...)

	truncated := marshalRecords(t, r1, r2)
	truncated = truncated[:len(truncated)-3]

	headerCut := marshalRecords(t, r1)
	headerCut = append(headerCut, marshalRecords(t, r2)[:5]...)

	oversize := append([]byte(nil), marshalRecords(t, r1, r2)...)
	oversize[8], oversize[9] = 0xff, 0xff // absurd length on record 1

	noBoundary := append(bytes.Repeat([]byte{0xff}, 12), make([]byte, 64)...)

	cases := []struct {
		name   string
		data   []byte
		budget int
	}{
		{"clean", clean, 0},
		{"garbage mid-stream", garbage, 0},
		{"truncated tail", truncated, 0},
		{"header cut", headerCut, 0},
		{"oversize length", oversize, 0},
		{"scan budget exhausted", noBoundary, 16},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rd := NewReader(bytes.NewReader(c.data))
			want := decodeTrace(t, rd.Next, rd.Resync, c.budget)
			br := NewBytesReader(c.data)
			got := decodeTrace(t, br.Next, br.Resync, c.budget)
			if !sameTrace(want, got) {
				t.Errorf("traces diverge:\nReader:      %+v\nBytesReader: %+v", want, got)
			}
		})
	}
}

func TestBytesReaderOffset(t *testing.T) {
	data := marshalRecords(t, resyncRecord(t, 1), resyncRecord(t, 2))
	r := NewBytesReader(data)
	if r.Offset() != 0 {
		t.Fatalf("initial offset = %d", r.Offset())
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	first := r.Offset()
	if first <= headerLen {
		t.Errorf("offset after one record = %d, want > %d", first, headerLen)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Offset() != len(data) {
		t.Errorf("offset after all records = %d, want %d", r.Offset(), len(data))
	}
}

func TestCountRecords(t *testing.T) {
	r1 := resyncRecord(t, 1)
	r2 := resyncRecord(t, 2)
	clean := marshalRecords(t, r1, r2)
	if n := countRecords(clean); n != 2 {
		t.Errorf("clean: %d records, want 2", n)
	}
	if n := countRecords(clean[:len(clean)-1]); n != 1 {
		t.Errorf("truncated: %d records, want 1", n)
	}
	bad := append([]byte(nil), clean...)
	bad[8], bad[9] = 0xff, 0xff
	if n := countRecords(bad); n != 0 {
		t.Errorf("oversize first: %d records, want 0", n)
	}
	if n := countRecords(nil); n != 0 {
		t.Errorf("empty: %d records, want 0", n)
	}
}

// TestReadAllFastPath checks that the *bytes.Reader fast path decodes
// identically to the generic io.Reader path and pre-sizes its output
// exactly from the header scan.
func TestReadAllFastPath(t *testing.T) {
	data := marshalRecords(t,
		resyncRecord(t, 1),
		etRecord(42, []byte{6, 6, 6, 6}),
		resyncRecord(t, 2),
	)
	fast, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ReadAll(struct{ io.Reader }{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("fast path %d records, slow path %d", len(fast), len(slow))
	}
	for i := range fast {
		f, s := fast[i], slow[i]
		if f.Timestamp != s.Timestamp || f.Micro != s.Micro || f.Type != s.Type ||
			f.Subtype != s.Subtype || !bytes.Equal(f.Body, s.Body) {
			t.Errorf("record %d: fast %+v != slow %+v", i, f, s)
		}
	}
	if cap(fast) != len(fast) {
		t.Errorf("fast path cap = %d, want %d (exact pre-size)", cap(fast), len(fast))
	}

	// A damaged archive errors identically on both paths.
	cut := data[:len(data)-2]
	if _, err := ReadAll(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Errorf("fast path on truncated archive: %v, want ErrTruncated", err)
	}
	if _, err := ReadAll(struct{ io.Reader }{bytes.NewReader(cut)}); !errors.Is(err, ErrTruncated) {
		t.Errorf("slow path on truncated archive: %v, want ErrTruncated", err)
	}
}
