package mrt

import (
	"bytes"
	"io"
	"testing"
)

// benchArchive builds an in-memory archive of BGP4MP message records.
func benchArchive(b *testing.B, records int) []byte {
	b.Helper()
	src := allocTestMessage()
	body, err := src.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var archive bytes.Buffer
	w := NewWriter(&archive)
	for i := 0; i < records; i++ {
		if err := w.WriteRecord(Record{Timestamp: uint32(i), Type: TypeBGP4MP, Subtype: src.Subtype(), Body: body}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return archive.Bytes()
}

// BenchmarkBytesReader measures raw record iteration over an in-memory
// archive — the zero-copy floor every higher layer builds on. MB/s is
// archive bytes per wall second.
func BenchmarkBytesReader(b *testing.B) {
	data := benchArchive(b, 2048)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := BytesReader{data: data}
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReader is the bufio counterpart over the same bytes, for the
// copy-vs-alias comparison in BENCH reports.
func BenchmarkReader(b *testing.B) {
	data := benchArchive(b, 2048)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		r.SetReuseBuffer(true)
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
