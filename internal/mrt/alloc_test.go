package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

func allocTestMessage() Message {
	return Message{
		PeerAS: 64500, LocalAS: 12654,
		PeerAddr:  netip.MustParseAddr("192.0.2.7"),
		LocalAddr: netip.MustParseAddr("192.0.2.1"),
		Data:      bytes.Repeat([]byte{0xab}, 48),
		AS4:       true,
	}
}

// The BGP4MP codec hot path: AppendMarshal into a reused buffer and
// ParseMessageInto into a reused Message must not allocate.
func TestMessageCodecSteadyStateAllocs(t *testing.T) {
	src := allocTestMessage()
	body, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	var m Message
	n := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = src.AppendMarshal(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseMessageInto(&m, src.Subtype(), body); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("BGP4MP codec steady state: %v allocs/op, want 0", n)
	}
	if !bytes.Equal(buf, body) {
		t.Fatal("AppendMarshal output diverged from Marshal")
	}
}

// With buffer reuse on, draining an archive allocates a small constant
// (reader + buffer growth), not one body per record.
func TestReaderReuseBufferAllocs(t *testing.T) {
	src := allocTestMessage()
	body, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var archive bytes.Buffer
	w := NewWriter(&archive)
	const records = 200
	for i := 0; i < records; i++ {
		if err := w.WriteRecord(Record{Timestamp: uint32(i), Type: TypeBGP4MP, Subtype: src.Subtype(), Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := archive.Bytes()

	n := testing.AllocsPerRun(1, func() {
		r := NewReader(bytes.NewReader(data))
		r.SetReuseBuffer(true)
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	// Reader + bufio buffer + one body buffer, regardless of record
	// count. Without reuse this is >= one allocation per record.
	if n > 10 {
		t.Fatalf("reuse-buffer drain of %d records: %v allocs, want <= 10", records, n)
	}
}
