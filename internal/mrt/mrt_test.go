package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/aspath"
	"repro/internal/bgp"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Timestamp: 1000, Type: TypeTableDumpV2, Subtype: SubPeerIndexTable, Body: []byte{1, 2, 3}},
		{Timestamp: 2000, Type: TypeBGP4MP, Subtype: SubMessageAS4, Body: []byte{4, 5}},
		{Timestamp: 3000, Micro: 123456, Type: TypeBGP4MPET, Subtype: SubMessageAS4, Body: []byte{6}},
		{Timestamp: 4000, Type: TypeBGP4MP, Subtype: 9, Body: nil}, // the paper's "unknown subtype 9"
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i, r := range recs {
		g := got[i]
		if g.Timestamp != r.Timestamp || g.Type != r.Type || g.Subtype != r.Subtype || g.Micro != r.Micro {
			t.Errorf("record %d header = %+v, want %+v", i, g, r)
		}
		if !bytes.Equal(g.Body, r.Body) {
			t.Errorf("record %d body = %v, want %v", i, g.Body, r.Body)
		}
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(Record{Type: TypeBGP4MP, Subtype: SubMessage, Body: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()

	// Clean EOF on empty stream.
	if _, err := NewReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Errorf("empty: %v", err)
	}
	// Cut inside the header.
	if _, err := NewReader(bytes.NewReader(full[:5])).Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("header cut: %v", err)
	}
	// Cut inside the body.
	if _, err := NewReader(bytes.NewReader(full[:headerLen+2])).Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("body cut: %v", err)
	}
	// ET record with body too short for microseconds.
	var b2 bytes.Buffer
	w2 := NewWriter(&b2)
	// Hand-craft: declare ET but give 4-byte body so micro consumes it all — valid.
	w2.WriteRecord(Record{Type: TypeBGP4MPET, Micro: 77, Body: nil})
	w2.Flush()
	rec, err := NewReader(&b2).Next()
	if err != nil || rec.Micro != 77 || len(rec.Body) != 0 {
		t.Errorf("ET empty body: %+v, %v", rec, err)
	}
	// Oversized length field.
	bad := append([]byte(nil), full...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrBadRecord) {
		t.Errorf("oversize: %v", err)
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	tbl := &PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("192.0.2.10"), ASN: 3356},
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("2001:db8::5"), ASN: 400000},
		},
	}
	b, err := tbl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePeerIndexTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.CollectorID != tbl.CollectorID || got.ViewName != "rrc00" {
		t.Errorf("header = %+v", got)
	}
	if len(got.Peers) != 2 {
		t.Fatalf("peers = %d", len(got.Peers))
	}
	for i := range tbl.Peers {
		if got.Peers[i] != tbl.Peers[i] {
			t.Errorf("peer %d = %+v, want %+v", i, got.Peers[i], tbl.Peers[i])
		}
	}
}

func TestPeerIndexTable2OctetASN(t *testing.T) {
	// Hand-encode a peer with the AS4 bit clear to exercise the 2-octet
	// decode path (older archives).
	var b []byte
	id := netip.MustParseAddr("1.2.3.4").As4()
	b = append(b, id[:]...)
	b = append(b, 0, 0) // empty view name
	b = append(b, 0, 1) // one peer
	b = append(b, 0)    // type: v4 addr, 2-octet ASN
	b = append(b, id[:]...)
	addr := netip.MustParseAddr("9.9.9.9").As4()
	b = append(b, addr[:]...)
	b = append(b, 0x0c, 0xe4) // ASN 3300
	got, err := ParsePeerIndexTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Peers[0].ASN != 3300 {
		t.Errorf("ASN = %d", got.Peers[0].ASN)
	}
}

func TestPeerIndexTableErrors(t *testing.T) {
	if _, err := ParsePeerIndexTable([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	tbl := &PeerIndexTable{CollectorID: netip.MustParseAddr("1.2.3.4"),
		Peers: []Peer{{BGPID: netip.MustParseAddr("1.1.1.1"), Addr: netip.MustParseAddr("2.2.2.2"), ASN: 1}}}
	b, _ := tbl.Marshal()
	for cut := 1; cut < len(b); cut++ {
		if _, err := ParsePeerIndexTable(b[:cut]); err == nil {
			t.Errorf("cut at %d parsed", cut)
		}
	}
	// Trailing garbage rejected.
	if _, err := ParsePeerIndexTable(append(b, 0xff)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("trailing: %v", err)
	}
	bad := &PeerIndexTable{CollectorID: netip.MustParseAddr("2001:db8::1")}
	if _, err := bad.Marshal(); !errors.Is(err, ErrBadRecord) {
		t.Errorf("v6 collector id: %v", err)
	}
}

func ribAttrs(t *testing.T, seq aspath.Seq) []byte {
	t.Helper()
	attrs := []bgp.Attr{
		bgp.Origin(bgp.OriginIGP),
		bgp.ASPath{Path: aspath.FromSeq(seq)},
		bgp.NextHop(netip.MustParseAddr("192.0.2.1")),
	}
	b, err := bgp.MarshalAttributes(attrs, bgp.Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRIBRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		prefix  string
		addPath bool
		wantSub uint16
	}{
		{"10.0.0.0/8", false, SubRIBIPv4Unicast},
		{"10.0.0.0/8", true, SubRIBIPv4UnicastAP},
		{"2001:db8::/32", false, SubRIBIPv6Unicast},
		{"2001:db8::/32", true, SubRIBIPv6UnicastAP},
		{"0.0.0.0/0", false, SubRIBIPv4Unicast},
	} {
		rib := &RIB{
			Sequence: 7,
			Prefix:   netip.MustParsePrefix(tc.prefix),
			AddPath:  tc.addPath,
			Entries: []RIBEntry{
				{PeerIndex: 0, Originated: 111, PathID: 9, Attrs: ribAttrs(t, aspath.Seq{1, 2, 3})},
				{PeerIndex: 3, Originated: 222, PathID: 10, Attrs: ribAttrs(t, aspath.Seq{4, 5})},
			},
		}
		if got := rib.Subtype(); got != tc.wantSub {
			t.Errorf("%s addpath=%v: subtype %d, want %d", tc.prefix, tc.addPath, got, tc.wantSub)
		}
		b, err := rib.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseRIB(rib.Subtype(), b)
		if err != nil {
			t.Fatalf("%s: %v", tc.prefix, err)
		}
		if got.Sequence != 7 || got.Prefix != rib.Prefix || len(got.Entries) != 2 {
			t.Errorf("%s: got %+v", tc.prefix, got)
		}
		if got.Entries[1].PeerIndex != 3 || got.Entries[1].Originated != 222 {
			t.Errorf("%s: entry = %+v", tc.prefix, got.Entries[1])
		}
		if tc.addPath && got.Entries[0].PathID != 9 {
			t.Errorf("%s: path id lost", tc.prefix)
		}
		if !tc.addPath && got.Entries[0].PathID != 0 {
			t.Errorf("%s: phantom path id", tc.prefix)
		}
		// Attributes decode back to the original path.
		attrs, err := bgp.ParseAttributes(got.Entries[0].Attrs, bgp.Options{AS4: true})
		if err != nil {
			t.Fatal(err)
		}
		var found bool
		for _, a := range attrs {
			if ap, ok := a.(bgp.ASPath); ok {
				s, err := ap.Path.Sequence()
				if err != nil {
					t.Fatal(err)
				}
				if !s.Equal(aspath.Seq{1, 2, 3}) {
					t.Errorf("path = %v", s)
				}
				found = true
			}
		}
		if !found {
			t.Error("AS_PATH missing from decoded entry")
		}
	}
}

func TestParseRIBErrors(t *testing.T) {
	if _, err := ParseRIB(SubRIBGeneric, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("generic: %v", err)
	}
	if _, err := ParseRIB(SubRIBIPv4Unicast, []byte{1}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	// Prefix length byte beyond family max.
	if _, err := ParseRIB(SubRIBIPv4Unicast, []byte{0, 0, 0, 1, 64, 0, 0}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("bits: %v", err)
	}
	rib := &RIB{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		Entries: []RIBEntry{{Attrs: []byte{1, 2, 3}}}}
	b, _ := rib.Marshal()
	for cut := 5; cut < len(b); cut++ {
		if _, err := ParseRIB(SubRIBIPv4Unicast, b[:cut]); err == nil {
			t.Errorf("cut %d parsed", cut)
		}
	}
	if _, err := ParseRIB(SubRIBIPv4Unicast, append(b, 0)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("trailing: %v", err)
	}
}

func TestBGP4MPMessageRoundTrip(t *testing.T) {
	upd, err := bgp.NewAnnouncement(aspath.Seq{65001, 65002}, netip.MustParseAddr("192.0.2.1"),
		[]netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")})
	if err != nil {
		t.Fatal(err)
	}
	data, err := upd.Marshal(bgp.Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		as4, addPath bool
		peer, local  string
	}{
		{true, false, "192.0.2.10", "192.0.2.20"},
		{false, false, "192.0.2.10", "192.0.2.20"},
		{true, true, "192.0.2.10", "192.0.2.20"},
		{true, false, "2001:db8::10", "2001:db8::20"},
	} {
		m := &Message{
			PeerAS: 3356, LocalAS: 65000, Interface: 1,
			PeerAddr: netip.MustParseAddr(tc.peer), LocalAddr: netip.MustParseAddr(tc.local),
			Data: data, AS4: tc.as4, AddPath: tc.addPath,
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseMessage(m.Subtype(), b)
		if err != nil {
			t.Fatal(err)
		}
		if got.PeerAS != 3356 || got.LocalAS != 65000 || got.PeerAddr != m.PeerAddr || got.LocalAddr != m.LocalAddr {
			t.Errorf("%+v: got %+v", tc, got)
		}
		if got.AS4 != tc.as4 || got.AddPath != tc.addPath {
			t.Errorf("%+v: flags %+v", tc, got)
		}
		if _, err := bgp.ParseUpdate(got.Data, bgp.Options{AS4: true}); err != nil {
			t.Errorf("%+v: inner update: %v", tc, err)
		}
	}
}

func TestBGP4MPMessageErrors(t *testing.T) {
	m := &Message{PeerAS: 100000, LocalAS: 1,
		PeerAddr: netip.MustParseAddr("1.1.1.1"), LocalAddr: netip.MustParseAddr("2.2.2.2")}
	if _, err := m.Marshal(); !errors.Is(err, ErrBadRecord) {
		t.Errorf("4-octet ASN in 2-octet subtype: %v", err)
	}
	mix := &Message{PeerAddr: netip.MustParseAddr("1.1.1.1"), LocalAddr: netip.MustParseAddr("2001:db8::1")}
	if _, err := mix.Marshal(); !errors.Is(err, ErrBadRecord) {
		t.Errorf("family mismatch: %v", err)
	}
	if _, err := ParseMessage(99, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("subtype: %v", err)
	}
	if _, err := ParseMessage(SubMessage, []byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	// Bad AFI.
	body := []byte{0, 1, 0, 2, 0, 0, 0, 9}
	if _, err := ParseMessage(SubMessage, body); !errors.Is(err, ErrBadRecord) {
		t.Errorf("afi: %v", err)
	}
}

func TestStateChangeRoundTrip(t *testing.T) {
	for _, as4 := range []bool{false, true} {
		sc := &StateChange{
			PeerAS: 3356, LocalAS: 65000,
			PeerAddr: netip.MustParseAddr("192.0.2.10"), LocalAddr: netip.MustParseAddr("192.0.2.20"),
			OldState: StateOpenConfirm, NewState: StateEstablished, AS4: as4,
		}
		b, err := sc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseStateChange(sc.Subtype(), b)
		if err != nil {
			t.Fatal(err)
		}
		if got.OldState != StateOpenConfirm || got.NewState != StateEstablished || got.PeerAS != 3356 {
			t.Errorf("as4=%v: %+v", as4, got)
		}
	}
	if _, err := ParseStateChange(SubMessage, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("subtype: %v", err)
	}
}

func TestRecordClassifiers(t *testing.T) {
	if !(Record{Type: TypeTableDumpV2, Subtype: SubRIBIPv4Unicast}).IsRIB() {
		t.Error("v4 rib")
	}
	if !(Record{Type: TypeTableDumpV2, Subtype: SubRIBIPv6UnicastAP}).IsRIB() {
		t.Error("v6 addpath rib")
	}
	if (Record{Type: TypeTableDumpV2, Subtype: SubPeerIndexTable}).IsRIB() {
		t.Error("peer index is not rib")
	}
	if (Record{Type: TypeBGP4MP, Subtype: SubMessage}).IsRIB() {
		t.Error("bgp4mp is not rib")
	}
	if !(Record{Type: TypeTableDumpV2, Subtype: SubRIBIPv4UnicastAP}).IsAddPath() {
		t.Error("rib addpath flag")
	}
	if !(Record{Type: TypeBGP4MP, Subtype: SubMessageAS4AP}).IsAddPath() {
		t.Error("msg addpath flag")
	}
	if (Record{Type: TypeBGP4MP, Subtype: SubMessageAS4}).IsAddPath() {
		t.Error("plain msg addpath flag")
	}
}

// TestEndToEndDump exercises a full write-then-read cycle of a small RIB
// dump followed by updates — the shape of a real collector archive.
func TestEndToEndDump(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	pit := &PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("192.0.2.10"), ASN: 3356},
		},
	}
	body, err := pit.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(Record{Timestamp: 100, Type: TypeTableDumpV2, Subtype: SubPeerIndexTable, Body: body})

	rib := &RIB{Sequence: 0, Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		Entries: []RIBEntry{{PeerIndex: 0, Originated: 90, Attrs: ribAttrs(t, aspath.Seq{3356, 65001})}}}
	body, err = rib.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(Record{Timestamp: 100, Type: TypeTableDumpV2, Subtype: rib.Subtype(), Body: body})

	upd, _ := bgp.NewAnnouncement(aspath.Seq{3356, 65001}, netip.MustParseAddr("192.0.2.1"),
		[]netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")})
	data, _ := upd.Marshal(bgp.Options{AS4: true})
	msg := &Message{PeerAS: 3356, LocalAS: 12654, PeerAddr: netip.MustParseAddr("192.0.2.10"),
		LocalAddr: netip.MustParseAddr("192.0.2.1"), Data: data, AS4: true}
	body, err = msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(Record{Timestamp: 160, Type: TypeBGP4MP, Subtype: msg.Subtype(), Body: body})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if _, err := ParsePeerIndexTable(recs[0].Body); err != nil {
		t.Errorf("peer index: %v", err)
	}
	gotRIB, err := ParseRIB(recs[1].Subtype, recs[1].Body)
	if err != nil {
		t.Fatal(err)
	}
	if gotRIB.Prefix.String() != "10.0.0.0/8" {
		t.Errorf("rib prefix = %v", gotRIB.Prefix)
	}
	gotMsg, err := ParseMessage(recs[2].Subtype, recs[2].Body)
	if err != nil {
		t.Fatal(err)
	}
	u, err := bgp.ParseUpdate(gotMsg.Data, bgp.Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Reachable()) != 1 {
		t.Error("update lost NLRI")
	}
}

// TestRecordRoundTripQuick fuzzes the record framing with random bodies
// and types: whatever is written must read back identically.
func TestRecordRoundTripQuick(t *testing.T) {
	f := func(ts uint32, typ, sub uint16, body []byte) bool {
		if typ == TypeBGP4MPET {
			typ = TypeBGP4MP // ET handled separately below
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(Record{Timestamp: ts, Type: typ, Subtype: sub, Body: body}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		return got.Timestamp == ts && got.Type == typ && got.Subtype == sub && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// ET variant preserves microseconds.
	fET := func(ts, micro uint32, body []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(Record{Timestamp: ts, Micro: micro, Type: TypeBGP4MPET, Subtype: SubMessageAS4, Body: body}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		return got.Micro == micro && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(fET, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMultiRecordStreamQuick writes several random records and reads
// them back in order.
func TestMultiRecordStreamQuick(t *testing.T) {
	f := func(bodies [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, b := range bodies {
			if err := w.WriteRecord(Record{Timestamp: uint32(i), Type: TypeBGP4MP, Subtype: SubMessage, Body: b}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != len(bodies) {
			return false
		}
		for i, b := range bodies {
			if recs[i].Timestamp != uint32(i) || !bytes.Equal(recs[i].Body, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
