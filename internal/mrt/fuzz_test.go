package mrt

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzParseMessage drives the BGP4MP body decoder with arbitrary
// subtype/payload pairs. Two properties: the parser never panics on
// hostile input (the wiresafety invariant), and any body it accepts
// re-marshals to a form it parses back to the same message.
func FuzzParseMessage(f *testing.F) {
	seed := func(m *Message) {
		body, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(m.Subtype(), body)
	}
	v4p, v4l := netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2")
	v6p, v6l := netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2")
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	seed(&Message{PeerAS: 65001, LocalAS: 65002, PeerAddr: v4p, LocalAddr: v4l, Data: payload})
	seed(&Message{PeerAS: 400000, LocalAS: 65002, PeerAddr: v4p, LocalAddr: v4l, AS4: true, Data: payload})
	seed(&Message{PeerAS: 65001, LocalAS: 65002, PeerAddr: v6p, LocalAddr: v6l, AddPath: true, Data: payload})
	seed(&Message{PeerAS: 400000, LocalAS: 400001, PeerAddr: v6p, LocalAddr: v6l, AS4: true, AddPath: true, Data: nil})
	f.Add(SubStateChange, []byte{})
	f.Add(uint16(99), payload)
	f.Add(SubMessage, []byte{0xff})

	f.Fuzz(func(t *testing.T, subtype uint16, body []byte) {
		var m Message
		if err := ParseMessageInto(&m, subtype, body); err != nil {
			return
		}
		out, err := m.AppendMarshal(nil)
		if err != nil {
			t.Fatalf("re-marshal of parsed message failed: %v", err)
		}
		var m2 Message
		if err := ParseMessageInto(&m2, m.Subtype(), out); err != nil {
			t.Fatalf("re-parse of re-marshaled message failed: %v", err)
		}
		if m2.PeerAS != m.PeerAS || m2.LocalAS != m.LocalAS || m2.Interface != m.Interface ||
			m2.PeerAddr != m.PeerAddr || m2.LocalAddr != m.LocalAddr ||
			m2.AS4 != m.AS4 || m2.AddPath != m.AddPath || !bytes.Equal(m2.Data, m.Data) {
			t.Fatalf("round trip diverged:\n first = %+v\nsecond = %+v", m, m2)
		}
	})
}
