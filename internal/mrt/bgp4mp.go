package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message is a BGP4MP MESSAGE(_AS4)(_ADDPATH) record: one BGP message as
// exchanged between a collector and a peer, with addressing context.
type Message struct {
	PeerAS    uint32
	LocalAS   uint32
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	// Data is the full BGP message, header included.
	Data []byte
	// AS4 records whether the subtype carried 4-octet ASNs; AddPath
	// whether NLRI inside Data uses ADD-PATH encoding.
	AS4     bool
	AddPath bool
}

// Subtype returns the BGP4MP subtype matching the message's flags.
func (m *Message) Subtype() uint16 {
	switch {
	case m.AS4 && m.AddPath:
		return SubMessageAS4AP
	case m.AS4:
		return SubMessageAS4
	case m.AddPath:
		return SubMessageAP
	default:
		return SubMessage
	}
}

// afi returns the BGP4MP address-family code for the peer address.
func afiFor(a netip.Addr) uint16 {
	if a.Is6() && !a.Is4In6() {
		return 2
	}
	return 1
}

// Marshal encodes the BGP4MP message body.
func (m *Message) Marshal() ([]byte, error) {
	return m.AppendMarshal(nil)
}

// AppendMarshal appends the encoded BGP4MP message body to dst — a
// caller looping over messages can reuse one scratch buffer.
//
//atomlint:hotpath
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	afi := afiFor(m.PeerAddr)
	if afiFor(m.LocalAddr) != afi {
		return nil, fmt.Errorf("%w: peer/local address family mismatch", ErrBadRecord)
	}
	out := dst
	if m.AS4 {
		out = binary.BigEndian.AppendUint32(out, m.PeerAS)
		out = binary.BigEndian.AppendUint32(out, m.LocalAS)
	} else {
		if m.PeerAS > 0xffff || m.LocalAS > 0xffff {
			return nil, fmt.Errorf("%w: 4-octet ASN in 2-octet subtype", ErrBadRecord)
		}
		out = binary.BigEndian.AppendUint16(out, uint16(m.PeerAS))
		out = binary.BigEndian.AppendUint16(out, uint16(m.LocalAS))
	}
	out = binary.BigEndian.AppendUint16(out, m.Interface)
	out = binary.BigEndian.AppendUint16(out, afi)
	if afi == 2 {
		p, l := m.PeerAddr.As16(), m.LocalAddr.As16()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	} else {
		p, l := m.PeerAddr.Unmap().As4(), m.LocalAddr.Unmap().As4()
		out = append(out, p[:]...)
		out = append(out, l[:]...)
	}
	return append(out, m.Data...), nil
}

// ParseMessage decodes a BGP4MP MESSAGE-family body. The subtype selects
// ASN width and ADD-PATH mode.
func ParseMessage(subtype uint16, b []byte) (*Message, error) {
	m := &Message{}
	if err := ParseMessageInto(m, subtype, b); err != nil {
		return nil, err
	}
	// Preserve the historical contract: the returned message owns its
	// payload.
	m.Data = append([]byte(nil), m.Data...)
	return m, nil
}

// ParseMessageInto decodes a BGP4MP MESSAGE-family body into m without
// copying: m.Data aliases b and is only valid until b's backing buffer
// is reused. Allocation-free hot path for streaming decoders.
//
//atomlint:hotpath
//atomlint:borrowed m.Data aliases b; the out-param slot must be a local or a declared scratch
func ParseMessageInto(m *Message, subtype uint16, b []byte) error {
	*m = Message{}
	switch subtype {
	case SubMessage, SubMessageLocal:
	case SubMessageAS4, SubMessageAS4Local:
		m.AS4 = true
	case SubMessageAP, SubMessageLocalAP:
		m.AddPath = true
	case SubMessageAS4AP, SubMessageAS4LocAP:
		m.AS4, m.AddPath = true, true
	default:
		return fmt.Errorf("%w: BGP4MP subtype %d", ErrUnsupported, subtype)
	}
	asnLen := 2
	if m.AS4 {
		asnLen = 4
	}
	need := 2*asnLen + 4
	if len(b) < need {
		return fmt.Errorf("%w: BGP4MP header", ErrTruncated)
	}
	if m.AS4 {
		m.PeerAS = binary.BigEndian.Uint32(b[:4])
		m.LocalAS = binary.BigEndian.Uint32(b[4:8])
		b = b[8:]
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(b[:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(b[2:4]))
		b = b[4:]
	}
	m.Interface = binary.BigEndian.Uint16(b[:2])
	afi := binary.BigEndian.Uint16(b[2:4])
	b = b[4:]
	switch afi {
	case 1:
		if len(b) < 8 {
			return fmt.Errorf("%w: BGP4MP v4 addresses", ErrTruncated)
		}
		m.PeerAddr = netip.AddrFrom4([4]byte(b[:4]))
		m.LocalAddr = netip.AddrFrom4([4]byte(b[4:8]))
		b = b[8:]
	case 2:
		if len(b) < 32 {
			return fmt.Errorf("%w: BGP4MP v6 addresses", ErrTruncated)
		}
		m.PeerAddr = netip.AddrFrom16([16]byte(b[:16]))
		m.LocalAddr = netip.AddrFrom16([16]byte(b[16:32]))
		b = b[32:]
	default:
		return fmt.Errorf("%w: BGP4MP AFI %d", ErrBadRecord, afi)
	}
	m.Data = b
	return nil
}

// StateChange is a BGP4MP STATE_CHANGE(_AS4) record.
type StateChange struct {
	PeerAS    uint32
	LocalAS   uint32
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	OldState  uint16
	NewState  uint16
	AS4       bool
}

// FSM states (RFC 4271 §8.2.2 numbering used by MRT).
const (
	StateIdle        uint16 = 1
	StateConnect     uint16 = 2
	StateActive      uint16 = 3
	StateOpenSent    uint16 = 4
	StateOpenConfirm uint16 = 5
	StateEstablished uint16 = 6
)

// Subtype returns the BGP4MP subtype for the state change.
func (s *StateChange) Subtype() uint16 {
	if s.AS4 {
		return SubStateChangeAS4
	}
	return SubStateChange
}

// Marshal encodes the state-change body.
func (s *StateChange) Marshal() ([]byte, error) {
	msg := Message{
		PeerAS: s.PeerAS, LocalAS: s.LocalAS, Interface: s.Interface,
		PeerAddr: s.PeerAddr, LocalAddr: s.LocalAddr, AS4: s.AS4,
	}
	var states [4]byte
	binary.BigEndian.PutUint16(states[:2], s.OldState)
	binary.BigEndian.PutUint16(states[2:], s.NewState)
	msg.Data = states[:]
	return msg.Marshal()
}

// ParseStateChange decodes a STATE_CHANGE(_AS4) body.
func ParseStateChange(subtype uint16, b []byte) (*StateChange, error) {
	var msgSub uint16
	switch subtype {
	case SubStateChange:
		msgSub = SubMessage
	case SubStateChangeAS4:
		msgSub = SubMessageAS4
	default:
		return nil, fmt.Errorf("%w: state-change subtype %d", ErrUnsupported, subtype)
	}
	m, err := ParseMessage(msgSub, b)
	if err != nil {
		return nil, err
	}
	if len(m.Data) != 4 {
		return nil, fmt.Errorf("%w: state change payload %d bytes", ErrBadRecord, len(m.Data))
	}
	return &StateChange{
		PeerAS: m.PeerAS, LocalAS: m.LocalAS, Interface: m.Interface,
		PeerAddr: m.PeerAddr, LocalAddr: m.LocalAddr,
		OldState: binary.BigEndian.Uint16(m.Data[:2]),
		NewState: binary.BigEndian.Uint16(m.Data[2:]),
		AS4:      subtype == SubStateChangeAS4,
	}, nil
}
