// FuzzReadRecord lives in an external test package so it can seed the
// corpus with faultgen-damaged archives (faultgen imports mrt; an
// in-package test would be an import cycle).
package mrt_test

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"repro/internal/faultgen"
	"repro/internal/mrt"
)

// fuzzCleanArchive builds a small parseable archive: PIT, RIB records,
// and BGP4MP messages — every record family the resync scanner locks
// onto.
func fuzzCleanArchive(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		Peers: []mrt.Peer{{
			BGPID: netip.MustParseAddr("203.0.113.1"),
			Addr:  netip.MustParseAddr("203.0.113.1"),
			ASN:   65001,
		}},
	}
	body, err := pit.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRecord(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body}); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rib := &mrt.RIB{
			Sequence: uint32(i),
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			Entries:  []mrt.RIBEntry{{PeerIndex: 0, Originated: 1000}},
		}
		rb, err := rib.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		if err := w.WriteRecord(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: rb}); err != nil {
			f.Fatal(err)
		}
	}
	m := &mrt.Message{
		PeerAS: 65001, LocalAS: 65002,
		PeerAddr:  netip.MustParseAddr("203.0.113.1"),
		LocalAddr: netip.MustParseAddr("203.0.113.2"),
		AS4:       true, Data: []byte{1, 2, 3, 4},
	}
	mb, err := m.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRecord(mrt.Record{Timestamp: 1004, Type: mrt.TypeBGP4MP, Subtype: m.Subtype(), Body: mb}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadRecord drives the reader's skip-and-resync loop — the exact
// loop bgpstream runs on a damaged source. Properties: no panic, the
// loop always terminates within the resync budget, and a record stream
// never yields more records than the input could physically frame.
func FuzzReadRecord(f *testing.F) {
	clean := fuzzCleanArchive(f)
	f.Add(clean)
	archives := map[string][]byte{"seed": clean}
	for _, class := range faultgen.AllClasses() {
		sched, err := faultgen.Plan(faultgen.Config{Seed: 5, Classes: []faultgen.Class{class}}, archives)
		if err != nil {
			f.Fatal(err)
		}
		damaged, err := faultgen.Apply(sched, archives)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(damaged["seed"])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Add(append(bytes.Repeat([]byte{0x00}, 17), clean...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := mrt.NewReader(bytes.NewReader(data))
		records, resyncs := 0, 0
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if resyncs >= 8 {
					break
				}
				resyncs++
				if _, rerr := rd.Resync(1 << 16); rerr != nil {
					break
				}
				continue
			}
			records++
			// Every record consumes at least a 12-byte header.
			if records > len(data)/12+1 {
				t.Fatalf("%d records framed out of %d bytes", records, len(data))
			}
		}
	})
}
