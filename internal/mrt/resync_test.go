package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
)

// resyncRecord builds one parseable TABLE_DUMP_V2 RIB record.
func resyncRecord(t *testing.T, seq uint32) Record {
	t.Helper()
	rib := &RIB{
		Sequence: seq,
		Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(seq), 0, 0}), 16),
		Entries:  []RIBEntry{{PeerIndex: 0, Originated: 1000}},
	}
	body, err := rib.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return Record{Timestamp: 1000 + seq, Type: TypeTableDumpV2, Subtype: rib.Subtype(), Body: body}
}

func marshalRecords(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestResyncAfterGarbage(t *testing.T) {
	r1 := resyncRecord(t, 1)
	r2 := resyncRecord(t, 2)
	var stream []byte
	stream = append(stream, marshalRecords(t, r1)...)
	// 20 bytes of garbage whose fake header claims an absurd length, so
	// Next errors instead of mistaking it for an unknown-type record.
	stream = append(stream, bytes.Repeat([]byte{0xff}, 20)...)
	stream = append(stream, marshalRecords(t, r2)...)

	rd := NewReader(bytes.NewReader(stream))
	got, err := rd.Next()
	if err != nil || got.Timestamp != r1.Timestamp {
		t.Fatalf("first record: %+v, %v", got, err)
	}
	if _, err := rd.Next(); err == nil {
		t.Fatal("garbage did not error")
	}
	skipped, err := rd.Resync(0)
	if err != nil {
		t.Fatalf("Resync: %v", err)
	}
	// Next consumed 12 garbage bytes as a header; 8 remained to scan.
	if skipped != 8 {
		t.Errorf("skipped %d bytes, want 8", skipped)
	}
	got, err = rd.Next()
	if err != nil || got.Timestamp != r2.Timestamp || !bytes.Equal(got.Body, r2.Body) {
		t.Fatalf("post-resync record: %+v, %v", got, err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("tail: %v, want EOF", err)
	}
}

func TestResyncAtEOF(t *testing.T) {
	r1 := resyncRecord(t, 1)
	r2 := resyncRecord(t, 2)
	stream := marshalRecords(t, r1, r2)
	// Truncate the final record mid-body: Next consumes the partial tail
	// while failing, so Resync finds a drained stream.
	stream = stream[:len(stream)-3]

	rd := NewReader(bytes.NewReader(stream))
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record: %v, want ErrTruncated", err)
	}
	if _, err := rd.Resync(0); err != io.EOF {
		t.Fatalf("Resync on drained stream: %v, want io.EOF", err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("Next after failed resync: %v, want io.EOF", err)
	}
}

func TestResyncScanBudget(t *testing.T) {
	// A bogus header with an absurd length followed by zeros only: no
	// plausible header anywhere, and more bytes than the scan budget.
	stream := bytes.Repeat([]byte{0xff}, 12)
	stream = append(stream, make([]byte, 64)...)

	rd := NewReader(bytes.NewReader(stream))
	if _, err := rd.Next(); err == nil {
		t.Fatal("bogus header did not error")
	}
	skipped, err := rd.Resync(16)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Resync: skipped=%d err=%v, want ErrTruncated", skipped, err)
	}
	if skipped < 16 {
		t.Errorf("gave up after %d bytes, want >= 16", skipped)
	}
}

func TestPlausibleHeader(t *testing.T) {
	mk := func(typ, sub uint16, length uint32) []byte {
		b := make([]byte, headerLen)
		b[4], b[5] = byte(typ>>8), byte(typ)
		b[6], b[7] = byte(sub>>8), byte(sub)
		b[8], b[9], b[10], b[11] = byte(length>>24), byte(length>>16), byte(length>>8), byte(length)
		return b
	}
	cases := []struct {
		name string
		hdr  []byte
		want bool
	}{
		{"rib v4", mk(TypeTableDumpV2, SubRIBIPv4Unicast, 100), true},
		{"peer index", mk(TypeTableDumpV2, SubPeerIndexTable, 100), true},
		{"bgp4mp message", mk(TypeBGP4MP, SubMessageAS4, 100), true},
		{"bgp4mp et addpath", mk(TypeBGP4MPET, SubMessageAS4AP, 100), true},
		{"unknown type", mk(99, 1, 100), false},
		{"bad td2 subtype", mk(TypeTableDumpV2, 200, 100), false},
		{"bad bgp4mp subtype", mk(TypeBGP4MP, 2, 100), false},
		{"absurd length", mk(TypeTableDumpV2, SubRIBIPv4Unicast, 1<<30), false},
		{"short header", mk(TypeTableDumpV2, SubRIBIPv4Unicast, 100)[:8], false},
		{"all zero", make([]byte, headerLen), false},
	}
	for _, c := range cases {
		if got := PlausibleHeader(c.hdr); got != c.want {
			t.Errorf("%s: PlausibleHeader = %v, want %v", c.name, got, c.want)
		}
	}
}
