package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Peer is one entry of a PEER_INDEX_TABLE: a collector's BGP neighbor.
type Peer struct {
	BGPID netip.Addr // peer's BGP identifier (always 4 bytes on the wire)
	Addr  netip.Addr
	ASN   uint32
}

// PeerIndexTable is the TABLE_DUMP_V2 PEER_INDEX_TABLE record: it names
// the collector and indexes the peers that subsequent RIB records
// reference by position.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// peer-type flag bits (RFC 6396 §4.3.1).
const (
	peerTypeIPv6 = 0x01
	peerTypeAS4  = 0x02
)

// Marshal encodes the peer index table body.
func (t *PeerIndexTable) Marshal() ([]byte, error) {
	if !t.CollectorID.Is4() {
		return nil, fmt.Errorf("%w: collector ID must be IPv4", ErrBadRecord)
	}
	if len(t.ViewName) > 0xffff || len(t.Peers) > 0xffff {
		return nil, fmt.Errorf("%w: view name or peer count too large", ErrBadRecord)
	}
	id := t.CollectorID.As4()
	out := append([]byte(nil), id[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.ViewName)))
	out = append(out, t.ViewName...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var ptype byte = peerTypeAS4 // always emit 4-octet ASNs
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			ptype |= peerTypeIPv6
		}
		out = append(out, ptype)
		if !p.BGPID.Is4() {
			return nil, fmt.Errorf("%w: peer BGP ID must be IPv4", ErrBadRecord)
		}
		bid := p.BGPID.As4()
		out = append(out, bid[:]...)
		if ptype&peerTypeIPv6 != 0 {
			a := p.Addr.As16()
			out = append(out, a[:]...)
		} else {
			a := p.Addr.Unmap().As4()
			out = append(out, a[:]...)
		}
		out = binary.BigEndian.AppendUint32(out, p.ASN)
	}
	return out, nil
}

// ParsePeerIndexTable decodes a PEER_INDEX_TABLE body.
func ParsePeerIndexTable(b []byte) (*PeerIndexTable, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("%w: peer index header", ErrTruncated)
	}
	t := &PeerIndexTable{CollectorID: netip.AddrFrom4([4]byte(b[:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, fmt.Errorf("%w: view name", ErrTruncated)
	}
	t.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("%w: peer %d", ErrTruncated, i)
		}
		ptype := b[0]
		p := Peer{BGPID: netip.AddrFrom4([4]byte(b[1:5]))}
		b = b[5:]
		if ptype&peerTypeIPv6 != 0 {
			if len(b) < 16 {
				return nil, fmt.Errorf("%w: peer %d address", ErrTruncated, i)
			}
			p.Addr = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: peer %d address", ErrTruncated, i)
			}
			p.Addr = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		}
		if ptype&peerTypeAS4 != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: peer %d ASN", ErrTruncated, i)
			}
			p.ASN = binary.BigEndian.Uint32(b[:4])
			b = b[4:]
		} else {
			if len(b) < 2 {
				return nil, fmt.Errorf("%w: peer %d ASN", ErrTruncated, i)
			}
			p.ASN = uint32(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
		t.Peers = append(t.Peers, p)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after peer table", ErrBadRecord, len(b))
	}
	return t, nil
}

// RIBEntry is one peer's route for the RIB record's prefix.
type RIBEntry struct {
	PeerIndex  uint16
	Originated uint32
	PathID     uint32 // ADD-PATH subtypes only
	Attrs      []byte // raw path-attribute block (bgp.ParseAttributes decodes)
}

// RIB is a TABLE_DUMP_V2 RIB record: every peer's route for one prefix.
type RIB struct {
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
	AddPath  bool
}

// Subtype returns the TABLE_DUMP_V2 subtype matching the RIB's family
// and ADD-PATH mode.
func (r *RIB) Subtype() uint16 {
	v6 := r.Prefix.Addr().Is6() && !r.Prefix.Addr().Is4In6()
	switch {
	case v6 && r.AddPath:
		return SubRIBIPv6UnicastAP
	case v6:
		return SubRIBIPv6Unicast
	case r.AddPath:
		return SubRIBIPv4UnicastAP
	default:
		return SubRIBIPv4Unicast
	}
}

// Marshal encodes the RIB record body.
func (r *RIB) Marshal() ([]byte, error) {
	if !r.Prefix.IsValid() {
		return nil, fmt.Errorf("%w: invalid prefix", ErrBadRecord)
	}
	if len(r.Entries) > 0xffff {
		return nil, fmt.Errorf("%w: %d entries", ErrBadRecord, len(r.Entries))
	}
	out := binary.BigEndian.AppendUint32(nil, r.Sequence)
	bits := r.Prefix.Bits()
	out = append(out, byte(bits))
	addr := r.Prefix.Addr().AsSlice()
	out = append(out, addr[:(bits+7)/8]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		out = binary.BigEndian.AppendUint16(out, e.PeerIndex)
		out = binary.BigEndian.AppendUint32(out, e.Originated)
		if r.AddPath {
			out = binary.BigEndian.AppendUint32(out, e.PathID)
		}
		if len(e.Attrs) > 0xffff {
			return nil, fmt.Errorf("%w: attribute block %d bytes", ErrBadRecord, len(e.Attrs))
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Attrs)))
		out = append(out, e.Attrs...)
	}
	return out, nil
}

// ParseRIB decodes a RIB record body. The subtype selects the family and
// ADD-PATH mode.
func ParseRIB(subtype uint16, b []byte) (*RIB, error) {
	var v6, addPath bool
	switch subtype {
	case SubRIBIPv4Unicast, SubRIBIPv4Multicast:
	case SubRIBIPv6Unicast, SubRIBIPv6Multicast:
		v6 = true
	case SubRIBIPv4UnicastAP, SubRIBIPv4MulticastAP:
		addPath = true
	case SubRIBIPv6UnicastAP, SubRIBIPv6MulticastAP:
		v6, addPath = true, true
	default:
		return nil, fmt.Errorf("%w: TABLE_DUMP_V2 subtype %d", ErrUnsupported, subtype)
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: RIB header", ErrTruncated)
	}
	r := &RIB{Sequence: binary.BigEndian.Uint32(b[:4]), AddPath: addPath}
	bits := int(b[4])
	b = b[5:]
	maxBits, addrLen := 32, 4
	if v6 {
		maxBits, addrLen = 128, 16
	}
	if bits > maxBits {
		return nil, fmt.Errorf("%w: prefix length %d", ErrBadRecord, bits)
	}
	nbytes := (bits + 7) / 8
	if len(b) < nbytes+2 {
		return nil, fmt.Errorf("%w: RIB prefix", ErrTruncated)
	}
	buf := make([]byte, addrLen)
	copy(buf, b[:nbytes])
	var addr netip.Addr
	if v6 {
		addr = netip.AddrFrom16([16]byte(buf))
	} else {
		addr = netip.AddrFrom4([4]byte(buf))
	}
	r.Prefix = netip.PrefixFrom(addr, bits)
	b = b[nbytes:]
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	r.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		need := 8
		if addPath {
			need += 4
		}
		if len(b) < need {
			return nil, fmt.Errorf("%w: RIB entry %d", ErrTruncated, i)
		}
		e := RIBEntry{
			PeerIndex:  binary.BigEndian.Uint16(b[:2]),
			Originated: binary.BigEndian.Uint32(b[2:6]),
		}
		b = b[6:]
		if addPath {
			e.PathID = binary.BigEndian.Uint32(b[:4])
			b = b[4:]
		}
		alen := int(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
		if len(b) < alen {
			return nil, fmt.Errorf("%w: RIB entry %d attributes", ErrTruncated, i)
		}
		e.Attrs = append([]byte(nil), b[:alen]...)
		b = b[alen:]
		r.Entries = append(r.Entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after RIB entries", ErrBadRecord, len(b))
	}
	return r, nil
}
