// Package mrt implements the MRT export format (RFC 6396) used by the
// RIPE RIS and RouteViews archives, with the ADD-PATH extensions of
// RFC 8050 — both reading and writing.
//
// Supported record types:
//
//   - TABLE_DUMP_V2: PEER_INDEX_TABLE, RIB_IPV4_UNICAST,
//     RIB_IPV6_UNICAST, and their _ADDPATH variants — RIB snapshots.
//   - BGP4MP / BGP4MP_ET: MESSAGE, MESSAGE_AS4, STATE_CHANGE(_AS4),
//     and the _ADDPATH message variants — update streams.
//
// The low-level API is Record (raw header + body) via Reader/Writer; the
// typed API decodes bodies into PeerIndexTable, RIB, and Message values.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MRT record types.
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// TABLE_DUMP_V2 subtypes.
const (
	SubPeerIndexTable     uint16 = 1
	SubRIBIPv4Unicast     uint16 = 2
	SubRIBIPv4Multicast   uint16 = 3
	SubRIBIPv6Unicast     uint16 = 4
	SubRIBIPv6Multicast   uint16 = 5
	SubRIBGeneric         uint16 = 6
	SubRIBIPv4UnicastAP   uint16 = 8 // RFC 8050 ADD-PATH
	SubRIBIPv4MulticastAP uint16 = 9
	SubRIBIPv6UnicastAP   uint16 = 10
	SubRIBIPv6MulticastAP uint16 = 11
)

// BGP4MP subtypes.
const (
	SubStateChange     uint16 = 0
	SubMessage         uint16 = 1
	SubMessageAS4      uint16 = 4
	SubStateChangeAS4  uint16 = 5
	SubMessageLocal    uint16 = 6
	SubMessageAS4Local uint16 = 7
	SubMessageAP       uint16 = 8 // RFC 8050 ADD-PATH
	SubMessageAS4AP    uint16 = 9
	SubMessageLocalAP  uint16 = 10
	SubMessageAS4LocAP uint16 = 11
)

// Errors returned by the codec.
var (
	ErrTruncated    = errors.New("mrt: truncated record")
	ErrBadRecord    = errors.New("mrt: malformed record")
	ErrUnsupported  = errors.New("mrt: unsupported record type")
	maxRecordLength = uint32(64 << 20) // 64 MiB sanity cap
)

// headerLen is the fixed MRT common header size.
const headerLen = 12

// Record is one raw MRT record: the common header plus the undecoded
// body. BGP4MP_ET's extended timestamp is extracted into Micro.
type Record struct {
	Timestamp uint32
	Micro     uint32 // microseconds, BGP4MP_ET only
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// IsRIB reports whether the record is a TABLE_DUMP_V2 RIB record
// (unicast or multicast, either family, ADD-PATH or not).
func (r Record) IsRIB() bool {
	return r.Type == TypeTableDumpV2 && r.Subtype >= SubRIBIPv4Unicast && r.Subtype <= SubRIBIPv6MulticastAP && r.Subtype != SubRIBGeneric && r.Subtype != 7
}

// IsAddPath reports whether the record uses RFC 8050 ADD-PATH encoding.
func (r Record) IsAddPath() bool {
	switch r.Type {
	case TypeTableDumpV2:
		switch r.Subtype {
		case SubRIBIPv4UnicastAP, SubRIBIPv4MulticastAP, SubRIBIPv6UnicastAP, SubRIBIPv6MulticastAP:
			return true
		}
	case TypeBGP4MP, TypeBGP4MPET:
		switch r.Subtype {
		case SubMessageAP, SubMessageAS4AP, SubMessageLocalAP, SubMessageAS4LocAP:
			return true
		}
	}
	return false
}

// Writer emits MRT records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	err error
	// hdr is the header scratch; as a field it avoids the per-record
	// heap escape a local array suffers when passed through io.Writer.
	hdr [headerLen + 4]byte
}

// NewWriter returns a Writer buffering onto w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteRecord emits one record. The first error encountered is sticky.
func (w *Writer) WriteRecord(r Record) error {
	if w.err != nil {
		return w.err
	}
	body := r.Body
	hdr := w.hdr[:headerLen]
	binary.BigEndian.PutUint32(hdr[0:4], r.Timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], r.Type)
	binary.BigEndian.PutUint16(hdr[6:8], r.Subtype)
	bodyLen := len(body)
	if r.Type == TypeBGP4MPET {
		bodyLen += 4
		hdr = w.hdr[:headerLen+4]
		binary.BigEndian.PutUint32(hdr[headerLen:], r.Micro)
	}
	binary.BigEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	if _, err := w.w.Write(hdr); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush drains the buffer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Reader iterates MRT records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	buf   []byte // reused body buffer when reuse is on
	reuse bool
	// hdr is the header scratch; as a field it avoids the per-record
	// heap escape a local array suffers when passed through io.Reader.
	hdr [headerLen]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// SetReuseBuffer makes Next decode every record body into one reused
// buffer: each returned Record.Body is only valid until the following
// Next call. Streaming consumers that fully process (or copy out of)
// each record before advancing read the whole archive with near-zero
// per-record allocations. Off by default — ReadAll and other callers
// that retain records need per-record bodies.
func (r *Reader) SetReuseBuffer(on bool) { r.reuse = on }

// Next returns the next record, or io.EOF at a clean end of stream. A
// stream ending mid-record returns ErrTruncated.
//
//atomlint:borrowed under SetReuseBuffer the Record.Body aliases the reused decode buffer, valid until the next call
func (r *Reader) Next() (Record, error) {
	hdr := r.hdr[:]
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	rec := Record{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxRecordLength {
		return Record{}, fmt.Errorf("%w: record length %d", ErrBadRecord, length)
	}
	var body []byte
	if r.reuse {
		if uint32(cap(r.buf)) < length {
			r.buf = make([]byte, length)
		}
		body = r.buf[:length]
	} else {
		body = make([]byte, length)
	}
	if _, err := io.ReadFull(r.r, body); err != nil {
		return Record{}, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}
	if rec.Type == TypeBGP4MPET {
		if len(body) < 4 {
			return Record{}, fmt.Errorf("%w: BGP4MP_ET microseconds", ErrTruncated)
		}
		rec.Micro = binary.BigEndian.Uint32(body[:4])
		body = body[4:]
	}
	rec.Body = body
	return rec, nil
}

// PlausibleHeader reports whether hdr (at least headerLen bytes) looks
// like the start of an MRT record this package can read: a known type, a
// subtype defined for that type, and a body length under the sanity
// cap. Used by Resync to find a record boundary in a damaged stream;
// the 8 validated header bytes make a false lock on arbitrary payload
// bytes unlikely (and a false lock only costs one more resync).
func PlausibleHeader(hdr []byte) bool {
	if len(hdr) < headerLen {
		return false
	}
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxRecordLength {
		return false
	}
	switch typ {
	case TypeTableDumpV2:
		return sub >= SubPeerIndexTable && sub <= SubRIBIPv6MulticastAP && sub != 7
	case TypeBGP4MP, TypeBGP4MPET:
		return sub <= SubMessageAS4LocAP && sub != 2 && sub != 3
	}
	return false
}

// Resync recovers a stream after Next returned an error: it scans
// forward, one byte at a time, for the next plausible MRT record header
// and stops with the reader positioned on it (the following Next reads
// that record). It consumes at most maxScan bytes; maxScan <= 0 uses a
// 1 MiB default. Returns the number of bytes discarded. The error is
// io.EOF when the stream ends before a header is found, or ErrTruncated
// when the scan budget runs out — in both cases the source should be
// abandoned.
func (r *Reader) Resync(maxScan int) (int, error) {
	if maxScan <= 0 {
		maxScan = 1 << 20
	}
	skipped := 0
	for {
		hdr, err := r.r.Peek(headerLen)
		if len(hdr) < headerLen {
			// Fewer than 12 bytes left: no record can start here. Drain
			// the tail so a subsequent Next reports clean EOF.
			d, _ := r.r.Discard(len(hdr))
			skipped += d
			if err == nil || err == io.EOF || err == bufio.ErrBufferFull {
				return skipped, io.EOF
			}
			return skipped, fmt.Errorf("%w: resync: %v", ErrTruncated, err)
		}
		if PlausibleHeader(hdr) {
			return skipped, nil
		}
		if skipped >= maxScan {
			return skipped, fmt.Errorf("%w: no record boundary within %d bytes", ErrTruncated, maxScan)
		}
		if _, err := r.r.Discard(1); err != nil {
			return skipped, io.EOF
		}
		skipped++
	}
}
