// Zero-copy record iteration over in-memory archives. BytesReader is
// the byte-slice counterpart of Reader: Next returns Records whose Body
// sub-slices the backing array directly — no bufio layer, no per-record
// copy, zero allocations per record (pinned by TestBytesReaderZeroAlloc
// and enforced by the atomlint hotpath analyzer). Error and Resync
// semantics deliberately mirror Reader so the bgpstream degradation
// machinery (skip accounting, resync budgets, quarantine) behaves
// identically whichever reader backs a source.
package mrt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// BytesReader iterates MRT records over an in-memory archive without
// copying. Returned Record.Body values alias data: they stay valid for
// as long as data does, across any number of Next calls, but writing to
// data corrupts every outstanding record.
type BytesReader struct {
	data []byte
	off  int
}

// NewBytesReader returns a BytesReader over data. The reader does not
// copy data; see BytesReader for the aliasing contract.
func NewBytesReader(data []byte) *BytesReader {
	return &BytesReader{data: data}
}

// Offset returns the number of bytes consumed so far.
func (r *BytesReader) Offset() int { return r.off }

// Next returns the next record, or io.EOF at a clean end of stream. A
// stream ending mid-record returns ErrTruncated. Consumed-byte
// positioning on every error path matches Reader.Next over the same
// bytes, so Resync recovers from the same place either way.
//
//atomlint:hotpath
//atomlint:borrowed Record.Body aliases the archive bytes handed to NewBytesReader
func (r *BytesReader) Next() (Record, error) {
	rest := r.data[r.off:]
	if len(rest) == 0 {
		return Record{}, io.EOF
	}
	if len(rest) < headerLen {
		// Reader's io.ReadFull consumes the partial header before
		// failing; mirror that so skip accounting matches.
		r.off = len(r.data)
		return Record{}, fmt.Errorf("%w: header: %v", ErrTruncated, io.ErrUnexpectedEOF)
	}
	hdr := rest[:headerLen]
	rec := Record{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	length := binary.BigEndian.Uint32(hdr[8:12])
	r.off += headerLen
	if length > maxRecordLength {
		return Record{}, fmt.Errorf("%w: record length %d", ErrBadRecord, length)
	}
	if uint32(len(rest)-headerLen) < length {
		r.off = len(r.data)
		return Record{}, fmt.Errorf("%w: body: %v", ErrTruncated, io.ErrUnexpectedEOF)
	}
	body := rest[headerLen : headerLen+int(length) : headerLen+int(length)]
	r.off += int(length)
	if rec.Type == TypeBGP4MPET {
		if len(body) < 4 {
			return Record{}, fmt.Errorf("%w: BGP4MP_ET microseconds", ErrTruncated)
		}
		rec.Micro = binary.BigEndian.Uint32(body[:4])
		body = body[4:]
	}
	rec.Body = body
	return rec, nil
}

// Resync recovers after Next returned an error, with the same contract
// as Reader.Resync: scan forward one byte at a time for the next
// plausible record header, leave the reader positioned on it, and
// return the number of bytes discarded. maxScan <= 0 uses a 1 MiB
// default; io.EOF means the stream ended first, ErrTruncated means the
// scan budget ran out.
func (r *BytesReader) Resync(maxScan int) (int, error) {
	if maxScan <= 0 {
		maxScan = 1 << 20
	}
	skipped := 0
	for {
		rest := r.data[r.off:]
		if len(rest) < headerLen {
			// Fewer than 12 bytes left: no record can start here. Drain
			// the tail so a subsequent Next reports clean EOF.
			r.off = len(r.data)
			return skipped + len(rest), io.EOF
		}
		if PlausibleHeader(rest[:headerLen]) {
			return skipped, nil
		}
		if skipped >= maxScan {
			return skipped, fmt.Errorf("%w: no record boundary within %d bytes", ErrTruncated, maxScan)
		}
		r.off++
		skipped++
	}
}

// countRecords scans data's record headers and returns the number of
// complete, well-formed records before the first damage (if any). One
// pass over headers only — bodies are skipped, not touched.
func countRecords(data []byte) int {
	n, off := 0, 0
	for len(data)-off >= headerLen {
		length := binary.BigEndian.Uint32(data[off+8 : off+12])
		if length > maxRecordLength {
			break
		}
		end := off + headerLen + int(length)
		if end > len(data) {
			break
		}
		n++
		off = end
	}
	return n
}

// ReadAll drains the reader, returning every record. When rd is a
// *bytes.Reader the archive is decoded in place: a first-pass header
// scan sizes the output slice exactly, and record bodies alias one
// backing buffer instead of being copied record by record.
//
//atomlint:borrowed on the *bytes.Reader fast path the record bodies alias one backing buffer owned by the returned slice
func ReadAll(rd io.Reader) ([]Record, error) {
	if br, ok := rd.(*bytes.Reader); ok {
		data := make([]byte, br.Len())
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		out := make([]Record, 0, countRecords(data))
		r := NewBytesReader(data)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return out, err
			}
			out = append(out, rec)
		}
	}
	r := NewReader(rd)
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
