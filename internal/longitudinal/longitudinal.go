// Package longitudinal drives the paper's per-quarter pipeline over the
// simulated Internet: generate the era's topology, build the collector
// infrastructure, synthesize RIB snapshots at the paper's offsets
// (the 15th 8:00, 15th 16:00, 16th 8:00, 22nd 8:00), sanitize, compute
// atoms, and run the four analyses — plus the daily-snapshot split
// window of §4.4.1 and multi-era trend series (Figures 4, 5, 9, 11,
// 12, 13).
package longitudinal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/replay"
	"repro/internal/routing"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

// Config parameterizes a study.
type Config struct {
	Seed   uint64
	Scale  float64
	Family int // 4 or 6
	// Artifacts injects the §A8.3 defects (on for the modern study).
	Artifacts bool
	// FastPath skips the MRT wire round-trip when building snapshots
	// (provably equivalent; see collector.BuildFeeds).
	FastPath bool
	// Sanitize overrides the cleaning options (zero value → Defaults
	// with Config.Family applied).
	Sanitize *sanitize.Options
	// Churn rate curves (events/day at paper scale, era-interpolated).
	UnitEventRate      topology.Curve
	VPEventRate        topology.Curve
	PrefixMobileShare  topology.Curve
	PrefixBaseMoveRate topology.Curve
	FlapRate           topology.Curve
	TransitFlipShare   float64
	// VPShiftShare is the per-event share of prefixes a VP re-routes.
	VPShiftShare float64
	// FullMessageProb is the atom-level update packing probability.
	FullMessageProb topology.Curve
	// RefreshRate is the per-signature attribute-refresh rate.
	RefreshRate topology.Curve
	// MaxK bounds the update-correlation size axis.
	MaxK int
	// Workers bounds the worker pools used throughout the pipeline:
	// eras within RunTrend, the four snapshot offsets within RunEra,
	// daily snapshots within RunSplits, and the sharded stages inside
	// sanitization and atom grouping. 0 = one worker per CPU, 1 = fully
	// sequential. Every output is byte-identical at any value.
	Workers int
	// Trace, when non-nil, receives one child span per era and stage
	// (generation, each snapshot, the update window, each analysis), so
	// a 20-year study emits a single navigable trace. Nil disables
	// tracing at near-zero cost.
	Trace *obs.Span
	// Metrics, when non-nil, receives the stream/sanitize counters for
	// every stage of the run.
	Metrics *obs.Registry
	// Progress, when non-nil, receives structured progress events as the
	// run advances: RunTrend brackets the era fan-out with trend /
	// trend_done and emits era_done (with the era's admitted prefix
	// count as its row count) as each era completes; RunEra and
	// RunSplits emit one event per finished study. Emission order under
	// a parallel run follows completion order — wall-clock truth — while
	// results stay deterministic. Nil disables the stream at the cost of
	// one nil check per event.
	Progress *obs.Progress
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:               seed,
		Scale:              0.02,
		Family:             4,
		Artifacts:          true,
		FastPath:           true,
		UnitEventRate:      topology.Curve{V2002: 0.05, V2004: 0.05, V2024: 0.30},
		VPEventRate:        topology.Curve{V2002: 0.10, V2004: 0.10, V2024: 0.30},
		PrefixMobileShare:  topology.Curve{V2002: 0.008, V2004: 0.010, V2024: 0.130},
		PrefixBaseMoveRate: topology.Curve{V2002: 0.003, V2004: 0.004, V2024: 0.006},
		FlapRate:           topology.Curve{V2002: 0.05, V2004: 0.05, V2024: 0.15},
		TransitFlipShare:   0.4,
		VPShiftShare:       0.015,
		FullMessageProb:    topology.Curve{V2002: 0.85, V2004: 0.84, V2024: 0.80},
		RefreshRate:        topology.Curve{V2002: 2.0, V2004: 2.0, V2024: 3.0},
		MaxK:               7,
	}
}

// Snapshot offsets within a quarter, in days relative to the first
// snapshot (the 15th at 8:00).
const (
	OffsetBase  = 10.0       // day-of-quarter anchor of the first snapshot
	Offset8h    = 1.0 / 3.0  // 15th 16:00
	Offset24h   = 1.0        // 16th 8:00
	Offset1Week = 7.0        // 22nd 8:00
	UpdateHours = 4.0 / 24.0 // §2.4.1: 4 hours of updates
)

// EraRun caches the per-era heavyweight state.
type EraRun struct {
	Cfg   Config
	Era   topology.Era
	Graph *topology.Graph
	Infra *collector.Infra
	Model routing.ChurnModel

	vps      []uint32
	warnings []bgpstream.Warning
	warnOnce bool

	// intern is the era's shared AS-path intern table: every snapshot of
	// the era sanitizes against it, so the second and later snapshots
	// (offsets differ by hours to days — most paths recur) intern almost
	// entirely on the allocation-free hit path. Safe because snapshot
	// consumers compare paths by ID equality or by value, never by raw
	// ID across snapshots (the PR2 invariant).
	intern *aspath.Table
}

// NewEraRun generates the era's world.
func NewEraRun(cfg Config, era topology.Era) *EraRun {
	if cfg.Family == 0 {
		cfg.Family = 4
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 7
	}
	sp := cfg.Trace.Child("era.generate")
	sp.SetAttr("era", era.String())
	tp := topology.DefaultParams(cfg.Seed)
	if cfg.Scale > 0 {
		tp.Scale = cfg.Scale
	}
	g := topology.Generate(tp, era)
	// VP counts shrink slower than the world (Scale^0.4): the visibility
	// thresholds (≥4 peer ASes) need a realistic vantage-point census.
	ccfg := collector.Config{
		Seed:      cfg.Seed + 1,
		Artifacts: cfg.Artifacts,
		VPScale:   math.Pow(tp.Scale, 0.4),
	}
	if era <= topology.EraOf(2002, 4) {
		// The 2002 reproduction setting: rrc00 with 13 full feeds.
		ccfg.ForceCollectors = 1
		ccfg.ForceFullFeeds = 13
		ccfg.Artifacts = false
	}
	in := collector.BuildInfra(g, ccfg)
	model := routing.ChurnModel{
		Seed:               cfg.Seed + 2,
		UnitEventRate:      cfg.UnitEventRate.At(era),
		VPEventRate:        cfg.VPEventRate.At(era),
		PrefixMobileShare:  cfg.PrefixMobileShare.At(era),
		PrefixBaseMoveRate: cfg.PrefixBaseMoveRate.At(era),
		TransitFlipShare:   cfg.TransitFlipShare,
		VPShiftShare:       cfg.VPShiftShare,
		RefreshRate:        cfg.RefreshRate.At(era),
	}
	run := &EraRun{Cfg: cfg, Era: era, Graph: g, Infra: in, Model: model, vps: in.FullFeedASNs(),
		intern: aspath.NewTable()}
	sp.SetAttr("ases", g.NumASes())
	sp.SetAttr("collectors", len(in.Collectors))
	sp.SetAttr("full_feeds", len(run.vps))
	sp.End()
	return run
}

// sanitizeOptions resolves the effective cleaning options.
func (r *EraRun) sanitizeOptions() sanitize.Options {
	var opts sanitize.Options
	if r.Cfg.Sanitize != nil {
		opts = *r.Cfg.Sanitize
	} else if r.Era <= topology.EraOf(2002, 4) {
		opts = sanitize.Afek2002()
	} else {
		opts = sanitize.Defaults()
	}
	if opts.Family == 0 {
		opts.Family = r.Cfg.Family
	}
	if opts.Workers == 0 {
		opts.Workers = r.Cfg.Workers
	}
	if opts.Intern == nil {
		opts.Intern = r.intern
	}
	return opts
}

// timestamp converts a relative day offset to the snapshot Unix time.
func (r *EraRun) timestamp(t float64) uint32 {
	return collector.EpochOf(r.Era) + uint32((t-OffsetBase)*86400)
}

// SnapshotAt builds and sanitizes the snapshot at day offset t (days
// since quarter start; the first paper snapshot is OffsetBase).
func (r *EraRun) SnapshotAt(t float64) (*core.AtomSet, *sanitize.Report, error) {
	sp := r.Cfg.Trace.Child("snapshot")
	sp.SetAttr("t", t)
	defer sp.End()
	ov := r.Model.OverlayAt(r.Graph, t, r.vps)
	ts := r.timestamp(t)
	warnings, err := r.updateWarnings()
	if err != nil {
		return nil, nil, err
	}
	opts := r.sanitizeOptions()
	opts.Span = sp
	opts.Metrics = r.Cfg.Metrics
	var snap *core.Snapshot
	var rep *sanitize.Report
	if r.Cfg.FastPath {
		bsp := sp.Child("collector.build_feeds")
		feeds := collector.BuildFeeds(r.Graph, r.Infra, ov, ts)
		bsp.SetAttr("feeds", len(feeds))
		bsp.End()
		snap, rep, err = sanitize.CleanFeeds(feeds, warnings, opts)
	} else {
		bsp := sp.Child("collector.build_ribs")
		ribs := collector.BuildRIBs(r.Graph, r.Infra, ov, ts)
		// Archive order feeds the sanitize pipeline; iterate the map in
		// sorted-name order so the run is byte-stable across processes.
		names := make([]string, 0, len(ribs.Archives))
		for name := range ribs.Archives {
			names = append(names, name)
		}
		sort.Strings(names)
		sources := make([]bgpstream.Source, 0, len(names))
		totalBytes := 0
		for _, name := range names {
			data := ribs.Archives[name]
			sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
			totalBytes += len(data)
		}
		bsp.SetAttr("archives", len(sources))
		bsp.SetAttr("bytes", totalBytes)
		bsp.End()
		snap, rep, err = sanitize.Clean(sources, warnings, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return core.ComputeAtomsSpanWorkers(snap, sp, r.Cfg.Workers), rep, nil
}

// UpdateSources synthesizes the update window's archives and returns
// them as byte-backed sources in sorted name order — the deterministic
// element stream behind Updates, exported so churn replay (replay.Run,
// RunChurnReplay, the churn benchmark) can drive an AtomIndex with the
// very same messages the correlation analysis consumes.
func (r *EraRun) UpdateSources(fromT, toT float64) []bgpstream.Source {
	cfg := collector.UpdateConfig{
		Model:           r.Model,
		FromT:           fromT,
		ToT:             toT,
		BaseTime:        r.timestamp(fromT),
		FullMessageProb: r.Cfg.FullMessageProb.At(r.Era),
		FlapRate:        r.Cfg.FlapRate.At(r.Era),
	}
	archives := collector.BuildUpdates(r.Graph, r.Infra, cfg)
	names := make([]string, 0, len(archives))
	for name := range archives {
		names = append(names, name)
	}
	sort.Strings(names)
	sources := make([]bgpstream.Source, 0, len(names))
	for _, name := range names {
		sources = append(sources, bgpstream.BytesSource(name, archives[name], bgp.Options{}))
	}
	return sources
}

// updateFilter is the family filter every update consumer shares.
func (r *EraRun) updateFilter() *bgpstream.Filter {
	return &bgpstream.Filter{
		V4Only: r.Cfg.Family == 4,
		V6Only: r.Cfg.Family == 6,
	}
}

// Updates synthesizes the update window starting at day offset t and
// returns the per-message records.
func (r *EraRun) Updates(fromT, toT float64) ([]metrics.UpdateRecord, []bgpstream.Warning, error) {
	sp := r.Cfg.Trace.Child("updates")
	sp.SetAttr("from_t", fromT)
	sp.SetAttr("to_t", toT)
	defer sp.End()
	bsp := sp.Child("collector.build_updates")
	sources := r.UpdateSources(fromT, toT)
	totalBytes := 0
	for _, src := range sources {
		totalBytes += len(src.Data)
	}
	bsp.SetAttr("archives", len(sources))
	bsp.SetAttr("bytes", totalBytes)
	bsp.End()
	return metrics.CollectRecordsObs(sources, r.updateFilter(), r.Cfg.Workers, r.Cfg.Metrics, sp)
}

// RunChurnReplay builds the era's base snapshot, wraps it in an
// AtomIndex, and replays the update window through it delta by delta —
// the incremental counterpart of recomputing the snapshot at the
// window's end. It returns the maintained index (Materialize reads the
// final partition) alongside the replay accounting. The replayed
// stream is the deterministic serve order bgpstream guarantees, so the
// result is byte-identical at any worker count.
func (r *EraRun) RunChurnReplay(fromT, toT float64) (*core.AtomIndex, replay.Stats, error) {
	atoms, _, err := r.SnapshotAt(fromT)
	if err != nil {
		return nil, replay.Stats{}, err
	}
	ix := core.NewAtomIndex(atoms.Snap)
	st, err := replay.Run(ix, r.UpdateSources(fromT, toT), replay.Options{
		Workers:  r.Cfg.Workers,
		Filter:   r.updateFilter(),
		Metrics:  r.Cfg.Metrics,
		Span:     r.Cfg.Trace,
		Progress: r.Cfg.Progress,
	})
	return ix, st, err
}

// updateWarnings lazily computes the standard 4-hour update window's
// parse warnings — the abnormal-peer signal fed into sanitization.
func (r *EraRun) updateWarnings() ([]bgpstream.Warning, error) {
	if r.warnOnce {
		return r.warnings, nil
	}
	if !r.Cfg.Artifacts {
		r.warnOnce = true
		return nil, nil
	}
	_, warnings, err := r.Updates(OffsetBase, OffsetBase+UpdateHours)
	if err != nil {
		return nil, err
	}
	r.warnings = warnings
	r.warnOnce = true
	return warnings, nil
}

// EraResult is the full per-era analysis (one column of Tables 1–3).
type EraResult struct {
	Era       topology.Era
	Stats     core.GeneralStats
	Report    *sanitize.Report
	Formation *metrics.FormationResult
	Stab8h    metrics.Stability
	Stab24h   metrics.Stability
	Stab1w    metrics.Stability
	Corr      *metrics.UpdateCorrelation
	Atoms     *core.AtomSet
}

// RunEra executes the complete per-era pipeline. The four snapshot
// offsets and the update window build on the worker pool, then the
// five analyses run concurrently; at Workers=1 the pipeline is the
// original sequential one, and the result is identical either way.
func RunEra(cfg Config, era topology.Era) (*EraResult, error) {
	sp := cfg.Trace.Child("longitudinal.run_era")
	sp.SetAttr("era", era.String())
	defer sp.End()
	cfg.Trace = sp // nest every stage under this era
	r := NewEraRun(cfg, era)
	// Resolve the lazily cached warnings before workers spawn so the
	// snapshot builds read an immutable EraRun.
	if _, err := r.updateWarnings(); err != nil {
		return nil, fmt.Errorf("longitudinal: base snapshot: %w", err)
	}
	offsets := []float64{
		OffsetBase,
		OffsetBase + Offset8h,
		OffsetBase + Offset24h,
		OffsetBase + Offset1Week,
	}
	snaps := make([]*core.AtomSet, len(offsets))
	var rep *sanitize.Report
	var records []metrics.UpdateRecord
	// Tasks 0–3 build the snapshots; task 4 synthesizes the update
	// window. Each writes a distinct slot, and ForEach reports the
	// lowest-index error, so failures surface exactly as they would
	// sequentially.
	err := parallel.ForEach(cfg.Workers, len(offsets)+1, func(i int) error {
		if i == len(offsets) {
			var err error
			records, _, err = r.Updates(OffsetBase, OffsetBase+UpdateHours)
			return err
		}
		s, rp, err := r.SnapshotAt(offsets[i])
		if err != nil {
			if i == 0 {
				return fmt.Errorf("longitudinal: base snapshot: %w", err)
			}
			return err
		}
		snaps[i] = s
		if i == 0 {
			rep = rp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := snaps[0]
	res := &EraResult{
		Era:    era,
		Stats:  base.Stats(),
		Report: rep,
		Atoms:  base,
	}
	// The analyses only read the snapshots; each fills its own field.
	parallel.ForEach(cfg.Workers, 5, func(i int) error {
		switch i {
		case 0:
			res.Formation = metrics.FormationDistancesSpan(base, metrics.DefaultFormationOptions(), sp)
		case 1:
			res.Stab8h = metrics.CompareStabilitySpan(base, snaps[1], sp)
		case 2:
			res.Stab24h = metrics.CompareStabilitySpan(base, snaps[2], sp)
		case 3:
			res.Stab1w = metrics.CompareStabilitySpan(base, snaps[3], sp)
		case 4:
			res.Corr = metrics.CorrelateUpdatesSpan(base, records, cfg.MaxK, sp)
		}
		return nil
	})
	sp.SetAttr("atoms", res.Stats.Atoms)
	sp.SetAttr("prefixes", res.Stats.Prefixes)
	cfg.Progress.Step("era_done", era.String(), int64(res.Stats.Prefixes))
	return res, nil
}

// TrendPoint is one era's condensed numbers for the trend figures.
type TrendPoint struct {
	Era topology.Era
	// FormationShare[d] is the share of atoms formed at distance d
	// (Fig 4/11 solid); FormationShareMulti excludes single-atom ASes
	// (dashed).
	FormationShare      []float64
	FormationShareMulti []float64
	CAM8h, MPM8h        float64
	CAM1w, MPM1w        float64
	FullFeeds           int
	FullFeedThreshold   int
	Stats               core.GeneralStats
}

// RunTrend runs the pipeline across eras (Figures 4, 5, 9, 11, 12, 13).
// Eras are independent worlds, so they fan out across the worker pool;
// Map returns the points in era order regardless of completion order.
func RunTrend(cfg Config, eras []topology.Era) ([]TrendPoint, error) {
	root := cfg.Trace
	cfg.Progress.Begin("trend", len(eras))
	out, err := parallel.Map(cfg.Workers, len(eras), func(i int) (TrendPoint, error) {
		tp, err := trendPoint(cfg, root, eras[i])
		if err == nil {
			cfg.Progress.Step("era_done", eras[i].String(), int64(tp.Stats.Prefixes))
		}
		return tp, err
	})
	if err != nil {
		return nil, err
	}
	cfg.Progress.End("trend_done")
	return out, nil
}

// trendPoint computes one era's trend numbers — the per-worker unit of
// RunTrend.
func trendPoint(cfg Config, root *obs.Span, era topology.Era) (TrendPoint, error) {
	sp := root.Child("longitudinal.trend_era")
	sp.SetAttr("era", era.String())
	defer sp.End()
	ecfg := cfg
	ecfg.Trace = sp
	r := NewEraRun(ecfg, era)
	base, rep, err := r.SnapshotAt(OffsetBase)
	if err != nil {
		return TrendPoint{}, err
	}
	s8, _, err := r.SnapshotAt(OffsetBase + Offset8h)
	if err != nil {
		return TrendPoint{}, err
	}
	s1w, _, err := r.SnapshotAt(OffsetBase + Offset1Week)
	if err != nil {
		return TrendPoint{}, err
	}
	form := metrics.FormationDistancesSpan(base, metrics.DefaultFormationOptions(), sp)
	st8 := metrics.CompareStabilitySpan(base, s8, sp)
	st1w := metrics.CompareStabilitySpan(base, s1w, sp)
	tp := TrendPoint{
		Era:               era,
		CAM8h:             st8.CAM,
		MPM8h:             st8.MPM,
		CAM1w:             st1w.CAM,
		MPM1w:             st1w.MPM,
		FullFeeds:         rep.FullFeeds,
		FullFeedThreshold: rep.FullFeedThreshold,
		Stats:             base.Stats(),
	}
	tp.FormationShare = shares(form.AtomsAtDistance, form.TotalAtoms)
	multiTotal := 0
	for _, n := range form.AtomsAtDistanceMultiAtom {
		multiTotal += n
	}
	tp.FormationShareMulti = shares(form.AtomsAtDistanceMultiAtom, multiTotal)
	return tp, nil
}

func shares(counts []int, total int) []float64 {
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, n := range counts {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// SplitStudy is the §4.4.1 daily-snapshot analysis output.
type SplitStudy struct {
	Days []metrics.DayBreakdown
	CDF  metrics.ObserverCDF
}

// RunSplits processes days+2 daily snapshots starting at the era's
// anchor and aggregates split events and their observers (Fig 6/7/16).
func RunSplits(cfg Config, era topology.Era, days int) (*SplitStudy, error) {
	sp := cfg.Trace.Child("longitudinal.run_splits")
	sp.SetAttr("era", era.String())
	sp.SetAttr("days", days)
	defer sp.End()
	cfg.Trace = sp
	r := NewEraRun(cfg, era)
	// Resolve the lazily cached warnings before the snapshot fan-out
	// (see RunEra).
	if _, err := r.updateWarnings(); err != nil {
		return nil, err
	}
	snaps, err := parallel.Map(cfg.Workers, days+2, func(d int) (*core.AtomSet, error) {
		s, _, err := r.SnapshotAt(OffsetBase + float64(d))
		return s, err
	})
	if err != nil {
		return nil, err
	}
	// Each day's detection reads a sliding window of three snapshots;
	// aggregation stays sequential so events keep day order.
	dayEvents, err := parallel.Map(cfg.Workers, days, func(d int) ([]metrics.SplitEvent, error) {
		return metrics.DetectSplitsSpan(snaps[d], snaps[d+1], snaps[d+2], sp), nil
	})
	if err != nil {
		return nil, err
	}
	study := &SplitStudy{}
	var all []metrics.SplitEvent
	for d, events := range dayEvents {
		study.Days = append(study.Days, metrics.BreakdownDay(d, events))
		all = append(all, events...)
	}
	study.CDF = metrics.BuildObserverCDF(all)
	sp.SetAttr("events", len(all))
	cfg.Progress.Step("splits_done", era.String(), int64(len(all)))
	return study, nil
}
