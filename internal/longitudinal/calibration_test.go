package longitudinal

import (
	"testing"

	"repro/internal/topology"
)

// TestCalibrationLog prints the headline paper-facing numbers at test
// scale — run with -v while tuning churn curves. Assertions here are
// deliberately loose; the paper-shape checks live in the experiments
// package.
func TestCalibrationLog(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration log")
	}
	cfg := DefaultConfig(5)
	cfg.Scale = 0.01
	for _, era := range []topology.Era{topology.EraOf(2004, 1), topology.EraOf(2024, 4)} {
		res, err := RunEra(cfg, era)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		t.Logf("%v: prefixes=%d ASes=%d atoms=%d 1-atom-AS=%.1f%% 1-pfx-atoms=%.1f%% mean=%.2f p99=%d max=%d",
			era, st.Prefixes, st.ASes, st.Atoms,
			100*float64(st.SingleAtomASes)/float64(st.ASes),
			100*float64(st.SinglePrefixAtoms)/float64(st.Atoms),
			st.MeanAtomSize, st.P99AtomSize, st.LargestAtom)
		f := res.Formation
		tot := float64(f.TotalAtoms)
		t.Logf("%v: formation d1=%.0f%% d2=%.0f%% d3=%.0f%% d4=%.0f%% (d1: single=%d unique=%d prepend=%d)",
			era, 100*float64(f.AtomsAtDistance[1])/tot, 100*float64(f.AtomsAtDistance[2])/tot,
			100*float64(f.AtomsAtDistance[3])/tot, 100*float64(f.AtomsAtDistance[4])/tot,
			f.D1SingleAtom, f.D1UniquePeers, f.D1Prepend)
		t.Logf("%v: CAM8h=%.1f%% MPM8h=%.1f%% CAM24h=%.1f%% MPM24h=%.1f%% CAM1w=%.1f%% MPM1w=%.1f%%",
			era, 100*res.Stab8h.CAM, 100*res.Stab8h.MPM, 100*res.Stab24h.CAM,
			100*res.Stab24h.MPM, 100*res.Stab1w.CAM, 100*res.Stab1w.MPM)
		t.Logf("%v: corr atoms k2..5: %.0f%% %.0f%% %.0f%% %.0f%% | AS k2..5: %.0f%% %.0f%% %.0f%% %.0f%%",
			era,
			100*res.Corr.Atom[2].Pr(), 100*res.Corr.Atom[3].Pr(), 100*res.Corr.Atom[4].Pr(), 100*res.Corr.Atom[5].Pr(),
			100*res.Corr.AS[2].Pr(), 100*res.Corr.AS[3].Pr(), 100*res.Corr.AS[4].Pr(), 100*res.Corr.AS[5].Pr())
	}
	study, err := RunSplits(cfg, topology.EraOf(2019, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("splits: events=%d ≤1VP=%.0f%% ≤3VP=%.0f%%",
		study.CDF.Total, 100*study.CDF.FractionAtMost(1), 100*study.CDF.FractionAtMost(3))
}
