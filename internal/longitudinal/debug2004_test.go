package longitudinal

import (
	"testing"

	"repro/internal/topology"
)

func TestDebug2004(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Scale = 0.01
	r := NewEraRun(cfg, topology.EraOf(2004, 1))
	g := r.Graph
	v4, v6 := g.TotalPrefixes()
	multiGroup := 0
	totOrigins := 0
	for _, a := range g.OriginASes() {
		v4groups := 0
		for _, grp := range a.Groups {
			if !grp.V6 {
				v4groups++
			}
		}
		if v4groups > 0 {
			totOrigins++
		}
		if v4groups > 1 {
			multiGroup++
		}
	}
	t.Logf("graph: v4=%d v6=%d origins=%d multiGroupASes=%d VPs=%d", v4, v6, totOrigins, multiGroup, len(r.vps))
	atoms, rep, err := r.SnapshotAt(OffsetBase)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("funnel: seen=%d admitted=%d byLen=%d byColl=%d byPeers=%d fullfeeds=%d removed=%v",
		rep.PrefixesSeen, rep.PrefixesAdmitted, rep.DroppedByLength, rep.DroppedByCollector, rep.DroppedByPeerASes,
		rep.FullFeeds, rep.RemovedPeerASes)
	for _, f := range rep.Feeds {
		t.Logf("feed %v: unique=%d full=%v", f.VP, f.UniquePrefixes, f.FullFeed)
	}
	// multi-group AS → atom count
	by := atoms.ByOrigin()
	multiAtom := 0
	for _, ids := range by {
		if len(ids) > 1 {
			multiAtom++
		}
	}
	t.Logf("atoms: total=%d origins=%d multiAtomASes=%d", len(atoms.Atoms), len(by), multiAtom)
}
