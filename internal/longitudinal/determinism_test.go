package longitudinal

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/topology"
)

// workerSweep is the table of pool sizes every determinism case runs
// at; workers=1 is the sequential reference the others must match.
func workerSweep() []int {
	return []int{1, 2, runtime.NumCPU()}
}

// TestRunTrendWorkersDeterminism checks the whole longitudinal pipeline
// — topology generation, feed build, sanitization, atom grouping, and
// the trend analyses — produces identical TrendPoints at every pool
// size. This is the PR's hard invariant: parallelism must never change
// a number.
func TestRunTrendWorkersDeterminism(t *testing.T) {
	eras := []topology.Era{topology.EraOf(2008, 1), topology.EraOf(2020, 1)}
	cfg := smallConfig(11)
	cfg.Scale = 0.004

	var ref []TrendPoint
	for _, w := range workerSweep() {
		wcfg := cfg
		wcfg.Workers = w
		points, err := RunTrend(wcfg, eras)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(points) != len(eras) {
			t.Fatalf("workers=%d: %d points", w, len(points))
		}
		if ref == nil {
			ref = points
			continue
		}
		if !reflect.DeepEqual(points, ref) {
			t.Errorf("workers=%d: trend points differ from workers=1:\n%+v\n%+v",
				w, points, ref)
		}
	}
}

// TestRunEraWorkersDeterminism does the same for the full per-era
// pipeline, including the update-window analyses that only RunEra runs.
func TestRunEraWorkersDeterminism(t *testing.T) {
	cfg := smallConfig(12)
	cfg.Scale = 0.004
	era := topology.EraOf(2014, 1)

	var ref *EraResult
	for _, w := range workerSweep() {
		wcfg := cfg
		wcfg.Workers = w
		res, err := RunEra(wcfg, era)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Stats != ref.Stats {
			t.Errorf("workers=%d: stats differ:\n%+v\n%+v", w, res.Stats, ref.Stats)
		}
		if res.Stab8h != ref.Stab8h || res.Stab24h != ref.Stab24h || res.Stab1w != ref.Stab1w {
			t.Errorf("workers=%d: stability differs", w)
		}
		if !reflect.DeepEqual(res.Formation, ref.Formation) {
			t.Errorf("workers=%d: formation differs", w)
		}
		if !reflect.DeepEqual(res.Corr, ref.Corr) {
			t.Errorf("workers=%d: update correlation differs", w)
		}
		if !reflect.DeepEqual(res.Report, ref.Report) {
			t.Errorf("workers=%d: sanitize report differs:\n%+v\n%+v",
				w, res.Report, ref.Report)
		}
	}
}

// TestRunSplitsWorkersDeterminism covers the daily-snapshot split
// window: per-day breakdowns and the observer CDF must not depend on
// how snapshots or detection windows were scheduled.
func TestRunSplitsWorkersDeterminism(t *testing.T) {
	cfg := smallConfig(13)
	cfg.Scale = 0.004
	era := topology.EraOf(2016, 1)

	var ref *SplitStudy
	for _, w := range workerSweep() {
		wcfg := cfg
		wcfg.Workers = w
		study, err := RunSplits(wcfg, era, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = study
			continue
		}
		if !reflect.DeepEqual(study, ref) {
			t.Errorf("workers=%d: split study differs from workers=1", w)
		}
	}
}
