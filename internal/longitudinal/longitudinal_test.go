package longitudinal

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/topology"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.006
	return cfg
}

func TestRunEra2004(t *testing.T) {
	res, err := RunEra(smallConfig(5), topology.EraOf(2004, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Prefixes == 0 || res.Stats.Atoms == 0 || res.Stats.ASes == 0 {
		t.Fatalf("empty stats: %+v", res.Stats)
	}
	// Atom count between AS count and prefix count.
	if res.Stats.Atoms < res.Stats.ASes || res.Stats.Atoms > res.Stats.Prefixes {
		t.Errorf("atom count out of range: %+v", res.Stats)
	}
	// Mean atom size > 1.
	if res.Stats.MeanAtomSize <= 1 {
		t.Errorf("mean atom size %v", res.Stats.MeanAtomSize)
	}
	// MOAS below the paper's 5% bound.
	if share := float64(res.Stats.MOASPrefixes) / float64(res.Stats.Prefixes); share > 0.05 {
		t.Errorf("MOAS share %.3f", share)
	}
	// Stability broadly decays with horizon. Toggling churn (prefixes
	// returning to their home group) can produce small inversions at
	// tiny scales, so allow a 3-point tolerance between adjacent
	// horizons while requiring a clear 8h → 1w decline.
	if res.Stab8h.CAM < res.Stab24h.CAM-0.03 || res.Stab24h.CAM < res.Stab1w.CAM-0.03 {
		t.Errorf("CAM not decaying: %v %v %v", res.Stab8h.CAM, res.Stab24h.CAM, res.Stab1w.CAM)
	}
	if res.Stab1w.CAM >= res.Stab8h.CAM {
		t.Errorf("CAM 1w %v not below 8h %v", res.Stab1w.CAM, res.Stab8h.CAM)
	}
	// MPM is prefix-weighted, CAM atom-weighted; at small scale one
	// large atom breaking can push MPM slightly below CAM. Allow a
	// small band rather than strict ordering.
	if res.Stab8h.MPM < res.Stab8h.CAM-0.1 || res.Stab1w.MPM < res.Stab1w.CAM-0.1 {
		t.Errorf("MPM far below CAM: %+v %+v", res.Stab8h, res.Stab1w)
	}
	// Stability in a plausible band.
	if res.Stab8h.CAM < 0.80 || res.Stab8h.CAM > 1.0 {
		t.Errorf("CAM 8h = %v", res.Stab8h.CAM)
	}
	// Formation distances populated; distance 1 dominated by
	// single-atom ASes in 2004.
	if res.Formation.TotalAtoms == 0 || res.Formation.AtomsAtDistance[1] == 0 {
		t.Errorf("formation: %+v", res.Formation)
	}
}

// TestRunChurnReplayDifferential pins the era-level delta mode: replay
// the standard update window into the base snapshot's AtomIndex and
// check the incrementally maintained partition equals a batch
// recomputation of the final matrix, byte for byte. (Raw intern IDs
// are comparable here because both sides read the same table.)
func TestRunChurnReplayDifferential(t *testing.T) {
	r := NewEraRun(smallConfig(5), topology.EraOf(2024, 1))
	ix, st, err := r.RunChurnReplay(OffsetBase, OffsetBase+UpdateHours)
	if err != nil {
		t.Fatal(err)
	}
	if st.Elems == 0 || st.Applied == 0 {
		t.Fatalf("degenerate replay: %+v", st)
	}
	inc := ix.Materialize(1)
	bat := core.ComputeAtomsWorkers(ix.Snapshot(), 1)
	if !reflect.DeepEqual(inc, bat) {
		t.Fatal("churn replay materialized a partition batch recompute disagrees with")
	}
	if ds := ix.Stats(); ds.Applied != st.Applied || ds.NoOps != st.NoOps {
		t.Fatalf("index stats %+v disagree with replay stats %+v", ds, st)
	}
}

// TestUpdateCorrelationAtomsBeatASes uses a long window (1 day) for a
// statistically meaningful Fig 3 comparison at test scale.
func TestUpdateCorrelationAtomsBeatASes(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Scale = 0.012
	r := NewEraRun(cfg, topology.EraOf(2012, 1))
	base, _, err := r.SnapshotAt(OffsetBase)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := r.Updates(OffsetBase, OffsetBase+1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 50 {
		t.Fatalf("only %d records", len(records))
	}
	corr := metrics.CorrelateUpdates(base, records, 7)
	atomWins, comparisons := 0, 0
	for k := 2; k <= 6; k++ {
		pa, ps := corr.Atom[k].Pr(), corr.AS[k].Pr()
		if pa < 0 || ps < 0 {
			continue
		}
		comparisons++
		if pa > ps {
			atomWins++
		}
	}
	if comparisons == 0 {
		t.Fatal("no size buckets to compare")
	}
	if atomWins*2 < comparisons {
		t.Errorf("atoms won only %d/%d size buckets; atom=%+v as=%+v",
			atomWins, comparisons, corr.Atom[2:7], corr.AS[2:7])
	}
	// And atoms must be seen in full a meaningful fraction of the time.
	if pr := corr.Atom[2].Pr(); pr < 0.2 {
		t.Errorf("Pr_full(atom, 2) = %v", pr)
	}
}

func TestRunEraDeterminism(t *testing.T) {
	a, err := RunEra(smallConfig(6), topology.EraOf(2010, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEra(smallConfig(6), topology.EraOf(2010, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Stab8h != b.Stab8h || a.Stab1w != b.Stab1w {
		t.Error("stability differs")
	}
}

func TestRunEraV6(t *testing.T) {
	cfg := smallConfig(7)
	cfg.Family = 6
	res, err := RunEra(cfg, topology.EraOf(2024, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Prefixes == 0 || res.Stats.Atoms == 0 {
		t.Fatalf("v6 empty: %+v", res.Stats)
	}
	for _, pfx := range res.Atoms.Snap.Prefixes {
		if pfx.Addr().Is4() {
			t.Fatalf("v4 prefix %v in v6 study", pfx)
		}
	}
}

func TestRun2002Reproduction(t *testing.T) {
	cfg := smallConfig(8)
	cfg.Artifacts = false
	res, err := RunEra(cfg, topology.EraOf(2002, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Atoms.Snap.VPs); got != 13 {
		t.Errorf("2002 VPs = %d, want 13", got)
	}
	// Ratios near the original paper: ~12.5K ASes, 115K prefixes, 26K
	// atoms → atoms/ASes ≈ 2.1, prefixes/atoms ≈ 4.4. Generous bands.
	atomsPerAS := float64(res.Stats.Atoms) / float64(res.Stats.ASes)
	if atomsPerAS < 1.2 || atomsPerAS > 3.5 {
		t.Errorf("2002 atoms/AS = %.2f", atomsPerAS)
	}
	prefixesPerAtom := float64(res.Stats.Prefixes) / float64(res.Stats.Atoms)
	if prefixesPerAtom < 2 || prefixesPerAtom > 8 {
		t.Errorf("2002 prefixes/atom = %.2f", prefixesPerAtom)
	}
}

func TestRunTrend(t *testing.T) {
	eras := []topology.Era{topology.EraOf(2006, 1), topology.EraOf(2015, 1), topology.EraOf(2024, 1)}
	points, err := RunTrend(smallConfig(9), eras)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Full feeds grow over time.
	if !(points[0].FullFeeds < points[2].FullFeeds) {
		t.Errorf("full feeds: %d -> %d", points[0].FullFeeds, points[2].FullFeeds)
	}
	// Threshold grows with table size (Fig 12).
	if !(points[0].FullFeedThreshold < points[2].FullFeedThreshold) {
		t.Errorf("threshold: %d -> %d", points[0].FullFeedThreshold, points[2].FullFeedThreshold)
	}
	// Formation shares are distributions.
	for _, p := range points {
		sum := 0.0
		for _, s := range p.FormationShare {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%v: formation shares sum %v", p.Era, sum)
		}
	}
	// Distance-1 share shrinks from 2006 to 2024 (Table 2's trend).
	if points[0].FormationShare[1] <= points[2].FormationShare[1] {
		t.Errorf("d1 share did not shrink: %v -> %v",
			points[0].FormationShare[1], points[2].FormationShare[1])
	}
}

func TestRunTrendProgressStream(t *testing.T) {
	var buf strings.Builder
	cfg := smallConfig(9)
	cfg.Scale = 0.004
	cfg.Progress = obs.NewProgress(&buf, "test")
	eras := []topology.Era{topology.EraOf(2006, 1), topology.EraOf(2024, 1)}
	points, err := RunTrend(cfg, eras)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // trend, 2× era_done, trend_done
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	var events []obs.ProgressEvent
	for i, line := range lines {
		var ev obs.ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		events = append(events, ev)
	}
	if events[0].Event != "trend" || events[0].Total != 2 {
		t.Errorf("first event = %+v", events[0])
	}
	wantRows := int64(points[0].Stats.Prefixes + points[1].Stats.Prefixes)
	seen := map[string]bool{}
	for _, ev := range events[1:3] {
		if ev.Event != "era_done" || ev.Total != 2 {
			t.Errorf("era event = %+v", ev)
		}
		seen[ev.Era] = true
	}
	// Era completion order follows the scheduler; both must appear.
	if !seen["2006Q1"] || !seen["2024Q1"] {
		t.Errorf("eras seen = %v", seen)
	}
	last := events[3]
	if last.Event != "trend_done" || last.Done != 2 || last.TotalRows != wantRows {
		t.Errorf("final event = %+v (want total_rows %d)", last, wantRows)
	}
}

func TestRunSplits(t *testing.T) {
	cfg := smallConfig(10)
	cfg.Scale = 0.004
	study, err := RunSplits(cfg, topology.EraOf(2018, 1), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Days) != 6 {
		t.Fatalf("days = %d", len(study.Days))
	}
	if study.CDF.Total == 0 {
		t.Skip("no split events at this tiny scale")
	}
	// Most split events are localized (the paper: 80% ≤ 3 VPs).
	if frac := study.CDF.FractionAtMost(3); frac < 0.3 {
		t.Errorf("only %.2f of events ≤3 observers", frac)
	}
}
