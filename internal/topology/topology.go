package topology

import (
	"net/netip"
	"sort"
)

// Tier classifies an AS's role in the hierarchy.
type Tier uint8

// Tiers. Clique ASes form the fully-meshed top (Tier 1); Transit ASes
// sell transit below them; Content ASes originate prefixes and peer
// widely (the "flattening" actors); Stub ASes only originate.
const (
	TierClique Tier = iota + 1
	TierTransit
	TierContent
	TierStub
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierClique:
		return "clique"
	case TierTransit:
		return "transit"
	case TierContent:
		return "content"
	case TierStub:
		return "stub"
	default:
		return "unknown"
	}
}

// AS is one autonomous system and its policy disposition.
type AS struct {
	ASN   uint32
	Index int // creation index within its tier
	Tier  Tier
	// Org groups sibling ASes run by one organization (0 = standalone).
	Org uint32

	Providers []uint32
	Peers     []uint32
	Customers []uint32

	// HasV6 marks IPv6 participation in the graph's era.
	HasV6 bool

	// Selectivity is the probability that this AS, acting as transit,
	// silently does not export a given routing unit to a given neighbor
	// (selective export, the paper's §4.3 mechanism for distance-3+
	// atom splits). Evaluated per (unit, neighbor) by Graph.Exports.
	Selectivity float64
	// PrependRate is the probability that this AS prepends itself when
	// exporting a given unit to a given neighbor.
	PrependRate float64

	// Groups are the routing units (policy groups) this AS originates.
	Groups []*PolicyGroup
}

// AnnouncePolicy is the origin's export behavior for one neighbor.
type AnnouncePolicy struct {
	// Prepend is the number of extra copies of the origin ASN prepended
	// when announcing to this neighbor (0 = plain announcement).
	Prepend int
}

// PolicyGroup is a routing unit: a set of prefixes that the origin AS
// treats identically — announced to the same neighbors with the same
// prepending. Policy atoms are *observed* groups; a PolicyGroup is the
// generative intent. Atoms and groups coincide except when transit
// policies split a group's observed paths or two groups collapse to
// identical paths everywhere.
type PolicyGroup struct {
	ID     int // globally unique, dense
	Origin uint32
	V6     bool
	// SigID identifies the group's policy signature: groups of the same
	// origin with identical announce policies share a SigID. Signature
	// peers are one *configured* policy that the generator split only so
	// transit-level hashing can diverge them; churn treats a signature
	// as one unit of change (identically-configured prefixes change
	// together), which is what makes observationally-merged atoms
	// co-update in the wire stream.
	SigID int
	// Prefixes originated in this group.
	Prefixes []netip.Prefix
	// Announce maps a neighbor ASN of the origin to the export policy;
	// neighbors absent from the map do not receive this unit.
	Announce map[uint32]AnnouncePolicy
}

// Graph is the generated Internet at one era.
type Graph struct {
	Era    Era
	Seed   uint64
	Params Params

	ASes   []*AS // ascending ASN
	byASN  map[uint32]*AS
	Groups []*PolicyGroup // all units, ID-indexed

	// CliqueASNs lists the Tier-1 mesh.
	CliqueASNs []uint32
}

// AS returns the AS with the given ASN, or nil.
func (g *Graph) AS(asn uint32) *AS { return g.byASN[asn] }

// NumASes returns the total AS count (including non-originating core).
func (g *Graph) NumASes() int { return len(g.ASes) }

// OriginASes returns all ASes that originate at least one group, in
// ascending ASN order.
func (g *Graph) OriginASes() []*AS {
	var out []*AS
	for _, a := range g.ASes {
		if len(a.Groups) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// TotalPrefixes counts originated prefixes (v4 + v6).
func (g *Graph) TotalPrefixes() (v4, v6 int) {
	for _, u := range g.Groups {
		if u.V6 {
			v6 += len(u.Prefixes)
		} else {
			v4 += len(u.Prefixes)
		}
	}
	return
}

// Exports decides whether AS `from` exports unit u to neighbor `to`,
// and with how many extra prepends of from's own ASN. It implements the
// deterministic transit-policy hash: stable across snapshots unless a
// churn overlay overrides it.
//
// Selective export only filters toward peers: customer routes are
// revenue and always propagate to providers and customers, while
// per-peer export policy ("do not announce in region X") is the classic
// selective-export mechanism Kastanakis et al. document. Filtering the
// peer crossings diversifies upper paths — the paper's distance-3 atom
// splits — without making prefixes globally invisible.
func (g *Graph) Exports(from *AS, u *PolicyGroup, to uint32) (ok bool, prepend int) {
	if from.Selectivity > 0 && isPeerOfAS(from, to) {
		if unit(g.Seed, 0x5e1ec, uint64(from.ASN), uint64(u.ID), uint64(to)) < from.Selectivity {
			return false, 0
		}
	}
	if from.PrependRate > 0 {
		if unit(g.Seed, 0x93e9d, uint64(from.ASN), uint64(u.ID), uint64(to)) < from.PrependRate {
			prepend = 1 + pick(2, g.Seed, 0x93e9e, uint64(from.ASN), uint64(u.ID), uint64(to))
		}
	}
	return true, prepend
}

// NewGraph assembles a graph from explicit ASes and groups — for tests
// and custom scenarios. Customer lists are derived from the Providers
// lists (any pre-set Customers are discarded), peer lists must already
// be symmetric, and groups must be densely ID-numbered from 0.
func NewGraph(era Era, seed uint64, ases []*AS, groups []*PolicyGroup) *Graph {
	g := &Graph{Era: era, Seed: seed, ASes: ases, Groups: groups}
	byASN := make(map[uint32]*AS, len(ases))
	for _, a := range ases {
		a.Customers = nil
		byASN[a.ASN] = a
	}
	for _, a := range ases {
		for _, p := range a.Providers {
			if prov := byASN[p]; prov != nil {
				prov.Customers = append(prov.Customers, a.ASN)
			}
		}
	}
	g.finish()
	return g
}

// isPeerOfAS reports whether asn is one of a's peers.
func isPeerOfAS(a *AS, asn uint32) bool {
	for _, p := range a.Peers {
		if p == asn {
			return true
		}
	}
	return false
}

// link records a provider-customer relationship on both ends.
func link(provider, customer *AS) {
	provider.Customers = append(provider.Customers, customer.ASN)
	customer.Providers = append(customer.Providers, provider.ASN)
}

// peerLink records a peering on both ends.
func peerLink(a, b *AS) {
	a.Peers = append(a.Peers, b.ASN)
	b.Peers = append(b.Peers, a.ASN)
}

// finish sorts adjacency lists and indexes the graph.
func (g *Graph) finish() {
	sort.Slice(g.ASes, func(i, j int) bool { return g.ASes[i].ASN < g.ASes[j].ASN })
	g.byASN = make(map[uint32]*AS, len(g.ASes))
	for _, a := range g.ASes {
		sort.Slice(a.Providers, func(i, j int) bool { return a.Providers[i] < a.Providers[j] })
		sort.Slice(a.Peers, func(i, j int) bool { return a.Peers[i] < a.Peers[j] })
		sort.Slice(a.Customers, func(i, j int) bool { return a.Customers[i] < a.Customers[j] })
		g.byASN[a.ASN] = a
	}
}
