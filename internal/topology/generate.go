package topology

import (
	"encoding/binary"
	"math"
	"net/netip"
	"slices"
)

// ASN layout. Identities are stable functions of creation index so that
// consecutive eras grow the same Internet.
const (
	cliqueSize    = 12
	cliqueBaseASN = 10
	transitBase   = 100
	originBase    = 10000
	origin4Byte   = 131072 // origins past the 2-octet space spill here
	fitiBaseASN   = 600000
)

// v4 address layout: origins carve /21–/24 prefixes out of per-AS slot
// runs (one slot = one /24); transits use a disjoint high region.
const (
	slotStride      = 8               // /24 slots reserved per prefix (max size /21)
	originSlotBase  = 1 << 16         // 1.0.0.0
	transitSlotBase = 0xC0000000 >> 8 // 192.0.0.0
)

// Generate builds the Internet graph for one era. The result is
// deterministic in (p.Seed, era).
func Generate(p Params, era Era) *Graph {
	if p.Scale <= 0 {
		p.Scale = 0.02
	}
	g := &Graph{Era: era, Seed: p.Seed, Params: p}

	b := &builder{g: g, p: &p, era: era}
	b.buildClique()
	b.buildTransits()
	b.buildOrigins()
	b.buildFITI()
	b.assignTransitPrefixes()
	b.assignOriginPrefixes()
	b.moasPass()
	b.collectGroups()
	g.finish()
	return g
}

type builder struct {
	g   *Graph
	p   *Params
	era Era

	clique   []*AS
	transits []*AS
	origins  []*AS // indexed by creation index
	fiti     []*AS

	groupID int
}

func (b *builder) seed() uint64 { return b.p.Seed }

// buildClique creates the Tier-1 full mesh.
func (b *builder) buildClique() {
	sel := b.p.Curves.TransitSelectivity.At(b.era)
	for i := 0; i < cliqueSize; i++ {
		a := &AS{
			ASN: uint32(cliqueBaseASN + i), Index: i, Tier: TierClique,
			HasV6:       true,
			Selectivity: sel * 0.3 * 2 * unit(b.seed(), 0xc11, uint64(i)),
			PrependRate: b.p.Curves.TransitPrependRate.At(b.era) * 0.5,
		}
		b.clique = append(b.clique, a)
		b.g.ASes = append(b.g.ASes, a)
		b.g.CliqueASNs = append(b.g.CliqueASNs, a.ASN)
	}
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			peerLink(b.clique[i], b.clique[j])
		}
	}
}

// buildTransits creates the transit core below the clique. Transit i's
// providers come from the clique and earlier transits; transit-transit
// peering density grows with the era (flattening), monotonically: a pair
// peers once the density curve passes its fixed hash draw.
func (b *builder) buildTransits() {
	n := scaled(b.p.Curves.TransitASes.At(b.era), math.Sqrt(b.p.Scale), 8)
	sel := b.p.Curves.TransitSelectivity.At(b.era)
	prep := b.p.Curves.TransitPrependRate.At(b.era)
	for i := 0; i < n; i++ {
		a := &AS{
			ASN: uint32(transitBase + i), Index: i, Tier: TierTransit,
			HasV6:       unit(b.seed(), 0x76, uint64(i)) < 0.9,
			Selectivity: sel * 2 * unit(b.seed(), 0x15e1, uint64(i)),
			PrependRate: prep * 2 * unit(b.seed(), 0x19e9, uint64(i)),
		}
		// Providers: 1–2 from the clique for low indices, from earlier
		// transits otherwise (a deepening hierarchy).
		nProv := 1 + pick(2, b.seed(), 0x1909, uint64(i))
		for k := 0; k < nProv; k++ {
			var prov *AS
			if i < 6 || unit(b.seed(), 0x1915, uint64(i), uint64(k)) < 0.5 {
				prov = b.clique[pick(cliqueSize, b.seed(), 0x1916, uint64(i), uint64(k))]
			} else {
				prov = b.transits[pick(i, b.seed(), 0x1917, uint64(i), uint64(k))]
			}
			if !hasNeighbor(a, prov) {
				link(prov, a)
			}
		}
		b.transits = append(b.transits, a)
		b.g.ASes = append(b.g.ASes, a)
	}
	// Flattening: pairwise peering with era-growing density.
	density := b.p.Curves.PeeringDensity.At(b.era)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if unit(b.seed(), 0xbee5, uint64(i), uint64(j)) < density {
				if !hasNeighbor(b.transits[i], b.transits[j]) {
					peerLink(b.transits[i], b.transits[j])
				}
			}
		}
	}
}

func hasNeighbor(a, x *AS) bool {
	for _, n := range a.Providers {
		if n == x.ASN {
			return true
		}
	}
	for _, n := range a.Peers {
		if n == x.ASN {
			return true
		}
	}
	for _, n := range a.Customers {
		if n == x.ASN {
			return true
		}
	}
	return a.ASN == x.ASN
}

// originASN maps a creation index to its stable ASN.
func originASN(i int) uint32 {
	if originBase+i < 64500 {
		return uint32(originBase + i)
	}
	return uint32(origin4Byte + (i - (64500 - originBase)))
}

// buildOrigins creates the prefix-originating edge: stubs, content
// networks, and sibling-AS chains. Roles are decided in a pre-pass so a
// chain head claims the following indices as its members.
func (b *builder) buildOrigins() {
	n := scaled(b.p.Curves.OriginASes.At(b.era), b.p.Scale, 60)
	contentShare := b.p.Curves.ContentShare.At(b.era)
	multihomed := b.p.Curves.MultihomedShare.At(b.era)
	chainProb := b.p.Curves.OrgChainProb.At(b.era)
	v6share := b.p.v6ShareAt(b.era)

	// Pre-pass: chain membership. member[i] = head index (or -1).
	member := make([]int, n)
	for i := range member {
		member[i] = -1
	}
	for i := 0; i < n; i++ {
		if member[i] >= 0 {
			continue
		}
		if unit(b.seed(), 0xc4a1, uint64(i)) < chainProb {
			length := 2 + pick(5, b.seed(), 0xc4a2, uint64(i)) // 2–6 siblings
			for k := 1; k < length && i+k < n; k++ {
				member[i+k] = i
			}
		}
	}

	b.origins = make([]*AS, n)
	for i := 0; i < n; i++ {
		a := &AS{
			ASN: originASN(i), Index: i,
			HasV6: unit(b.seed(), 0x0006, uint64(i)) < v6share,
		}
		b.origins[i] = a
		b.g.ASes = append(b.g.ASes, a)

		if head := member[i]; head >= 0 {
			// Sibling chain member: single-homed behind the previous
			// sibling; the whole chain shares the head's org.
			a.Tier = TierStub
			a.Org = originASN(head)
			link(b.origins[i-1], a)
			if b.origins[head].Org == 0 {
				b.origins[head].Org = originASN(head)
			}
			continue
		}

		isContent := unit(b.seed(), 0xc0e7, uint64(i)) < contentShare
		if isContent {
			a.Tier = TierContent
		} else {
			a.Tier = TierStub
		}

		// Providers among transits (occasionally the clique directly).
		nProv := 1
		if unit(b.seed(), 0x3017, uint64(i)) < multihomed {
			nProv = 2 + geometric(0.3, 3, b.seed(), 0x3018, uint64(i)) - 1
		}
		for k := 0; k < nProv; k++ {
			var prov *AS
			if unit(b.seed(), 0x3019, uint64(i), uint64(k)) < 0.06 {
				prov = b.clique[pick(cliqueSize, b.seed(), 0x301a, uint64(i), uint64(k))]
			} else {
				prov = b.transits[pick(len(b.transits), b.seed(), 0x301b, uint64(i), uint64(k))]
			}
			if !hasNeighbor(a, prov) {
				link(prov, a)
			}
		}

		// Content networks peer widely (IXP fabric).
		if isContent {
			nPeer := 2 + pick(7, b.seed(), 0x0eef, uint64(i))
			for k := 0; k < nPeer; k++ {
				t := b.transits[pick(len(b.transits), b.seed(), 0x0ef0, uint64(i), uint64(k))]
				if !hasNeighbor(a, t) {
					peerLink(a, t)
				}
			}
		}
	}
}

// buildFITI injects the 2021 FITI event: thousands of single-/32 ASes
// behind one research-network transit (§5.1 of the paper).
func (b *builder) buildFITI() {
	n := scaled(b.p.fitiAt(b.era), b.p.Scale, 0)
	if n > 4096 {
		n = 4096 // the /20 holds exactly 4096 /32s
	}
	if n == 0 || len(b.transits) == 0 {
		return
	}
	cernet := b.transits[0]
	cernet.HasV6 = true
	for k := 0; k < n; k++ {
		a := &AS{
			ASN: uint32(fitiBaseASN + k), Index: k, Tier: TierStub,
			Org: cernet.ASN, HasV6: true,
		}
		link(cernet, a)
		b.fiti = append(b.fiti, a)
		b.g.ASes = append(b.g.ASes, a)
	}
}

// v4Prefix returns the prefix at a /24 slot with the given length.
func v4Prefix(slot uint32, bits int) netip.Prefix {
	var addr [4]byte
	binary.BigEndian.PutUint32(addr[:], slot<<8)
	return netip.PrefixFrom(netip.AddrFrom4(addr), bits)
}

// prefixLen samples a v4 prefix length in /21–/24 (fragmentation-heavy).
func prefixLen(seed uint64, asIdx, j int) int {
	switch r := unit(seed, 0x91e5, uint64(asIdx), uint64(j)); {
	case r < 0.65:
		return 24
	case r < 0.80:
		return 23
	case r < 0.92:
		return 22
	default:
		return 21
	}
}

// assignTransitPrefixes gives core ASes their own small originations.
func (b *builder) assignTransitPrefixes() {
	slot := uint32(transitSlotBase)
	core := append(append([]*AS(nil), b.clique...), b.transits...)
	for ci, a := range core {
		count := 1 + pick(3, b.seed(), 0x7e1, uint64(a.ASN))
		grp := b.newGroup(a, false)
		for j := 0; j < count; j++ {
			grp.Prefixes = append(grp.Prefixes, v4Prefix(slot, prefixLen(b.seed(), ci+1<<20, j)))
			slot += slotStride
		}
		b.announceAll(a, grp, 0)
		if a.HasV6 {
			g6 := b.newGroup(a, true)
			g6.Prefixes = append(g6.Prefixes, v6ASBlock(0xF00000+uint32(ci)))
			b.announceAll(a, g6, 0)
		}
	}
}

// stratified returns a low-discrepancy uniform in [0,1) for index i: the
// golden-ratio sequence rotated by a seed-dependent offset. Unlike a
// hash draw, any window of consecutive indices matches the target
// distribution almost exactly, so heavy-tailed per-AS size classes keep
// stable means even at small Scale.
func stratified(seed uint64, salt uint64, i int) float64 {
	const phi = 0.6180339887498949
	v := phi*float64(i+1) + unit(seed, salt)
	return v - math.Floor(v)
}

// logUniform maps v in [0,1) to a log-uniformly distributed integer in
// [lo, hi].
func logUniform(v, lo, hi float64) int {
	return int(lo*math.Pow(hi/lo, v) + 0.5)
}

// effectiveCap shrinks the absolute per-AS prefix cap at small scales:
// a 3,600-prefix AS in a 2,000-prefix world would swamp every statistic.
// At Scale ≥ 0.04 the paper-scale cap applies unchanged (EXPERIMENTS.md
// documents the deviation for smaller runs).
func (b *builder) effectiveCap(capBase float64) float64 {
	eff := capBase * b.p.Scale * 25
	if eff > capBase {
		eff = capBase
	}
	if eff < 60 {
		eff = 60
	}
	return eff
}

// maxPrefixCount is AS i's lifetime-maximum v4 prefix count — a stable
// function of the index, so its address reservation never moves. The
// distribution is stratified (small / middle / large / mega) with
// bounded log-uniform strata, giving both the paper's fat middle (the
// typical multi-atom AS holds ~10–20 prefixes) and stable means at any
// sample size.
func (b *builder) maxPrefixCount(i int) int {
	u := stratified(b.seed(), 0x5a11, i)
	small := b.p.Curves.SmallASShare.V2024
	eff := b.effectiveCap(b.p.Curves.PrefixTailCap.V2024)
	switch {
	case u < small:
		return 1 + int(u/small*2) // 1 or 2
	case u < small+0.50:
		return logUniform((u-small)/0.50, 3, 26)
	case u < 0.998:
		return logUniform((u-small-0.50)/(0.998-small-0.50), 26, 110)
	default:
		f := (u - 0.998) / 0.002
		lo := eff / 3
		return int(lo + f*(eff-lo))
	}
}

// v6ASBlock returns the /32 assigned to v6 entity k: 2a00::/8 space with
// a 24-bit entity number, so 16.7M entities fit without collision.
func v6ASBlock(k uint32) netip.Prefix {
	var a [16]byte
	a[0] = 0x2a
	a[1], a[2], a[3] = byte(k>>16), byte(k>>8), byte(k)
	return netip.PrefixFrom(netip.AddrFrom16(a), 32)
}

// v6Subnet returns /48 subnet j of entity k's /32.
func v6Subnet(k, j uint32) netip.Prefix {
	var a [16]byte
	a[0] = 0x2a
	a[1], a[2], a[3] = byte(k>>16), byte(k>>8), byte(k)
	binary.BigEndian.PutUint16(a[4:6], uint16(j))
	return netip.PrefixFrom(netip.AddrFrom16(a), 48)
}

// fitiPrefix returns /32 number k inside 240a:a000::/20.
func fitiPrefix(k uint32) netip.Prefix {
	var a [16]byte
	a[0], a[1] = 0x24, 0x0a
	// bits 16..20 are 1010 (0xa); bits 20..32 carry k.
	a[2] = 0xa0 | byte(k>>8)
	a[3] = byte(k)
	return netip.PrefixFrom(netip.AddrFrom16(a), 32)
}

// newGroup allocates the next policy group for an AS.
func (b *builder) newGroup(a *AS, v6 bool) *PolicyGroup {
	grp := &PolicyGroup{ID: b.groupID, Origin: a.ASN, V6: v6,
		Announce: make(map[uint32]AnnouncePolicy)}
	b.groupID++
	a.Groups = append(a.Groups, grp)
	return grp
}

// announceAll announces a group to every provider and peer, with an
// optional uniform prepend.
func (b *builder) announceAll(a *AS, grp *PolicyGroup, prepend int) {
	for _, p := range a.Providers {
		grp.Announce[p] = AnnouncePolicy{Prepend: prepend}
	}
	for _, p := range a.Peers {
		grp.Announce[p] = AnnouncePolicy{Prepend: prepend}
	}
}

// assignOriginPrefixes allocates each origin AS's prefixes and carves
// them into policy groups per the era's granularity knobs.
func (b *builder) assignOriginPrefixes() {
	growth := b.p.Curves.PrefixGrowth.At(b.era)
	splitBase := b.p.Curves.SplitProb.At(b.era)
	sameShare := b.p.Curves.SameAnnounceShare.At(b.era)
	prepShare := b.p.Curves.PrependGroupProb.At(b.era)
	v6growth := b.p.Curves.V6PrefixGrowth.At(b.era)
	v6split := b.p.Curves.V6SplitProb.At(b.era)

	slotCursor := uint32(originSlotBase)
	for i, a := range b.origins {
		maxCount := b.maxPrefixCount(i)
		base := slotCursor
		slotCursor += uint32(maxCount * slotStride)

		count := int(float64(maxCount)*growth + 0.5)
		if count < 1 {
			count = 1
		}
		prefixes := make([]netip.Prefix, count)
		for j := 0; j < count; j++ {
			prefixes[j] = v4Prefix(base+uint32(j*slotStride), prefixLen(b.seed(), i, j))
		}
		split := splitBase * 2 * unit(b.seed(), 0x5711, uint64(i))
		if len(a.Providers) < 2 {
			// Single-homed origins have little to differentiate: only
			// prepending distinguishes their announcements.
			split *= 0.15
		}
		if split > 0.95 {
			split = 0.95
		}
		b.buildGroups(a, i, prefixes, false, split, sameShare, prepShare)

		if a.HasV6 {
			v6max := b.v6MaxPrefixCount(i)
			v6count := int(float64(v6max)*v6growth + 0.5)
			if v6count < 1 {
				v6count = 1
			}
			if v6count > 65000 {
				v6count = 65000
			}
			v6prefixes := make([]netip.Prefix, v6count)
			for j := 0; j < v6count; j++ {
				if j == 0 {
					v6prefixes[j] = v6ASBlock(uint32(i))
				} else {
					v6prefixes[j] = v6Subnet(uint32(i), uint32(j))
				}
			}
			split6 := v6split * 2 * unit(b.seed(), 0x5716, uint64(i))
			if split6 > 0.95 {
				split6 = 0.95
			}
			b.buildGroups(a, i+1<<24, v6prefixes, true, split6, sameShare, prepShare)
		}
	}

	// FITI ASes: one /32 each, one group.
	for k, a := range b.fiti {
		grp := b.newGroup(a, true)
		grp.Prefixes = append(grp.Prefixes, fitiPrefix(uint32(k)))
		b.announceAll(a, grp, 0)
	}
}

// v6MaxPrefixCount mirrors maxPrefixCount for the v6 plane (smaller).
func (b *builder) v6MaxPrefixCount(i int) int {
	const small = 0.55
	u := stratified(b.seed(), 0x6a11, i)
	eff := b.effectiveCap(2400)
	switch {
	case u < small:
		return 1 + int(u/small*2)
	case u < 0.93:
		return logUniform((u-small)/(0.93-small), 3, 14)
	case u < 0.999:
		return logUniform((u-0.93)/(0.999-0.93), 14, 60)
	default:
		f := (u - 0.999) / 0.001
		lo := eff / 3
		return int(lo + f*(eff-lo))
	}
}

// buildGroups partitions prefixes into policy groups and assigns each
// group an announce policy. The first group announces everywhere; later
// groups either reuse the previous announce set (distinguishable only by
// transit policy), differ only in prepending, or select a proper subset
// of providers (origin-level selective announce → distance-2 splits).
func (b *builder) buildGroups(a *AS, salt int, prefixes []netip.Prefix, v6 bool, split, sameShare, prepShare float64) {
	grp := b.newGroup(a, v6)
	b.announceAll(a, grp, 0)
	// Background prepending on the primary group.
	if len(a.Providers) > 1 && unit(b.seed(), 0x9a01, uint64(salt)) < 0.10 {
		target := a.Providers[pick(len(a.Providers), b.seed(), 0x9a02, uint64(salt))]
		grp.Announce[target] = AnnouncePolicy{Prepend: 1 + pick(3, b.seed(), 0x9a03, uint64(salt))}
	}
	groups := []*PolicyGroup{grp}
	grp.Prefixes = append(grp.Prefixes, prefixes[0])

	for j := 1; j < len(prefixes); j++ {
		if unit(b.seed(), 0x9b01, uint64(salt), uint64(j)) < split {
			ng := b.newGroup(a, v6)
			b.assignAnnounce(a, ng, groups[len(groups)-1], salt, j, sameShare, prepShare)
			groups = append(groups, ng)
			ng.Prefixes = append(ng.Prefixes, prefixes[j])
			continue
		}
		// Join an existing group, biased toward the first (big atoms).
		r := unit(b.seed(), 0x9b02, uint64(salt), uint64(j))
		gi := int(float64(len(groups)) * r * r)
		if gi >= len(groups) {
			gi = len(groups) - 1
		}
		groups[gi].Prefixes = append(groups[gi].Prefixes, prefixes[j])
	}
}

// assignAnnounce gives a non-primary group its announce policy. Three
// regimes, matching the paper's distance-1/2/3 mechanisms:
//
//   - same announce set as the previous group: only transit policy can
//     distinguish the atoms (distance ≥3 when it does; merged when not);
//   - same set, different origin prepending: a distance-1 split;
//   - a proper subset of the providers: origin selective announce, a
//     distance-2 split.
//
// Single-homed origins cannot selectively announce (Kastanakis et al.'s
// observation), so their "selective" draw becomes a prepend variation.
func (b *builder) assignAnnounce(a *AS, ng, prev *PolicyGroup, salt, j int, sameShare, prepShare float64) {
	r := unit(b.seed(), 0x9c01, uint64(salt), uint64(j))
	copyPrev := func() {
		for n, pol := range prev.Announce {
			ng.Announce[n] = pol
		}
	}
	prependVariation := func() {
		copyPrev()
		neighbors := announceKeys(prev)
		if len(neighbors) > 0 {
			t := neighbors[pick(len(neighbors), b.seed(), 0x9c02, uint64(salt), uint64(j))]
			// Vary the prepend count but keep it bounded (real-world
			// prepending rarely exceeds a handful): cycle within 0..6,
			// always different from the previous group's value.
			next := (prev.Announce[t].Prepend + 1 + pick(2, b.seed(), 0x9c03, uint64(salt), uint64(j))) % 7
			ng.Announce[t] = AnnouncePolicy{Prepend: next}
		}
	}
	switch {
	case r < sameShare:
		copyPrev()
	case r < sameShare+prepShare || len(a.Providers) < 2:
		prependVariation()
	default:
		// A proper, non-empty subset of providers: exclude one provider
		// by hash, include the rest with high probability.
		excluded := pick(len(a.Providers), b.seed(), 0x9c04, uint64(salt), uint64(j))
		for k, p := range a.Providers {
			if k == excluded {
				continue
			}
			if len(ng.Announce) == 0 || unit(b.seed(), 0x9c05, uint64(salt), uint64(j), uint64(k)) < 0.8 {
				ng.Announce[p] = AnnouncePolicy{}
			}
		}
		if len(ng.Announce) == 0 {
			// All but the excluded one dropped out: announce to one.
			keep := (excluded + 1) % len(a.Providers)
			ng.Announce[a.Providers[keep]] = AnnouncePolicy{}
		}
		// Peers join regionally.
		for k, p := range a.Peers {
			if unit(b.seed(), 0x9c06, uint64(salt), uint64(j), uint64(k)) < 0.5 {
				ng.Announce[p] = AnnouncePolicy{}
			}
		}
		// Occasional prepending on the subset too.
		for _, n := range announceKeys(ng) {
			if unit(b.seed(), 0x9c08, uint64(salt), uint64(j), uint64(n)) < 0.08 {
				ng.Announce[n] = AnnouncePolicy{Prepend: 1 + pick(2, b.seed(), 0x9c09, uint64(salt), uint64(j), uint64(n))}
			}
		}
	}
}

func announceKeys(g *PolicyGroup) []uint32 {
	out := make([]uint32, 0, len(g.Announce))
	for n := range g.Announce {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// moasPass duplicates a small share of prefixes into a second origin's
// primary group, producing MOAS prefixes (kept under the paper's 5%).
func (b *builder) moasPass() {
	share := b.p.Curves.MOASShare.At(b.era)
	if share <= 0 || len(b.origins) < 2 {
		return
	}
	for i, a := range b.origins {
		for _, grp := range a.Groups {
			if grp.V6 {
				continue
			}
			for pi, pfx := range grp.Prefixes {
				if unit(b.seed(), 0x30a5, uint64(grp.ID), uint64(pi)) >= share {
					continue
				}
				oi := pick(len(b.origins), b.seed(), 0x30a6, uint64(i), uint64(pi))
				other := b.origins[oi]
				if other.ASN == a.ASN || len(other.Groups) == 0 {
					continue
				}
				og := other.Groups[0]
				if og.V6 {
					continue
				}
				og.Prefixes = append(og.Prefixes, pfx)
			}
		}
	}
}

// collectGroups gathers all groups into the graph, ID-ordered, and
// assigns policy-signature IDs: same origin + identical announce map.
func (b *builder) collectGroups() {
	b.g.Groups = make([]*PolicyGroup, b.groupID)
	sigOf := map[string]int{}
	for _, a := range b.g.ASes {
		for _, grp := range a.Groups {
			b.g.Groups[grp.ID] = grp
			key := announceSignature(grp)
			id, ok := sigOf[key]
			if !ok {
				id = len(sigOf)
				sigOf[key] = id
			}
			grp.SigID = id
		}
	}
}

// announceSignature canonically encodes (origin, family, announce map).
func announceSignature(grp *PolicyGroup) string {
	keys := announceKeys(grp)
	buf := make([]byte, 0, 10+8*len(keys))
	buf = binary.BigEndian.AppendUint32(buf, grp.Origin)
	if grp.V6 {
		buf = append(buf, 6)
	} else {
		buf = append(buf, 4)
	}
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint32(buf, k)
		buf = binary.BigEndian.AppendUint32(buf, uint32(grp.Announce[k].Prepend))
	}
	return string(buf)
}
