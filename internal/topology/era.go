// Package topology models the AS-level Internet as it evolves across the
// paper's measurement window (2004–2024, with a 2002 configuration for
// the Afek et al. reproduction): a tiered, Gao-Rexford-style AS graph
// with customer-provider and peering links, sibling-AS organizations,
// prefix allocation with growing fragmentation, IPv6 adoption including
// a FITI-like address-assignment event, and per-AS routing policies —
// the ingredients from which policy atoms emerge.
//
// Everything is deterministic in (Params.Seed, Era): AS identities,
// link structure, and prefix assignments are stable functions of a
// creation index, so consecutive eras grow the same Internet rather
// than sampling unrelated ones. Short-horizon churn (hours/days) is the
// routing layer's concern, not topology's.
package topology

import "fmt"

// Era identifies a quarterly snapshot epoch. Era 0 is 2004 Q1; each
// increment is one quarter. Negative values reach back to the 2002
// reproduction window (2002 Q1 = -8).
type Era int

// EraOf returns the era for a year and quarter (1-4).
func EraOf(year, quarter int) Era {
	return Era((year-2004)*4 + quarter - 1)
}

// Year returns the calendar year of the era.
func (e Era) Year() int { return 2004 + floorDiv(int(e), 4) }

// Quarter returns the quarter (1-4).
func (e Era) Quarter() int {
	return int(e) - floorDiv(int(e), 4)*4 + 1
}

// String renders "2004Q1".
func (e Era) String() string {
	y := 2004 + floorDiv(int(e), 4)
	q := int(e) - floorDiv(int(e), 4)*4 + 1
	return fmt.Sprintf("%dQ%d", y, q)
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// t returns the era's position in the 2004–2024 window as a fraction in
// [0,1], clamped outside the window.
func (e Era) t() float64 {
	const last = 83 // 2024 Q4
	f := float64(e) / last
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// lerp interpolates a parameter between its 2004 and 2024 values.
func (e Era) lerp(v2004, v2024 float64) float64 {
	t := e.t()
	return v2004 + (v2024-v2004)*t
}
