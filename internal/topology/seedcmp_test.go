package topology

import "testing"

func TestSeedCompare(t *testing.T) {
	for _, seed := range []uint64{5, 7, 9} {
		for _, scale := range []float64{0.01, 0.02} {
			p := DefaultParams(seed)
			p.Scale = scale
			g := Generate(p, EraOf(2004, 1))
			v4, _ := g.TotalPrefixes()
			origins := 0
			multi := 0
			maxp := 0
			for _, a := range g.OriginASes() {
				v4g := 0
				pc := 0
				for _, grp := range a.Groups {
					if !grp.V6 {
						v4g++
						pc += len(grp.Prefixes)
					}
				}
				if v4g > 0 {
					origins++
				}
				if v4g > 1 {
					multi++
				}
				if pc > maxp {
					maxp = pc
				}
			}
			t.Logf("seed=%d scale=%v: v4=%d origins=%d v4/AS=%.2f multiGroup=%d maxPrefixes=%d",
				seed, scale, v4, origins, float64(v4)/float64(origins), multi, maxp)
		}
	}
}
