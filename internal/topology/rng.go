package topology

import "math"

// Deterministic, label-addressed randomness. Every stochastic decision
// in the generator is a pure function of (seed, labels...), so an AS
// keeps its attributes as eras advance and regeneration is bit-stable.

// mix64 is the splitmix64 finalizer — a strong 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// h64 hashes a sequence of values into one 64-bit word.
func h64(vals ...uint64) uint64 {
	acc := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		acc = mix64(acc ^ v)
	}
	return acc
}

// unit returns a uniform float64 in [0,1) addressed by the labels.
func unit(vals ...uint64) float64 {
	return float64(h64(vals...)>>11) / float64(1<<53)
}

// pick returns a uniform integer in [0,n) addressed by the labels.
func pick(n int, vals ...uint64) int {
	if n <= 0 {
		return 0
	}
	return int(h64(vals...) % uint64(n))
}

// geometric samples a count >= 1 with continuation probability p: each
// extra unit occurs with probability p, capped at max.
func geometric(p float64, max int, vals ...uint64) int {
	n := 1
	for i := 0; n < max; i++ {
		if unit(append(vals, 0x6e0+uint64(i))...) >= p {
			break
		}
		n++
	}
	return n
}

// pareto samples a discrete heavy-tailed value in [1, max] with shape
// alpha (smaller alpha = heavier tail).
func pareto(alpha float64, max int, vals ...uint64) int {
	u := unit(vals...)
	if u < 1e-12 {
		u = 1e-12
	}
	n := int(math.Pow(1.0/u, 1.0/alpha))
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}
