package topology

// Params controls the generator. The zero value is not useful; start
// from DefaultParams.
//
// Counts are expressed at *paper scale* and multiplied by Scale, except
// per-AS quantities (prefixes per AS, atom sizes), which are absolute —
// scaling the number of ASes while keeping per-AS distributions intact
// preserves the shape of every per-AS and per-atom statistic.
type Params struct {
	Seed  uint64
	Scale float64 // fraction of paper scale (1.0 ≈ the real Internet)

	// Curves hold the era-interpolated knobs; DefaultParams fills them
	// with values calibrated against the paper's Tables 1, 2 and 4.
	Curves Curves
}

// Curve is a knob with values pinned at 2002, 2004 and 2024; values
// between are linearly interpolated, outside clamped.
type Curve struct {
	V2002, V2004, V2024 float64
}

// At evaluates the curve at an era.
func (c Curve) At(e Era) float64 {
	if e >= 0 {
		return c.V2004 + (c.V2024-c.V2004)*e.t()
	}
	// 2002Q1 = -8 … 2004Q1 = 0.
	f := (float64(e) + 8) / 8
	if f < 0 {
		f = 0
	}
	return c.V2002 + (c.V2004-c.V2002)*f
}

// Curves bundles every era-dependent generator knob.
type Curves struct {
	// OriginASes is the number of prefix-originating ASes (paper scale).
	OriginASes Curve
	// TransitASes is the size of the transit core (paper scale; scaled
	// by sqrt(Scale) so small worlds keep realistic path lengths).
	TransitASes Curve
	// ContentShare is the fraction of origin ASes that are content/cloud
	// networks (high peering degree).
	ContentShare Curve
	// MultihomedShare is the fraction of origin ASes with >1 provider.
	MultihomedShare Curve
	// PrefixGrowth scales each AS's lifetime-maximum prefix count to the
	// era's count (prefix fragmentation over time).
	PrefixGrowth Curve
	// SmallASShare is the probability an AS is in the 1–2 prefix class.
	SmallASShare Curve
	// PrefixTailAlpha is the Pareto shape of the large-AS prefix-count
	// tail (smaller = heavier).
	PrefixTailAlpha Curve
	// PrefixTailCap caps per-AS prefix counts (absolute).
	PrefixTailCap Curve
	// SplitProb is the per-extra-prefix probability of starting a new
	// policy group at the origin (origin policy granularity).
	SplitProb Curve
	// SameAnnounceShare is the probability that a new group reuses the
	// previous group's announce set (so it can only split via transit
	// policy or prepending — the distance-3 mechanism).
	SameAnnounceShare Curve
	// PrependGroupProb is the probability that a group that reuses an
	// announce set differs only in origin prepending (distance-1 splits
	// attributed to prepending).
	PrependGroupProb Curve
	// TransitSelectivity is the per-(unit,neighbor) probability that a
	// transit does not export (selective export).
	TransitSelectivity Curve
	// TransitPrependRate is the per-(unit,neighbor) probability that a
	// transit prepends itself on export.
	TransitPrependRate Curve
	// PeeringDensity is the probability of a peering link between two
	// transit ASes (Internet flattening).
	PeeringDensity Curve
	// OrgChainProb is the probability an origin AS heads a sibling-AS
	// chain (DoD-style organizations).
	OrgChainProb Curve
	// MOASShare is the fraction of prefixes also originated by a second
	// AS (kept under the paper's observed 5%).
	MOASShare Curve
	// V6Share is the fraction of origin ASes participating in IPv6
	// (zero before 2008).
	V6Share Curve
	// V6PrefixGrowth scales v6 per-AS prefix counts.
	V6PrefixGrowth Curve
	// V6SplitProb is the v6 analogue of SplitProb (coarser TE).
	V6SplitProb Curve
	// FITIASes is the number of FITI-style single-/32 ASes injected from
	// 2021 on (paper scale).
	FITIASes Curve
}

// DefaultParams returns the calibrated defaults.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:  seed,
		Scale: 0.02,
		Curves: Curves{
			OriginASes:         Curve{12500, 16490, 76672},
			TransitASes:        Curve{110, 140, 420},
			ContentShare:       Curve{0.02, 0.03, 0.15},
			MultihomedShare:    Curve{0.42, 0.46, 0.70},
			PrefixGrowth:       Curve{0.72, 0.65, 1.00},
			SmallASShare:       Curve{0.40, 0.40, 0.40},
			PrefixTailAlpha:    Curve{0.88, 0.88, 0.88},
			PrefixTailCap:      Curve{1200, 1200, 3600},
			SplitProb:          Curve{0.36, 0.42, 0.30},
			SameAnnounceShare:  Curve{0.25, 0.25, 0.55},
			PrependGroupProb:   Curve{0.04, 0.04, 0.06},
			TransitSelectivity: Curve{0.085, 0.10, 0.18},
			TransitPrependRate: Curve{0.010, 0.010, 0.030},
			PeeringDensity:     Curve{0.08, 0.10, 0.30},
			OrgChainProb:       Curve{0.010, 0.010, 0.020},
			MOASShare:          Curve{0.020, 0.020, 0.025},
			V6Share:            Curve{0, 0, 0.445},
			V6PrefixGrowth:     Curve{0, 0.10, 1.00},
			V6SplitProb:        Curve{0.45, 0.45, 0.31},
			FITIASes:           Curve{0, 0, 4096},
		},
	}
}

// v6ShareAt evaluates V6Share with the pre-2008 zero floor.
func (p *Params) v6ShareAt(e Era) float64 {
	if e < EraOf(2008, 1) {
		return 0
	}
	// Ramp from ~1% at 2008 to the 2024 value.
	t := float64(e-EraOf(2008, 1)) / float64(EraOf(2024, 4)-EraOf(2008, 1))
	if t > 1 {
		t = 1
	}
	start := 0.01
	return start + (p.Curves.V6Share.V2024-start)*t
}

// fitiAt evaluates FITIASes with the 2021 step.
func (p *Params) fitiAt(e Era) float64 {
	if e < EraOf(2021, 1) {
		return 0
	}
	return p.Curves.FITIASes.V2024
}

// scaled applies Scale with a floor.
func scaled(v, scale float64, floor int) int {
	n := int(v*scale + 0.5)
	if n < floor {
		n = floor
	}
	return n
}
