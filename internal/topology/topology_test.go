package topology

import (
	"net/netip"
	"testing"

	"repro/internal/prefixset"
)

func TestEraMath(t *testing.T) {
	cases := []struct {
		era     Era
		year, q int
		str     string
	}{
		{EraOf(2004, 1), 2004, 1, "2004Q1"},
		{EraOf(2004, 4), 2004, 4, "2004Q4"},
		{EraOf(2024, 4), 2024, 4, "2024Q4"},
		{EraOf(2002, 1), 2002, 1, "2002Q1"},
		{EraOf(2002, 3), 2002, 3, "2002Q3"},
		{EraOf(2011, 2), 2011, 2, "2011Q2"},
	}
	for _, tc := range cases {
		if tc.era.Year() != tc.year || tc.era.Quarter() != tc.q || tc.era.String() != tc.str {
			t.Errorf("era %d: got %d Q%d %q, want %d Q%d %q",
				tc.era, tc.era.Year(), tc.era.Quarter(), tc.era.String(), tc.year, tc.q, tc.str)
		}
	}
	if EraOf(2002, 1) != -8 {
		t.Errorf("2002Q1 = %d", EraOf(2002, 1))
	}
	if EraOf(2024, 4) != 83 {
		t.Errorf("2024Q4 = %d", EraOf(2024, 4))
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := Curve{V2002: 10, V2004: 20, V2024: 120}
	if got := c.At(EraOf(2004, 1)); got != 20 {
		t.Errorf("2004 = %v", got)
	}
	if got := c.At(EraOf(2024, 4)); got != 120 {
		t.Errorf("2024 = %v", got)
	}
	if got := c.At(EraOf(2002, 1)); got != 10 {
		t.Errorf("2002 = %v", got)
	}
	mid := c.At(EraOf(2014, 2))
	if mid <= 20 || mid >= 120 {
		t.Errorf("mid = %v", mid)
	}
	if got := c.At(EraOf(2003, 1)); got <= 10 || got >= 20 {
		t.Errorf("2003 = %v", got)
	}
	// Clamped past the ends.
	if got := c.At(EraOf(2030, 1)); got != 120 {
		t.Errorf("2030 = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	if h64(1, 2, 3) != h64(1, 2, 3) {
		t.Error("h64 not deterministic")
	}
	if h64(1, 2, 3) == h64(1, 2, 4) || h64(1, 2) == h64(2, 1) {
		t.Error("h64 collisions on trivial inputs")
	}
	u := unit(42, 7)
	if u < 0 || u >= 1 {
		t.Errorf("unit = %v", u)
	}
	// pick bounds.
	for i := 0; i < 100; i++ {
		if v := pick(7, uint64(i)); v < 0 || v >= 7 {
			t.Fatalf("pick out of range: %d", v)
		}
	}
	if pick(0, 1) != 0 {
		t.Error("pick(0) should be 0")
	}
	// geometric bounds and mean sanity.
	sum := 0
	for i := 0; i < 2000; i++ {
		g := geometric(0.5, 10, uint64(i))
		if g < 1 || g > 10 {
			t.Fatalf("geometric out of range: %d", g)
		}
		sum += g
	}
	mean := float64(sum) / 2000
	if mean < 1.7 || mean > 2.3 {
		t.Errorf("geometric(0.5) mean = %v, want ≈2", mean)
	}
	// pareto bounds.
	for i := 0; i < 2000; i++ {
		v := pareto(1.2, 100, uint64(i), 99)
		if v < 1 || v > 100 {
			t.Fatalf("pareto out of range: %d", v)
		}
	}
}

func genTest(t *testing.T, era Era) *Graph {
	t.Helper()
	p := DefaultParams(7)
	p.Scale = 0.01
	return Generate(p, era)
}

func TestGenerateBasicInvariants(t *testing.T) {
	for _, era := range []Era{EraOf(2002, 1), EraOf(2004, 1), EraOf(2014, 1), EraOf(2024, 4)} {
		g := genTest(t, era)
		if g.NumASes() == 0 {
			t.Fatalf("%v: empty graph", era)
		}
		seenASN := map[uint32]bool{}
		for _, a := range g.ASes {
			if seenASN[a.ASN] {
				t.Fatalf("%v: duplicate ASN %d", era, a.ASN)
			}
			seenASN[a.ASN] = true
			if g.AS(a.ASN) != a {
				t.Fatalf("%v: index broken for %d", era, a.ASN)
			}
			// Relationship symmetry.
			for _, p := range a.Providers {
				if !contains(g.AS(p).Customers, a.ASN) {
					t.Fatalf("%v: provider %d missing customer %d", era, p, a.ASN)
				}
			}
			for _, p := range a.Peers {
				if !contains(g.AS(p).Peers, a.ASN) {
					t.Fatalf("%v: peer asymmetry %d-%d", era, p, a.ASN)
				}
			}
			// Non-clique ASes must have a provider (reachability).
			if a.Tier != TierClique && len(a.Providers) == 0 {
				t.Fatalf("%v: AS %d (%v) has no provider", era, a.ASN, a.Tier)
			}
			// No self-links.
			if contains(a.Providers, a.ASN) || contains(a.Peers, a.ASN) || contains(a.Customers, a.ASN) {
				t.Fatalf("%v: self link at %d", era, a.ASN)
			}
		}
		// Groups indexed densely, origins consistent, announce non-empty.
		for id, grp := range g.Groups {
			if grp == nil {
				t.Fatalf("%v: nil group %d", era, id)
			}
			if grp.ID != id {
				t.Fatalf("%v: group id mismatch %d != %d", era, grp.ID, id)
			}
			if len(grp.Prefixes) == 0 {
				t.Fatalf("%v: empty group %d", era, id)
			}
			if len(grp.Announce) == 0 {
				t.Fatalf("%v: group %d announces nowhere", era, id)
			}
			origin := g.AS(grp.Origin)
			if origin == nil {
				t.Fatalf("%v: group %d origin %d missing", era, grp.ID, grp.Origin)
			}
			for n := range grp.Announce {
				if !contains(origin.Providers, n) && !contains(origin.Peers, n) {
					t.Fatalf("%v: group %d announces to non-neighbor %d", era, grp.ID, n)
				}
			}
			// Family consistency.
			for _, pfx := range grp.Prefixes {
				v6 := pfx.Addr().Is6()
				if v6 != grp.V6 {
					t.Fatalf("%v: group %d family mix", era, grp.ID)
				}
			}
		}
	}
}

func contains(s []uint32, v uint32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, EraOf(2015, 3))
	b := genTest(t, EraOf(2015, 3))
	if a.NumASes() != b.NumASes() || len(a.Groups) != len(b.Groups) {
		t.Fatal("non-deterministic sizes")
	}
	av4, av6 := a.TotalPrefixes()
	bv4, bv6 := b.TotalPrefixes()
	if av4 != bv4 || av6 != bv6 {
		t.Fatal("non-deterministic prefixes")
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Origin != gb.Origin || len(ga.Prefixes) != len(gb.Prefixes) {
			t.Fatalf("group %d differs", i)
		}
		for j := range ga.Prefixes {
			if ga.Prefixes[j] != gb.Prefixes[j] {
				t.Fatalf("group %d prefix %d differs", i, j)
			}
		}
	}
}

// TestGenerateMonotoneGrowth checks identity stability: prefixes present
// in an early era still exist (same prefix values) in a later era.
func TestGenerateMonotoneGrowth(t *testing.T) {
	early := genTest(t, EraOf(2006, 1))
	late := genTest(t, EraOf(2020, 1))
	lateSet := prefixset.NewSet()
	for _, grp := range late.Groups {
		for _, p := range grp.Prefixes {
			lateSet.Add(p)
		}
	}
	missing := 0
	total := 0
	for _, grp := range early.Groups {
		for _, p := range grp.Prefixes {
			total++
			if !lateSet.Contains(p) {
				missing++
			}
		}
	}
	if total == 0 {
		t.Fatal("no early prefixes")
	}
	// A tiny number may vanish via rounding of per-AS counts; the bulk
	// must persist.
	if float64(missing)/float64(total) > 0.02 {
		t.Errorf("%d/%d early prefixes missing in later era", missing, total)
	}
	if lateASes, earlyASes := late.NumASes(), early.NumASes(); lateASes <= earlyASes {
		t.Errorf("no AS growth: %d -> %d", earlyASes, lateASes)
	}
	v4e, _ := early.TotalPrefixes()
	v4l, _ := late.TotalPrefixes()
	if v4l <= v4e {
		t.Errorf("no prefix growth: %d -> %d", v4e, v4l)
	}
}

func TestGenerateV6Adoption(t *testing.T) {
	none := genTest(t, EraOf(2006, 1))
	_, v6none := none.TotalPrefixes()
	// Pre-2008: only core v6 blocks (clique/transits), no origin v6.
	for _, a := range none.ASes {
		if a.Tier == TierStub && a.HasV6 {
			t.Errorf("stub %d has v6 in 2006", a.ASN)
		}
	}
	mid := genTest(t, EraOf(2014, 1))
	_, v6mid := mid.TotalPrefixes()
	late := genTest(t, EraOf(2024, 4))
	_, v6late := late.TotalPrefixes()
	if !(v6none < v6mid && v6mid < v6late) {
		t.Errorf("v6 adoption not growing: %d, %d, %d", v6none, v6mid, v6late)
	}
}

func TestGenerateFITI(t *testing.T) {
	pre := genTest(t, EraOf(2020, 4))
	post := genTest(t, EraOf(2022, 1))
	countFiti := func(g *Graph) int {
		n := 0
		for _, a := range g.ASes {
			if a.ASN >= fitiBaseASN && a.ASN < fitiBaseASN+100000 {
				n++
			}
		}
		return n
	}
	if countFiti(pre) != 0 {
		t.Error("FITI ASes before 2021")
	}
	nf := countFiti(post)
	if nf == 0 {
		t.Fatal("no FITI ASes after 2021")
	}
	// All FITI prefixes are /32s inside 240a:a000::/20, one per AS,
	// single-homed behind one org.
	covering := netip.MustParsePrefix("240a:a000::/20")
	var orgs = map[uint32]bool{}
	for _, a := range post.ASes {
		if a.ASN < fitiBaseASN || a.ASN >= fitiBaseASN+100000 {
			continue
		}
		if len(a.Groups) != 1 || len(a.Groups[0].Prefixes) != 1 {
			t.Fatalf("FITI AS %d has %d groups", a.ASN, len(a.Groups))
		}
		p := a.Groups[0].Prefixes[0]
		if p.Bits() != 32 || !covering.Contains(p.Addr()) {
			t.Fatalf("FITI prefix %v outside /20", p)
		}
		if len(a.Providers) != 1 {
			t.Fatalf("FITI AS %d has %d providers", a.ASN, len(a.Providers))
		}
		orgs[a.Org] = true
	}
	if len(orgs) != 1 {
		t.Errorf("FITI orgs = %d, want 1", len(orgs))
	}
}

func TestGenerateMOASUnderCap(t *testing.T) {
	g := genTest(t, EraOf(2024, 4))
	originsOf := map[netip.Prefix]map[uint32]bool{}
	for _, grp := range g.Groups {
		if grp.V6 {
			continue
		}
		for _, p := range grp.Prefixes {
			if originsOf[p] == nil {
				originsOf[p] = map[uint32]bool{}
			}
			originsOf[p][grp.Origin] = true
		}
	}
	moas, total := 0, 0
	for _, os := range originsOf {
		total++
		if len(os) > 1 {
			moas++
		}
	}
	share := float64(moas) / float64(total)
	if share == 0 {
		t.Error("no MOAS prefixes generated")
	}
	if share > 0.05 {
		t.Errorf("MOAS share %.3f above the paper's 5%% bound", share)
	}
}

func TestGenerateUniquePrefixesPerGroupSpace(t *testing.T) {
	g := genTest(t, EraOf(2024, 4))
	// Aside from deliberate MOAS duplicates, allocation must not collide:
	// a prefix may appear in at most 3 groups (MOAS chains), never more.
	count := map[netip.Prefix]int{}
	for _, grp := range g.Groups {
		for _, p := range grp.Prefixes {
			count[p]++
			if count[p] > 3 {
				t.Fatalf("prefix %v in >3 groups", p)
			}
		}
	}
}

func TestSiblingChains(t *testing.T) {
	p := DefaultParams(7)
	p.Scale = 0.05 // enough origins for chains to appear
	g := Generate(p, EraOf(2024, 4))
	chains := 0
	for _, a := range g.ASes {
		if a.Org != 0 && a.Org != a.ASN && a.Tier == TierStub {
			// A chain member: its provider must share the org or be the head.
			if len(a.Providers) != 1 {
				t.Errorf("chain member %d has %d providers", a.ASN, len(a.Providers))
			}
			chains++
		}
	}
	if chains == 0 {
		t.Error("no sibling chains generated at 0.05 scale")
	}
}

// TestCalibrationSnapshot logs the headline statistics the experiments
// depend on — run with -v to inspect while tuning curves.
func TestCalibrationSnapshot(t *testing.T) {
	for _, era := range []Era{EraOf(2004, 1), EraOf(2024, 4)} {
		p := DefaultParams(7)
		p.Scale = 0.02
		g := Generate(p, era)
		v4, v6 := g.TotalPrefixes()
		origins := g.OriginASes()
		groups := 0
		v4groups := 0
		for _, grp := range g.Groups {
			groups++
			if !grp.V6 {
				v4groups++
			}
		}
		var v4origins int
		for _, a := range origins {
			for _, grp := range a.Groups {
				if !grp.V6 {
					v4origins++
					break
				}
			}
		}
		t.Logf("%v: ASes=%d origins=%d v4origins=%d v4=%d v6=%d groups=%d v4groups=%d v4/AS=%.2f grp/AS=%.2f",
			era, g.NumASes(), len(origins), v4origins, v4, v6, groups, v4groups,
			float64(v4)/float64(v4origins), float64(v4groups)/float64(v4origins))
	}
}

func TestLogUniform(t *testing.T) {
	if got := logUniform(0, 3, 26); got != 3 {
		t.Errorf("logUniform(0) = %d", got)
	}
	if got := logUniform(0.9999, 3, 26); got != 26 {
		t.Errorf("logUniform(1-) = %d", got)
	}
	prev := 0
	for v := 0.0; v < 1.0; v += 0.05 {
		got := logUniform(v, 3, 26)
		if got < prev {
			t.Fatalf("logUniform not monotone at %v: %d < %d", v, got, prev)
		}
		prev = got
	}
}

func TestEffectiveCap(t *testing.T) {
	b := &builder{p: &Params{Scale: 1.0}}
	if got := b.effectiveCap(3600); got != 3600 {
		t.Errorf("full scale cap = %v", got)
	}
	b.p.Scale = 0.01
	if got := b.effectiveCap(3600); got != 900 {
		t.Errorf("0.01 scale cap = %v", got)
	}
	b.p.Scale = 0.0001
	if got := b.effectiveCap(3600); got != 60 {
		t.Errorf("tiny scale floor = %v", got)
	}
}

func TestStratifiedCoverage(t *testing.T) {
	// Any window of consecutive indices covers [0,1) nearly uniformly.
	const n = 500
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		u := stratified(7, 0x5a11, i)
		if u < 0 || u >= 1 {
			t.Fatalf("stratified out of range: %v", u)
		}
		buckets[int(u*10)]++
	}
	for b, c := range buckets {
		if c < n/10-10 || c > n/10+10 {
			t.Errorf("bucket %d count %d far from %d", b, c, n/10)
		}
	}
}

func TestAnnounceSignature(t *testing.T) {
	a := &PolicyGroup{Origin: 10, Announce: map[uint32]AnnouncePolicy{1: {}, 2: {Prepend: 1}}}
	b := &PolicyGroup{Origin: 10, Announce: map[uint32]AnnouncePolicy{2: {Prepend: 1}, 1: {}}}
	if announceSignature(a) != announceSignature(b) {
		t.Error("map order changed the signature")
	}
	c := &PolicyGroup{Origin: 10, Announce: map[uint32]AnnouncePolicy{1: {}, 2: {Prepend: 2}}}
	if announceSignature(a) == announceSignature(c) {
		t.Error("prepend difference not in the signature")
	}
	d := &PolicyGroup{Origin: 11, Announce: map[uint32]AnnouncePolicy{1: {}, 2: {Prepend: 1}}}
	if announceSignature(a) == announceSignature(d) {
		t.Error("origin not in the signature")
	}
	v6 := &PolicyGroup{Origin: 10, V6: true, Announce: map[uint32]AnnouncePolicy{1: {}, 2: {Prepend: 1}}}
	if announceSignature(a) == announceSignature(v6) {
		t.Error("family not in the signature")
	}
}

func TestSigIDsAssigned(t *testing.T) {
	g := genTest(t, EraOf(2020, 1))
	bySig := map[int][]*PolicyGroup{}
	for _, grp := range g.Groups {
		bySig[grp.SigID] = append(bySig[grp.SigID], grp)
	}
	if len(bySig) == 0 || len(bySig) > len(g.Groups) {
		t.Fatalf("sig count = %d of %d groups", len(bySig), len(g.Groups))
	}
	shared := 0
	for _, members := range bySig {
		for i := 1; i < len(members); i++ {
			if members[i].Origin != members[0].Origin || members[i].V6 != members[0].V6 {
				t.Fatalf("signature %d mixes origins/families", members[0].SigID)
			}
			if announceSignature(members[i]) != announceSignature(members[0]) {
				t.Fatalf("signature %d mixes announce policies", members[0].SigID)
			}
		}
		if len(members) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared signatures — the same-announce mechanism is dead")
	}
}

// TestPrefixAllocationNonOverlap verifies that distinct origin blocks
// never overlap (beyond deliberate MOAS duplicates, which are exact
// duplicates, not overlaps).
func TestPrefixAllocationNonOverlap(t *testing.T) {
	p := DefaultParams(7)
	p.Scale = 0.01
	p.Curves.MOASShare = Curve{0, 0, 0}
	g := Generate(p, EraOf(2024, 4))
	var tr prefixset.Trie
	for _, grp := range g.Groups {
		if grp.V6 {
			continue
		}
		for _, pfx := range grp.Prefixes {
			if cover, ok := tr.LongestMatch(pfx); ok && cover != pfx {
				t.Fatalf("prefix %v overlaps previously allocated %v", pfx, cover)
			}
			if !tr.Insert(pfx) {
				t.Fatalf("duplicate allocation %v", pfx)
			}
		}
	}
}
