package topology

import "testing"

func TestGroupDist(t *testing.T) {
	p := DefaultParams(5)
	p.Scale = 0.02
	g := Generate(p, EraOf(2004, 1))
	countHist := map[int]int{}
	multiByCount := map[int][2]int{} // count class → [total, multi]
	for _, a := range g.OriginASes() {
		if a.ASN < originBase {
			continue
		}
		c, grps := 0, 0
		for _, grp := range a.Groups {
			if !grp.V6 {
				grps++
				c += len(grp.Prefixes)
			}
		}
		if c == 0 {
			continue
		}
		bucket := c
		if bucket > 10 {
			bucket = 11
		}
		countHist[bucket]++
		e := multiByCount[bucket]
		e[0]++
		if grps > 1 {
			e[1]++
		}
		multiByCount[bucket] = e
	}
	for c := 1; c <= 11; c++ {
		e := multiByCount[c]
		t.Logf("prefixes=%d: ASes=%d multiGroup=%d", c, e[0], e[1])
	}
}
