package metrics

import (
	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/obs"
)

// FormationMethod selects the prepending-handling strategy (§3.4.2).
type FormationMethod int

// The three methods the paper weighs.
const (
	// MethodStripBeforeGrouping (i): remove prepending before grouping
	// prefixes into atoms — discards policy information.
	MethodStripBeforeGrouping FormationMethod = 1
	// MethodStripBeforeDistance (ii): atoms from raw paths, prepending
	// stripped before computing distance — can make sibling atoms
	// indistinguishable.
	MethodStripBeforeDistance FormationMethod = 2
	// MethodUniqueCount (iii, adopted): atoms from raw paths; the split
	// is located on raw paths but the distance counts unique ASes.
	MethodUniqueCount FormationMethod = 3
)

// FormationOptions tunes the analysis.
type FormationOptions struct {
	Method FormationMethod
	// MaxAtomsPerOrigin caps the pairwise comparison for mega-origins;
	// a deterministic sample of this size stands in for the full set
	// (0 = unlimited).
	MaxAtomsPerOrigin int
	// MaxDistance caps the reported distance axis (the paper plots 1–5;
	// larger distances are clamped into the last bucket).
	MaxDistance int
}

// DefaultFormationOptions returns the paper's configuration.
func DefaultFormationOptions() FormationOptions {
	return FormationOptions{Method: MethodUniqueCount, MaxAtomsPerOrigin: 800, MaxDistance: 8}
}

// D1Cause classifies why an atom formed at distance 1 (§3.4.3).
type D1Cause int

// Distance-1 causes.
const (
	D1SingleAtom  D1Cause = iota + 1 // only atom of its origin
	D1UniquePeers                    // unique visibility set
	D1Prepend                        // prepending-count difference
)

// FormationResult aggregates formation distances for one snapshot.
type FormationResult struct {
	Method FormationMethod
	// AtomsAtDistance[d] counts atoms with formation distance d
	// (index 0 unused; last bucket absorbs larger distances).
	AtomsAtDistance []int
	// FirstSplitAtDistance[d] counts origins with d_min = d; the
	// "first atoms split" curve.
	FirstSplitAtDistance []int
	// AllSplitAtDistance[d] counts origins with d_max = d; the
	// "all atoms split" curve.
	AllSplitAtDistance []int
	// AtomsAtDistanceMultiAtom counts only atoms whose origin has >1
	// atom (Fig 4's dashed "exclude single atom AS" series).
	AtomsAtDistanceMultiAtom []int
	// Distance-1 breakdown.
	D1SingleAtom, D1UniquePeers, D1Prepend int

	TotalAtoms   int
	TotalOrigins int
	SkippedMOAS  int
}

// FormationDistances runs the analysis over an atom set.
func FormationDistances(as *core.AtomSet, opts FormationOptions) *FormationResult {
	return FormationDistancesSpan(as, opts, nil)
}

// FormationDistancesSpan is FormationDistances with stage tracing: a
// non-nil parent receives a child span carrying input/output
// cardinalities (atoms in, origins and distance-tagged atoms out).
func FormationDistancesSpan(as *core.AtomSet, opts FormationOptions, parent *obs.Span) *FormationResult {
	sp := parent.Child("metrics.formation_distances")
	res := formationDistances(as, opts)
	sp.SetAttr("atoms", len(as.Atoms))
	sp.SetAttr("origins", res.TotalOrigins)
	sp.SetAttr("tagged_atoms", res.TotalAtoms)
	sp.End()
	return res
}

func formationDistances(as *core.AtomSet, opts FormationOptions) *FormationResult {
	if opts.MaxDistance <= 0 {
		opts.MaxDistance = 8
	}
	if opts.Method == 0 {
		opts.Method = MethodUniqueCount
	}
	res := &FormationResult{
		Method:                   opts.Method,
		AtomsAtDistance:          make([]int, opts.MaxDistance+1),
		FirstSplitAtDistance:     make([]int, opts.MaxDistance+1),
		AllSplitAtDistance:       make([]int, opts.MaxDistance+1),
		AtomsAtDistanceMultiAtom: make([]int, opts.MaxDistance+1),
	}

	snap := as.Snap
	set := as
	if opts.Method == MethodStripBeforeGrouping {
		// Method (i): recompute atoms over prepending-stripped paths.
		stripped := StripPrependingSnapshot(snap)
		set = core.ComputeAtoms(stripped)
		snap = stripped
	}

	analysis := &formationState{
		set:   set,
		snap:  snap,
		opts:  opts,
		cache: make(map[pairKey]int),
	}

	for origin, atomIDs := range set.ByOrigin() {
		_ = origin
		// Exclude MOAS-conflicted atoms, following Afek et al.
		ids := atomIDs[:0:0]
		for _, id := range atomIDs {
			if set.Atoms[id].MOASConflict {
				res.SkippedMOAS++
				continue
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			continue
		}
		res.TotalOrigins++
		analysis.originDistances(res, ids)
	}
	return res
}

type pairKey struct{ a, b aspath.ID }

type formationState struct {
	set   *core.AtomSet
	snap  *core.Snapshot
	opts  FormationOptions
	cache map[pairKey]int
}

// originDistances computes d(a) for every atom of one origin.
func (st *formationState) originDistances(res *FormationResult, ids []int) {
	clampD := func(d int) int {
		if d > st.opts.MaxDistance {
			return st.opts.MaxDistance
		}
		if d < 1 {
			return 1
		}
		return d
	}
	record := func(id, d int, cause D1Cause, multi bool) {
		d = clampD(d)
		res.AtomsAtDistance[d]++
		res.TotalAtoms++
		if multi {
			res.AtomsAtDistanceMultiAtom[d]++
		}
		if d == 1 {
			switch cause {
			case D1SingleAtom:
				res.D1SingleAtom++
			case D1UniquePeers:
				res.D1UniquePeers++
			case D1Prepend:
				res.D1Prepend++
			}
		}
	}

	if len(ids) == 1 {
		record(ids[0], 1, D1SingleAtom, false)
		res.FirstSplitAtDistance[1]++
		res.AllSplitAtDistance[1]++
		return
	}

	sample := ids
	if st.opts.MaxAtomsPerOrigin > 0 && len(ids) > st.opts.MaxAtomsPerOrigin {
		// Deterministic stride sample.
		stride := len(ids) / st.opts.MaxAtomsPerOrigin
		sample = make([]int, 0, st.opts.MaxAtomsPerOrigin)
		for i := 0; i < len(ids) && len(sample) < st.opts.MaxAtomsPerOrigin; i += stride {
			sample = append(sample, ids[i])
		}
	}

	// Visibility masks: a VP where exactly one of two atoms is missing
	// forces split 1.
	masks := make(map[int][]uint64, len(sample))
	for _, id := range sample {
		masks[id] = visMask(st.set.Atoms[id].Vector)
	}

	dMin, dMax := 0, 0
	for i, idA := range sample {
		best := 0 // max over siblings
		cause := D1Prepend
		for j, idB := range sample {
			if i == j {
				continue
			}
			split, visSplit := st.pairSplit(idA, idB, masks[idA], masks[idB])
			if split == aspath.NoSplit {
				// Indistinguishable under method (ii); skip the pair.
				continue
			}
			if split > best {
				best = split
				if split == 1 {
					if visSplit {
						cause = D1UniquePeers
					} else {
						cause = D1Prepend
					}
				}
			}
		}
		if best == 0 {
			// No distinguishable sibling (method (ii) degeneracy).
			best = 1
			cause = D1Prepend
		}
		record(idA, best, cause, true)
		d := clampD(best)
		if dMin == 0 || d < dMin {
			dMin = d
		}
		if d > dMax {
			dMax = d
		}
	}
	res.FirstSplitAtDistance[dMin]++
	res.AllSplitAtDistance[dMax]++
}

// pairSplit returns the overall split point between two atoms: the min
// over VPs, with visSplit reporting whether a visibility difference (an
// empty-vs-present path) produced the 1.
func (st *formationState) pairSplit(a, b int, maskA, maskB []uint64) (split int, visSplit bool) {
	for w := range maskA {
		if maskA[w] != maskB[w] {
			return 1, true
		}
	}
	vecA, vecB := st.set.Atoms[a].Vector, st.set.Atoms[b].Vector
	min := aspath.NoSplit
	for v := range vecA {
		ia, ib := vecA[v], vecB[v]
		if ia == ib {
			continue // identical paths at this VP (both possibly empty)
		}
		s := st.pathSplit(ia, ib)
		if s < min {
			min = s
			if min <= 1 {
				return min, false
			}
		}
	}
	return min, false
}

// pathSplit computes the split point between two interned paths under
// the configured method, memoized per unordered pair.
func (st *formationState) pathSplit(a, b aspath.ID) int {
	if a > b {
		a, b = b, a
	}
	k := pairKey{a, b}
	if s, ok := st.cache[k]; ok {
		return s
	}
	sa, sb := st.snap.Paths.Seq(a), st.snap.Paths.Seq(b)
	var s int
	switch {
	case len(sa) == 0 || len(sb) == 0:
		s = 1 // missing path at this peer forces split 1 (§3.4.1)
	default:
		switch st.opts.Method {
		case MethodStripBeforeDistance:
			s = aspath.SplitRaw(sa.StripPrepending(), sb.StripPrepending())
		case MethodStripBeforeGrouping:
			s = aspath.SplitRaw(sa, sb) // paths already stripped
		default:
			s = aspath.SplitUnique(sa, sb)
		}
	}
	st.cache[k] = s
	return s
}

// visMask packs the vector's non-empty positions into a bitmask.
func visMask(vec []aspath.ID) []uint64 {
	m := make([]uint64, (len(vec)+63)/64)
	for i, id := range vec {
		if id != aspath.Empty {
			m[i/64] |= 1 << (i % 64)
		}
	}
	return m
}

// StripPrependingSnapshot returns a copy of the snapshot with all paths
// prepending-stripped (method (i)'s input).
func StripPrependingSnapshot(s *core.Snapshot) *core.Snapshot {
	out := core.NewSnapshot(s.Time, s.VPs, s.Prefixes)
	for p := range s.Prefixes {
		for v, id := range s.Row(p) {
			if id != aspath.Empty {
				out.SetRoute(p, v, s.Paths.Seq(id).StripPrepending())
			}
		}
	}
	return out
}
