package metrics

import (
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/obs"
)

// SplitEvent is one atom split detected across three consecutive daily
// snapshots (§4.4.1): an atom present (by prefix composition) at t and
// t+1 whose prefixes are spread over several atoms at t+2.
type SplitEvent struct {
	// Prefixes is the split atom's composition (from t+1).
	Prefixes []netip.Prefix
	// Observers lists the VPs that report the post-split grouping: VPs
	// observing the atom's prefixes with ≥2 distinct paths at t+2.
	Observers []core.VP
}

// DetectSplits finds split events across snapshots t0, t1, t2.
func DetectSplits(s0, s1, s2 *core.AtomSet) []SplitEvent {
	return DetectSplitsSpan(s0, s1, s2, nil)
}

// DetectSplitsSpan is DetectSplits with stage tracing: a non-nil
// parent receives a child span with atom counts in and events out.
func DetectSplitsSpan(s0, s1, s2 *core.AtomSet, parent *obs.Span) []SplitEvent {
	sp := parent.Child("metrics.detect_splits")
	events := detectSplits(s0, s1, s2)
	sp.SetAttr("atoms_t1", len(s1.Atoms))
	sp.SetAttr("events", len(events))
	sp.End()
	return events
}

func detectSplits(s0, s1, s2 *core.AtomSet) []SplitEvent {
	// Atom identity is prefix composition: present at t0 AND t1.
	sigs0 := make(map[string]struct{}, len(s0.Atoms))
	for i := range s0.Atoms {
		sigs0[atomSig(s0, i)] = struct{}{}
	}

	// t2 lookup: prefix value → atom, and VP identity → column.
	atomOf2 := make(map[netip.Prefix]int, len(s2.Snap.Prefixes))
	idxOf2 := make(map[netip.Prefix]int, len(s2.Snap.Prefixes))
	for p, pfx := range s2.Snap.Prefixes {
		atomOf2[pfx] = s2.ByPrefix[p]
		idxOf2[pfx] = p
	}

	var events []SplitEvent
	for i := range s1.Atoms {
		a := &s1.Atoms[i]
		if a.Size() < 2 {
			continue // a single prefix cannot split
		}
		sig := atomSig(s1, i)
		if _, ok := sigs0[sig]; !ok {
			continue // not stable before: no established atom to split
		}
		prefixes := s1.PrefixSet(i)
		// Split if the prefixes span ≥2 atoms at t2 (prefixes missing
		// from t2 are treated as separated).
		first, split := -2, false
		for _, pfx := range prefixes {
			at, ok := atomOf2[pfx]
			if !ok {
				at = -1
			}
			if first == -2 {
				first = at
			} else if at != first {
				split = true
				break
			}
		}
		if !split {
			continue
		}
		events = append(events, SplitEvent{
			Prefixes:  prefixes,
			Observers: splitObservers(s2, prefixes, idxOf2),
		})
	}
	return events
}

// splitObservers finds the VPs at t2 that see the prefixes with more
// than one distinct path (including missing-vs-present differences).
func splitObservers(s2 *core.AtomSet, prefixes []netip.Prefix, idxOf2 map[netip.Prefix]int) []core.VP {
	snap := s2.Snap
	var observers []core.VP
	for v := range snap.VPs {
		var firstID aspath.ID
		firstSet := false
		distinct := false
		for _, pfx := range prefixes {
			var id aspath.ID // Empty for prefixes missing from t2
			if p, ok := idxOf2[pfx]; ok {
				id = snap.RouteID(p, v)
			}
			if !firstSet {
				firstID, firstSet = id, true
			} else if id != firstID {
				distinct = true
				break
			}
		}
		if distinct {
			observers = append(observers, snap.VPs[v])
		}
	}
	return observers
}

// ObserverCDF summarizes Fig 6: for each observer count, the number of
// events with at most that many observers.
type ObserverCDF struct {
	// Counts[i] = number of events with exactly i observers (index 0
	// holds events visible to no VP — possible when the split is only a
	// disappearance).
	Counts []int
	Total  int
}

// BuildObserverCDF aggregates events.
func BuildObserverCDF(events []SplitEvent) ObserverCDF {
	max := 0
	for _, e := range events {
		if len(e.Observers) > max {
			max = len(e.Observers)
		}
	}
	cdf := ObserverCDF{Counts: make([]int, max+1), Total: len(events)}
	for _, e := range events {
		cdf.Counts[len(e.Observers)]++
	}
	return cdf
}

// FractionAtMost returns the share of events with ≤ n observers.
func (c ObserverCDF) FractionAtMost(n int) float64 {
	if c.Total == 0 {
		return 0
	}
	sum := 0
	for i := 0; i <= n && i < len(c.Counts); i++ {
		sum += c.Counts[i]
	}
	return float64(sum) / float64(c.Total)
}

// DayBreakdown is one day's Fig 7 bar: how many split events were seen
// by a single VP (and which VPs dominate) versus several VPs.
type DayBreakdown struct {
	Day                 int
	Events              int
	MultiObserver       int
	SingleObserver      int
	TopVP               core.VP
	TopVPEvents         int
	SecondVP            core.VP
	SecondVPEvents      int
	OtherSingleVPEvents int
}

// BreakdownDay classifies one day's events.
func BreakdownDay(day int, events []SplitEvent) DayBreakdown {
	b := DayBreakdown{Day: day, Events: len(events)}
	perVP := map[core.VP]int{}
	for _, e := range events {
		if len(e.Observers) == 1 {
			b.SingleObserver++
			perVP[e.Observers[0]]++
		} else if len(e.Observers) > 1 {
			b.MultiObserver++
		}
	}
	type kv struct {
		vp core.VP
		n  int
	}
	var ranked []kv
	for vp, n := range perVP {
		ranked = append(ranked, kv{vp, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		if ranked[i].vp.Collector != ranked[j].vp.Collector {
			return ranked[i].vp.Collector < ranked[j].vp.Collector
		}
		return ranked[i].vp.ASN < ranked[j].vp.ASN
	})
	if len(ranked) > 0 {
		b.TopVP, b.TopVPEvents = ranked[0].vp, ranked[0].n
	}
	if len(ranked) > 1 {
		b.SecondVP, b.SecondVPEvents = ranked[1].vp, ranked[1].n
	}
	b.OtherSingleVPEvents = b.SingleObserver - b.TopVPEvents - b.SecondVPEvents
	return b
}
