package metrics

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/core"
)

// mkSnap builds a snapshot from path strings ("" = missing).
func mkSnap(t *testing.T, vps int, rows [][]string) *core.Snapshot {
	t.Helper()
	vpList := make([]core.VP, vps)
	for i := range vpList {
		vpList[i] = core.VP{Collector: "rrc00", ASN: uint32(100 + i)}
	}
	prefixes := make([]netip.Prefix, len(rows))
	for i := range rows {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
	}
	s := core.NewSnapshot(0, vpList, prefixes)
	for p, row := range rows {
		for v, str := range row {
			if str == "" {
				continue
			}
			seq, err := aspath.ParseSeq(str)
			if err != nil {
				t.Fatal(err)
			}
			s.SetRoute(p, v, seq)
		}
	}
	return s
}

func pfx(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
}

func TestCorrelateUpdates(t *testing.T) {
	// Atom A = prefixes {0,1} (origin 1), atom B = {2} (origin 1),
	// atom C = {3} (origin 2). AS 1 has 3 prefixes, AS 2 has 1.
	s := mkSnap(t, 1, [][]string{
		{"100 1"},
		{"100 1"},
		{"100 200 1"},
		{"100 2"},
	})
	as := core.ComputeAtoms(s)
	recs := []UpdateRecord{
		{Prefixes: []netip.Prefix{pfx(0), pfx(1)}},         // atom A full; AS1 partial
		{Prefixes: []netip.Prefix{pfx(0)}},                 // atom A partial; AS1 partial
		{Prefixes: []netip.Prefix{pfx(0), pfx(1), pfx(2)}}, // atom A full, B full; AS1 full
		{Prefixes: []netip.Prefix{pfx(3)}},                 // atom C full; AS2 full
	}
	uc := CorrelateUpdates(as, recs, 7)
	if uc.Atom[2].All != 2 || uc.Atom[2].Partial != 1 {
		t.Errorf("atom k=2: %+v", uc.Atom[2])
	}
	if got := uc.Atom[2].Pr(); got < 0.66 || got > 0.67 {
		t.Errorf("atom Pr(2) = %v", got)
	}
	if uc.Atom[1].All != 2 || uc.Atom[1].Partial != 0 {
		t.Errorf("atom k=1: %+v", uc.Atom[1])
	}
	if uc.AS[3].All != 1 || uc.AS[3].Partial != 2 {
		t.Errorf("AS k=3: %+v", uc.AS[3])
	}
	if uc.AS[1].All != 1 {
		t.Errorf("AS k=1: %+v", uc.AS[1])
	}
	// AS 1 has a multi-prefix atom → counted in ASMultiAtom.
	if uc.ASMultiAtom[3].All != 1 || uc.ASMultiAtom[3].Partial != 2 {
		t.Errorf("multi-atom AS: %+v", uc.ASMultiAtom[3])
	}
	if uc.Atom[0].Pr() != -1 {
		t.Error("empty ratio should report -1")
	}
}

func TestCorrelateUpdatesSinglePrefixAtomAS(t *testing.T) {
	// AS 1 has two single-prefix atoms (different paths).
	s := mkSnap(t, 1, [][]string{
		{"100 1"},
		{"100 200 1"},
	})
	as := core.ComputeAtoms(s)
	recs := []UpdateRecord{
		{Prefixes: []netip.Prefix{pfx(0)}},
		{Prefixes: []netip.Prefix{pfx(0), pfx(1)}},
	}
	uc := CorrelateUpdates(as, recs, 7)
	if uc.ASSinglePrefixAtoms[2].All != 1 || uc.ASSinglePrefixAtoms[2].Partial != 1 {
		t.Errorf("single-prefix-atom AS: %+v", uc.ASSinglePrefixAtoms[2])
	}
	if uc.ASMultiAtom[2].All+uc.ASMultiAtom[2].Partial != 0 {
		t.Errorf("AS wrongly classified as multi-atom: %+v", uc.ASMultiAtom[2])
	}
}

func TestFormationDistanceBasics(t *testing.T) {
	// Origin 1, two atoms diverging at the 2nd hop from origin
	// (different providers 200/201): distance 2.
	s := mkSnap(t, 2, [][]string{
		{"100 200 1", "101 200 1"},
		{"100 201 1", "101 201 1"},
		// Origin 2: single atom → distance 1.
		{"100 200 2", "101 200 2"},
	})
	as := core.ComputeAtoms(s)
	res := FormationDistances(as, DefaultFormationOptions())
	if res.TotalAtoms != 3 || res.TotalOrigins != 2 {
		t.Fatalf("totals: %+v", res)
	}
	if res.AtomsAtDistance[1] != 1 || res.AtomsAtDistance[2] != 2 {
		t.Errorf("distances: %v", res.AtomsAtDistance)
	}
	if res.D1SingleAtom != 1 {
		t.Errorf("D1 single = %d", res.D1SingleAtom)
	}
	if res.FirstSplitAtDistance[1] != 1 || res.FirstSplitAtDistance[2] != 1 {
		t.Errorf("first split: %v", res.FirstSplitAtDistance)
	}
	if res.AllSplitAtDistance[2] != 1 {
		t.Errorf("all split: %v", res.AllSplitAtDistance)
	}
}

func TestFormationDistancePrependD1(t *testing.T) {
	// Two atoms differing only in origin prepending: distance 1 via
	// method (iii), cause = prepend.
	s := mkSnap(t, 1, [][]string{
		{"100 200 1"},
		{"100 200 1 1"},
	})
	as := core.ComputeAtoms(s)
	res := FormationDistances(as, DefaultFormationOptions())
	if res.AtomsAtDistance[1] != 2 {
		t.Errorf("distances: %v", res.AtomsAtDistance)
	}
	if res.D1Prepend != 2 {
		t.Errorf("D1 prepend = %d (breakdown: single=%d unique=%d)",
			res.D1Prepend, res.D1SingleAtom, res.D1UniquePeers)
	}

	// Method (ii) strips prepending first: the atoms become
	// indistinguishable and fall back to distance 1.
	opts := DefaultFormationOptions()
	opts.Method = MethodStripBeforeDistance
	res2 := FormationDistances(as, opts)
	if res2.AtomsAtDistance[1] != 2 {
		t.Errorf("method (ii) distances: %v", res2.AtomsAtDistance)
	}

	// Method (i) merges them into one atom entirely.
	opts.Method = MethodStripBeforeGrouping
	res1 := FormationDistances(as, opts)
	if res1.TotalAtoms != 1 || res1.D1SingleAtom != 1 {
		t.Errorf("method (i): %+v", res1)
	}
}

func TestFormationDistanceUniquePeers(t *testing.T) {
	// Atom B missing at VP2: visibility difference → distance 1.
	s := mkSnap(t, 2, [][]string{
		{"100 200 1", "101 200 1"},
		{"100 201 1", ""},
	})
	as := core.ComputeAtoms(s)
	res := FormationDistances(as, DefaultFormationOptions())
	if res.AtomsAtDistance[1] != 2 {
		t.Errorf("distances: %v", res.AtomsAtDistance)
	}
	if res.D1UniquePeers != 2 {
		t.Errorf("D1 unique peers = %d", res.D1UniquePeers)
	}
}

func TestFormationDistanceTransitSplit(t *testing.T) {
	// Same first hop from origin, divergence at hop 3 (distance 3):
	// (1, T, A, vp) vs (1, T, B, vp), origin-first notation.
	s := mkSnap(t, 1, [][]string{
		{"100 300 200 1"},
		{"100 301 200 1"},
	})
	as := core.ComputeAtoms(s)
	res := FormationDistances(as, DefaultFormationOptions())
	if res.AtomsAtDistance[3] != 2 {
		t.Errorf("distances: %v", res.AtomsAtDistance)
	}
}

func TestFormationMOASExcluded(t *testing.T) {
	s := mkSnap(t, 2, [][]string{
		{"100 200 1", "101 200 9"}, // MOAS conflict
		{"100 200 1", "101 200 1"},
	})
	as := core.ComputeAtoms(s)
	res := FormationDistances(as, DefaultFormationOptions())
	if res.SkippedMOAS != 1 {
		t.Errorf("skipped MOAS = %d", res.SkippedMOAS)
	}
	if res.TotalAtoms != 1 {
		t.Errorf("total atoms = %d", res.TotalAtoms)
	}
}

func TestFormationSampling(t *testing.T) {
	// A mega-origin with 50 atoms; cap sampling at 10.
	rows := make([][]string, 50)
	for i := range rows {
		rows[i] = []string{aspath.Seq{100, uint32(200 + i), 1}.String()}
	}
	s := mkSnap(t, 1, rows)
	as := core.ComputeAtoms(s)
	opts := DefaultFormationOptions()
	opts.MaxAtomsPerOrigin = 10
	res := FormationDistances(as, opts)
	if res.TotalAtoms != 10 {
		t.Errorf("sampled atoms = %d, want 10", res.TotalAtoms)
	}
	if res.AtomsAtDistance[2] != 10 {
		t.Errorf("distances: %v", res.AtomsAtDistance)
	}
}

func TestCompareStability(t *testing.T) {
	// t1: atoms {0,1} and {2}; t2: {0,1} intact, {2} split... with a
	// 1-prefix atom a "split" means a path change that regroups it.
	t1 := core.ComputeAtoms(mkSnap(t, 1, [][]string{
		{"100 1"},
		{"100 1"},
		{"100 200 1"},
	}))
	t2 := core.ComputeAtoms(mkSnap(t, 1, [][]string{
		{"100 1"},
		{"100 1"},
		{"100 1"}, // prefix 2 merged into the big atom
	}))
	st := CompareStability(t1, t2)
	// t2 has one atom {0,1,2}; its exact set did not exist at t1 → CAM 0.
	if st.CAM != 0 || st.MatchedAtoms != 0 || st.TotalAtoms != 1 {
		t.Errorf("CAM: %+v", st)
	}
	// Greedy MPM: the {0,1,2} atom maps to t1's {0,1} (overlap 2), and
	// t1's {2} is unmatched → 2/3.
	if st.MatchedPrefixes != 2 || st.TotalPrefixes != 3 {
		t.Errorf("MPM: %+v", st)
	}

	// Identity comparison: everything matches.
	ident := CompareStability(t1, t1)
	if ident.CAM != 1 || ident.MPM != 1 {
		t.Errorf("identity: %+v", ident)
	}
}

func TestCompareStabilityGreedyMapping(t *testing.T) {
	// t1 atom X = {0,1,2}; t2 atoms P = {0,1}, Q = {2}. Greedy maps X→P
	// (overlap 2), Q unmatched: MPM = 2/3. CAM: neither P nor Q existed
	// at t1 → 0.
	t1 := core.ComputeAtoms(mkSnap(t, 1, [][]string{
		{"100 1"}, {"100 1"}, {"100 1"},
	}))
	t2 := core.ComputeAtoms(mkSnap(t, 1, [][]string{
		{"100 1"}, {"100 1"}, {"100 200 1"},
	}))
	st := CompareStability(t1, t2)
	if st.CAM != 0 {
		t.Errorf("CAM = %v", st.CAM)
	}
	if st.MatchedPrefixes != 2 || st.TotalPrefixes != 3 {
		t.Errorf("MPM: %+v", st)
	}
}

func TestDetectSplits(t *testing.T) {
	// Atom {0,1} stable at t0,t1; at t2 VP1 sees different paths for 0
	// and 1 while VP0 still sees them together.
	mk := func(rows [][]string) *core.AtomSet {
		return core.ComputeAtoms(mkSnap(t, 2, rows))
	}
	s0 := mk([][]string{
		{"100 200 1", "101 200 1"},
		{"100 200 1", "101 200 1"},
	})
	s1 := mk([][]string{
		{"100 200 1", "101 200 1"},
		{"100 200 1", "101 200 1"},
	})
	s2 := mk([][]string{
		{"100 200 1", "101 200 1"},
		{"100 200 1", "101 201 1"},
	})
	events := DetectSplits(s0, s1, s2)
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if len(events[0].Observers) != 1 || events[0].Observers[0].ASN != 101 {
		t.Errorf("observers = %+v", events[0].Observers)
	}

	// No split when nothing changes.
	if got := DetectSplits(s0, s1, s1); len(got) != 0 {
		t.Errorf("no-change split events = %d", len(got))
	}

	// Atom not established at t0 → no event even if split at t2.
	s0b := mk([][]string{
		{"100 200 1", "101 200 1"},
		{"100 209 1", "101 209 1"},
	})
	if got := DetectSplits(s0b, s1, s2); len(got) != 0 {
		t.Errorf("unestablished split events = %d", len(got))
	}
}

func TestDetectSplitsMissingPrefix(t *testing.T) {
	mk := func(rows [][]string) *core.AtomSet {
		return core.ComputeAtoms(mkSnap(t, 1, rows))
	}
	s01 := mk([][]string{
		{"100 200 1"},
		{"100 200 1"},
	})
	// t2 snapshot lacks prefix 1 entirely (filtered out): treated as a
	// split with the sole VP observing (present vs missing).
	vpList := []core.VP{{Collector: "rrc00", ASN: 100}}
	s2snap := core.NewSnapshot(0, vpList, []netip.Prefix{pfx(0)})
	seq, _ := aspath.ParseSeq("100 200 1")
	s2snap.SetRoute(0, 0, seq)
	s2 := core.ComputeAtoms(s2snap)
	events := DetectSplits(s01, s01, s2)
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if len(events[0].Observers) != 1 {
		t.Errorf("observers = %+v", events[0].Observers)
	}
}

func TestObserverCDFAndBreakdown(t *testing.T) {
	vp := func(asn uint32) core.VP { return core.VP{Collector: "c", ASN: asn} }
	events := []SplitEvent{
		{Observers: []core.VP{vp(1)}},
		{Observers: []core.VP{vp(1)}},
		{Observers: []core.VP{vp(2)}},
		{Observers: []core.VP{vp(1), vp(2)}},
		{Observers: nil},
	}
	cdf := BuildObserverCDF(events)
	if cdf.Total != 5 || cdf.Counts[1] != 3 || cdf.Counts[2] != 1 || cdf.Counts[0] != 1 {
		t.Errorf("cdf = %+v", cdf)
	}
	if got := cdf.FractionAtMost(1); got != 0.8 {
		t.Errorf("FractionAtMost(1) = %v", got)
	}
	if got := cdf.FractionAtMost(10); got != 1.0 {
		t.Errorf("FractionAtMost(10) = %v", got)
	}

	b := BreakdownDay(3, events)
	if b.Day != 3 || b.Events != 5 || b.SingleObserver != 3 || b.MultiObserver != 1 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.TopVP != vp(1) || b.TopVPEvents != 2 {
		t.Errorf("top VP = %+v", b)
	}
	if b.SecondVP != vp(2) || b.SecondVPEvents != 1 || b.OtherSingleVPEvents != 0 {
		t.Errorf("second VP = %+v", b)
	}
	empty := BuildObserverCDF(nil)
	if empty.FractionAtMost(1) != 0 {
		t.Error("empty CDF fraction")
	}
}
