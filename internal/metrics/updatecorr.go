// Package metrics implements the paper's four analyses over computed
// atoms: correlation of atom structure with BGP update records (§3.3),
// formation distance with all three prepending-handling methods (§3.4),
// stability via complete-atom match and maximized-prefix match (§3.5),
// and atom-split detection with observer counting (§4.4.1).
package metrics

import (
	"io"
	"net/netip"

	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prefixset"
)

// UpdateRecord is the prefix set of one BGP UPDATE message.
type UpdateRecord struct {
	Timestamp uint32
	Collector string
	PeerASN   uint32
	Prefixes  []netip.Prefix
}

// CollectRecords drains update sources into per-message prefix sets
// (announcements and withdrawals together, deduplicated).
func CollectRecords(sources []bgpstream.Source, filter *bgpstream.Filter) ([]UpdateRecord, []bgpstream.Warning, error) {
	return CollectRecordsObs(sources, filter, 1, nil, nil)
}

// CollectRecordsObs is CollectRecords with decode fan-out and
// telemetry: workers sets the stream's per-source decode parallelism
// (0 = one per CPU, 1 = sequential; the record sequence is identical
// at any value); a non-nil reg receives the stream's decode counters
// plus metrics.update_records and a metrics.update_record_size
// histogram; a non-nil parent receives a child span with source/record
// cardinalities.
func CollectRecordsObs(sources []bgpstream.Source, filter *bgpstream.Filter, workers int, reg *obs.Registry, parent *obs.Span) ([]UpdateRecord, []bgpstream.Warning, error) {
	sp := parent.Child("metrics.collect_records")
	out, warnings, err := collectRecords(sources, filter, workers, reg)
	if reg != nil {
		reg.Counter("metrics.update_records").Add(int64(len(out)))
		h := reg.Histogram("metrics.update_record_size")
		for i := range out {
			h.Observe(int64(len(out[i].Prefixes)))
		}
	}
	sp.SetAttr("sources", len(sources))
	sp.SetAttr("records", len(out))
	sp.SetAttr("warnings", len(warnings))
	sp.End()
	return out, warnings, err
}

func collectRecords(sources []bgpstream.Source, filter *bgpstream.Filter, workers int, reg *obs.Registry) ([]UpdateRecord, []bgpstream.Warning, error) {
	s := bgpstream.NewStream(filter, sources...)
	s.SetMetrics(reg)
	s.SetWorkers(workers)

	// Elements of one message arrive contiguously with a strictly
	// increasing MsgIndex, so grouping is a streaming comparison against
	// the previous index — no map, no sort. The current record's
	// prefixes accumulate in scratch (deduplicated linearly; update
	// records are small) and flush into a chunked arena, so the retained
	// slices cost one allocation per ~4096 prefixes instead of one per
	// record.
	var out []UpdateRecord
	var arena []netip.Prefix
	alloc := func(ps []netip.Prefix) []netip.Prefix {
		if len(ps) == 0 {
			return nil
		}
		if len(arena)+len(ps) > cap(arena) {
			n := 4096
			if len(ps) > n {
				n = len(ps)
			}
			arena = make([]netip.Prefix, 0, n)
		}
		start := len(arena)
		arena = append(arena, ps...)
		return arena[start : start+len(ps) : start+len(ps)]
	}
	scratch := make([]netip.Prefix, 0, 256)
	flush := func() {
		if len(out) > 0 {
			out[len(out)-1].Prefixes = alloc(scratch)
		}
		scratch = scratch[:0]
	}
	curMsg := -1
	for {
		batch, err := s.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		for i := range batch {
			e := &batch[i]
			if e.Type != bgpstream.ElemAnnounce && e.Type != bgpstream.ElemWithdraw {
				continue
			}
			if e.MsgIndex != curMsg {
				flush()
				curMsg = e.MsgIndex
				out = append(out, UpdateRecord{Timestamp: e.Timestamp, Collector: e.Collector, PeerASN: e.PeerASN})
			}
			p := prefixset.Canonical(e.Prefix)
			if !p.IsValid() {
				continue
			}
			dup := false
			for _, q := range scratch {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				scratch = append(scratch, p)
			}
		}
	}
	flush()
	return out, s.Warnings(), nil
}

// Ratio accumulates the full/partial counts behind one Pr_full(k) point.
type Ratio struct {
	All, Partial int
}

// Pr returns N_all / (N_all + N_partial), or -1 with no observations.
func (r Ratio) Pr() float64 {
	n := r.All + r.Partial
	if n == 0 {
		return -1
	}
	return float64(r.All) / float64(n)
}

// UpdateCorrelation is the Fig 3/10/15 dataset: for each entity size k,
// how often an entity with ≥1 prefix in an update appeared in full.
type UpdateCorrelation struct {
	MaxK int
	// Indexed 1..MaxK (index 0 unused).
	Atom                []Ratio
	AS                  []Ratio
	ASMultiAtom         []Ratio // ASes with ≥1 atom of size >1
	ASSinglePrefixAtoms []Ratio // ASes whose atoms are all single-prefix
	Records             int
}

// CorrelateUpdates computes the likelihood of atoms and ASes being seen
// in full within single update records (§3.3's formula).
func CorrelateUpdates(as *core.AtomSet, records []UpdateRecord, maxK int) *UpdateCorrelation {
	return CorrelateUpdatesSpan(as, records, maxK, nil)
}

// CorrelateUpdatesSpan is CorrelateUpdates with stage tracing: a
// non-nil parent receives a child span with atom/record counts.
func CorrelateUpdatesSpan(as *core.AtomSet, records []UpdateRecord, maxK int, parent *obs.Span) *UpdateCorrelation {
	sp := parent.Child("metrics.correlate_updates")
	uc := correlateUpdates(as, records, maxK)
	sp.SetAttr("atoms", len(as.Atoms))
	sp.SetAttr("records", len(records))
	sp.SetAttr("max_k", maxK)
	sp.End()
	return uc
}

func correlateUpdates(as *core.AtomSet, records []UpdateRecord, maxK int) *UpdateCorrelation {
	uc := &UpdateCorrelation{
		MaxK:                maxK,
		Atom:                make([]Ratio, maxK+1),
		AS:                  make([]Ratio, maxK+1),
		ASMultiAtom:         make([]Ratio, maxK+1),
		ASSinglePrefixAtoms: make([]Ratio, maxK+1),
		Records:             len(records),
	}

	// Prefix value → atom ID, and per-AS prefix grouping.
	snap := as.Snap
	atomOf := make(map[netip.Prefix]int, len(snap.Prefixes))
	for p, pfx := range snap.Prefixes {
		atomOf[pfx] = as.ByPrefix[p]
	}
	type asInfo struct {
		id       int
		size     int
		allOne   bool // all atoms single-prefix
		hasMulti bool // ≥1 atom with >1 prefix
	}
	asIndex := map[uint32]*asInfo{}
	asOfPrefix := make([]int, len(snap.Prefixes)) // prefix idx → AS dense id
	var asList []*asInfo
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin == 0 {
			continue
		}
		info := asIndex[a.Origin]
		if info == nil {
			info = &asInfo{id: len(asList), allOne: true}
			asIndex[a.Origin] = info
			asList = append(asList, info)
		}
		info.size += a.Size()
		if a.Size() > 1 {
			info.hasMulti = true
			info.allOne = false
		}
		for _, p := range a.Prefixes {
			asOfPrefix[p] = info.id
		}
	}

	atomHits := make(map[int]int, 64)
	asHits := make(map[int]int, 64)
	pfxIdx := make(map[netip.Prefix]int, len(snap.Prefixes))
	for p, pfx := range snap.Prefixes {
		pfxIdx[pfx] = p
	}

	for _, rec := range records {
		clear(atomHits)
		clear(asHits)
		for _, pfx := range rec.Prefixes {
			aid, ok := atomOf[pfx]
			if !ok {
				continue
			}
			atomHits[aid]++
			p := pfxIdx[pfx]
			if as.Atoms[aid].Origin != 0 {
				asHits[asOfPrefix[p]]++
			}
		}
		for aid, hits := range atomHits {
			size := as.Atoms[aid].Size()
			if size < 1 || size > maxK {
				continue
			}
			if hits >= size {
				uc.Atom[size].All++
			} else {
				uc.Atom[size].Partial++
			}
		}
		for did, hits := range asHits {
			info := asList[did]
			if info.size < 1 || info.size > maxK {
				continue
			}
			full := hits >= info.size
			tally(&uc.AS[info.size], full)
			if info.hasMulti {
				tally(&uc.ASMultiAtom[info.size], full)
			}
			if info.allOne && info.size > 1 {
				tally(&uc.ASSinglePrefixAtoms[info.size], full)
			}
		}
	}
	return uc
}

func tally(r *Ratio, full bool) {
	if full {
		r.All++
	} else {
		r.Partial++
	}
}
