package metrics

import (
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/core"
)

// randomAtomSet builds a random snapshot over a small path alphabet so
// that merging, splitting and missing paths all occur.
func randomAtomSet(r *rand.Rand, nPfx, nVP int, salt byte) *core.AtomSet {
	vps := make([]core.VP, nVP)
	for i := range vps {
		vps[i] = core.VP{Collector: "c", ASN: uint32(100 + i)}
	}
	prefixes := make([]netip.Prefix, nPfx)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, salt, byte(i >> 8), byte(i)}), 32).Masked()
	}
	s := core.NewSnapshot(0, vps, prefixes)
	paths := []aspath.Seq{nil, {9, 1}, {9, 2}, {9, 9, 1}, {8, 7, 1}, {8, 2}}
	for p := 0; p < nPfx; p++ {
		for v := 0; v < nVP; v++ {
			s.SetRoute(p, v, paths[r.Intn(len(paths))])
		}
	}
	return core.ComputeAtoms(s)
}

// mutate produces a second snapshot sharing most routes with the first.
func mutate(r *rand.Rand, base *core.AtomSet, churn float64) *core.AtomSet {
	src := base.Snap
	s := core.NewSnapshot(1, src.VPs, src.Prefixes)
	paths := []aspath.Seq{nil, {9, 1}, {9, 2}, {9, 9, 1}, {8, 7, 1}, {8, 2}}
	for p := range src.Prefixes {
		for v := range src.VPs {
			if r.Float64() < churn {
				s.SetRoute(p, v, paths[r.Intn(len(paths))])
			} else {
				s.SetRoute(p, v, src.Route(p, v))
			}
		}
	}
	return core.ComputeAtoms(s)
}

// TestStabilityProperties checks CAM/MPM invariants over random
// snapshot pairs:
//
//   - identity: CAM(x,x) = MPM(x,x) = 1
//   - bounds: both in [0,1]
//   - MPM accounting: matched prefixes ≤ total prefixes
//   - zero churn ⇒ perfect stability
func TestStabilityProperties(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		a := randomAtomSet(r, 2+r.Intn(50), 1+r.Intn(4), byte(iter))
		ident := CompareStability(a, a)
		if ident.CAM != 1 || ident.MPM != 1 {
			t.Fatalf("iter %d: identity CAM=%v MPM=%v", iter, ident.CAM, ident.MPM)
		}
		b := mutate(r, a, 0.1*r.Float64())
		st := CompareStability(a, b)
		if st.CAM < 0 || st.CAM > 1 || st.MPM < 0 || st.MPM > 1 {
			t.Fatalf("iter %d: out of bounds %+v", iter, st)
		}
		if st.MatchedPrefixes > st.TotalPrefixes {
			t.Fatalf("iter %d: matched > total: %+v", iter, st)
		}
		if st.MatchedAtoms > st.TotalAtoms {
			t.Fatalf("iter %d: matched atoms > total: %+v", iter, st)
		}
		frozen := mutate(r, a, 0)
		if st0 := CompareStability(a, frozen); st0.CAM != 1 || st0.MPM != 1 {
			t.Fatalf("iter %d: zero churn CAM=%v MPM=%v", iter, st0.CAM, st0.MPM)
		}
	}
}

// TestStabilitySymmetricUniverse: CAM is direction-dependent (it is
// normalized by A_t2), but the matched-atom *count* is symmetric: the
// set of shared compositions is the same either way.
func TestStabilityMatchSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 25; iter++ {
		a := randomAtomSet(r, 2+r.Intn(40), 1+r.Intn(3), byte(iter))
		b := mutate(r, a, 0.2)
		ab := CompareStability(a, b)
		ba := CompareStability(b, a)
		if ab.MatchedAtoms != ba.MatchedAtoms {
			t.Fatalf("iter %d: matched atoms asymmetric: %d vs %d",
				iter, ab.MatchedAtoms, ba.MatchedAtoms)
		}
	}
}

// TestFormationProperties checks formation-distance invariants on
// random atom sets: every atom gets exactly one distance, distances are
// ≥ 1, distributions sum to the totals, and d_min ≤ d_max per origin.
func TestFormationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for iter := 0; iter < 30; iter++ {
		as := randomAtomSet(r, 2+r.Intn(60), 1+r.Intn(4), byte(iter))
		res := FormationDistances(as, DefaultFormationOptions())
		sum := 0
		for d := 1; d < len(res.AtomsAtDistance); d++ {
			sum += res.AtomsAtDistance[d]
		}
		if sum != res.TotalAtoms {
			t.Fatalf("iter %d: distances sum %d != total %d", iter, sum, res.TotalAtoms)
		}
		if res.AtomsAtDistance[0] != 0 {
			t.Fatalf("iter %d: distance 0 populated", iter)
		}
		sumMin, sumMax := 0, 0
		for d := 1; d < len(res.FirstSplitAtDistance); d++ {
			sumMin += res.FirstSplitAtDistance[d]
			sumMax += res.AllSplitAtDistance[d]
		}
		if sumMin != res.TotalOrigins || sumMax != res.TotalOrigins {
			t.Fatalf("iter %d: origin curves %d/%d != origins %d",
				iter, sumMin, sumMax, res.TotalOrigins)
		}
		// d1 breakdown never exceeds the d1 count.
		if res.D1SingleAtom+res.D1UniquePeers+res.D1Prepend != res.AtomsAtDistance[1] {
			t.Fatalf("iter %d: d1 breakdown %d+%d+%d != %d", iter,
				res.D1SingleAtom, res.D1UniquePeers, res.D1Prepend, res.AtomsAtDistance[1])
		}
		// MOAS-skipped + analyzed ≤ all atoms.
		if res.TotalAtoms+res.SkippedMOAS > len(as.Atoms) {
			t.Fatalf("iter %d: accounting overflow", iter)
		}
	}
}

// TestSplitDetectionProperties: no split events when three identical
// snapshots are compared; every event's observers are valid VPs.
func TestSplitDetectionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for iter := 0; iter < 20; iter++ {
		a := randomAtomSet(r, 2+r.Intn(40), 1+r.Intn(4), byte(iter))
		if events := DetectSplits(a, a, a); len(events) != 0 {
			t.Fatalf("iter %d: identical snapshots produced %d splits", iter, len(events))
		}
		b := mutate(r, a, 0.15)
		for _, e := range DetectSplits(a, a, b) {
			if len(e.Prefixes) < 2 {
				t.Fatalf("iter %d: split of a %d-prefix atom", iter, len(e.Prefixes))
			}
			for _, vp := range e.Observers {
				if vp.Collector != "c" {
					t.Fatalf("iter %d: bogus observer %v", iter, vp)
				}
			}
		}
	}
}
