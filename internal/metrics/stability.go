package metrics

import (
	"net/netip"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prefixset"
)

// Stability holds the §3.5 metrics between two snapshots.
type Stability struct {
	// CAM is the complete-atom-match ratio: the fraction of atoms at t2
	// whose exact prefix set already existed as an atom at t1.
	CAM float64
	// MPM is the maximized-prefix-match ratio: prefixes that stayed
	// grouped under the greedy one-to-one atom mapping.
	MPM float64
	// MatchedAtoms / TotalAtoms back CAM; MatchedPrefixes /
	// TotalPrefixes back MPM.
	MatchedAtoms, TotalAtoms       int
	MatchedPrefixes, TotalPrefixes int
}

// atomSig is a canonical signature of an atom's prefix set.
func atomSig(as *core.AtomSet, id int) string {
	prefixes := as.PrefixSet(id)
	prefixset.SortPrefixes(prefixes)
	b := make([]byte, 0, len(prefixes)*18)
	for _, p := range prefixes {
		a := p.Addr().As16()
		b = append(b, a[:]...)
		b = append(b, byte(p.Bits()), byte(0))
	}
	return string(b)
}

// CompareStability computes CAM and MPM from snapshot t1 to t2.
func CompareStability(t1, t2 *core.AtomSet) Stability {
	return CompareStabilitySpan(t1, t2, nil)
}

// CompareStabilitySpan is CompareStability with stage tracing: a
// non-nil parent receives a child span with atom counts and the
// resulting match ratios.
func CompareStabilitySpan(t1, t2 *core.AtomSet, parent *obs.Span) Stability {
	sp := parent.Child("metrics.compare_stability")
	st := compareStability(t1, t2)
	sp.SetAttr("atoms_t1", len(t1.Atoms))
	sp.SetAttr("atoms_t2", len(t2.Atoms))
	sp.SetAttr("cam", st.CAM)
	sp.SetAttr("mpm", st.MPM)
	sp.End()
	return st
}

func compareStability(t1, t2 *core.AtomSet) Stability {
	st := Stability{TotalAtoms: len(t2.Atoms)}

	// CAM: signatures of t1 atoms, membership test for t2 atoms.
	sigs := make(map[string]struct{}, len(t1.Atoms))
	for i := range t1.Atoms {
		sigs[atomSig(t1, i)] = struct{}{}
	}
	for i := range t2.Atoms {
		if _, ok := sigs[atomSig(t2, i)]; ok {
			st.MatchedAtoms++
		}
	}
	if st.TotalAtoms > 0 {
		st.CAM = float64(st.MatchedAtoms) / float64(st.TotalAtoms)
	}

	// MPM: overlap counts between t1 atoms and t2 atoms via shared
	// prefix values, then a greedy maximum-overlap one-to-one matching.
	t2AtomOf := make(map[netip.Prefix]int, len(t2.Snap.Prefixes))
	for p, pfx := range t2.Snap.Prefixes {
		t2AtomOf[pfx] = t2.ByPrefix[p]
	}
	type pair struct {
		a, b    int
		overlap int
	}
	overlaps := make(map[[2]int]int)
	for p, pfx := range t1.Snap.Prefixes {
		a := t1.ByPrefix[p]
		if b, ok := t2AtomOf[pfx]; ok {
			overlaps[[2]int{a, b}]++
		}
	}
	pairs := make([]pair, 0, len(overlaps))
	for k, n := range overlaps {
		pairs = append(pairs, pair{a: k[0], b: k[1], overlap: n})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].overlap != pairs[j].overlap {
			return pairs[i].overlap > pairs[j].overlap
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	usedA := make(map[int]bool, len(t1.Atoms))
	usedB := make(map[int]bool, len(t2.Atoms))
	matched := 0
	for _, p := range pairs {
		if usedA[p.a] || usedB[p.b] {
			continue
		}
		usedA[p.a] = true
		usedB[p.b] = true
		matched += p.overlap
	}
	st.MatchedPrefixes = matched
	st.TotalPrefixes = len(t1.Snap.Prefixes)
	if st.TotalPrefixes > 0 {
		st.MPM = float64(matched) / float64(st.TotalPrefixes)
	}
	return st
}
