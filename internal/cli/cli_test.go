package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCollectorName(t *testing.T) {
	cases := map[string]string{
		"/data/rrc00.rib.mrt":          "rrc00",
		"route-views2.updates.mrt":     "route-views2",
		"plain":                        "plain",
		"/deep/path/rrc21.2024.q4.mrt": "rrc21",
		".hidden":                      ".hidden", // no name before the dot: keep as-is
	}
	for in, want := range cases {
		if got := CollectorName(in); got != want {
			t.Errorf("CollectorName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadSources(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "rrc00.rib.mrt")
	if err := os.WriteFile(p, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	srcs := LoadSources("test", []string{p})
	if len(srcs) != 1 || srcs[0].Collector != "rrc00" || len(srcs[0].Data) != 3 {
		t.Errorf("sources = %+v", srcs)
	}
}

func TestObsDisabled(t *testing.T) {
	o := &Obs{Tool: "test"}
	o.Start()
	if o.Enabled() || o.Root != nil || o.Registry != nil {
		t.Error("disabled Obs must not allocate telemetry")
	}
	// The nil Root/Registry must be usable downstream.
	o.Root.Child("x").End()
	o.Registry.Counter("c").Inc()
	o.Finish() // must not write anything or crash
}

func TestObsTraceReport(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.json")
	o := &Obs{Tool: "test", TracePath: trace}
	o.Start()
	if o.Root == nil || o.Registry == nil {
		t.Fatal("enabled Obs must build root and registry")
	}
	sp := o.Root.Child("stage")
	sp.SetAttr("n", 7)
	sp.End()
	o.Registry.Counter("c", "k", "v").Add(3)
	o.Finish()

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool string `json:"tool"`
		Span struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"span"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, data)
	}
	if rep.Tool != "test" || rep.Span.Name != "test" {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Span.Children) != 1 || rep.Span.Children[0].Name != "stage" {
		t.Errorf("span children = %+v", rep.Span.Children)
	}
	if rep.Metrics.Counters["c{k=v}"] != 3 {
		t.Errorf("counters = %+v", rep.Metrics.Counters)
	}
}

func TestObsEnabledSurfaces(t *testing.T) {
	cases := []struct {
		name string
		o    Obs
		want bool
	}{
		{"off", Obs{}, false},
		{"trace", Obs{TracePath: "x"}, true},
		{"verbose", Obs{Verbose: true}, true},
		{"trace-out", Obs{TraceOut: "x"}, true},
		{"listen", Obs{Listen: ":0"}, true},
		{"sample", Obs{Sample: time.Second}, true},
		{"profiles only", Obs{CPUProfile: "x"}, false},
		{"progress only", Obs{ProgressOn: true}, false},
	}
	for _, tc := range cases {
		if got := tc.o.Enabled(); got != tc.want {
			t.Errorf("%s: Enabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestObsTraceOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "run.trace.json")
	o := &Obs{Tool: "test", TraceOut: out}
	o.Start()
	if o.Root == nil || o.Registry == nil {
		t.Fatal("-trace-out alone must enable the span tree")
	}
	sp := o.Root.Child("stage")
	sp.End()
	o.Finish()

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace-out not valid JSON: %v\n%s", err, data)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["test"] || !names["stage"] {
		t.Errorf("trace events missing spans: %+v", trace.TraceEvents)
	}
}

func TestObsListenAndSample(t *testing.T) {
	o := &Obs{Tool: "test", Listen: "127.0.0.1:0", Sample: time.Hour}
	o.Start()
	if o.server == nil || o.server.Addr == "" {
		t.Fatal("-listen must start the debug server")
	}
	if o.sampler == nil {
		t.Fatal("-sample must start the sampler")
	}
	// The synchronous first sample lands before Start returns, so a
	// scrape mid-run sees runtime health immediately.
	resp, err := http.Get("http://" + o.server.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "atom_runtime_goroutines") {
		t.Errorf("/metrics missing sampled runtime gauge:\n%s", body)
	}
	if !strings.Contains(string(body), "atom_runtime_samples_total 1") {
		t.Errorf("/metrics missing sampler tick counter:\n%s", body)
	}
	addr := o.server.Addr
	o.Finish()
	if o.sampler != nil || o.server != nil {
		t.Error("Finish must release sampler and server")
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug server still serving after Finish")
	}
}

func TestObsProgress(t *testing.T) {
	o := &Obs{Tool: "test"}
	o.Start()
	if o.Progress != nil {
		t.Error("progress stream without -progress")
	}
	o.Finish()

	o = &Obs{Tool: "test", ProgressOn: true}
	o.Start()
	if o.Progress == nil {
		t.Fatal("-progress must build the stream")
	}
	o.Finish()
	if o.Progress != nil {
		t.Error("Finish must release the progress stream")
	}
}

func TestObsProfiles(t *testing.T) {
	dir := t.TempDir()
	o := &Obs{Tool: "test", CPUProfile: filepath.Join(dir, "cpu.pprof"), MemProfile: filepath.Join(dir, "mem.pprof")}
	o.Start()
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	o.Finish()
	for _, p := range []string{o.CPUProfile, o.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
