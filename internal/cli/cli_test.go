package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCollectorName(t *testing.T) {
	cases := map[string]string{
		"/data/rrc00.rib.mrt":          "rrc00",
		"route-views2.updates.mrt":     "route-views2",
		"plain":                        "plain",
		"/deep/path/rrc21.2024.q4.mrt": "rrc21",
		".hidden":                      ".hidden", // no name before the dot: keep as-is
	}
	for in, want := range cases {
		if got := CollectorName(in); got != want {
			t.Errorf("CollectorName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadSources(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "rrc00.rib.mrt")
	if err := os.WriteFile(p, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	srcs := LoadSources("test", []string{p})
	if len(srcs) != 1 || srcs[0].Collector != "rrc00" || len(srcs[0].Data) != 3 {
		t.Errorf("sources = %+v", srcs)
	}
}

func TestObsDisabled(t *testing.T) {
	o := &Obs{Tool: "test"}
	o.Start()
	if o.Enabled() || o.Root != nil || o.Registry != nil {
		t.Error("disabled Obs must not allocate telemetry")
	}
	// The nil Root/Registry must be usable downstream.
	o.Root.Child("x").End()
	o.Registry.Counter("c").Inc()
	o.Finish() // must not write anything or crash
}

func TestObsTraceReport(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.json")
	o := &Obs{Tool: "test", TracePath: trace}
	o.Start()
	if o.Root == nil || o.Registry == nil {
		t.Fatal("enabled Obs must build root and registry")
	}
	sp := o.Root.Child("stage")
	sp.SetAttr("n", 7)
	sp.End()
	o.Registry.Counter("c", "k", "v").Add(3)
	o.Finish()

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool string `json:"tool"`
		Span struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"span"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, data)
	}
	if rep.Tool != "test" || rep.Span.Name != "test" {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Span.Children) != 1 || rep.Span.Children[0].Name != "stage" {
		t.Errorf("span children = %+v", rep.Span.Children)
	}
	if rep.Metrics.Counters["c{k=v}"] != 3 {
		t.Errorf("counters = %+v", rep.Metrics.Counters)
	}
}

func TestObsProfiles(t *testing.T) {
	dir := t.TempDir()
	o := &Obs{Tool: "test", CPUProfile: filepath.Join(dir, "cpu.pprof"), MemProfile: filepath.Join(dir, "mem.pprof")}
	o.Start()
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	o.Finish()
	for _, p := range []string{o.CPUProfile, o.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
