// Package cli holds the plumbing shared by the repo's commands: fatal
// error handling, MRT source loading with collector-name derivation,
// and the observability flag bundle that turns any command into a
// traced run. Exit-report flags (-trace, -v, -cpuprofile, -memprofile)
// capture a run after the fact; live flags (-listen, -sample,
// -progress, -trace-out) expose it while it happens — a debug HTTP
// server with Prometheus /metrics and pprof, a runtime-health sampler,
// JSON progress lines on stderr, and a Perfetto-loadable trace file
// (see internal/obs).
package cli

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/obs"
)

// Fatal prints "<tool>: <err>" to stderr and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Usage prints a usage line to stderr and exits 2.
func Usage(line string) {
	fmt.Fprintln(os.Stderr, "usage:", line)
	os.Exit(2)
}

// CollectorName derives the collector name from an archive path:
// everything before the first dot of the base name ("rrc00.rib.mrt" →
// "rrc00").
func CollectorName(path string) string {
	name := filepath.Base(path)
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return name
}

// LoadSources reads MRT archives into byte-backed stream sources,
// attributing each to its derived collector name. Any read error is
// fatal under the tool's name.
func LoadSources(tool string, paths []string) []bgpstream.Source {
	var out []bgpstream.Source
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			Fatal(tool, err)
		}
		out = append(out, bgpstream.BytesSource(CollectorName(p), data, bgp.Options{}))
	}
	return out
}

// NewWorkers registers the shared -workers flag on the default flag
// set: the worker-pool bound for every parallel pipeline stage. The
// default is one worker per CPU; 1 forces the sequential path. Output
// is byte-identical at any value, so the flag only trades wall-clock
// for cores.
func NewWorkers() *int {
	return flag.Int("workers", runtime.NumCPU(),
		"worker pool size for parallel pipeline stages (1 = sequential)")
}

// Obs bundles a command's observability surface. Typical lifecycle:
//
//	o := cli.NewObs("atomize")      // registers flags
//	flag.Parse()
//	o.Start()                       // root span, registry, profiles
//	defer o.Finish()                // write trace/report, stop profiles
//	... pass o.Root / o.Registry down the pipeline ...
//
// When no observability flag is given, Root and Registry stay nil and
// the entire instrumented pipeline runs on its no-op path; the pprof
// flags work independently of tracing.
type Obs struct {
	Tool string
	// Flag values.
	TracePath  string
	Verbose    bool
	CPUProfile string
	MemProfile string
	// Live observability flag values: Chrome trace output path, debug
	// HTTP listen address, runtime sampling interval, progress stream.
	TraceOut   string
	Listen     string
	Sample     time.Duration
	ProgressOn bool
	// Root / Registry are non-nil between Start and Finish when any
	// tracing surface is enabled.
	Root     *obs.Span
	Registry *obs.Registry
	// Progress is non-nil between Start and Finish when -progress is
	// given; pass it down via longitudinal.Config.Progress.
	Progress *obs.Progress
	// ExtraMux, when set before Start, registers additional handlers on
	// the debug server's mux (atomd mounts /atoms here). Only consulted
	// when -listen is given.
	ExtraMux func(*http.ServeMux)

	cpuFile *os.File
	sampler *obs.Sampler
	server  *obs.DebugServer
}

// NewObs registers the observability flags on the default flag set.
func NewObs(tool string) *Obs {
	o := &Obs{Tool: tool}
	flag.StringVar(&o.TracePath, "trace", "", "write a JSON run report (span tree + counters) to `file`")
	flag.BoolVar(&o.Verbose, "v", false, "print the run report as a text tree to stderr")
	flag.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	flag.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to `file`")
	flag.StringVar(&o.TraceOut, "trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to `file`")
	flag.StringVar(&o.Listen, "listen", "", "serve /metrics, /healthz, /runreport and pprof on `addr` (e.g. :0) for the run's duration")
	flag.DurationVar(&o.Sample, "sample", 0, "sample runtime health (heap, GC, goroutines) into the registry every `interval` (e.g. 1s; 0 = off)")
	flag.BoolVar(&o.ProgressOn, "progress", false, "emit JSON progress events (per-era throughput, ETA) on stderr")
	return o
}

// Enabled reports whether any tracing surface is on — the exit report
// (-trace, -v), the trace file (-trace-out), the debug server
// (-listen), or the sampler (-sample, which needs a registry to feed).
func (o *Obs) Enabled() bool {
	return o.TracePath != "" || o.Verbose || o.TraceOut != "" || o.Listen != "" || o.Sample > 0
}

// Start begins the run: creates the root span and registry when
// tracing is enabled, starts the CPU profile, runtime sampler,
// progress stream and debug server when requested. Call after
// flag.Parse. The debug server's address is announced on stderr (with
// -listen=:0 the kernel picks the port, so the line is the only way to
// find it).
func (o *Obs) Start() {
	if o.Enabled() {
		o.Root = obs.Root(o.Tool)
		// A command may pre-seed Registry before Start so a long-lived
		// service (atomd) can register its metrics on the same registry
		// the debug server will scrape.
		if o.Registry == nil {
			o.Registry = obs.NewRegistry()
		}
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			Fatal(o.Tool, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Fatal(o.Tool, err)
		}
		o.cpuFile = f
	}
	if o.ProgressOn {
		o.Progress = obs.NewProgress(os.Stderr, o.Tool)
	}
	o.sampler = obs.StartSampler(o.Registry, o.Sample)
	if o.Listen != "" {
		srv, err := obs.ServeDebugWith(o.Listen, o.Tool, os.Args[1:], o.Root, o.Registry, o.ExtraMux)
		if err != nil {
			Fatal(o.Tool, err)
		}
		o.server = srv
		fmt.Fprintf(os.Stderr, "%s: observability on http://%s/ (metrics, healthz, runreport, debug/pprof)\n",
			o.Tool, srv.Addr)
	}
}

// Finish ends the run: flushes profiles, stops the sampler, closes the
// root span, writes the trace file and the JSON report and/or text
// tree, emits the final progress event, and shuts the debug server
// down. Safe to call when disabled.
func (o *Obs) Finish() {
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		o.cpuFile.Close()
		o.cpuFile = nil
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			Fatal(o.Tool, err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			Fatal(o.Tool, err)
		}
		f.Close()
	}
	o.sampler.Stop() // take the run's final runtime sample off the board
	o.sampler = nil
	if o.Enabled() {
		o.Root.End()
		if o.TraceOut != "" {
			f, err := os.Create(o.TraceOut)
			if err != nil {
				Fatal(o.Tool, err)
			}
			err = obs.WriteTrace(f, o.Root.Report())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				Fatal(o.Tool, err)
			}
		}
		if o.TracePath != "" || o.Verbose {
			report := obs.BuildReport(o.Tool, os.Args[1:], o.Root, o.Registry)
			if o.TracePath != "" {
				f, err := os.Create(o.TracePath)
				if err != nil {
					Fatal(o.Tool, err)
				}
				err = report.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					Fatal(o.Tool, err)
				}
			}
			if o.Verbose {
				report.WriteText(os.Stderr)
			}
		}
	}
	o.Progress.End("run_done")
	o.Progress = nil
	o.server.Close()
	o.server = nil
}

// OnSignal runs fn once when the process receives SIGINT or SIGTERM —
// the graceful-shutdown hook for long-running commands (atomd drains
// its ingest sessions from it). The returned stop function unregisters
// the handler and joins the watcher goroutine; call it before exit so
// no goroutine outlives the command's main (the lifecycle analyzer
// holds cli to that).
func OnSignal(fn func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := <-ch; ok {
			fn()
		}
	}()
	return func() {
		signal.Stop(ch) // no sends after Stop returns, so close is safe
		close(ch)
		<-done
	}
}
