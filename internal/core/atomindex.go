// Incremental atom maintenance: AtomIndex holds the atom partition of
// one snapshot and re-buckets a single prefix row in O(row) when an
// update touches it, instead of recomputing every atom from scratch.
// This is the delta engine behind `atomize -replay` and the streaming
// north star: an UPDATE for prefix p re-hashes p's row, moves p between
// atom buckets, and creates or retires atoms at first/last membership —
// nothing else is touched.
//
// # Bucket invariants
//
// The index mirrors the batch grouping's hash design (hash → chain of
// distinct vectors, equality always verified on the raw rows, so
// results never depend on hash quality) but makes it mutable:
//
//   - every live atom has count ≥ 1 and sits in exactly one bucket
//     chain, the one keyed by the hash of its vector;
//   - an atom's vector is the row of any of its members (all equal by
//     construction); membership is a doubly-linked list over prefix
//     indices, so detaching a member is O(1) and the head member is
//     always a valid representative;
//   - a prefix belongs to exactly one atom (byPrefix), including
//     all-empty rows — the paper's invisible prefixes group into one
//     all-empty atom exactly as batch ComputeAtoms groups them;
//   - retired atom IDs and their storage recycle through a free list,
//     so the steady churn path allocates nothing.
//
// # Retirement rules
//
// Detaching the last member retires the atom: it is unlinked from its
// bucket chain (the map key is deleted when the chain empties) and its
// ID is pushed on the free list. A later creation pops the free list
// before growing the atom table, so the arena footprint is bounded by
// the high-water atom count, not by churn volume.
//
// # Determinism
//
// Internal atom IDs depend on application order (creation order with
// free-list reuse). Materialize renumbers them by first occurrence in
// prefix order — the batch numbering — so two indexes that went
// through different histories to the same matrix materialize byte-
// identical AtomSets, and replaying a deterministic element stream
// (bgpstream serves byte-identical order at any worker count) yields a
// byte-identical result at any worker count.
package core

import (
	"hash/maphash"

	"repro/internal/aspath"
)

// atomRec is one live (or free) atom in the index.
type atomRec struct {
	hash  uint64 // hash of the vector, keys the bucket chain
	chain int32  // next atom in the same bucket chain, -1 terminates
	head  int32  // first member prefix index (-1 when free)
	count int32  // live members
}

// DeltaStats counts what a stream of ApplyUpdate calls did.
type DeltaStats struct {
	Updates int // ApplyUpdate calls, including no-ops
	NoOps   int // route already had the given ID: nothing changed
	Applied int // row actually re-bucketed
	Created int // atoms minted (first membership of a new vector)
	Retired int // atoms retired (last member left)
}

// Delta describes what one ApplyUpdate did.
type Delta struct {
	Old, New aspath.ID
	// NoOp: the cell already held New; counters did not flap.
	NoOp bool
	// Created: the prefix's new vector had no atom, one was minted.
	Created bool
	// Retired: the prefix was its old atom's last member.
	Retired bool
}

// AtomIndex is the incremental atom-maintenance engine over one
// snapshot. Build it with NewAtomIndex, mutate the snapshot only
// through ApplyUpdate, and read the partition back with Materialize
// (or AtomCount / SameAtom for point queries). Not safe for concurrent
// use: deltas apply in serve order, which is what makes replay
// deterministic.
type AtomIndex struct {
	snap    *Snapshot
	stride  int
	buckets map[uint64]int32 // vector hash → chain head atom
	atoms   []atomRec        // indexed by internal atom ID
	free    []int32          // retired IDs, reused before growing atoms
	// byPrefix[p] is p's atom; next/prev link the members of each atom
	// into a doubly-linked list (-1 terminates) so detach is O(1) and an
	// atom's head member is always a usable representative row.
	byPrefix []int32
	next     []int32
	prev     []int32
	live     int
	buf      []byte // row-encode scratch for hashing
	stats    DeltaStats
	// testHash, when non-nil, replaces the row hash — tests use it to
	// force bucket collisions. Nil in production.
	testHash func(row []aspath.ID) uint64
}

// NewAtomIndex builds the index for the snapshot's current matrix.
// Cost is one batch grouping: O(prefixes × VPs). The index owns the
// partition from here on; mutate routes only via ApplyUpdate.
func NewAtomIndex(s *Snapshot) *AtomIndex {
	return newAtomIndexHash(s, nil)
}

// newAtomIndexHash is NewAtomIndex with a hash override (test seam for
// forced bucket collisions).
func newAtomIndexHash(s *Snapshot, h func(row []aspath.ID) uint64) *AtomIndex {
	n := len(s.Prefixes)
	ix := &AtomIndex{
		snap:     s,
		stride:   len(s.VPs),
		buckets:  make(map[uint64]int32, n/2+1),
		atoms:    make([]atomRec, 0, n/4+1),
		byPrefix: make([]int32, n),
		next:     make([]int32, n),
		prev:     make([]int32, n),
		buf:      make([]byte, 0, len(s.VPs)*4),
		testHash: h,
	}
	for p := 0; p < n; p++ {
		ix.byPrefix[p] = -1
		ix.rebucket(p)
	}
	return ix
}

// Snapshot returns the snapshot the index maintains. Callers must not
// mutate its routes directly — route changes go through ApplyUpdate.
func (ix *AtomIndex) Snapshot() *Snapshot { return ix.snap }

// AtomCount returns the number of live atoms.
func (ix *AtomIndex) AtomCount() int { return ix.live }

// Stats returns the cumulative delta counters.
func (ix *AtomIndex) Stats() DeltaStats { return ix.stats }

// SameAtom reports whether prefixes p and q currently share an atom.
func (ix *AtomIndex) SameAtom(p, q int) bool {
	return ix.byPrefix[p] == ix.byPrefix[q]
}

// MemberCount returns the size of prefix p's atom.
func (ix *AtomIndex) MemberCount(p int) int {
	return int(ix.atoms[ix.byPrefix[p]].count)
}

// ApplyUpdate is the delta kernel: route (prefix p, VP v) becomes id,
// and only p's row is re-bucketed — hash the updated row, move p
// between atom buckets, mint or retire atoms at first/last membership.
// O(row) per call; the steady path (warm free lists, no map growth) is
// allocation-free, pinned by TestApplyUpdateSteadyStateAllocs.
//
// A duplicate update (the cell already holds id) is a guaranteed
// no-op: no allocation, no counter flap, no bucket movement.
//
//atomlint:hotpath
func (ix *AtomIndex) ApplyUpdate(p, v int, id aspath.ID) Delta {
	ix.stats.Updates++
	old := ix.snap.RouteID(p, v)
	if old == id {
		ix.stats.NoOps++
		return Delta{Old: old, New: id, NoOp: true}
	}
	// Detach p before the row mutates: bucket lookups compare against
	// member rows, so no atom may claim p while its row is in flux.
	retired := ix.detach(p)
	ix.snap.SetRouteID(p, v, id)
	created := ix.rebucket(p)
	ix.stats.Applied++
	return Delta{Old: old, New: id, Created: created, Retired: retired}
}

// rowHash hashes prefix p's current row (the batch grouping's encoding
// and seed, so index and batch agree on bucket keys).
//
//atomlint:hotpath
func (ix *AtomIndex) rowHash(row []aspath.ID) uint64 {
	if ix.testHash != nil {
		return ix.testHash(row)
	}
	ix.buf = rowBytes(ix.buf, row)
	return maphash.Bytes(atomSeed, ix.buf)
}

// detach removes p from its atom, retiring the atom when p was the
// last member. Reports whether a retirement happened.
//
//atomlint:hotpath
func (ix *AtomIndex) detach(p int) bool {
	a := ix.byPrefix[p]
	rec := &ix.atoms[a]
	nx, pv := ix.next[p], ix.prev[p]
	if pv >= 0 {
		ix.next[pv] = nx
	} else {
		rec.head = nx
	}
	if nx >= 0 {
		ix.prev[nx] = pv
	}
	rec.count--
	ix.byPrefix[p] = -1
	if rec.count > 0 {
		return false
	}
	ix.unlink(a, rec)
	rec.head = -1
	ix.free = append(ix.free, a)
	ix.live--
	ix.stats.Retired++
	return true
}

// unlink removes atom a from its bucket chain — the bucket-move half
// of retirement. The map key is deleted when the chain empties so the
// bucket table tracks live vectors, not historical ones.
//
//atomlint:hotpath
func (ix *AtomIndex) unlink(a int32, rec *atomRec) {
	head := ix.buckets[rec.hash]
	if head == a {
		if rec.chain < 0 {
			delete(ix.buckets, rec.hash)
		} else {
			ix.buckets[rec.hash] = rec.chain
		}
		return
	}
	// Hash collisions chain; chains are almost always length 1, so this
	// walk is O(1) expected and bounded by the collision count.
	for c := head; c >= 0; c = ix.atoms[c].chain {
		if ix.atoms[c].chain == a {
			ix.atoms[c].chain = rec.chain
			return
		}
	}
}

// rebucket files detached prefix p under the atom matching its current
// row, creating the atom if the vector is new. Reports whether an atom
// was created. Equality is verified on the raw rows (against the
// candidate atom's head member), never on the hash alone.
//
//atomlint:hotpath
func (ix *AtomIndex) rebucket(p int) bool {
	row := ix.snap.Row(p)
	hv := ix.rowHash(row)
	head, ok := ix.buckets[hv]
	if ok {
		for c := head; c >= 0; c = ix.atoms[c].chain {
			rec := &ix.atoms[c]
			if rowsEqual(ix.snap.Row(int(rec.head)), row) {
				// Push p onto the member list; head stays a stable
				// representative unless it detaches.
				ix.next[p] = rec.head
				ix.prev[rec.head] = int32(p)
				ix.prev[p] = -1
				rec.head = int32(p)
				rec.count++
				ix.byPrefix[p] = c
				return false
			}
		}
	} else {
		head = -1
	}
	a := ix.newAtom()
	ix.atoms[a] = atomRec{hash: hv, chain: head, head: int32(p), count: 1}
	ix.buckets[hv] = a
	ix.next[p] = -1
	ix.prev[p] = -1
	ix.byPrefix[p] = a
	ix.live++
	ix.stats.Created++
	return true
}

// newAtom returns a free atom ID, popping the free list before growing
// the table — churn reuses retired slots, so the atoms slice is bounded
// by the high-water live count.
func (ix *AtomIndex) newAtom() int32 {
	if n := len(ix.free); n > 0 {
		a := ix.free[n-1]
		ix.free = ix.free[:n-1]
		return a
	}
	ix.atoms = append(ix.atoms, atomRec{})
	return int32(len(ix.atoms) - 1)
}

// Partition is a point-in-time copy of an index's atom partition with
// canonical atom numbering — first occurrence in prefix order, the
// batch ComputeAtoms numbering, so partitions taken from different
// update histories over the same matrix are byte-identical. It shares
// no storage with the index: the atomd epoch seam publishes one behind
// an atomic pointer and lets concurrent readers index it while the
// index keeps mutating.
type Partition struct {
	// ByPrefix maps prefix row → canonical atom ID.
	ByPrefix []int32
	// Counts maps canonical atom ID → member count.
	Counts []int32
}

// Partition snapshots the current partition under canonical numbering
// without materializing vectors or member lists — O(prefixes), the
// cheap core of Materialize. remap is optional scratch carried between
// calls (grown as needed); the second return value hands it back.
func (ix *AtomIndex) Partition(remap []int32) (*Partition, []int32) {
	if cap(remap) < len(ix.atoms) {
		remap = make([]int32, len(ix.atoms))
	}
	remap = remap[:len(ix.atoms)]
	for i := range remap {
		remap[i] = -1
	}
	n := len(ix.snap.Prefixes)
	part := &Partition{
		ByPrefix: make([]int32, n),
		Counts:   make([]int32, 0, ix.live),
	}
	for p := 0; p < n; p++ {
		a := ix.byPrefix[p]
		c := remap[a]
		if c < 0 {
			c = int32(len(part.Counts))
			remap[a] = c
			part.Counts = append(part.Counts, ix.atoms[a].count)
		}
		part.ByPrefix[p] = c
	}
	return part, remap
}

// Materialize builds the AtomSet for the current matrix from the
// maintained partition — no rehashing, no regrouping. Atom IDs are
// renumbered by first occurrence in prefix order, exactly the batch
// numbering, so Materialize after any update history equals
// ComputeAtoms on the same matrix byte for byte (the differential
// harness pins this). workers bounds the origin-computation fan-out,
// as in ComputeAtomsWorkers.
func (ix *AtomIndex) Materialize(workers int) *AtomSet {
	n := len(ix.snap.Prefixes)
	as := &AtomSet{Snap: ix.snap, ByPrefix: make([]int, n)}
	remap := make([]int32, len(ix.atoms))
	for i := range remap {
		remap[i] = -1
	}
	reps := make([]int32, 0, ix.live)
	for p := 0; p < n; p++ {
		a := ix.byPrefix[p]
		if remap[a] < 0 {
			remap[a] = int32(len(reps))
			reps = append(reps, int32(p))
		}
		as.ByPrefix[p] = int(remap[a])
	}
	finalizeAtoms(as, reps, workers)
	return as
}
