// Package core implements the paper's primary contribution: policy-atom
// computation. A policy atom is a maximal group of prefixes that share
// the same AS path at every vantage point (Broido & Claffy 2001; Afek
// et al. 2002). The package models a sanitized BGP snapshot as a dense
// (prefix × vantage point) matrix of interned path IDs, groups identical
// rows into atoms by hashing, and derives the general statistics of
// Tables 1 and 4 and the distributions of Figures 2, 8 and 14.
package core

import (
	"fmt"
	"hash/maphash"
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// VP identifies a vantage point: one peer feed at one collector.
type VP struct {
	Collector string
	ASN       uint32
}

// String renders "rrc00/AS3356".
func (v VP) String() string { return fmt.Sprintf("%s/AS%d", v.Collector, v.ASN) }

// Snapshot is a sanitized routing snapshot: for every prefix, the AS
// path observed at every vantage point (aspath.Empty where the prefix
// was missing — the paper's "empty path" convention).
type Snapshot struct {
	Time     uint32
	VPs      []VP
	Prefixes []netip.Prefix
	Paths    *aspath.Table
	// Routes[p][v] is the interned path of prefix p at VP v.
	Routes [][]aspath.ID
}

// NewSnapshot allocates an empty snapshot with the given shape. Routes
// rows are zeroed (all paths empty).
func NewSnapshot(time uint32, vps []VP, prefixes []netip.Prefix) *Snapshot {
	s := &Snapshot{
		Time:     time,
		VPs:      vps,
		Prefixes: prefixes,
		Paths:    aspath.NewTable(),
		Routes:   make([][]aspath.ID, len(prefixes)),
	}
	for i := range s.Routes {
		s.Routes[i] = make([]aspath.ID, len(vps))
	}
	return s
}

// SetRoute interns the path for (prefix index, vp index).
func (s *Snapshot) SetRoute(p, v int, seq aspath.Seq) {
	s.Routes[p][v] = s.Paths.Intern(seq)
}

// Route returns the path sequence at (prefix index, vp index); nil if
// missing.
func (s *Snapshot) Route(p, v int) aspath.Seq {
	return s.Paths.Seq(s.Routes[p][v])
}

// VisibleVPs counts VPs at which prefix p has a non-empty path.
func (s *Snapshot) VisibleVPs(p int) int {
	n := 0
	for _, id := range s.Routes[p] {
		if id != aspath.Empty {
			n++
		}
	}
	return n
}

// Atom is one policy atom.
type Atom struct {
	ID int
	// Prefixes are indices into Snapshot.Prefixes, ascending.
	Prefixes []int
	// Vector is the shared per-VP path vector.
	Vector []aspath.ID
	// Origin is the majority origin AS across the vector's non-empty
	// paths (0 if the atom is invisible everywhere).
	Origin uint32
	// MOASConflict marks vectors whose paths disagree on the origin AS.
	MOASConflict bool
}

// Size returns the number of prefixes.
func (a *Atom) Size() int { return len(a.Prefixes) }

// AtomSet is the result of atom computation over one snapshot.
type AtomSet struct {
	Snap  *Snapshot
	Atoms []Atom
	// ByPrefix maps prefix index → atom ID.
	ByPrefix []int
}

var atomSeed = maphash.MakeSeed()

// ComputeAtoms groups prefixes with identical path vectors. The grouping
// hashes each row and verifies exactly on collision, so results are
// independent of hash quality. Runs in O(prefixes × VPs), sequentially;
// ComputeAtomsWorkers shards the same computation across a worker pool
// with byte-identical output.
func ComputeAtoms(s *Snapshot) *AtomSet { return computeAtomsSeq(s) }

// ComputeAtomsWorkers is ComputeAtoms over a bounded worker pool:
// prefix rows are hashed and pre-grouped in contiguous shards, then
// merged deterministically in shard order. The result — atom IDs,
// member lists, ByPrefix, origins — is identical to the sequential
// computation at any worker count (workers <= 1 runs the sequential
// path; 0 means one worker per CPU).
func ComputeAtomsWorkers(s *Snapshot, workers int) *AtomSet {
	return ComputeAtomsSpanWorkers(s, nil, workers)
}

// ComputeAtomsSpan is ComputeAtoms with stage tracing: when parent is
// non-nil a child span records the wall time, allocation delta, and
// input/output cardinalities (prefixes, VPs, atoms). A nil parent is
// the zero-cost path ComputeAtoms takes.
func ComputeAtomsSpan(s *Snapshot, parent *obs.Span) *AtomSet {
	return ComputeAtomsSpanWorkers(s, parent, 1)
}

// ComputeAtomsSpanWorkers combines stage tracing with the worker pool.
func ComputeAtomsSpanWorkers(s *Snapshot, parent *obs.Span, workers int) *AtomSet {
	workers = parallel.Workers(workers)
	if parent == nil {
		// Skip even the attr boxing: disabled tracing costs nothing.
		return computeAtoms(s, workers)
	}
	sp := parent.Child("core.compute_atoms")
	as := computeAtoms(s, workers)
	sp.SetAttr("prefixes", len(s.Prefixes))
	sp.SetAttr("vps", len(s.VPs))
	sp.SetAttr("atoms", len(as.Atoms))
	sp.SetAttr("workers", workers)
	sp.End()
	return as
}

// shardMinPrefixes gates the sharded path: below this row count the
// merge bookkeeping costs more than the parallelism buys.
const shardMinPrefixes = 2048

func computeAtoms(s *Snapshot, workers int) *AtomSet {
	if workers > 1 && len(s.Prefixes) >= shardMinPrefixes {
		return computeAtomsSharded(s, workers)
	}
	return computeAtomsSeq(s)
}

// rowBytes encodes a route row into buf (reused across rows) as
// big-endian uint32s, so the whole row hashes in one maphash.Bytes
// call instead of one 4-byte Write per vantage point.
func rowBytes(buf []byte, row []aspath.ID) []byte {
	buf = buf[:0]
	for _, id := range row {
		buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return buf
}

func rowsEqual(a, b []aspath.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func computeAtomsSeq(s *Snapshot) *AtomSet {
	type bucket struct {
		rows []int // representative prefix rows, one per distinct vector
		atom []int // parallel: atom index
	}
	as := &AtomSet{Snap: s, ByPrefix: make([]int, len(s.Prefixes))}
	buckets := make(map[uint64]*bucket, len(s.Prefixes))

	buf := make([]byte, 0, 4*len(s.VPs))
	for p := range s.Prefixes {
		row := s.Routes[p]
		buf = rowBytes(buf, row)
		hv := maphash.Bytes(atomSeed, buf)
		bk := buckets[hv]
		if bk == nil {
			bk = &bucket{}
			buckets[hv] = bk
		}
		found := -1
		for i, rep := range bk.rows {
			if rowsEqual(s.Routes[rep], row) {
				found = bk.atom[i]
				break
			}
		}
		if found < 0 {
			found = len(as.Atoms)
			as.Atoms = append(as.Atoms, Atom{ID: found, Vector: row})
			bk.rows = append(bk.rows, p)
			bk.atom = append(bk.atom, found)
		}
		as.Atoms[found].Prefixes = append(as.Atoms[found].Prefixes, p)
		as.ByPrefix[p] = found
	}

	for i := range as.Atoms {
		as.Atoms[i].Origin, as.Atoms[i].MOASConflict = vectorOrigin(s.Paths, as.Atoms[i].Vector)
	}
	return as
}

// shardEntry is one distinct vector found within a shard: its first
// (representative) prefix row and all member prefixes, both ascending
// because the shard scans a contiguous range in order.
type shardEntry struct {
	hash    uint64
	rep     int32
	members []int32
}

// computeAtomsSharded splits the prefix rows into contiguous shards,
// groups each shard independently (per-shard hashing into per-shard
// buckets), and merges the shards in order. The merge order makes the
// result identical to the sequential pass for any shard count: a
// vector's atom ID is its global first-occurrence rank, and contiguous
// in-order shards enumerate first occurrences in exactly that order.
func computeAtomsSharded(s *Snapshot, workers int) *AtomSet {
	n := len(s.Prefixes)
	parts := workers
	if parts > n {
		parts = n
	}
	shards := make([][]shardEntry, parts)
	parallel.ForEach(workers, parts, func(si int) error {
		lo, hi := parallel.ChunkBounds(n, parts, si)
		entries := make([]shardEntry, 0, (hi-lo)/2)
		local := make(map[uint64][]int32, (hi-lo)/2)
		buf := make([]byte, 0, 4*len(s.VPs))
		for p := lo; p < hi; p++ {
			row := s.Routes[p]
			buf = rowBytes(buf, row)
			hv := maphash.Bytes(atomSeed, buf)
			found := int32(-1)
			for _, ei := range local[hv] {
				if rowsEqual(s.Routes[entries[ei].rep], row) {
					found = ei
					break
				}
			}
			if found < 0 {
				found = int32(len(entries))
				entries = append(entries, shardEntry{hash: hv, rep: int32(p)})
				local[hv] = append(local[hv], found)
			}
			entries[found].members = append(entries[found].members, int32(p))
		}
		shards[si] = entries
		return nil
	})

	// Deterministic merge: shards in index order, entries in first-seen
	// order within each shard.
	as := &AtomSet{Snap: s, ByPrefix: make([]int, n)}
	type bucket struct {
		rows []int32
		atom []int32
	}
	buckets := make(map[uint64]*bucket, n)
	for _, entries := range shards {
		for ei := range entries {
			e := &entries[ei]
			bk := buckets[e.hash]
			if bk == nil {
				bk = &bucket{}
				buckets[e.hash] = bk
			}
			found := -1
			for i, rep := range bk.rows {
				if rowsEqual(s.Routes[rep], s.Routes[e.rep]) {
					found = int(bk.atom[i])
					break
				}
			}
			if found < 0 {
				found = len(as.Atoms)
				as.Atoms = append(as.Atoms, Atom{ID: found, Vector: s.Routes[e.rep]})
				bk.rows = append(bk.rows, e.rep)
				bk.atom = append(bk.atom, int32(found))
			}
			a := &as.Atoms[found]
			for _, p := range e.members {
				a.Prefixes = append(a.Prefixes, int(p))
				as.ByPrefix[p] = found
			}
		}
	}

	parallel.Chunks(workers, len(as.Atoms), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			as.Atoms[i].Origin, as.Atoms[i].MOASConflict = vectorOrigin(s.Paths, as.Atoms[i].Vector)
		}
		return nil
	})
	return as
}

// vectorOrigin returns the majority origin across non-empty paths and
// whether distinct origins appear (a MOAS conflict). Origins per vector
// are almost always 1–2, so a linear scan over a small slice beats a
// per-atom map allocation (BenchmarkVectorOrigin measures the delta);
// the slices grow past their stack-friendly capacity only in the rare
// many-origin MOAS case.
func vectorOrigin(tbl *aspath.Table, vec []aspath.ID) (uint32, bool) {
	origins := make([]uint32, 0, 4)
	counts := make([]int, 0, 4)
	for _, id := range vec {
		if id == aspath.Empty {
			continue
		}
		o, ok := tbl.Origin(id)
		if !ok {
			continue
		}
		found := false
		for i, e := range origins {
			if e == o {
				counts[i]++
				found = true
				break
			}
		}
		if !found {
			origins = append(origins, o)
			counts = append(counts, 1)
		}
	}
	if len(origins) == 0 {
		return 0, false
	}
	best, bestN := origins[0], counts[0]
	for i := 1; i < len(origins); i++ {
		if counts[i] > bestN || (counts[i] == bestN && origins[i] < best) {
			best, bestN = origins[i], counts[i]
		}
	}
	return best, len(origins) > 1
}

// ByOrigin groups atom IDs by their origin AS (MOAS-conflicted atoms
// are grouped under their majority origin).
func (as *AtomSet) ByOrigin() map[uint32][]int {
	out := make(map[uint32][]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin == 0 {
			continue
		}
		out[a.Origin] = append(out[a.Origin], a.ID)
	}
	return out
}

// PrefixSet returns the atom's prefixes as values.
func (as *AtomSet) PrefixSet(atomID int) []netip.Prefix {
	a := &as.Atoms[atomID]
	out := make([]netip.Prefix, len(a.Prefixes))
	for i, p := range a.Prefixes {
		out[i] = as.Snap.Prefixes[p]
	}
	return out
}

// GeneralStats are the headline numbers of Tables 1 and 4.
type GeneralStats struct {
	Prefixes          int
	ASes              int
	SingleAtomASes    int
	Atoms             int
	SinglePrefixAtoms int
	MeanAtomSize      float64
	P99AtomSize       int
	LargestAtom       int
	MOASPrefixes      int
}

// Stats computes the general statistics.
func (as *AtomSet) Stats() GeneralStats {
	st := GeneralStats{Prefixes: len(as.Snap.Prefixes), Atoms: len(as.Atoms)}
	atomsPerAS := make(map[uint32]int)
	sizes := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		a := &as.Atoms[i]
		sz := a.Size()
		sizes = append(sizes, sz)
		if sz == 1 {
			st.SinglePrefixAtoms++
		}
		if sz > st.LargestAtom {
			st.LargestAtom = sz
		}
		if a.Origin != 0 {
			atomsPerAS[a.Origin]++
		}
		if a.MOASConflict {
			st.MOASPrefixes += sz
		}
	}
	st.ASes = len(atomsPerAS)
	for _, n := range atomsPerAS {
		if n == 1 {
			st.SingleAtomASes++
		}
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		total := 0
		for _, s := range sizes {
			total += s
		}
		st.MeanAtomSize = float64(total) / float64(len(sizes))
		// Nearest-rank percentile: the smallest size with at least 99%
		// of atoms at or below it, i.e. sizes[ceil(0.99·n)−1]. The rank
		// is always within [1, n], so no bounds guard is needed.
		rank := (len(sizes)*99 + 99) / 100
		st.P99AtomSize = sizes[rank-1]
	}
	return st
}

// AtomsPerASCounts returns, for every origin AS, its atom count —
// the Fig 2 (left) distribution.
func (as *AtomSet) AtomsPerASCounts() []int {
	m := as.ByOrigin()
	out := make([]int, 0, len(m))
	for _, atoms := range m {
		out = append(out, len(atoms))
	}
	sort.Ints(out)
	return out
}

// PrefixesPerAtomCounts returns every atom's size — the Fig 2 (right)
// distribution.
func (as *AtomSet) PrefixesPerAtomCounts() []int {
	out := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		out = append(out, as.Atoms[i].Size())
	}
	sort.Ints(out)
	return out
}

// PrefixesPerASCounts returns, for every origin AS, its distinct prefix
// count (Fig 14's third curve).
func (as *AtomSet) PrefixesPerASCounts() []int {
	m := make(map[uint32]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin != 0 {
			m[a.Origin] += a.Size()
		}
	}
	out := make([]int, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
