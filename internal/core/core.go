// Package core implements the paper's primary contribution: policy-atom
// computation. A policy atom is a maximal group of prefixes that share
// the same AS path at every vantage point (Broido & Claffy 2001; Afek
// et al. 2002). The package models a sanitized BGP snapshot as a dense
// (prefix × vantage point) matrix of interned path IDs, groups identical
// rows into atoms by hashing, and derives the general statistics of
// Tables 1 and 4 and the distributions of Figures 2, 8 and 14.
package core

import (
	"hash/maphash"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/aspath"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// VP identifies a vantage point: one peer feed at one collector.
type VP struct {
	Collector string
	ASN       uint32
}

// String renders "rrc00/AS3356".
func (v VP) String() string {
	return v.Collector + "/AS" + strconv.FormatUint(uint64(v.ASN), 10)
}

// Snapshot is a sanitized routing snapshot: for every prefix, the AS
// path observed at every vantage point (aspath.Empty where the prefix
// was missing — the paper's "empty path" convention).
//
// The route matrix is stored flat: one contiguous prefix-major backing
// array instead of a slice-of-slices, so building a snapshot costs one
// allocation regardless of prefix count and row hashing walks memory
// sequentially. Access goes through Row/RouteID/SetRouteID.
type Snapshot struct {
	Time     uint32
	VPs      []VP
	Prefixes []netip.Prefix
	Paths    *aspath.Table
	// routes is the flat (prefix × VP) matrix: the path of prefix p at
	// VP v lives at routes[p*stride+v], with stride == len(VPs).
	routes []aspath.ID
	stride int
}

// NewSnapshot allocates an empty snapshot with the given shape and a
// fresh interning table. All routes start empty.
func NewSnapshot(time uint32, vps []VP, prefixes []netip.Prefix) *Snapshot {
	return NewSnapshotWith(time, vps, prefixes, aspath.NewTable())
}

// NewSnapshotWith is NewSnapshot sharing an existing interning table —
// the sanitization pipeline's path, which interns feeds long before the
// admitted prefix set (and hence the matrix shape) is known. The whole
// matrix is one backing allocation.
func NewSnapshotWith(time uint32, vps []VP, prefixes []netip.Prefix, paths *aspath.Table) *Snapshot {
	return &Snapshot{
		Time:     time,
		VPs:      vps,
		Prefixes: prefixes,
		Paths:    paths,
		routes:   make([]aspath.ID, len(prefixes)*len(vps)),
		stride:   len(vps),
	}
}

// Row returns prefix p's per-VP path vector — a view into the flat
// backing array (capacity-clipped so appends never bleed into the next
// row). Mutations write through to the snapshot.
//
//atomlint:hotpath
//atomlint:borrowed view into the snapshot's flat route matrix; valid while the snapshot lives
func (s *Snapshot) Row(p int) []aspath.ID {
	lo := p * s.stride
	return s.routes[lo : lo+s.stride : lo+s.stride]
}

// RouteID returns the interned path ID at (prefix index, vp index).
//
//atomlint:hotpath
func (s *Snapshot) RouteID(p, v int) aspath.ID {
	return s.routes[p*s.stride+v]
}

// SetRouteID stores an already-interned path ID at (prefix index, vp
// index).
//
//atomlint:hotpath
func (s *Snapshot) SetRouteID(p, v int, id aspath.ID) {
	s.routes[p*s.stride+v] = id
}

// SetRoute interns the path for (prefix index, vp index).
func (s *Snapshot) SetRoute(p, v int, seq aspath.Seq) {
	s.SetRouteID(p, v, s.Paths.Intern(seq))
}

// Route returns the path sequence at (prefix index, vp index); nil if
// missing.
//
//atomlint:borrowed aliases the intern table's arena via Paths.Seq
func (s *Snapshot) Route(p, v int) aspath.Seq {
	return s.Paths.Seq(s.RouteID(p, v))
}

// VisibleVPs counts VPs at which prefix p has a non-empty path.
func (s *Snapshot) VisibleVPs(p int) int {
	n := 0
	for _, id := range s.Row(p) {
		if id != aspath.Empty {
			n++
		}
	}
	return n
}

// Atom is one policy atom.
type Atom struct {
	ID int
	// Prefixes are indices into Snapshot.Prefixes, ascending.
	Prefixes []int
	// Vector is the shared per-VP path vector.
	Vector []aspath.ID
	// Origin is the majority origin AS across the vector's non-empty
	// paths (0 if the atom is invisible everywhere).
	Origin uint32
	// MOASConflict marks vectors whose paths disagree on the origin AS.
	MOASConflict bool
}

// Size returns the number of prefixes.
func (a *Atom) Size() int { return len(a.Prefixes) }

// AtomSet is the result of atom computation over one snapshot.
type AtomSet struct {
	Snap  *Snapshot
	Atoms []Atom
	// ByPrefix maps prefix index → atom ID.
	ByPrefix []int
}

var atomSeed = maphash.MakeSeed()

// ComputeAtoms groups prefixes with identical path vectors. The grouping
// hashes each row and verifies exactly on collision, so results are
// independent of hash quality. Runs in O(prefixes × VPs), sequentially;
// ComputeAtomsWorkers shards the same computation across a worker pool
// with byte-identical output.
func ComputeAtoms(s *Snapshot) *AtomSet { return computeAtomsSeq(s) }

// ComputeAtomsWorkers is ComputeAtoms over a bounded worker pool:
// prefix rows are hashed and pre-grouped in contiguous shards, then
// merged deterministically in shard order. The result — atom IDs,
// member lists, ByPrefix, origins — is identical to the sequential
// computation at any worker count (workers <= 1 runs the sequential
// path; 0 means one worker per CPU). shardParts calibrates the actual
// shard count to the snapshot size and the schedulable CPUs, so asking
// for more workers than the hardware can run never costs anything.
func ComputeAtomsWorkers(s *Snapshot, workers int) *AtomSet {
	return ComputeAtomsSpanWorkers(s, nil, workers)
}

// ComputeAtomsSpan is ComputeAtoms with stage tracing: when parent is
// non-nil a child span records the wall time, allocation delta, and
// input/output cardinalities (prefixes, VPs, atoms). A nil parent is
// the zero-cost path ComputeAtoms takes.
func ComputeAtomsSpan(s *Snapshot, parent *obs.Span) *AtomSet {
	return ComputeAtomsSpanWorkers(s, parent, 1)
}

// ComputeAtomsSpanWorkers combines stage tracing with the worker pool.
func ComputeAtomsSpanWorkers(s *Snapshot, parent *obs.Span, workers int) *AtomSet {
	workers = parallel.Workers(workers)
	if parent == nil {
		// Skip even the attr boxing: disabled tracing costs nothing.
		return computeAtoms(s, workers)
	}
	sp := parent.Child("core.compute_atoms")
	as := computeAtoms(s, workers)
	sp.SetAttr("prefixes", len(s.Prefixes))
	sp.SetAttr("vps", len(s.VPs))
	sp.SetAttr("atoms", len(as.Atoms))
	sp.SetAttr("workers", workers)
	sp.End()
	return as
}

// shardMinPrefixes gates the sharded path: below this row count the
// merge bookkeeping costs more than the parallelism buys.
const shardMinPrefixes = 2048

// shardMinRows is the floor on rows per shard: splitting finer than
// this makes the per-shard group tables (and the merge that re-unifies
// them) cost more than the parallel hashing saves.
const shardMinRows = shardMinPrefixes / 2

// shardParts calibrates the shard count for n prefix rows: never more
// shards than requested workers, than schedulable CPUs (on a one-core
// host the shards would time-slice a single CPU and only add merge
// overhead, so the sequential path is strictly better), and never so
// fine that a shard falls below shardMinRows. A result ≤ 1 means
// "don't shard".
func shardParts(n, workers int) int {
	parts := workers
	if g := runtime.GOMAXPROCS(0); parts > g {
		parts = g
	}
	if m := n / shardMinRows; parts > m {
		parts = m
	}
	return parts
}

func computeAtoms(s *Snapshot, workers int) *AtomSet {
	if parts := shardParts(len(s.Prefixes), workers); parts > 1 {
		return computeAtomsSharded(s, workers, parts)
	}
	return computeAtomsSeq(s)
}

// rowBytes encodes a route row into buf (reused across rows) as
// big-endian uint32s, so the whole row hashes in one maphash.Bytes
// call instead of one 4-byte Write per vantage point.
func rowBytes(buf []byte, row []aspath.ID) []byte {
	buf = buf[:0]
	for _, id := range row {
		buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return buf
}

func rowsEqual(a, b []aspath.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// groupNode is one distinct vector in a groupScratch index: its first
// (representative) prefix row, the atom it was assigned, and the next
// node sharing the same row hash (hash collisions chain; equality is
// always verified with rowsEqual, so results never depend on hash
// quality).
type groupNode struct {
	rep  int32
	atom int32
	next int32 // index of the next node in the chain, -1 terminates
}

// groupScratch is the reusable grouping state: the hash → node-chain
// index, the row-encoding buffer, and the sharded path's per-shard
// entry slices. Instances recycle through groupPool so the steady
// state of a longitudinal run (hundreds of snapshots) re-uses warm
// maps and slices instead of re-growing them per snapshot.
type groupScratch struct {
	m      map[uint64]int32 // row hash → head node index
	nodes  []groupNode
	buf    []byte  // rowBytes encoding buffer
	reps   []int32 // representative row per atom/entry, first-seen order
	hashes []uint64
	local  []int32 // sharded: per-row local entry index
	atoms  []int32 // sharded merge: local entry → global atom
}

var groupPool = sync.Pool{
	New: func() any { return &groupScratch{m: make(map[uint64]int32, 1024)} },
}

func getGroupScratch() *groupScratch {
	g := groupPool.Get().(*groupScratch)
	clear(g.m)
	g.nodes = g.nodes[:0]
	g.reps = g.reps[:0]
	g.hashes = g.hashes[:0]
	return g
}

// findOrAdd returns the index (atom or shard-local entry) of row, whose
// hash is hv, adding a new node bound to next when the vector is new.
func (g *groupScratch) findOrAdd(s *Snapshot, hv uint64, row []aspath.ID, rep, next int32) (idx int32, added bool) {
	head, ok := g.m[hv]
	if ok {
		for ni := head; ni >= 0; ni = g.nodes[ni].next {
			n := &g.nodes[ni]
			if rowsEqual(s.Row(int(n.rep)), row) {
				return n.atom, false
			}
		}
	} else {
		head = -1
	}
	g.nodes = append(g.nodes, groupNode{rep: rep, atom: next, next: head})
	g.m[hv] = int32(len(g.nodes) - 1)
	return next, true
}

// finalizeAtoms builds the Atoms slice once ByPrefix is fully assigned:
// reps lists each atom's representative row in ID order, so vectors are
// views into the flat matrix, and member lists are carved out of one
// shared backing array by counting sort on atom ID (which preserves the
// ascending prefix order the sequential pass produced). Only the
// returned structures allocate; everything else lives in pooled
// scratch.
func finalizeAtoms(as *AtomSet, reps []int32, workers int) {
	s := as.Snap
	nAtoms := len(reps)
	as.Atoms = make([]Atom, nAtoms)
	starts := make([]int32, nAtoms+1)
	for _, a := range as.ByPrefix {
		starts[a+1]++
	}
	for i := 1; i <= nAtoms; i++ {
		starts[i] += starts[i-1]
	}
	backing := make([]int, len(as.ByPrefix))
	fill := append([]int32(nil), starts[:nAtoms]...)
	for p, a := range as.ByPrefix {
		backing[fill[a]] = p
		fill[a]++
	}
	for i := range as.Atoms {
		lo, hi := starts[i], starts[i+1]
		// Atom.Vector aliases the snapshot's route matrix; AtomSet.Snap
		// pins that snapshot, so the view lives exactly as long as the
		// atoms that reference it.
		//atomlint:owned AtomSet.Snap pins the snapshot backing these row views
		as.Atoms[i] = Atom{
			ID:       i,
			Prefixes: backing[lo:hi:hi],
			Vector:   s.Row(int(reps[i])),
		}
	}
	parallel.Chunks(workers, nAtoms, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			as.Atoms[i].Origin, as.Atoms[i].MOASConflict = vectorOrigin(s.Paths, as.Atoms[i].Vector)
		}
		return nil
	})
}

func computeAtomsSeq(s *Snapshot) *AtomSet {
	n := len(s.Prefixes)
	as := &AtomSet{Snap: s, ByPrefix: make([]int, n)}
	g := getGroupScratch()
	defer groupPool.Put(g)

	for p := 0; p < n; p++ {
		row := s.Row(p)
		g.buf = rowBytes(g.buf, row)
		hv := maphash.Bytes(atomSeed, g.buf)
		atom, added := g.findOrAdd(s, hv, row, int32(p), int32(len(g.reps)))
		if added {
			g.reps = append(g.reps, int32(p))
		}
		as.ByPrefix[p] = int(atom)
	}
	finalizeAtoms(as, g.reps, 1)
	return as
}

// computeAtomsSharded splits the prefix rows into parts contiguous
// shards, groups each shard independently (per-shard hashing into a
// per-shard pooled index), and merges the shards in order. The merge
// order makes the result identical to the sequential pass for any
// shard count: a vector's atom ID is its global first-occurrence rank,
// and contiguous in-order shards enumerate first occurrences in
// exactly that order. Row hashes computed in the shards are reused by
// the merge, and shard members are never materialized — the merge
// rewrites each shard's per-row local entry indices into global atom
// IDs, and finalizeAtoms carves the member lists.
func computeAtomsSharded(s *Snapshot, workers, parts int) *AtomSet {
	n := len(s.Prefixes)
	if parts > n {
		parts = n
	}
	as := &AtomSet{Snap: s, ByPrefix: make([]int, n)}
	shards := make([]*groupScratch, parts)
	parallel.ForEach(workers, parts, func(si int) error {
		lo, hi := parallel.ChunkBounds(n, parts, si)
		g := getGroupScratch()
		if cap(g.local) < hi-lo {
			g.local = make([]int32, hi-lo)
		}
		g.local = g.local[:hi-lo]
		for p := lo; p < hi; p++ {
			row := s.Row(p)
			g.buf = rowBytes(g.buf, row)
			hv := maphash.Bytes(atomSeed, g.buf)
			ei, added := g.findOrAdd(s, hv, row, int32(p), int32(len(g.reps)))
			if added {
				g.reps = append(g.reps, int32(p))
				g.hashes = append(g.hashes, hv)
			}
			g.local[p-lo] = ei
		}
		shards[si] = g
		return nil
	})

	// Deterministic merge: shards in index order, entries in first-seen
	// order within each shard.
	mg := getGroupScratch()
	defer groupPool.Put(mg)
	for si, g := range shards {
		lo, _ := parallel.ChunkBounds(n, parts, si)
		if cap(g.atoms) < len(g.reps) {
			g.atoms = make([]int32, len(g.reps))
		}
		g.atoms = g.atoms[:len(g.reps)]
		for ei, rep := range g.reps {
			atom, added := mg.findOrAdd(s, g.hashes[ei], s.Row(int(rep)), rep, int32(len(mg.reps)))
			if added {
				mg.reps = append(mg.reps, rep)
			}
			g.atoms[ei] = atom
		}
		for i, ei := range g.local {
			as.ByPrefix[lo+i] = int(g.atoms[ei])
		}
		groupPool.Put(g)
	}
	finalizeAtoms(as, mg.reps, workers)
	return as
}

// vectorOrigin returns the majority origin across non-empty paths and
// whether distinct origins appear (a MOAS conflict). Origins per vector
// are almost always 1–2, so a linear scan over a small slice beats a
// per-atom map allocation (BenchmarkVectorOrigin measures the delta);
// the slices grow past their stack-friendly capacity only in the rare
// many-origin MOAS case.
func vectorOrigin(tbl *aspath.Table, vec []aspath.ID) (uint32, bool) {
	origins := make([]uint32, 0, 4)
	counts := make([]int, 0, 4)
	for _, id := range vec {
		if id == aspath.Empty {
			continue
		}
		o, ok := tbl.Origin(id)
		if !ok {
			continue
		}
		found := false
		for i, e := range origins {
			if e == o {
				counts[i]++
				found = true
				break
			}
		}
		if !found {
			origins = append(origins, o)
			counts = append(counts, 1)
		}
	}
	if len(origins) == 0 {
		return 0, false
	}
	best, bestN := origins[0], counts[0]
	for i := 1; i < len(origins); i++ {
		if counts[i] > bestN || (counts[i] == bestN && origins[i] < best) {
			best, bestN = origins[i], counts[i]
		}
	}
	return best, len(origins) > 1
}

// ByOrigin groups atom IDs by their origin AS (MOAS-conflicted atoms
// are grouped under their majority origin).
func (as *AtomSet) ByOrigin() map[uint32][]int {
	out := make(map[uint32][]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin == 0 {
			continue
		}
		out[a.Origin] = append(out[a.Origin], a.ID)
	}
	return out
}

// PrefixSet returns the atom's prefixes as values.
func (as *AtomSet) PrefixSet(atomID int) []netip.Prefix {
	a := &as.Atoms[atomID]
	out := make([]netip.Prefix, len(a.Prefixes))
	for i, p := range a.Prefixes {
		out[i] = as.Snap.Prefixes[p]
	}
	return out
}

// GeneralStats are the headline numbers of Tables 1 and 4.
type GeneralStats struct {
	Prefixes          int
	ASes              int
	SingleAtomASes    int
	Atoms             int
	SinglePrefixAtoms int
	MeanAtomSize      float64
	P99AtomSize       int
	LargestAtom       int
	MOASPrefixes      int
}

// Stats computes the general statistics.
func (as *AtomSet) Stats() GeneralStats {
	st := GeneralStats{Prefixes: len(as.Snap.Prefixes), Atoms: len(as.Atoms)}
	atomsPerAS := make(map[uint32]int)
	sizes := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		a := &as.Atoms[i]
		sz := a.Size()
		sizes = append(sizes, sz)
		if sz == 1 {
			st.SinglePrefixAtoms++
		}
		if sz > st.LargestAtom {
			st.LargestAtom = sz
		}
		if a.Origin != 0 {
			atomsPerAS[a.Origin]++
		}
		if a.MOASConflict {
			st.MOASPrefixes += sz
		}
	}
	st.ASes = len(atomsPerAS)
	for _, n := range atomsPerAS {
		if n == 1 {
			st.SingleAtomASes++
		}
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		total := 0
		for _, s := range sizes {
			total += s
		}
		st.MeanAtomSize = float64(total) / float64(len(sizes))
		// Nearest-rank percentile: the smallest size with at least 99%
		// of atoms at or below it, i.e. sizes[ceil(0.99·n)−1]. The rank
		// is always within [1, n], so no bounds guard is needed.
		rank := (len(sizes)*99 + 99) / 100
		st.P99AtomSize = sizes[rank-1]
	}
	return st
}

// AtomsPerASCounts returns, for every origin AS, its atom count —
// the Fig 2 (left) distribution.
func (as *AtomSet) AtomsPerASCounts() []int {
	m := as.ByOrigin()
	out := make([]int, 0, len(m))
	for _, atoms := range m {
		out = append(out, len(atoms))
	}
	sort.Ints(out)
	return out
}

// PrefixesPerAtomCounts returns every atom's size — the Fig 2 (right)
// distribution.
func (as *AtomSet) PrefixesPerAtomCounts() []int {
	out := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		out = append(out, as.Atoms[i].Size())
	}
	sort.Ints(out)
	return out
}

// PrefixesPerASCounts returns, for every origin AS, its distinct prefix
// count (Fig 14's third curve).
func (as *AtomSet) PrefixesPerASCounts() []int {
	m := make(map[uint32]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin != 0 {
			m[a.Origin] += a.Size()
		}
	}
	out := make([]int, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
