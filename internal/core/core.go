// Package core implements the paper's primary contribution: policy-atom
// computation. A policy atom is a maximal group of prefixes that share
// the same AS path at every vantage point (Broido & Claffy 2001; Afek
// et al. 2002). The package models a sanitized BGP snapshot as a dense
// (prefix × vantage point) matrix of interned path IDs, groups identical
// rows into atoms by hashing, and derives the general statistics of
// Tables 1 and 4 and the distributions of Figures 2, 8 and 14.
package core

import (
	"fmt"
	"hash/maphash"
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/obs"
)

// VP identifies a vantage point: one peer feed at one collector.
type VP struct {
	Collector string
	ASN       uint32
}

// String renders "rrc00/AS3356".
func (v VP) String() string { return fmt.Sprintf("%s/AS%d", v.Collector, v.ASN) }

// Snapshot is a sanitized routing snapshot: for every prefix, the AS
// path observed at every vantage point (aspath.Empty where the prefix
// was missing — the paper's "empty path" convention).
type Snapshot struct {
	Time     uint32
	VPs      []VP
	Prefixes []netip.Prefix
	Paths    *aspath.Table
	// Routes[p][v] is the interned path of prefix p at VP v.
	Routes [][]aspath.ID
}

// NewSnapshot allocates an empty snapshot with the given shape. Routes
// rows are zeroed (all paths empty).
func NewSnapshot(time uint32, vps []VP, prefixes []netip.Prefix) *Snapshot {
	s := &Snapshot{
		Time:     time,
		VPs:      vps,
		Prefixes: prefixes,
		Paths:    aspath.NewTable(),
		Routes:   make([][]aspath.ID, len(prefixes)),
	}
	for i := range s.Routes {
		s.Routes[i] = make([]aspath.ID, len(vps))
	}
	return s
}

// SetRoute interns the path for (prefix index, vp index).
func (s *Snapshot) SetRoute(p, v int, seq aspath.Seq) {
	s.Routes[p][v] = s.Paths.Intern(seq)
}

// Route returns the path sequence at (prefix index, vp index); nil if
// missing.
func (s *Snapshot) Route(p, v int) aspath.Seq {
	return s.Paths.Seq(s.Routes[p][v])
}

// VisibleVPs counts VPs at which prefix p has a non-empty path.
func (s *Snapshot) VisibleVPs(p int) int {
	n := 0
	for _, id := range s.Routes[p] {
		if id != aspath.Empty {
			n++
		}
	}
	return n
}

// Atom is one policy atom.
type Atom struct {
	ID int
	// Prefixes are indices into Snapshot.Prefixes, ascending.
	Prefixes []int
	// Vector is the shared per-VP path vector.
	Vector []aspath.ID
	// Origin is the majority origin AS across the vector's non-empty
	// paths (0 if the atom is invisible everywhere).
	Origin uint32
	// MOASConflict marks vectors whose paths disagree on the origin AS.
	MOASConflict bool
}

// Size returns the number of prefixes.
func (a *Atom) Size() int { return len(a.Prefixes) }

// AtomSet is the result of atom computation over one snapshot.
type AtomSet struct {
	Snap  *Snapshot
	Atoms []Atom
	// ByPrefix maps prefix index → atom ID.
	ByPrefix []int
}

var atomSeed = maphash.MakeSeed()

// ComputeAtoms groups prefixes with identical path vectors. The grouping
// hashes each row and verifies exactly on collision, so results are
// independent of hash quality. Runs in O(prefixes × VPs).
func ComputeAtoms(s *Snapshot) *AtomSet { return ComputeAtomsSpan(s, nil) }

// ComputeAtomsSpan is ComputeAtoms with stage tracing: when parent is
// non-nil a child span records the wall time, allocation delta, and
// input/output cardinalities (prefixes, VPs, atoms). A nil parent is
// the zero-cost path ComputeAtoms takes.
func ComputeAtomsSpan(s *Snapshot, parent *obs.Span) *AtomSet {
	if parent == nil {
		// Skip even the attr boxing: disabled tracing costs nothing.
		return computeAtoms(s)
	}
	sp := parent.Child("core.compute_atoms")
	as := computeAtoms(s)
	sp.SetAttr("prefixes", len(s.Prefixes))
	sp.SetAttr("vps", len(s.VPs))
	sp.SetAttr("atoms", len(as.Atoms))
	sp.End()
	return as
}

func computeAtoms(s *Snapshot) *AtomSet {
	type bucket struct {
		rows []int // representative prefix rows, one per distinct vector
		atom []int // parallel: atom index
	}
	as := &AtomSet{Snap: s, ByPrefix: make([]int, len(s.Prefixes))}
	buckets := make(map[uint64]*bucket, len(s.Prefixes))

	var h maphash.Hash
	rowHash := func(row []aspath.ID) uint64 {
		h.SetSeed(atomSeed)
		for _, id := range row {
			var b [4]byte
			b[0], b[1], b[2], b[3] = byte(id>>24), byte(id>>16), byte(id>>8), byte(id)
			h.Write(b[:])
		}
		return h.Sum64()
	}
	rowsEqual := func(a, b []aspath.ID) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	for p := range s.Prefixes {
		row := s.Routes[p]
		hv := rowHash(row)
		bk := buckets[hv]
		if bk == nil {
			bk = &bucket{}
			buckets[hv] = bk
		}
		found := -1
		for i, rep := range bk.rows {
			if rowsEqual(s.Routes[rep], row) {
				found = bk.atom[i]
				break
			}
		}
		if found < 0 {
			found = len(as.Atoms)
			as.Atoms = append(as.Atoms, Atom{ID: found, Vector: row})
			bk.rows = append(bk.rows, p)
			bk.atom = append(bk.atom, found)
		}
		as.Atoms[found].Prefixes = append(as.Atoms[found].Prefixes, p)
		as.ByPrefix[p] = found
	}

	for i := range as.Atoms {
		as.Atoms[i].Origin, as.Atoms[i].MOASConflict = vectorOrigin(s.Paths, as.Atoms[i].Vector)
	}
	return as
}

// vectorOrigin returns the majority origin across non-empty paths and
// whether distinct origins appear (a MOAS conflict).
func vectorOrigin(tbl *aspath.Table, vec []aspath.ID) (uint32, bool) {
	counts := make(map[uint32]int, 2)
	for _, id := range vec {
		if id == aspath.Empty {
			continue
		}
		if o, ok := tbl.Origin(id); ok {
			counts[o]++
		}
	}
	if len(counts) == 0 {
		return 0, false
	}
	var best uint32
	bestN := -1
	for o, n := range counts {
		if n > bestN || (n == bestN && o < best) {
			best, bestN = o, n
		}
	}
	return best, len(counts) > 1
}

// ByOrigin groups atom IDs by their origin AS (MOAS-conflicted atoms
// are grouped under their majority origin).
func (as *AtomSet) ByOrigin() map[uint32][]int {
	out := make(map[uint32][]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin == 0 {
			continue
		}
		out[a.Origin] = append(out[a.Origin], a.ID)
	}
	return out
}

// PrefixSet returns the atom's prefixes as values.
func (as *AtomSet) PrefixSet(atomID int) []netip.Prefix {
	a := &as.Atoms[atomID]
	out := make([]netip.Prefix, len(a.Prefixes))
	for i, p := range a.Prefixes {
		out[i] = as.Snap.Prefixes[p]
	}
	return out
}

// GeneralStats are the headline numbers of Tables 1 and 4.
type GeneralStats struct {
	Prefixes          int
	ASes              int
	SingleAtomASes    int
	Atoms             int
	SinglePrefixAtoms int
	MeanAtomSize      float64
	P99AtomSize       int
	LargestAtom       int
	MOASPrefixes      int
}

// Stats computes the general statistics.
func (as *AtomSet) Stats() GeneralStats {
	st := GeneralStats{Prefixes: len(as.Snap.Prefixes), Atoms: len(as.Atoms)}
	atomsPerAS := make(map[uint32]int)
	sizes := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		a := &as.Atoms[i]
		sz := a.Size()
		sizes = append(sizes, sz)
		if sz == 1 {
			st.SinglePrefixAtoms++
		}
		if sz > st.LargestAtom {
			st.LargestAtom = sz
		}
		if a.Origin != 0 {
			atomsPerAS[a.Origin]++
		}
		if a.MOASConflict {
			st.MOASPrefixes += sz
		}
	}
	st.ASes = len(atomsPerAS)
	for _, n := range atomsPerAS {
		if n == 1 {
			st.SingleAtomASes++
		}
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		total := 0
		for _, s := range sizes {
			total += s
		}
		st.MeanAtomSize = float64(total) / float64(len(sizes))
		st.P99AtomSize = sizes[(len(sizes)*99)/100]
		if (len(sizes)*99)/100 >= len(sizes) {
			st.P99AtomSize = sizes[len(sizes)-1]
		}
	}
	return st
}

// AtomsPerASCounts returns, for every origin AS, its atom count —
// the Fig 2 (left) distribution.
func (as *AtomSet) AtomsPerASCounts() []int {
	m := as.ByOrigin()
	out := make([]int, 0, len(m))
	for _, atoms := range m {
		out = append(out, len(atoms))
	}
	sort.Ints(out)
	return out
}

// PrefixesPerAtomCounts returns every atom's size — the Fig 2 (right)
// distribution.
func (as *AtomSet) PrefixesPerAtomCounts() []int {
	out := make([]int, 0, len(as.Atoms))
	for i := range as.Atoms {
		out = append(out, as.Atoms[i].Size())
	}
	sort.Ints(out)
	return out
}

// PrefixesPerASCounts returns, for every origin AS, its distinct prefix
// count (Fig 14's third curve).
func (as *AtomSet) PrefixesPerASCounts() []int {
	m := make(map[uint32]int)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin != 0 {
			m[a.Origin] += a.Size()
		}
	}
	out := make([]int, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
