package core

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/obs"
)

// benchSnapshot builds a snapshot shaped like a small sanitized table:
// nPrefix prefixes × nVP vantage points, with runs of prefixes sharing a
// path vector (so atoms of size >1 exist) and some per-VP variation.
func benchSnapshot(nPrefix, nVP int) *Snapshot {
	vps := make([]VP, nVP)
	for v := range vps {
		vps[v] = VP{Collector: fmt.Sprintf("rrc%02d", v%4), ASN: uint32(3000 + v)}
	}
	prefixes := make([]netip.Prefix, nPrefix)
	for p := range prefixes {
		prefixes[p] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(p >> 8), byte(p), 0}), 24)
	}
	s := NewSnapshot(0, vps, prefixes)
	for p := 0; p < nPrefix; p++ {
		group := p / 7 // ~7-prefix atoms
		for v := 0; v < nVP; v++ {
			if (p+v)%13 == 0 {
				continue // leave some paths empty
			}
			s.SetRoute(p, v, aspath.Seq{uint32(3000 + v), uint32(100 + group%50), uint32(65000 + group)})
		}
	}
	return s
}

// BenchmarkComputeAtoms measures the exported entry point with telemetry
// disabled (nil span) — the path every non-traced run takes.
func BenchmarkComputeAtoms(b *testing.B) {
	s := benchSnapshot(2000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := ComputeAtoms(s); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}

// BenchmarkComputeAtomsBare measures the internal implementation without
// the telemetry wrapper. Comparing against BenchmarkComputeAtoms bounds
// the disabled-telemetry overhead (must stay <2%, per DESIGN.md).
func BenchmarkComputeAtomsBare(b *testing.B) {
	s := benchSnapshot(2000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := computeAtoms(s, 1); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}

// BenchmarkComputeAtomsWorkers measures the sharded grouping at several
// pool sizes on a snapshot large enough to clear shardMinPrefixes.
func BenchmarkComputeAtomsWorkers(b *testing.B) {
	s := benchSnapshot(20000, 50)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if as := ComputeAtomsWorkers(s, w); len(as.Atoms) == 0 {
					b.Fatal("no atoms")
				}
			}
		})
	}
}

// BenchmarkVectorOrigin measures the slice-scan majority-origin kernel
// against BenchmarkVectorOriginMap, the map-based implementation it
// replaced (kept below for the comparison).
func BenchmarkVectorOrigin(b *testing.B) {
	tbl, vec := benchVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o, _ := vectorOrigin(tbl, vec); o == 0 {
			b.Fatal("no origin")
		}
	}
}

func BenchmarkVectorOriginMap(b *testing.B) {
	tbl, vec := benchVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o, _ := vectorOriginMap(tbl, vec); o == 0 {
			b.Fatal("no origin")
		}
	}
}

// benchVector builds a 50-VP vector with two distinct origins (the
// common MOAS-free shape plus one conflicting path).
func benchVector() (*aspath.Table, []aspath.ID) {
	tbl := aspath.NewTable()
	vec := make([]aspath.ID, 50)
	for v := range vec {
		if v%13 == 0 {
			continue // empty path
		}
		origin := uint32(65001)
		if v == 7 {
			origin = 65002
		}
		vec[v] = tbl.Intern(aspath.Seq{uint32(3000 + v), 100, origin})
	}
	return tbl, vec
}

// vectorOriginMap is the pre-optimization implementation, retained only
// as the benchmark baseline for vectorOrigin.
func vectorOriginMap(tbl *aspath.Table, vec []aspath.ID) (uint32, bool) {
	counts := make(map[uint32]int, 2)
	for _, id := range vec {
		if id == aspath.Empty {
			continue
		}
		if o, ok := tbl.Origin(id); ok {
			counts[o]++
		}
	}
	if len(counts) == 0 {
		return 0, false
	}
	var best uint32
	bestN := -1
	for o, n := range counts {
		if n > bestN || (n == bestN && o < best) {
			best, bestN = o, n
		}
	}
	return best, len(counts) > 1
}

// BenchmarkComputeAtomsTraced measures the fully enabled path: a live
// span with memory stats, parented under a root.
func BenchmarkComputeAtomsTraced(b *testing.B) {
	s := benchSnapshot(2000, 50)
	root := obs.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := ComputeAtomsSpan(s, root); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}

// BenchmarkApplyUpdate measures the O(row) delta kernel in steady
// state: an AtomIndex over the BenchmarkComputeAtoms snapshot, churned
// with a deterministic mix of announces (recurring paths), withdrawals,
// and duplicates. After warm-up the free lists and bucket table have
// reached their high-water marks, so the loop is allocation-free —
// compare ns/op here against BenchmarkComputeAtoms for the full-
// recompute-vs-delta ratio the replay path banks on.
func BenchmarkApplyUpdate(b *testing.B) {
	s := benchSnapshot(2000, 50)
	ix := NewAtomIndex(s)
	pool := make([]aspath.ID, 0, 16)
	for i := 0; i < 16; i++ {
		pool = append(pool, s.Paths.Intern(aspath.Seq{uint32(9000 + i), uint32(200 + i%5), uint32(64512 + i)}))
	}
	rnd := churnSeq(99)
	apply := func() {
		p := int(rnd() % uint64(len(s.Prefixes)))
		v := int(rnd() % uint64(len(s.VPs)))
		id := aspath.Empty // withdraw 1 time in 8
		if rnd()%8 != 0 {
			id = pool[rnd()%uint64(len(pool))]
		}
		ix.ApplyUpdate(p, v, id)
	}
	for i := 0; i < 20000; i++ {
		apply() // warm the free lists and bucket table
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply()
	}
	if ix.AtomCount() == 0 {
		b.Fatal("index churned to zero atoms")
	}
}

// BenchmarkComputeAtomsSharded forces the sharded grouping at fixed
// shard counts, bypassing shardParts' hardware gate — the number that
// matters on multi-core hosts, where the dispatcher actually picks this
// path. On a single-CPU host it quantifies the merge overhead the
// GOMAXPROCS gate avoids.
func BenchmarkComputeAtomsSharded(b *testing.B) {
	s := benchSnapshot(20000, 50)
	for _, parts := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if as := computeAtomsSharded(s, parts, parts); len(as.Atoms) == 0 {
					b.Fatal("no atoms")
				}
			}
		})
	}
}
