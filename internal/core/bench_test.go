package core

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/obs"
)

// benchSnapshot builds a snapshot shaped like a small sanitized table:
// nPrefix prefixes × nVP vantage points, with runs of prefixes sharing a
// path vector (so atoms of size >1 exist) and some per-VP variation.
func benchSnapshot(nPrefix, nVP int) *Snapshot {
	vps := make([]VP, nVP)
	for v := range vps {
		vps[v] = VP{Collector: fmt.Sprintf("rrc%02d", v%4), ASN: uint32(3000 + v)}
	}
	prefixes := make([]netip.Prefix, nPrefix)
	for p := range prefixes {
		prefixes[p] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(p >> 8), byte(p), 0}), 24)
	}
	s := NewSnapshot(0, vps, prefixes)
	for p := 0; p < nPrefix; p++ {
		group := p / 7 // ~7-prefix atoms
		for v := 0; v < nVP; v++ {
			if (p+v)%13 == 0 {
				continue // leave some paths empty
			}
			s.SetRoute(p, v, aspath.Seq{uint32(3000 + v), uint32(100 + group%50), uint32(65000 + group)})
		}
	}
	return s
}

// BenchmarkComputeAtoms measures the exported entry point with telemetry
// disabled (nil span) — the path every non-traced run takes.
func BenchmarkComputeAtoms(b *testing.B) {
	s := benchSnapshot(2000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := ComputeAtoms(s); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}

// BenchmarkComputeAtomsBare measures the internal implementation without
// the telemetry wrapper. Comparing against BenchmarkComputeAtoms bounds
// the disabled-telemetry overhead (must stay <2%, per DESIGN.md).
func BenchmarkComputeAtomsBare(b *testing.B) {
	s := benchSnapshot(2000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := computeAtoms(s); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}

// BenchmarkComputeAtomsTraced measures the fully enabled path: a live
// span with memory stats, parented under a root.
func BenchmarkComputeAtomsTraced(b *testing.B) {
	s := benchSnapshot(2000, 50)
	root := obs.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := ComputeAtomsSpan(s, root); len(as.Atoms) == 0 {
			b.Fatal("no atoms")
		}
	}
}
