package core

import (
	"hash/maphash"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/aspath"
)

func snapFrom(t *testing.T, vps int, rows [][]string) *Snapshot {
	t.Helper()
	vpList := make([]VP, vps)
	for i := range vpList {
		vpList[i] = VP{Collector: "rrc00", ASN: uint32(100 + i)}
	}
	prefixes := make([]netip.Prefix, len(rows))
	for i := range rows {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
	}
	s := NewSnapshot(1000, vpList, prefixes)
	for p, row := range rows {
		if len(row) != vps {
			t.Fatalf("row %d has %d entries, want %d", p, len(row), vps)
		}
		for v, str := range row {
			if str == "" {
				continue
			}
			seq, err := aspath.ParseSeq(str)
			if err != nil {
				t.Fatal(err)
			}
			s.SetRoute(p, v, seq)
		}
	}
	return s
}

func TestComputeAtomsGrouping(t *testing.T) {
	// Prefixes 0,1 share vectors; 2 differs at one VP; 3 missing at VP1.
	s := snapFrom(t, 2, [][]string{
		{"100 200 300", "101 200 300"},
		{"100 200 300", "101 200 300"},
		{"100 200 300", "101 201 300"},
		{"100 200 300", ""},
	})
	as := ComputeAtoms(s)
	if len(as.Atoms) != 3 {
		t.Fatalf("atoms = %d, want 3", len(as.Atoms))
	}
	if as.ByPrefix[0] != as.ByPrefix[1] {
		t.Error("prefixes 0,1 should share an atom")
	}
	if as.ByPrefix[2] == as.ByPrefix[0] || as.ByPrefix[3] == as.ByPrefix[0] || as.ByPrefix[2] == as.ByPrefix[3] {
		t.Error("prefixes 2,3 should be singleton atoms")
	}
	for i := range as.Atoms {
		a := &as.Atoms[i]
		if a.Origin != 300 {
			t.Errorf("atom %d origin = %d", i, a.Origin)
		}
		if a.MOASConflict {
			t.Errorf("atom %d flagged MOAS", i)
		}
	}
}

func TestComputeAtomsMOAS(t *testing.T) {
	s := snapFrom(t, 2, [][]string{
		{"100 200 300", "101 200 999"}, // origins disagree: MOAS
		{"100 200 300", "101 200 300"},
	})
	as := ComputeAtoms(s)
	var moas int
	for i := range as.Atoms {
		if as.Atoms[i].MOASConflict {
			moas++
			// Majority tie (1 vs 1): lowest origin wins deterministically.
			if as.Atoms[i].Origin != 300 {
				t.Errorf("tie-broken origin = %d", as.Atoms[i].Origin)
			}
		}
	}
	if moas != 1 {
		t.Errorf("MOAS atoms = %d", moas)
	}
	st := as.Stats()
	if st.MOASPrefixes != 1 {
		t.Errorf("MOAS prefixes = %d", st.MOASPrefixes)
	}
}

func TestComputeAtomsAllEmptyRow(t *testing.T) {
	s := snapFrom(t, 2, [][]string{
		{"", ""},
		{"100 1", "101 1"},
	})
	as := ComputeAtoms(s)
	if len(as.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(as.Atoms))
	}
	invisible := as.Atoms[as.ByPrefix[0]]
	if invisible.Origin != 0 || invisible.MOASConflict {
		t.Errorf("invisible atom origin = %d", invisible.Origin)
	}
	// Stats must not count origin-0 atoms as an AS.
	if st := as.Stats(); st.ASes != 1 {
		t.Errorf("ASes = %d", st.ASes)
	}
}

func TestStats(t *testing.T) {
	// AS 1: two atoms (sizes 2,1); AS 2: one atom (size 1).
	s := snapFrom(t, 1, [][]string{
		{"100 1"},
		{"100 1"},
		{"100 200 1"},
		{"100 2"},
	})
	as := ComputeAtoms(s)
	st := as.Stats()
	if st.Prefixes != 4 || st.Atoms != 3 || st.ASes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.SingleAtomASes != 1 {
		t.Errorf("single-atom ASes = %d", st.SingleAtomASes)
	}
	if st.SinglePrefixAtoms != 2 {
		t.Errorf("single-prefix atoms = %d", st.SinglePrefixAtoms)
	}
	if st.MeanAtomSize < 1.32 || st.MeanAtomSize > 1.34 {
		t.Errorf("mean = %v", st.MeanAtomSize)
	}
	if st.LargestAtom != 2 {
		t.Errorf("largest = %d", st.LargestAtom)
	}
	if st.MOASPrefixes != 0 {
		t.Errorf("MOAS = %d", st.MOASPrefixes)
	}
}

func TestDistributions(t *testing.T) {
	s := snapFrom(t, 1, [][]string{
		{"100 1"},
		{"100 1"},
		{"100 200 1"},
		{"100 2"},
	})
	as := ComputeAtoms(s)
	if got := as.AtomsPerASCounts(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("atoms/AS = %v", got)
	}
	if got := as.PrefixesPerAtomCounts(); len(got) != 3 || got[2] != 2 {
		t.Errorf("prefixes/atom = %v", got)
	}
	if got := as.PrefixesPerASCounts(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("prefixes/AS = %v", got)
	}
}

func TestByOriginAndPrefixSet(t *testing.T) {
	s := snapFrom(t, 1, [][]string{
		{"100 1"},
		{"100 200 1"},
		{"100 2"},
	})
	as := ComputeAtoms(s)
	by := as.ByOrigin()
	if len(by[1]) != 2 || len(by[2]) != 1 {
		t.Errorf("ByOrigin = %v", by)
	}
	ps := as.PrefixSet(as.ByPrefix[0])
	if len(ps) != 1 || ps[0] != s.Prefixes[0] {
		t.Errorf("PrefixSet = %v", ps)
	}
}

func TestVisibleVPs(t *testing.T) {
	s := snapFrom(t, 3, [][]string{
		{"100 1", "", "102 1"},
	})
	if got := s.VisibleVPs(0); got != 2 {
		t.Errorf("VisibleVPs = %d", got)
	}
	if got := s.Route(0, 1); got != nil {
		t.Errorf("missing route = %v", got)
	}
	if got := s.Route(0, 0); !got.Equal(aspath.Seq{100, 1}) {
		t.Errorf("route = %v", got)
	}
}

// TestComputeAtomsProperty checks the partition invariants on random
// snapshots: atoms partition all prefixes; two prefixes share an atom
// iff their route vectors are identical.
func TestComputeAtomsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		nVP := 1 + r.Intn(5)
		nPfx := 1 + r.Intn(60)
		vps := make([]VP, nVP)
		for i := range vps {
			vps[i] = VP{Collector: "c", ASN: uint32(i)}
		}
		prefixes := make([]netip.Prefix, nPfx)
		for i := range prefixes {
			prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(iter), byte(i), 0}), 24)
		}
		s := NewSnapshot(0, vps, prefixes)
		// Small path alphabet so collisions happen.
		paths := []aspath.Seq{nil, {1, 9}, {2, 9}, {1, 2, 9}, {3, 8}}
		for p := 0; p < nPfx; p++ {
			for v := 0; v < nVP; v++ {
				s.SetRoute(p, v, paths[r.Intn(len(paths))])
			}
		}
		as := ComputeAtoms(s)
		// Partition: every prefix in exactly one atom.
		seen := make([]int, nPfx)
		total := 0
		for i := range as.Atoms {
			for _, p := range as.Atoms[i].Prefixes {
				seen[p]++
				total++
			}
		}
		if total != nPfx {
			t.Fatalf("iter %d: partition covers %d/%d", iter, total, nPfx)
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("iter %d: prefix %d in %d atoms", iter, p, n)
			}
		}
		// Same atom ⟺ same vector.
		for a := 0; a < nPfx; a++ {
			for b := a + 1; b < nPfx; b++ {
				same := as.ByPrefix[a] == as.ByPrefix[b]
				eq := true
				for v := 0; v < nVP; v++ {
					if s.RouteID(a, v) != s.RouteID(b, v) {
						eq = false
						break
					}
				}
				if same != eq {
					t.Fatalf("iter %d: prefixes %d,%d same=%v eq=%v", iter, a, b, same, eq)
				}
			}
		}
	}
}

// TestComputeAtomsWorkersDeterminism asserts the PR's hard invariant at
// the core layer: the sharded computation returns byte-identical atoms
// (IDs, member lists, vectors, origins, ByPrefix) for any worker count,
// on snapshots both above and below the sharding threshold.
func TestComputeAtomsWorkersDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	paths := []aspath.Seq{nil, {1, 9}, {2, 9}, {1, 2, 9}, {3, 8}, {4, 9}, {2, 3, 8}}
	for _, nPfx := range []int{100, shardMinPrefixes + 500} {
		nVP := 6
		vps := make([]VP, nVP)
		for i := range vps {
			vps[i] = VP{Collector: "c", ASN: uint32(i)}
		}
		prefixes := make([]netip.Prefix, nPfx)
		for i := range prefixes {
			prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		}
		s := NewSnapshot(0, vps, prefixes)
		for p := 0; p < nPfx; p++ {
			for v := 0; v < nVP; v++ {
				s.SetRoute(p, v, paths[r.Intn(len(paths))])
			}
		}
		want := ComputeAtomsWorkers(s, 1)
		for _, w := range []int{2, 3, runtime.NumCPU(), runtime.NumCPU() + 3} {
			got := ComputeAtomsWorkers(s, w)
			if len(got.Atoms) != len(want.Atoms) {
				t.Fatalf("n=%d workers=%d: %d atoms, want %d", nPfx, w, len(got.Atoms), len(want.Atoms))
			}
			if !reflect.DeepEqual(got.ByPrefix, want.ByPrefix) {
				t.Fatalf("n=%d workers=%d: ByPrefix differs", nPfx, w)
			}
			for i := range want.Atoms {
				ga, wa := &got.Atoms[i], &want.Atoms[i]
				if ga.ID != wa.ID || ga.Origin != wa.Origin || ga.MOASConflict != wa.MOASConflict ||
					!reflect.DeepEqual(ga.Prefixes, wa.Prefixes) || !reflect.DeepEqual(ga.Vector, wa.Vector) {
					t.Fatalf("n=%d workers=%d: atom %d differs:\n got %+v\nwant %+v", nPfx, w, i, *ga, *wa)
				}
			}
			if got.Stats() != want.Stats() {
				t.Fatalf("n=%d workers=%d: stats differ", nPfx, w)
			}
		}
	}
}

func TestStatsP99NearestRank(t *testing.T) {
	// 200 atoms: 198 singletons + sizes 5 and 9. Nearest-rank P99 is the
	// 198th of 200 sorted sizes (ceil(0.99·200) = 198) — still 1; with
	// 100 atoms (99 singletons + one 9), rank 99 picks the largest
	// singleton, not the max. Construct directly over synthetic sizes by
	// building snapshots with that atom-size profile.
	mk := func(sizes []int) GeneralStats {
		total := 0
		for _, sz := range sizes {
			total += sz
		}
		prefixes := make([]netip.Prefix, total)
		for i := range prefixes {
			prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		}
		s := NewSnapshot(0, []VP{{Collector: "c", ASN: 1}}, prefixes)
		p := 0
		for ai, sz := range sizes {
			seq := aspath.Seq{uint32(1000 + ai), uint32(1 + ai)}
			for j := 0; j < sz; j++ {
				s.SetRoute(p, 0, seq)
				p++
			}
		}
		return ComputeAtoms(s).Stats()
	}
	sizes := make([]int, 0, 100)
	for i := 0; i < 99; i++ {
		sizes = append(sizes, 1)
	}
	sizes = append(sizes, 9)
	if got := mk(sizes).P99AtomSize; got != 1 {
		t.Errorf("P99 of 99×1+9 = %d, want 1 (nearest rank 99)", got)
	}
	if got := mk([]int{1, 9}).P99AtomSize; got != 9 {
		t.Errorf("P99 of {1,9} = %d, want 9", got)
	}
	if got := mk([]int{3}).P99AtomSize; got != 3 {
		t.Errorf("P99 of {3} = %d, want 3", got)
	}
}

func TestVPString(t *testing.T) {
	if got := (VP{Collector: "rrc00", ASN: 3356}).String(); got != "rrc00/AS3356" {
		t.Errorf("VP.String = %q", got)
	}
}

// TestComputeAtomsShardedForcedDeterminism drives computeAtomsSharded
// directly at forced shard counts, bypassing shardParts' hardware
// calibration — on a single-CPU host the public dispatcher (correctly)
// never shards, and this test keeps the merge logic covered there
// anyway.
func TestComputeAtomsShardedForcedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	paths := []aspath.Seq{nil, {1, 9}, {2, 9}, {1, 2, 9}, {3, 8}, {4, 9}, {2, 3, 8}}
	for _, nPfx := range []int{50, 1000, shardMinPrefixes + 500} {
		nVP := 5
		vps := make([]VP, nVP)
		for i := range vps {
			vps[i] = VP{Collector: "c", ASN: uint32(i)}
		}
		prefixes := make([]netip.Prefix, nPfx)
		for i := range prefixes {
			prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		}
		s := NewSnapshot(0, vps, prefixes)
		for p := 0; p < nPfx; p++ {
			for v := 0; v < nVP; v++ {
				s.SetRoute(p, v, paths[r.Intn(len(paths))])
			}
		}
		want := computeAtomsSeq(s)
		for _, parts := range []int{2, 3, 7, 16} {
			got := computeAtomsSharded(s, parts, parts)
			if !reflect.DeepEqual(got.ByPrefix, want.ByPrefix) {
				t.Fatalf("n=%d parts=%d: ByPrefix differs", nPfx, parts)
			}
			if !reflect.DeepEqual(got.Atoms, want.Atoms) {
				t.Fatalf("n=%d parts=%d: atoms differ", nPfx, parts)
			}
		}
	}
}

// TestFlatMatrixMatchesReference is the flat-layout property test: a
// sequence of random SetRoute/SetRouteID writes must leave
// Row/RouteID/VisibleVPs in exact agreement with a naive [][]ID
// reference model maintained alongside.
func TestFlatMatrixMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		nVP := 1 + r.Intn(6)
		nPfx := 1 + r.Intn(40)
		vps := make([]VP, nVP)
		for i := range vps {
			vps[i] = VP{Collector: "c", ASN: uint32(i)}
		}
		prefixes := make([]netip.Prefix, nPfx)
		for i := range prefixes {
			prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(iter), byte(i), 0}), 24)
		}
		s := NewSnapshot(0, vps, prefixes)
		ref := make([][]aspath.ID, nPfx)
		for i := range ref {
			ref[i] = make([]aspath.ID, nVP)
		}
		paths := []aspath.Seq{nil, {1, 9}, {2, 9}, {1, 2, 9}}
		for op := 0; op < 300; op++ {
			p, v := r.Intn(nPfx), r.Intn(nVP)
			if r.Intn(2) == 0 {
				seq := paths[r.Intn(len(paths))]
				s.SetRoute(p, v, seq)
				ref[p][v] = s.Paths.Intern(seq)
			} else {
				id := aspath.ID(r.Intn(int(3)))
				s.SetRouteID(p, v, id)
				ref[p][v] = id
			}
		}
		for p := 0; p < nPfx; p++ {
			if !reflect.DeepEqual(s.Row(p), ref[p]) {
				t.Fatalf("iter %d: Row(%d) = %v, want %v", iter, p, s.Row(p), ref[p])
			}
			vis := 0
			for v := 0; v < nVP; v++ {
				if s.RouteID(p, v) != ref[p][v] {
					t.Fatalf("iter %d: RouteID(%d,%d) = %d, want %d", iter, p, v, s.RouteID(p, v), ref[p][v])
				}
				if ref[p][v] != aspath.Empty {
					vis++
				}
			}
			if got := s.VisibleVPs(p); got != vis {
				t.Fatalf("iter %d: VisibleVPs(%d) = %d, want %d", iter, p, got, vis)
			}
		}
		// Row must be a live view: writes through it land in the matrix.
		row := s.Row(0)
		if nVP > 0 {
			row[0] = 2
			if s.RouteID(0, 0) != 2 {
				t.Fatal("Row is not a view into the matrix")
			}
			// And capacity-clipped: appending must not clobber row 1.
			if nPfx > 1 {
				before := s.RouteID(1, 0)
				_ = append(row, 3)
				if s.RouteID(1, 0) != before {
					t.Fatal("append through Row bled into the next row")
				}
			}
		}
	}
}

// TestSnapshotBuildAllocs pins the flat layout's build cost: the route
// matrix is one backing allocation, so building a snapshot over a
// shared interning table costs O(1) allocations no matter how many
// prefixes it has.
func TestSnapshotBuildAllocs(t *testing.T) {
	tbl := aspath.NewTable()
	vps := make([]VP, 50)
	for i := range vps {
		vps[i] = VP{Collector: "c", ASN: uint32(i)}
	}
	prefixes := make([]netip.Prefix, 5000)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
	}
	got := testing.AllocsPerRun(100, func() {
		if s := NewSnapshotWith(0, vps, prefixes, tbl); s.stride != 50 {
			t.Fatal("bad stride")
		}
	})
	if got > 2 {
		t.Errorf("NewSnapshotWith allocs/op = %v, want <= 2 (flat matrix)", got)
	}
}

// TestRowHashAllocs pins the row-hashing hot loop of atom grouping at
// zero allocations: encoding a row into a reused buffer and hashing it
// must not touch the heap.
func TestRowHashAllocs(t *testing.T) {
	s := snapFrom(t, 3, [][]string{
		{"100 200 300", "101 200 300", "102 200 300"},
		{"100 200 300", "101 201 300", ""},
	})
	buf := make([]byte, 0, 4*len(s.VPs))
	var sink uint64
	got := testing.AllocsPerRun(1000, func() {
		for p := range s.Prefixes {
			buf = rowBytes(buf, s.Row(p))
			sink ^= maphash.Bytes(atomSeed, buf)
		}
	})
	if got != 0 {
		t.Errorf("row hashing allocs/op = %v, want 0", got)
	}
	_ = sink
}
