package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/aspath"
)

// marshalAtomSet renders an AtomSet canonically so tests can compare
// incremental and batch results byte for byte: ByPrefix, then every
// atom's members, vector IDs, origin, and MOAS flag.
func marshalAtomSet(as *AtomSet) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "atoms=%d prefixes=%d\n", len(as.Atoms), len(as.ByPrefix))
	fmt.Fprintf(&b, "byprefix=%v\n", as.ByPrefix)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		fmt.Fprintf(&b, "atom %d prefixes=%v vector=%v origin=%d moas=%v\n",
			a.ID, a.Prefixes, a.Vector, a.Origin, a.MOASConflict)
	}
	return b.Bytes()
}

// requireEqualBatch asserts the index's materialized partition is
// byte-identical to batch ComputeAtoms on the same matrix.
func requireEqualBatch(t *testing.T, ix *AtomIndex, workers int) {
	t.Helper()
	inc := marshalAtomSet(ix.Materialize(workers))
	bat := marshalAtomSet(ComputeAtomsWorkers(ix.Snapshot(), workers))
	if !bytes.Equal(inc, bat) {
		t.Fatalf("incremental != batch\nincremental:\n%s\nbatch:\n%s", inc, bat)
	}
}

// churnSeq returns a deterministic pseudo-random uint64 stream (SplitMix64)
// for exercising the index without math/rand (forbidden here by atomlint).
func churnSeq(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// TestAtomIndexMatchesBatch builds an index, drives it through a long
// churn sequence (announces with recurring and novel paths, withdrawals,
// duplicates), and checks equality with batch recomputation at several
// checkpoints and worker counts.
func TestAtomIndexMatchesBatch(t *testing.T) {
	s := benchSnapshot(500, 12)
	ix := NewAtomIndex(s)
	requireEqualBatch(t, ix, 1)

	rnd := churnSeq(42)
	// A small path pool: recurring paths exercise bucket moves between
	// existing atoms; the occasional novel path exercises creation.
	pool := make([]aspath.ID, 0, 24)
	for i := 0; i < 24; i++ {
		pool = append(pool, s.Paths.Intern(aspath.Seq{uint32(9000 + i), uint32(200 + i%5), uint32(64512 + i)}))
	}
	for step := 0; step < 4000; step++ {
		p := int(rnd() % uint64(len(s.Prefixes)))
		v := int(rnd() % uint64(len(s.VPs)))
		var id aspath.ID
		switch rnd() % 8 {
		case 0: // withdraw
			id = aspath.Empty
		case 1: // novel path
			id = s.Paths.Intern(aspath.Seq{uint32(100000 + step), 1, uint32(65000 + step%97)})
		case 2: // duplicate of the current route
			id = s.RouteID(p, v)
		default:
			id = pool[rnd()%uint64(len(pool))]
		}
		ix.ApplyUpdate(p, v, id)
		if step%997 == 0 {
			requireEqualBatch(t, ix, 1)
		}
	}
	requireEqualBatch(t, ix, 1)
	requireEqualBatch(t, ix, 8)

	st := ix.Stats()
	if st.Updates != 4000 {
		t.Fatalf("Updates = %d, want 4000", st.Updates)
	}
	if st.Applied+st.NoOps != st.Updates {
		t.Fatalf("Applied(%d)+NoOps(%d) != Updates(%d)", st.Applied, st.NoOps, st.Updates)
	}
	if st.Created == 0 || st.Retired == 0 {
		t.Fatalf("churn minted %d and retired %d atoms; want both > 0", st.Created, st.Retired)
	}
}

// TestAtomIndexEmptyRowRetirement withdraws a prefix's routes one by
// one: the all-empty row must join the all-empty atom (exactly as batch
// grouping would), and each atom left memberless must retire.
func TestAtomIndexEmptyRowRetirement(t *testing.T) {
	s := benchSnapshot(50, 4)
	// Make prefix 0 the sole member of its atom by giving it a unique path.
	solo := s.Paths.Intern(aspath.Seq{7777, 7778, 7779})
	for v := 0; v < 4; v++ {
		s.SetRouteID(0, v, solo)
	}
	// Prefix 1 becomes the all-empty row so an empty atom exists.
	for v := 0; v < 4; v++ {
		s.SetRouteID(1, v, aspath.Empty)
	}
	ix := NewAtomIndex(s)
	requireEqualBatch(t, ix, 1)
	before := ix.AtomCount()

	var lastDelta Delta
	for v := 0; v < 4; v++ {
		lastDelta = ix.ApplyUpdate(0, v, aspath.Empty)
	}
	// The final withdrawal empties the row: its singleton atom retires
	// and the prefix lands in the existing all-empty atom.
	if !lastDelta.Retired {
		t.Fatalf("last withdrawal did not retire the singleton atom: %+v", lastDelta)
	}
	if lastDelta.Created {
		t.Fatalf("empty row minted a new atom instead of joining the all-empty atom: %+v", lastDelta)
	}
	if !ix.SameAtom(0, 1) {
		t.Fatal("all-empty rows 0 and 1 are in different atoms")
	}
	if got := ix.AtomCount(); got >= before+4 {
		t.Fatalf("atom count grew from %d to %d under pure withdrawal", before, got)
	}
	requireEqualBatch(t, ix, 1)
}

// TestAtomIndexFirstRoute announces the first route of a previously
// invisible prefix: it must leave the all-empty atom and (here) mint a
// fresh atom, matching batch.
func TestAtomIndexFirstRoute(t *testing.T) {
	s := benchSnapshot(50, 4)
	for v := 0; v < 4; v++ {
		s.SetRouteID(3, v, aspath.Empty)
		s.SetRouteID(4, v, aspath.Empty)
	}
	ix := NewAtomIndex(s)
	if !ix.SameAtom(3, 4) {
		t.Fatal("two all-empty rows should share the empty atom")
	}
	id := s.Paths.Intern(aspath.Seq{11, 22, 33})
	d := ix.ApplyUpdate(3, 1, id)
	if d.NoOp || !d.Created {
		t.Fatalf("first route should create an atom: %+v", d)
	}
	if d.Retired {
		t.Fatal("the empty atom still has members; it must not retire")
	}
	if ix.SameAtom(3, 4) {
		t.Fatal("prefix 3 gained a route but still shares the empty atom")
	}
	if got := ix.MemberCount(3); got != 1 {
		t.Fatalf("new atom has %d members, want 1", got)
	}
	requireEqualBatch(t, ix, 1)
}

// TestAtomIndexHashCollision forces every row into one bucket via the
// test hash seam: distinct vectors must still land in distinct atoms
// (equality is verified on rows, not hashes), chains must unlink
// correctly on retirement, and the partition must match batch.
func TestAtomIndexHashCollision(t *testing.T) {
	s := benchSnapshot(60, 5)
	ix := newAtomIndexHash(s, func(row []aspath.ID) uint64 { return 12345 })
	if len(ix.buckets) != 1 {
		t.Fatalf("forced collision left %d buckets, want 1", len(ix.buckets))
	}
	requireEqualBatch(t, ix, 1)

	// Churn through the collision chain: moves, retirements, creations
	// all operate on one chain.
	rnd := churnSeq(7)
	ids := []aspath.ID{
		aspath.Empty,
		s.Paths.Intern(aspath.Seq{1, 2, 3}),
		s.Paths.Intern(aspath.Seq{4, 5, 6}),
	}
	for step := 0; step < 600; step++ {
		p := int(rnd() % uint64(len(s.Prefixes)))
		v := int(rnd() % uint64(len(s.VPs)))
		ix.ApplyUpdate(p, v, ids[rnd()%3])
	}
	if len(ix.buckets) != 1 {
		t.Fatalf("churn under forced collision left %d buckets, want 1", len(ix.buckets))
	}
	requireEqualBatch(t, ix, 1)

	// Chain length must equal the live atom count (all atoms share the
	// one bucket).
	n := 0
	for c := ix.buckets[12345]; c >= 0; c = ix.atoms[c].chain {
		n++
	}
	if n != ix.AtomCount() {
		t.Fatalf("collision chain has %d atoms, AtomCount says %d", n, ix.AtomCount())
	}
}

// TestAtomIndexDuplicateUpdate pins the no-op contract: re-announcing
// the current route allocates nothing and flaps no counters.
func TestAtomIndexDuplicateUpdate(t *testing.T) {
	s := benchSnapshot(100, 8)
	ix := NewAtomIndex(s)
	id := s.RouteID(5, 2)
	before := ix.Stats()
	atomsBefore := ix.AtomCount()

	allocs := testing.AllocsPerRun(200, func() {
		d := ix.ApplyUpdate(5, 2, id)
		if !d.NoOp {
			t.Fatal("duplicate update not detected as no-op")
		}
	})
	if allocs != 0 {
		t.Fatalf("duplicate update allocated %.1f times per call, want 0", allocs)
	}
	after := ix.Stats()
	if after.Applied != before.Applied || after.Created != before.Created || after.Retired != before.Retired {
		t.Fatalf("no-op flapped counters: before %+v after %+v", before, after)
	}
	if ix.AtomCount() != atomsBefore {
		t.Fatalf("no-op changed atom count %d -> %d", atomsBefore, ix.AtomCount())
	}
	requireEqualBatch(t, ix, 1)
}

// TestApplyUpdateSteadyStateAllocs pins the acceptance bar: a warmed
// index applies real updates — moves, retirements, creations — with
// zero allocations per ApplyUpdate.
func TestApplyUpdateSteadyStateAllocs(t *testing.T) {
	s := benchSnapshot(400, 10)
	ix := NewAtomIndex(s)
	a := s.Paths.Intern(aspath.Seq{101, 102, 103})
	b := s.Paths.Intern(aspath.Seq{104, 105, 106})
	// Warm the free lists and map geometry: every (atom create, retire,
	// bucket move) this cycle needs has happened at least once.
	for i := 0; i < 4; i++ {
		ix.ApplyUpdate(7, 3, a)
		ix.ApplyUpdate(7, 3, b)
		ix.ApplyUpdate(7, 3, aspath.Empty)
	}
	allocs := testing.AllocsPerRun(500, func() {
		ix.ApplyUpdate(7, 3, a)        // move / create
		ix.ApplyUpdate(7, 3, b)        // move between vectors
		ix.ApplyUpdate(7, 3, aspath.Empty) // withdraw, retire
	})
	if allocs != 0 {
		t.Fatalf("steady-state ApplyUpdate allocates %.2f per cycle, want 0", allocs)
	}
	requireEqualBatch(t, ix, 1)
}

// TestAtomIndexMaterializeStats checks the materialized set feeds the
// standard Stats pipeline identically to batch.
func TestAtomIndexMaterializeStats(t *testing.T) {
	s := benchSnapshot(300, 6)
	ix := NewAtomIndex(s)
	id := s.Paths.Intern(aspath.Seq{1, 2, 65001})
	for i := 0; i < 40; i++ {
		ix.ApplyUpdate(i*7%300, i%6, id)
	}
	got := ix.Materialize(1).Stats()
	want := ComputeAtoms(s).Stats()
	if got != want {
		t.Fatalf("stats diverge:\nincremental %+v\nbatch       %+v", got, want)
	}
}
