package probing

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/longitudinal"
	"repro/internal/topology"
)

func pfx(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
}

func handAtoms(t *testing.T) *core.AtomSet {
	t.Helper()
	vps := []core.VP{{Collector: "c", ASN: 1}, {Collector: "c", ASN: 2}}
	prefixes := []netip.Prefix{pfx(0), pfx(1), pfx(2), pfx(3)}
	s := core.NewSnapshot(0, vps, prefixes)
	a := aspath.Seq{1, 100}
	b := aspath.Seq{2, 100}
	c := aspath.Seq{1, 200}
	for i := 0; i < 3; i++ { // atom {0,1,2}
		s.SetRoute(i, 0, a)
		s.SetRoute(i, 1, b)
	}
	s.SetRoute(3, 0, c) // singleton {3}
	return core.ComputeAtoms(s)
}

func TestBuildPlanAndReduction(t *testing.T) {
	as := handAtoms(t)
	plan := BuildPlan(as)
	if len(plan.Representatives) != 2 {
		t.Fatalf("representatives = %d", len(plan.Representatives))
	}
	if got := plan.Reduction(); got != 0.5 {
		t.Errorf("reduction = %v, want 0.5 (2 targets for 4 prefixes)", got)
	}
	// Representative of the big atom is its lowest prefix.
	if plan.RepOf[pfx(2)] != pfx(0) || plan.RepOf[pfx(0)] != pfx(0) {
		t.Errorf("RepOf = %v", plan.RepOf)
	}
	// Perfect accuracy on the defining snapshot.
	acc := plan.Accuracy(as.Snap)
	if acc.Rate() != 1.0 || acc.Mismatches != 0 {
		t.Errorf("self accuracy = %+v", acc)
	}
	if got := plan.StalePrefixes(as.Snap); len(got) != 0 {
		t.Errorf("stale on self = %v", got)
	}
}

func TestAccuracyDecay(t *testing.T) {
	as := handAtoms(t)
	plan := BuildPlan(as)

	// A later snapshot where prefix 2 diverged at VP 2.
	vps := as.Snap.VPs
	later := core.NewSnapshot(1, vps, as.Snap.Prefixes)
	for p := range as.Snap.Prefixes {
		for v := range vps {
			later.SetRoute(p, v, as.Snap.Route(p, v))
		}
	}
	later.SetRoute(2, 1, aspath.Seq{2, 999, 100})
	acc := plan.Accuracy(later)
	// 4 prefixes × 2 VPs = 8 observations, 1 mismatch.
	if acc.Observations != 8 || acc.Mismatches != 1 {
		t.Errorf("accuracy = %+v", acc)
	}
	if got := acc.Rate(); got != 7.0/8.0 {
		t.Errorf("rate = %v", got)
	}
	stale := plan.StalePrefixes(later)
	if len(stale) != 1 || stale[0] != pfx(2) {
		t.Errorf("stale = %v", stale)
	}
}

func TestAccuracyMissingPrefixes(t *testing.T) {
	as := handAtoms(t)
	plan := BuildPlan(as)
	// Later snapshot lost the representative pfx(0) but kept members.
	vps := as.Snap.VPs
	kept := []netip.Prefix{pfx(1), pfx(2), pfx(3)}
	later := core.NewSnapshot(1, vps, kept)
	for i, p := range kept {
		var orig int
		for j, q := range as.Snap.Prefixes {
			if q == p {
				orig = j
			}
		}
		for v := range vps {
			later.SetRoute(i, v, as.Snap.Route(orig, v))
		}
	}
	acc := plan.Accuracy(later)
	if acc.SkippedPrefixes != 1 {
		t.Errorf("skipped = %d", acc.SkippedPrefixes)
	}
	// Members 1,2 score against a vanished representative: mismatches.
	if acc.Mismatches != 4 {
		t.Errorf("mismatches = %d (want 2 prefixes × 2 VPs)", acc.Mismatches)
	}
}

// TestPlanOverSimulatedWeeks reproduces the iPlane observation: probing
// per atom saves most probes, accuracy decays slowly, and the plan is
// worth refreshing on the order of weeks.
func TestPlanOverSimulatedWeeks(t *testing.T) {
	cfg := longitudinal.DefaultConfig(5)
	cfg.Scale = 0.006
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2012, 1))
	base, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildPlan(base)
	if plan.Reduction() <= 0.2 {
		t.Errorf("reduction = %v — atoms should cut probe targets substantially", plan.Reduction())
	}
	if acc := plan.Accuracy(base.Snap); acc.Rate() != 1 {
		t.Fatalf("self accuracy = %v", acc.Rate())
	}
	week, _, err := r.SnapshotAt(longitudinal.OffsetBase + 7)
	if err != nil {
		t.Fatal(err)
	}
	acc1w := plan.Accuracy(week.Snap)
	if acc1w.Rate() < 0.85 {
		t.Errorf("1-week accuracy %v — should stay high (atom stability)", acc1w.Rate())
	}
	twoWeeks, _, err := r.SnapshotAt(longitudinal.OffsetBase + 14)
	if err != nil {
		t.Fatal(err)
	}
	acc2w := plan.Accuracy(twoWeeks.Snap)
	if acc2w.Rate() > acc1w.Rate()+0.01 {
		t.Errorf("accuracy grew with staleness: %v then %v", acc1w.Rate(), acc2w.Rate())
	}
	t.Logf("reduction=%.1f%% accuracy: self=100%% 1w=%.1f%% 2w=%.1f%% stale-after-2w=%d",
		100*plan.Reduction(), 100*acc1w.Rate(), 100*acc2w.Rate(), len(plan.StalePrefixes(twoWeeks.Snap)))
}
