// Package probing implements the classic application of policy atoms
// that Netdiff (NSDI'08) and iPlane (OSDI'06) pioneered and the paper
// revisits: reducing measurement overhead by probing one representative
// prefix per atom instead of every prefix. Because prefixes in an atom
// share AS paths at every vantage point, the representative's path
// stands in for the whole group — until atom churn erodes the plan,
// which is why those systems refreshed their atom lists periodically
// (iPlane: every two weeks).
//
// BuildPlan selects representatives from one snapshot; Accuracy scores
// a plan against a later snapshot, quantifying exactly the
// staleness-versus-overhead trade-off the paper's §4.4 stability
// analysis informs.
package probing

import (
	"net/netip"

	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/prefixset"
)

// Plan is a probing target list: one representative per atom.
type Plan struct {
	// Representatives, one per atom, in atom-ID order.
	Representatives []netip.Prefix
	// RepOf maps every covered prefix to its representative.
	RepOf map[netip.Prefix]netip.Prefix
	// TotalPrefixes is the prefix population the plan covers.
	TotalPrefixes int
}

// BuildPlan picks the lowest prefix of each atom as its representative
// (deterministic; any member works by the atom definition).
func BuildPlan(as *core.AtomSet) *Plan {
	p := &Plan{
		RepOf:         make(map[netip.Prefix]netip.Prefix, len(as.Snap.Prefixes)),
		TotalPrefixes: len(as.Snap.Prefixes),
	}
	for i := range as.Atoms {
		members := as.PrefixSet(i)
		prefixset.SortPrefixes(members)
		rep := members[0]
		p.Representatives = append(p.Representatives, rep)
		for _, m := range members {
			p.RepOf[m] = rep
		}
	}
	return p
}

// Reduction returns the probing-overhead saving: 1 − targets/prefixes.
func (p *Plan) Reduction() float64 {
	if p.TotalPrefixes == 0 {
		return 0
	}
	return 1 - float64(len(p.Representatives))/float64(p.TotalPrefixes)
}

// Accuracy evaluates the plan against a (possibly later) snapshot: the
// fraction of (prefix, vantage point) observations whose AS path equals
// the path of the prefix's representative in that snapshot. At the
// plan's own snapshot this is 1.0 by construction; it decays as atoms
// split or prefixes move — the signal for refreshing the plan.
//
// Prefixes absent from the later snapshot are skipped; representatives
// absent from it count their members as mismatched (the probe target
// vanished).
func (p *Plan) Accuracy(s *core.Snapshot) Accuracy {
	idx := make(map[netip.Prefix]int, len(s.Prefixes))
	for i, pfx := range s.Prefixes {
		idx[pfx] = i
	}
	var acc Accuracy
	for member, rep := range p.RepOf {
		mi, ok := idx[member]
		if !ok {
			acc.SkippedPrefixes++
			continue
		}
		ri, repOK := idx[rep]
		if !repOK {
			acc.Observations += len(s.VPs)
			acc.Mismatches += len(s.VPs)
			continue
		}
		// The interning table guarantees ID equality ⟺ sequence equality
		// (both-missing is equal: probing either yields the same
		// non-answer), so one pass over the two flat rows suffices.
		mRow, rRow := s.Row(mi), s.Row(ri)
		for v := range mRow {
			acc.Observations++
			if mRow[v] == rRow[v] {
				acc.Matches++
			} else {
				acc.Mismatches++
			}
		}
	}
	return acc
}

// Accuracy aggregates plan-vs-snapshot agreement.
type Accuracy struct {
	Observations    int // (prefix, VP) pairs scored
	Matches         int
	Mismatches      int
	SkippedPrefixes int // prefixes no longer in the snapshot
}

// Rate returns Matches/Observations (1.0 when nothing was scored).
func (a Accuracy) Rate() float64 {
	if a.Observations == 0 {
		return 1
	}
	return float64(a.Matches) / float64(a.Observations)
}

// StalePrefixes identifies the prefixes whose observed paths no longer
// match their representative anywhere — the minimal set to re-probe or
// re-assign when refreshing the plan incrementally.
func (p *Plan) StalePrefixes(s *core.Snapshot) []netip.Prefix {
	idx := make(map[netip.Prefix]int, len(s.Prefixes))
	for i, pfx := range s.Prefixes {
		idx[pfx] = i
	}
	var out []netip.Prefix
	for member, rep := range p.RepOf {
		if member == rep {
			continue
		}
		mi, ok := idx[member]
		if !ok {
			continue
		}
		ri, ok := idx[rep]
		stale := !ok
		if !stale {
			stale = !rowsEqualIDs(s.Row(mi), s.Row(ri))
		}
		if stale {
			out = append(out, member)
		}
	}
	prefixset.SortPrefixes(out)
	return out
}

// rowsEqualIDs reports element-wise equality of two same-length route
// rows.
func rowsEqualIDs(a, b []aspath.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
