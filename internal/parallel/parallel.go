// Package parallel is the repo's stdlib-only concurrency layer: a
// bounded worker pool over indexed work lists, with ordered fan-in
// (every item's result lands at its own index, so output order never
// depends on scheduling) and first-error cancellation (a failing item
// stops workers from picking up new items; already-running items
// finish).
//
// The package exists so the longitudinal pipeline can parallelize
// across eras, snapshot offsets, feeds, and prefix ranges while
// keeping one hard invariant: the output for a given seed is
// byte-identical at any worker count, including workers=1, which runs
// the loop inline on the calling goroutine with zero scheduling
// overhead.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values > 0 are used as
// given; zero and negative values mean "one worker per CPU"
// (runtime.NumCPU), the pipeline-wide default.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// forceParallel, when set, bypasses the effective-CPU clamp below so a
// test or bench can exercise the true multi-goroutine pool on a host
// (or under a -cpu override) where the clamp would serialize it.
var forceParallel atomic.Bool

// ForceParallel toggles the effective-CPU clamp bypass. Tests and
// benches that pin the pool's concurrent machinery call
// ForceParallel(true) (and defer ForceParallel(false)); production
// callers never touch it.
func ForceParallel(on bool) { forceParallel.Store(on) }

// effectiveWorkers clamps a resolved pool size to the hardware
// parallelism actually available: spawning more CPU-bound goroutines
// than min(GOMAXPROCS, NumCPU) buys no concurrency and costs
// scheduling, cache churn, and deeper live heaps (every in-flight item
// holds its working set). Results are unaffected — every pool here
// lands item i's output at index i — so the clamp is invisible except
// in time. Race builds skip the clamp: -race runs exist to catch
// synchronization bugs, so they always exercise the real pool, as does
// anything that called ForceParallel(true).
func effectiveWorkers(w int) int {
	if raceEnabled || forceParallel.Load() {
		return w
	}
	if hw := min(runtime.GOMAXPROCS(0), runtime.NumCPU()); w > hw {
		return hw
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines (workers <= 0 defaults to runtime.NumCPU; the effective
// count never exceeds n). With one worker the loop runs inline on the
// calling goroutine, exactly like the sequential code it replaces.
//
// On error, no new items are started and ForEach returns the error of
// the lowest-indexed item that failed — a deterministic choice even
// though under concurrency a higher-indexed item may fail first.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	workers = effectiveWorkers(workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64 // next item to claim
		stop    atomic.Bool  // set on first error
		mu      sync.Mutex
		errIdx  = -1 // lowest failing index seen
		firstEr error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Map runs fn(i) for every i in [0, n) under ForEach's pool and
// collects the results in index order. On error the partial results
// are discarded and only the (deterministically chosen) error returns.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into min(workers, n) contiguous ranges of
// near-equal size and runs body(lo, hi) for each under ForEach's pool.
// Use it when per-item work is too small to schedule individually
// (e.g. per-prefix loops): each worker streams through a whole range.
func Chunks(workers, n int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	parts := Workers(workers)
	if parts > n {
		parts = n
	}
	return ForEach(workers, parts, func(ci int) error {
		lo, hi := ChunkBounds(n, parts, ci)
		return body(lo, hi)
	})
}

// ChunkBounds returns the half-open range [lo, hi) of chunk ci when
// [0, n) is split into parts contiguous near-equal pieces (the first
// n%parts chunks are one element larger). The union of all chunks is
// exactly [0, n), in order.
func ChunkBounds(n, parts, ci int) (lo, hi int) {
	size, rem := n/parts, n%parts
	lo = ci*size + min(ci, rem)
	hi = lo + size
	if ci < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
