//go:build race

package parallel

// raceEnabled mirrors the -race build flag: race runs always exercise
// the real multi-goroutine pool (see effectiveWorkers).
const raceEnabled = true
