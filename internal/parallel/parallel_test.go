package parallel

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestMain forces the real multi-goroutine pool for the whole package:
// these tests pin the pool machinery itself (claiming, fan-in order,
// cancellation), which the effective-CPU clamp would otherwise
// serialize on a single-core host.
func TestMain(m *testing.M) {
	ForceParallel(true)
	os.Exit(m.Run())
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Errorf("Workers(-5) = %d", got)
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d run %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Multiple failures: the returned error must be the lowest index's,
	// regardless of scheduling.
	for _, workers := range []int{1, 2, 7} {
		err := ForEach(workers, 20, func(i int) error {
			if i >= 5 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 5" {
			t.Errorf("workers=%d: err = %v, want item 5", workers, err)
		}
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	// With 2 workers and an immediate failure, far fewer than n items
	// should run: workers stop claiming new items once stop is set.
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEach(2, 10_000, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d items after first error", n)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(workers, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(3, 10, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {10, 1}, {7, 7}, {100, 8}, {5, 4}, {1, 1},
	} {
		prev := 0
		for ci := 0; ci < tc.parts; ci++ {
			lo, hi := ChunkBounds(tc.n, tc.parts, ci)
			if lo != prev {
				t.Fatalf("n=%d parts=%d chunk %d: lo=%d want %d", tc.n, tc.parts, ci, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d parts=%d chunk %d: hi<lo", tc.n, tc.parts, ci)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d parts=%d: chunks cover %d", tc.n, tc.parts, prev)
		}
	}
}

func TestChunksCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		const n = 103
		var hits [n]atomic.Int32
		err := Chunks(workers, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, hits[i].Load())
			}
		}
	}
}
