package sanitize_test

import (
	"errors"
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/sanitize"
)

// edgeFeed builds one hand-made feed: every prefix routed through the
// peer's own ASN then a common origin.
func edgeFeed(coll string, asn uint32, prefixes ...string) *sanitize.Feed {
	f := &sanitize.Feed{
		VP:     core.VP{Collector: coll, ASN: asn},
		Time:   100,
		Routes: map[netip.Prefix]aspath.Seq{},
	}
	for _, p := range prefixes {
		f.Routes[netip.MustParsePrefix(p)] = aspath.Seq{asn, 9}
	}
	return f
}

var edgeWide = []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}

func edgeFeeds() []*sanitize.Feed {
	return []*sanitize.Feed{
		edgeFeed("c1", 1, edgeWide...),
		edgeFeed("c1", 2, edgeWide...),
		edgeFeed("c2", 3, edgeWide...),
		edgeFeed("c2", 4, edgeWide...),
	}
}

func edgeOpts() sanitize.Options {
	opts := sanitize.Defaults()
	opts.FullFeedFraction = 0.5
	return opts
}

// A single-peer feed set must survive sanitization without error even
// though the visibility thresholds reject everything it carries: one
// collector can never satisfy the two-collector rule.
func TestSinglePeerFeed(t *testing.T) {
	feeds := []*sanitize.Feed{edgeFeed("c1", 1, edgeWide...)}
	snap, rep, err := sanitize.CleanFeeds(feeds, nil, edgeOpts())
	if err != nil {
		t.Fatalf("single-peer feed errored: %v", err)
	}
	if len(snap.Prefixes) != 0 {
		t.Errorf("admitted %d prefixes on one collector's testimony", len(snap.Prefixes))
	}
	if len(rep.RemovedPeerASes) != 0 {
		t.Errorf("removed peers from a clean single feed: %v", rep.RemovedPeerASes)
	}
	// The VP itself must still be accounted, not silently lost.
	if len(snap.VPs) != 1 {
		t.Errorf("snapshot has %d VPs, want 1", len(snap.VPs))
	}
}

// A peer present in the RIB but absent from the update stream has no
// warnings and no flap counts; it must pass through untouched rather
// than being treated as suspicious for its silence.
func TestPeerInRIBAbsentFromUpdates(t *testing.T) {
	feeds := edgeFeeds()
	// Warnings and flaps implicate peers that have no RIB feed at all.
	warnings := []bgpstream.Warning{
		{Code: bgpstream.WarnAddPathSuspect, PeerASN: 99},
	}
	opts := edgeOpts()
	opts.SessionFlaps = map[uint32]int{99: 50}
	snap, rep, err := sanitize.CleanFeeds(feeds, warnings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feeds {
		if reason, ok := rep.RemovedPeerASes[f.VP.ASN]; ok {
			t.Errorf("silent peer %d removed: %s", f.VP.ASN, reason)
		}
	}
	if len(snap.VPs) != 4 {
		t.Errorf("snapshot has %d VPs, want all 4", len(snap.VPs))
	}
	// The implicated absent peer is still recorded for the report.
	if rep.RemovedPeerASes[99] != sanitize.RemovedFlapStorm {
		t.Errorf("flapping peer 99 not flagged: %v", rep.RemovedPeerASes)
	}
}

// Quarantining every collector in an era that had data must be a loud
// error, never an empty snapshot that downstream stages mistake for a
// legitimately quiet era.
func TestAllFeedsQuarantinedErrors(t *testing.T) {
	opts := edgeOpts()
	opts.QuarantinedCollectors = map[string]bool{"c1": true, "c2": true}
	snap, rep, err := sanitize.CleanFeeds(edgeFeeds(), nil, opts)
	if !errors.Is(err, sanitize.ErrAllFeedsRemoved) {
		t.Fatalf("err = %v, want ErrAllFeedsRemoved", err)
	}
	if snap != nil {
		t.Error("error path returned a snapshot")
	}
	if rep == nil || rep.QuarantinedFeeds != 4 {
		t.Fatalf("report = %+v, want 4 quarantined feeds", rep)
	}
	if len(rep.QuarantinedCollectors) != 2 || rep.QuarantinedCollectors[0] != "c1" || rep.QuarantinedCollectors[1] != "c2" {
		t.Errorf("QuarantinedCollectors = %v, want sorted [c1 c2]", rep.QuarantinedCollectors)
	}
}

// Removing every peer via the flap-storm filter is the same failure
// mode as total quarantine and must error identically.
func TestAllPeersRemovedErrors(t *testing.T) {
	opts := edgeOpts()
	opts.SessionFlaps = map[uint32]int{1: 99, 2: 99, 3: 99, 4: 99}
	_, _, err := sanitize.CleanFeeds(edgeFeeds(), nil, opts)
	if !errors.Is(err, sanitize.ErrAllFeedsRemoved) {
		t.Fatalf("err = %v, want ErrAllFeedsRemoved", err)
	}
}

// An era that simply has no data for the requested family must NOT
// trip the all-feeds-removed gate: nothing was removed, there was
// nothing to see.
func TestEmptyFamilyEraIsNotAnError(t *testing.T) {
	opts := edgeOpts()
	opts.Family = 6 // feeds are v4-only
	snap, _, err := sanitize.CleanFeeds(edgeFeeds(), nil, opts)
	if err != nil {
		t.Fatalf("legitimately empty era errored: %v", err)
	}
	if len(snap.Prefixes) != 0 {
		t.Errorf("v6 pass admitted %d v4 prefixes", len(snap.Prefixes))
	}
}

// Partial quarantine: the surviving collector's feeds carry the
// snapshot; quarantined feeds contribute nothing, and the report says
// exactly which collector was dropped.
func TestPartialQuarantine(t *testing.T) {
	feeds := edgeFeeds()
	// A prefix only c1's peers see: it must vanish with the quarantine.
	feeds[0].Routes[netip.MustParsePrefix("10.9.0.0/24")] = aspath.Seq{1, 9}
	feeds[1].Routes[netip.MustParsePrefix("10.9.0.0/24")] = aspath.Seq{2, 9}
	// Another collector so the two-collector rule can still pass.
	feeds = append(feeds,
		edgeFeed("c3", 5, edgeWide...),
		edgeFeed("c3", 6, edgeWide...),
	)
	opts := edgeOpts()
	opts.QuarantinedCollectors = map[string]bool{"c1": true}
	snap, rep, err := sanitize.CleanFeeds(feeds, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuarantinedFeeds != 2 {
		t.Errorf("QuarantinedFeeds = %d, want 2", rep.QuarantinedFeeds)
	}
	for _, vp := range snap.VPs {
		if vp.Collector == "c1" {
			t.Errorf("quarantined VP %v survived", vp)
		}
	}
	for _, pfx := range snap.Prefixes {
		if pfx == netip.MustParsePrefix("10.9.0.0/24") {
			t.Error("prefix witnessed only by the quarantined collector survived")
		}
	}
	if len(snap.Prefixes) != 4 {
		t.Errorf("admitted %d prefixes, want the 4 wide ones", len(snap.Prefixes))
	}
}

// Flap-storm removal must name the reason and drop the peer's feed.
func TestFlapStormRemoval(t *testing.T) {
	opts := edgeOpts()
	opts.SessionFlaps = map[uint32]int{3: opts.MaxSessionFlaps + 1}
	snap, rep, err := sanitize.CleanFeeds(edgeFeeds(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedPeerASes[3] != sanitize.RemovedFlapStorm {
		t.Fatalf("RemovedPeerASes = %v, want peer 3 removed for flap storm", rep.RemovedPeerASes)
	}
	for _, vp := range snap.VPs {
		if vp.ASN == 3 {
			t.Error("flap-storm peer survived as a VP")
		}
	}
	// Exactly at the threshold is tolerated.
	opts.SessionFlaps = map[uint32]int{3: opts.MaxSessionFlaps}
	_, rep, err = sanitize.CleanFeeds(edgeFeeds(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.RemovedPeerASes[3]; ok {
		t.Error("peer at exactly MaxSessionFlaps removed; threshold must be strict")
	}
}
