// Package sanitize implements the paper's data-cleaning methodology
// (§2.4, §A8.3): full-feed peer inference, abnormal-peer removal
// (ADD-PATH parse trouble, private-ASN insertion, excessive duplicates),
// AS-SET handling, prefix-length admission, and the two-threshold
// visibility filter (≥ MinCollectors collectors, ≥ MinPeerASes peer
// ASes). Its output is the core.Snapshot that atom computation consumes,
// plus a Report documenting everything that was removed and why.
package sanitize

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync/atomic"

	"repro/internal/aspath"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/prefixset"
)

// Options tunes the pipeline. ZeroOptions (all zero values) is invalid;
// start from Defaults.
type Options struct {
	// FullFeedFraction: a feed is full if its unique prefix count
	// exceeds this fraction of the maximum across feeds (§2.4.2).
	FullFeedFraction float64
	// MinCollectors / MinPeerASes are the visibility thresholds
	// (§2.4.3; Table 7 sweeps them).
	MinCollectors int
	MinPeerASes   int
	// LengthFilter admits only prefixes ≤ /24 (v4) or ≤ /48 (v6).
	LengthFilter bool
	// MaxParseWarnings: a peer AS accumulating more update-stream parse
	// warnings than this is removed (ADD-PATH damage, §A8.3.1).
	MaxParseWarnings int
	// PrivateASNShare: a peer AS whose paths carry a private ASN for
	// more than this share of its prefixes is removed (§A8.3.2).
	PrivateASNShare float64
	// DuplicateShare: a peer AS sending more than this share of its
	// prefixes in duplicate is removed (§2.4.4).
	DuplicateShare float64
	// MaxSessionFlaps: a peer AS whose BGP sessions flapped more than
	// this many times across the update window is removed — a flapping
	// session's RIB rows are stale snapshots of an unstable view. The
	// counts come from SessionFlaps. 0 disables the filter.
	MaxSessionFlaps int
	// SessionFlaps carries per-peer-ASN state-change counts observed on
	// the update streams (bgpstream.Stream.StateFlaps).
	SessionFlaps map[uint32]int
	// QuarantinedCollectors names feeds excluded wholesale before any
	// other stage — sources whose degradation budget was blown
	// (bgpstream.Stream.Quarantined). Clean merges its own RIB-stream
	// quarantine into this set.
	QuarantinedCollectors map[string]bool
	// DegradationMinRecords / DegradationMaxSkipRatio configure the RIB
	// stream's per-source degradation budget inside Clean. Zero values
	// keep bgpstream's defaults; a negative DegradationMinRecords
	// disables quarantine.
	DegradationMinRecords   int
	DegradationMaxSkipRatio float64
	// KeepAllPrefixes reproduces Afek et al.'s 2002 methodology:
	// no visibility thresholds, no length filter.
	KeepAllPrefixes bool
	// Family restricts the snapshot to one address family: 0 = both,
	// 4 = IPv4 only, 6 = IPv6 only. Atoms are computed per family, and
	// full-feed inference runs within the family's own table sizes.
	Family int
	// Workers bounds the worker pool for the parallel pipeline stages
	// (per-source MRT decode fan-out, per-feed path interning, snapshot
	// assembly): 0 = one worker per CPU, 1 = fully sequential. Output is
	// identical at any value.
	Workers int
	// Intern, when non-nil, is the AS-path intern table the pipeline
	// uses instead of building a fresh one. Sharing one table across the
	// snapshots of an era (longitudinal does this) means the second and
	// later snapshots intern almost entirely on the allocation-free hit
	// path. IDs are only meaningful within one table, so callers must
	// scope a shared table to consumers that never compare IDs across
	// unrelated snapshots — the repo-wide invariant since PR2 is that
	// outputs depend on ID equality only.
	Intern *aspath.Table

	// Span, when non-nil, receives child spans for each pipeline stage
	// (ingest, intern, abnormal peers, full-feed inference, admission,
	// assembly). Nil disables stage tracing at no cost.
	Span *obs.Span
	// Metrics, when non-nil, receives per-filter admit/reject counters,
	// per-VP drop causes, and the stream's decode counters.
	Metrics *obs.Registry
}

// Defaults returns the paper's parameters.
func Defaults() Options {
	return Options{
		FullFeedFraction: 0.9,
		MinCollectors:    2,
		MinPeerASes:      4,
		LengthFilter:     true,
		MaxParseWarnings: 5,
		PrivateASNShare:  0.05,
		DuplicateShare:   0.10,
		MaxSessionFlaps:  12,
	}
}

// Afek2002 returns the reproduction-mode options (§3.1: all prefixes,
// every peer assumed full-feed by construction).
func Afek2002() Options {
	o := Defaults()
	o.KeepAllPrefixes = true
	o.LengthFilter = false
	o.MinCollectors = 1
	o.MinPeerASes = 1
	return o
}

// RemovalReason explains why a peer AS was dropped.
type RemovalReason string

// Removal reasons.
const (
	RemovedAddPath    RemovalReason = "add-path parse errors"
	RemovedPrivateASN RemovalReason = "private ASN in paths"
	RemovedDuplicates RemovalReason = "excessive duplicate prefixes"
	RemovedFlapStorm  RemovalReason = "session flap storm"
)

// ErrAllFeedsRemoved is returned when sanitization removes or
// quarantines every feed that had any data: an empty snapshot would be
// indistinguishable from a healthy era with nothing to show, so the
// pipeline refuses to emit one.
var ErrAllFeedsRemoved = errors.New("sanitize: all feeds removed or quarantined")

// FeedStat describes one feed (collector, peer AS) before filtering.
type FeedStat struct {
	VP             core.VP
	UniquePrefixes int
	Duplicates     int
	PrivateASN     int
	ASSetDropped   int
	LoopDropped    int
	FullFeed       bool
}

// Report documents the pipeline's decisions.
type Report struct {
	Feeds []FeedStat
	// MaxPrefixCount is the per-feed maximum unique prefix count — the
	// basis of the full-feed threshold (Fig 12).
	MaxPrefixCount int
	// FullFeedThreshold = FullFeedFraction × MaxPrefixCount.
	FullFeedThreshold int
	// FullFeeds counts feeds above the threshold (Fig 13).
	FullFeeds int
	// RemovedPeerASes maps peer ASN → reason (Table 5).
	RemovedPeerASes map[uint32]RemovalReason
	// QuarantinedCollectors lists collectors (sorted) whose feeds were
	// excluded wholesale — the caller's quarantine set plus any source
	// Clean's own RIB stream quarantined. Their feeds appear nowhere
	// else in the report.
	QuarantinedCollectors []string
	// QuarantinedFeeds counts feeds dropped by the quarantine.
	QuarantinedFeeds int
	// Prefix funnel.
	PrefixesSeen       int // distinct prefixes in full-feed data
	PrefixesAdmitted   int // after length + visibility filters
	DroppedByLength    int
	DroppedByCollector int
	DroppedByPeerASes  int
	// MOAS accounting (prefixes with >1 origin among admitted).
	MOASPrefixes int
}

// Feed is one peer feed's routing table — the unit of the pipeline.
// Feeds come either from MRT archives (Clean) or directly from the
// simulator's in-memory routes (the longitudinal fast path).
type Feed struct {
	VP   core.VP
	Time uint32
	// Routes maps each prefix to its observed AS path.
	Routes map[netip.Prefix]aspath.Seq
	// Duplicates counts repeated route entries seen during ingestion.
	Duplicates int
	// ASSetDropped counts paths dropped for multi-member AS_SETs.
	ASSetDropped int
}

// feedKey identifies a feed.
type feedKey struct {
	collector string
	asn       uint32
}

// Clean runs the full pipeline over RIB sources, consulting update-
// stream warnings for abnormal-peer detection, and produces the
// sanitized snapshot. The returned Report explains every removal.
func Clean(sources []bgpstream.Source, updateWarnings []bgpstream.Warning, opts Options) (*core.Snapshot, *Report, error) {
	// Pass 1: ingest RIB elements per feed.
	sp := opts.Span.Child("sanitize.ingest")
	elems := 0
	feeds := map[feedKey]*Feed{}
	filter := &bgpstream.Filter{
		Types:  map[bgpstream.ElemType]bool{bgpstream.ElemRIB: true},
		V4Only: opts.Family == 4,
		V6Only: opts.Family == 6,
	}
	stream := bgpstream.NewStream(filter, sources...)
	stream.SetMetrics(opts.Metrics)
	stream.SetWorkers(opts.Workers)
	// The stream's decode workers flatten and intern every RIB path into
	// the pipeline's table, so ingest below just resolves IDs — and any
	// snapshot sharing this table (opts.Intern) hits the table warm.
	table := opts.Intern
	if table == nil {
		table = aspath.NewTable()
	}
	stream.SetIntern(table)
	degradeMin, degradeMax := opts.DegradationMinRecords, opts.DegradationMaxSkipRatio
	if degradeMin == 0 {
		degradeMin = bgpstream.DefaultDegradeMinRecords
	}
	if degradeMax == 0 {
		degradeMax = bgpstream.DefaultDegradeMaxSkipRatio
	}
	stream.SetDegradation(degradeMin, degradeMax)
	for {
		batch, err := stream.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		elems += len(batch)
		for i := range batch {
			e := &batch[i]
			k := feedKey{collector: e.Collector, asn: e.PeerASN}
			fd := feeds[k]
			if fd == nil {
				fd = &Feed{
					VP:     core.VP{Collector: e.Collector, ASN: e.PeerASN},
					Time:   e.Timestamp,
					Routes: map[netip.Prefix]aspath.Seq{},
				}
				feeds[k] = fd
			}
			pfx := prefixset.Canonical(e.Prefix)
			if !pfx.IsValid() {
				continue
			}
			if _, dup := fd.Routes[pfx]; dup {
				fd.Duplicates++
				continue
			}
			if e.PathUnusable {
				// Multi-AS-set or confederation: the path is unusable; the
				// prefix is treated as unseen at this feed (§2.4.4).
				fd.ASSetDropped++
				continue
			}
			// The stored Seq is table-owned: stable for the life of the
			// table, no per-element copy.
			//atomlint:owned table-owned Seq: the era's intern table outlives every feed built from it
			fd.Routes[pfx] = table.Seq(e.InternedPath)
		}
	}
	list := make([]*Feed, 0, len(feeds))
	for _, fd := range feeds {
		list = append(list, fd)
	}
	// The map iteration above hands CleanFeeds its feed order; sort by VP
	// so interning and report assembly see a process-stable sequence.
	sort.Slice(list, func(i, j int) bool {
		if list[i].VP.Collector != list[j].VP.Collector {
			return list[i].VP.Collector < list[j].VP.Collector
		}
		return list[i].VP.ASN < list[j].VP.ASN
	})
	// Merge the RIB stream's own quarantine verdicts (degradation
	// budgets blown while reading these archives) into the caller's set
	// before the feed pipeline runs. Copy: opts is the caller's value.
	if q := stream.Quarantined(); len(q) > 0 {
		merged := make(map[string]bool, len(opts.QuarantinedCollectors)+len(q))
		for name, v := range opts.QuarantinedCollectors {
			merged[name] = v
		}
		for _, name := range q {
			merged[name] = true
		}
		opts.QuarantinedCollectors = merged
	}
	sp.SetAttr("sources", len(sources))
	sp.SetAttr("rib_elems", elems)
	sp.SetAttr("feeds", len(list))
	sp.SetAttr("decode_workers", parallel.Workers(opts.Workers))
	sp.SetAttr("decode_bytes", int(stream.DecodedBytes()))
	sp.End()
	opts.Intern = table
	return CleanFeeds(list, updateWarnings, opts)
}

// CleanFeeds runs the pipeline over already-ingested feeds.
func CleanFeeds(list []*Feed, updateWarnings []bgpstream.Warning, opts Options) (*core.Snapshot, *Report, error) {
	sp := opts.Span.Child("sanitize.clean_feeds")
	defer sp.End()
	reg := opts.Metrics
	rep := &Report{RemovedPeerASes: map[uint32]RemovalReason{}}
	// Remember whether any input feed carried routes: the
	// all-feeds-removed gate below distinguishes "filters ate real data"
	// (an error) from "there was nothing to see" (a legal empty era).
	hadData := false
	for _, f := range list {
		if len(f.Routes) > 0 {
			hadData = true
			break
		}
	}
	// Quarantine: feeds from collectors whose sources blew their
	// degradation budget are excluded wholesale before any other stage —
	// the same mechanism as abnormal-peer removal, one level up. Their
	// stats appear nowhere else in the report.
	if len(opts.QuarantinedCollectors) > 0 {
		kept := make([]*Feed, 0, len(list))
		for _, f := range list {
			if opts.QuarantinedCollectors[f.VP.Collector] {
				rep.QuarantinedFeeds++
				if reg != nil {
					reg.Counter("sanitize.vp_dropped", "vp", f.VP.String(), "cause", "quarantined").Inc()
				}
				continue
			}
			kept = append(kept, f)
		}
		list = kept
		names := make([]string, 0, len(opts.QuarantinedCollectors))
		for name := range opts.QuarantinedCollectors {
			names = append(names, name)
		}
		sort.Strings(names)
		rep.QuarantinedCollectors = names
		if reg != nil {
			reg.Counter("sanitize.quarantined_feeds").Add(int64(rep.QuarantinedFeeds))
		}
	}
	table := opts.Intern
	if table == nil {
		table = aspath.NewTable()
	}

	stage := sp.Child("intern")

	type feedData struct {
		stat   FeedStat
		routes map[netip.Prefix]aspath.ID
	}
	var snapTime uint32
	for _, f := range list {
		if snapTime == 0 {
			snapTime = f.Time
		}
	}
	// Per-feed interning runs on the worker pool: each worker owns its
	// feed's routes map and interns into the shared striped table. Path
	// ID values depend on interleaving, but every consumer treats IDs as
	// opaque equality tokens, so the snapshot is unchanged.
	feeds := make([]*feedData, len(list))
	parallel.ForEach(opts.Workers, len(list), func(i int) error {
		f := list[i]
		fd := &feedData{
			stat: FeedStat{
				VP:           f.VP,
				Duplicates:   f.Duplicates,
				ASSetDropped: f.ASSetDropped,
			},
			routes: make(map[netip.Prefix]aspath.ID, len(f.Routes)),
		}
		for pfx, seq := range f.Routes {
			if opts.Family == 4 && !pfx.Addr().Is4() {
				continue
			}
			if opts.Family == 6 && pfx.Addr().Is4() {
				continue
			}
			if seq.HasLoop() {
				fd.stat.LoopDropped++
				continue
			}
			if len(seq) > 1 && seq[1:].HasPrivateASN() {
				fd.stat.PrivateASN++
			}
			fd.routes[pfx] = table.Intern(seq)
		}
		feeds[i] = fd
		return nil
	})
	if reg != nil {
		reg.Counter("sanitize.feeds").Add(int64(len(feeds)))
		var loops, dups, assets int64
		for _, fd := range feeds {
			loops += int64(fd.stat.LoopDropped)
			dups += int64(fd.stat.Duplicates)
			assets += int64(fd.stat.ASSetDropped)
		}
		reg.Counter("sanitize.routes_dropped", "cause", "loop").Add(loops)
		reg.Counter("sanitize.routes_dropped", "cause", "duplicate").Add(dups)
		reg.Counter("sanitize.routes_dropped", "cause", "as-set").Add(assets)
	}
	stage.SetAttr("feeds", len(feeds))
	stage.SetAttr("paths_interned", table.Len())
	stage.End()
	stage = sp.Child("abnormal_peers")

	// Abnormal peers from update-stream warnings.
	warnByPeer := map[uint32]int{}
	for _, w := range updateWarnings {
		if w.PeerASN != 0 {
			warnByPeer[w.PeerASN]++
		}
	}
	for asn, n := range warnByPeer {
		if n > opts.MaxParseWarnings {
			rep.RemovedPeerASes[asn] = RemovedAddPath
		}
	}

	// Session flap storms: a peer whose sessions bounced more than
	// MaxSessionFlaps times across the update window holds a RIB that is
	// a stale snapshot of an unstable view; remove the peer AS exactly
	// like the other abnormal-peer classes.
	if opts.MaxSessionFlaps > 0 {
		for asn, n := range opts.SessionFlaps {
			if n > opts.MaxSessionFlaps {
				rep.RemovedPeerASes[asn] = RemovedFlapStorm
			}
		}
	}

	// Abnormal peers from feed-level shares. Removal is by peer AS
	// (every feed of that AS goes), matching the paper.
	for _, fd := range feeds {
		n := len(fd.routes)
		fd.stat.UniquePrefixes = n
		if n == 0 {
			continue
		}
		if float64(fd.stat.PrivateASN)/float64(n) > opts.PrivateASNShare {
			rep.RemovedPeerASes[fd.stat.VP.ASN] = RemovedPrivateASN
		}
		if float64(fd.stat.Duplicates)/float64(n+fd.stat.Duplicates) > opts.DuplicateShare {
			rep.RemovedPeerASes[fd.stat.VP.ASN] = RemovedDuplicates
		}
	}
	if reg != nil {
		for _, reason := range rep.RemovedPeerASes {
			reg.Counter("sanitize.removed_peer_ases", "reason", string(reason)).Inc()
		}
	}
	stage.SetAttr("removed_peer_ases", len(rep.RemovedPeerASes))
	stage.End()
	stage = sp.Child("full_feed")

	// Full-feed inference over surviving feeds.
	max := 0
	for _, fd := range feeds {
		if _, gone := rep.RemovedPeerASes[fd.stat.VP.ASN]; gone {
			continue
		}
		if len(fd.routes) > max {
			max = len(fd.routes)
		}
	}
	rep.MaxPrefixCount = max
	rep.FullFeedThreshold = int(opts.FullFeedFraction * float64(max))

	var vpFeeds []*feedData
	for _, fd := range feeds {
		if _, gone := rep.RemovedPeerASes[fd.stat.VP.ASN]; gone {
			if reg != nil {
				reg.Counter("sanitize.vp_dropped", "vp", fd.stat.VP.String(), "cause", "abnormal-peer").Inc()
			}
			continue
		}
		if len(fd.routes) > rep.FullFeedThreshold ||
			(opts.KeepAllPrefixes && len(fd.routes) > 0) {
			fd.stat.FullFeed = len(fd.routes) > rep.FullFeedThreshold
			if fd.stat.FullFeed {
				rep.FullFeeds++
			}
			vpFeeds = append(vpFeeds, fd)
		} else if reg != nil {
			reg.Counter("sanitize.vp_dropped", "vp", fd.stat.VP.String(), "cause", "below-threshold").Inc()
		}
	}
	if reg != nil {
		reg.Counter("sanitize.vps_admitted").Add(int64(len(vpFeeds)))
	}
	// Deterministic VP order.
	sort.Slice(vpFeeds, func(i, j int) bool {
		a, b := vpFeeds[i].stat.VP, vpFeeds[j].stat.VP
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.ASN < b.ASN
	})
	for _, fd := range feeds {
		rep.Feeds = append(rep.Feeds, fd.stat)
	}
	sort.Slice(rep.Feeds, func(i, j int) bool {
		a, b := rep.Feeds[i].VP, rep.Feeds[j].VP
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.ASN < b.ASN
	})

	stage.SetAttr("max_prefixes", rep.MaxPrefixCount)
	stage.SetAttr("threshold", rep.FullFeedThreshold)
	stage.SetAttr("full_feeds", rep.FullFeeds)
	stage.SetAttr("vps", len(vpFeeds))
	stage.End()

	// Refuse to emit an empty snapshot when sanitization itself removed
	// every feed that had data: downstream an empty era is
	// indistinguishable from a healthy one with nothing to show. An era
	// that was empty on arrival (or empty in the requested family, with
	// no removals) still passes through.
	if len(vpFeeds) == 0 && hadData &&
		(rep.QuarantinedFeeds > 0 || len(rep.RemovedPeerASes) > 0) {
		return nil, rep, fmt.Errorf("%w: %d feeds quarantined, %d peer ASes removed",
			ErrAllFeedsRemoved, rep.QuarantinedFeeds, len(rep.RemovedPeerASes))
	}
	stage = sp.Child("admission")

	// Prefix admission: length + visibility thresholds over VP feeds.
	// The candidate set is the sorted union of feed prefixes; distinct
	// collector / peer-AS counts then come from two reusable stamp
	// arrays indexed by dense feed-level IDs, so the whole stage
	// allocates a handful of flat slices instead of three maps per
	// prefix.
	total := 0
	for _, fd := range vpFeeds {
		total += len(fd.routes)
	}
	cand := make([]netip.Prefix, 0, total)
	for _, fd := range vpFeeds {
		for pfx := range fd.routes {
			cand = append(cand, pfx)
		}
	}
	prefixset.SortPrefixes(cand)
	uniq := cand[:0]
	for i, pfx := range cand {
		if i == 0 || pfx != cand[i-1] {
			uniq = append(uniq, pfx)
		}
	}
	rep.PrefixesSeen = len(uniq)

	collID := map[string]int32{}
	asnID := map[uint32]int32{}
	feedColl := make([]int32, len(vpFeeds))
	feedASN := make([]int32, len(vpFeeds))
	for i, fd := range vpFeeds {
		ci, ok := collID[fd.stat.VP.Collector]
		if !ok {
			ci = int32(len(collID))
			collID[fd.stat.VP.Collector] = ci
		}
		ai, ok := asnID[fd.stat.VP.ASN]
		if !ok {
			ai = int32(len(asnID))
			asnID[fd.stat.VP.ASN] = ai
		}
		feedColl[i], feedASN[i] = ci, ai
	}
	collStamp := make([]int32, len(collID))
	asnStamp := make([]int32, len(asnID))

	admitted := make([]netip.Prefix, 0, len(uniq))
	for ci, pfx := range uniq {
		if opts.LengthFilter && !prefixset.Admissible(pfx) {
			rep.DroppedByLength++
			continue
		}
		if !opts.KeepAllPrefixes {
			// Count distinct collectors and peer ASes seeing pfx by
			// stamping each dense ID with this prefix's ordinal — no
			// clearing between prefixes.
			stamp := int32(ci + 1)
			nColl, nASN := 0, 0
			for fi, fd := range vpFeeds {
				if _, ok := fd.routes[pfx]; !ok {
					continue
				}
				if collStamp[feedColl[fi]] != stamp {
					collStamp[feedColl[fi]] = stamp
					nColl++
				}
				if asnStamp[feedASN[fi]] != stamp {
					asnStamp[feedASN[fi]] = stamp
					nASN++
				}
			}
			if nColl < opts.MinCollectors {
				rep.DroppedByCollector++
				continue
			}
			if nASN < opts.MinPeerASes {
				rep.DroppedByPeerASes++
				continue
			}
		}
		admitted = append(admitted, pfx)
	}
	// admitted inherits uniq's sorted order; no re-sort needed.
	rep.PrefixesAdmitted = len(admitted)
	if reg != nil {
		reg.Counter("sanitize.prefixes_seen").Add(int64(rep.PrefixesSeen))
		reg.Counter("sanitize.prefixes_admitted").Add(int64(rep.PrefixesAdmitted))
		reg.Counter("sanitize.prefixes_dropped", "filter", "length").Add(int64(rep.DroppedByLength))
		reg.Counter("sanitize.prefixes_dropped", "filter", "min-collectors").Add(int64(rep.DroppedByCollector))
		reg.Counter("sanitize.prefixes_dropped", "filter", "min-peer-ases").Add(int64(rep.DroppedByPeerASes))
	}
	stage.SetAttr("seen", rep.PrefixesSeen)
	stage.SetAttr("admitted", rep.PrefixesAdmitted)
	stage.End()
	stage = sp.Child("assemble")

	// Assemble the snapshot.
	vps := make([]core.VP, len(vpFeeds))
	for i, fd := range vpFeeds {
		vps[i] = fd.stat.VP
	}
	// Share the interning table built during ingestion.
	snap := core.NewSnapshotWith(snapTime, vps, admitted, table)
	// Each chunk owns a disjoint range of snapshot rows; only the MOAS
	// tally is shared, so it accumulates atomically. The tiny origins
	// scratch is reused across the chunk's prefixes (origin counts per
	// prefix are small; a linear scan beats a map).
	var moas atomic.Int64
	parallel.Chunks(opts.Workers, len(admitted), func(lo, hi int) error {
		origins := make([]uint32, 0, 8)
		for p := lo; p < hi; p++ {
			pfx := admitted[p]
			row := snap.Row(p)
			origins = origins[:0]
			for v, fd := range vpFeeds {
				if id, ok := fd.routes[pfx]; ok {
					row[v] = id
					if o, ok := table.Origin(id); ok {
						known := false
						for _, seen := range origins {
							if seen == o {
								known = true
								break
							}
						}
						if !known {
							origins = append(origins, o)
						}
					}
				}
			}
			if len(origins) > 1 {
				moas.Add(1)
			}
		}
		return nil
	})
	rep.MOASPrefixes = int(moas.Load())
	if reg != nil {
		reg.Counter("sanitize.moas_prefixes").Add(int64(rep.MOASPrefixes))
	}
	stage.End()
	sp.SetAttr("feeds", len(feeds))
	sp.SetAttr("vps", len(vpFeeds))
	sp.SetAttr("prefixes", rep.PrefixesAdmitted)
	return snap, rep, nil
}

// CountAdmitted runs only the visibility portion of the pipeline for a
// threshold pair — the Table 7 sensitivity sweep — reusing a prepared
// visibility index built by VisibilityIndex.
type Visibility struct {
	collectors []uint8 // per prefix: distinct collector count (capped 255)
	peerASes   []uint16
	lengthOK   []bool
}

// VisibilityIndex precomputes per-prefix visibility over full feeds so
// threshold sweeps don't re-read the archives.
func VisibilityIndex(sources []bgpstream.Source, updateWarnings []bgpstream.Warning, opts Options) (*Visibility, error) {
	// Reuse Clean with thresholds of 1 to keep a single code path.
	sweep := opts
	sweep.MinCollectors = 1
	sweep.MinPeerASes = 1
	sweep.LengthFilter = false
	snap, _, err := Clean(sources, updateWarnings, sweep)
	if err != nil {
		return nil, err
	}
	v := &Visibility{
		collectors: make([]uint8, len(snap.Prefixes)),
		peerASes:   make([]uint16, len(snap.Prefixes)),
		lengthOK:   make([]bool, len(snap.Prefixes)),
	}
	for p, pfx := range snap.Prefixes {
		colls := map[string]struct{}{}
		ases := map[uint32]struct{}{}
		for vi, id := range snap.Row(p) {
			if id == aspath.Empty {
				continue
			}
			colls[snap.VPs[vi].Collector] = struct{}{}
			ases[snap.VPs[vi].ASN] = struct{}{}
		}
		if len(colls) > 255 {
			v.collectors[p] = 255
		} else {
			v.collectors[p] = uint8(len(colls))
		}
		if len(ases) > 65535 {
			v.peerASes[p] = 65535
		} else {
			v.peerASes[p] = uint16(len(ases))
		}
		v.lengthOK[p] = prefixset.Admissible(pfx)
	}
	return v, nil
}

// Count returns the number of prefixes admitted under a threshold pair
// (with the length filter applied), reproducing one Table 7 cell.
func (v *Visibility) Count(minCollectors, minPeerASes int) int {
	n := 0
	for p := range v.collectors {
		if !v.lengthOK[p] {
			continue
		}
		if int(v.collectors[p]) >= minCollectors && int(v.peerASes[p]) >= minPeerASes {
			n++
		}
	}
	return n
}
