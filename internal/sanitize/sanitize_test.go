package sanitize_test

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

// buildScenario produces RIB archives with artifacts plus update-stream
// warnings, the full raw input of the pipeline.
func buildScenario(t *testing.T, era topology.Era, artifacts bool) ([]bgpstream.Source, []bgpstream.Warning, *topology.Graph, *collector.Infra) {
	t.Helper()
	p := topology.DefaultParams(31)
	p.Scale = 0.01
	g := topology.Generate(p, era)
	in := collector.BuildInfra(g, collector.Config{Seed: 7, Artifacts: artifacts})
	snap := collector.BuildRIBs(g, in, nil, collector.EpochOf(era))
	var sources []bgpstream.Source
	for name, data := range snap.Archives {
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	var warnings []bgpstream.Warning
	if artifacts {
		cfg := collector.UpdateConfig{
			Model: routing.ChurnModel{Seed: 9, UnitEventRate: 0.8, VPEventRate: 0.02, TransitFlipShare: 0.4},
			FromT: 0, ToT: 4.0 / 24.0,
			BaseTime:        collector.EpochOf(era),
			FullMessageProb: 0.8,
			FlapRate:        0.05,
		}
		updates := collector.BuildUpdates(g, in, cfg)
		var usrc []bgpstream.Source
		for name, data := range updates {
			usrc = append(usrc, bgpstream.BytesSource(name, data, bgp.Options{}))
		}
		us := bgpstream.NewStream(nil, usrc...)
		if _, err := us.All(); err != nil {
			t.Fatal(err)
		}
		warnings = us.Warnings()
	}
	return sources, warnings, g, in
}

func TestCleanBasics(t *testing.T) {
	sources, _, g, in := buildScenario(t, topology.EraOf(2012, 1), false)
	snap, rep, err := sanitize.Clean(sources, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.VPs) == 0 || len(snap.Prefixes) == 0 {
		t.Fatalf("empty snapshot: %d VPs, %d prefixes", len(snap.VPs), len(snap.Prefixes))
	}
	// Full-feed count should be close to the infra's ground truth
	// (a full feed can dip below 90% if selective export hides routes).
	truth := len(in.FullFeedASNs())
	if rep.FullFeeds < truth/2 || rep.FullFeeds > truth*3 {
		t.Errorf("full feeds = %d, ground truth distinct ASNs = %d", rep.FullFeeds, truth)
	}
	// All admitted prefixes must be real graph prefixes (ghosts gone).
	v4, v6 := g.TotalPrefixes()
	if rep.PrefixesAdmitted > v4+v6 {
		t.Errorf("admitted %d > originated %d", rep.PrefixesAdmitted, v4+v6)
	}
	// Every stored route must start at the VP's ASN.
	for p := range snap.Prefixes {
		for v := range snap.VPs {
			seq := snap.Route(p, v)
			if len(seq) > 0 && seq[0] != snap.VPs[v].ASN {
				t.Fatalf("route %v does not start at VP %d", seq, snap.VPs[v].ASN)
			}
		}
	}
	// Funnel arithmetic.
	if rep.PrefixesAdmitted+rep.DroppedByLength+rep.DroppedByCollector+rep.DroppedByPeerASes != rep.PrefixesSeen {
		t.Errorf("funnel mismatch: %+v", rep)
	}
}

func TestCleanRemovesGhosts(t *testing.T) {
	sources, _, _, _ := buildScenario(t, topology.EraOf(2012, 1), false)
	snap, rep, err := sanitize.Clean(sources, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Ghost prefixes live in 176.0.0.0/8; none may survive the
	// visibility filter.
	for _, pfx := range snap.Prefixes {
		if pfx.Addr().Is4() && pfx.Addr().As4()[0] == 176 {
			t.Errorf("ghost prefix %v survived", pfx)
		}
	}
	_ = rep // ghosts live in partial feeds, excluded at full-feed inference
}

// TestVisibilityThresholdsDirect exercises the §2.4.3 filters on a
// hand-built feed set where ground truth is exact.
func TestVisibilityThresholdsDirect(t *testing.T) {
	mk := func(coll string, asn uint32, prefixes ...string) *sanitize.Feed {
		f := &sanitize.Feed{
			VP:     core.VP{Collector: coll, ASN: asn},
			Time:   100,
			Routes: map[netip.Prefix]aspath.Seq{},
		}
		for _, p := range prefixes {
			f.Routes[netip.MustParsePrefix(p)] = aspath.Seq{asn, 9}
		}
		return f
	}
	wide := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24", "10.0.4.0/24"}
	feeds := []*sanitize.Feed{
		mk("c1", 1, wide...),
		mk("c1", 2, wide...),
		mk("c2", 3, wide...),
		mk("c2", 4, wide...),
	}
	// A prefix seen at one collector only (2 peers at c1): the collector
	// rule rejects it first.
	feeds[0].Routes[netip.MustParsePrefix("10.9.0.0/24")] = aspath.Seq{1, 9}
	feeds[1].Routes[netip.MustParsePrefix("10.9.0.0/24")] = aspath.Seq{2, 9}
	// A prefix seen at two collectors but by only 2 peer ASes: passes
	// the collector rule, fails the peer-AS rule.
	feeds[0].Routes[netip.MustParsePrefix("10.10.0.0/24")] = aspath.Seq{1, 9}
	feeds[2].Routes[netip.MustParsePrefix("10.10.0.0/24")] = aspath.Seq{3, 9}
	// A too-specific prefix seen everywhere.
	for _, f := range feeds {
		f.Routes[netip.MustParsePrefix("10.8.0.0/25")] = aspath.Seq{f.VP.ASN, 9}
	}
	opts := sanitize.Defaults()
	// Keep every feed a vantage point despite the deliberate size skew.
	opts.FullFeedFraction = 0.5
	snap, rep, err := sanitize.CleanFeeds(feeds, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Prefixes) != 5 {
		t.Errorf("admitted %d prefixes, want the 5 wide ones: %v", len(snap.Prefixes), snap.Prefixes)
	}
	if rep.DroppedByCollector != 1 {
		t.Errorf("DroppedByCollector = %d, want 1", rep.DroppedByCollector)
	}
	if rep.DroppedByPeerASes != 1 {
		t.Errorf("DroppedByPeerASes = %d, want 1", rep.DroppedByPeerASes)
	}
	if rep.DroppedByLength != 1 {
		t.Errorf("DroppedByLength = %d, want 1", rep.DroppedByLength)
	}
}

func TestCleanRemovesAbnormalPeers(t *testing.T) {
	sources, warnings, _, in := buildScenario(t, topology.EraOf(2022, 1), true)
	// Ensure the scenario actually contains artifact peers; if not,
	// the assertions below would be vacuous.
	var wantPriv, wantDup, wantAddPath []uint32
	for _, cp := range in.AllPeers() {
		switch cp.Peer.Artifact {
		case collector.ArtifactPrivateASN:
			wantPriv = append(wantPriv, cp.Peer.ASN)
		case collector.ArtifactDuplicates:
			wantDup = append(wantDup, cp.Peer.ASN)
		case collector.ArtifactAddPath:
			wantAddPath = append(wantAddPath, cp.Peer.ASN)
		}
	}
	_, rep, err := sanitize.Clean(sources, warnings, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	check := func(asns []uint32, reason sanitize.RemovalReason) {
		for _, asn := range asns {
			if got, ok := rep.RemovedPeerASes[asn]; !ok {
				t.Errorf("peer %d (%s) not removed; removals: %v", asn, reason, rep.RemovedPeerASes)
			} else if got != reason {
				t.Errorf("peer %d removed for %q, want %q", asn, got, reason)
			}
		}
	}
	check(wantPriv, sanitize.RemovedPrivateASN)
	check(wantDup, sanitize.RemovedDuplicates)
	check(wantAddPath, sanitize.RemovedAddPath)
	if len(wantPriv)+len(wantDup)+len(wantAddPath) == 0 {
		t.Skip("no artifact peers at this scale/seed — enlarge scenario")
	}
	// False positives: clean peers must not be removed en masse.
	if len(rep.RemovedPeerASes) > len(wantPriv)+len(wantDup)+len(wantAddPath)+2 {
		t.Errorf("too many removals: %v", rep.RemovedPeerASes)
	}
}

func TestCleanFamilies(t *testing.T) {
	sources, _, _, _ := buildScenario(t, topology.EraOf(2020, 1), false)
	optsV4 := sanitize.Defaults()
	optsV4.Family = 4
	s4, _, err := sanitize.Clean(sources, nil, optsV4)
	if err != nil {
		t.Fatal(err)
	}
	optsV6 := sanitize.Defaults()
	optsV6.Family = 6
	s6, _, err := sanitize.Clean(sources, nil, optsV6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s4.Prefixes) == 0 || len(s6.Prefixes) == 0 {
		t.Fatalf("v4=%d v6=%d prefixes", len(s4.Prefixes), len(s6.Prefixes))
	}
	for _, pfx := range s4.Prefixes {
		if !pfx.Addr().Is4() {
			t.Fatalf("v6 prefix %v in v4 snapshot", pfx)
		}
	}
	for _, pfx := range s6.Prefixes {
		if pfx.Addr().Is4() {
			t.Fatalf("v4 prefix %v in v6 snapshot", pfx)
		}
	}
}

func TestAfek2002Mode(t *testing.T) {
	p := topology.DefaultParams(31)
	p.Scale = 0.01
	g := topology.Generate(p, topology.EraOf(2002, 1))
	in := collector.BuildInfra(g, collector.Config{Seed: 7, ForceCollectors: 1, ForceFullFeeds: 13})
	snap := collector.BuildRIBs(g, in, nil, collector.EpochOf(g.Era))
	var sources []bgpstream.Source
	for name, data := range snap.Archives {
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	s, rep, err := sanitize.Clean(sources, nil, sanitize.Afek2002())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.VPs) != 13 {
		t.Errorf("VPs = %d, want 13", len(s.VPs))
	}
	// No prefixes dropped in reproduction mode.
	if rep.PrefixesAdmitted != rep.PrefixesSeen {
		t.Errorf("2002 mode dropped prefixes: %d/%d", rep.PrefixesAdmitted, rep.PrefixesSeen)
	}
}

func TestVisibilitySweep(t *testing.T) {
	sources, _, _, _ := buildScenario(t, topology.EraOf(2016, 1), false)
	vis, err := sanitize.VisibilityIndex(sources, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Monotone: raising either threshold can only shrink the count.
	prev := -1
	for c := 1; c <= 3; c++ {
		row := make([]int, 0, 5)
		for a := 1; a <= 5; a++ {
			row = append(row, vis.Count(c, a))
		}
		for i := 1; i < len(row); i++ {
			if row[i] > row[i-1] {
				t.Errorf("collectors=%d: count rose with stricter peer threshold: %v", c, row)
			}
		}
		if prev >= 0 && row[0] > prev {
			t.Errorf("count rose with stricter collector threshold")
		}
		prev = row[0]
	}
	if vis.Count(1, 1) == 0 {
		t.Fatal("empty visibility index")
	}
	// The paper's chosen cell must keep the bulk of prefixes (<1%
	// difference vs the loosest within-reason cell, per Table 7).
	loose, chosen := vis.Count(1, 2), vis.Count(2, 4)
	if chosen == 0 || float64(loose-chosen)/float64(loose) > 0.2 {
		t.Errorf("chosen thresholds dropped too much: %d -> %d", loose, chosen)
	}
}

func TestCleanPathsShareTable(t *testing.T) {
	sources, _, _, _ := buildScenario(t, topology.EraOf(2012, 1), false)
	snap, _, err := sanitize.Clean(sources, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Route IDs must resolve through snap.Paths.
	resolved := 0
	for p := range snap.Prefixes {
		for v := range snap.VPs {
			if id := snap.RouteID(p, v); id != aspath.Empty {
				if snap.Paths.Seq(id) == nil {
					t.Fatalf("dangling path id %d", id)
				}
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Fatal("no routes resolved")
	}
}
