package obs

import "testing"

// TestDisabledObservabilityAllocationFree pins the acceptance contract
// for every new surface: with the flags off (nil receivers everywhere)
// the instrumented pipeline pays nil checks only — zero allocations.
func TestDisabledObservabilityAllocationFree(t *testing.T) {
	var p *Progress
	var s *Sampler
	var sp *Span
	var reg *Registry
	var d *DebugServer
	got := testing.AllocsPerRun(1000, func() {
		p.Begin("trend", 3)
		p.Step("era_done", "2024Q1", 10)
		p.End("trend_done")
		s.Stop()
		c := sp.Child("stage")
		c.SetAttr("n", 1) // small-int boxing is allocation-free
		c.End()
		_ = sp.Duration()
		_ = sp.Report()
		reg.Counter("c", "k", "v").Inc()
		reg.Gauge("g").Set(1)
		reg.Histogram("h", "k", "v").Observe(1)
		_ = reg.Snapshot()
		_ = TraceEvents(nil)
		d.Close()
	})
	if got != 0 {
		t.Errorf("disabled observability allocates %.1f per run, want 0", got)
	}
}
