package obs

import (
	"testing"
	"time"
)

// fakeClock swaps the package clock seam for a stepping clock: the
// first read returns start, each subsequent read advances by step.
// Restored on test cleanup. Tests using it must not run in parallel
// with anything else reading the clock (none of this package's tests
// call t.Parallel, and samplers are stopped before returning).
func fakeClock(t *testing.T, start time.Time, step time.Duration) {
	t.Helper()
	real := clockNow
	n := 0
	clockNow = func() time.Time {
		ts := start.Add(time.Duration(n) * step)
		n++
		return ts
	}
	t.Cleanup(func() { clockNow = real })
}
