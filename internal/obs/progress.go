package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Progress emits structured progress events as JSON lines — one object
// per line, machine-parseable mid-run — so a multi-hour RunTrend
// reports per-era throughput and an ETA while it works instead of
// staying silent until exit. Events go to the writer given to
// NewProgress (stderr under every command's -progress flag).
//
// All methods are nil-safe no-ops, so the pipeline threads a *Progress
// unconditionally and pays one nil check when the flag is off. Methods
// are safe for concurrent use; under a parallel RunTrend the era
// completion order (and therefore event order) follows the scheduler,
// which is exactly the wall-clock truth progress reporting is for —
// the pipeline's *results* stay byte-identical regardless.
type Progress struct {
	mu    sync.Mutex
	enc   *json.Encoder
	tool  string
	start time.Time
	total int
	done  int
	rows  int64
}

// ProgressEvent is one emitted line.
type ProgressEvent struct {
	// Event names the milestone: trend_start, era_done, trend_done,
	// splits_done, run_done, ...
	Event string `json:"event"`
	Tool  string `json:"tool"`
	// Era labels per-era events ("2024Q1").
	Era string `json:"era,omitempty"`
	// Done/Total count completed units against the Begin total.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Rows is this step's processed row count (admitted prefixes for an
	// era); TotalRows and RowsPerSec are cumulative across the run.
	Rows       int64   `json:"rows,omitempty"`
	TotalRows  int64   `json:"total_rows,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	// ElapsedMS is wall time since NewProgress; ETAMS extrapolates the
	// remaining units from the pace so far (only with a known total).
	ElapsedMS int64 `json:"elapsed_ms"`
	ETAMS     int64 `json:"eta_ms,omitempty"`
}

// NewProgress starts a progress stream for tool on w.
func NewProgress(w io.Writer, tool string) *Progress {
	return &Progress{enc: json.NewEncoder(w), tool: tool, start: clockNow()}
}

// Begin announces a unit of work with a known size (e.g. a trend over
// len(eras) eras) and resets the completion counter.
func (p *Progress) Begin(event string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.done = 0
	p.emit(ProgressEvent{Event: event, Total: total})
}

// Step records one completed unit (rows = rows it processed) and emits
// the event with cumulative throughput and, when a Begin total is
// known, an ETA.
func (p *Progress) Step(event, era string, rows int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.rows += rows
	ev := ProgressEvent{Event: event, Era: era, Done: p.done, Total: p.total, Rows: rows}
	elapsed := clockNow().Sub(p.start)
	if p.total > 0 && p.done < p.total {
		ev.ETAMS = int64(float64(elapsed.Milliseconds()) / float64(p.done) * float64(p.total-p.done))
	}
	p.emitAt(ev, elapsed)
}

// End closes out a unit of work (or the whole run).
func (p *Progress) End(event string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emit(ProgressEvent{Event: event, Done: p.done, Total: p.total})
}

// emit fills the cumulative fields and writes one line. Callers hold
// p.mu.
func (p *Progress) emit(ev ProgressEvent) {
	p.emitAt(ev, clockNow().Sub(p.start))
}

func (p *Progress) emitAt(ev ProgressEvent, elapsed time.Duration) {
	ev.Tool = p.tool
	ev.TotalRows = p.rows
	ev.ElapsedMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 && p.rows > 0 {
		ev.RowsPerSec = float64(p.rows) / secs
	}
	p.enc.Encode(ev)
}
