package obs

import (
	"errors"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition bytes: deterministic
// family and series order, the atom_ naming convention, summary
// quantiles, and the empty-histogram edge case (count 0, all-zero
// values, no NaN anywhere).
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bgpstream.records").Add(42)
	reg.Counter("sanitize.dropped", "filter", "length").Add(7)
	reg.Gauge("vps").Set(13)
	h := reg.Histogram("mrt.msg_bytes", "collector", "rrc00")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	reg.Histogram("empty.h") // scrapes as count=0, no NaN

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP atom_bgpstream_records source bgpstream.records
# TYPE atom_bgpstream_records counter
atom_bgpstream_records 42
# HELP atom_empty_h source empty.h
# TYPE atom_empty_h summary
atom_empty_h{quantile="0.5"} 0
atom_empty_h{quantile="0.9"} 0
atom_empty_h{quantile="0.99"} 0
atom_empty_h_sum 0
atom_empty_h_count 0
# HELP atom_empty_h_max source empty.h (max)
# TYPE atom_empty_h_max gauge
atom_empty_h_max 0
# HELP atom_empty_h_min source empty.h (min)
# TYPE atom_empty_h_min gauge
atom_empty_h_min 0
# HELP atom_mrt_msg_bytes source mrt.msg_bytes
# TYPE atom_mrt_msg_bytes summary
atom_mrt_msg_bytes{collector="rrc00",quantile="0.5"} 3
atom_mrt_msg_bytes{collector="rrc00",quantile="0.9"} 100
atom_mrt_msg_bytes{collector="rrc00",quantile="0.99"} 100
atom_mrt_msg_bytes_sum{collector="rrc00"} 106
atom_mrt_msg_bytes_count{collector="rrc00"} 4
# HELP atom_mrt_msg_bytes_max source mrt.msg_bytes (max)
# TYPE atom_mrt_msg_bytes_max gauge
atom_mrt_msg_bytes_max{collector="rrc00"} 100
# HELP atom_mrt_msg_bytes_min source mrt.msg_bytes (min)
# TYPE atom_mrt_msg_bytes_min gauge
atom_mrt_msg_bytes_min{collector="rrc00"} 1
# HELP atom_sanitize_dropped source sanitize.dropped
# TYPE atom_sanitize_dropped counter
atom_sanitize_dropped{filter="length"} 7
# HELP atom_vps source vps
# TYPE atom_vps gauge
atom_vps 13
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if lint := LintPromText(buf.String()); len(lint) != 0 {
		t.Errorf("golden exposition fails its own lint: %v", lint)
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	var buf strings.Builder
	if err := nilReg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, buf.String())
	}
	var nilSnap *MetricsSnapshot
	if err := nilSnap.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil snapshot: err=%v out=%q", err, buf.String())
	}
	if err := NewRegistry().WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("empty registry: err=%v out=%q", err, buf.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestWritePrometheusWriterError(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	if err := reg.WritePrometheus(failWriter{}); err == nil {
		t.Error("writer error not surfaced")
	}
}

func TestPromEscapingAndSorting(t *testing.T) {
	reg := NewRegistry()
	// Labels given in reverse order with characters needing escapes and
	// name sanitization.
	reg.Counter("weird.metric-name", "z", `a"b\c`, "1bad", "x\ny").Inc()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "atom_weird_metric_name{_1bad=\"x\\ny\",z=\"a\\\"b\\\\c\"} 1\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped sample missing:\nwant %q\ngot:\n%s", want, buf.String())
	}
}

// TestHistogramQuantiles pins the nearest-rank bucket convention and
// its edge cases.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	// Single observation: every quantile is that exact value (clamped
	// from the bucket bound to the observed max).
	reg.Histogram("one").Observe(100)
	s := reg.Snapshot().Histograms["one"]
	if s.P50 != 100 || s.P90 != 100 || s.P99 != 100 {
		t.Errorf("single-observation quantiles = %d/%d/%d, want 100 each", s.P50, s.P90, s.P99)
	}
	// Empty: all zero, and Mean stays finite.
	e := reg.Histogram("none")
	_ = e
	se := reg.Snapshot().Histograms["none"]
	if se.P50 != 0 || se.P99 != 0 || se.Mean() != 0 || se.Count != 0 {
		t.Errorf("empty histogram = %+v", se)
	}
	// Uniform small values: p50 lands in the right bucket, clamped to
	// the observed range.
	u := reg.Histogram("uniform")
	for v := int64(1); v <= 100; v++ {
		u.Observe(v)
	}
	su := reg.Snapshot().Histograms["uniform"]
	// rank(0.5)=50 → bucket le=63; rank(0.99)=99 → le=127 clamps to 100.
	if su.P50 != 63 {
		t.Errorf("p50 = %d, want 63", su.P50)
	}
	if su.P90 != 127 || su.P99 != 100 {
		// p90: rank 90 → le=127, clamped to max=100.
		if su.P90 != 100 {
			t.Errorf("p90 = %d, want 100 (clamped)", su.P90)
		}
		if su.P99 != 100 {
			t.Errorf("p99 = %d, want 100 (clamped)", su.P99)
		}
	}
	// Quantile on a hand-built snapshot past the last bucket.
	hs := HistogramSnapshot{Count: 2, Min: 1, Max: 9, Buckets: []HistBucket{{Le: 1, Count: 1}, {Le: 15, Count: 1}}}
	if got := hs.Quantile(1.0); got != 9 {
		t.Errorf("Quantile(1.0) = %d, want 9", got)
	}
	if got := hs.Quantile(0.0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1 (rank clamps to 1)", got)
	}
}

// TestLintPromTextCatchesViolations exercises the promlint-lite rules
// against hand-built bad documents so the verify.sh smoke's gate is
// itself tested.
func TestLintPromTextCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no type", "# HELP atom_x source x\natom_x 1\n", "sample without TYPE"},
		{"no help", "# TYPE atom_x counter\natom_x 1\n", "sample without HELP"},
		{"bad name", "# HELP other_x source x\n# TYPE other_x counter\nother_x 1\n", "atom_ convention"},
		{"dup series", "# HELP atom_x source x\n# TYPE atom_x counter\natom_x 1\natom_x 2\n", "duplicate series"},
		{"nan", "# HELP atom_x source x\n# TYPE atom_x gauge\natom_x NaN\n", "NaN value"},
		{"garbage", "# HELP atom_x source x\n# TYPE atom_x counter\n!!! not a sample\n", "unparseable sample"},
		{"bad kind", "# HELP atom_x source x\n# TYPE atom_x sandwich\natom_x 1\n", "bad TYPE kind"},
	}
	for _, tc := range cases {
		got := LintPromText(tc.text)
		found := false
		for _, p := range got {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a %q problem, got %v", tc.name, tc.want, got)
		}
	}
	clean := "# HELP atom_x source x\n# TYPE atom_x summary\natom_x{quantile=\"0.5\"} 1\natom_x_sum 1\natom_x_count 1\n"
	if got := LintPromText(clean); len(got) != 0 {
		t.Errorf("clean summary document flagged: %v", got)
	}
}
