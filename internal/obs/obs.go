// Package obs is the pipeline's telemetry layer: hierarchical stage
// spans (wall time, allocation deltas, custom attributes), typed
// process-wide metrics (counters, gauges, histograms), and run reports
// that serialize the whole picture to JSON or a human-readable tree.
//
// Everything is nil-safe: a nil *Span, *Registry, *Counter, *Gauge or
// *Histogram accepts every call as a no-op, so instrumented code paths
// carry no conditional plumbing and near-zero cost when telemetry is
// disabled (the common case). Enable it by constructing a root span
// with Root and a registry with NewRegistry and passing them down.
//
// Metric instruments are safe for concurrent use; counters and gauges
// are single atomics on the hot path. Span trees may be built from
// multiple goroutines (child creation and attribute sets are locked),
// but a single span's Start/End pair is expected to run on one
// goroutine. Allocation deltas come from runtime.ReadMemStats and are
// process-global: they are attributable to a span only while nothing
// else allocates concurrently, which holds for this repo's
// single-threaded pipeline stages.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (last write wins).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i holds [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates int64 observations into power-of-two buckets,
// tracking count, sum, min and max. Negative observations clamp to 0.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

const maxInt64 = int64(^uint64(0) >> 1)

// newHistogram returns a histogram with min primed so the first
// observation always wins the CAS race.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(maxInt64)
	return h
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistBucket is one non-empty histogram bucket: Count observations at
// most Le (the bucket's inclusive upper bound).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram copy. P50/P90/P99 are
// nearest-rank quantile estimates over the power-of-two buckets (see
// Quantile); an empty histogram reports every field as zero.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	P50     int64        `json:"p50,omitempty"`
	P90     int64        `json:"p90,omitempty"`
	P99     int64        `json:"p99,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) with the repo's
// nearest-rank convention (rank = ceil(q·n), as core.GeneralStats'
// P99AtomSize): the answer is the upper bound of the bucket holding the
// ranked observation, clamped to the observed [Min, Max] so a
// single-observation histogram reports that exact value at every
// quantile and an empty one reports 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			v := b.Le
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			if i >= 63 {
				le = maxInt64
			} else {
				le = int64(1)<<uint(i) - 1
			}
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: n})
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Registry holds the process's named metric instruments. Instruments
// are created on first use and live until Reset. The zero value is not
// usable; construct with NewRegistry. A nil *Registry no-ops every
// lookup, returning nil instruments (which in turn no-op).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Key renders a canonical metric key: name alone, or name{k=v,...} with
// labels given as alternating key, value pairs. Label order is
// preserved as given (callers should use a fixed order per call site).
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 2 + len(labels)*8)
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter for the key built
// from name and labels. Nil registry returns nil without building the
// key, keeping the disabled path allocation-free.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for the key.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for the key.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = newHistogram()
		r.hists[k] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every instrument.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. Nil registry
// returns nil.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &MetricsSnapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	return s
}

// CounterValue returns the snapshot's value for the counter under its
// canonical key (obs.Key), or 0 if the counter never fired. Nil-safe,
// so assertions can read a snapshot without checking registry wiring.
func (m *MetricsSnapshot) CounterValue(name string, labels ...string) int64 {
	if m == nil {
		return 0
	}
	return m.Counters[Key(name, labels...)]
}

// Reset drops every instrument. Existing instrument pointers held by
// callers keep working but are no longer reachable from the registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
}

// sortedKeys returns the map's keys in order (used by text rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// formatCount renders n with thousands separators for the text report.
func formatCount(n int64) string {
	s := fmt.Sprint(n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	for i, d := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(d)
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}
