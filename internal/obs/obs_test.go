package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument and span call must no-op on nil receivers.
	var reg *Registry
	reg.Counter("c", "k", "v").Inc()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(3)
	reg.Histogram("h").Observe(9)
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot != nil")
	}
	reg.Reset()

	var sp *Span
	child := sp.Child("x")
	if child != nil {
		t.Error("nil span Child != nil")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if sp.Duration() != 0 || sp.Name() != "" || sp.Report() != nil {
		t.Error("nil span accessors not zero")
	}

	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
}

func TestKey(t *testing.T) {
	if got := Key("a.b"); got != "a.b" {
		t.Errorf("Key plain = %q", got)
	}
	if got := Key("a.b", "x", "1", "y", "2"); got != "a.b{x=1,y=2}" {
		t.Errorf("Key labeled = %q", got)
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reads", "src", "rrc00")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Same key returns the same instrument.
	if reg.Counter("reads", "src", "rrc00") != c {
		t.Error("counter identity lost")
	}
	reg.Gauge("depth").Set(7)
	reg.Gauge("depth").Set(3)

	snap := reg.Snapshot()
	if snap.Counters["reads{src=rrc00}"] != 5 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Gauges["depth"] != 3 {
		t.Errorf("snapshot gauges = %+v", snap.Gauges)
	}

	reg.Reset()
	if s := reg.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Error("reset did not clear instruments")
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["sizes"]
	if s.Count != 6 || s.Sum != 106 || s.Min != 0 || s.Max != 100 {
		t.Errorf("histogram snapshot = %+v", s)
	}
	if s.Mean() != 106.0/6 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Buckets: 0 and -5 land in le=0; 1 in le=1; 2,3 in le=3; 100 in le=127.
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b.Le] = b.Count
	}
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 127: 1}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d: got %d want %d (all: %v)", le, got[le], n, got)
		}
	}
	if s.Min != 0 {
		t.Errorf("min = %d", s.Min)
	}
	// Empty histogram reports zero min.
	if e := reg.Histogram("empty"); e == nil {
		t.Fatal("nil instrument")
	}
	if s := reg.Snapshot().Histograms["empty"]; s.Min != 0 || s.Count != 0 {
		t.Errorf("empty histogram = %+v", s)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Exercised under -race by make verify: concurrent increments on
	// shared and per-goroutine keys must be safe and exact.
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := []string{"a", "b", "c", "d"}[w%4]
			for i := 0; i < iters; i++ {
				reg.Counter("shared").Inc()
				reg.Counter("per", "w", name).Inc()
				reg.Gauge("g").Set(int64(i))
				reg.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["shared"] != workers*iters {
		t.Errorf("shared = %d", snap.Counters["shared"])
	}
	if snap.Counters["per{w=a}"] != 2*iters {
		t.Errorf("per{w=a} = %d", snap.Counters["per{w=a}"])
	}
	h := snap.Histograms["h"]
	if h.Count != workers*iters || h.Min != 0 || h.Max != iters-1 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestSpanTree(t *testing.T) {
	root := Root("run")
	load := root.Child("load")
	load.SetAttr("files", 3)
	// Allocate something measurable inside the span.
	buf := make([]byte, 1<<20)
	_ = buf[len(buf)-1]
	load.End()
	san := root.Child("sanitize")
	ingest := san.Child("ingest")
	ingest.End()
	san.SetAttr("feeds", 12)
	san.SetAttr("feeds", 13) // overwrite
	san.End()
	root.End()
	root.End() // idempotent

	if root.Duration() <= 0 {
		t.Error("root duration not positive")
	}
	r := root.Report()
	if r.Name != "run" || len(r.Children) != 2 {
		t.Fatalf("report shape: %+v", r)
	}
	if r.Children[0].Name != "load" || r.Children[1].Name != "sanitize" {
		t.Error("children out of order")
	}
	if len(r.Children[1].Children) != 1 || r.Children[1].Children[0].Name != "ingest" {
		t.Error("grandchild missing")
	}
	if got := r.Children[1].Attrs; len(got) != 1 || got[0].Value != 13 {
		t.Errorf("attr overwrite failed: %+v", got)
	}
	if r.Children[0].AllocBytes < 1<<20 {
		t.Errorf("load alloc delta = %d, want >= 1MiB", r.Children[0].AllocBytes)
	}
}

func TestSpanUnendedReport(t *testing.T) {
	root := Root("run")
	time.Sleep(time.Millisecond)
	r := root.Report() // never ended
	if r.DurationMS <= 0 {
		t.Error("open span should report elapsed time")
	}
}

func TestRunReportJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bgpstream.records").Add(42)
	root := Root("atomize")
	c := root.Child("load")
	c.SetAttr("files", 2)
	c.End()
	root.End()

	rep := BuildReport("atomize", []string{"-family", "4"}, root, reg)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if back.Tool != "atomize" || back.Span == nil || back.Span.Name != "atomize" {
		t.Errorf("decoded report: %+v", back)
	}
	if back.Metrics == nil || back.Metrics.Counters["bgpstream.records"] != 42 {
		t.Errorf("metrics lost: %+v", back.Metrics)
	}
	if len(back.Span.Children) != 1 || back.Span.Children[0].Name != "load" {
		t.Errorf("span tree lost: %+v", back.Span)
	}
}

func TestRunReportText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sanitize.dropped", "filter", "length").Add(7)
	reg.Gauge("vps").Set(13)
	reg.Histogram("msg").Observe(4)
	root := Root("atomize")
	ch := root.Child("atoms")
	ch.SetAttr("prefixes", 100)
	ch.End()
	root.End()

	var buf bytes.Buffer
	if err := BuildReport("atomize", nil, root, reg).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run report: atomize",
		"└─ atoms",
		"prefixes=100",
		"sanitize.dropped{filter=length}",
		"-- counters --",
		"-- gauges --",
		"-- histograms --",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567", -4200: "-4,200"}
	for n, want := range cases {
		if got := formatCount(n); got != want {
			t.Errorf("formatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestCounterValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reads", "src", "rrc00").Add(5)
	reg.Counter("writes").Add(2)
	snap := reg.Snapshot()
	if got := snap.CounterValue("reads", "src", "rrc00"); got != 5 {
		t.Errorf("labeled CounterValue = %d, want 5", got)
	}
	if got := snap.CounterValue("writes"); got != 2 {
		t.Errorf("plain CounterValue = %d, want 2", got)
	}
	if got := snap.CounterValue("reads"); got != 0 {
		t.Errorf("label-less lookup of labeled counter = %d, want 0", got)
	}
	if got := snap.CounterValue("absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	var nilSnap *MetricsSnapshot
	if got := nilSnap.CounterValue("reads"); got != 0 {
		t.Errorf("nil snapshot CounterValue = %d, want 0", got)
	}
}
