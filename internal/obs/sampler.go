package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Sampler publishes runtime health into the registry at a fixed
// interval, so a long-running pipeline exposes live heap, GC, and
// scheduler evidence on /metrics instead of only an exit report:
//
//	runtime.heap_objects_bytes   live heap object bytes (gauge)
//	runtime.total_bytes          total runtime-managed memory (gauge)
//	runtime.goroutines           live goroutine count (gauge)
//	runtime.gc_cycles_total      completed GC cycles (gauge, cumulative)
//	runtime.gc_pause_p99_ns      p99 GC stop-the-world pause (gauge)
//	runtime.sched_latency_p99_ns p99 goroutine scheduling latency (gauge)
//	runtime.samples_total        sampler ticks (counter)
//
// The sampler is opt-in (-sample on every command) and costs nothing
// when off: a nil registry or non-positive interval yields a nil
// *Sampler whose Stop is a no-op, and the pipeline itself never touches
// these keys.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
	samples  []metrics.Sample
}

// samplerMetrics are the runtime/metrics names read each tick, paired
// with the registry gauge fed from each. Histogram-valued metrics
// (seconds distributions) publish their p99 in nanoseconds.
var samplerMetrics = []struct {
	runtime  string
	registry string
}{
	{"/memory/classes/heap/objects:bytes", "runtime.heap_objects_bytes"},
	{"/memory/classes/total:bytes", "runtime.total_bytes"},
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles_total"},
	{"/gc/pauses:seconds", "runtime.gc_pause_p99_ns"},
	{"/sched/latencies:seconds", "runtime.sched_latency_p99_ns"},
}

// StartSampler begins background sampling into reg every interval. The
// first sample is taken synchronously, so even a run shorter than one
// interval scrapes real values. Returns nil (a no-op sampler) when reg
// is nil or the interval is not positive.
func StartSampler(reg *Registry, interval time.Duration) *Sampler {
	if reg == nil || interval <= 0 {
		return nil
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		samples:  make([]metrics.Sample, len(samplerMetrics)),
	}
	for i := range s.samples {
		s.samples[i].Name = samplerMetrics[i].runtime
	}
	s.sample()
	go s.run()
	return s
}

// Stop halts the sampler and waits for the background goroutine to
// exit. Nil-safe and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Sampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample reads the runtime metrics and publishes them.
func (s *Sampler) sample() {
	metrics.Read(s.samples)
	for i, m := range samplerMetrics {
		v := s.samples[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			s.reg.Gauge(m.registry).Set(int64(v.Uint64()))
		case metrics.KindFloat64Histogram:
			s.reg.Gauge(m.registry).Set(histP99Nanos(v.Float64Histogram()))
		}
		// KindBad: the metric does not exist on this runtime; skip.
	}
	s.reg.Counter("runtime.samples_total").Inc()
}

// histP99Nanos estimates the p99 of a runtime seconds-distribution in
// nanoseconds, nearest-rank over the cumulative bucket counts. Empty
// histograms report 0; the open upper bucket falls back to its finite
// lower bound.
func histP99Nanos(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(0.99 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) || hi < 0 {
				return 0
			}
			return int64(hi * 1e9)
		}
	}
	return 0
}
