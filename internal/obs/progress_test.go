package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestProgressGolden pins the JSON-lines stream under a fake clock
// stepping 100ms per read: one read at NewProgress, then one per
// emitted event, so elapsed/eta/throughput are all exact.
func TestProgressGolden(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	fakeClock(t, start, 100*time.Millisecond)

	var buf strings.Builder
	p := NewProgress(&buf, "atomrepro") // read 0
	p.Begin("trend", 3)                 // read 1: elapsed 100ms
	p.Step("era_done", "2005H1", 1000)  // read 2: elapsed 200ms
	p.Step("era_done", "2005H2", 500)   // read 3: elapsed 300ms
	p.Step("era_done", "2006H1", 500)   // read 4: elapsed 400ms
	p.End("trend_done")                 // read 5: elapsed 500ms

	want := strings.Join([]string{
		`{"event":"trend","tool":"atomrepro","total":3,"elapsed_ms":100}`,
		`{"event":"era_done","tool":"atomrepro","era":"2005H1","done":1,"total":3,"rows":1000,"total_rows":1000,"rows_per_sec":5000,"elapsed_ms":200,"eta_ms":400}`,
		`{"event":"era_done","tool":"atomrepro","era":"2005H2","done":2,"total":3,"rows":500,"total_rows":1500,"rows_per_sec":5000,"elapsed_ms":300,"eta_ms":150}`,
		`{"event":"era_done","tool":"atomrepro","era":"2006H1","done":3,"total":3,"rows":500,"total_rows":2000,"rows_per_sec":5000,"elapsed_ms":400}`,
		`{"event":"trend_done","tool":"atomrepro","done":3,"total":3,"total_rows":2000,"rows_per_sec":4000,"elapsed_ms":500}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("progress stream mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestProgressLinesParse: every line must be one standalone JSON object
// (the machine-parseable contract of -progress).
func TestProgressLinesParse(t *testing.T) {
	var buf strings.Builder
	p := NewProgress(&buf, "gensim")
	p.Begin("splits", 2)
	p.Step("splits_done", "", 10)
	p.Step("splits_done", "", 20)
	p.End("run_done")
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Errorf("line %d not a JSON object: %v\n%s", i, err, line)
		}
		if ev.Tool != "gensim" {
			t.Errorf("line %d tool = %q", i, ev.Tool)
		}
	}
	var last ProgressEvent
	json.Unmarshal([]byte(lines[3]), &last)
	if last.Event != "run_done" || last.TotalRows != 30 || last.Done != 2 {
		t.Errorf("final event = %+v", last)
	}
}

func TestProgressNil(t *testing.T) {
	var p *Progress
	p.Begin("x", 1)
	p.Step("x", "era", 1)
	p.End("x") // all must no-op without panicking
}

// TestProgressConcurrentSteps: parallel era workers step concurrently;
// the stream must stay one-JSON-object-per-line with a consistent final
// cumulative count (run under -race in verify.sh).
func TestProgressConcurrentSteps(t *testing.T) {
	// All emits run under Progress's own mutex, so a plain builder is
	// race-free here.
	var buf strings.Builder
	p := NewProgress(&buf, "atomrepro")
	p.Begin("trend", 8)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			p.Step("era_done", "era", 5)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	p.End("trend_done")
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	var last ProgressEvent
	if err := json.Unmarshal([]byte(lines[9]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Done != 8 || last.TotalRows != 40 {
		t.Errorf("final event = %+v", last)
	}
}
