package obs

import (
	"math"
	"runtime/metrics"
	"testing"
	"time"
)

func TestHistP99Nanos(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		h    *metrics.Float64Histogram
		want int64
	}{
		{"nil", nil, 0},
		{"empty", &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1e-6, 1e-3}}, 0},
		{"all in second bucket", &metrics.Float64Histogram{
			Counts: []uint64{0, 10}, Buckets: []float64{0, 1e-6, 1e-3}}, 1_000_000},
		{"rank lands early", &metrics.Float64Histogram{
			// 100 in bucket 0, 1 in bucket 1: rank = ceil(.99*101) = 100 → bucket 0.
			Counts: []uint64{100, 1}, Buckets: []float64{0, 1e-6, 1e-3}}, 1_000},
		{"open upper bucket falls back to lower bound", &metrics.Float64Histogram{
			Counts: []uint64{1}, Buckets: []float64{1e-3, inf}}, 1_000_000},
		{"fully unbounded bucket reports zero", &metrics.Float64Histogram{
			Counts: []uint64{5}, Buckets: []float64{math.Inf(-1), inf}}, 0},
	}
	for _, tc := range cases {
		if got := histP99Nanos(tc.h); got != tc.want {
			t.Errorf("%s: histP99Nanos = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestStartSamplerDisabled(t *testing.T) {
	if s := StartSampler(nil, time.Second); s != nil {
		t.Error("nil registry should yield a nil sampler")
	}
	if s := StartSampler(NewRegistry(), 0); s != nil {
		t.Error("zero interval should yield a nil sampler")
	}
	var s *Sampler
	s.Stop() // must not panic or block
}

func TestSamplerFirstSampleSynchronous(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(reg, time.Hour) // ticker will never fire in-test
	defer s.Stop()
	snap := reg.Snapshot()
	if got := snap.CounterValue("runtime.samples_total"); got != 1 {
		t.Errorf("samples_total after start = %d, want 1 (synchronous first sample)", got)
	}
	if v := snap.Gauges["runtime.goroutines"]; v <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime.heap_objects_bytes"]; v <= 0 {
		t.Errorf("runtime.heap_objects_bytes = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime.total_bytes"]; v <= 0 {
		t.Errorf("runtime.total_bytes = %d, want > 0", v)
	}
}

func TestSamplerTicksAndStops(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(reg, 5*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().CounterValue("runtime.samples_total") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler never ticked: samples_total = %d",
				reg.Snapshot().CounterValue("runtime.samples_total"))
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	after := reg.Snapshot().CounterValue("runtime.samples_total")
	time.Sleep(20 * time.Millisecond)
	if got := reg.Snapshot().CounterValue("runtime.samples_total"); got != after {
		t.Errorf("sampler kept ticking after Stop: %d → %d", after, got)
	}
	s.Stop() // idempotent
}
