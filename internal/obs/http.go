package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer is the live observability endpoint every command exposes
// behind -listen: Prometheus metrics, a health probe, the live span
// tree, and the stdlib pprof handlers. It serves for the duration of
// the run and is the substrate the ROADMAP's atomd daemon plugs into.
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      JSON liveness: status, tool, uptime, goroutines
//	/runreport    the live RunReport (span tree + metric snapshot)
//	/debug/pprof  the standard pprof index (profile, heap, trace, ...)
type DebugServer struct {
	// Addr is the bound address ("127.0.0.1:43210"), resolved after
	// listening so ":0" reports the kernel-assigned port.
	Addr string

	ln    net.Listener
	srv   *http.Server
	start time.Time
	done  chan struct{} // closed when the Serve goroutine exits
}

// ServeDebug binds addr and serves the observability surface in a
// background goroutine until Close. The tool name and args flow into
// /healthz and /runreport; root and reg may be nil (endpoints then
// serve empty-but-valid documents).
func ServeDebug(addr, tool string, args []string, root *Span, reg *Registry) (*DebugServer, error) {
	return ServeDebugWith(addr, tool, args, root, reg, nil)
}

// ServeDebugWith is ServeDebug with a mux-registration hook: when extra
// is non-nil it runs against the mux before the server starts
// accepting, so an embedding service (atomd's /atoms endpoints) can
// mount its own handlers beside the standard surface. Hooked paths must
// not collide with the built-ins; later registrations panic, exactly as
// http.ServeMux always does.
func ServeDebugWith(addr, tool string, args []string, root *Span, reg *Registry, extra func(*http.ServeMux)) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, start: clockNow()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"tool":       tool,
			"uptime_ms":  clockNow().Sub(d.start).Milliseconds(),
			"goroutines": runtime.NumGoroutine(),
		})
	})
	mux.HandleFunc("/runreport", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		BuildReport(tool, args, root, reg).WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s live observability\n\n/metrics\n/healthz\n/runreport\n/debug/pprof/\n", tool)
	})

	if extra != nil {
		extra(mux)
	}

	d.srv = &http.Server{Handler: mux}
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		d.srv.Serve(ln)
	}()
	return d, nil
}

// Close stops the server, releases the listener, and joins the Serve
// goroutine: when Close returns, the port is free and no goroutine
// remains. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	d.ln.Close() // idempotent: srv.Close tears down its listeners too
	<-d.done
	return err
}
