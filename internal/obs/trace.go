package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"time"
)

// Chrome trace-event export of the span tree: the run's stages as
// complete ("X") events in the Trace Event Format, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Every span becomes one event
// carrying its attributes and allocation deltas as args; concurrent
// subtrees (parallel eras, snapshot fan-out) are spread across thread
// lanes so overlapping spans never fight over one track.

// TraceEvent is one Trace Event Format entry. Ph "X" is a complete
// event (ts + dur, microseconds); ph "M" is metadata (process name).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the format (the bare-array form
// is also legal, but the object form carries the display unit).
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEvents flattens a span-report tree into trace events. Timestamps
// are microseconds since the root span's start. Nil reports flatten to
// nil.
func TraceEvents(root *SpanReport) []TraceEvent {
	if root == nil {
		return nil
	}
	out := []TraceEvent{{
		Name: "process_name",
		Ph:   "M",
		PID:  1,
		TID:  1,
		Args: map[string]any{"name": root.Name},
	}}
	nextLane := 2
	var emit func(s *SpanReport, lane int)
	emit = func(s *SpanReport, lane int) {
		out = append(out, spanEvent(s, root.Start, lane))
		// Children pack onto lanes by interval partitioning: reuse the
		// parent's lane (or one already opened for an earlier sibling)
		// when the previous occupant has ended, otherwise open a new
		// lane. Every lane then holds a properly nested set of spans,
		// which is what the complete-event renderer requires.
		type laneEnd struct {
			lane int
			end  int64
		}
		lanes := []laneEnd{{lane: lane, end: math.MinInt64}}
		for _, c := range s.Children {
			start := c.Start.Sub(root.Start).Microseconds()
			placed := -1
			for i := range lanes {
				if lanes[i].end <= start {
					placed = i
					break
				}
			}
			if placed < 0 {
				lanes = append(lanes, laneEnd{lane: nextLane})
				nextLane++
				placed = len(lanes) - 1
			}
			lanes[placed].end = start + durMicros(c)
			emit(c, lanes[placed].lane)
		}
	}
	emit(root, 1)
	return out
}

// WriteTrace writes the span tree as a trace-event JSON file.
func WriteTrace(w io.Writer, root *SpanReport) error {
	events := TraceEvents(root)
	if events == nil {
		events = []TraceEvent{} // keep traceEvents an array, never null
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", " ")
	if err := enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// spanEvent renders one span as a complete event relative to base.
func spanEvent(s *SpanReport, base time.Time, lane int) TraceEvent {
	ev := TraceEvent{
		Name: s.Name,
		Ph:   "X",
		TS:   s.Start.Sub(base).Microseconds(),
		Dur:  durMicros(s),
		PID:  1,
		TID:  lane,
	}
	if len(s.Attrs) > 0 || s.AllocBytes > 0 || s.Mallocs > 0 {
		ev.Args = make(map[string]any, len(s.Attrs)+2)
		if s.AllocBytes > 0 {
			ev.Args["alloc_bytes"] = s.AllocBytes
		}
		if s.Mallocs > 0 {
			ev.Args["mallocs"] = s.Mallocs
		}
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	return ev
}

// durMicros converts the report's millisecond duration to whole
// microseconds.
func durMicros(s *SpanReport) int64 {
	return int64(math.Round(s.DurationMS * 1000))
}
