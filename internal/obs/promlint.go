package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// promlint-lite: a stdlib validation of the text exposition this
// package emits, shared by the package tests and the verify.sh scrape
// smoke (scripts/obssmoke.go). It is deliberately stricter than
// Prometheus itself in one way — every metric name must match the
// repo's atom_ convention — and checks only what this repo's writer
// can get wrong, not the full upstream promlint rule set.

var (
	promNameRe   = regexp.MustCompile(`^atom_[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
)

// LintPromText checks one exposition document: every sample line must
// parse, every family must carry HELP and TYPE before its samples,
// metric names must match the atom_ convention, series must be unique,
// and values must be finite numbers. Returns the violations found
// (empty means clean).
func LintPromText(text string) []string {
	var problems []string
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				problems = append(problems, "HELP without text: "+line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			switch kind {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				problems = append(problems, "bad TYPE kind: "+line)
			}
			if !promNameRe.MatchString(name) {
				problems = append(problems, "metric name outside the atom_ convention: "+name)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, "unparseable sample line: "+line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		if typed[family] == "" {
			// Summary companion samples attach to the base family.
			for _, suffix := range []string{"_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "summary" {
					family = base
				}
			}
		}
		if typed[family] == "" {
			problems = append(problems, "sample without TYPE: "+line)
		}
		if !helped[family] {
			problems = append(problems, "sample without HELP: "+line)
		}
		if !promNameRe.MatchString(family) {
			problems = append(problems, "metric name outside the atom_ convention: "+name)
		}
		if seen[name+labels] {
			problems = append(problems, "duplicate series: "+name+labels)
		}
		seen[name+labels] = true
		if f, err := strconv.ParseFloat(value, 64); err != nil {
			problems = append(problems, fmt.Sprintf("non-numeric value %q: %s", value, line))
		} else if f != f {
			problems = append(problems, "NaN value: "+line)
		}
	}
	return problems
}
