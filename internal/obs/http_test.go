package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func startTestServer(t *testing.T, root *Span, reg *Registry) *DebugServer {
	t.Helper()
	d, err := ServeDebug("127.0.0.1:0", "atomtest", []string{"-run", "x"}, root, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func get(t *testing.T, d *DebugServer, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get("http://" + d.Addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(body)
}

func TestServeDebugEndpoints(t *testing.T) {
	root := Root("run")
	defer root.End()
	reg := NewRegistry()
	reg.Counter("bgpstream.records").Add(9)
	reg.Histogram("mrt.msg_bytes").Observe(64)
	d := startTestServer(t, root, reg)

	resp, body := get(t, d, "/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PromContentType)
	}
	if problems := LintPromText(body); len(problems) != 0 {
		t.Errorf("/metrics fails promlint-lite: %v", problems)
	}
	if !strings.Contains(body, "atom_bgpstream_records 9") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}
	if !strings.Contains(body, `atom_mrt_msg_bytes{quantile="0.99"} 64`) {
		t.Errorf("/metrics missing summary quantile:\n%s", body)
	}

	resp, body = get(t, d, "/healthz")
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("/healthz Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	var health struct {
		Status     string `json:"status"`
		Tool       string `json:"tool"`
		UptimeMS   *int64 `json:"uptime_ms"`
		Goroutines int    `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Tool != "atomtest" || health.UptimeMS == nil || health.Goroutines <= 0 {
		t.Errorf("/healthz = %+v", health)
	}

	_, body = get(t, d, "/runreport")
	var report RunReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/runreport not JSON: %v\n%s", err, body)
	}
	if report.Tool != "atomtest" || report.Span == nil || report.Span.Name != "run" {
		t.Errorf("/runreport = tool %q span %+v", report.Tool, report.Span)
	}
	if report.Metrics.CounterValue("bgpstream.records") != 9 {
		t.Errorf("/runreport metrics = %+v", report.Metrics)
	}

	resp, body = get(t, d, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}

	resp, body = get(t, d, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, d, "/no-such-page")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", resp.StatusCode)
	}
}

// TestServeDebugNilSources: endpoints must serve valid (empty) documents
// when the command wired no span tree or registry.
func TestServeDebugNilSources(t *testing.T) {
	d := startTestServer(t, nil, nil)
	resp, body := get(t, d, "/metrics")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry: status %d body %q", resp.StatusCode, body)
	}
	_, body = get(t, d, "/runreport")
	var report RunReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/runreport on nil sources not JSON: %v", err)
	}
	_, body = get(t, d, "/healthz")
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %s", body)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:99999", "t", nil, nil, nil); err == nil {
		t.Error("bad address should fail to listen")
	}
	var d *DebugServer
	if err := d.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestScrapeUnderLoad hammers /metrics while the sampler ticks and the
// pipeline writes instruments — the -race configuration this suite runs
// under in verify.sh is the real assertion.
func TestScrapeUnderLoad(t *testing.T) {
	reg := NewRegistry()
	root := Root("run")
	defer root.End()
	s := StartSampler(reg, time.Millisecond)
	defer s.Stop()
	d := startTestServer(t, root, reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a "pipeline" mutating instruments and spans
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("load.events", "worker", "w0").Inc()
			reg.Histogram("load.sizes").Observe(int64(i % 1000))
			c := root.Child("tick")
			c.End()
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get("http://" + d.Addr + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if problems := LintPromText(string(body)); len(problems) != 0 {
					t.Errorf("scrape under load fails lint: %v", problems)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestCloseJoinsServeGoroutine pins the teardown contract the lifecycle
// analyzer enforces: Close must join the background Serve goroutine and
// release the listener, so a caller (atomd restarting its debug
// endpoint, a test rebinding the port) can rely on "Close returned"
// meaning "nothing is left running and the port is free".
func TestCloseJoinsServeGoroutine(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", "atomtest", nil, nil, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The Serve goroutine must have fully exited by the time Close
	// returns — the done channel is closed, not merely closing.
	select {
	case <-d.done:
	default:
		t.Fatal("Close returned before the Serve goroutine exited")
	}
	// The port is released: rebinding the exact address succeeds.
	d2, err := ServeDebug(d.Addr, "atomtest", nil, nil, NewRegistry())
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", d.Addr, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Requests after Close fail: the server really stopped.
	if _, err := http.Get("http://" + d.Addr + "/healthz"); err == nil {
		t.Fatal("GET after Close succeeded; server still serving")
	}
}
