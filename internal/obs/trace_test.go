package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWriteTraceGolden pins the trace-event JSON bytes under a fake
// clock. Mem-stats accounting is off so no nondeterministic allocation
// args leak into the golden output; the clock advances 1ms per read, so
// the read sequence (Root, Child, End, Child, End, End) fixes every
// timestamp.
func TestWriteTraceGolden(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	fakeClock(t, start, time.Millisecond)

	root := Root("run", WithMemStats(false)) // read 0: t0
	load := root.Child("load")               // read 1: +1ms
	load.SetAttr("eras", 3)
	load.End()                    // read 2: +2ms
	comp := root.Child("compute") // read 3: +3ms
	comp.End()                    // read 4: +4ms
	root.End()                    // read 5: +5ms

	var buf strings.Builder
	if err := WriteTrace(&buf, root.Report()); err != nil {
		t.Fatal(err)
	}
	want := `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "dur": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "run"
   }
  },
  {
   "name": "run",
   "ph": "X",
   "ts": 0,
   "dur": 5000,
   "pid": 1,
   "tid": 1
  },
  {
   "name": "load",
   "ph": "X",
   "ts": 1000,
   "dur": 1000,
   "pid": 1,
   "tid": 1,
   "args": {
    "eras": 3
   }
  },
  {
   "name": "compute",
   "ph": "X",
   "ts": 3000,
   "dur": 1000,
   "pid": 1,
   "tid": 1
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceRoundTrip asserts the acceptance contract: the emitted file
// parses back through encoding/json and every span event carries
// ph/ts/dur/name.
func TestTraceRoundTrip(t *testing.T) {
	root := Root("run")
	c := root.Child("stage")
	c.SetAttr("rows", int64(7))
	c.End()
	root.End()

	var buf strings.Builder
	if err := WriteTrace(&buf, root.Report()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	var xEvents int
	for _, ev := range parsed.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event %v missing %q", ev, k)
			}
		}
		if ev["ph"] == "X" {
			xEvents++
		}
	}
	if xEvents != 2 {
		t.Errorf("complete events = %d, want 2 (run + stage)", xEvents)
	}
}

// TestTraceLaneAssignment checks the interval partitioning that spreads
// overlapping children (parallel eras) across tid lanes: sequential
// spans share the parent's lane, an overlapping sibling opens a new
// lane, and a later span reuses a freed lane.
func TestTraceLaneAssignment(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	ms := func(d int) time.Time { return base.Add(time.Duration(d) * time.Millisecond) }
	root := &SpanReport{
		Name: "run", Start: base, DurationMS: 10,
		Children: []*SpanReport{
			{Name: "a", Start: ms(1), DurationMS: 4,
				Children: []*SpanReport{{Name: "a1", Start: ms(2), DurationMS: 1}}},
			{Name: "b", Start: ms(2), DurationMS: 2}, // overlaps a → new lane
			{Name: "c", Start: ms(6), DurationMS: 1}, // a ended → reuses lane 1
		},
	}
	evs := TraceEvents(root)
	lanes := map[string]int{}
	for _, ev := range evs {
		if ev.Ph == "X" {
			lanes[ev.Name] = ev.TID
		}
	}
	want := map[string]int{"run": 1, "a": 1, "a1": 1, "b": 2, "c": 1}
	for name, lane := range want {
		if lanes[name] != lane {
			t.Errorf("%s on lane %d, want %d (all: %v)", name, lanes[name], lane, lanes)
		}
	}
}

func TestTraceNil(t *testing.T) {
	if evs := TraceEvents(nil); evs != nil {
		t.Errorf("TraceEvents(nil) = %v", evs)
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("nil trace does not parse: %v", err)
	}
	if parsed.TraceEvents == nil || len(parsed.TraceEvents) != 0 {
		t.Errorf("nil root should write an empty (non-null) event array: %q", buf.String())
	}
}
