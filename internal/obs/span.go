package obs

import (
	"runtime"
	"sync"
	"time"
)

// clockNow is the package's single wall-clock seam: every timing-
// dependent obs feature (spans, progress events, the debug server's
// uptime) reads the clock through it, so tests swap in a fake clock and
// pin otherwise time-dependent output (trace export, progress lines)
// byte for byte. atomlint's determinism analyzer sweeps internal/obs
// and internal/cli for wall-clock reads and allows time.Now only here
// (see internal/lintkit/determinism.go, clockExemptDecls).
var clockNow = time.Now

// Attr is one span attribute. Values should be JSON-serializable
// (numbers, strings, bools, or small structs of those).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed stage of a pipeline run. Spans form a tree: Root
// creates the top, Child nests. A span measures wall time between its
// creation and End, and the process allocation delta over the same
// window (TotalAlloc / Mallocs from runtime.ReadMemStats).
//
// All methods no-op on a nil receiver, so disabled telemetry costs one
// nil check per call and never allocates. Argument expressions are
// still evaluated, so keep hot-path attribute values cheap (avoid
// fmt.Sprintf in call arguments; set a literal name and numeric attrs
// instead).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	ended    bool
	memStats bool

	startAlloc   uint64
	startMallocs uint64
	allocBytes   uint64
	mallocs      uint64

	attrs    []Attr
	children []*Span
}

// SpanOption configures span construction.
type SpanOption func(*spanConfig)

type spanConfig struct {
	memStats bool
}

// WithMemStats toggles allocation accounting (default on). Disable it
// for very fine-grained spans where the runtime.ReadMemStats pause
// would dominate the measurement.
func WithMemStats(on bool) SpanOption {
	return func(c *spanConfig) { c.memStats = on }
}

// Root starts a new top-level span.
func Root(name string, opts ...SpanOption) *Span {
	cfg := spanConfig{memStats: true}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Span{name: name, start: clockNow(), memStats: cfg.memStats}
	if s.memStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.startAlloc, s.startMallocs = ms.TotalAlloc, ms.Mallocs
	}
	return s
}

// Child starts a nested span. Returns nil (a no-op span) when the
// receiver is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: clockNow(), memStats: s.memStats}
	if c.memStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		c.startAlloc, c.startMallocs = ms.TotalAlloc, ms.Mallocs
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches (or overwrites) an attribute. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, recording wall time and allocation deltas. Only
// the first End takes effect; later calls (and nil receivers) no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = clockNow()
	if s.memStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		// Guard against counter wrap (TotalAlloc is monotonic, but be
		// defensive about snapshot ordering under concurrency).
		if ms.TotalAlloc >= s.startAlloc {
			s.allocBytes = ms.TotalAlloc - s.startAlloc
		}
		if ms.Mallocs >= s.startMallocs {
			s.mallocs = ms.Mallocs - s.startMallocs
		}
	}
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured wall time. An un-ended span reports
// the time elapsed so far; nil reports zero.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return clockNow().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanReport is the serializable form of one span subtree.
type SpanReport struct {
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	DurationMS float64       `json:"duration_ms"`
	AllocBytes uint64        `json:"alloc_bytes,omitempty"`
	Mallocs    uint64        `json:"mallocs,omitempty"`
	Attrs      []Attr        `json:"attrs,omitempty"`
	Children   []*SpanReport `json:"children,omitempty"`
}

// Report snapshots the span subtree into its serializable form,
// ending any still-open spans' timing view without closing them (an
// un-ended span reports elapsed-so-far and zero alloc delta). Nil
// returns nil.
func (s *Span) Report() *SpanReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	r := &SpanReport{
		Name:       s.name,
		Start:      s.start,
		AllocBytes: s.allocBytes,
		Mallocs:    s.mallocs,
	}
	if s.ended {
		r.DurationMS = float64(s.end.Sub(s.start).Microseconds()) / 1000
	} else {
		r.DurationMS = float64(clockNow().Sub(s.start).Microseconds()) / 1000
	}
	if len(s.attrs) > 0 {
		r.Attrs = append([]Attr(nil), s.attrs...)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		r.Children = append(r.Children, c.Report())
	}
	return r
}
