package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the registry.
//
// Every registry key maps onto the repo's exposition naming convention
// `atom_<subsystem>_<name>[_<unit>]` (see DESIGN.md): the dotted source
// key is prefixed with "atom_" and every non-alphanumeric rune becomes
// an underscore, so `bgpstream.records` scrapes as
// `atom_bgpstream_records` and `sanitize.prefixes_dropped{filter=length}`
// as `atom_sanitize_prefixes_dropped{filter="length"}`. Counters and
// gauges export as their Prometheus kind; histograms export as
// summaries with the nearest-rank p50/p90/p99 quantiles plus _sum and
// _count, and companion _min/_max gauge families. Output is fully
// deterministic: families sort by name, series sort by label set, and
// the HELP line carries the dotted source key for provenance.

// PromContentType is the Content-Type for /metrics responses.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every instrument in Prometheus text
// exposition format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WritePrometheus(w)
}

// promSample is one exposition line: name{labels} value.
type promSample struct {
	labels string // rendered label block, "" or `{k="v",...}`
	suffix string // sample-name suffix within the family ("", "_sum", ...)
	order  int    // tie-break so quantiles keep 0.5, 0.9, 0.99 order
	value  string
}

// promFamily is one metric family: a HELP line, a TYPE line, and the
// family's samples.
type promFamily struct {
	name    string // exposition name (atom_...)
	kind    string // "counter", "gauge" or "summary"
	help    string // dotted source key, for provenance
	samples []promSample
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. A nil snapshot writes nothing.
func (m *MetricsSnapshot) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	families := map[string]*promFamily{}
	family := func(name, kind, help string) *promFamily {
		f := families[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind, help: help}
			families[name] = f
		}
		return f
	}
	for key, v := range m.Counters {
		base, labels := splitKey(key)
		f := family(promName(base), "counter", base)
		f.samples = append(f.samples, promSample{labels: promLabels(labels), value: strconv.FormatInt(v, 10)})
	}
	for key, v := range m.Gauges {
		base, labels := splitKey(key)
		f := family(promName(base), "gauge", base)
		f.samples = append(f.samples, promSample{labels: promLabels(labels), value: strconv.FormatInt(v, 10)})
	}
	for key, h := range m.Histograms {
		base, labels := splitKey(key)
		name := promName(base)
		f := family(name, "summary", base)
		for i, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			f.samples = append(f.samples, promSample{
				labels: promLabels(labels, [2]string{"quantile", q.q}),
				order:  i + 1,
				value:  strconv.FormatInt(q.v, 10),
			})
		}
		f.samples = append(f.samples,
			promSample{labels: promLabels(labels), suffix: "_sum", order: 4, value: strconv.FormatInt(h.Sum, 10)},
			promSample{labels: promLabels(labels), suffix: "_count", order: 5, value: strconv.FormatInt(h.Count, 10)})
		// Min/max have no Prometheus summary slot; export them as
		// companion gauge families so dashboards keep the text report's
		// full picture.
		fmin := family(name+"_min", "gauge", base+" (min)")
		fmin.samples = append(fmin.samples, promSample{labels: promLabels(labels), value: strconv.FormatInt(h.Min, 10)})
		fmax := family(name+"_max", "gauge", base+" (max)")
		fmax.samples = append(fmax.samples, promSample{labels: promLabels(labels), value: strconv.FormatInt(h.Max, 10)})
	}

	var b bytes.Buffer
	for _, name := range sortedKeys(families) {
		f := families[name]
		sort.Slice(f.samples, func(i, j int) bool {
			a, b := f.samples[i], f.samples[j]
			ak, bk := stripQuantile(a.labels), stripQuantile(b.labels)
			if ak != bk {
				return ak < bk
			}
			return a.order < b.order
		})
		fmt.Fprintf(&b, "# HELP %s source %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// splitKey undoes obs.Key: "name{k=v,k2=v2}" → base name + label pairs.
func splitKey(key string) (string, [][2]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	base := key[:i]
	var labels [][2]string
	for _, pair := range strings.Split(key[i+1:len(key)-1], ",") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			labels = append(labels, [2]string{k, v})
		}
	}
	return base, labels
}

// promName maps a dotted registry key onto the exposition convention:
// "atom_" + the key with every non-alphanumeric rune as '_'.
func promName(base string) string {
	var b strings.Builder
	b.Grow(len(base) + 5)
	b.WriteString("atom_")
	for _, r := range base {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a sorted, escaped label block ("" when empty).
func promLabels(pairs [][2]string, extra ...[2]string) string {
	all := append(append([][2]string(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i][0] < all[j][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(kv[0]))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelName sanitizes a label name to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(k string) string {
	var b strings.Builder
	for i, r := range k {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes per the text exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// stripQuantile removes the synthetic quantile label so a summary's
// series sort by their real label set with the quantiles in rank order.
// The result is normalized (no dangling comma, "" when no labels
// remain) so it compares equal to the label block of the _sum/_count
// companions.
func stripQuantile(labels string) string {
	i := strings.Index(labels, `quantile="`)
	if i < 0 {
		return labels
	}
	j := strings.IndexByte(labels[i+len(`quantile="`):], '"')
	if j < 0 {
		return labels
	}
	out := labels[:i] + labels[i+len(`quantile="`)+j+1:]
	out = strings.ReplaceAll(out, `,}`, `}`)
	out = strings.ReplaceAll(out, `{,`, `{`)
	if out == "{}" {
		return ""
	}
	return out
}
