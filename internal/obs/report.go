package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// RunReport bundles one run's span tree and metric snapshot into a
// single machine-readable artifact. WriteJSON emits it for tooling
// (diffing two runs, feeding dashboards, BENCH trajectories); WriteText
// renders the same data as a human-readable tree.
type RunReport struct {
	// Tool names the producing command (atomize, atomrepro, ...).
	Tool string `json:"tool"`
	// Args echoes the command line for provenance.
	Args []string `json:"args,omitempty"`
	// Start / DurationMS cover the root span.
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	// Span is the full stage tree.
	Span *SpanReport `json:"span,omitempty"`
	// Metrics is the registry snapshot at report time.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// BuildReport assembles a report from a root span and registry (either
// may be nil).
func BuildReport(tool string, args []string, root *Span, reg *Registry) *RunReport {
	r := &RunReport{Tool: tool, Args: args, Metrics: reg.Snapshot()}
	if sr := root.Report(); sr != nil {
		r.Span = sr
		r.Start = sr.Start
		r.DurationMS = sr.DurationMS
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the span tree and metrics as a human-readable
// report.
func (r *RunReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== run report: %s ==\n", r.Tool); err != nil {
		return err
	}
	if r.Span != nil {
		writeSpanText(w, r.Span, "", true, true)
	}
	if r.Metrics != nil {
		writeMetricsText(w, r.Metrics)
	}
	return nil
}

// fmtDuration renders a millisecond duration compactly.
func fmtDuration(ms float64) string {
	switch {
	case ms >= 10000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func writeSpanText(w io.Writer, s *SpanReport, prefix string, last, root bool) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if root {
		connector = ""
		childPrefix = ""
	}
	line := fmt.Sprintf("%s%s%-*s %8s", prefix, connector, 30-len(prefix), s.Name, fmtDuration(s.DurationMS))
	if s.AllocBytes > 0 {
		line += fmt.Sprintf("  %9s", fmtBytes(s.AllocBytes))
	}
	if len(s.Attrs) > 0 {
		var parts []string
		for _, a := range s.Attrs {
			parts = append(parts, fmt.Sprintf("%s=%v", a.Key, a.Value))
		}
		line += "  " + strings.Join(parts, " ")
	}
	fmt.Fprintln(w, line)
	for i, c := range s.Children {
		writeSpanText(w, c, childPrefix, i == len(s.Children)-1, false)
	}
}

func writeMetricsText(w io.Writer, m *MetricsSnapshot) {
	if len(m.Counters) > 0 {
		fmt.Fprintln(w, "-- counters --")
		for _, k := range sortedKeys(m.Counters) {
			fmt.Fprintf(w, "  %-56s %14s\n", k, formatCount(m.Counters[k]))
		}
	}
	if len(m.Gauges) > 0 {
		fmt.Fprintln(w, "-- gauges --")
		for _, k := range sortedKeys(m.Gauges) {
			fmt.Fprintf(w, "  %-56s %14s\n", k, formatCount(m.Gauges[k]))
		}
	}
	if len(m.Histograms) > 0 {
		fmt.Fprintln(w, "-- histograms --")
		for _, k := range sortedKeys(m.Histograms) {
			h := m.Histograms[k]
			fmt.Fprintf(w, "  %-44s n=%d sum=%d min=%d mean=%.1f p50=%d p90=%d p99=%d max=%d\n",
				k, h.Count, h.Sum, h.Min, h.Mean(), h.P50, h.P90, h.P99, h.Max)
		}
	}
}
