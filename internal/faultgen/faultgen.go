// Package faultgen is a deterministic, seeded fault injector for MRT
// archives. It takes valid synthetic archives (cmd/gensim output) and
// applies a schedule of fault classes modeled on two decades of real
// RIPE RIS / RouteViews damage: mid-record truncation, header-length
// lies, bit flips in path attributes, duplicated and reordered records,
// missing RIB shards, peer flap storms, and ADD-PATH subtype confusion.
//
// Every fault is tagged with the ground-truth set of clean records it
// damaged (Fault.Covered), which is what lets the differential harness
// (faultgen/harness) decide whether a divergence between the clean and
// damaged pipelines is explained by the injected damage or is a silent
// corruption bug.
//
// The same (seed, archive set, class list) always produces a
// byte-identical Schedule, and Apply reconstructs the exact mutation
// from (Schedule, clean archives): every random choice is a pure
// splitmix-style hash of (seed, archive, class, record, draw), never
// global RNG state.
package faultgen

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mrt"
)

// Class is one fault taxonomy entry.
type Class uint8

// The fault classes.
const (
	// ClassTruncate cuts an archive mid-record: the transfer died.
	ClassTruncate Class = iota + 1
	// ClassHeaderLie rewrites one record's header length field so the
	// framing no longer matches the body — record boundaries downstream
	// of the lie cannot be trusted.
	ClassHeaderLie
	// ClassBitFlip flips a few bits inside one record body (path
	// attributes, NLRI, peer table) without touching the framing.
	ClassBitFlip
	// ClassDuplicate repeats one record verbatim.
	ClassDuplicate
	// ClassReorder swaps two adjacent records.
	ClassReorder
	// ClassDropShard deletes a contiguous run of records — a missing
	// RIB shard or a lost chunk of an update stream.
	ClassDropShard
	// ClassFlapStorm inserts a burst of well-formed STATE_CHANGE
	// records for a real peer: a session that will not stay up.
	ClassFlapStorm
	// ClassAddPathMix rewrites record subtypes to their ADD-PATH
	// variants without re-encoding the bodies — the RFC 8050 mismatch
	// real collectors emitted for years.
	ClassAddPathMix
)

// AllClasses returns every fault class, in declaration order.
func AllClasses() []Class {
	return []Class{
		ClassTruncate, ClassHeaderLie, ClassBitFlip, ClassDuplicate,
		ClassReorder, ClassDropShard, ClassFlapStorm, ClassAddPathMix,
	}
}

var classNames = [...]string{
	ClassTruncate:   "truncate",
	ClassHeaderLie:  "header-lie",
	ClassBitFlip:    "bit-flip",
	ClassDuplicate:  "duplicate",
	ClassReorder:    "reorder",
	ClassDropShard:  "drop-shard",
	ClassFlapStorm:  "flap-storm",
	ClassAddPathMix: "addpath-mix",
}

// String returns the stable schedule-file name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) && classNames[c] != "" {
		return classNames[c]
	}
	return fmt.Sprintf("class-%d", uint8(c))
}

// ParseClass resolves a class name (as printed by String).
func ParseClass(s string) (Class, error) {
	for c, n := range classNames {
		if n != "" && n == s {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("faultgen: unknown fault class %q", s)
}

// ParseClasses resolves a comma-separated class list; "all" (or the
// empty string) selects every class.
func ParseClasses(s string) ([]Class, error) {
	if s == "" || s == "all" {
		return AllClasses(), nil
	}
	var out []Class
	for _, part := range strings.Split(s, ",") {
		c, err := ParseClass(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// CoversSuffix reports whether the class invalidates record framing
// from the fault onward: after a truncation or a header-length lie, no
// downstream record boundary in the damaged file is trustworthy, so
// ground-truth coverage extends to the end of the archive.
func (c Class) CoversSuffix() bool {
	return c == ClassTruncate || c == ClassHeaderLie
}

// Fault is one planned corruption.
type Fault struct {
	Class   Class
	Archive string
	// Record is the index of the first affected record in the clean
	// archive; Span is the number of clean records directly affected
	// (for ClassFlapStorm it is the number of inserted records).
	Record int
	Span   int
	// Offset is Record's byte offset in the clean archive.
	Offset int
	// Detail is a human-readable description of the exact mutation.
	Detail string
}

// Covered returns the half-open range of clean-record indices whose
// decoded content may legitimately differ because of this fault, given
// the clean archive's record count. Flap storms insert new records and
// damage none, so they cover nothing.
func (f *Fault) Covered(numRecords int) (lo, hi int) {
	switch {
	case f.Class == ClassFlapStorm:
		return 0, 0
	case f.Class.CoversSuffix():
		return f.Record, numRecords
	default:
		hi = f.Record + f.Span
		if hi > numRecords {
			hi = numRecords
		}
		return f.Record, hi
	}
}

// CoveredDamaged is Covered translated to the damaged archive's record
// indices, for single-fault archives: it bounds which damaged-side
// records may decode to fault-created content (the duplicate's extra
// copy, the storm's inserted state changes, everything after a broken
// boundary). numRecords is the damaged archive's record count.
func (f *Fault) CoveredDamaged(numRecords int) (lo, hi int) {
	switch f.Class {
	case ClassFlapStorm:
		hi = f.Record + f.Span
	case ClassDuplicate:
		hi = f.Record + f.Span + 1
	case ClassDropShard:
		// Deletion adds nothing on the damaged side.
		return 0, 0
	default:
		return f.Covered(numRecords)
	}
	if hi > numRecords {
		hi = numRecords
	}
	return f.Record, hi
}

// Schedule is a planned set of faults, reproducible from its seed.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

// ForArchive returns the schedule's faults against one archive.
func (s *Schedule) ForArchive(name string) []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Archive == name {
			out = append(out, f)
		}
	}
	return out
}

// Marshal renders the schedule as canonical text: same schedule, same
// bytes. This is the artifact gensim -faults writes next to the
// damaged archives and the harness embeds in its report.
func (s *Schedule) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "faultgen schedule v1\nseed 0x%016x\nfaults %d\n", s.Seed, len(s.Faults))
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "fault class=%s archive=%s record=%d span=%d offset=%d detail=%q\n",
			f.Class, f.Archive, f.Record, f.Span, f.Offset, f.Detail)
	}
	return []byte(b.String())
}

// Config tunes Plan.
type Config struct {
	Seed    uint64
	Classes []Class
	// FaultsPerArchive is how many faults of each class are planned per
	// archive; 0 means 1.
	FaultsPerArchive int
}

// recSpan is one record's location in a clean archive.
type recSpan struct {
	off, end     int
	typ, subtype uint16
}

func (rs recSpan) bodyLen() int { return rs.end - rs.off - 12 }

// indexRecords walks the archive's record framing. The input must be a
// clean archive; a malformed tail stops the walk (planning only ever
// sees clean archives, so this is a sanity guard, not a parser).
func indexRecords(data []byte) []recSpan {
	var out []recSpan
	off := 0
	for off+12 <= len(data) {
		typ := binary.BigEndian.Uint16(data[off+4 : off+6])
		sub := binary.BigEndian.Uint16(data[off+6 : off+8])
		length := int(binary.BigEndian.Uint32(data[off+8 : off+12]))
		end := off + 12 + length
		if end > len(data) {
			break
		}
		out = append(out, recSpan{off: off, end: end, typ: typ, subtype: sub})
		off = end
	}
	return out
}

// hhf is the deterministic hash RNG behind every planning draw — the
// same splitmix-style finalizer the collector simulator uses, so a
// (seed, labels...) tuple maps to one fixed uint64 with no shared
// state.
func hhf(vals ...uint64) uint64 {
	acc := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		v += 0x9e3779b97f4a7c15
		v = (v ^ acc ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		acc = v ^ (v >> 31)
	}
	return acc
}

func pickf(n int, vals ...uint64) int {
	if n <= 0 {
		return 0
	}
	return int(hhf(vals...) % uint64(n))
}

func nameHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mutKey salts the mutation-parameter draws: once a fault's target
// record is chosen, every byte-level choice is a function of (seed,
// archive, class, record, which), so Apply reconstructs the identical
// mutation from the Schedule and the clean archive alone.
func mutKey(seed uint64, f Fault, which uint64) []uint64 {
	return []uint64{seed, nameHash(f.Archive), uint64(f.Class), uint64(f.Record), which}
}

func isMessageSubtype(sub uint16) bool {
	switch sub {
	case mrt.SubMessage, mrt.SubMessageAS4, mrt.SubMessageAP, mrt.SubMessageAS4AP:
		return true
	}
	return false
}

// apMixable maps a non-ADD-PATH subtype to its ADD-PATH twin.
func apMixable(typ, sub uint16) (uint16, bool) {
	switch typ {
	case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
		switch sub {
		case mrt.SubMessage:
			return mrt.SubMessageAP, true
		case mrt.SubMessageAS4:
			return mrt.SubMessageAS4AP, true
		}
	case mrt.TypeTableDumpV2:
		switch sub {
		case mrt.SubRIBIPv4Unicast:
			return mrt.SubRIBIPv4UnicastAP, true
		case mrt.SubRIBIPv6Unicast:
			return mrt.SubRIBIPv6UnicastAP, true
		}
	}
	return 0, false
}

// Plan builds a fault schedule over the archives. Archives are visited
// in sorted-name order and every choice is a pure function of (seed,
// archive name, class, draw), so the schedule depends only on the
// inputs — never on map order, time, or global RNG.
func Plan(cfg Config, archives map[string][]byte) (*Schedule, error) {
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	per := cfg.FaultsPerArchive
	if per <= 0 {
		per = 1
	}
	names := make([]string, 0, len(archives))
	for name := range archives {
		names = append(names, name)
	}
	sort.Strings(names)

	sched := &Schedule{Seed: cfg.Seed}
	for _, name := range names {
		recs := indexRecords(archives[name])
		if len(recs) == 0 {
			continue
		}
		for _, class := range classes {
			for draw := 0; draw < per; draw++ {
				f, ok := planOne(cfg.Seed, class, uint64(draw), name, recs)
				if ok {
					sched.Faults = append(sched.Faults, f)
				}
			}
		}
	}
	sort.SliceStable(sched.Faults, func(i, j int) bool {
		a, b := sched.Faults[i], sched.Faults[j]
		if a.Archive != b.Archive {
			return a.Archive < b.Archive
		}
		if a.Record != b.Record {
			return a.Record < b.Record
		}
		return a.Class < b.Class
	})
	return sched, nil
}

// planOne plans a single fault of one class against one archive, or
// reports that the class does not apply (no eligible record).
func planOne(seed uint64, class Class, draw uint64, name string, recs []recSpan) (Fault, bool) {
	nh := nameHash(name)
	pick := func(n int, which uint64) int {
		return pickf(n, seed, nh, uint64(class), draw, which)
	}
	n := len(recs)
	f := Fault{Class: class, Archive: name, Span: 1}
	switch class {
	case ClassTruncate:
		f.Record = pick(n, 1)
		cut := truncateAt(seed, f, recs)
		f.Detail = fmt.Sprintf("cut archive at byte %d (inside record %d)", cut, f.Record)
	case ClassHeaderLie:
		f.Record = pick(n, 1)
		claimed := lieLength(seed, f, recs)
		f.Detail = fmt.Sprintf("header says %d bytes, body is %d", claimed, recs[f.Record].bodyLen())
	case ClassBitFlip:
		elig := eligible(recs, func(rs recSpan) bool { return rs.bodyLen() > 0 })
		if len(elig) == 0 {
			return Fault{}, false
		}
		f.Record = elig[pick(len(elig), 1)]
		f.Detail = fmt.Sprintf("%d bit flips in record %d body", flipCount(seed, f), f.Record)
	case ClassDuplicate:
		f.Record = pick(n, 1)
		f.Detail = fmt.Sprintf("record %d emitted twice", f.Record)
	case ClassReorder:
		if n < 2 {
			return Fault{}, false
		}
		f.Record, f.Span = pick(n-1, 1), 2
		f.Detail = fmt.Sprintf("records %d and %d swapped", f.Record, f.Record+1)
	case ClassDropShard:
		span := max(1, n/8)
		f.Record, f.Span = pick(n-span+1, 1), span
		f.Detail = fmt.Sprintf("records [%d,%d) deleted", f.Record, f.Record+span)
	case ClassFlapStorm:
		src := eligible(recs, func(rs recSpan) bool {
			return (rs.typ == mrt.TypeBGP4MP || rs.typ == mrt.TypeBGP4MPET) && isMessageSubtype(rs.subtype)
		})
		if len(src) == 0 {
			return Fault{}, false
		}
		f.Record = src[pick(len(src), 1)]
		f.Span = stormSize(seed, f)
		f.Detail = fmt.Sprintf("%d state-change records inserted before record %d", f.Span, f.Record)
	case ClassAddPathMix:
		elig := eligible(recs, func(rs recSpan) bool {
			_, ok := apMixable(rs.typ, rs.subtype)
			return ok
		})
		if len(elig) == 0 {
			return Fault{}, false
		}
		start := pick(len(elig), 1)
		f.Record = elig[start]
		run := 1 + pickf(min(4, len(elig)-start), mutKey(seed, f, 2)...)
		f.Span = elig[start+run-1] - f.Record + 1
		f.Detail = fmt.Sprintf("%d records rewritten to ADD-PATH subtypes", run)
	default:
		return Fault{}, false
	}
	f.Offset = recs[f.Record].off
	return f, true
}

// The per-class mutation parameters, shared by planOne (for Detail) and
// Apply (for the actual bytes).

func truncateAt(seed uint64, f Fault, recs []recSpan) int {
	rs := recs[f.Record]
	if body := rs.bodyLen(); body > 0 {
		return rs.off + 12 + pickf(body, mutKey(seed, f, 2)...)
	}
	return rs.off + 1 + pickf(11, mutKey(seed, f, 2)...)
}

func lieLength(seed uint64, f Fault, recs []recSpan) int {
	actual := recs[f.Record].bodyLen()
	if pickf(2, mutKey(seed, f, 2)...) == 0 && actual >= 8 {
		return actual - (1 + pickf(min(actual-1, 16), mutKey(seed, f, 3)...))
	}
	return actual + 1 + pickf(64, mutKey(seed, f, 3)...)
}

func flipCount(seed uint64, f Fault) int {
	return 1 + pickf(3, mutKey(seed, f, 2)...)
}

func stormSize(seed uint64, f Fault) int {
	return 16 + pickf(17, mutKey(seed, f, 2)...)
}

func eligible(recs []recSpan, ok func(recSpan) bool) []int {
	var out []int
	for i, rs := range recs {
		if ok(rs) {
			out = append(out, i)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
