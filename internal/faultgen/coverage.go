package faultgen

import (
	"net/netip"

	"repro/internal/mrt"
)

// CoveredPrefixes decodes the clean archive's records inside the
// fault's ground-truth coverage range and returns the prefixes whose
// snapshot cells the fault may legitimately have damaged. A covered
// PEER_INDEX_TABLE record poisons the peer mapping of every record in
// the archive, reported as all=true. Only TABLE_DUMP_V2 records carry
// prefixes; BGP4MP records in range contribute nothing (they feed
// warnings, not cells).
func CoveredPrefixes(f Fault, clean []byte) (pfxs []netip.Prefix, all bool) {
	recs := indexRecords(clean)
	lo, hi := f.Covered(len(recs))
	for i := lo; i < hi && i < len(recs); i++ {
		rs := recs[i]
		if rs.typ != mrt.TypeTableDumpV2 {
			continue
		}
		if rs.subtype == mrt.SubPeerIndexTable {
			return nil, true
		}
		rib, err := mrt.ParseRIB(rs.subtype, clean[rs.off+12:rs.end])
		if err != nil {
			continue
		}
		pfxs = append(pfxs, rib.Prefix)
	}
	return pfxs, false
}

// DamagedPrefixes decodes the damaged archive's records inside the
// fault's damaged-side coverage range (Fault.CoveredDamaged) and
// returns the prefixes that fault-created content may claim — e.g. a
// bit flip in NLRI bytes re-aiming a record at a different prefix.
// For framing-preserving classes this walk is exactly the walk the
// stream performs, so the set is exact; after a broken boundary it is
// best-effort. A PEER_INDEX_TABLE inside the range reports all=true.
func DamagedPrefixes(f Fault, damaged []byte) (pfxs []netip.Prefix, all bool) {
	recs := indexRecords(damaged)
	lo, hi := f.CoveredDamaged(len(recs))
	for i := lo; i < hi && i < len(recs); i++ {
		rs := recs[i]
		if rs.typ != mrt.TypeTableDumpV2 {
			continue
		}
		if rs.subtype == mrt.SubPeerIndexTable {
			return nil, true
		}
		rib, err := mrt.ParseRIB(rs.subtype, damaged[rs.off+12:rs.end])
		if err != nil {
			continue
		}
		pfxs = append(pfxs, rib.Prefix)
	}
	return pfxs, false
}

// ArchivePrefixes decodes every RIB record of a clean archive — the
// full prefix universe a damaged copy could legitimately have seen. A
// prefix decoded from a damaged archive but absent from this set is a
// corruption-created phantom.
func ArchivePrefixes(clean []byte) []netip.Prefix {
	var out []netip.Prefix
	for _, rs := range indexRecords(clean) {
		if rs.typ != mrt.TypeTableDumpV2 || rs.subtype == mrt.SubPeerIndexTable {
			continue
		}
		if rib, err := mrt.ParseRIB(rs.subtype, clean[rs.off+12:rs.end]); err == nil {
			out = append(out, rib.Prefix)
		}
	}
	return out
}

// NumRecords returns the archive's record count under the same framing
// walk Plan uses — the denominator for Fault.Covered.
func NumRecords(clean []byte) int {
	return len(indexRecords(clean))
}
