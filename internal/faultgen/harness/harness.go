// Package harness is the end-to-end differential fault harness: for
// every fault class it runs the full MRT→atoms pipeline twice — once
// over a clean synthetic world, once over the same world with seeded
// faultgen damage — and classifies the outcome per class:
//
//   - absorbed: the damaged run produced byte-for-byte the same
//     sanitized snapshot (same VPs, prefixes, and per-cell AS paths) as
//     the clean run. The pipeline shrugged the damage off.
//   - contained: the runs diverged, but every divergence is explained
//     by the injected faults' ground-truth coverage (faultgen.Fault)
//     plus the pipeline's own removal accounting (quarantine, peer
//     removals, full-feed threshold shifts), AND the damaged run was
//     loud about it — at least one warning, resync, quarantine,
//     removal, or error. Silent divergence is never contained.
//
// Anything else is a Problem, and the harness's report lists it. An
// empty Problems list is the invariant the fault-injection tests
// assert: damage is either absorbed or contained, never silent.
//
// The harness is deterministic end to end: the same Config produces a
// byte-identical Result.Marshal at any worker count.
package harness

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/faultgen"
	"repro/internal/obs"
	"repro/internal/prefixset"
	"repro/internal/routing"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

// Config parameterizes one harness run.
type Config struct {
	// Seed drives fault planning (faultgen.Config.Seed).
	Seed uint64
	// TopoSeed / Scale / Year / Quarter shape the synthetic world.
	TopoSeed uint64
	Scale    float64
	Year     int
	Quarter  int
	// Collectors pins the collector count (0 = era default).
	Collectors int
	// Workers is the pipeline worker count; the Result is identical at
	// any value — that identity is itself part of what tests assert.
	Workers int
	// Classes to exercise (nil = all).
	Classes []faultgen.Class
	// FaultsPerArchive per class (0 = 1).
	FaultsPerArchive int
	// Degradation budget handed to the streams (zero values keep
	// bgpstream defaults).
	DegradationMinRecords   int
	DegradationMaxSkipRatio float64
}

// DefaultConfig returns a small but structurally complete world: a few
// collectors, enough full feeds to clear the visibility thresholds.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		TopoSeed:   31,
		Scale:      0.004,
		Year:       2012,
		Quarter:    1,
		Collectors: 3,
		Workers:    1,
	}
}

// World is the clean synthetic input, built once and shared by the
// clean baseline and every damaged run.
type World struct {
	Graph *topology.Graph
	Infra *collector.Infra
	// Ribs / Upds map collector name → clean archive bytes.
	Ribs, Upds map[string][]byte
	// Combined is the fault-planning namespace: "rib/<name>" and
	// "upd/<name>" keys over the same bytes.
	Combined map[string][]byte
}

// archiveKind splits a combined-namespace archive name.
func archiveKind(name string) (kind, coll string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// BuildWorld generates the clean world for cfg. The update streams are
// generated with zero flap rate and no collector artifacts so the
// clean baseline is pristine — every warning in a damaged run is
// attributable to injected damage.
func BuildWorld(cfg Config) *World {
	era := topology.EraOf(cfg.Year, cfg.Quarter)
	p := topology.DefaultParams(cfg.TopoSeed)
	p.Scale = cfg.Scale
	g := topology.Generate(p, era)
	in := collector.BuildInfra(g, collector.Config{Seed: 7, ForceCollectors: cfg.Collectors})
	snap := collector.BuildRIBs(g, in, nil, collector.EpochOf(era))
	upds := collector.BuildUpdates(g, in, collector.UpdateConfig{
		Model:           routing.ChurnModel{Seed: 9, UnitEventRate: 0.4, VPEventRate: 0.01, TransitFlipShare: 0.4},
		FromT:           0,
		ToT:             2.0 / 24.0,
		BaseTime:        collector.EpochOf(era),
		FullMessageProb: 0.8,
	})
	w := &World{Graph: g, Infra: in, Ribs: snap.Archives, Upds: upds,
		Combined: make(map[string][]byte, len(snap.Archives)+len(upds))}
	for name, data := range snap.Archives {
		w.Combined["rib/"+name] = data
	}
	for name, data := range upds {
		w.Combined["upd/"+name] = data
	}
	return w
}

// runOutcome is everything one pipeline run exposes to the verdict.
type runOutcome struct {
	Snap *core.Snapshot
	Rep  *sanitize.Report
	Err  error
	// Atoms from the snapshot (0 when Err).
	Atoms int
	// UpdWarnings / RibWarnings count stream decode warnings.
	UpdWarnings int
	RibWarnings int
	Resyncs     int
	// UpdQuarantined are update sources whose budget blew.
	UpdQuarantined []string
	Flaps          map[uint32]int
}

// signals counts the loud evidence this run left behind; a contained
// divergence requires at least one.
func (r *runOutcome) signals() int {
	n := r.UpdWarnings + r.RibWarnings + r.Resyncs + len(r.UpdQuarantined)
	if r.Rep != nil {
		n += r.Rep.QuarantinedFeeds + len(r.Rep.RemovedPeerASes)
	}
	if r.Err != nil {
		n++
	}
	return n
}

// sortedSources builds bgpstream sources in sorted-name order so the
// stream's warning order — and hence the report — is deterministic.
func sortedSources(archives map[string][]byte) []bgpstream.Source {
	names := make([]string, 0, len(archives))
	for name := range archives {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]bgpstream.Source, 0, len(names))
	for _, name := range names {
		out = append(out, bgpstream.BytesSource(name, archives[name], bgp.Options{}))
	}
	return out
}

// runPipeline drives the production path: update stream → warnings,
// session flaps, quarantine verdicts → sanitize.Clean over the RIB
// sources → atoms.
func runPipeline(cfg Config, ribs, upds map[string][]byte) *runOutcome {
	out := &runOutcome{}

	us := bgpstream.NewStream(nil, sortedSources(upds)...)
	us.SetDegradation(cfg.DegradationMinRecords, cfg.DegradationMaxSkipRatio)
	if _, err := us.All(); err != nil {
		out.Err = fmt.Errorf("update stream: %w", err)
		return out
	}
	warnings := us.Warnings()
	out.UpdWarnings = len(warnings)
	out.UpdQuarantined = us.Quarantined()
	out.Flaps = us.StateFlaps()
	for _, st := range us.SourceStats() {
		out.Resyncs += st.Resyncs
	}

	reg := obs.NewRegistry()
	opts := sanitize.Defaults()
	opts.Workers = cfg.Workers
	opts.Metrics = reg
	opts.SessionFlaps = out.Flaps
	opts.DegradationMinRecords = cfg.DegradationMinRecords
	opts.DegradationMaxSkipRatio = cfg.DegradationMaxSkipRatio
	if len(out.UpdQuarantined) > 0 {
		opts.QuarantinedCollectors = make(map[string]bool, len(out.UpdQuarantined))
		for _, name := range out.UpdQuarantined {
			opts.QuarantinedCollectors[name] = true
		}
	}
	snap, rep, err := sanitize.Clean(sortedSources(ribs), warnings, opts)
	out.Snap, out.Rep, out.Err = snap, rep, err
	m := reg.Snapshot()
	for key, v := range m.Counters {
		if strings.HasPrefix(key, "bgpstream.warnings") {
			out.RibWarnings += int(v)
		}
	}
	out.Resyncs += int(m.CounterValue("bgpstream.resyncs"))
	if err == nil {
		out.Atoms = len(core.ComputeAtomsWorkers(snap, cfg.Workers).Atoms)
	}
	return out
}

// ClassOutcome is the verdict for one fault class.
type ClassOutcome struct {
	Class    faultgen.Class
	Verdict  string // "absorbed" or "contained"
	Schedule *faultgen.Schedule
	// Stats of the damaged run (zero when the run errored).
	VPs, Prefixes, Atoms int
	Signals              int
	Quarantined          int
	Removed              int
	Err                  string
	Problems             []string
}

// Result is one full harness run.
type Result struct {
	Seed                     uint64
	Scale                    float64
	Year, Quarter            int
	CleanVPs, CleanPrefixes  int
	CleanAtoms               int
	RibArchives, UpdArchives int
	Classes                  []ClassOutcome
}

// Problems flattens every per-class problem; empty means the invariant
// held for all classes.
func (r *Result) Problems() []string {
	var out []string
	for _, c := range r.Classes {
		for _, p := range c.Problems {
			out = append(out, fmt.Sprintf("%s: %s", c.Class, p))
		}
	}
	return out
}

// Marshal renders the result as canonical text. Byte-identical across
// worker counts and repeated runs — the determinism tests compare
// these bytes directly.
func (r *Result) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "faultgen harness v1\nseed 0x%016x\n", r.Seed)
	fmt.Fprintf(&b, "world era=%dQ%d scale=%g rib_archives=%d upd_archives=%d\n",
		r.Year, r.Quarter, r.Scale, r.RibArchives, r.UpdArchives)
	fmt.Fprintf(&b, "clean vps=%d prefixes=%d atoms=%d\n", r.CleanVPs, r.CleanPrefixes, r.CleanAtoms)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "class %s verdict=%s vps=%d prefixes=%d atoms=%d signals=%d quarantined=%d removed=%d",
			c.Class, c.Verdict, c.VPs, c.Prefixes, c.Atoms, c.Signals, c.Quarantined, c.Removed)
		if c.Err != "" {
			fmt.Fprintf(&b, " err=%q", c.Err)
		}
		b.WriteByte('\n')
		for _, line := range strings.Split(strings.TrimRight(string(c.Schedule.Marshal()), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		for _, p := range c.Problems {
			fmt.Fprintf(&b, "  PROBLEM %s\n", p)
		}
	}
	fmt.Fprintf(&b, "problems %d\n", len(r.Problems()))
	return []byte(b.String())
}

// Run executes the harness: clean baseline, then one damaged pipeline
// run per fault class, each judged against the baseline.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = faultgen.AllClasses()
	}
	w := BuildWorld(cfg)
	res := &Result{
		Seed: cfg.Seed, Scale: cfg.Scale, Year: cfg.Year, Quarter: cfg.Quarter,
		RibArchives: len(w.Ribs), UpdArchives: len(w.Upds),
	}

	clean := runPipeline(cfg, w.Ribs, w.Upds)
	if clean.Err != nil {
		return nil, fmt.Errorf("harness: clean baseline errored: %w", clean.Err)
	}
	if n := clean.signals(); n != 0 {
		return nil, fmt.Errorf("harness: clean baseline is not pristine (%d signals); every damaged-run signal must be attributable to injected damage", n)
	}
	res.CleanVPs = len(clean.Snap.VPs)
	res.CleanPrefixes = len(clean.Snap.Prefixes)
	res.CleanAtoms = clean.Atoms
	if res.CleanVPs == 0 || res.CleanPrefixes == 0 {
		return nil, fmt.Errorf("harness: degenerate clean world (%d VPs, %d prefixes) — enlarge Scale", res.CleanVPs, res.CleanPrefixes)
	}

	for _, class := range classes {
		sched, err := faultgen.Plan(faultgen.Config{
			Seed: cfg.Seed, Classes: []faultgen.Class{class},
			FaultsPerArchive: cfg.FaultsPerArchive,
		}, w.Combined)
		if err != nil {
			return nil, fmt.Errorf("harness: plan %s: %w", class, err)
		}
		damaged, err := faultgen.Apply(sched, w.Combined)
		if err != nil {
			return nil, fmt.Errorf("harness: apply %s: %w", class, err)
		}
		dribs := make(map[string][]byte, len(w.Ribs))
		dupds := make(map[string][]byte, len(w.Upds))
		for name, data := range damaged {
			kind, coll := archiveKind(name)
			switch kind {
			case "rib":
				dribs[coll] = data
			case "upd":
				dupds[coll] = data
			}
		}
		out := runPipeline(cfg, dribs, dupds)
		res.Classes = append(res.Classes, judge(class, sched, w, dribs, clean, out))
	}
	return res, nil
}

// archiveDamage is one RIB archive's ground-truth fault coverage.
type archiveDamage struct {
	faulted bool
	// all: a fault covered the PEER_INDEX_TABLE — every cell of this
	// archive's VPs is fair game.
	all bool
	// coverage: prefixes whose clean records a fault covered (may be
	// lost or altered); damagedCov: prefixes fault-created content
	// claims (may phantom-appear).
	coverage, damagedCov map[netip.Prefix]bool
	// suffix: framing broken from the fault onward (resync territory).
	suffix bool
}

// judge classifies one damaged run against the clean baseline.
func judge(class faultgen.Class, sched *faultgen.Schedule, w *World, dribs map[string][]byte, clean, damaged *runOutcome) ClassOutcome {
	oc := ClassOutcome{Class: class, Schedule: sched, Signals: damaged.signals()}
	if damaged.Rep != nil {
		oc.Quarantined = damaged.Rep.QuarantinedFeeds
		oc.Removed = len(damaged.Rep.RemovedPeerASes)
	}
	problem := func(format string, args ...any) {
		oc.Problems = append(oc.Problems, fmt.Sprintf(format, args...))
	}

	if damaged.Err != nil {
		oc.Err = damaged.Err.Error()
		// A loud refusal is containment's strongest form — but only the
		// designed refusal. Anything else is a pipeline bug.
		if errors.Is(damaged.Err, sanitize.ErrAllFeedsRemoved) {
			oc.Verdict = "contained"
		} else {
			oc.Verdict = "contained"
			problem("unexpected pipeline error: %v", damaged.Err)
		}
		return oc
	}

	oc.VPs = len(damaged.Snap.VPs)
	oc.Prefixes = len(damaged.Snap.Prefixes)
	oc.Atoms = damaged.Atoms

	if snapshotsEqual(clean.Snap, damaged.Snap) {
		oc.Verdict = "absorbed"
		return oc
	}
	oc.Verdict = "contained"

	// Divergence must be loud.
	if oc.Signals == 0 {
		problem("silent divergence: snapshots differ with zero warnings, resyncs, quarantines, or removals")
	}

	// Ground-truth coverage per faulted RIB archive. Update-archive
	// faults never touch cells directly; they act through warnings,
	// flap counts, and quarantine — all visible in the report.
	dmg := map[string]*archiveDamage{}
	for _, f := range sched.Faults {
		kind, coll := archiveKind(f.Archive)
		if kind != "rib" {
			continue
		}
		ad := dmg[coll]
		if ad == nil {
			ad = &archiveDamage{coverage: map[netip.Prefix]bool{}, damagedCov: map[netip.Prefix]bool{}}
			dmg[coll] = ad
		}
		ad.faulted = true
		if f.Class.CoversSuffix() {
			ad.suffix = true
		}
		pfxs, all := faultgen.CoveredPrefixes(f, w.Ribs[coll])
		if all {
			ad.all = true
		}
		for _, p := range pfxs {
			ad.coverage[prefixset.Canonical(p)] = true
		}
		dpfxs, dall := faultgen.DamagedPrefixes(f, dribs[coll])
		if dall {
			ad.all = true
		}
		for _, p := range dpfxs {
			ad.damagedCov[prefixset.Canonical(p)] = true
		}
	}

	// Pipeline-level accounting from the damaged report.
	quarantined := map[string]bool{}
	removed := damaged.Rep.RemovedPeerASes
	for _, name := range damaged.Rep.QuarantinedCollectors {
		quarantined[name] = true
	}
	fullFeed := func(rep *sanitize.Report) map[core.VP]bool {
		m := map[core.VP]bool{}
		for _, fs := range rep.Feeds {
			m[fs.VP] = fs.FullFeed
		}
		return m
	}
	cleanFull, dmgFull := fullFeed(clean.Rep), fullFeed(damaged.Rep)
	fullFeedSetChanged := func() bool {
		if len(cleanFull) != len(dmgFull) {
			return true
		}
		for vp, ff := range cleanFull {
			if dmgFull[vp] != ff {
				return true
			}
		}
		return false
	}()

	// VP accounting: every snapshot VP-set difference must trace to
	// quarantine, a recorded removal, a full-feed threshold shift, or a
	// fault on the VP's own archive.
	cleanVPs, dmgVPs := vpSet(clean.Snap), vpSet(damaged.Snap)
	vpSetChanged := false
	for vp := range cleanVPs {
		if dmgVPs[vp] {
			continue
		}
		vpSetChanged = true
		ad := dmg[vp.Collector]
		switch {
		case quarantined[vp.Collector]:
		case removed[vp.ASN] != "":
		case !dmgFull[vp]: // fell below the full-feed threshold, report says so
		case ad != nil && ad.faulted:
		default:
			problem("VP %s vanished with no quarantine, removal, threshold, or fault explanation", vp)
		}
	}
	for vp := range dmgVPs {
		if cleanVPs[vp] {
			continue
		}
		vpSetChanged = true
		ad := dmg[vp.Collector]
		switch {
		case ad != nil && ad.faulted: // damaged PIT can mint identities
		case !cleanFull[vp] && dmgFull[vp]: // threshold dropped, feed promoted
		default:
			problem("phantom VP %s appeared with no fault on its archive", vp)
		}
	}

	anyCoverage := func(p netip.Prefix) bool {
		for _, ad := range dmg {
			if ad.all || ad.coverage[p] || ad.damagedCov[p] {
				return true
			}
		}
		return false
	}

	// Prefix accounting.
	cleanPfx, dmgPfx := prefixIndex(clean.Snap), prefixIndex(damaged.Snap)
	cleanUniverse := map[netip.Prefix]bool{}
	for _, data := range w.Ribs {
		for _, p := range faultgen.ArchivePrefixes(data) {
			cleanUniverse[prefixset.Canonical(p)] = true
		}
	}
	for p := range cleanPfx {
		if _, ok := dmgPfx[p]; ok {
			continue
		}
		if !anyCoverage(p) && !vpSetChanged && !fullFeedSetChanged {
			problem("prefix %v lost without coverage or a VP-set change", p)
		}
	}
	for p := range dmgPfx {
		if _, ok := cleanPfx[p]; ok {
			continue
		}
		if anyCoverage(p) {
			continue
		}
		if cleanUniverse[p] && (vpSetChanged || fullFeedSetChanged) {
			continue
		}
		problem("phantom prefix %v admitted: absent from every clean archive and no VP-set change", p)
	}

	// Cell accounting over common (prefix, VP) pairs. Clean records
	// before a fault are byte-identical and first-wins deduplication
	// keeps their routes authoritative, so a changed cell must be
	// covered by the fault — or be resync garbage filling a previously
	// empty cell after a broken boundary.
	cleanVPi, dmgVPi := vpIndex(clean.Snap), vpIndex(damaged.Snap)
	for p, cpi := range cleanPfx {
		dpi, ok := dmgPfx[p]
		if !ok {
			continue
		}
		for vp, cvi := range cleanVPi {
			dvi, ok := dmgVPi[vp]
			if !ok {
				continue
			}
			cs := clean.Snap.Route(cpi, cvi)
			ds := damaged.Snap.Route(dpi, dvi)
			if seqEqual(cs, ds) {
				continue
			}
			ad := dmg[vp.Collector]
			switch {
			case ad == nil || !ad.faulted:
				problem("cell (%v, %s) changed but the VP's archive was never faulted", p, vp)
			case ad.all:
			case ad.coverage[p] || ad.damagedCov[p]:
			case ad.suffix && len(cs) == 0:
				// Post-boundary resync garbage claiming an empty cell.
			default:
				problem("cell (%v, %s) changed outside the fault's coverage", p, vp)
			}
		}
	}
	return oc
}

func vpSet(s *core.Snapshot) map[core.VP]bool {
	m := make(map[core.VP]bool, len(s.VPs))
	for _, vp := range s.VPs {
		m[vp] = true
	}
	return m
}

func prefixIndex(s *core.Snapshot) map[netip.Prefix]int {
	m := make(map[netip.Prefix]int, len(s.Prefixes))
	for i, p := range s.Prefixes {
		m[p] = i
	}
	return m
}

func vpIndex(s *core.Snapshot) map[core.VP]int {
	m := make(map[core.VP]int, len(s.VPs))
	for i, vp := range s.VPs {
		m[vp] = i
	}
	return m
}

func seqEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshotsEqual compares two snapshots by content: VP set, prefix
// set, and every cell's path sequence. Interned IDs are not compared —
// they depend on interning order, which may differ between runs.
func snapshotsEqual(a, b *core.Snapshot) bool {
	if len(a.VPs) != len(b.VPs) || len(a.Prefixes) != len(b.Prefixes) {
		return false
	}
	for i := range a.VPs {
		if a.VPs[i] != b.VPs[i] {
			return false
		}
	}
	for i := range a.Prefixes {
		if a.Prefixes[i] != b.Prefixes[i] {
			return false
		}
	}
	for p := range a.Prefixes {
		for v := range a.VPs {
			if !seqEqual(a.Route(p, v), b.Route(p, v)) {
				return false
			}
		}
	}
	return true
}
