package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bgpstream"
	"repro/internal/faultgen"
)

// TestHarnessInvariantAllClasses is the PR's core assertion: for every
// fault class, the damaged pipeline either absorbs the damage or
// contains it with a full explanation — never silently diverges — and
// the whole harness is byte-deterministic across reruns and worker
// counts.
func TestHarnessInvariantAllClasses(t *testing.T) {
	cfg := DefaultConfig(17)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.Problems(); len(problems) != 0 {
		t.Fatalf("invariant violated:\n%s\n\nfull report:\n%s",
			strings.Join(problems, "\n"), res.Marshal())
	}
	if len(res.Classes) != len(faultgen.AllClasses()) {
		t.Fatalf("judged %d classes, want %d", len(res.Classes), len(faultgen.AllClasses()))
	}
	verdicts := map[string]int{}
	for _, c := range res.Classes {
		if c.Verdict != "absorbed" && c.Verdict != "contained" {
			t.Errorf("%s: verdict %q", c.Class, c.Verdict)
		}
		verdicts[c.Verdict]++
		if c.Verdict == "contained" && c.Signals == 0 {
			t.Errorf("%s: contained with zero signals", c.Class)
		}
		if len(c.Schedule.Faults) == 0 {
			t.Errorf("%s: empty schedule — the class was never exercised", c.Class)
		}
	}
	t.Logf("verdicts: %v", verdicts)

	// Rerun with the same config: byte-identical report.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Marshal(), res2.Marshal()) {
		t.Errorf("same config, different reports:\n%s\n---\n%s", res.Marshal(), res2.Marshal())
	}

	// Same seed at 8 workers: the parallel pipeline must not change a
	// single byte of the verdict. Force the parallel decode path so the
	// contract is exercised even on a single-core host, where the
	// stream's effective-CPU gate would fall back to sequential decode.
	bgpstream.ForceParallelDecode(true)
	defer bgpstream.ForceParallelDecode(false)
	cfg8 := cfg
	cfg8.Workers = 8
	res8, err := Run(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Marshal(), res8.Marshal()) {
		t.Errorf("workers=1 and workers=8 disagree:\n%s\n---\n%s", res.Marshal(), res8.Marshal())
	}
}

// TestHarnessDifferentSeedDifferentSchedule guards against the seed
// being ignored somewhere in the plumbing.
func TestHarnessDifferentSeedDifferentSchedule(t *testing.T) {
	a, err := Run(DefaultConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Error("seeds 17 and 18 produced identical reports")
	}
	if len(a.Problems())+len(b.Problems()) != 0 {
		t.Errorf("invariant violated at alternate seed:\n%s\n%s",
			strings.Join(a.Problems(), "\n"), strings.Join(b.Problems(), "\n"))
	}
}

// TestHarnessQuarantine drives the degradation budget hard enough that
// heavily damaged sources are quarantined, and asserts the harness
// still explains everything — including the all-feeds-removed refusal
// if every collector goes down.
func TestHarnessQuarantine(t *testing.T) {
	cfg := DefaultConfig(23)
	cfg.Classes = []faultgen.Class{faultgen.ClassBitFlip}
	cfg.FaultsPerArchive = 8
	cfg.DegradationMinRecords = 1
	cfg.DegradationMaxSkipRatio = 0.0001
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.Problems(); len(problems) != 0 {
		t.Fatalf("invariant violated under quarantine pressure:\n%s\n\nreport:\n%s",
			strings.Join(problems, "\n"), res.Marshal())
	}
	oc := res.Classes[0]
	if oc.Quarantined == 0 && oc.Err == "" {
		t.Errorf("budget (min=1, ratio=0.0001) never quarantined: %s", res.Marshal())
	}
}
