package faultgen

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/mrt"
)

// Apply executes a schedule against the clean archives and returns the
// damaged copies (inputs are never mutated; archives without faults are
// returned as copies too, so the result is independent of the input).
// The mutations are reconstructed from (Schedule.Seed, fault fields,
// clean bytes), so Apply(Plan(cfg, a), a) is reproducible from the
// schedule file alone.
func Apply(sched *Schedule, archives map[string][]byte) (map[string][]byte, error) {
	out := make(map[string][]byte, len(archives))
	for name, data := range archives {
		damaged := append([]byte(nil), data...)
		faults := sched.ForArchive(name)
		// Apply back-to-front so each fault's clean byte offsets are
		// still valid: a fault only moves bytes at or after its own
		// record, and every earlier-applied fault sits at a later record.
		for i := len(faults) - 1; i >= 0; i-- {
			var err error
			damaged, err = applyOne(sched.Seed, faults[i], data, damaged)
			if err != nil {
				return nil, fmt.Errorf("faultgen: %s on %s: %w", faults[i].Class, name, err)
			}
		}
		out[name] = damaged
	}
	return out, nil
}

// applyOne mutates work according to f. clean is the pristine archive
// the schedule was planned against; record offsets come from it.
func applyOne(seed uint64, f Fault, clean, work []byte) ([]byte, error) {
	recs := indexRecords(clean)
	if f.Record >= len(recs) {
		return nil, fmt.Errorf("record %d out of range (%d records)", f.Record, len(recs))
	}
	rs := recs[f.Record]
	switch f.Class {
	case ClassTruncate:
		cut := truncateAt(seed, f, recs)
		if cut > len(work) {
			cut = len(work)
		}
		return work[:cut], nil
	case ClassHeaderLie:
		// Bounds guards here and below cover multi-fault schedules where
		// a same-record fault of a later class (applied first) already
		// shrank the archive under this one's clean offsets.
		if rs.off+12 <= len(work) {
			claimed := lieLength(seed, f, recs)
			binary.BigEndian.PutUint32(work[rs.off+8:rs.off+12], uint32(claimed))
		}
		return work, nil
	case ClassBitFlip:
		body := rs.bodyLen()
		for i := 0; i < flipCount(seed, f); i++ {
			pos := rs.off + 12 + pickf(body, mutKey(seed, f, uint64(10+i))...)
			if pos >= len(work) {
				continue
			}
			bit := pickf(8, mutKey(seed, f, uint64(20+i))...)
			work[pos] ^= 1 << bit
		}
		return work, nil
	case ClassDuplicate:
		return splice(work, rs.end, 0, clean[rs.off:rs.end]), nil
	case ClassReorder:
		next := recs[f.Record+1]
		swapped := make([]byte, 0, next.end-rs.off)
		swapped = append(swapped, clean[next.off:next.end]...)
		swapped = append(swapped, clean[rs.off:rs.end]...)
		return splice(work, rs.off, next.end-rs.off, swapped), nil
	case ClassDropShard:
		last := recs[f.Record+f.Span-1]
		return splice(work, rs.off, last.end-rs.off, nil), nil
	case ClassFlapStorm:
		storm, err := buildStorm(f, clean, rs)
		if err != nil {
			return nil, err
		}
		return splice(work, rs.off, 0, storm), nil
	case ClassAddPathMix:
		for i := f.Record; i < f.Record+f.Span && i < len(recs); i++ {
			r := recs[i]
			if apSub, ok := apMixable(r.typ, r.subtype); ok && r.off+12 <= len(work) {
				binary.BigEndian.PutUint16(work[r.off+6:r.off+8], apSub)
			}
		}
		return work, nil
	}
	return nil, fmt.Errorf("unknown class %d", f.Class)
}

// splice replaces work[at:at+del] with ins, copying into a new slice.
// The range is clamped to the working buffer (a colliding earlier fault
// may have shrunk it below the clean offsets).
func splice(work []byte, at, del int, ins []byte) []byte {
	if at > len(work) {
		at = len(work)
	}
	if at+del > len(work) {
		del = len(work) - at
	}
	out := make([]byte, 0, len(work)-del+len(ins))
	out = append(out, work[:at]...)
	out = append(out, ins...)
	out = append(out, work[at+del:]...)
	return out
}

// buildStorm encodes f.Span STATE_CHANGE records impersonating the peer
// of the clean BGP4MP message at rs: Established bouncing to Idle and
// back, every record well-formed. The session identity is real, the
// behavior is pathological — exactly what sanitize's flap filter must
// catch without any parse warning firing.
func buildStorm(f Fault, clean []byte, rs recSpan) ([]byte, error) {
	ts := binary.BigEndian.Uint32(clean[rs.off : rs.off+4])
	body := clean[rs.off+12 : rs.end]
	if rs.typ == mrt.TypeBGP4MPET {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: ET record too short", mrt.ErrTruncated)
		}
		body = body[4:]
	}
	var msg mrt.Message
	if err := mrt.ParseMessageInto(&msg, rs.subtype, body); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	for i := 0; i < f.Span; i++ {
		sc := mrt.StateChange{
			PeerAS: msg.PeerAS, LocalAS: msg.LocalAS,
			PeerAddr: msg.PeerAddr, LocalAddr: msg.LocalAddr,
			AS4: msg.AS4,
		}
		if i%2 == 0 {
			sc.OldState, sc.NewState = mrt.StateEstablished, mrt.StateIdle
		} else {
			sc.OldState, sc.NewState = mrt.StateIdle, mrt.StateEstablished
		}
		scBody, err := sc.Marshal()
		if err != nil {
			return nil, err
		}
		rec := mrt.Record{Timestamp: ts, Type: mrt.TypeBGP4MP, Subtype: sc.Subtype(), Body: scBody}
		if err := w.WriteRecord(rec); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
