package faultgen

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/mrt"
)

// testArchive builds a framing-valid archive with eligible records for
// every fault class: a peer index table, RIB records with distinct
// bodies, and parseable BGP4MP messages.
func testArchive(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "test",
		Peers: []mrt.Peer{{
			BGPID: netip.MustParseAddr("203.0.113.1"),
			Addr:  netip.MustParseAddr("203.0.113.1"),
			ASN:   65001,
		}},
	}
	body, err := pit.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	write := func(rec mrt.Record) {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	write(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body})
	for i := 0; i < 6; i++ {
		rib := &mrt.RIB{
			Sequence: uint32(i),
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			Entries:  []mrt.RIBEntry{{PeerIndex: 0, Originated: 1000}},
		}
		rb, err := rib.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		write(mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: rb})
	}
	for i := 0; i < 4; i++ {
		m := &mrt.Message{
			PeerAS: 65001, LocalAS: 65002,
			PeerAddr:  netip.MustParseAddr("203.0.113.1"),
			LocalAddr: netip.MustParseAddr("203.0.113.2"),
			AS4:       true,
			Data:      []byte{byte(i), 1, 2, 3},
		}
		mb, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		write(mrt.Record{Timestamp: 1000 + uint32(i), Type: mrt.TypeBGP4MP, Subtype: m.Subtype(), Body: mb})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testArchives(t *testing.T) map[string][]byte {
	return map[string][]byte{"alpha": testArchive(t), "beta": testArchive(t)}
}

func TestPlanDeterminism(t *testing.T) {
	archives := testArchives(t)
	cfg := Config{Seed: 42}
	s1, err := Plan(cfg, archives)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Plan(cfg, archives)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Marshal(), s2.Marshal()) {
		t.Fatalf("same seed produced different schedules:\n%s\n---\n%s", s1.Marshal(), s2.Marshal())
	}
	if len(s1.Faults) == 0 {
		t.Fatal("empty schedule")
	}
	s3, err := Plan(Config{Seed: 43}, archives)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range s1.Faults {
		if i < len(s3.Faults) && (s1.Faults[i].Record != s3.Faults[i].Record || s1.Faults[i].Detail != s3.Faults[i].Detail) {
			diff = true
			break
		}
	}
	if len(s1.Faults) != len(s3.Faults) {
		diff = true
	}
	if !diff {
		t.Error("different seeds produced identical fault placements")
	}
}

func TestApplyDeterministicAndNonMutating(t *testing.T) {
	archives := testArchives(t)
	pristine := map[string][]byte{}
	for name, data := range archives {
		pristine[name] = append([]byte(nil), data...)
	}
	sched, err := Plan(Config{Seed: 7}, archives)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Apply(sched, archives)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Apply(sched, archives)
	if err != nil {
		t.Fatal(err)
	}
	for name := range archives {
		if !bytes.Equal(d1[name], d2[name]) {
			t.Errorf("%s: Apply not deterministic", name)
		}
		if !bytes.Equal(archives[name], pristine[name]) {
			t.Errorf("%s: Apply mutated the clean input", name)
		}
	}
}

func TestEveryClassPlansAndDamages(t *testing.T) {
	for _, class := range AllClasses() {
		t.Run(class.String(), func(t *testing.T) {
			archives := map[string][]byte{"only": testArchive(t)}
			sched, err := Plan(Config{Seed: 11, Classes: []Class{class}}, archives)
			if err != nil {
				t.Fatal(err)
			}
			if len(sched.Faults) != 1 {
				t.Fatalf("planned %d faults, want 1", len(sched.Faults))
			}
			f := sched.Faults[0]
			if f.Class != class || f.Archive != "only" {
				t.Fatalf("bad fault: %+v", f)
			}
			damaged, err := Apply(sched, archives)
			if err != nil {
				t.Fatal(err)
			}
			clean, dmg := archives["only"], damaged["only"]
			if bytes.Equal(clean, dmg) {
				t.Fatalf("%s left the archive untouched: %s", class, f.Detail)
			}
			switch class {
			case ClassTruncate, ClassDropShard:
				if len(dmg) >= len(clean) {
					t.Errorf("%s did not shrink the archive (%d -> %d)", class, len(clean), len(dmg))
				}
			case ClassDuplicate, ClassFlapStorm:
				if len(dmg) <= len(clean) {
					t.Errorf("%s did not grow the archive (%d -> %d)", class, len(clean), len(dmg))
				}
			case ClassHeaderLie, ClassBitFlip, ClassReorder, ClassAddPathMix:
				if len(dmg) != len(clean) {
					t.Errorf("%s changed the length (%d -> %d)", class, len(clean), len(dmg))
				}
			}
		})
	}
}

func TestCoveredRanges(t *testing.T) {
	n := 11
	cases := []struct {
		f      Fault
		lo, hi int
	}{
		{Fault{Class: ClassTruncate, Record: 4, Span: 1}, 4, n},
		{Fault{Class: ClassHeaderLie, Record: 2, Span: 1}, 2, n},
		{Fault{Class: ClassBitFlip, Record: 3, Span: 1}, 3, 4},
		{Fault{Class: ClassDuplicate, Record: 5, Span: 1}, 5, 6},
		{Fault{Class: ClassReorder, Record: 6, Span: 2}, 6, 8},
		{Fault{Class: ClassDropShard, Record: 1, Span: 3}, 1, 4},
		{Fault{Class: ClassFlapStorm, Record: 8, Span: 20}, 0, 0},
		{Fault{Class: ClassAddPathMix, Record: 9, Span: 4}, 9, n},
	}
	for _, c := range cases {
		lo, hi := c.f.Covered(n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("%s.Covered(%d) = [%d,%d), want [%d,%d)", c.f.Class, n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestCoveredPrefixes(t *testing.T) {
	clean := testArchive(t)
	// Record 0 is the PIT; records 1..6 are RIBs for 10.<i-1>.0.0/16.
	pfxs, all := CoveredPrefixes(Fault{Class: ClassBitFlip, Record: 2, Span: 1}, clean)
	if all {
		t.Fatal("single RIB record reported as poisoning the archive")
	}
	want := netip.MustParsePrefix("10.1.0.0/16")
	if len(pfxs) != 1 || pfxs[0] != want {
		t.Fatalf("covered prefixes = %v, want [%v]", pfxs, want)
	}
	if _, all := CoveredPrefixes(Fault{Class: ClassDropShard, Record: 0, Span: 2}, clean); !all {
		t.Fatal("covered PIT did not poison the archive")
	}
	if got := ArchivePrefixes(clean); len(got) != 6 {
		t.Fatalf("ArchivePrefixes = %d prefixes, want 6", len(got))
	}
	if n := NumRecords(clean); n != 11 {
		t.Fatalf("NumRecords = %d, want 11", n)
	}
}

func TestParseClasses(t *testing.T) {
	all, err := ParseClasses("all")
	if err != nil || len(all) != len(AllClasses()) {
		t.Fatalf("ParseClasses(all) = %v, %v", all, err)
	}
	got, err := ParseClasses("truncate, bit-flip")
	if err != nil || len(got) != 2 || got[0] != ClassTruncate || got[1] != ClassBitFlip {
		t.Fatalf("ParseClasses list = %v, %v", got, err)
	}
	if _, err := ParseClasses("nope"); err == nil {
		t.Fatal("unknown class accepted")
	}
	for _, c := range AllClasses() {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Fatalf("round trip %s failed: %v %v", c, back, err)
		}
	}
}

func TestAddPathMixRewritesSubtypes(t *testing.T) {
	archives := map[string][]byte{"only": testArchive(t)}
	sched, err := Plan(Config{Seed: 3, Classes: []Class{ClassAddPathMix}}, archives)
	if err != nil {
		t.Fatal(err)
	}
	damaged, err := Apply(sched, archives)
	if err != nil {
		t.Fatal(err)
	}
	cleanRecs, err := mrt.ReadAll(bytes.NewReader(archives["only"]))
	if err != nil {
		t.Fatal(err)
	}
	dmgRecs, err := mrt.ReadAll(bytes.NewReader(damaged["only"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanRecs) != len(dmgRecs) {
		t.Fatalf("record count changed: %d -> %d", len(cleanRecs), len(dmgRecs))
	}
	rewritten := 0
	for i := range cleanRecs {
		if cleanRecs[i].Subtype != dmgRecs[i].Subtype {
			rewritten++
			switch cleanRecs[i].Subtype {
			case mrt.SubRIBIPv4Unicast:
				if dmgRecs[i].Subtype != mrt.SubRIBIPv4UnicastAP {
					t.Errorf("record %d: %d -> %d", i, cleanRecs[i].Subtype, dmgRecs[i].Subtype)
				}
			case mrt.SubMessageAS4:
				if dmgRecs[i].Subtype != mrt.SubMessageAS4AP {
					t.Errorf("record %d: %d -> %d", i, cleanRecs[i].Subtype, dmgRecs[i].Subtype)
				}
			}
			if !bytes.Equal(cleanRecs[i].Body, dmgRecs[i].Body) {
				t.Errorf("record %d: body changed alongside subtype", i)
			}
		}
	}
	if rewritten == 0 {
		t.Fatal("no subtype rewritten")
	}
}
