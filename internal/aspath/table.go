package aspath

import (
	"sync"
	"sync/atomic"
)

// ID is an interned path identifier. ID 0 is reserved for the empty path
// (a prefix not observed at a vantage point).
type ID uint32

// Empty is the ID of the empty path.
const Empty ID = 0

// numShards stripes the intern map so concurrent snapshot-build workers
// don't serialize on one lock. Must be a power of two.
const numShards = 64

type tableShard struct {
	mu  sync.RWMutex
	ids map[string]ID
}

// Table interns AS-path sequences, mapping each distinct sequence to a
// dense ID. It is the backbone of the snapshot model: per-prefix per-VP
// routes are stored as IDs, and atom grouping hashes ID vectors instead
// of path contents.
//
// A Table is safe for concurrent use and built for it: the sequence→ID
// map is striped across numShards locks (an Intern of an already-known
// path only takes one shard's read lock), and the ID→sequence side is
// an append-only slice published through an atomic pointer, so Seq,
// Origin and Len never lock at all. ID values depend on interleaving
// when multiple goroutines intern new paths — callers must treat IDs as
// opaque within one table (the pipeline's outputs never depend on raw
// ID values, only on ID equality, which interning guarantees).
type Table struct {
	shards [numShards]tableShard
	seqMu  sync.Mutex            // serializes appends to the seqs slice
	seqs   atomic.Pointer[[]Seq] // index = ID; (*seqs)[0] is nil (the empty path)
	// arena backs the stored copies of interned sequences in chunked
	// blocks (guarded by seqMu), so a table ingesting k distinct paths
	// costs ~k/thousands block allocations instead of k Clones.
	arena []uint32
}

// NewTable returns an empty table containing only the empty path.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].ids = make(map[string]ID, 32)
	}
	seqs := make([]Seq, 1, 1024)
	t.seqs.Store(&seqs)
	return t
}

// keyStackBytes sizes the on-stack key buffer used by Intern and
// Lookup: paths up to 32 hops (far beyond any sane AS path) encode
// without touching the heap.
const keyStackBytes = 128

// appendKey encodes a sequence onto buf as big-endian uint32s — the
// compact form used as the intern-map key. It only appends, so callers
// pass a stack-backed buf and pay a heap allocation solely for
// pathological >32-hop paths.
func appendKey(buf []byte, s Seq) []byte {
	for _, a := range s {
		buf = append(buf, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return buf
}

// shardOf maps a key to its stripe (FNV-1a over the key bytes).
func shardOf(k []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

// Intern returns the ID for seq, allocating one if it is new. The empty
// sequence always maps to Empty. The table stores its own copy; callers
// may reuse seq's backing array.
//
// The hit path — an already-interned sequence, the overwhelmingly
// common case once a table warms up — is allocation-free: the key is
// encoded into a stack buffer and the map lookup uses the compiler's
// non-escaping map[string(buf)] form, so only genuinely new sequences
// pay for a key copy (TestInternHitPathAllocs locks this in).
//
//atomlint:hotpath
func (t *Table) Intern(seq Seq) ID {
	if len(seq) == 0 {
		return Empty
	}
	var stack [keyStackBytes]byte
	buf := appendKey(stack[:0], seq)
	sh := &t.shards[shardOf(buf)]
	sh.mu.RLock()
	id, ok := sh.ids[string(buf)]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return t.internSlow(sh, buf, seq)
}

// internSlow is Intern's miss path: take the write lock, re-check, and
// allocate the next dense ID. Split out so the hit path stays small
// enough to keep its key buffer on the stack.
func (t *Table) internSlow(sh *tableShard, buf []byte, seq Seq) ID {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[string(buf)]; ok {
		return id
	}
	// Appending in place is safe for the lock-free readers: a reader
	// holding the old slice header never indexes past its own length,
	// and the new header is published atomically only after the element
	// is written.
	t.seqMu.Lock()
	cur := *t.seqs.Load()
	id := ID(len(cur))
	next := append(cur, t.store(seq))
	t.seqs.Store(&next)
	t.seqMu.Unlock()
	sh.ids[string(buf)] = id
	return id
}

// seqArenaBlock sizes the arena blocks backing stored sequences.
const seqArenaBlock = 1 << 14

// store copies seq into the table-owned arena (called under seqMu).
// The returned slice is capacity-capped so later appends cannot bleed
// into the next stored sequence.
func (t *Table) store(seq Seq) Seq {
	n := len(seq)
	if n > seqArenaBlock {
		return seq.Clone()
	}
	if cap(t.arena)-len(t.arena) < n {
		t.arena = make([]uint32, 0, seqArenaBlock)
	}
	off := len(t.arena)
	t.arena = append(t.arena, seq...)
	return t.arena[off : off+n : off+n]
}

// Lookup returns the ID for seq without interning, and false if the
// sequence has not been interned. Allocation-free like Intern's hit
// path.
//
//atomlint:hotpath
func (t *Table) Lookup(seq Seq) (ID, bool) {
	if len(seq) == 0 {
		return Empty, true
	}
	var stack [keyStackBytes]byte
	buf := appendKey(stack[:0], seq)
	sh := &t.shards[shardOf(buf)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	id, ok := sh.ids[string(buf)]
	return id, ok
}

// Seq returns the sequence for id. The returned slice is owned by the
// table and must not be mutated. Seq(Empty) returns nil. Lock-free.
//
//atomlint:borrowed table-owned: the slice aliases the intern arena and must not be mutated; it is stable for the table's lifetime
func (t *Table) Seq(id ID) Seq {
	seqs := *t.seqs.Load()
	if int(id) >= len(seqs) {
		return nil
	}
	return seqs[id]
}

// Len returns the number of interned paths, including the empty path.
// Lock-free.
func (t *Table) Len() int {
	return len(*t.seqs.Load())
}

// Origin returns the origin AS of the path with the given id, and false
// for the empty path or an unknown id.
func (t *Table) Origin(id ID) (uint32, bool) {
	return t.Seq(id).Origin()
}
