package aspath

import (
	"encoding/binary"
	"sync"
)

// ID is an interned path identifier. ID 0 is reserved for the empty path
// (a prefix not observed at a vantage point).
type ID uint32

// Empty is the ID of the empty path.
const Empty ID = 0

// Table interns AS-path sequences, mapping each distinct sequence to a
// dense ID. It is the backbone of the snapshot model: per-prefix per-VP
// routes are stored as IDs, and atom grouping hashes ID vectors instead
// of path contents.
//
// A Table is safe for concurrent use.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]ID
	seqs []Seq // index = ID; seqs[0] is nil (the empty path)
}

// NewTable returns an empty table containing only the empty path.
func NewTable() *Table {
	return &Table{
		ids:  make(map[string]ID, 1024),
		seqs: make([]Seq, 1, 1024),
	}
}

// key encodes a sequence into a compact string key (big-endian uint32s).
func key(s Seq) string {
	buf := make([]byte, 4*len(s))
	for i, a := range s {
		binary.BigEndian.PutUint32(buf[4*i:], a)
	}
	return string(buf)
}

// Intern returns the ID for seq, allocating one if it is new. The empty
// sequence always maps to Empty. The table stores its own copy; callers
// may reuse seq's backing array.
func (t *Table) Intern(seq Seq) ID {
	if len(seq) == 0 {
		return Empty
	}
	k := key(seq)
	t.mu.RLock()
	id, ok := t.ids[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.ids[k]; ok {
		return id
	}
	id = ID(len(t.seqs))
	t.seqs = append(t.seqs, seq.Clone())
	t.ids[k] = id
	return id
}

// Lookup returns the ID for seq without interning, and false if the
// sequence has not been interned.
func (t *Table) Lookup(seq Seq) (ID, bool) {
	if len(seq) == 0 {
		return Empty, true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[key(seq)]
	return id, ok
}

// Seq returns the sequence for id. The returned slice is owned by the
// table and must not be mutated. Seq(Empty) returns nil.
func (t *Table) Seq(id ID) Seq {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.seqs) {
		return nil
	}
	return t.seqs[id]
}

// Len returns the number of interned paths, including the empty path.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.seqs)
}

// Origin returns the origin AS of the path with the given id, and false
// for the empty path or an unknown id.
func (t *Table) Origin(id ID) (uint32, bool) {
	return t.Seq(id).Origin()
}
