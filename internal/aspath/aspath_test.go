package aspath

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func seq(asns ...uint32) Seq { return Seq(asns) }

func TestSegmentTypeString(t *testing.T) {
	cases := map[SegmentType]string{
		SegSet:            "AS_SET",
		SegSequence:       "AS_SEQUENCE",
		SegConfedSequence: "AS_CONFED_SEQUENCE",
		SegConfedSet:      "AS_CONFED_SET",
		SegmentType(9):    "SegmentType(9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("SegmentType(%d).String() = %q, want %q", st, got, want)
		}
	}
	if SegmentType(0).Valid() || SegmentType(5).Valid() {
		t.Error("invalid types reported valid")
	}
	if !SegSequence.Valid() || !SegSet.Valid() {
		t.Error("valid types reported invalid")
	}
}

func TestPathSequence(t *testing.T) {
	tests := []struct {
		name    string
		path    Path
		want    Seq
		wantErr error
	}{
		{
			name: "pure sequence",
			path: Path{Segments: []Segment{{Type: SegSequence, ASNs: []uint32{1, 2, 3}}}},
			want: seq(1, 2, 3),
		},
		{
			name: "singleton set expanded",
			path: Path{Segments: []Segment{
				{Type: SegSequence, ASNs: []uint32{1, 2}},
				{Type: SegSet, ASNs: []uint32{3}},
			}},
			want: seq(1, 2, 3),
		},
		{
			name: "multi set rejected",
			path: Path{Segments: []Segment{
				{Type: SegSequence, ASNs: []uint32{1, 2}},
				{Type: SegSet, ASNs: []uint32{3, 4, 5}},
			}},
			wantErr: ErrMultiASSet,
		},
		{
			name:    "confed rejected",
			path:    Path{Segments: []Segment{{Type: SegConfedSequence, ASNs: []uint32{1}}}},
			wantErr: ErrConfedSegment,
		},
		{
			name:    "empty segment rejected",
			path:    Path{Segments: []Segment{{Type: SegSequence}}},
			wantErr: ErrEmptySegment,
		},
		{
			name:    "empty set rejected",
			path:    Path{Segments: []Segment{{Type: SegSet}}},
			wantErr: ErrEmptySegment,
		},
		{
			name: "empty path ok",
			path: Path{},
			want: seq(),
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.path.Sequence()
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected err: %v", err)
			}
			if !got.Equal(tc.want) {
				t.Errorf("Sequence() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPathLen(t *testing.T) {
	p := Path{Segments: []Segment{
		{Type: SegSequence, ASNs: []uint32{1, 2, 3}},
		{Type: SegSet, ASNs: []uint32{4, 5}},
		{Type: SegSequence, ASNs: []uint32{6}},
	}}
	if got := p.Len(); got != 5 {
		t.Errorf("Len() = %d, want 5 (set counts once)", got)
	}
	if got := (Path{}).Len(); got != 0 {
		t.Errorf("empty Len() = %d", got)
	}
}

func TestPathOrigin(t *testing.T) {
	p := Path{Segments: []Segment{{Type: SegSequence, ASNs: []uint32{1, 2, 3}}}}
	if o, ok := p.Origin(); !ok || o != 3 {
		t.Errorf("Origin() = %d,%v want 3,true", o, ok)
	}
	multi := Path{Segments: []Segment{{Type: SegSet, ASNs: []uint32{3, 4}}}}
	if _, ok := multi.Origin(); ok {
		t.Error("multi-set origin should be ambiguous")
	}
	if _, ok := (Path{}).Origin(); ok {
		t.Error("empty path has no origin")
	}
	single := Path{Segments: []Segment{
		{Type: SegSequence, ASNs: []uint32{1}},
		{Type: SegSet, ASNs: []uint32{9}},
	}}
	if o, ok := single.Origin(); !ok || o != 9 {
		t.Errorf("singleton-set origin = %d,%v want 9,true", o, ok)
	}
}

func TestPathString(t *testing.T) {
	p := Path{Segments: []Segment{
		{Type: SegSequence, ASNs: []uint32{1, 2}},
		{Type: SegSet, ASNs: []uint32{3, 4, 5}},
	}}
	if got, want := p.String(), "1 2 [3 4 5]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHasMultiASSet(t *testing.T) {
	if (Path{Segments: []Segment{{Type: SegSet, ASNs: []uint32{1}}}}).HasMultiASSet() {
		t.Error("singleton set flagged")
	}
	if !(Path{Segments: []Segment{{Type: SegSet, ASNs: []uint32{1, 2}}}}).HasMultiASSet() {
		t.Error("multi set not flagged")
	}
}

func TestFromSeqRoundTrip(t *testing.T) {
	s := seq(10, 20, 30)
	p := FromSeq(s)
	got, err := p.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip = %v, want %v", got, s)
	}
	if len(FromSeq(nil).Segments) != 0 {
		t.Error("FromSeq(nil) should be empty path")
	}
}

func TestSeqBasics(t *testing.T) {
	s := seq(7018, 3356, 65001)
	if o, ok := s.Origin(); !ok || o != 65001 {
		t.Errorf("Origin = %d,%v", o, ok)
	}
	if f, ok := s.First(); !ok || f != 7018 {
		t.Errorf("First = %d,%v", f, ok)
	}
	if _, ok := seq().Origin(); ok {
		t.Error("empty origin")
	}
	if _, ok := seq().First(); ok {
		t.Error("empty first")
	}
	if !s.Equal(seq(7018, 3356, 65001)) || s.Equal(seq(7018, 3356)) || s.Equal(seq(7018, 3356, 65002)) {
		t.Error("Equal broken")
	}
	c := s.Clone()
	c[0] = 1
	if s[0] != 7018 {
		t.Error("Clone aliases")
	}
	if Seq(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
	if got := s.String(); got != "7018 3356 65001" {
		t.Errorf("String = %q", got)
	}
}

func TestParseSeq(t *testing.T) {
	s, err := ParseSeq(" 701  1239 3356 ")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(seq(701, 1239, 3356)) {
		t.Errorf("got %v", s)
	}
	if _, err := ParseSeq("1 x 3"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseSeq("99999999999"); err == nil {
		t.Error("expected overflow error")
	}
	empty, err := ParseSeq("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty parse = %v, %v", empty, err)
	}
}

func TestPrepending(t *testing.T) {
	plain := seq(1, 2, 3)
	if plain.HasPrepending() {
		t.Error("plain flagged as prepended")
	}
	pre := seq(1, 2, 2, 2, 3)
	if !pre.HasPrepending() {
		t.Error("prepended not flagged")
	}
	if got := pre.StripPrepending(); !got.Equal(plain) {
		t.Errorf("Strip = %v", got)
	}
	// No-op strip returns the same backing array.
	if &plain[0] != &plain.StripPrepending()[0] {
		t.Error("no-op strip allocated")
	}
	if got := pre.UniqueLen(); got != 3 {
		t.Errorf("UniqueLen = %d", got)
	}
	if got := seq().UniqueLen(); got != 0 {
		t.Errorf("empty UniqueLen = %d", got)
	}
	if got := seq(5).UniqueLen(); got != 1 {
		t.Errorf("single UniqueLen = %d", got)
	}
}

func TestHasLoop(t *testing.T) {
	if seq(1, 2, 2, 3).HasLoop() {
		t.Error("prepending counted as loop")
	}
	if !seq(1, 2, 3, 2).HasLoop() {
		t.Error("loop not detected")
	}
	if seq().HasLoop() || seq(1).HasLoop() {
		t.Error("trivial loop")
	}
}

func TestContainsASN(t *testing.T) {
	s := seq(1, 2, 3)
	if !s.ContainsASN(2) || s.ContainsASN(9) {
		t.Error("ContainsASN broken")
	}
}

func TestPrivateReservedASN(t *testing.T) {
	for _, asn := range []uint32{64512, 65000, 65534, 4200000000, 4294967294} {
		if !IsPrivateASN(asn) {
			t.Errorf("ASN %d should be private", asn)
		}
	}
	for _, asn := range []uint32{1, 64511, 65535, 23456, 4199999999, 4294967295} {
		if IsPrivateASN(asn) {
			t.Errorf("ASN %d should not be private", asn)
		}
	}
	for _, asn := range []uint32{0, 65535, 4294967295} {
		if !IsReservedASN(asn) {
			t.Errorf("ASN %d should be reserved", asn)
		}
	}
	if IsReservedASN(23456) {
		t.Error("AS_TRANS is not reserved here")
	}
	if !seq(1, 65000, 3).HasPrivateASN() || seq(1, 2, 3).HasPrivateASN() {
		t.Error("HasPrivateASN broken")
	}
}

// Split-point semantics. Origin is the LAST element of a Seq; the tests
// below annotate paths in origin-first order in comments for clarity.
func TestSplitRaw(t *testing.T) {
	tests := []struct {
		name string
		a, b Seq
		want int
	}{
		// (o,P1) vs (o,P2): differ at position 2.
		{"divergence at 2", seq(10, 1), seq(20, 1), 2},
		// Different origins: split at 1.
		{"different origin", seq(10, 1), seq(10, 2), 1},
		// Identical: NoSplit.
		{"identical", seq(10, 1), seq(10, 1), NoSplit},
		// (o) vs (o,P1): suffix; divergence at position 2.
		{"proper suffix", seq(1), seq(10, 1), 2},
		{"proper suffix reversed", seq(10, 1), seq(1), 2},
		// (o,o,P1) vs (o,P1): raw comparison sees divergence at 2.
		{"prepend difference", seq(10, 1, 1), seq(10, 1), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SplitRaw(tc.a, tc.b); got != tc.want {
				t.Errorf("SplitRaw(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			if got := SplitRaw(tc.b, tc.a); got != tc.want {
				t.Errorf("SplitRaw not symmetric: (%v,%v) = %d, want %d", tc.b, tc.a, got, tc.want)
			}
		})
	}
}

func TestSplitUnique(t *testing.T) {
	tests := []struct {
		name string
		a, b Seq
		want int
	}{
		// Paper example: prepend-count difference splits at the origin.
		// origin-first: (o,o,P1) vs (o,P1) → split 1.
		{"origin prepend", seq(10, 1, 1), seq(10, 1), 1},
		// (o,P1) vs (o,P2) → split 2.
		{"divergence at 2", seq(10, 1), seq(20, 1), 2},
		// Different origins → 1.
		{"different origin", seq(10, 1), seq(10, 2), 1},
		// Identical → NoSplit.
		{"identical", seq(10, 1), seq(10, 1), NoSplit},
		// Identical with prepending → NoSplit.
		{"identical prepended", seq(10, 1, 1), seq(10, 1, 1), NoSplit},
		// Mid-path prepend difference: (o,T,T,X) vs (o,T,X):
		// origin-first shared (o); divergence T vs T-run → split at T = 2.
		{"midpath prepend", seq(30, 2, 2, 1), seq(30, 2, 1), 2},
		// (o,T,X) vs (o,T,Y): split 3.
		{"divergence at 3", seq(30, 2, 1), seq(40, 2, 1), 3},
		// Prepended shared region doesn't inflate: (o,o,o,T,X) vs (o,o,o,T,Y):
		// unique shared = (o,T) = 2 → split 3.
		{"shared prepending collapsed", seq(30, 2, 1, 1, 1), seq(40, 2, 1, 1, 1), 3},
		// (o) vs (o,o): pure prepend suffix → split 1.
		{"pure prepend suffix", seq(1), seq(1, 1), 1},
		// (o) vs (o,P1): suffix with new AS → split 2.
		{"suffix new AS", seq(1), seq(10, 1), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SplitUnique(tc.a, tc.b); got != tc.want {
				t.Errorf("SplitUnique(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			if got := SplitUnique(tc.b, tc.a); got != tc.want {
				t.Errorf("SplitUnique not symmetric: (%v,%v) = %d, want %d", tc.b, tc.a, got, tc.want)
			}
		})
	}
}

// randomSeq builds a small random path whose values come from a tiny
// alphabet so collisions and shared suffixes are common.
func randomSeq(r *rand.Rand) Seq {
	n := r.Intn(6)
	s := make(Seq, n)
	for i := range s {
		s[i] = uint32(1 + r.Intn(4))
	}
	return s
}

func TestSplitPropertyBased(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomSeq(r), randomSeq(r)
		if len(a) == 0 || len(b) == 0 {
			continue // empty paths handled by callers
		}
		ru, rr := SplitUnique(a, b), SplitRaw(a, b)
		// Symmetry.
		if SplitUnique(b, a) != ru || SplitRaw(b, a) != rr {
			t.Fatalf("asymmetric split for %v / %v", a, b)
		}
		// Identical iff NoSplit.
		if a.Equal(b) != (ru == NoSplit) || a.Equal(b) != (rr == NoSplit) {
			t.Fatalf("NoSplit mismatch for %v / %v", a, b)
		}
		if ru == NoSplit {
			continue
		}
		// Unique split never exceeds raw split, and both are >= 1.
		if ru < 1 || rr < 1 || ru > rr {
			t.Fatalf("split bounds violated: unique=%d raw=%d for %v / %v", ru, rr, a, b)
		}
		// Unique split bounded by unique length of either path +1.
		max := a.UniqueLen()
		if bl := b.UniqueLen(); bl > max {
			max = bl
		}
		if ru > max+1 {
			t.Fatalf("unique split %d beyond unique len %d: %v / %v", ru, max, a, b)
		}
		// Stripping prepending from both must not change SplitRaw-on-stripped
		// vs SplitUnique when neither path has prepending.
		if !a.HasPrepending() && !b.HasPrepending() {
			if ru != rr {
				t.Fatalf("no prepending but unique %d != raw %d: %v / %v", ru, rr, a, b)
			}
		}
	}
}

func TestStripPrependingQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		s := make(Seq, len(vals))
		for i, v := range vals {
			s[i] = uint32(v % 5)
		}
		st := s.StripPrepending()
		// No consecutive duplicates remain.
		for i := 1; i < len(st); i++ {
			if st[i] == st[i-1] {
				return false
			}
		}
		// Idempotent.
		if !st.StripPrepending().Equal(st) {
			return false
		}
		// Length matches UniqueLen.
		return len(st) == s.UniqueLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableIntern(t *testing.T) {
	tbl := NewTable()
	if tbl.Len() != 1 {
		t.Fatalf("new table Len = %d, want 1 (empty path)", tbl.Len())
	}
	if id := tbl.Intern(nil); id != Empty {
		t.Errorf("Intern(nil) = %d", id)
	}
	a := tbl.Intern(seq(1, 2, 3))
	b := tbl.Intern(seq(1, 2, 3))
	c := tbl.Intern(seq(1, 2, 4))
	if a != b {
		t.Error("same seq different IDs")
	}
	if a == c {
		t.Error("different seqs same ID")
	}
	if got := tbl.Seq(a); !got.Equal(seq(1, 2, 3)) {
		t.Errorf("Seq(a) = %v", got)
	}
	if got := tbl.Seq(Empty); got != nil {
		t.Errorf("Seq(Empty) = %v", got)
	}
	if got := tbl.Seq(ID(999)); got != nil {
		t.Errorf("Seq(unknown) = %v", got)
	}
	if id, ok := tbl.Lookup(seq(1, 2, 3)); !ok || id != a {
		t.Errorf("Lookup = %d,%v", id, ok)
	}
	if _, ok := tbl.Lookup(seq(9, 9)); ok {
		t.Error("Lookup of unknown succeeded")
	}
	if id, ok := tbl.Lookup(nil); !ok || id != Empty {
		t.Errorf("Lookup(nil) = %d,%v", id, ok)
	}
	if o, ok := tbl.Origin(a); !ok || o != 3 {
		t.Errorf("Origin(a) = %d,%v", o, ok)
	}
	if _, ok := tbl.Origin(Empty); ok {
		t.Error("Origin(Empty) should fail")
	}
}

func TestTableInternDoesNotAlias(t *testing.T) {
	tbl := NewTable()
	s := seq(5, 6, 7)
	id := tbl.Intern(s)
	s[0] = 99
	if got := tbl.Seq(id); !got.Equal(seq(5, 6, 7)) {
		t.Errorf("table aliased caller slice: %v", got)
	}
}

func TestTableConcurrent(t *testing.T) {
	tbl := NewTable()
	done := make(chan map[Seq8]ID)
	const workers = 8
	for w := 0; w < workers; w++ {
		go func(w int) {
			r := rand.New(rand.NewSource(int64(w)))
			local := make(map[Seq8]ID)
			for i := 0; i < 500; i++ {
				s := randomSeq(r)
				id := tbl.Intern(s)
				local[toSeq8(s)] = id
			}
			done <- local
		}(w)
	}
	merged := make(map[Seq8]ID)
	for w := 0; w < workers; w++ {
		for k, v := range <-done {
			if prev, ok := merged[k]; ok && prev != v {
				t.Fatalf("seq %v interned to both %d and %d", k, prev, v)
			}
			merged[k] = v
		}
	}
	// Every recorded ID must round-trip.
	for k, id := range merged {
		if got := toSeq8(tbl.Seq(id)); got != k {
			t.Fatalf("round trip: id %d = %v, want %v", id, got, k)
		}
	}
}

// TestTableConcurrentReaders interleaves interning with lock-free
// Seq/Len/Origin readers: every ID below a snapshot of Len must resolve
// to a non-nil sequence whose re-intern returns the same ID (dense,
// stable, published-before-visible).
func TestTableConcurrentReaders(t *testing.T) {
	tbl := NewTable()
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 2000; i++ {
				tbl.Intern(randomSeq(r))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := tbl.Len()
				for id := 1; id < n; id++ {
					s := tbl.Seq(ID(id))
					if s == nil {
						t.Errorf("Seq(%d) nil below Len %d", id, n)
						return
					}
					if got := tbl.Intern(s); got != ID(id) {
						t.Errorf("re-intern of id %d returned %d", id, got)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// Seq8 is a fixed-size comparable stand-in for short sequences in tests.
type Seq8 struct {
	n int
	v [8]uint32
}

func toSeq8(s Seq) Seq8 {
	var k Seq8
	k.n = len(s)
	copy(k.v[:], s)
	return k
}

func TestSeqStringAndReflectEqual(t *testing.T) {
	// reflect.DeepEqual compatibility sanity (used by some callers).
	if !reflect.DeepEqual(seq(1, 2), seq(1, 2)) {
		t.Error("DeepEqual broken for Seq")
	}
}

// TestInternHitPathAllocs is the PR's allocation-regression guard for
// the interning fast path: re-interning an already-known sequence (the
// steady state of snapshot assembly) must not allocate — the key is
// encoded into a stack buffer and looked up via the compiler's
// non-escaping map[string(buf)] form.
func TestInternHitPathAllocs(t *testing.T) {
	tbl := NewTable()
	seqs := []Seq{
		{3356, 1299, 65001},
		{3356, 1299, 1299, 1299, 65002},
		{64512, 3356, 174, 2914, 1239, 701, 7018, 65003},
	}
	for _, s := range seqs {
		tbl.Intern(s)
	}
	for _, s := range seqs {
		s := s
		if got := testing.AllocsPerRun(1000, func() {
			if tbl.Intern(s) == Empty {
				t.Fatal("unexpected Empty")
			}
		}); got != 0 {
			t.Errorf("Intern hit path allocs/op = %v for %v, want 0", got, s)
		}
	}
}

// TestLookupAllocs holds Lookup to the same zero-allocation bar.
func TestLookupAllocs(t *testing.T) {
	tbl := NewTable()
	s := Seq{3356, 1299, 65001}
	tbl.Intern(s)
	if got := testing.AllocsPerRun(1000, func() {
		if _, ok := tbl.Lookup(s); !ok {
			t.Fatal("lookup missed")
		}
	}); got != 0 {
		t.Errorf("Lookup allocs/op = %v, want 0", got)
	}
	missing := Seq{9999, 8888}
	if got := testing.AllocsPerRun(1000, func() {
		if _, ok := tbl.Lookup(missing); ok {
			t.Fatal("lookup hit")
		}
	}); got != 0 {
		t.Errorf("Lookup(miss) allocs/op = %v, want 0", got)
	}
}

// BenchmarkInternHit measures the warmed interning fast path.
func BenchmarkInternHit(b *testing.B) {
	tbl := NewTable()
	s := Seq{3356, 1299, 2914, 65001}
	tbl.Intern(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Intern(s) == Empty {
			b.Fatal("unexpected Empty")
		}
	}
}
