// Package aspath models BGP AS paths: the wire-level segment structure
// (AS_SEQUENCE / AS_SET), the flattened analysis-level sequence form, and
// the prepending-handling operations the policy-atom methodology needs.
//
// Two representations coexist deliberately:
//
//   - Path: a faithful image of the AS_PATH attribute, a list of Segments.
//     This is what the BGP and MRT codecs produce and consume.
//   - Seq ([]uint32): a pure AS sequence ordered from the vantage point
//     toward the origin (index 0 is the AS nearest the VP, the last element
//     is the origin). All atom analyses operate on Seq after sanitization.
//
// Sanitization (§2.4.4 of the paper) collapses a Path to a Seq: singleton
// AS_SETs are expanded in place, and paths carrying a multi-element AS_SET
// are rejected (the aggregation destroyed the hop-by-hop information).
package aspath

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// SegmentType identifies the kind of an AS_PATH segment (RFC 4271 §4.3).
type SegmentType uint8

// AS_PATH segment types. Confederation segments (RFC 5065) are recognized
// by the codec but rejected during sanitization: confederation members are
// never supposed to leak to collectors, and the paper's pipeline treats
// them as artifacts.
const (
	SegSet            SegmentType = 1
	SegSequence       SegmentType = 2
	SegConfedSequence SegmentType = 3
	SegConfedSet      SegmentType = 4
)

// String returns the RFC name of the segment type.
func (t SegmentType) String() string {
	switch t {
	case SegSet:
		return "AS_SET"
	case SegSequence:
		return "AS_SEQUENCE"
	case SegConfedSequence:
		return "AS_CONFED_SEQUENCE"
	case SegConfedSet:
		return "AS_CONFED_SET"
	default:
		return fmt.Sprintf("SegmentType(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the four RFC-defined segment types.
func (t SegmentType) Valid() bool { return t >= SegSet && t <= SegConfedSet }

// Segment is one AS_PATH segment: an ordered sequence or an unordered set
// of AS numbers.
type Segment struct {
	Type SegmentType
	ASNs []uint32
}

// Path is a wire-faithful AS path: the ordered list of segments from the
// AS_PATH attribute. The first ASN of the first sequence segment is the
// neighbor of the vantage point; the last ASN is (normally) the origin.
type Path struct {
	Segments []Segment
}

// Errors returned when collapsing a Path to a Seq.
var (
	// ErrMultiASSet marks a path whose AS_SET holds more than one AS: the
	// aggregating router erased the downstream path, so the path cannot
	// participate in atom computation (§2.4.4).
	ErrMultiASSet = errors.New("aspath: AS_SET with more than one AS")
	// ErrConfedSegment marks a path leaking confederation segments.
	ErrConfedSegment = errors.New("aspath: confederation segment in path")
	// ErrEmptySegment marks a structurally invalid zero-length segment.
	ErrEmptySegment = errors.New("aspath: empty segment")
)

// Sequence flattens the path into a pure AS sequence, expanding singleton
// AS_SETs. It returns ErrMultiASSet if any AS_SET holds more than one AS,
// and ErrConfedSegment for confederation segments, mirroring the paper's
// sanitization rule ("We expand the AS-SET only if it contains only one
// element, and remove other cases").
func (p Path) Sequence() (Seq, error) {
	n := 0
	for _, s := range p.Segments {
		n += len(s.ASNs)
	}
	return p.AppendSequence(make(Seq, 0, n))
}

// AppendSequence is Sequence without the allocation: the flattened
// sequence is appended onto buf (pass buf[:0] to reuse a scratch
// buffer) and the extended slice returned. Decode hot paths use it to
// flatten every element's path into one reused buffer before interning.
func (p Path) AppendSequence(buf Seq) (Seq, error) {
	out := buf
	for _, s := range p.Segments {
		switch s.Type {
		case SegSequence:
			if len(s.ASNs) == 0 {
				return nil, ErrEmptySegment
			}
			out = append(out, s.ASNs...)
		case SegSet:
			switch len(s.ASNs) {
			case 0:
				return nil, ErrEmptySegment
			case 1:
				out = append(out, s.ASNs[0])
			default:
				return nil, ErrMultiASSet
			}
		case SegConfedSequence, SegConfedSet:
			return nil, ErrConfedSegment
		default:
			return nil, fmt.Errorf("aspath: invalid segment type %d", s.Type)
		}
	}
	return out, nil
}

// HasMultiASSet reports whether any segment is an AS_SET with more than one
// member.
func (p Path) HasMultiASSet() bool {
	for _, s := range p.Segments {
		if s.Type == SegSet && len(s.ASNs) > 1 {
			return true
		}
	}
	return false
}

// Len returns the AS_PATH length as the BGP decision process counts it:
// each sequence member counts 1, each AS_SET segment counts 1 in total
// (RFC 4271 §9.1.2.2).
func (p Path) Len() int {
	n := 0
	for _, s := range p.Segments {
		switch s.Type {
		case SegSequence, SegConfedSequence:
			n += len(s.ASNs)
		case SegSet, SegConfedSet:
			n++
		}
	}
	return n
}

// Origin returns the rightmost AS of the path — the origin AS — and false
// if the path is empty or ends in a multi-member AS_SET (ambiguous origin).
func (p Path) Origin() (uint32, bool) {
	if len(p.Segments) == 0 {
		return 0, false
	}
	last := p.Segments[len(p.Segments)-1]
	if len(last.ASNs) == 0 {
		return 0, false
	}
	if last.Type == SegSet && len(last.ASNs) > 1 {
		return 0, false
	}
	return last.ASNs[len(last.ASNs)-1], true
}

// String renders the path in the conventional "1 2 [3 4]" notation.
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		set := s.Type == SegSet || s.Type == SegConfedSet
		if set {
			b.WriteByte('[')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(a), 10))
		}
		if set {
			b.WriteByte(']')
		}
	}
	return b.String()
}

// FromSeq wraps a pure sequence into a single-segment Path.
func FromSeq(seq Seq) Path {
	if len(seq) == 0 {
		return Path{}
	}
	return Path{Segments: []Segment{{Type: SegSequence, ASNs: append([]uint32(nil), seq...)}}}
}

// Seq is an analysis-level AS path: a pure sequence of AS numbers ordered
// from the vantage point (index 0) to the origin (last index). A nil or
// empty Seq is the paper's "empty path" — the prefix was not observed at
// that vantage point.
type Seq []uint32

// Origin returns the origin AS (the last element) and false for an empty
// sequence.
func (s Seq) Origin() (uint32, bool) {
	if len(s) == 0 {
		return 0, false
	}
	return s[len(s)-1], true
}

// First returns the AS adjacent to the vantage point and false for an
// empty sequence.
func (s Seq) First() (uint32, bool) {
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// Equal reports element-wise equality.
func (s Seq) Equal(o Seq) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	return append(Seq(nil), s...)
}

// String renders "1 2 3".
func (s Seq) String() string {
	var b strings.Builder
	for i, a := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	return b.String()
}

// ParseSeq parses a space-separated AS sequence such as "701 1239 3356".
func ParseSeq(s string) (Seq, error) {
	fields := strings.Fields(s)
	out := make(Seq, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("aspath: parse %q: %w", f, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// HasPrepending reports whether the sequence contains at least one pair of
// consecutive duplicate ASes (the signature of AS-path prepending).
func (s Seq) HasPrepending() bool {
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return true
		}
	}
	return false
}

// StripPrepending returns the sequence with consecutive duplicates
// collapsed to a single occurrence. If nothing is prepended the receiver
// is returned unchanged (no allocation).
func (s Seq) StripPrepending() Seq {
	if !s.HasPrepending() {
		return s
	}
	out := make(Seq, 0, len(s))
	for i, a := range s {
		if i == 0 || a != s[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// UniqueLen returns the number of ASes in the sequence after collapsing
// consecutive duplicates — the hop count used by formation-distance
// method (iii).
func (s Seq) UniqueLen() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

// HasLoop reports whether any AS appears in two non-adjacent runs — a
// routing loop (prepending runs do not count as loops). Quadratic in
// the number of runs, which beats a hash set at real AS-path lengths
// (a handful of hops) and keeps the sanitize hot loop allocation-free.
func (s Seq) HasLoop() bool {
	for i := range s {
		if i > 0 && s[i] == s[i-1] {
			continue // not the head of a run
		}
		for j := 0; j < i; j++ {
			if j > 0 && s[j] == s[j-1] {
				continue
			}
			if s[j] == s[i] {
				return true // two runs headed by the same AS
			}
		}
	}
	return false
}

// ContainsASN reports whether asn appears anywhere in the sequence.
func (s Seq) ContainsASN(asn uint32) bool {
	for _, a := range s {
		if a == asn {
			return true
		}
	}
	return false
}

// Private ASN ranges (RFC 6996).
const (
	privateASN16Lo = 64512
	privateASN16Hi = 65534
	privateASN32Lo = 4200000000
	privateASN32Hi = 4294967294
)

// IsPrivateASN reports whether asn falls in an RFC 6996 private range.
func IsPrivateASN(asn uint32) bool {
	return (asn >= privateASN16Lo && asn <= privateASN16Hi) ||
		(asn >= privateASN32Lo && asn <= privateASN32Hi)
}

// IsReservedASN reports whether asn is reserved (0, AS_TRANS handling
// aside, 23456 itself is valid on the wire; 65535 and 4294967295 are
// reserved, RFC 7300).
func IsReservedASN(asn uint32) bool {
	return asn == 0 || asn == 65535 || asn == 4294967295
}

// HasPrivateASN reports whether the sequence contains a private ASN —
// the signature of the misconfigured peer the paper removed (AS65000
// appearing in the paths of numerous prefixes, §A8.3.2).
func (s Seq) HasPrivateASN() bool {
	for _, a := range s {
		if IsPrivateASN(a) {
			return true
		}
	}
	return false
}

// NoSplit is the sentinel split point for a peer at which two paths are
// identical: that peer cannot distinguish the two atoms, so it never wins
// the min over peers.
const NoSplit = int(^uint(0) >> 1) // max int

// SplitRaw returns the 1-based position, counting from the origin, of the
// first hop at which raw sequences a and b differ. If one path is a proper
// origin-suffix of the other, the divergence is at the first position the
// shorter path lacks. Identical paths return NoSplit. Empty paths are the
// caller's concern (the paper defines split=1 when either path is empty
// at a peer; callers check that before comparing).
//
// This is the split point of formation-distance methods (i) and (ii),
// where prepending has already been stripped (or deliberately kept) by
// the caller.
func SplitRaw(a, b Seq) int {
	i, j := len(a)-1, len(b)-1
	pos := 1
	for i >= 0 && j >= 0 {
		if a[i] != b[j] {
			return pos
		}
		i--
		j--
		pos++
	}
	if i >= 0 || j >= 0 {
		return pos // one path ended; divergence at the next position
	}
	return NoSplit
}

// SplitUnique returns the split point between raw sequences a and b for
// formation-distance method (iii): the divergence is located on the *raw*
// paths (so a difference only in prepending count still splits), but the
// position is counted in *unique* ASes so that prepending runs do not
// inflate the distance.
//
// Concretely: find the first raw mismatch from the origin end; the split
// point is the number of distinct AS runs in the common prefix, plus one —
// unless the divergent hop merely extends the previous run in either path
// (a prepending-count difference), in which case the split lands on that
// run itself. Example, origin-first notation: (o,o,P1) vs (o,P1) split at
// 1 (a prepend split at the origin); (o,P1) vs (o,P2) split at 2.
func SplitUnique(a, b Seq) int {
	i, j := len(a)-1, len(b)-1
	sharedUnique := 0
	var last uint32
	haveLast := false
	for i >= 0 && j >= 0 && a[i] == b[j] {
		if !haveLast || a[i] != last {
			sharedUnique++
			last = a[i]
			haveLast = true
		}
		i--
		j--
	}
	if i < 0 && j < 0 {
		return NoSplit // identical
	}
	// The divergent hop extends the previous run if it equals the last
	// shared AS — that is a prepending-count difference, and the split is
	// attributed to the run's AS itself.
	if haveLast {
		if (i >= 0 && a[i] == last) || (j >= 0 && b[j] == last) {
			return sharedUnique
		}
	}
	return sharedUnique + 1
}
