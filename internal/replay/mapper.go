// Mapper factors the element→cell resolution out of Run so other
// drivers of a resident AtomIndex — atomd's live ingest sessions — map
// stream elements exactly the way batch replay does. Any divergence
// here would break the daemon-vs-batch differential, so there is one
// copy of the logic and both paths share it.
package replay

import (
	"net/netip"

	"repro/internal/aspath"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/prefixset"
)

// SkipReason classifies why an element had no matrix cell to land in.
// SkipNone means the element mapped.
type SkipReason uint8

const (
	SkipNone     SkipReason = iota
	SkipUnusable            // announce whose path would not flatten
	SkipType                // state (or other non-route) element
	SkipPrefix              // prefix not in the snapshot's admitted set
	SkipVP                  // peer (collector, ASN) is not a vantage point
)

// Mapper resolves stream elements onto (prefix row, VP column, path ID)
// cells of one snapshot's matrix. The coordinate maps are built once
// and only read afterwards, so a single Mapper may serve concurrent
// streams (atomd runs one decode goroutine per ingest session against
// a shared Mapper).
type Mapper struct {
	prefixRow map[netip.Prefix]int
	vpCol     map[core.VP]int
}

// NewMapper indexes the snapshot's coordinate space. Prefixes are keyed
// canonically, as the sanitize pipeline stores them.
func NewMapper(snap *core.Snapshot) *Mapper {
	m := &Mapper{
		prefixRow: make(map[netip.Prefix]int, len(snap.Prefixes)),
		vpCol:     make(map[core.VP]int, len(snap.VPs)),
	}
	for i, p := range snap.Prefixes {
		m.prefixRow[prefixset.Canonical(p)] = i
	}
	for i, vp := range snap.VPs {
		m.vpCol[vp] = i
	}
	return m
}

// PrefixRow returns the matrix row of a prefix (canonicalized first),
// or ok=false when the prefix is outside the admitted set.
func (m *Mapper) PrefixRow(p netip.Prefix) (int, bool) {
	row, ok := m.prefixRow[prefixset.Canonical(p)]
	return row, ok
}

// VPCol returns the matrix column of a vantage point, or ok=false when
// the peer is not one.
func (m *Mapper) VPCol(vp core.VP) (int, bool) {
	col, ok := m.vpCol[vp]
	return col, ok
}

// Map resolves one element to its cell. A SkipNone reason means (p, v,
// id) are valid: announces and RIB entries carry their interned path,
// withdraws the empty path. Any other reason leaves the coordinates
// meaningless.
func (m *Mapper) Map(e *bgpstream.Elem) (p, v int, id aspath.ID, reason SkipReason) {
	switch e.Type {
	case bgpstream.ElemAnnounce, bgpstream.ElemRIB:
		if e.PathUnusable {
			return 0, 0, 0, SkipUnusable
		}
		id = e.InternedPath
	case bgpstream.ElemWithdraw:
		id = aspath.Empty
	default:
		return 0, 0, 0, SkipType
	}
	p, ok := m.prefixRow[prefixset.Canonical(e.Prefix)]
	if !ok {
		return 0, 0, 0, SkipPrefix
	}
	v, ok = m.vpCol[core.VP{Collector: e.Collector, ASN: e.PeerASN}]
	if !ok {
		return 0, 0, 0, SkipVP
	}
	return p, v, id, SkipNone
}
