package replay

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/faultgen"
	"repro/internal/faultgen/harness"
	"repro/internal/obs"
	"repro/internal/sanitize"
)

// marshalAtoms renders an AtomSet canonically for byte comparison.
// Vectors are resolved to path *contents*: raw intern IDs are only
// stable within one table (concurrent interning of novel paths assigns
// IDs in interleaving order), so cross-run comparison must look through
// the IDs at the sequences they name.
func marshalAtoms(as *core.AtomSet) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "atoms=%d\nbyprefix=%v\n", len(as.Atoms), as.ByPrefix)
	for i := range as.Atoms {
		a := &as.Atoms[i]
		fmt.Fprintf(&b, "atom %d prefixes=%v origin=%d moas=%v vector=[", a.ID, a.Prefixes, a.Origin, a.MOASConflict)
		for _, id := range a.Vector {
			fmt.Fprintf(&b, " %v", as.Snap.Paths.Seq(id))
		}
		fmt.Fprint(&b, " ]\n")
	}
	return b.Bytes()
}

// sortedSources wraps archives as byte-backed sources in sorted name
// order, so every run sees the same source order.
func sortedSources(archives map[string][]byte) []bgpstream.Source {
	names := make([]string, 0, len(archives))
	for name := range archives {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]bgpstream.Source, 0, len(names))
	for _, name := range names {
		out = append(out, bgpstream.BytesSource(name, archives[name], bgp.Options{}))
	}
	return out
}

// buildIndex sanitizes the RIB archives into a fresh snapshot and wraps
// it in an AtomIndex. Each call builds an independent snapshot, so
// replays into different indexes never share mutable state.
func buildIndex(t *testing.T, ribs map[string][]byte) *core.AtomIndex {
	t.Helper()
	opts := sanitize.Defaults()
	opts.Family = 4
	snap, _, err := sanitize.Clean(sortedSources(ribs), nil, opts)
	if err != nil {
		t.Fatalf("sanitize: %v", err)
	}
	if len(snap.Prefixes) == 0 || len(snap.VPs) == 0 {
		t.Fatalf("degenerate snapshot: %d prefixes, %d VPs", len(snap.Prefixes), len(snap.VPs))
	}
	return core.NewAtomIndex(snap)
}

// replayWorld replays upds into a fresh index built from ribs and
// checks the core differential: the incrementally maintained partition
// must equal batch ComputeAtoms on the final matrix, byte for byte.
func replayWorld(t *testing.T, ribs, upds map[string][]byte, workers int) (Stats, []byte) {
	t.Helper()
	if workers > 1 {
		// Exercise the real parallel decode path even on a single-core
		// host, where the stream's effective-CPU gate would otherwise
		// fall back to sequential decode.
		bgpstream.ForceParallelDecode(true)
		defer bgpstream.ForceParallelDecode(false)
	}
	ix := buildIndex(t, ribs)
	stats, err := Run(ix, sortedSources(upds), Options{Workers: workers})
	if err != nil {
		t.Fatalf("replay (workers=%d): %v", workers, err)
	}
	inc := marshalAtoms(ix.Materialize(workers))
	bat := marshalAtoms(core.ComputeAtomsWorkers(ix.Snapshot(), workers))
	if !bytes.Equal(inc, bat) {
		t.Fatalf("workers=%d: incremental partition differs from batch recompute on the final snapshot", workers)
	}
	return stats, inc
}

// TestReplayDifferentialClean pins the tentpole contract on clean
// archives: after replaying every update, AtomIndex == ComputeAtoms on
// the final snapshot, and workers 1 vs 8 produce byte-identical
// partitions and identical stats.
func TestReplayDifferentialClean(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(1))
	st1, m1 := replayWorld(t, w.Ribs, w.Upds, 1)
	st8, m8 := replayWorld(t, w.Ribs, w.Upds, 8)

	if st1.Elems == 0 {
		t.Fatal("clean world replayed zero elements; update generation broke")
	}
	if st1.Applied == 0 {
		t.Fatal("clean world applied zero deltas; replay mapping broke")
	}
	if !bytes.Equal(m1, m8) {
		t.Fatal("workers=1 and workers=8 replays materialized different partitions")
	}
	// Quarantined is a slice; blank it and compare the rest verbatim.
	st1.Quarantined, st8.Quarantined = nil, nil
	if fmt.Sprintf("%+v", st1) != fmt.Sprintf("%+v", st8) {
		t.Fatalf("replay stats diverge across workers:\nw1 %+v\nw8 %+v", st1, st8)
	}
}

// TestReplayDifferentialFaults replays faultgen-damaged churn — every
// fault class — and asserts the incremental partition still equals
// batch recompute on whatever matrix the damaged stream produced, at
// workers 1 and 8. Damage may change *which* elements decode, but it
// must never desynchronize incremental from batch.
func TestReplayDifferentialFaults(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(2))
	for _, class := range faultgen.AllClasses() {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			sched, err := faultgen.Plan(faultgen.Config{
				Seed: 2, Classes: []faultgen.Class{class},
			}, w.Combined)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			damaged, err := faultgen.Apply(sched, w.Combined)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			dupds := make(map[string][]byte, len(w.Upds))
			for name, data := range damaged {
				if len(name) > 4 && name[:4] == "upd/" {
					dupds[name[4:]] = data
				}
			}
			// Clean RIBs, damaged churn: the snapshot base is intact and
			// the damage is confined to the replayed stream.
			st1, m1 := replayWorld(t, w.Ribs, dupds, 1)
			_, m8 := replayWorld(t, w.Ribs, dupds, 8)
			if !bytes.Equal(m1, m8) {
				t.Fatal("workers=1 and workers=8 disagree under damage")
			}
			if st1.Elems == 0 {
				t.Fatal("damaged stream served zero elements; damage should degrade, not erase")
			}
		})
	}
}

// TestReplaySkipAccounting replays against a deliberately narrowed
// snapshot (fewer admitted prefixes/VPs than the stream mentions) and
// checks unmappable elements are counted, not silently dropped.
func TestReplaySkipAccounting(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(3))
	ix := buildIndex(t, w.Ribs)
	reg := obs.NewRegistry()
	stats, err := Run(ix, sortedSources(w.Upds), Options{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	mapped := stats.Updates + stats.SkippedPrefix + stats.SkippedVP +
		stats.SkippedUnusable + stats.SkippedType
	if mapped != stats.Elems {
		t.Fatalf("element accounting leaks: %d elems vs %d accounted", stats.Elems, mapped)
	}
	if got := reg.Counter("replay.elems").Value(); got != int64(stats.Elems) {
		t.Fatalf("replay.elems counter %d != stats.Elems %d", got, stats.Elems)
	}
	if got := reg.Counter("replay.applied").Value(); got != int64(stats.Applied) {
		t.Fatalf("replay.applied counter %d != stats.Applied %d", got, stats.Applied)
	}
	// The synthetic churn includes session events and VPs outside the
	// sanitized feed set; at least one skip bucket should be exercised.
	if stats.SkippedPrefix+stats.SkippedVP+stats.SkippedType == 0 {
		t.Fatal("no skips at all; the skip paths are untested by this world")
	}
	ds := ix.Stats()
	if ds.Applied != stats.Applied || ds.NoOps != stats.NoOps {
		t.Fatalf("index stats %+v disagree with replay stats %+v", ds, stats)
	}
}
