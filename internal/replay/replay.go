// Package replay drives a core.AtomIndex from a BGP update stream: it
// decodes update archives through bgpstream (honoring the worker pool
// for decode), maps each announce/withdraw onto a (prefix row, VP
// column) cell of the index's snapshot, and applies the deltas in the
// stream's deterministic serve order. Because bgpstream serves a
// byte-identical element sequence at any worker count and AtomIndex is
// mutated only from this single goroutine, the resulting partition is
// byte-identical at any worker count — the differential tests pin that,
// including over faultgen-damaged archives.
//
// Elements that cannot land in the matrix are counted, never silently
// dropped: prefixes outside the snapshot's admitted set, peers that are
// not vantage points, state messages, and announce paths that would not
// flatten (AS_SET with multiple members, confederation segments).
package replay

import (
	"io"

	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/obs"
)

// Options configures a replay run. The zero value replays everything
// sequentially with no telemetry.
type Options struct {
	// Workers bounds the decode worker pool (bgpstream.SetWorkers).
	// Deltas always apply in serve order regardless.
	Workers int
	// Filter narrows the element stream before replay.
	Filter *bgpstream.Filter
	// Metrics receives replay.* counters (and the stream's bgpstream.*
	// counters) when non-nil.
	Metrics *obs.Registry
	// Span, when non-nil, gets a "replay" child annotated with the run's
	// totals.
	Span *obs.Span
	// Progress, when non-nil, emits a replay_batch step per served batch
	// with the element count as its row count.
	Progress *obs.Progress
}

// Stats describes what a replay run did with the stream.
type Stats struct {
	// Elems is every element served by the stream (post-filter).
	Elems int
	// Updates were mapped to a cell: Applied re-bucketed a row, NoOps
	// re-announced the route already in the cell.
	Updates int
	Applied int
	NoOps   int
	// Created / Retired count atom births and deaths over the run.
	Created int
	Retired int
	// Skip accounting: elements that had no cell to land in.
	SkippedPrefix   int // prefix not in the snapshot's admitted set
	SkippedVP       int // peer (collector, ASN) is not a vantage point
	SkippedUnusable int // announce whose path would not flatten
	SkippedType     int // state (or other non-route) elements
	// Stream health, copied from the underlying bgpstream.Stream.
	Warnings    int
	Quarantined []string
}

// Run replays update sources into the index. The index's snapshot
// defines the replay universe: its Prefixes rows, its VPs columns, and
// its intern table the path-ID space (the stream interns into the same
// table, so applied IDs are directly comparable with resident ones).
func Run(ix *core.AtomIndex, sources []bgpstream.Source, opts Options) (Stats, error) {
	snap := ix.Snapshot()
	sp := opts.Span.Child("replay")
	defer sp.End()

	mapper := NewMapper(snap)
	st := bgpstream.NewStream(opts.Filter, sources...)
	st.SetWorkers(opts.Workers)
	st.SetIntern(snap.Paths)
	if opts.Metrics != nil {
		st.SetMetrics(opts.Metrics)
	}

	var (
		stats     Stats
		elemsC    = counter(opts.Metrics, "replay.elems")
		appliedC  = counter(opts.Metrics, "replay.applied")
		noopC     = counter(opts.Metrics, "replay.noops")
		createdC  = counter(opts.Metrics, "replay.atoms_created")
		retiredC  = counter(opts.Metrics, "replay.atoms_retired")
		skipPfxC  = counter(opts.Metrics, "replay.skipped", "reason", "prefix")
		skipVPC   = counter(opts.Metrics, "replay.skipped", "reason", "vp")
		skipPathC = counter(opts.Metrics, "replay.skipped", "reason", "unusable-path")
		skipTypeC = counter(opts.Metrics, "replay.skipped", "reason", "type")
	)
	opts.Progress.Begin("replay", 0)
	for {
		batch, err := st.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		for i := range batch {
			e := &batch[i]
			stats.Elems++
			elemsC.Inc()
			p, v, id, reason := mapper.Map(e)
			switch reason {
			case SkipUnusable:
				stats.SkippedUnusable++
				skipPathC.Inc()
				continue
			case SkipType:
				stats.SkippedType++
				skipTypeC.Inc()
				continue
			case SkipPrefix:
				stats.SkippedPrefix++
				skipPfxC.Inc()
				continue
			case SkipVP:
				stats.SkippedVP++
				skipVPC.Inc()
				continue
			}
			d := ix.ApplyUpdate(p, v, id)
			stats.Updates++
			if d.NoOp {
				stats.NoOps++
				noopC.Inc()
				continue
			}
			stats.Applied++
			appliedC.Inc()
			if d.Created {
				stats.Created++
				createdC.Inc()
			}
			if d.Retired {
				stats.Retired++
				retiredC.Inc()
			}
		}
		opts.Progress.Step("replay_batch", "", int64(len(batch)))
	}
	stats.Warnings = len(st.Warnings())
	stats.Quarantined = st.Quarantined()

	sp.SetAttr("elems", stats.Elems)
	sp.SetAttr("applied", stats.Applied)
	sp.SetAttr("noops", stats.NoOps)
	sp.SetAttr("atoms_created", stats.Created)
	sp.SetAttr("atoms_retired", stats.Retired)
	sp.SetAttr("skipped_prefix", stats.SkippedPrefix)
	sp.SetAttr("skipped_vp", stats.SkippedVP)
	sp.SetAttr("skipped_unusable", stats.SkippedUnusable)
	sp.SetAttr("warnings", stats.Warnings)
	opts.Progress.End("replay_done")
	return stats, nil
}

// counter returns the named counter, or a nil counter (whose methods
// are no-ops) when there is no registry.
func counter(r *obs.Registry, name string, labels ...string) *obs.Counter {
	if r == nil {
		return nil
	}
	return r.Counter(name, labels...)
}
