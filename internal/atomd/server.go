// Server wiring: listeners, the single apply goroutine that owns the
// AtomIndex, the delta channel every ingest session feeds, and the
// drain choreography. Concurrency is deliberately simple:
//
//   - one goroutine per accepted connection (ingest or query);
//   - one decode goroutine per ingest session, started at hello;
//   - exactly one apply goroutine mutating the index, fed by a FIFO
//     channel — so any command enqueued after a set of delta batches
//     observes all of them, which is the whole barrier story;
//   - queries never touch the index, only the published view.
//
// Determinism across sessions: a vantage point is (collector, peer),
// one session carries one collector, so concurrent sessions write
// disjoint matrix columns. The final matrix — and therefore the
// materialized atoms, which canonical numbering derives from the
// matrix alone — is independent of how the apply loop interleaved the
// sessions' batches. That is why the daemon equals batch replay at any
// worker count and any arrival order (the differential tests pin it).
package atomd

import (
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspath"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replay"
)

// deltaFlushSize is how many mapped deltas a decode goroutine batches
// before handing them to the apply loop. Flush boundaries depend only
// on the session's own byte stream, never on timing, so the number of
// published epochs is deterministic for a given ingest history.
const deltaFlushSize = 256

// Config configures a Server.
type Config struct {
	// Snapshot is the serving universe — prefix rows, VP columns, the
	// intern table — normally built from RIB archives by sanitize. The
	// server owns its routes matrix from here on.
	Snapshot *core.Snapshot
	// IngestAddr is the TCP address for ingest sessions ("" means
	// loopback with a kernel-assigned port).
	IngestAddr string
	// QueryAddr is the TCP address for the binary query port ("" means
	// loopback with a kernel-assigned port; queries are also always
	// available via RegisterHTTP).
	QueryAddr string
	// Workers bounds materialization fan-out (snapshots, the HTTP
	// snapshot endpoint). Ingest decode is per-session sequential —
	// that is what makes a session's element order well-defined.
	Workers int
	// Filter narrows ingest element streams, exactly as in replay.
	Filter *bgpstream.Filter
	// Metrics receives atomd.* instruments when non-nil.
	Metrics *obs.Registry
}

// delta is one mapped update: matrix cell (p, v) becomes id.
type delta struct {
	p, v int32
	id   aspath.ID
}

// applyMsg is one unit of apply-loop work: a delta batch from a
// session (src != nil), or a command (reply != nil) — a barrier, a
// partition read, or a full materialization.
type applyMsg struct {
	src     *SourceStats
	deltas  []delta
	elems   int // elements decoded for this batch, skipped included
	skipped int

	reply       chan applyReply
	workers     int
	materialize bool
}

type applyReply struct {
	epoch uint64
	stats core.DeltaStats
	atoms *core.AtomSet
}

// SourceStats is the per-collector ingest ledger, served by
// /atoms/ingest and IngestStats.
type SourceStats struct {
	Collector string
	Sessions  int    // sessions opened for this collector
	Bytes     uint64 // payload bytes accepted (post-dedup)
	Elems     int    // elements decoded
	Updates   int    // elements mapped to a cell
	Applied   int    // updates that re-bucketed a row
	NoOps     int    // updates re-announcing the resident route
	Skipped   int    // elements with no cell (prefix/vp/type/unusable)
}

// Server is the daemon. Construct with NewServer; it serves until
// Shutdown. Safe for concurrent use: queries from any goroutine,
// sessions from any number of peers.
type Server struct {
	cfg    Config
	ix     *core.AtomIndex
	snap   *core.Snapshot
	mapper *replay.Mapper
	view   atomic.Pointer[view]

	ingestLn net.Listener
	queryLn  net.Listener

	applyCh   chan applyMsg
	applyQuit chan struct{} // closed after sessions join: apply loop may drain and exit
	applyDone chan struct{} // closed when the apply loop has exited
	freeCh    chan []delta  // delta-slice recycling between sessions and apply

	wg sync.WaitGroup // accept loops + conn/session/decode goroutines

	mu           sync.Mutex
	closing      bool
	conns        map[net.Conn]struct{}
	sources      map[string]*SourceStats
	sessionLocks map[string]*sync.Mutex
	quarantined  []string
	sessionCount int

	enqueued atomic.Uint64 // delta batches handed to the apply loop
	applied  atomic.Uint64 // delta batches the apply loop has consumed

	closeOnce sync.Once
	closeErr  error

	m serverMetrics
}

type serverMetrics struct {
	sessions *obs.Gauge
	epoch    *obs.Gauge
	lag      *obs.Gauge
	bytes    *obs.Counter
	elems    *obs.Counter
	applied  *obs.Counter
	noops    *obs.Counter
	batches  *obs.Counter
	naks     *obs.Counter
	quar     *obs.Counter
	queryNs  map[string]*obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	m := serverMetrics{
		sessions: r.Gauge("atomd.sessions"),
		epoch:    r.Gauge("atomd.epoch"),
		lag:      r.Gauge("atomd.ingest_lag_batches"),
		bytes:    r.Counter("atomd.ingest_bytes"),
		elems:    r.Counter("atomd.ingest_elems"),
		applied:  r.Counter("atomd.applied"),
		noops:    r.Counter("atomd.noops"),
		batches:  r.Counter("atomd.batches_applied"),
		naks:     r.Counter("atomd.naks"),
		quar:     r.Counter("atomd.quarantined"),
		queryNs:  make(map[string]*obs.Histogram),
	}
	for _, op := range []string{"sameatom", "membercount", "prefixatom", "epoch", "snapshot"} {
		m.queryNs[op] = r.Histogram("atomd.query_ns", "op", op)
	}
	return m
}

// NewServer builds the resident index over cfg.Snapshot (one batch
// grouping), binds both listeners, publishes the epoch-0 view, and
// starts serving. The caller must Shutdown to release everything.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Snapshot == nil {
		return nil, errors.New("atomd: Config.Snapshot is required")
	}
	if cfg.IngestAddr == "" {
		cfg.IngestAddr = "127.0.0.1:0"
	}
	if cfg.QueryAddr == "" {
		cfg.QueryAddr = "127.0.0.1:0"
	}
	ingestLn, err := net.Listen("tcp", cfg.IngestAddr)
	if err != nil {
		return nil, err
	}
	queryLn, err := net.Listen("tcp", cfg.QueryAddr)
	if err != nil {
		ingestLn.Close()
		return nil, err
	}
	srv := &Server{
		cfg:       cfg,
		ix:        core.NewAtomIndex(cfg.Snapshot),
		snap:      cfg.Snapshot,
		mapper:    replay.NewMapper(cfg.Snapshot),
		ingestLn:  ingestLn,
		queryLn:   queryLn,
		applyCh:   make(chan applyMsg, 64),
		applyQuit: make(chan struct{}),
		applyDone: make(chan struct{}),
		freeCh:       make(chan []delta, 64),
		conns:        make(map[net.Conn]struct{}),
		sources:      make(map[string]*SourceStats),
		sessionLocks: make(map[string]*sync.Mutex),
		m:         newServerMetrics(cfg.Metrics),
	}
	part, _ := srv.ix.Partition(nil)
	srv.view.Store(&view{epoch: 0, part: part})

	go func() {
		defer close(srv.applyDone)
		srv.applyLoop()
	}()
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		srv.acceptLoop(srv.ingestLn, true)
	}()
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		srv.acceptLoop(srv.queryLn, false)
	}()
	return srv, nil
}

// Addr returns the bound ingest address.
func (srv *Server) Addr() string { return srv.ingestLn.Addr().String() }

// QueryAddr returns the bound binary query port address.
func (srv *Server) QueryAddr() string { return srv.queryLn.Addr().String() }

// acceptLoop accepts connections until the listener closes, spawning
// one tracked goroutine per connection.
func (srv *Server) acceptLoop(ln net.Listener, ingest bool) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		if !srv.track(conn) {
			conn.Close()
			return
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			defer srv.untrack(conn)
			if ingest {
				s := &session{conn: conn}
				s.run(srv)
			} else {
				srv.serveQuery(conn)
			}
		}()
	}
}

// track registers a live connection for shutdown teardown; false means
// the server is already closing and the conn must be dropped.
func (srv *Server) track(conn net.Conn) bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closing {
		return false
	}
	srv.conns[conn] = struct{}{}
	return true
}

func (srv *Server) untrack(conn net.Conn) {
	srv.mu.Lock()
	delete(srv.conns, conn)
	srv.mu.Unlock()
}

// source returns (creating on first use) the ledger for a collector,
// counting the new session.
func (srv *Server) source(collector string) *SourceStats {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	st := srv.sources[collector]
	if st == nil {
		st = &SourceStats{Collector: collector}
		srv.sources[collector] = st
	}
	st.Sessions++
	return st
}

// collectorLock returns the per-collector session mutex, created on
// first use. A session holds it from hello through decoder join, so a
// reconnecting collector (crash + resume) never interleaves its
// replayed suffix with the previous incarnation's still-draining
// deltas — per-cell stream order, which idempotent suffix replay
// depends on, is preserved across restarts.
func (srv *Server) collectorLock(collector string) *sync.Mutex {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	l := srv.sessionLocks[collector]
	if l == nil {
		l = new(sync.Mutex)
		srv.sessionLocks[collector] = l
	}
	return l
}

// addQuarantine records a quarantined stream (wire-level or decode-
// level), mirroring bgpstream's quarantine ledger.
func (srv *Server) addQuarantine(name string) {
	srv.mu.Lock()
	srv.quarantined = append(srv.quarantined, name)
	srv.mu.Unlock()
	srv.m.quar.Inc()
}

// Quarantined returns the names of quarantined streams, sorted.
func (srv *Server) Quarantined() []string {
	srv.mu.Lock()
	out := append([]string(nil), srv.quarantined...)
	srv.mu.Unlock()
	sort.Strings(out)
	return out
}

// IngestStats returns a copy of every source ledger, sorted by
// collector name.
func (srv *Server) IngestStats() []SourceStats {
	srv.mu.Lock()
	out := make([]SourceStats, 0, len(srv.sources))
	for _, st := range srv.sources {
		out = append(out, *st)
	}
	srv.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Collector < out[j].Collector })
	return out
}

// getDeltaBuf hands out a recycled delta slice (or a fresh one).
func (srv *Server) getDeltaBuf() []delta {
	select {
	case b := <-srv.freeCh:
		return b
	default:
		return make([]delta, 0, deltaFlushSize)
	}
}

// enqueue hands a delta batch to the apply loop. Sessions only call
// this while they are tracked by srv.wg, and Shutdown lets the apply
// loop exit only after the wait group drains, so the send always
// completes.
func (srv *Server) enqueue(msg applyMsg) {
	srv.enqueued.Add(1)
	srv.applyCh <- msg
}

// applyLoop is the single goroutine that owns the index. It exits once
// applyQuit is closed and the channel is drained.
func (srv *Server) applyLoop() {
	var remap []int32
	epoch := uint64(0)
	for {
		var msg applyMsg
		select {
		case msg = <-srv.applyCh:
		case <-srv.applyQuit:
			select {
			case msg = <-srv.applyCh:
			default:
				return
			}
		}
		epoch, remap = srv.apply(msg, epoch, remap)
	}
}

// apply handles one message: a command answers against the current
// index state; a delta batch mutates the index and publishes the next
// view generation.
func (srv *Server) apply(msg applyMsg, epoch uint64, remap []int32) (uint64, []int32) {
	if msg.reply != nil {
		r := applyReply{epoch: epoch, stats: srv.ix.Stats()}
		if msg.materialize {
			r.atoms = srv.ix.Materialize(msg.workers)
		}
		msg.reply <- r
		return epoch, remap
	}
	var applied, noops int
	for _, d := range msg.deltas {
		del := srv.ix.ApplyUpdate(int(d.p), int(d.v), d.id)
		if del.NoOp {
			noops++
		} else {
			applied++
		}
	}
	updates := len(msg.deltas)
	select {
	case srv.freeCh <- msg.deltas[:0]:
	default:
	}
	if updates > 0 {
		epoch++
		part, remap2 := srv.ix.Partition(remap)
		remap = remap2
		srv.view.Store(&view{epoch: epoch, part: part})
	}
	srv.applied.Add(1)

	srv.mu.Lock()
	msg.src.Elems += msg.elems
	msg.src.Updates += updates
	msg.src.Applied += applied
	msg.src.NoOps += noops
	msg.src.Skipped += msg.skipped
	srv.mu.Unlock()

	srv.m.batches.Inc()
	srv.m.elems.Add(int64(msg.elems))
	srv.m.applied.Add(int64(applied))
	srv.m.noops.Add(int64(noops))
	srv.m.epoch.Set(int64(epoch))
	srv.m.lag.Set(int64(srv.enqueued.Load() - srv.applied.Load()))
	return epoch, remap
}

// command sends one command to the apply loop and waits for its
// answer. ok=false means the loop has already exited (shutdown drained
// it): the index is quiescent and the caller may read it directly. The
// inner select closes the race where the loop exits between the send
// landing in the buffered channel and the reply — without it a
// post-shutdown command could sit in applyCh with no consumer forever.
func (srv *Server) command(msg applyMsg) (applyReply, bool) {
	select {
	case srv.applyCh <- msg:
		select {
		case r := <-msg.reply:
			return r, true
		case <-srv.applyDone:
			return applyReply{}, false
		}
	case <-srv.applyDone:
		return applyReply{}, false
	}
}

// barrier blocks until every delta batch enqueued before the call has
// been applied (FIFO channel + single consumer). Sessions use it so a
// drained ack really means "applied", and tests use MaterializeAtoms
// (which is a barrier plus a materialization) the same way. After
// shutdown the loop has drained everything, which is the same
// guarantee.
func (srv *Server) barrier() {
	reply := make(chan applyReply, 1)
	srv.command(applyMsg{reply: reply})
}

// MaterializeAtoms builds the full AtomSet for everything applied so
// far — atom IDs, member lists, vectors, origins — exactly the batch
// ComputeAtoms output for the current matrix. Callable during live
// ingest (it runs at a quiesce point inside the apply loop) and after
// Shutdown (the index is then quiescent and accessed directly).
func (srv *Server) MaterializeAtoms(workers int) *core.AtomSet {
	if workers <= 0 {
		workers = srv.cfg.Workers
	}
	if workers <= 0 {
		workers = 1
	}
	reply := make(chan applyReply, 1)
	if r, ok := srv.command(applyMsg{reply: reply, workers: workers, materialize: true}); ok {
		return r.atoms
	}
	return srv.ix.Materialize(workers)
}

// DeltaStats returns the index's cumulative delta counters at a
// quiesce point.
func (srv *Server) DeltaStats() core.DeltaStats {
	reply := make(chan applyReply, 1)
	if r, ok := srv.command(applyMsg{reply: reply}); ok {
		return r.stats
	}
	return srv.ix.Stats()
}

// obsStart begins a query-latency observation (zero cost when metrics
// are off).
func (srv *Server) obsStart() time.Time {
	if srv.cfg.Metrics == nil {
		return time.Time{}
	}
	return time.Now()
}

// obsQuery records one query's latency into its per-op histogram.
func (srv *Server) obsQuery(op string, start time.Time) {
	if srv.cfg.Metrics == nil {
		return
	}
	srv.m.queryNs[op].Observe(time.Since(start).Nanoseconds())
}

// Shutdown drains the daemon: stop accepting, close every live
// connection (sessions decode what already arrived, then finish), join
// every goroutine, and let the apply loop consume the queue and exit.
// When Shutdown returns no daemon goroutine remains and the index
// holds exactly the updates decoded from accepted bytes — the state a
// restarted daemon converges from. Idempotent.
func (srv *Server) Shutdown() error {
	srv.closeOnce.Do(func() {
		srv.mu.Lock()
		srv.closing = true
		conns := make([]net.Conn, 0, len(srv.conns))
		for c := range srv.conns {
			conns = append(conns, c)
		}
		srv.mu.Unlock()
		srv.closeErr = srv.ingestLn.Close()
		if err := srv.queryLn.Close(); srv.closeErr == nil {
			srv.closeErr = err
		}
		for _, c := range conns {
			c.Close()
		}
		srv.wg.Wait()
		close(srv.applyQuit)
		<-srv.applyDone
	})
	return srv.closeErr
}

// Close is Shutdown under the conventional name.
func (srv *Server) Close() error { return srv.Shutdown() }
