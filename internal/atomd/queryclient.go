// QueryClient speaks the binary query port. One request in flight at a
// time: Do sends a frame and blocks for its reply (seq echoes verify
// the pairing). Typed helpers decode the reply payloads documented in
// queryport.go.
package atomd

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
)

// QueryClient is one binary query connection. Not safe for concurrent
// use.
type QueryClient struct {
	conn net.Conn
	fp   FrameParser
	seq  uint64
	fbuf []byte
	rbuf []byte
}

// DialQuery connects to a daemon's binary query port.
func DialQuery(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &QueryClient{conn: conn, rbuf: make([]byte, 4096)}, nil
}

// Close tears the connection down.
func (q *QueryClient) Close() error { return q.conn.Close() }

// Do sends one request frame and returns the reply frame. The reply's
// payload aliases the client's parse buffer — valid until the next Do.
// A FrameError reply is returned as a Go error carrying its text.
//
//atomlint:borrowed Frame.Payload aliases the client's parse buffer, valid until the next Do
func (q *QueryClient) Do(typ byte, payload []byte) (Frame, error) {
	q.seq++
	q.fbuf = AppendFrame(q.fbuf[:0], typ, q.seq, payload)
	if _, err := q.conn.Write(q.fbuf); err != nil {
		return Frame{}, err
	}
	for {
		fr, ok, err := q.fp.Next()
		if err != nil {
			return Frame{}, err
		}
		if ok {
			if fr.Seq != q.seq {
				continue // stale reply from a failed earlier exchange
			}
			if fr.Type == FrameError {
				return fr, fmt.Errorf("atomd query: %s", fr.Payload)
			}
			return fr, nil
		}
		n, rerr := q.conn.Read(q.rbuf)
		if n > 0 {
			q.fp.Feed(q.rbuf[:n])
			continue
		}
		if rerr != nil {
			return Frame{}, rerr
		}
	}
}

// Epoch queries the current generation and universe size.
func (q *QueryClient) Epoch() (epoch uint64, atoms, prefixes int, err error) {
	fr, err := q.Do(FrameEpoch, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(fr.Payload) != 16 {
		return 0, 0, 0, fmt.Errorf("atomd query: epoch reply: want 16 bytes, got %d", len(fr.Payload))
	}
	return binary.BigEndian.Uint64(fr.Payload[:8]),
		int(binary.BigEndian.Uint32(fr.Payload[8:12])),
		int(binary.BigEndian.Uint32(fr.Payload[12:16])), nil
}

// SameAtom asks whether prefix rows p and r share an atom.
func (q *QueryClient) SameAtom(p, r int) (same bool, epoch uint64, err error) {
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[:4], uint32(p))
	binary.BigEndian.PutUint32(payload[4:8], uint32(r))
	fr, err := q.Do(FrameSameAtom, payload[:])
	if err != nil {
		return false, 0, err
	}
	if len(fr.Payload) != 9 {
		return false, 0, fmt.Errorf("atomd query: sameatom reply: want 9 bytes, got %d", len(fr.Payload))
	}
	return fr.Payload[8] == 1, binary.BigEndian.Uint64(fr.Payload[:8]), nil
}

// MemberCount asks for the size of prefix row p's atom.
func (q *QueryClient) MemberCount(p int) (count int, epoch uint64, err error) {
	var payload [4]byte
	binary.BigEndian.PutUint32(payload[:4], uint32(p))
	fr, err := q.Do(FrameMemberCount, payload[:])
	if err != nil {
		return 0, 0, err
	}
	if len(fr.Payload) != 12 {
		return 0, 0, fmt.Errorf("atomd query: membercount reply: want 12 bytes, got %d", len(fr.Payload))
	}
	return int(binary.BigEndian.Uint32(fr.Payload[8:12])), binary.BigEndian.Uint64(fr.Payload[:8]), nil
}

// PrefixAtom resolves a prefix to its row, canonical atom, and atom
// size; row and atom are -1 when the prefix is outside the universe.
func (q *QueryClient) PrefixAtom(pfx netip.Prefix) (row, atom int32, count int, epoch uint64, err error) {
	addr := pfx.Addr().AsSlice()
	payload := make([]byte, 0, 17)
	payload = append(payload, byte(pfx.Bits()))
	payload = append(payload, addr...)
	fr, err := q.Do(FramePrefixAtom, payload)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(fr.Payload) != 20 {
		return 0, 0, 0, 0, fmt.Errorf("atomd query: prefixatom reply: want 20 bytes, got %d", len(fr.Payload))
	}
	return int32(binary.BigEndian.Uint32(fr.Payload[8:12])),
		int32(binary.BigEndian.Uint32(fr.Payload[12:16])),
		int(binary.BigEndian.Uint32(fr.Payload[16:20])),
		binary.BigEndian.Uint64(fr.Payload[:8]), nil
}
