// Daemon benchmarks: point-query latency on the published view (the
// numbers a dashboard poller or sidecar cares about) and end-to-end
// TCP ingest throughput from framed bytes to applied deltas.
package atomd

import (
	"testing"

	"repro/internal/faultgen/harness"
)

// BenchmarkAtomdQuery times the zero-alloc hot path per query kind.
func BenchmarkAtomdQuery(b *testing.B) {
	w := harness.BuildWorld(harness.DefaultConfig(71))
	srv := newTestServer(b, w.Ribs, 1)
	ingestConcurrent(b, srv, w.Upds)
	n := srv.PrefixCount()

	b.Run("sameatom", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			if srv.SameAtom(i%n, (i*7+1)%n) {
				sink++
			}
		}
		_ = sink
	})
	b.Run("membercount", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += srv.MemberCount(i % n)
		}
		_ = sink
	})
	b.Run("prefixatom", func(b *testing.B) {
		b.ReportAllocs()
		sink := int32(0)
		for i := 0; i < b.N; i++ {
			sink += srv.PrefixAtom(i % n)
		}
		_ = sink
	})
}

// BenchmarkAtomdIngest times the full live path — TCP framing, wire
// state machine, batch decode, mapping, apply, view republish — and
// reports applied update throughput.
func BenchmarkAtomdIngest(b *testing.B) {
	w := harness.BuildWorld(harness.DefaultConfig(72))
	var updates int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv := newTestServer(b, w.Ribs, 1)
		b.StartTimer()
		ingestConcurrent(b, srv, w.Upds)
		b.StopTimer()
		updates = 0
		for _, st := range srv.IngestStats() {
			updates += st.Updates
		}
		srv.Shutdown()
		b.StartTimer()
	}
	if updates > 0 {
		b.ReportMetric(float64(updates)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
	}
}
