// Ingest session glue: one goroutine reads frames off the conn and
// runs the wire state machine; a second, started at hello, decodes the
// reassembled payload stream. The decoder is a sequential
// bgpstream.Stream over an io.Pipe carrying exactly the accepted
// payload bytes — i.e. the batch decode path over the same bytes, with
// the same record Resync, warning, and degradation-quarantine
// machinery. Record-level damage therefore behaves identically to
// batch replay (the differential over faultgen-damaged streams holds
// by construction); only frame-level damage is handled here, by the
// parser's bounded magic scan and the wire quarantine.
package atomd

import (
	"io"
	"net"
	"sync"

	"repro/internal/bgpstream"
	"repro/internal/obs"
	"repro/internal/replay"
)

// session is one live ingest connection. It borrows the server for the
// duration of each call (the server outlives and tears down every
// session, not the other way around), so methods take srv explicitly
// rather than owning a reference.
type session struct {
	conn net.Conn

	st         ingestState
	src        *SourceStats
	pw         *io.PipeWriter
	decodeDone chan struct{}
	// colMu is the per-collector session lock, held from hello until
	// the decode goroutine has joined (released in run's defer chain).
	colMu *sync.Mutex
	// bytesC is the per-source byte counter, created at hello when the
	// collector name arrives (nil no-ops when metrics are off).
	bytesC *obs.Counter
}

// run reads and handles frames until the connection ends (client
// close, quarantine, EOF drain, or server shutdown). On every exit
// path the decode pipe is closed and the decode goroutine joined, so
// Shutdown's wg.Wait really joins everything.
func (s *session) run(srv *Server) {
	defer s.conn.Close()
	defer func() {
		// Runs after the decode-join defer below: the collector slot
		// frees only once this session's deltas are all enqueued.
		if s.colMu != nil {
			s.colMu.Unlock()
		}
	}()
	defer func() {
		if s.pw != nil {
			s.pw.Close()
			<-s.decodeDone
			s.pw = nil
		}
	}()
	srv.m.sessions.Set(int64(srv.sessionGauge(+1)))
	defer func() {
		srv.m.sessions.Set(int64(srv.sessionGauge(-1)))
	}()

	var (
		fp   FrameParser
		rbuf = make([]byte, 64<<10)
		resp []byte
	)
	for {
		n, err := s.conn.Read(rbuf)
		if n > 0 {
			fp.Feed(rbuf[:n])
			for {
				fr, ok, perr := fp.Next()
				if perr != nil {
					// Wire desync: the byte stream has no framing left.
					s.quarantineWire(srv)
					return
				}
				if !ok {
					break
				}
				if done := s.handle(srv, fr, &resp); done {
					return
				}
			}
		}
		if err != nil {
			return // peer closed, or Shutdown closed the conn under us
		}
	}
}

// handle runs one frame through the state machine and performs the
// session-level side effects the pure state machine cannot: starting
// the decoder at hello, draining it at EOF, accounting accepted bytes.
// Returns true when the session is over.
func (s *session) handle(srv *Server, fr Frame, resp *[]byte) bool {
	ackedBefore := s.st.acked
	helloBefore := s.st.helloSeen
	res, err := s.st.handleFrame(fr, s.pw, (*resp)[:0])
	*resp = res.resp
	if err != nil {
		// The decode pipe failed underneath us (decoder aborted): the
		// session cannot make progress.
		srv.addQuarantine("wire:" + s.st.collector + ": decode pipe closed")
		return true
	}
	if !helloBefore && s.st.helloSeen {
		s.start(srv)
	}
	if n := s.st.acked - ackedBefore; n > 0 && helloBefore {
		s.src.addBytes(srv, n)
		s.bytesC.Add(int64(n))
	}
	// resp holds at most one response frame per handled frame; its type
	// byte says whether we just demanded a rewind.
	if len(res.resp) >= 3 && res.resp[2] == FrameNak {
		srv.m.naks.Inc()
	}
	if res.drained {
		// Clean EOF: close the pipe, join the decoder (everything
		// accepted is now enqueued), then barrier so "drained" means
		// applied, not merely queued.
		s.pw.Close()
		<-s.decodeDone
		s.pw = nil
		srv.barrier()
		*resp = s.st.respondDrained(*resp)
	}
	if len(*resp) > 0 {
		if _, werr := s.conn.Write(*resp); werr != nil {
			return true
		}
	}
	if res.closed && s.st.quarantined {
		srv.addQuarantine("wire:" + s.quarName() + ": " + s.st.reason)
	}
	return res.closed
}

// start opens the decode pipeline once the hello named the collector.
// It first takes the per-collector session lock — blocking until any
// previous incarnation of this collector's session has fully drained —
// so concurrent duplicate sessions serialize instead of racing their
// deltas.
func (s *session) start(srv *Server) {
	s.colMu = srv.collectorLock(s.st.collector)
	//atomlint:ignore locks held across the session's lifetime; run's defer chain unlocks after the decoder joins
	s.colMu.Lock()
	s.src = srv.source(s.st.collector)
	s.bytesC = srv.cfg.Metrics.Counter("atomd.source_bytes", "source", s.st.collector)
	pr, pw := io.Pipe()
	s.pw = pw
	s.decodeDone = make(chan struct{})
	collector := s.st.collector
	src := s.src
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		defer close(s.decodeDone)
		srv.decode(pr, collector, src)
	}()
}

// quarName labels a quarantined session for the ledger: the collector
// when the hello got far enough to name one, the remote address
// otherwise.
func (s *session) quarName() string {
	if s.st.collector != "" {
		return s.st.collector
	}
	return s.conn.RemoteAddr().String()
}

// quarantineWire handles parser desync: flush a final error frame and
// record the quarantine.
func (s *session) quarantineWire(srv *Server) {
	s.st.quarantined = true
	s.st.reason = ErrDesync.Error()
	var buf []byte
	buf = AppendFrameFlags(buf, FrameError, 0, s.st.acked, []byte(s.st.reason))
	s.conn.Write(buf)
	srv.addQuarantine("wire:" + s.quarName() + ": frame desync")
}

// addBytes accumulates accepted payload bytes under the server lock.
func (st *SourceStats) addBytes(srv *Server, n uint64) {
	srv.mu.Lock()
	st.Bytes += n
	srv.mu.Unlock()
	srv.m.bytes.Add(int64(n))
}

// sessionGauge adjusts and returns the live-session count.
func (srv *Server) sessionGauge(d int) int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.sessionCount += d
	return srv.sessionCount
}

// decode runs the batch decode path over the session's reassembled
// payload stream and feeds mapped deltas to the apply loop in
// deltaFlushSize batches. Runs until the payload pipe closes (EOF
// drain or session teardown); source-level degradation quarantines are
// copied into the server ledger at drain, exactly as batch replay
// surfaces them.
func (srv *Server) decode(pr *io.PipeReader, collector string, src *SourceStats) {
	defer pr.Close()
	// The stream borrows the reader; this function owns the pipe's
	// teardown (the deferred Close and CloseWithError below).
	var r io.Reader = pr
	st := bgpstream.NewStream(srv.cfg.Filter, bgpstream.Source{Collector: collector, R: r})
	st.SetWorkers(1)
	st.SetIntern(srv.snap.Paths)
	if srv.cfg.Metrics != nil {
		st.SetMetrics(srv.cfg.Metrics)
	}
	deltas := srv.getDeltaBuf()
	elems, skipped := 0, 0
	flush := func() {
		if elems == 0 && len(deltas) == 0 {
			return
		}
		srv.enqueue(applyMsg{src: src, deltas: deltas, elems: elems, skipped: skipped})
		deltas = srv.getDeltaBuf()
		elems, skipped = 0, 0
	}
	for {
		batch, err := st.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A reader-source failure (the pipe died mid-record): what
			// decoded so far stands; the rest of the stream is gone.
			pr.CloseWithError(err)
			break
		}
		for i := range batch {
			e := &batch[i]
			elems++
			p, v, id, reason := srv.mapper.Map(e)
			if reason != replay.SkipNone {
				skipped++
				continue
			}
			deltas = append(deltas, delta{p: int32(p), v: int32(v), id: id})
		}
		if len(deltas) >= deltaFlushSize {
			flush()
		}
	}
	flush()
	for _, q := range st.Quarantined() {
		srv.addQuarantine("decode:" + q)
	}
}
