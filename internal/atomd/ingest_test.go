// Protocol error paths: the ingest state machine driven frame by frame
// (no sockets), wire-level abuse over real connections, and the query
// ports' malformed-request handling. Every response the server emits
// must itself parse as a frame — the protocol never answers garbage
// with garbage.
package atomd

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/faultgen/harness"
)

// parseOne decodes exactly one frame out of resp.
func parseOne(t *testing.T, resp []byte) Frame {
	t.Helper()
	var fp FrameParser
	fp.Feed(resp)
	fr, ok, err := fp.Next()
	if err != nil || !ok {
		t.Fatalf("response is not a parseable frame: ok=%v err=%v bytes=%x", ok, err, resp)
	}
	fr.Payload = append([]byte(nil), fr.Payload...)
	return fr
}

func hello(collector string, seq uint64) Frame {
	return Frame{Type: FrameHello, Seq: seq, Payload: []byte(collector)}
}

func TestIngestStateHelloValidation(t *testing.T) {
	cases := []struct {
		name string
		fr   Frame
		why  string
	}{
		{"empty name", hello("", 0), "empty or over 255"},
		{"oversized name", hello(strings.Repeat("x", 256), 0), "empty or over 255"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var st ingestState
			res, err := st.handleFrame(tc.fr, io.Discard, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !st.quarantined || !res.closed {
				t.Fatalf("bad hello not quarantined: %+v", st)
			}
			if fr := parseOne(t, res.resp); fr.Type != FrameError || !strings.Contains(string(fr.Payload), tc.why) {
				t.Fatalf("want FrameError mentioning %q, got type=%d %q", tc.why, fr.Type, fr.Payload)
			}
		})
	}
}

func TestIngestStateDuplicateHello(t *testing.T) {
	var st ingestState
	if _, err := st.handleFrame(hello("rrc00", 0), io.Discard, nil); err != nil {
		t.Fatal(err)
	}
	res, err := st.handleFrame(hello("rrc00", 0), io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.quarantined {
		t.Fatal("duplicate hello accepted")
	}
	if fr := parseOne(t, res.resp); fr.Type != FrameError {
		t.Fatalf("want FrameError, got %d", fr.Type)
	}
}

func TestIngestStateDataBeforeHello(t *testing.T) {
	var st ingestState
	res, _ := st.handleFrame(Frame{Type: FrameData, Seq: 0, Payload: []byte("x")}, io.Discard, nil)
	if !st.quarantined || parseOne(t, res.resp).Type != FrameError {
		t.Fatal("data before hello not rejected")
	}

	var st2 ingestState
	res, _ = st2.handleFrame(Frame{Type: FrameEOF, Seq: 0}, io.Discard, nil)
	if !st2.quarantined || parseOne(t, res.resp).Type != FrameError {
		t.Fatal("eof before hello not rejected")
	}
}

// TestIngestStateSequencing walks the offset machinery: in-order
// accept, gap NAK, duplicate re-ack, overlap trimming, EOF mismatch.
func TestIngestStateSequencing(t *testing.T) {
	var st ingestState
	var pipe bytes.Buffer
	step := func(fr Frame) (frameResult, Frame) {
		t.Helper()
		res, err := st.handleFrame(fr, &pipe, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.resp) == 0 {
			return res, Frame{}
		}
		return res, parseOne(t, res.resp)
	}

	_, ack := step(hello("rrc00", 0))
	if ack.Type != FrameAck || ack.Seq != 0 {
		t.Fatalf("hello ack: %+v", ack)
	}

	// In-order data.
	_, ack = step(Frame{Type: FrameData, Seq: 0, Payload: []byte("abcd")})
	if ack.Type != FrameAck || ack.Seq != 4 {
		t.Fatalf("data ack: %+v", ack)
	}

	// Gap: NAK carrying the high-water mark.
	_, nak := step(Frame{Type: FrameData, Seq: 100, Payload: []byte("zz")})
	if nak.Type != FrameNak || nak.Seq != 4 {
		t.Fatalf("gap nak: %+v", nak)
	}

	// Pure duplicate: re-ack, nothing written.
	_, ack = step(Frame{Type: FrameData, Seq: 0, Payload: []byte("abcd")})
	if ack.Type != FrameAck || ack.Seq != 4 {
		t.Fatalf("duplicate re-ack: %+v", ack)
	}

	// Overlap: only the unseen tail reaches the pipe.
	_, ack = step(Frame{Type: FrameData, Seq: 2, Payload: []byte("cdEF")})
	if ack.Type != FrameAck || ack.Seq != 6 {
		t.Fatalf("overlap ack: %+v", ack)
	}
	if pipe.String() != "abcdEF" {
		t.Fatalf("pipe got %q, want abcdEF (overlapping head decoded twice?)", pipe.String())
	}

	// EOF at the wrong offset: NAK, session stays open.
	res, nak := step(Frame{Type: FrameEOF, Seq: 99})
	if nak.Type != FrameNak || nak.Seq != 6 || res.closed {
		t.Fatalf("eof mismatch: res=%+v nak=%+v", res, nak)
	}

	// EOF at the mark: drained, closed, no immediate response (the
	// glue sends respondDrained after the barrier).
	res, _ = step(Frame{Type: FrameEOF, Seq: 6})
	if !res.drained || !res.closed || len(res.resp) != 0 {
		t.Fatalf("clean eof: %+v", res)
	}
	if d := parseOne(t, st.respondDrained(nil)); d.Type != FrameAck || d.Flags != FlagDrained || d.Seq != 6 {
		t.Fatalf("drained ack: %+v", d)
	}

	// Data after EOF quarantines.
	res, _ = step(Frame{Type: FrameData, Seq: 6, Payload: []byte("x")})
	if !st.quarantined {
		t.Fatal("data after eof accepted")
	}
	// Quarantine is sticky: further frames are ignored, session closed.
	res, _ = step(Frame{Type: FrameData, Seq: 7, Payload: []byte("y")})
	if !res.closed || len(res.resp) != 0 {
		t.Fatalf("quarantined session still responding: %+v", res)
	}
}

func TestIngestStateNakBudget(t *testing.T) {
	var st ingestState
	if _, err := st.handleFrame(hello("rrc00", 0), io.Discard, nil); err != nil {
		t.Fatal(err)
	}
	var last frameResult
	for i := 0; i <= maxNaks; i++ {
		last, _ = st.handleFrame(Frame{Type: FrameData, Seq: 1 << 30, Payload: []byte("x")}, io.Discard, nil)
	}
	if !st.quarantined || !last.closed {
		t.Fatalf("nak budget never tripped after %d gaps: %+v", maxNaks+1, st)
	}
	if fr := parseOne(t, last.resp); fr.Type != FrameError || !strings.Contains(string(fr.Payload), "nak budget") {
		t.Fatalf("want budget error frame, got %q", fr.Payload)
	}
}

func TestIngestStateResumeOffset(t *testing.T) {
	var st ingestState
	var pipe bytes.Buffer
	res, err := st.handleFrame(hello("rrc00", 1000), &pipe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack := parseOne(t, res.resp); ack.Type != FrameAck || ack.Seq != 1000 {
		t.Fatalf("resume hello ack: %+v", ack)
	}
	// Bytes before the resume point are duplicates; at the point, accepted.
	res, _ = st.handleFrame(Frame{Type: FrameData, Seq: 990, Payload: bytes.Repeat([]byte{1}, 10)}, &pipe, nil)
	if ack := parseOne(t, res.resp); ack.Type != FrameAck || ack.Seq != 1000 {
		t.Fatalf("pre-resume duplicate: %+v", ack)
	}
	res, _ = st.handleFrame(Frame{Type: FrameData, Seq: 1000, Payload: []byte("ab")}, &pipe, nil)
	if ack := parseOne(t, res.resp); ack.Seq != 1002 {
		t.Fatalf("resume accept: %+v", ack)
	}
	if pipe.String() != "ab" {
		t.Fatalf("pipe got %q", pipe.String())
	}
}

func TestIngestStateUnknownFrameType(t *testing.T) {
	var st ingestState
	res, err := st.handleFrame(Frame{Type: FrameReply, Seq: 7}, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.quarantined || res.closed {
		t.Fatal("foreign frame type should be an error reply, not a quarantine")
	}
	if fr := parseOne(t, res.resp); fr.Type != FrameError || fr.Seq != 7 {
		t.Fatalf("want FrameError echoing seq 7, got %+v", fr)
	}
}

func TestIngestStateOffsetOverflow(t *testing.T) {
	var st ingestState
	st.handleFrame(hello("rrc00", ^uint64(0)-1), io.Discard, nil)
	res, _ := st.handleFrame(Frame{Type: FrameData, Seq: ^uint64(0) - 1, Payload: []byte("abcd")}, io.Discard, nil)
	if !st.quarantined {
		t.Fatal("offset overflow accepted")
	}
	if fr := parseOne(t, res.resp); fr.Type != FrameError {
		t.Fatalf("want FrameError, got %d", fr.Type)
	}
}

// TestWireGarbageQuarantinesSession desynchronizes a live ingest
// connection past the scan budget: the server must answer one error
// frame, close the connection, and record the quarantine.
func TestWireGarbageQuarantinesSession(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(41))
	srv := newTestServer(t, w.Ribs, 1)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := bytes.Repeat([]byte{0x33}, maxFrameScan+4096)
	if _, err := conn.Write(junk); err != nil {
		t.Fatalf("garbage write: %v", err)
	}
	// The server answers with a final error frame then closes.
	var fp FrameParser
	rbuf := make([]byte, 4096)
	for {
		fr, ok, perr := fp.Next()
		if perr != nil {
			t.Fatalf("client parser: %v", perr)
		}
		if ok {
			if fr.Type != FrameError {
				t.Fatalf("want FrameError, got type %d", fr.Type)
			}
			break
		}
		n, rerr := conn.Read(rbuf)
		if n > 0 {
			fp.Feed(rbuf[:n])
			continue
		}
		if rerr != nil {
			t.Fatalf("connection closed before the error frame: %v", rerr)
		}
	}
	found := false
	for _, q := range srv.Quarantined() {
		if strings.Contains(q, "frame desync") {
			found = true
		}
	}
	if !found {
		t.Fatalf("desync not in the quarantine ledger: %v", srv.Quarantined())
	}
}

// TestEmptyStreamDrain opens a session, sends nothing, and drains: the
// daemon must ack a zero-byte stream cleanly.
func TestEmptyStreamDrain(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(42))
	srv := newTestServer(t, w.Ribs, 1)
	c, err := Dial(srv.Addr(), "rrc00")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Drain(); err != nil {
		t.Fatalf("empty drain: %v", err)
	}
	if c.Acked() != 0 || c.Sent() != 0 {
		t.Fatalf("empty stream moved offsets: acked=%d sent=%d", c.Acked(), c.Sent())
	}
}
