package atomd

import (
	"bytes"
	"errors"
	"testing"
)

// feedAll parses every complete frame currently buffered, failing the
// test on parser error.
func feedAll(t *testing.T, fp *FrameParser) []Frame {
	t.Helper()
	var out []Frame
	for {
		fr, ok, err := fp.Next()
		if err != nil {
			t.Fatalf("parser error: %v", err)
		}
		if !ok {
			return out
		}
		// Copy: the payload aliases the parse buffer.
		fr.Payload = append([]byte(nil), fr.Payload...)
		out = append(out, fr)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, FrameHello, 42, []byte("rrc00"))
	buf = AppendFrameFlags(buf, FrameAck, FlagDrained, 99, nil)
	buf = AppendFrame(buf, FrameData, 7, bytes.Repeat([]byte{0xAB}, 300))

	var fp FrameParser
	fp.Feed(buf)
	frs := feedAll(t, &fp)
	if len(frs) != 3 {
		t.Fatalf("parsed %d frames, want 3", len(frs))
	}
	if frs[0].Type != FrameHello || frs[0].Seq != 42 || string(frs[0].Payload) != "rrc00" {
		t.Fatalf("hello mangled: %+v", frs[0])
	}
	if frs[1].Type != FrameAck || frs[1].Flags != FlagDrained || frs[1].Seq != 99 || len(frs[1].Payload) != 0 {
		t.Fatalf("flagged ack mangled: %+v", frs[1])
	}
	if frs[2].Type != FrameData || frs[2].Seq != 7 || len(frs[2].Payload) != 300 {
		t.Fatalf("data mangled: type=%d seq=%d len=%d", frs[2].Type, frs[2].Seq, len(frs[2].Payload))
	}
	if fp.Skipped() != 0 {
		t.Fatalf("clean stream skipped %d bytes", fp.Skipped())
	}
}

// TestFrameParserSplitFeeds delivers an encoded stream one byte at a
// time: every frame must still come out intact, with no byte counted
// as garbage.
func TestFrameParserSplitFeeds(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendFrame(buf, FrameData, uint64(i*100), bytes.Repeat([]byte{byte(i)}, i*17))
	}
	var fp FrameParser
	var got []Frame
	for i := range buf {
		fp.Feed(buf[i : i+1])
		got = append(got, feedAll(t, &fp)...)
	}
	if len(got) != 10 {
		t.Fatalf("parsed %d frames, want 10", len(got))
	}
	for i, fr := range got {
		if fr.Seq != uint64(i*100) || len(fr.Payload) != i*17 {
			t.Fatalf("frame %d mangled under byte-at-a-time feed: seq=%d len=%d", i, fr.Seq, len(fr.Payload))
		}
	}
	if fp.Skipped() != 0 {
		t.Fatalf("split feed skipped %d bytes", fp.Skipped())
	}
}

// TestFrameParserGarbageResync interleaves garbage between valid
// frames — including bytes that contain the magic followed by an
// implausible header — and checks the parser scans past it all.
func TestFrameParserGarbageResync(t *testing.T) {
	var buf []byte
	buf = append(buf, 0x00, 0xFF, magic0) // trailing half-magic then more garbage
	buf = append(buf, 0x01, 0x02, 0x03)
	buf = AppendFrame(buf, FrameAck, 1, nil)
	// A fake magic with type 0 (implausible): must be skipped, not parsed.
	buf = append(buf, magic0, magic1, 0x00, 0x00)
	// A fake magic claiming an absurd payload length.
	buf = append(buf, magic0, magic1, FrameData, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF)
	buf = AppendFrame(buf, FrameAck, 2, []byte("x"))

	var fp FrameParser
	fp.Feed(buf)
	frs := feedAll(t, &fp)
	if len(frs) != 2 || frs[0].Seq != 1 || frs[1].Seq != 2 {
		t.Fatalf("resync failed: got %+v", frs)
	}
	if fp.Skipped() == 0 {
		t.Fatal("garbage stream reported zero skipped bytes")
	}
}

// TestFrameParserDesyncBudget feeds pure garbage past the scan budget:
// the parser must return sticky ErrDesync, never spin or panic.
func TestFrameParserDesyncBudget(t *testing.T) {
	var fp FrameParser
	junk := bytes.Repeat([]byte{0x55}, 64<<10)
	var lastErr error
	for i := 0; i < 32 && lastErr == nil; i++ {
		fp.Feed(junk)
		_, ok, err := fp.Next()
		if ok {
			t.Fatal("parsed a frame out of pure garbage")
		}
		lastErr = err
	}
	if !errors.Is(lastErr, ErrDesync) {
		t.Fatalf("scan budget never tripped: err=%v", lastErr)
	}
	// Sticky: every subsequent call keeps failing.
	if _, _, err := fp.Next(); !errors.Is(err, ErrDesync) {
		t.Fatalf("desync not sticky: %v", err)
	}
}

// TestFrameParserTruncatedFrame holds back the final payload byte:
// Next must report "need more", then complete once the byte arrives.
func TestFrameParserTruncatedFrame(t *testing.T) {
	full := AppendFrame(nil, FrameData, 5, []byte("hello world"))
	var fp FrameParser
	fp.Feed(full[:len(full)-1])
	if _, ok, err := fp.Next(); ok || err != nil {
		t.Fatalf("truncated frame parsed early: ok=%v err=%v", ok, err)
	}
	fp.Feed(full[len(full)-1:])
	fr, ok, err := fp.Next()
	if !ok || err != nil {
		t.Fatalf("completed frame did not parse: ok=%v err=%v", ok, err)
	}
	if string(fr.Payload) != "hello world" {
		t.Fatalf("payload mangled: %q", fr.Payload)
	}
}
