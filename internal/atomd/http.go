// The HTTP query surface, mounted on the obs.DebugServer mux via
// RegisterHTTP (cli.Obs.ExtraMux plumbs it through -listen):
//
//	/atoms/epoch        current generation, atom and prefix counts
//	/atoms/sameatom     ?p=&q=   do two prefix rows share an atom
//	/atoms/membercount  ?p=      size of a row's atom
//	/atoms/prefix       ?prefix= row, canonical atom, size for a prefix
//	/atoms/snapshot     [?workers=] materialized dump (canonical text)
//	/atoms/ingest       per-source ingest ledger and quarantines
//
// JSON documents are rendered from structs so field order — and
// therefore the golden e2e fixture — is stable.
package atomd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"strconv"

	"repro/internal/aspath"
	"repro/internal/core"
)

// RegisterHTTP mounts the /atoms endpoints on mux.
func (srv *Server) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/atoms/epoch", srv.handleEpoch)
	mux.HandleFunc("/atoms/sameatom", srv.handleSameAtom)
	mux.HandleFunc("/atoms/membercount", srv.handleMemberCount)
	mux.HandleFunc("/atoms/prefix", srv.handlePrefix)
	mux.HandleFunc("/atoms/snapshot", srv.handleSnapshot)
	mux.HandleFunc("/atoms/ingest", srv.handleIngest)
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// rowParam parses a prefix-row query parameter, replying 400 itself on
// failure.
func rowParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad %q: want a prefix row index", name), http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

func (srv *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	start := srv.obsStart()
	doc := struct {
		Epoch    uint64 `json:"epoch"`
		Atoms    int    `json:"atoms"`
		Prefixes int    `json:"prefixes"`
	}{srv.Epoch(), srv.AtomCount(), srv.PrefixCount()}
	srv.obsQuery("epoch", start)
	writeJSON(w, doc)
}

func (srv *Server) handleSameAtom(w http.ResponseWriter, r *http.Request) {
	p, ok := rowParam(w, r, "p")
	if !ok {
		return
	}
	q, ok := rowParam(w, r, "q")
	if !ok {
		return
	}
	start := srv.obsStart()
	doc := struct {
		Epoch uint64 `json:"epoch"`
		P     int    `json:"p"`
		Q     int    `json:"q"`
		Same  bool   `json:"same"`
	}{srv.Epoch(), p, q, srv.SameAtom(p, q)}
	srv.obsQuery("sameatom", start)
	writeJSON(w, doc)
}

func (srv *Server) handleMemberCount(w http.ResponseWriter, r *http.Request) {
	p, ok := rowParam(w, r, "p")
	if !ok {
		return
	}
	start := srv.obsStart()
	doc := struct {
		Epoch uint64 `json:"epoch"`
		P     int    `json:"p"`
		Count int    `json:"count"`
	}{srv.Epoch(), p, srv.MemberCount(p)}
	srv.obsQuery("membercount", start)
	writeJSON(w, doc)
}

func (srv *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	pfx, err := netip.ParsePrefix(r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, "bad \"prefix\": want CIDR notation", http.StatusBadRequest)
		return
	}
	start := srv.obsStart()
	doc := struct {
		Epoch  uint64 `json:"epoch"`
		Prefix string `json:"prefix"`
		Row    int    `json:"row"`
		Atom   int32  `json:"atom"`
		Count  int    `json:"count"`
	}{Epoch: srv.Epoch(), Prefix: pfx.String(), Row: -1, Atom: -1}
	if row, found := srv.mapper.PrefixRow(pfx); found {
		doc.Row = row
		doc.Atom = srv.PrefixAtom(row)
		doc.Count = srv.MemberCount(row)
	}
	srv.obsQuery("prefixatom", start)
	writeJSON(w, doc)
}

func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	workers := srv.cfg.Workers
	if s := r.URL.Query().Get("workers"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad \"workers\"", http.StatusBadRequest)
			return
		}
		workers = n
	}
	start := srv.obsStart()
	as := srv.MaterializeAtoms(workers)
	srv.obsQuery("snapshot", start)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(RenderAtoms(as))
}

func (srv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	type sourceDoc struct {
		Collector string `json:"collector"`
		Sessions  int    `json:"sessions"`
		Bytes     uint64 `json:"bytes"`
		Elems     int    `json:"elems"`
		Updates   int    `json:"updates"`
		Applied   int    `json:"applied"`
		NoOps     int    `json:"noops"`
		Skipped   int    `json:"skipped"`
	}
	stats := srv.IngestStats()
	doc := struct {
		Sources     []sourceDoc `json:"sources"`
		Quarantined []string    `json:"quarantined"`
	}{Sources: []sourceDoc{}, Quarantined: srv.Quarantined()}
	for _, st := range stats {
		doc.Sources = append(doc.Sources, sourceDoc{
			Collector: st.Collector, Sessions: st.Sessions, Bytes: st.Bytes,
			Elems: st.Elems, Updates: st.Updates, Applied: st.Applied,
			NoOps: st.NoOps, Skipped: st.Skipped,
		})
	}
	if doc.Quarantined == nil {
		doc.Quarantined = []string{}
	}
	writeJSON(w, doc)
}

// RenderAtoms renders an AtomSet as canonical text: one line per atom
// with its size, origin, MOAS flag, member prefixes, and the shared
// vector resolved to AS-path strings. Two AtomSets render identically
// iff they describe the same partition and vectors, independent of
// intern-table ID assignment — the byte-for-byte currency of the
// daemon-vs-batch differential and the golden fixture.
func RenderAtoms(as *core.AtomSet) []byte {
	var out []byte
	out = fmt.Appendf(out, "atoms %d prefixes %d vps %d\n",
		len(as.Atoms), len(as.Snap.Prefixes), len(as.Snap.VPs))
	for i := range as.Atoms {
		a := &as.Atoms[i]
		out = fmt.Appendf(out, "atom %d size %d origin %d moas %v\n", a.ID, a.Size(), a.Origin, a.MOASConflict)
		out = append(out, "  prefixes"...)
		for _, p := range a.Prefixes {
			out = fmt.Appendf(out, " %s", as.Snap.Prefixes[p])
		}
		out = append(out, '\n')
		out = append(out, "  vector"...)
		for _, id := range a.Vector {
			out = append(out, ' ')
			out = appendPath(out, as, id)
		}
		out = append(out, '\n')
	}
	return out
}

// appendPath renders one interned path as dash-joined AS hops ("-" for
// the empty path), resolved through the snapshot's intern table so the
// rendering is ID-assignment-independent.
func appendPath(out []byte, as *core.AtomSet, id aspath.ID) []byte {
	if id == aspath.Empty {
		return append(out, '-')
	}
	seq := as.Snap.Paths.Seq(id)
	for i, hop := range seq {
		if i > 0 {
			out = append(out, '-')
		}
		out = strconv.AppendUint(out, uint64(hop), 10)
	}
	return out
}
