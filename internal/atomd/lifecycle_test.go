// Lifecycle differentials: Shutdown mid-ingest must join every daemon
// goroutine (no leaks, no deadlocks, runs under -race in verify.sh),
// queries must keep answering through and after the drain, and a
// restarted daemon re-fed the same streams must converge to the batch
// partition.
package atomd

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultgen/harness"
)

// waitGoroutines polls until the process goroutine count drops back to
// at most want, failing after a generous deadline.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%d goroutines still live (want <= %d):\n%s", n, want, buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownMidIngestJoinsEverything slams Shutdown into the middle
// of live sessions: Shutdown must return (closing the conns unblocks
// every session read), every daemon goroutine must join, and the
// post-shutdown index must still answer materialization directly.
func TestShutdownMidIngestJoinsEverything(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(31))
	baseline := runtime.NumGoroutine()

	srv, err := NewServer(Config{Snapshot: buildSnap(t, w.Ribs), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Clients push chunks in a loop until their conns die under them.
	// Errors are the expected outcome here; the test only demands that
	// everything unwinds.
	var wg sync.WaitGroup
	started := make(chan struct{}, len(w.Upds))
	for _, name := range sortedNames(w.Upds) {
		name := name
		data := w.Upds[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), name)
			if err != nil {
				started <- struct{}{}
				return
			}
			defer c.Close()
			started <- struct{}{}
			const chunk = 2 << 10
			for {
				for off := 0; off < len(data); off += chunk {
					end := min(off+chunk, len(data))
					if c.Send(data[off:end]) != nil {
						return
					}
				}
				// Keep the session alive but idle once the archive is
				// exhausted; Shutdown will close the conn under us.
				if _, err := c.readResponse(); err != nil {
					return
				}
			}
		}()
	}
	for range w.Upds {
		<-started
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	// The index is quiescent now: the direct (post-shutdown) paths must
	// work and agree with each other.
	as := srv.MaterializeAtoms(1)
	if len(as.Atoms) == 0 {
		t.Fatal("post-shutdown materialization is empty")
	}
	if srv.AtomCount() != len(as.Atoms) {
		t.Fatalf("view says %d atoms, materialization says %d", srv.AtomCount(), len(as.Atoms))
	}
	_ = srv.DeltaStats() // must not deadlock

	// Second Shutdown is an idempotent no-op.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	waitGoroutines(t, baseline+2)
}

// TestShutdownQuiescentServer covers the boring-but-mandatory path: a
// server that never saw a connection shuts down cleanly.
func TestShutdownQuiescentServer(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(32))
	baseline := runtime.NumGoroutine()
	srv, err := NewServer(Config{Snapshot: buildSnap(t, w.Ribs)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutines(t, baseline+2)
}

// TestRestartConverges kills a daemon mid-ingest, boots a fresh one
// from the same RIBs, replays the full streams, and demands the batch
// partition — the operational restart story end to end.
func TestRestartConverges(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(33))

	// First incarnation: partial ingest, no drain, hard shutdown.
	srv1 := newTestServer(t, w.Ribs, 1)
	for _, name := range sortedNames(w.Upds) {
		data := w.Upds[name]
		c, err := Dial(srv1.Addr(), name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(data[:recordCut(data, len(data)/3)]); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if err := srv1.Shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Second incarnation: fresh state from the same RIBs, full replay.
	got := daemonAtoms(t, w.Ribs, w.Upds, 1)
	bat := batchAtoms(t, w.Ribs, w.Upds, 1)
	if !bytes.Equal(got, bat) {
		t.Fatalf("restarted daemon diverges from batch at byte %d", diffIndex(got, bat))
	}
}

// TestConcurrentQueriesDuringIngest hammers the published view — the
// in-process hot path and a TCP query client — while live sessions
// ingest, then checks a post-drain materialization matches batch. The
// -race run of this package makes this the epoch/RCU seam's data-race
// proof.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(34))
	srv := newTestServer(t, w.Ribs, 1)
	n := srv.PrefixCount()
	if n == 0 {
		t.Fatal("empty universe")
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func(g int) {
			defer qwg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, q := i%n, (i*7+1)%n
				same := srv.SameAtom(p, q)
				if p == q && !same {
					t.Errorf("SameAtom(%d,%d) = false for identical rows", p, q)
					return
				}
				if srv.MemberCount(p) <= 0 {
					t.Errorf("MemberCount(%d) <= 0 for an in-range row", p)
					return
				}
				if srv.PrefixAtom(p) < 0 {
					t.Errorf("PrefixAtom(%d) < 0 for an in-range row", p)
					return
				}
				i++
			}
		}(g)
	}
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		qc, err := DialQuery(srv.QueryAddr())
		if err != nil {
			t.Errorf("dial query: %v", err)
			return
		}
		defer qc.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, _, err := qc.Epoch(); err != nil {
				t.Errorf("epoch query: %v", err)
				return
			}
			if _, _, err := qc.SameAtom(i%n, (i+1)%n); err != nil {
				t.Errorf("sameatom query: %v", err)
				return
			}
		}
	}()

	ingestConcurrent(t, srv, w.Upds)
	close(stop)
	qwg.Wait()

	got := RenderAtoms(srv.MaterializeAtoms(1))
	bat := batchAtoms(t, w.Ribs, w.Upds, 1)
	if !bytes.Equal(got, bat) {
		t.Fatalf("partition under concurrent queries diverges from batch at byte %d", diffIndex(got, bat))
	}
}
