//go:build !race

package atomd

// raceEnabled mirrors the -race build flag: the zero-alloc query-path
// pin only holds without race instrumentation (see alloc_test.go).
const raceEnabled = false
