// HTTP surface and binary query-port error paths: every /atoms
// endpoint answers well-formed JSON (or canonical snapshot text), bad
// parameters get 400s, and malformed binary queries get FrameError
// replies without killing the connection.
package atomd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/faultgen/harness"
)

// httpServer boots a daemon and mounts its HTTP surface on a test mux.
func httpServer(t *testing.T, seed uint64) (*Server, *httptest.Server) {
	t.Helper()
	w := harness.BuildWorld(harness.DefaultConfig(seed))
	srv := newTestServer(t, w.Ribs, 1)
	mux := http.NewServeMux()
	srv.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return srv, ts
}

// getJSON fetches url and decodes the body into out, failing on any
// non-200.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content-type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestHTTPEndpoints(t *testing.T) {
	srv, ts := httpServer(t, 51)

	var epoch struct {
		Epoch    uint64 `json:"epoch"`
		Atoms    int    `json:"atoms"`
		Prefixes int    `json:"prefixes"`
	}
	getJSON(t, ts.URL+"/atoms/epoch", &epoch)
	if epoch.Atoms != srv.AtomCount() || epoch.Prefixes != srv.PrefixCount() {
		t.Fatalf("epoch doc %+v disagrees with server (%d atoms, %d prefixes)",
			epoch, srv.AtomCount(), srv.PrefixCount())
	}

	var same struct {
		P, Q int
		Same bool `json:"same"`
	}
	getJSON(t, ts.URL+"/atoms/sameatom?p=0&q=0", &same)
	if !same.Same {
		t.Fatal("sameatom(0,0) = false")
	}

	var mc struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/atoms/membercount?p=0", &mc)
	if mc.Count != srv.MemberCount(0) {
		t.Fatalf("membercount doc %d != server %d", mc.Count, srv.MemberCount(0))
	}

	// A prefix from the serving universe resolves; one outside answers
	// row -1 with a 200 (absence is an answer, not an error).
	known := srv.snap.Prefixes[0]
	var pd struct {
		Row   int   `json:"row"`
		Atom  int32 `json:"atom"`
		Count int   `json:"count"`
	}
	getJSON(t, ts.URL+"/atoms/prefix?prefix="+known.String(), &pd)
	if pd.Row != 0 || pd.Atom < 0 || pd.Count < 1 {
		t.Fatalf("known prefix %s answered %+v", known, pd)
	}
	getJSON(t, ts.URL+"/atoms/prefix?prefix=255.255.255.255/32", &pd)
	if pd.Row != -1 || pd.Atom != -1 || pd.Count != 0 {
		t.Fatalf("unknown prefix answered %+v, want row=-1 atom=-1 count=0", pd)
	}

	// Snapshot text equals an in-process materialization.
	resp, err := http.Get(ts.URL + "/atoms/snapshot?workers=1")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 0, 1<<20)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	want := RenderAtoms(srv.MaterializeAtoms(1))
	if string(body) != string(want) {
		t.Fatalf("snapshot body diverges from MaterializeAtoms at byte %d", diffIndex(body, want))
	}

	// Ingest ledger renders empty slices, never null (golden stability).
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/atoms/ingest", &raw)
	for _, key := range []string{"sources", "quarantined"} {
		if string(raw[key]) == "null" {
			t.Fatalf("/atoms/ingest %q is null, want []", key)
		}
	}
}

func TestHTTPBadParams(t *testing.T) {
	_, ts := httpServer(t, 52)
	for _, path := range []string{
		"/atoms/sameatom",               // missing p and q
		"/atoms/sameatom?p=0&q=banana",  // non-numeric
		"/atoms/membercount?p=",         // empty
		"/atoms/prefix?prefix=not-cidr", // unparseable
		"/atoms/snapshot?workers=-1",    // negative
		"/atoms/snapshot?workers=x",     // non-numeric
	} {
		if code := getStatus(t, ts.URL+path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

// TestHTTPOutOfRangeRows pins the hot-path contract for absurd row
// indices: definitive negative answers, no panic, no 500.
func TestHTTPOutOfRangeRows(t *testing.T) {
	srv, ts := httpServer(t, 53)
	n := srv.PrefixCount()
	var same struct {
		Same bool `json:"same"`
	}
	getJSON(t, ts.URL+"/atoms/sameatom?p=-1&q=0", &same)
	if same.Same {
		t.Fatal("sameatom(-1,0) = true")
	}
	var mc struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/atoms/membercount?p=1000000000", &mc)
	if mc.Count != 0 {
		t.Fatalf("membercount(1e9) = %d, want 0", mc.Count)
	}
	if srv.SameAtom(n, 0) || srv.SameAtom(0, -5) || srv.PrefixAtom(n) != -1 || srv.MemberCount(-1) != 0 {
		t.Fatal("in-process out-of-range queries not definitively negative")
	}
}

// TestQueryPortErrors sends malformed binary requests: each must get a
// FrameError reply (surfaced as a Go error by the client) and leave
// the connection serviceable for the next request.
func TestQueryPortErrors(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(54))
	srv := newTestServer(t, w.Ribs, 1)
	qc, err := DialQuery(srv.QueryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	cases := []struct {
		name    string
		typ     byte
		payload []byte
		want    string
	}{
		{"sameatom short", FrameSameAtom, []byte{1, 2, 3}, "8-byte payload"},
		{"membercount long", FrameMemberCount, make([]byte, 9), "4-byte payload"},
		{"prefixatom empty", FramePrefixAtom, nil, "4 or 16 addr bytes"},
		{"prefixatom bad addr len", FramePrefixAtom, make([]byte, 9), "4 or 16 addr bytes"},
		{"prefixatom bad bits", FramePrefixAtom, append([]byte{99}, make([]byte, 4)...), "bad bit count"},
		{"foreign opcode", FrameData, []byte("hello"), "unknown query opcode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := qc.Do(tc.typ, tc.payload)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
			// The connection survives: a well-formed query still answers.
			if _, _, _, err := qc.Epoch(); err != nil {
				t.Fatalf("connection dead after error reply: %v", err)
			}
		})
	}
}

// TestQueryPortPrefixAtom exercises the binary prefix lookup: a known
// v4 prefix resolves consistently with the in-process path, an unknown
// one answers the sentinel triple, and a v6 lookup on a v4 universe is
// a clean miss.
func TestQueryPortPrefixAtom(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(55))
	srv := newTestServer(t, w.Ribs, 1)
	qc, err := DialQuery(srv.QueryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	known := srv.snap.Prefixes[0]
	row, atom, count, _, err := qc.PrefixAtom(known)
	if err != nil {
		t.Fatal(err)
	}
	if row != 0 || atom != srv.PrefixAtom(0) || count != srv.MemberCount(0) {
		t.Fatalf("binary prefixatom(%s) = (%d,%d,%d), in-process = (0,%d,%d)",
			known, row, atom, count, srv.PrefixAtom(0), srv.MemberCount(0))
	}

	for _, miss := range []string{"255.255.255.255/32", "2001:db8::/32"} {
		row, atom, count, _, err := qc.PrefixAtom(netip.MustParsePrefix(miss))
		if err != nil {
			t.Fatalf("miss %s: %v", miss, err)
		}
		if row != -1 || atom != -1 || count != 0 {
			t.Fatalf("miss %s answered (%d,%d,%d), want (-1,-1,0)", miss, row, atom, count)
		}
	}
}
