// The ingest wire state machine, separated from the network so
// FuzzIngestFrame can drive it with arbitrary frames and no sockets:
// sequence tracking, duplicate suppression, gap NAKs with a bounded
// rewind budget, and quarantine. The session glue in session.go owns
// the conn and the decode pipeline; this type owns the protocol.
package atomd

import (
	"fmt"
	"io"
)

// maxNaks bounds the rewinds one session may demand before the server
// quarantines it — the wire-level analogue of bgpstream's
// per-source resync budget, and the same bound (8).
const maxNaks = 8

// ingestState is one ingest session's protocol state. The zero value
// is a fresh session awaiting its hello.
type ingestState struct {
	helloSeen   bool
	collector   string
	acked       uint64 // contiguous payload bytes accepted (stream offset)
	naks        int
	eof         bool
	quarantined bool
	reason      string // why the session quarantined, "" while healthy
}

// frameResult tells the session glue what HandleFrame decided.
type frameResult struct {
	// resp is the encoded response to write to the peer (may be empty).
	resp []byte
	// drained is set when the frame was a clean EOF: the glue must
	// drain the decode pipeline, then send respondDrained.
	drained bool
	// closed is set when the session is over (quarantine or EOF): the
	// glue should stop reading frames after flushing resp.
	closed bool
}

// HandleFrame applies one decoded frame: accepted DATA payload bytes
// are written to w (the decode pipe) and the response frame is
// appended to resp's storage. Never panics on any frame — malformed
// protocol either elicits a NAK within budget or quarantines.
func (s *ingestState) handleFrame(fr Frame, w io.Writer, resp []byte) (frameResult, error) {
	if s.quarantined {
		return frameResult{resp: resp, closed: true}, nil
	}
	switch fr.Type {
	case FrameHello:
		if s.helloSeen {
			return s.quarantine(resp, "duplicate hello")
		}
		if len(fr.Payload) == 0 || len(fr.Payload) > 255 {
			return s.quarantine(resp, "hello: collector name empty or over 255 bytes")
		}
		s.helloSeen = true
		s.collector = string(fr.Payload)
		// A resume: the client restarts the stream at the offset the
		// previous incarnation acked; bytes before it are already in
		// the daemon's matrix (re-applying a suffix is idempotent, so
		// over-acking by the client is the only unsafe direction).
		s.acked = fr.Seq
		return frameResult{resp: AppendFrame(resp, FrameAck, s.acked, nil)}, nil

	case FrameData:
		if !s.helloSeen {
			return s.quarantine(resp, "data before hello")
		}
		if s.eof {
			return s.quarantine(resp, "data after eof")
		}
		end := fr.Seq + uint64(len(fr.Payload))
		if end < fr.Seq {
			return s.quarantine(resp, "data: offset overflow")
		}
		switch {
		case fr.Seq > s.acked:
			// Gap: a frame went missing (or arrived damaged and was
			// scanned past). Ask for a rewind, within budget.
			s.naks++
			if s.naks > maxNaks {
				return s.quarantine(resp, fmt.Sprintf("nak budget exhausted (%d rewinds)", maxNaks))
			}
			return frameResult{resp: AppendFrame(resp, FrameNak, s.acked, nil)}, nil
		case end <= s.acked:
			// Pure duplicate (retransmission overshoot): drop, re-ack.
			return frameResult{resp: AppendFrame(resp, FrameAck, s.acked, nil)}, nil
		default:
			// Accept the unseen tail; an overlapping head was already
			// written to the pipe and must not be decoded twice.
			if _, err := w.Write(fr.Payload[s.acked-fr.Seq:]); err != nil {
				return frameResult{resp: resp}, err
			}
			s.acked = end
			return frameResult{resp: AppendFrame(resp, FrameAck, s.acked, nil)}, nil
		}

	case FrameEOF:
		if !s.helloSeen {
			return s.quarantine(resp, "eof before hello")
		}
		if fr.Seq != s.acked {
			// The client thinks it sent more (or less) than we accepted:
			// tell it where we are so it can retransmit and re-EOF.
			s.naks++
			if s.naks > maxNaks {
				return s.quarantine(resp, fmt.Sprintf("nak budget exhausted (%d rewinds)", maxNaks))
			}
			return frameResult{resp: AppendFrame(resp, FrameNak, s.acked, nil)}, nil
		}
		s.eof = true
		return frameResult{resp: resp, drained: true, closed: true}, nil

	default:
		// Foreign frame type on the ingest port (a query opcode, say):
		// answer with an error frame and carry on — harmless confusion,
		// not stream damage.
		return frameResult{resp: AppendFrameFlags(resp, FrameError, 0, fr.Seq, []byte("unexpected frame type on ingest port"))}, nil
	}
}

// respondDrained encodes the FlagDrained ack that answers a clean EOF
// after the decode pipeline has fully drained.
func (s *ingestState) respondDrained(resp []byte) []byte {
	return AppendFrameFlags(resp, FrameAck, FlagDrained, s.acked, nil)
}

// quarantine marks the session unrecoverable and encodes the final
// error frame. The session glue closes the connection after flushing.
func (s *ingestState) quarantine(resp []byte, reason string) (frameResult, error) {
	s.quarantined = true
	s.reason = reason
	return frameResult{
		resp:   AppendFrameFlags(resp, FrameError, 0, s.acked, []byte(reason)),
		closed: true,
	}, nil
}
