// The epoch/RCU query seam: the apply goroutine owns the mutable
// core.AtomIndex and, after each applied delta batch, publishes a
// freshly built core.Partition (canonical numbering, shares no storage
// with the index) behind an atomic pointer. Readers load the pointer
// and index flat arrays — no locks, no allocation, never blocked by
// ingest — and every answer is tagged with the epoch it came from, so
// two point queries can be recognized as same-generation or not.
package atomd

import "repro/internal/core"

// view is one published generation of the partition.
type view struct {
	epoch uint64
	part  *core.Partition
}

// SameAtom reports whether prefix rows p and q share an atom in the
// current published generation. Out-of-range rows never panic; they
// simply share nothing.
//
//atomlint:hotpath
func (srv *Server) SameAtom(p, q int) bool {
	v := srv.view.Load()
	bp := v.part.ByPrefix
	if p < 0 || q < 0 || p >= len(bp) || q >= len(bp) {
		return false
	}
	return bp[p] == bp[q]
}

// MemberCount returns the size of prefix row p's atom in the current
// published generation (0 for out-of-range rows).
//
//atomlint:hotpath
func (srv *Server) MemberCount(p int) int {
	v := srv.view.Load()
	bp := v.part.ByPrefix
	if p < 0 || p >= len(bp) {
		return 0
	}
	return int(v.part.Counts[bp[p]])
}

// PrefixAtom returns prefix row p's canonical atom ID in the current
// published generation, or -1 for out-of-range rows. Canonical IDs are
// the batch ComputeAtoms numbering, so they line up with a Materialize
// taken at the same epoch.
//
//atomlint:hotpath
func (srv *Server) PrefixAtom(p int) int32 {
	v := srv.view.Load()
	bp := v.part.ByPrefix
	if p < 0 || p >= len(bp) {
		return -1
	}
	return bp[p]
}

// Epoch returns the current published generation number. Epoch 0 is
// the bootstrap partition (the RIB snapshot before any ingest); each
// applied delta batch advances it by one.
func (srv *Server) Epoch() uint64 {
	return srv.view.Load().epoch
}

// AtomCount returns the number of atoms in the current published
// generation.
func (srv *Server) AtomCount() int {
	return len(srv.view.Load().part.Counts)
}

// PrefixCount returns the size of the serving universe (fixed at
// bootstrap: the snapshot's admitted prefix rows).
func (srv *Server) PrefixCount() int {
	return len(srv.view.Load().part.ByPrefix)
}
