// The binary query port: the same frame format as ingest, carrying
// query opcodes. Requests are answered in order on the same
// connection; seq is an opaque request ID echoed back on the reply.
// Malformed requests get FrameError replies; frame-level garbage is
// scanned past and a desynchronized connection is dropped, exactly as
// on the ingest port.
//
// Reply payloads (big-endian):
//
//	FrameEpoch       epoch u64 | atoms u32 | prefixes u32
//	FrameSameAtom    epoch u64 | same u8
//	FrameMemberCount epoch u64 | count u32
//	FramePrefixAtom  epoch u64 | row i32 | atom i32 | count u32
//
// FramePrefixAtom requests encode the prefix as bits u8 | addr bytes
// (4 for v4, 16 for v6); a prefix outside the serving universe answers
// row=-1, atom=-1, count=0.
package atomd

import (
	"encoding/binary"
	"net"
	"net/netip"
)

// serveQuery handles one query connection until it closes.
func (srv *Server) serveQuery(conn net.Conn) {
	defer conn.Close()
	var (
		fp   FrameParser
		rbuf = make([]byte, 16<<10)
		resp []byte
	)
	for {
		n, err := conn.Read(rbuf)
		if n > 0 {
			fp.Feed(rbuf[:n])
			resp = resp[:0]
			for {
				fr, ok, perr := fp.Next()
				if perr != nil {
					resp = AppendFrameFlags(resp, FrameError, 0, 0, []byte(perr.Error()))
					conn.Write(resp)
					return
				}
				if !ok {
					break
				}
				resp = srv.answer(fr, resp)
			}
			if len(resp) > 0 {
				if _, werr := conn.Write(resp); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// answer appends the reply frame for one query request.
func (srv *Server) answer(fr Frame, resp []byte) []byte {
	fail := func(msg string) []byte {
		return AppendFrameFlags(resp, FrameError, 0, fr.Seq, []byte(msg))
	}
	v := srv.view.Load()
	var payload [24]byte
	binary.BigEndian.PutUint64(payload[:8], v.epoch)
	switch fr.Type {
	case FrameEpoch:
		start := srv.obsStart()
		binary.BigEndian.PutUint32(payload[8:12], uint32(len(v.part.Counts)))
		binary.BigEndian.PutUint32(payload[12:16], uint32(len(v.part.ByPrefix)))
		srv.obsQuery("epoch", start)
		return AppendFrame(resp, FrameReply, fr.Seq, payload[:16])
	case FrameSameAtom:
		if len(fr.Payload) != 8 {
			return fail("sameatom: want 8-byte payload (p u32, q u32)")
		}
		start := srv.obsStart()
		p := int(binary.BigEndian.Uint32(fr.Payload[:4]))
		q := int(binary.BigEndian.Uint32(fr.Payload[4:8]))
		var same byte
		if srv.SameAtom(p, q) {
			same = 1
		}
		payload[8] = same
		srv.obsQuery("sameatom", start)
		return AppendFrame(resp, FrameReply, fr.Seq, payload[:9])
	case FrameMemberCount:
		if len(fr.Payload) != 4 {
			return fail("membercount: want 4-byte payload (p u32)")
		}
		start := srv.obsStart()
		p := int(binary.BigEndian.Uint32(fr.Payload[:4]))
		binary.BigEndian.PutUint32(payload[8:12], uint32(srv.MemberCount(p)))
		srv.obsQuery("membercount", start)
		return AppendFrame(resp, FrameReply, fr.Seq, payload[:12])
	case FramePrefixAtom:
		if len(fr.Payload) != 5 && len(fr.Payload) != 17 {
			return fail("prefixatom: want bits u8 + 4 or 16 addr bytes")
		}
		start := srv.obsStart()
		addr, ok := netip.AddrFromSlice(fr.Payload[1:])
		if !ok {
			return fail("prefixatom: bad address")
		}
		pfx, err := addr.Prefix(int(fr.Payload[0]))
		if err != nil {
			return fail("prefixatom: bad bit count")
		}
		row := int32(-1)
		atom := int32(-1)
		var count uint32
		if r, found := srv.mapper.PrefixRow(pfx); found {
			row = int32(r)
			atom = srv.PrefixAtom(r)
			count = uint32(srv.MemberCount(r))
		}
		binary.BigEndian.PutUint32(payload[8:12], uint32(row))
		binary.BigEndian.PutUint32(payload[12:16], uint32(atom))
		binary.BigEndian.PutUint32(payload[16:20], count)
		srv.obsQuery("prefixatom", start)
		return AppendFrame(resp, FrameReply, fr.Seq, payload[:20])
	default:
		return fail("unknown query opcode")
	}
}
