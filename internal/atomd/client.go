// Client streams one collector's update bytes into an atomd ingest
// session. Payload is framed record-aligned wherever the archive
// parses (so acked offsets land on record boundaries, which is what
// makes resume-after-restart decode from a clean record start) and in
// fixed raw chunks where it does not (damaged archives still arrive
// byte-exact; the server's batch decoder handles the damage). A NAK
// rewinds the send cursor; Drain flushes everything, sends EOF, and
// waits for the server's drained ack — the applied barrier.
package atomd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"

	"repro/internal/mrt"
)

// rawChunk is the frame payload size used for bytes that do not parse
// as an MRT record.
const rawChunk = 4096

// clientWindow bounds frames in flight before the client reads a
// response; server responses are 16 bytes each, so the response
// backlog can never fill a socket buffer and deadlock the pair.
const clientWindow = 32

// Client is one ingest session. Not safe for concurrent use.
type Client struct {
	conn      net.Conn
	fp        FrameParser
	collector string

	base        uint64 // stream offset of data[0] (resume point)
	data        []byte // payload retained from base for rewinds
	sent        uint64 // next stream offset to transmit
	acked       uint64 // server's contiguous high-water mark
	outstanding int    // frames sent but not yet answered
	drained     bool
	quarErr     error // sticky: the server quarantined us

	fbuf []byte
	rbuf []byte
}

// Dial opens a fresh ingest session for a collector.
func Dial(addr, collector string) (*Client, error) {
	return DialResume(addr, collector, 0)
}

// DialResume opens a session whose stream resumes at offset from — the
// acked high-water mark of a previous incarnation against the same
// daemon state. The hello carries the offset; the first Send supplies
// the bytes from that offset onward.
func DialResume(addr, collector string, from uint64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:      conn,
		collector: collector,
		base:      from,
		sent:      from,
		acked:     from,
		rbuf:      make([]byte, 4096),
	}
	c.fbuf = AppendFrame(c.fbuf[:0], FrameHello, from, []byte(collector))
	if _, err := conn.Write(c.fbuf); err != nil {
		conn.Close()
		return nil, err
	}
	// The hello ack confirms the session (and the resume offset).
	if _, err := c.readResponse(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Acked returns the server's contiguous accepted offset — the resume
// point for a future DialResume.
func (c *Client) Acked() uint64 { return c.acked }

// Sent returns the next offset the client will transmit.
func (c *Client) Sent() uint64 { return c.sent }

// Send appends stream bytes and transmits every frame that is already
// complete (whole records, or raw chunks through damaged stretches). A
// trailing partial record stays buffered until more bytes arrive or
// Drain flushes it.
func (c *Client) Send(p []byte) error {
	c.data = append(c.data, p...)
	return c.pump(false)
}

// Drain flushes any buffered tail, sends EOF, and blocks until the
// server acknowledges that every accepted byte has been decoded and
// applied. The connection stays open (more Sends may follow a drain in
// principle, but the server treats EOF as final — use one Drain per
// session).
func (c *Client) Drain() error {
	for attempt := 0; ; attempt++ {
		if attempt > maxNaks {
			return errors.New("atomd client: drain: rewind budget exhausted")
		}
		if err := c.pump(true); err != nil {
			return err
		}
		for c.outstanding > 0 {
			if _, err := c.readResponse(); err != nil {
				return err
			}
		}
		if c.sent != c.acked {
			// A NAK rewound us mid-flight; retransmit before EOF.
			continue
		}
		c.fbuf = AppendFrame(c.fbuf[:0], FrameEOF, c.sent, nil)
		if _, err := c.conn.Write(c.fbuf); err != nil {
			return err
		}
		nak := false
		for !c.drained && !nak {
			typ, err := c.readResponse()
			if err != nil {
				return err
			}
			nak = typ == FrameNak // EOF refused: rewind and retry
		}
		if c.drained {
			return nil
		}
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// pump transmits pending bytes as frames. flush forces a trailing
// partial record out as raw chunks (Drain's final sweep).
func (c *Client) pump(flush bool) error {
	for {
		if c.quarErr != nil {
			return c.quarErr
		}
		if c.sent < c.base {
			return fmt.Errorf("atomd client: rewound to %d, before resume offset %d", c.sent, c.base)
		}
		pend := c.data[c.sent-c.base:]
		if len(pend) == 0 {
			return nil
		}
		n := nextChunk(pend, flush)
		if n == 0 {
			return nil // partial record: wait for more bytes
		}
		c.fbuf = AppendFrame(c.fbuf[:0], FrameData, c.sent, pend[:n])
		if _, err := c.conn.Write(c.fbuf); err != nil {
			return err
		}
		c.sent += uint64(n)
		c.outstanding++
		for c.outstanding >= clientWindow {
			if _, err := c.readResponse(); err != nil {
				return err
			}
		}
	}
}

// nextChunk picks the next frame's payload length: one whole MRT
// record when the bytes parse as one, a raw chunk when they do not,
// zero to wait for a record's remaining bytes (unless flushing).
func nextChunk(pend []byte, flush bool) int {
	if len(pend) >= mrtHeaderLen && mrt.PlausibleHeader(pend[:mrtHeaderLen]) {
		rl := mrtHeaderLen + int(binary.BigEndian.Uint32(pend[8:12]))
		if rl <= MaxFramePayload {
			if len(pend) >= rl {
				return rl
			}
			if !flush {
				return 0
			}
			return min(len(pend), rawChunk)
		}
	}
	if len(pend) < mrtHeaderLen && !flush {
		return 0
	}
	return min(len(pend), rawChunk)
}

// mrtHeaderLen is the MRT record header size (timestamp, type,
// subtype, length).
const mrtHeaderLen = 12

// readResponse blocks for one server frame, applies it, and returns
// its type: acks move the high-water mark, naks rewind the send
// cursor, error frames are sticky failures.
func (c *Client) readResponse() (byte, error) {
	for {
		fr, ok, err := c.fp.Next()
		if err != nil {
			return 0, err
		}
		if ok {
			switch fr.Type {
			case FrameAck:
				if fr.Seq > c.acked {
					c.acked = fr.Seq
				}
				if fr.Flags&FlagDrained != 0 {
					c.drained = true
				}
				if c.outstanding > 0 {
					c.outstanding--
				}
				return fr.Type, nil
			case FrameNak:
				c.sent = fr.Seq
				if c.outstanding > 0 {
					c.outstanding--
				}
				return fr.Type, nil
			case FrameError:
				c.quarErr = fmt.Errorf("atomd client: server error: %s", fr.Payload)
				return fr.Type, c.quarErr
			default:
				// Unknown response type: ignore (forward compatibility).
				continue
			}
		}
		n, rerr := c.conn.Read(c.rbuf)
		if n > 0 {
			c.fp.Feed(c.rbuf[:n])
			continue
		}
		if rerr != nil {
			return 0, rerr
		}
	}
}
