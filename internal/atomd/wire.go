// Package atomd is the streaming atom daemon: it accepts live update
// streams over TCP (one session per collector), feeds them through the
// same element mapping batch replay uses into a resident
// core.AtomIndex, and concurrently serves point queries — SameAtom,
// MemberCount, prefix→atom, materialized snapshots — over the
// obs.DebugServer HTTP seam and a binary query port.
//
// # Wire format
//
// Both ports speak the same length-prefixed frame:
//
//	offset 0  magic   0xA7 0xD1
//	offset 2  type    byte (FrameHello, FrameData, ...)
//	offset 3  flags   byte (FlagDrained on the final ingest ack)
//	offset 4  seq     uint64 big-endian
//	offset 12 length  uint32 big-endian payload byte count
//	offset 16 payload
//
// On the ingest port a session opens with FrameHello (payload = the
// collector name, seq = the resume offset, 0 for a fresh stream), then
// streams FrameData frames whose payload is a contiguous slice of the
// collector's update archive and whose seq is the payload's byte
// offset within that stream. The server acks the contiguous high-water
// mark after every frame; a gap elicits FrameNak carrying the offset
// to rewind to. FrameEOF (seq = total bytes) asks the server to drain
// the decode pipeline and answer with a FlagDrained ack — the clean
// barrier tests and clients use to mark "everything sent is applied".
//
// Because DATA payloads are raw archive bytes, the server-side decoder
// is literally the batch decode path (bgpstream over the concatenated
// payload), so record-level damage resyncs and quarantines exactly as
// batch replay would — the daemon-vs-batch differential over
// faultgen-damaged streams holds by construction. Frame-level garbage
// is the parser's problem: it scans for the magic with a bounded
// budget and the session quarantines when the budget exhausts.
package atomd

import (
	"encoding/binary"
	"errors"
)

const (
	magic0 = 0xA7
	magic1 = 0xD1
	// headerLen is the fixed frame header size.
	headerLen = 16
	// MaxFramePayload bounds one frame's payload: one full MRT record
	// (the mrt package caps records at 64 MiB) plus header slack. A
	// larger claimed length marks the candidate header as garbage.
	MaxFramePayload = 1<<26 + 1<<10
	// maxFrameScan bounds the garbage scanned between frames before the
	// parser declares the connection desynchronized (mirrors
	// bgpstream's resync scan budget).
	maxFrameScan = 1 << 20
)

// Frame types. Values above frameMaxType are invalid and treated as
// garbage by the parser.
const (
	FrameHello byte = 1 // ingest: open a session (payload = collector)
	FrameData  byte = 2 // ingest: archive bytes at offset seq
	FrameEOF   byte = 3 // ingest: stream end, request a drained ack
	FrameAck   byte = 4 // server: contiguous bytes accepted through seq
	FrameNak   byte = 5 // server: rewind to seq and retransmit

	FrameSameAtom    byte = 16 // query: payload = two uint32 prefix rows
	FrameMemberCount byte = 17 // query: payload = one uint32 prefix row
	FramePrefixAtom  byte = 18 // query: payload = encoded prefix
	FrameEpoch       byte = 19 // query: empty payload
	FrameReply       byte = 24 // server: query answer, seq echoes request
	FrameError       byte = 25 // server: protocol error (payload = text)

	frameMaxType = FrameError
)

// Frame flags.
const (
	// FlagDrained marks the ack answering FrameEOF: every payload byte
	// the session accepted has been decoded and applied to the index.
	FlagDrained byte = 1
)

// Frame is one decoded wire frame. Payload aliases the parser's buffer
// and is only valid until the next call to Next or Feed.
type Frame struct {
	Type    byte
	Flags   byte
	Seq     uint64
	Payload []byte
}

// ErrDesync reports that a FrameParser scanned maxFrameScan bytes
// without finding a plausible frame header. The error is sticky: the
// byte stream has no recoverable framing left and the session must
// quarantine the connection.
var ErrDesync = errors.New("atomd: frame desync: no magic within scan budget")

// AppendFrame appends one encoded frame to dst and returns it, flags
// zero. The append style keeps steady-state framing allocation-free
// once dst has warmed up.
func AppendFrame(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	return AppendFrameFlags(dst, typ, 0, seq, payload)
}

// AppendFrameFlags is AppendFrame with an explicit flags byte.
func AppendFrameFlags(dst []byte, typ, flags byte, seq uint64, payload []byte) []byte {
	dst = append(dst, magic0, magic1, typ, flags)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// FrameParser incrementally decodes frames from an untrusted byte
// stream. Feed appends raw bytes; Next pops the next complete frame,
// scanning past garbage for the magic with a bounded budget — a
// truncated, oversized, or corrupted frame never panics, it either
// resynchronizes on the next magic or exhausts the budget and returns
// ErrDesync. The zero value is ready to use.
type FrameParser struct {
	buf     []byte
	off     int    // consumed prefix of buf
	skipped int    // garbage bytes scanned since the last good frame
	total   uint64 // lifetime garbage bytes (metrics)
	desync  bool   // sticky ErrDesync state
}

// Feed appends stream bytes for parsing. The parser copies them, so
// the caller keeps ownership of b.
func (fp *FrameParser) Feed(b []byte) {
	// Compact the consumed prefix before growing: a session's buffer
	// stays bounded by one frame plus read slack.
	if fp.off > 0 && (fp.off >= len(fp.buf) || len(fp.buf)-fp.off < fp.off) {
		n := copy(fp.buf, fp.buf[fp.off:])
		fp.buf = fp.buf[:n]
		fp.off = 0
	}
	fp.buf = append(fp.buf, b...)
}

// Skipped returns the lifetime count of garbage bytes scanned past.
func (fp *FrameParser) Skipped() uint64 { return fp.total }

// Next returns the next complete frame. ok=false with a nil error
// means more bytes are needed; ErrDesync (sticky) means the scan
// budget is exhausted and the stream is unrecoverable.
//
//atomlint:borrowed Frame.Payload aliases the parse buffer, valid until the next Feed/Next
func (fp *FrameParser) Next() (Frame, bool, error) {
	if fp.desync {
		return Frame{}, false, ErrDesync
	}
	for {
		b := fp.buf[fp.off:]
		// Hunt for the magic, counting every skipped byte against the
		// budget — a stream of pure garbage terminates, never spins.
		i := 0
		for i < len(b) && !(b[i] == magic0 && i+1 < len(b) && b[i+1] == magic1) {
			// A trailing 0xA7 might be half a magic; keep it buffered.
			if b[i] == magic0 && i+1 >= len(b) {
				break
			}
			i++
		}
		if i > 0 {
			fp.skipped += i
			fp.total += uint64(i)
			fp.off += i
			if fp.skipped > maxFrameScan {
				fp.desync = true
				return Frame{}, false, ErrDesync
			}
			b = fp.buf[fp.off:]
		}
		if len(b) < headerLen {
			return Frame{}, false, nil // need more bytes (or trailing partial magic)
		}
		typ := b[2]
		length := binary.BigEndian.Uint32(b[12:16])
		if typ == 0 || typ > frameMaxType || length > MaxFramePayload {
			// Implausible header: the magic was a false positive inside
			// garbage (or a corrupted frame). Skip the magic and rescan.
			fp.skipped += 2
			fp.total += 2
			fp.off += 2
			if fp.skipped > maxFrameScan {
				fp.desync = true
				return Frame{}, false, ErrDesync
			}
			continue
		}
		if len(b) < headerLen+int(length) {
			return Frame{}, false, nil // payload still in flight
		}
		fr := Frame{
			Type:    typ,
			Flags:   b[3],
			Seq:     binary.BigEndian.Uint64(b[4:12]),
			Payload: b[headerLen : headerLen+int(length)],
		}
		fp.off += headerLen + int(length)
		fp.skipped = 0
		return fr, true, nil
	}
}
