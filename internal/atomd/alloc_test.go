// The query hot path — view.Load plus flat-array indexing — must not
// allocate, even while a live ingest session is mid-stream. This is
// the acceptance pin behind the //atomlint:hotpath annotations in
// view.go; the hotpath analyzer bans allocation *syntax*, this test
// pins the *behavior*.
package atomd

import (
	"testing"

	"repro/internal/faultgen/harness"
)

func TestQueryPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin runs in the non-race pass")
	}
	w := harness.BuildWorld(harness.DefaultConfig(61))
	srv := newTestServer(t, w.Ribs, 1)
	n := srv.PrefixCount()
	if n < 2 {
		t.Fatal("universe too small")
	}

	// A live but idle session: the hot path must stay clean with ingest
	// state resident, not just on a quiescent server.
	c, err := Dial(srv.Addr(), "rrc00")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(w.Upds["rrc00"][:recordCut(w.Upds["rrc00"], 4096)]); err != nil {
		t.Fatal(err)
	}

	var sink int
	got := testing.AllocsPerRun(1000, func() {
		if srv.SameAtom(0, n-1) {
			sink++
		}
		sink += srv.MemberCount(0)
		sink += int(srv.PrefixAtom(n - 1))
		sink += int(srv.Epoch())
		sink += srv.AtomCount()
		sink += srv.PrefixCount()
		// Out-of-range rows take the bounds-check branch; it must be
		// just as clean.
		if srv.SameAtom(-1, n) {
			sink++
		}
		sink += srv.MemberCount(1 << 30)
		sink += int(srv.PrefixAtom(-7))
	})
	if got != 0 {
		t.Errorf("query hot path allocates %.1f per run, want 0", got)
	}
	_ = sink
}
