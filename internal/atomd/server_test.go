// Daemon-vs-batch differential: the tentpole contract is that the
// daemon's materialized atoms equal batch ComputeAtoms byte-for-byte —
// at any quiesced point of the ingest history, at any worker count,
// over clean and faultgen-damaged streams alike. RenderAtoms is the
// comparison currency: it resolves vectors to path contents, so the
// equality is independent of intern-table ID assignment.
package atomd

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/faultgen"
	"repro/internal/faultgen/harness"
	"repro/internal/replay"
	"repro/internal/sanitize"
)

// sortedNames returns archive names in deterministic order.
func sortedNames(archives map[string][]byte) []string {
	names := make([]string, 0, len(archives))
	for name := range archives {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildSnap sanitizes RIB archives into a fresh snapshot. Every call
// builds an independent snapshot: the daemon and the batch baseline
// must never share mutable matrix state.
func buildSnap(t testing.TB, ribs map[string][]byte) *core.Snapshot {
	t.Helper()
	var srcs []bgpstream.Source
	for _, name := range sortedNames(ribs) {
		srcs = append(srcs, bgpstream.BytesSource(name, ribs[name], bgp.Options{}))
	}
	opts := sanitize.Defaults()
	opts.Family = 4
	snap, _, err := sanitize.Clean(srcs, nil, opts)
	if err != nil {
		t.Fatalf("sanitize: %v", err)
	}
	if len(snap.Prefixes) == 0 || len(snap.VPs) == 0 {
		t.Fatalf("degenerate snapshot: %d prefixes, %d VPs", len(snap.Prefixes), len(snap.VPs))
	}
	return snap
}

// newTestServer starts a daemon over a fresh snapshot built from ribs,
// registered for shutdown at test end.
func newTestServer(t testing.TB, ribs map[string][]byte, workers int) *Server {
	t.Helper()
	srv, err := NewServer(Config{Snapshot: buildSnap(t, ribs), Workers: workers})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return srv
}

// ingestConcurrent streams every collector's update archive into the
// daemon over its own TCP session, all sessions live at once, chunked
// so their frames genuinely interleave on the apply channel. Returns
// after every session has its drained ack — the applied barrier.
func ingestConcurrent(t testing.TB, srv *Server, upds map[string][]byte) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(upds))
	for _, name := range sortedNames(upds) {
		name := name
		data := upds[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), name)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			const chunk = 8 << 10
			for off := 0; off < len(data); off += chunk {
				end := min(off+chunk, len(data))
				if err := c.Send(data[off:end]); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Drain()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("ingest session: %v", err)
		}
	}
}

// daemonAtoms runs the full live path — boot from RIBs, concurrent
// TCP ingest of every update archive, drain — and renders the
// materialized partition.
func daemonAtoms(t testing.TB, ribs, upds map[string][]byte, workers int) []byte {
	t.Helper()
	srv := newTestServer(t, ribs, workers)
	ingestConcurrent(t, srv, upds)
	out := RenderAtoms(srv.MaterializeAtoms(workers))
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return out
}

// batchAtoms is the offline baseline: the same snapshot build, then
// replay.Run over the same update archives, then batch materialize.
func batchAtoms(t testing.TB, ribs, upds map[string][]byte, workers int) []byte {
	t.Helper()
	if workers > 1 {
		bgpstream.ForceParallelDecode(true)
		defer bgpstream.ForceParallelDecode(false)
	}
	ix := core.NewAtomIndex(buildSnap(t, ribs))
	var srcs []bgpstream.Source
	for _, name := range sortedNames(upds) {
		srcs = append(srcs, bgpstream.BytesSource(name, upds[name], bgp.Options{}))
	}
	if _, err := replay.Run(ix, srcs, replay.Options{Workers: workers}); err != nil {
		t.Fatalf("batch replay: %v", err)
	}
	return RenderAtoms(ix.Materialize(workers))
}

func diffIndex(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// TestDaemonDifferentialClean pins the signature guarantee on clean
// archives: live TCP ingest with concurrent per-collector sessions
// materializes exactly the batch partition, at workers 1 and 8.
func TestDaemonDifferentialClean(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(21))
	bat := batchAtoms(t, w.Ribs, w.Upds, 1)
	for _, workers := range []int{1, 8} {
		got := daemonAtoms(t, w.Ribs, w.Upds, workers)
		if !bytes.Equal(got, bat) {
			t.Fatalf("daemon (workers=%d) diverges from batch at byte %d", workers, diffIndex(got, bat))
		}
	}
	if bytes.Count(bat, []byte("\natom ")) == 0 {
		t.Fatal("differential compared empty partitions; world generation broke")
	}
}

// TestDaemonDifferentialFaults streams faultgen-damaged churn — every
// fault class — through live TCP sessions and demands the daemon still
// equal batch replay over the same damaged bytes. The daemon reuses
// the batch decode path (bgpstream over the reassembled payload), so
// record-level damage must resync and quarantine identically.
func TestDaemonDifferentialFaults(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(22))
	for _, class := range faultgen.AllClasses() {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			sched, err := faultgen.Plan(faultgen.Config{
				Seed: 22, Classes: []faultgen.Class{class},
			}, w.Combined)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			damaged, err := faultgen.Apply(sched, w.Combined)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			dupds := make(map[string][]byte, len(w.Upds))
			for name, data := range damaged {
				if len(name) > 4 && name[:4] == "upd/" {
					dupds[name[4:]] = data
				}
			}
			got := daemonAtoms(t, w.Ribs, dupds, 1)
			bat := batchAtoms(t, w.Ribs, dupds, 1)
			if !bytes.Equal(got, bat) {
				t.Fatalf("daemon diverges from batch under %s damage at byte %d", class, diffIndex(got, bat))
			}
		})
	}
}

// recordCut returns a record-aligned offset at or past target, walking
// the archive with the same framing the client uses.
func recordCut(data []byte, target int) int {
	off := 0
	for off < len(data) && off < target {
		n := nextChunk(data[off:], false)
		if n == 0 {
			break
		}
		off += n
	}
	return off
}

// TestDaemonDifferentialMidHistory cuts every collector's stream at a
// record boundary near the midpoint and checks the daemon equals batch
// at that intermediate ingest-history point — the guarantee is "at any
// quiesced point", not only at stream end.
func TestDaemonDifferentialMidHistory(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(23))
	half := make(map[string][]byte, len(w.Upds))
	for name, data := range w.Upds {
		half[name] = data[:recordCut(data, len(data)/2)]
	}
	got := daemonAtoms(t, w.Ribs, half, 1)
	bat := batchAtoms(t, w.Ribs, half, 1)
	if !bytes.Equal(got, bat) {
		t.Fatalf("daemon diverges from batch at the mid-history point, byte %d", diffIndex(got, bat))
	}
	// The cut must be real: full-history partitions should differ from
	// mid-history ones (otherwise this test degenerates into the clean
	// differential).
	full := batchAtoms(t, w.Ribs, w.Upds, 1)
	if bytes.Equal(bat, full) {
		t.Log("mid-history equals full history for this world; cut exercised nothing extra")
	}
}

// TestDaemonResumeConverges replays the crash-resume story: each
// collector sends a prefix of its stream, the client dies without a
// drain, and a new client resumes from the dead client's acked offset
// via DialResume. The daemon must converge to exactly the batch
// partition over the full streams — idempotent suffix replay plus the
// per-collector session serialization.
func TestDaemonResumeConverges(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(24))
	srv := newTestServer(t, w.Ribs, 1)
	for _, name := range sortedNames(w.Upds) {
		data := w.Upds[name]
		cut := recordCut(data, len(data)/2)

		c1, err := Dial(srv.Addr(), name)
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		if err := c1.Send(data[:cut]); err != nil {
			t.Fatalf("send %s: %v", name, err)
		}
		acked := c1.Acked()
		c1.Close() // crash: no drain, in-flight frames abandoned

		c2, err := DialResume(srv.Addr(), name, acked)
		if err != nil {
			t.Fatalf("resume %s from %d: %v", name, acked, err)
		}
		if err := c2.Send(data[acked:]); err != nil {
			t.Fatalf("resumed send %s: %v", name, err)
		}
		if err := c2.Drain(); err != nil {
			t.Fatalf("resumed drain %s: %v", name, err)
		}
		c2.Close()
	}
	got := RenderAtoms(srv.MaterializeAtoms(1))
	bat := batchAtoms(t, w.Ribs, w.Upds, 1)
	if !bytes.Equal(got, bat) {
		t.Fatalf("resumed daemon diverges from batch at byte %d", diffIndex(got, bat))
	}
	// Resume really re-sent a suffix: at least one collector must have
	// acked less than it sent before the crash, or the scenario was
	// trivially a clean run.
	stats := srv.IngestStats()
	if len(stats) != len(w.Upds) {
		t.Fatalf("expected %d sources, got %d", len(w.Upds), len(stats))
	}
	for _, st := range stats {
		if st.Sessions != 2 {
			t.Fatalf("collector %s: %d sessions, want 2 (crash + resume)", st.Collector, st.Sessions)
		}
	}
}

// TestDaemonEpochAdvances checks the published view moves: epoch 0 at
// boot, strictly higher after a drained ingest that applied updates.
func TestDaemonEpochAdvances(t *testing.T) {
	w := harness.BuildWorld(harness.DefaultConfig(25))
	srv := newTestServer(t, w.Ribs, 1)
	if e := srv.Epoch(); e != 0 {
		t.Fatalf("boot epoch = %d, want 0", e)
	}
	boot := srv.AtomCount()
	if boot == 0 {
		t.Fatal("boot partition has zero atoms")
	}
	ingestConcurrent(t, srv, w.Upds)
	if e := srv.Epoch(); e == 0 {
		t.Fatal("epoch did not advance after drained ingest")
	}
	st := srv.DeltaStats()
	if st.Applied == 0 {
		t.Fatal("drained ingest applied zero deltas")
	}
	stats := srv.IngestStats()
	var elems, updates, skipped int
	for _, s := range stats {
		elems += s.Elems
		updates += s.Updates
		skipped += s.Skipped
	}
	if elems == 0 || updates == 0 {
		t.Fatalf("ingest ledger empty: elems=%d updates=%d", elems, updates)
	}
	if updates+skipped != elems {
		t.Fatalf("ledger accounting leaks: %d updates + %d skipped != %d elems", updates, skipped, elems)
	}
}
