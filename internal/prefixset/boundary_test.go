package prefixset

import (
	"net/netip"
	"testing"
)

// Boundary prefixes: the default route, host routes in both families,
// duplicate inserts, and lookups against empty structures. These are
// the lengths most likely to hit off-by-one bit walks.
func TestSetBoundaryLengths(t *testing.T) {
	cases := []netip.Prefix{
		netip.MustParsePrefix("0.0.0.0/0"),
		netip.MustParsePrefix("203.0.113.7/32"),
		netip.MustParsePrefix("::/0"),
		netip.MustParsePrefix("2001:db8::1/128"),
	}
	s := NewSet()
	for _, p := range cases {
		s.Add(p)
		if !s.Contains(p) {
			t.Errorf("Set lost %v right after Add", p)
		}
	}
	if s.Len() != len(cases) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(cases))
	}
	// Duplicate inserts are idempotent.
	for _, p := range cases {
		s.Add(p)
	}
	if s.Len() != len(cases) {
		t.Errorf("duplicate Add changed Len to %d", s.Len())
	}
	// The v4 default must not shadow the v6 default or vice versa.
	s2 := NewSet(netip.MustParsePrefix("0.0.0.0/0"))
	if s2.Contains(netip.MustParsePrefix("::/0")) {
		t.Error("v4 default route matched the v6 default")
	}
}

func TestTrieBoundaryLengths(t *testing.T) {
	var tr Trie
	def4 := netip.MustParsePrefix("0.0.0.0/0")
	host4 := netip.MustParsePrefix("203.0.113.7/32")
	def6 := netip.MustParsePrefix("::/0")
	host6 := netip.MustParsePrefix("2001:db8::1/128")

	for _, p := range []netip.Prefix{def4, host4, def6, host6} {
		if !tr.Insert(p) {
			t.Fatalf("Insert(%v) = false on first insert", p)
		}
		if tr.Insert(p) {
			t.Errorf("Insert(%v) = true on duplicate", p)
		}
		if !tr.Contains(p) {
			t.Errorf("Contains(%v) = false after insert", p)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}

	// A /0 covers every prefix of its family — and only its family.
	if got, ok := tr.LongestMatch(netip.MustParsePrefix("10.0.0.0/8")); !ok || got != def4 {
		t.Errorf("LongestMatch(10/8) = %v, %v; want 0.0.0.0/0", got, ok)
	}
	if got, ok := tr.LongestMatch(netip.MustParsePrefix("2001:db8::/32")); !ok || got != def6 {
		t.Errorf("LongestMatch(2001:db8::/32) = %v, %v; want ::/0", got, ok)
	}
	// A /32 host route wins over the default for its own address.
	if got, ok := tr.LongestMatch(host4); !ok || got != host4 {
		t.Errorf("LongestMatch(host4) = %v, %v", got, ok)
	}
	// /32 in v4 and /128 in v6 must not bleed into each other's family
	// even though both are "full-length".
	if tr.Contains(netip.MustParsePrefix("::cb00:7107/128")) {
		t.Error("v4-mapped-looking v6 host matched the v4 host route")
	}
	// Covers from the default route enumerates the family.
	cov := tr.Covers(def4)
	if len(cov) != 2 || cov[0] != def4 || cov[1] != host4 {
		t.Errorf("Covers(0/0) = %v, want [0.0.0.0/0 203.0.113.7/32]", cov)
	}
}

func TestEmptyLookups(t *testing.T) {
	var tr Trie
	empty := NewSet()
	p := netip.MustParsePrefix("10.0.0.0/8")

	if empty.Contains(p) {
		t.Error("empty Set contained a prefix")
	}
	if empty.Len() != 0 {
		t.Error("empty Set nonzero length")
	}
	if tr.Contains(p) {
		t.Error("empty Trie contained a prefix")
	}
	if _, ok := tr.LongestMatch(p); ok {
		t.Error("empty Trie produced a longest match")
	}
	if tr.CoveredBy(p) {
		t.Error("empty Trie covered a prefix")
	}
	if got := tr.Covers(p); got != nil {
		t.Errorf("empty Trie Covers = %v", got)
	}
	if got := tr.All(); len(got) != 0 {
		t.Errorf("empty Trie All = %v", got)
	}
	// Invalid prefixes are rejected, not stored.
	if tr.Insert(netip.Prefix{}) {
		t.Error("invalid prefix inserted")
	}
	if empty.Contains(netip.Prefix{}) {
		t.Error("empty Set contains invalid prefix")
	}
}
