package prefixset

import "net/netip"

// Trie is a binary (radix) trie over prefixes, one per address family
// internally, supporting exact lookup, longest-prefix match, and
// covering/covered queries. It is the structure behind more-specific
// detection (prefix fragmentation analysis) and aggregate checks.
//
// The zero value is ready to use. Trie is not safe for concurrent
// mutation; concurrent readers are fine once populated.
type Trie struct {
	v4, v6 *trieNode
	n      int
}

type trieNode struct {
	child [2]*trieNode
	// present marks a stored prefix terminating at this node.
	present bool
	prefix  netip.Prefix
}

// Len returns the number of stored prefixes.
func (t *Trie) Len() int { return t.n }

func (t *Trie) root(p netip.Prefix, alloc bool) **trieNode {
	if p.Addr().Is4() {
		if t.v4 == nil && alloc {
			t.v4 = &trieNode{}
		}
		return &t.v4
	}
	if t.v6 == nil && alloc {
		t.v6 = &trieNode{}
	}
	return &t.v6
}

// bitAt returns bit i (0 = most significant) of the address.
func bitAt(a netip.Addr, i int) int {
	b := a.AsSlice()
	return int(b[i/8]>>(7-i%8)) & 1
}

// Insert adds p to the trie. It reports whether p was newly added.
// Invalid prefixes are rejected (returns false).
func (t *Trie) Insert(p netip.Prefix) bool {
	p = Canonical(p)
	if !p.IsValid() {
		return false
	}
	node := *t.root(p, true)
	addr := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(addr, i)
		if node.child[b] == nil {
			node.child[b] = &trieNode{}
		}
		node = node.child[b]
	}
	if node.present {
		return false
	}
	node.present = true
	node.prefix = p
	t.n++
	return true
}

// Contains reports whether exactly p is stored.
func (t *Trie) Contains(p netip.Prefix) bool {
	p = Canonical(p)
	if !p.IsValid() {
		return false
	}
	node := *t.root(p, false)
	if node == nil {
		return false
	}
	addr := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		node = node.child[bitAt(addr, i)]
		if node == nil {
			return false
		}
	}
	return node.present
}

// LongestMatch returns the most specific stored prefix covering p
// (including p itself), and false if none covers it.
func (t *Trie) LongestMatch(p netip.Prefix) (netip.Prefix, bool) {
	p = Canonical(p)
	if !p.IsValid() {
		return netip.Prefix{}, false
	}
	node := *t.root(p, false)
	if node == nil {
		return netip.Prefix{}, false
	}
	var best netip.Prefix
	found := false
	addr := p.Addr()
	if node.present {
		best, found = node.prefix, true
	}
	for i := 0; i < p.Bits(); i++ {
		node = node.child[bitAt(addr, i)]
		if node == nil {
			break
		}
		if node.present {
			best, found = node.prefix, true
		}
	}
	return best, found
}

// CoveredBy reports whether some stored prefix strictly or equally
// covers p.
func (t *Trie) CoveredBy(p netip.Prefix) bool {
	_, ok := t.LongestMatch(p)
	return ok
}

// Covers returns all stored prefixes that are contained within p
// (more specific than or equal to p), in deterministic order.
func (t *Trie) Covers(p netip.Prefix) []netip.Prefix {
	p = Canonical(p)
	if !p.IsValid() {
		return nil
	}
	node := *t.root(p, false)
	if node == nil {
		return nil
	}
	addr := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		node = node.child[bitAt(addr, i)]
		if node == nil {
			return nil
		}
	}
	var out []netip.Prefix
	collect(node, &out)
	SortPrefixes(out)
	return out
}

func collect(n *trieNode, out *[]netip.Prefix) {
	if n == nil {
		return
	}
	if n.present {
		*out = append(*out, n.prefix)
	}
	collect(n.child[0], out)
	collect(n.child[1], out)
}

// All returns every stored prefix in deterministic order.
func (t *Trie) All() []netip.Prefix {
	var out []netip.Prefix
	collect(t.v4, &out)
	collect(t.v6, &out)
	SortPrefixes(out)
	return out
}
