// Package prefixset provides prefix collections and queries used across
// the policy-atom pipeline: hash sets with set algebra (atom stability
// comparisons), a binary trie for containment queries (aggregation and
// more-specific detection), and the paper's prefix-length admission rule
// (≤ /24 for IPv4, ≤ /48 for IPv6, §2.4.3).
package prefixset

import (
	"fmt"
	"net/netip"
	"sort"
)

// Admissible reports whether p passes the paper's prefix-length filter:
// IPv4 prefixes no more specific than /24, IPv6 no more specific than /48.
// Invalid prefixes are not admissible.
func Admissible(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	if p.Addr().Is4() || p.Addr().Is4In6() {
		return p.Bits() <= 24
	}
	return p.Bits() <= 48
}

// Canonical returns p in canonical form (masked address, unmapped) so that
// equal routes compare equal. It returns the zero Prefix for invalid input.
func Canonical(p netip.Prefix) netip.Prefix {
	if !p.IsValid() {
		return netip.Prefix{}
	}
	addr := p.Addr()
	if addr.Is4In6() {
		addr = addr.Unmap()
		bits := p.Bits() - 96
		if bits < 0 {
			return netip.Prefix{}
		}
		p = netip.PrefixFrom(addr, bits)
	}
	return p.Masked()
}

// Set is a hash set of prefixes with the set algebra the stability
// metrics need. The zero value is not usable; call NewSet.
type Set struct {
	m map[netip.Prefix]struct{}
}

// NewSet returns an empty set, optionally seeded.
func NewSet(ps ...netip.Prefix) *Set {
	s := &Set{m: make(map[netip.Prefix]struct{}, len(ps))}
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// Add inserts p (canonicalized). Invalid prefixes are ignored.
func (s *Set) Add(p netip.Prefix) {
	c := Canonical(p)
	if c.IsValid() {
		s.m[c] = struct{}{}
	}
}

// Remove deletes p from the set.
func (s *Set) Remove(p netip.Prefix) { delete(s.m, Canonical(p)) }

// Contains reports membership.
func (s *Set) Contains(p netip.Prefix) bool {
	_, ok := s.m[Canonical(p)]
	return ok
}

// Len returns the number of prefixes.
func (s *Set) Len() int { return len(s.m) }

// Equal reports whether both sets hold exactly the same prefixes.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for p := range s.m {
		if _, ok := o.m[p]; !ok {
			return false
		}
	}
	return true
}

// IntersectionLen returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectionLen(o *Set) int {
	small, large := s, o
	if large.Len() < small.Len() {
		small, large = large, small
	}
	n := 0
	for p := range small.m {
		if _, ok := large.m[p]; ok {
			n++
		}
	}
	return n
}

// SubsetOf reports whether every prefix of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	if s.Len() > o.Len() {
		return false
	}
	for p := range s.m {
		if _, ok := o.m[p]; !ok {
			return false
		}
	}
	return true
}

// All iterates the set in unspecified order; return false to stop.
func (s *Set) All(yield func(netip.Prefix) bool) {
	for p := range s.m {
		if !yield(p) {
			return
		}
	}
}

// Sorted returns the prefixes in deterministic (address, length) order.
func (s *Set) Sorted() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	SortPrefixes(out)
	return out
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{m: make(map[netip.Prefix]struct{}, len(s.m))}
	for p := range s.m {
		c.m[p] = struct{}{}
	}
	return c
}

// String renders a deterministic "{a, b, c}" form, for diagnostics.
func (s *Set) String() string {
	ps := s.Sorted()
	out := "{"
	for i, p := range ps {
		if i > 0 {
			out += ", "
		}
		out += p.String()
	}
	return out + "}"
}

// SortPrefixes orders prefixes by address family (v4 first), then address,
// then prefix length — a stable, deterministic total order.
func SortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		return ComparePrefixes(ps[i], ps[j]) < 0
	})
}

// ComparePrefixes is the total order used by SortPrefixes.
func ComparePrefixes(a, b netip.Prefix) int {
	a4, b4 := a.Addr().Is4(), b.Addr().Is4()
	if a4 != b4 {
		if a4 {
			return -1
		}
		return 1
	}
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}

// MustParse parses a prefix, canonicalizes it, and panics on failure.
// Intended for tests and table literals.
func MustParse(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(fmt.Sprintf("prefixset: %v", err))
	}
	return Canonical(p)
}
