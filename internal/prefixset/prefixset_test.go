package prefixset

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAdmissible(t *testing.T) {
	tests := []struct {
		p    string
		want bool
	}{
		{"10.0.0.0/8", true},
		{"10.0.0.0/24", true},
		{"10.0.0.0/25", false},
		{"10.0.0.1/32", false},
		{"2001:db8::/32", true},
		{"2001:db8::/48", true},
		{"2001:db8::/49", false},
		{"2001:db8::/64", false},
	}
	for _, tc := range tests {
		if got := Admissible(MustParse(tc.p)); got != tc.want {
			t.Errorf("Admissible(%s) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Admissible(netip.Prefix{}) {
		t.Error("invalid prefix admissible")
	}
	// 4-in-6 mapped address uses the v4 rule.
	m := netip.PrefixFrom(netip.MustParseAddr("::ffff:10.0.0.0"), 96+25)
	if Admissible(m) {
		t.Error("mapped /25 should fail the v4 rule")
	}
}

func TestCanonical(t *testing.T) {
	p := netip.MustParsePrefix("10.1.2.3/8")
	if got := Canonical(p); got.String() != "10.0.0.0/8" {
		t.Errorf("Canonical = %v", got)
	}
	m := netip.PrefixFrom(netip.MustParseAddr("::ffff:192.168.1.5"), 96+24)
	if got := Canonical(m); got.String() != "192.168.1.0/24" {
		t.Errorf("Canonical(mapped) = %v", got)
	}
	if Canonical(netip.Prefix{}).IsValid() {
		t.Error("Canonical(invalid) should be invalid")
	}
	bad := netip.PrefixFrom(netip.MustParseAddr("::ffff:1.2.3.4"), 50)
	if Canonical(bad).IsValid() {
		t.Error("mapped prefix shorter than /96 should be invalid")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(MustParse("10.0.0.0/8"), MustParse("10.0.0.0/8"), MustParse("192.168.0.0/16"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(MustParse("10.0.0.0/8")) || s.Contains(MustParse("11.0.0.0/8")) {
		t.Error("Contains broken")
	}
	// Canonicalization on Add: host bits masked.
	s.Add(netip.MustParsePrefix("172.16.5.5/12"))
	if !s.Contains(MustParse("172.16.0.0/12")) {
		t.Error("Add did not canonicalize")
	}
	s.Remove(MustParse("10.0.0.0/8"))
	if s.Contains(MustParse("10.0.0.0/8")) {
		t.Error("Remove broken")
	}
	s.Add(netip.Prefix{}) // ignored
	if s.Len() != 2 {
		t.Errorf("invalid Add changed Len = %d", s.Len())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(MustParse("10.0.0.0/8"), MustParse("20.0.0.0/8"), MustParse("30.0.0.0/8"))
	b := NewSet(MustParse("20.0.0.0/8"), MustParse("30.0.0.0/8"), MustParse("40.0.0.0/8"))
	if got := a.IntersectionLen(b); got != 2 {
		t.Errorf("IntersectionLen = %d", got)
	}
	if got := b.IntersectionLen(a); got != 2 {
		t.Errorf("IntersectionLen not symmetric = %d", got)
	}
	if a.Equal(b) {
		t.Error("unequal sets Equal")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal")
	}
	sub := NewSet(MustParse("20.0.0.0/8"))
	if !sub.SubsetOf(a) || a.SubsetOf(sub) {
		t.Error("SubsetOf broken")
	}
	if !NewSet().SubsetOf(a) {
		t.Error("empty set should be subset")
	}
	c := a.Clone()
	c.Remove(MustParse("10.0.0.0/8"))
	if a.Len() != 3 {
		t.Error("Clone aliases")
	}
}

func TestSetIterationAndString(t *testing.T) {
	a := NewSet(MustParse("10.0.0.0/8"), MustParse("9.0.0.0/8"))
	n := 0
	a.All(func(p netip.Prefix) bool { n++; return true })
	if n != 2 {
		t.Errorf("All visited %d", n)
	}
	n = 0
	a.All(func(p netip.Prefix) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	if got := a.String(); got != "{9.0.0.0/8, 10.0.0.0/8}" {
		t.Errorf("String = %q", got)
	}
}

func TestSortAndCompare(t *testing.T) {
	ps := []netip.Prefix{
		MustParse("2001:db8::/32"),
		MustParse("10.0.0.0/16"),
		MustParse("10.0.0.0/8"),
		MustParse("9.0.0.0/8"),
	}
	SortPrefixes(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "2001:db8::/32"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("sorted[%d] = %v, want %s", i, ps[i], w)
		}
	}
	if ComparePrefixes(ps[0], ps[0]) != 0 {
		t.Error("Compare self != 0")
	}
	if ComparePrefixes(ps[3], ps[0]) <= 0 {
		t.Error("v6 should sort after v4")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("not-a-prefix")
}

func TestTrieInsertContains(t *testing.T) {
	var tr Trie
	if !tr.Insert(MustParse("10.0.0.0/8")) {
		t.Fatal("first insert false")
	}
	if tr.Insert(MustParse("10.0.0.0/8")) {
		t.Fatal("duplicate insert true")
	}
	if tr.Insert(netip.Prefix{}) {
		t.Fatal("invalid insert true")
	}
	tr.Insert(MustParse("10.1.0.0/16"))
	tr.Insert(MustParse("2001:db8::/32"))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Contains(MustParse("10.0.0.0/8")) || !tr.Contains(MustParse("2001:db8::/32")) {
		t.Error("Contains broken")
	}
	if tr.Contains(MustParse("10.0.0.0/9")) {
		t.Error("Contains matched non-stored intermediate")
	}
	if tr.Contains(MustParse("99.0.0.0/8")) || tr.Contains(netip.Prefix{}) {
		t.Error("Contains false positives")
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie
	tr.Insert(MustParse("10.0.0.0/8"))
	tr.Insert(MustParse("10.1.0.0/16"))
	tr.Insert(MustParse("0.0.0.0/0"))
	lm, ok := tr.LongestMatch(MustParse("10.1.2.0/24"))
	if !ok || lm.String() != "10.1.0.0/16" {
		t.Errorf("LongestMatch = %v,%v", lm, ok)
	}
	lm, ok = tr.LongestMatch(MustParse("10.2.0.0/16"))
	if !ok || lm.String() != "10.0.0.0/8" {
		t.Errorf("LongestMatch = %v,%v", lm, ok)
	}
	lm, ok = tr.LongestMatch(MustParse("99.0.0.0/8"))
	if !ok || lm.String() != "0.0.0.0/0" {
		t.Errorf("default match = %v,%v", lm, ok)
	}
	if _, ok := tr.LongestMatch(MustParse("2001:db8::/32")); ok {
		t.Error("v6 matched v4 trie")
	}
	if !tr.CoveredBy(MustParse("10.1.0.0/16")) {
		t.Error("CoveredBy exact failed")
	}
	var empty Trie
	if _, ok := empty.LongestMatch(MustParse("10.0.0.0/8")); ok {
		t.Error("empty trie matched")
	}
	if _, ok := tr.LongestMatch(netip.Prefix{}); ok {
		t.Error("invalid prefix matched")
	}
}

func TestTrieCovers(t *testing.T) {
	var tr Trie
	for _, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16", "11.0.0.0/8"} {
		tr.Insert(MustParse(s))
	}
	got := tr.Covers(MustParse("10.1.0.0/16"))
	if len(got) != 2 || got[0].String() != "10.1.0.0/16" || got[1].String() != "10.1.2.0/24" {
		t.Errorf("Covers = %v", got)
	}
	if got := tr.Covers(MustParse("12.0.0.0/8")); got != nil {
		t.Errorf("Covers(no subtree) = %v", got)
	}
	if got := tr.Covers(netip.Prefix{}); got != nil {
		t.Errorf("Covers(invalid) = %v", got)
	}
	all := tr.All()
	if len(all) != 5 {
		t.Errorf("All = %v", all)
	}
	var empty Trie
	if empty.Covers(MustParse("10.0.0.0/8")) != nil {
		t.Error("empty trie Covers non-nil")
	}
}

func randV4Prefix(r *rand.Rand) netip.Prefix {
	var b [4]byte
	r.Read(b[:])
	bits := r.Intn(25)
	return Canonical(netip.PrefixFrom(netip.AddrFrom4(b), bits))
}

func TestTrieMatchesSetQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var tr Trie
	set := NewSet()
	for i := 0; i < 500; i++ {
		p := randV4Prefix(r)
		insertedTrie := tr.Insert(p)
		insertedSet := !set.Contains(p)
		set.Add(p)
		if insertedTrie != insertedSet {
			t.Fatalf("insert disagreement for %v", p)
		}
	}
	if tr.Len() != set.Len() {
		t.Fatalf("Len: trie %d set %d", tr.Len(), set.Len())
	}
	for i := 0; i < 500; i++ {
		p := randV4Prefix(r)
		if tr.Contains(p) != set.Contains(p) {
			t.Fatalf("contains disagreement for %v", p)
		}
	}
	// All() matches Sorted().
	a, b := tr.All(), set.Sorted()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLongestMatchIsCoveringQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trie
		for i := 0; i < 50; i++ {
			tr.Insert(randV4Prefix(r))
		}
		for i := 0; i < 50; i++ {
			q := randV4Prefix(r)
			lm, ok := tr.LongestMatch(q)
			if !ok {
				continue
			}
			// lm must cover q.
			if !lm.Contains(q.Addr()) || lm.Bits() > q.Bits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
