// Package bgpstream provides a BGPStream-style element abstraction over
// MRT archives: RIB rows and update announce/withdraw events, flattened
// to one element per (prefix, peer), with collector attribution, filter
// predicates, and the per-message grouping the update-correlation
// analysis needs (all prefixes of one UPDATE share a MsgIndex).
//
// Malformed records do not abort the stream: they are skipped and
// recorded as Warnings, mirroring how the paper's pipeline turns
// BGPStream warnings ("unknown BGP4MP record subtype 9", ADD-PATH parse
// errors) into abnormal-peer signals (§A8.3).
//
// # Decode architecture
//
// Every source gets its own sourceDecoder: reader, peer table, scratch
// buffers, warning list and degradation accounting all live per source,
// so sources are independent decode units. The Stream is a deterministic
// merge over those units: elements are served strictly in source order,
// and within a source in record order, with MsgIndex rebased onto a
// global sequence as batches are served. That makes the element stream
// byte-identical at any worker count:
//
//   - workers <= 1 (default): classic streaming — one record of the
//     current source is decoded per fill, buffers are recycled.
//   - workers > 1 (SetWorkers): every source is decoded to completion on
//     the parallel worker pool first (trading memory for throughput),
//     then served in the same order the sequential mode would produce.
//
// Byte-backed sources take the zero-copy fast path: records are read by
// mrt.BytesReader, whose Record.Body sub-slices Source.Data with no
// bufio layer and no per-record copy.
package bgpstream

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ElemType classifies a stream element.
type ElemType uint8

// Element types.
const (
	ElemRIB ElemType = iota + 1
	ElemAnnounce
	ElemWithdraw
	ElemState
)

// String returns the single-letter BGPStream convention.
func (t ElemType) String() string {
	switch t {
	case ElemRIB:
		return "R"
	case ElemAnnounce:
		return "A"
	case ElemWithdraw:
		return "W"
	case ElemState:
		return "S"
	default:
		return "?"
	}
}

// Elem is one route event.
type Elem struct {
	Type      ElemType
	Timestamp uint32
	Collector string
	PeerAddr  netip.Addr
	PeerASN   uint32
	Prefix    netip.Prefix
	// Path is the raw AS path (announce and RIB elements).
	Path aspath.Path
	// Communities carries the COMMUNITIES attribute when present.
	Communities []uint32
	// PathID is the ADD-PATH identifier, when the encoding carries one.
	PathID uint32
	// MsgIndex groups elements that arrived in the same BGP UPDATE (or
	// the same RIB record). Unique per Stream.
	MsgIndex int
	// InternedPath is the intern-table ID of the flattened Path when the
	// stream interns paths (SetIntern) and this is a RIB or announce
	// element whose path flattened cleanly; PathUnusable reports that the
	// flattening failed (an AS_SET with multiple members or a
	// confederation segment). Without an intern table both stay zero.
	InternedPath aspath.ID
	PathUnusable bool
	// OldState/NewState are set on ElemState.
	OldState, NewState uint16
}

// Warning codes: stable, machine-readable categories for warn reasons.
// The Reason string carries the human detail; the Code keys telemetry
// counters (obs: bgpstream.warnings{reason=<code>,subtype=N}).
const (
	WarnRecordError       = "record-error"
	WarnPeerIndexTable    = "peer-index-table"
	WarnRIBRecord         = "rib-record"
	WarnPeerIndexRange    = "peer-index-range"
	WarnRIBAttrs          = "rib-attrs"
	WarnUnknownTD2Subtype = "unknown-td2-subtype"
	WarnStateChange       = "state-change"
	WarnBGP4MPMessage     = "bgp4mp-message"
	WarnUnknownBGP4MP     = "unknown-bgp4mp-subtype"
	WarnUnknownMRTType    = "unknown-mrt-type"
	WarnBGPHeader         = "bgp-header"
	WarnUpdateParse       = "update-parse"
	WarnAddPathSuspect    = "addpath-suspect"
	WarnResync            = "resync"
	WarnQuarantine        = "source-quarantined"
	// WarnSequenceGap flags a TABLE_DUMP_V2 RIB sequence number that is
	// not the successor of the previous record's — evidence of a missing
	// shard, a duplicated record, or reordering. The record itself is
	// still consumed; the warning is the signal that data around it was
	// lost or rearranged.
	WarnSequenceGap = "rib-sequence-gap"
)

// Warning records a record- or message-level parse problem.
type Warning struct {
	Collector string
	PeerASN   uint32
	Subtype   uint16
	// Code is the stable category (Warn* constants).
	Code string
	// Reason is the human-readable detail.
	Reason string
}

// Source is one MRT input attributed to a collector. Byte-backed
// sources (Data set) are reusable: every Stream opens a fresh reader.
// Reader-backed sources (R set) are single-use.
type Source struct {
	Collector string
	// Data is the archive contents; preferred over R when non-nil.
	Data []byte
	// R streams the archive; consumed by the first Stream that reads it.
	R io.Reader
	// Options sets the BGP decode options for update messages in this
	// source (RIB attribute blocks always use AS4 encoding per RFC 6396).
	Options bgp.Options
}

// BytesSource wraps an in-memory archive (reusable across Streams).
func BytesSource(collector string, data []byte, opt bgp.Options) Source {
	return Source{Collector: collector, Data: data, Options: opt}
}

// recordReader is the reader side of one source: mrt.BytesReader for
// byte-backed sources, mrt.Reader for io.Reader-backed ones. Both have
// the same Next/Resync error contract, so the degradation machinery is
// reader-agnostic.
type recordReader interface {
	// Next returns the next record; the Body may alias reader-owned
	// storage and is valid only until the following Next/Resync call.
	//
	//atomlint:borrowed view into reader-owned storage, valid until the next Next/Resync
	Next() (mrt.Record, error)
	Resync(maxScan int) (int, error)
}

// open returns a fresh record reader over the source. Byte-backed
// sources take the zero-copy fast path: no bytes.Reader wrapper, no
// bufio layer, no per-record body copy — every Record.Body is a
// sub-slice of Data. Warm re-streams of the same Source (RunSplits
// re-reads the same archives per day) therefore cost one small struct,
// not a buffer.
func (s *Source) open() recordReader {
	if s.Data != nil {
		return mrt.NewBytesReader(s.Data)
	}
	r := mrt.NewReader(s.R)
	// Everything decode retains is either copied out of the record body
	// or owned by the attribute cache, so the reader can hand every
	// record the same body buffer.
	r.SetReuseBuffer(true)
	return r
}

// Filter selects elements. Zero value passes everything.
type Filter struct {
	Collectors map[string]bool   // nil = all
	PeerASNs   map[uint32]bool   // nil = all
	Types      map[ElemType]bool // nil = all
	StartTime  uint32            // 0 = open
	EndTime    uint32            // 0 = open
	V6Only     bool
	V4Only     bool
}

// Match reports whether e passes the filter.
func (f *Filter) Match(e *Elem) bool {
	if f == nil {
		return true
	}
	if f.Collectors != nil && !f.Collectors[e.Collector] {
		return false
	}
	if f.PeerASNs != nil && !f.PeerASNs[e.PeerASN] {
		return false
	}
	if f.Types != nil && !f.Types[e.Type] {
		return false
	}
	if f.StartTime != 0 && e.Timestamp < f.StartTime {
		return false
	}
	if f.EndTime != 0 && e.Timestamp > f.EndTime {
		return false
	}
	if f.V6Only || f.V4Only {
		if !e.Prefix.IsValid() {
			return false
		}
		v6 := e.Prefix.Addr().Is6() && !e.Prefix.Addr().Is4In6()
		if f.V6Only && !v6 {
			return false
		}
		if f.V4Only && v6 {
			return false
		}
	}
	return true
}

// sourceDecoder is one source's independent decode unit: reader, peer
// table, scratch, warnings and degradation accounting. In parallel mode
// each decoder runs to completion on its own worker; in sequential mode
// the Stream steps the current decoder one record at a time.
type sourceDecoder struct {
	src       Source
	collector string
	reader    recordReader
	inited    bool
	done      bool
	judged    bool

	peers []mrt.Peer
	// elems is the decoded element buffer; head marks the first element
	// not yet served by the Stream merge. MsgIndex values in elems are
	// source-local (1-based); the merge rebases them.
	elems    []Elem
	head     int
	msgCount int

	warnings    []Warning
	elemCount   int
	records     int
	skipped     int
	resyncs     int
	bytes       int64
	resyncsLeft int
	stateFlaps  map[uint32]int

	// RIB sequence tracking: TABLE_DUMP_V2 writers emit strictly
	// consecutive sequence numbers, so a jump between decoded records
	// means records were lost, duplicated, or reordered even when every
	// surviving record parses cleanly.
	ribSeqNext  uint32
	ribSeqValid bool

	// Decode scratch, reused across records: parsed attribute payloads
	// are deduped through attrCache (archives repeat a small set of
	// distinct paths/next-hops/communities), and msg/upd/ribAttrs absorb
	// the per-record parse allocations.
	attrCache *bgp.AttrCache
	msg       mrt.Message
	upd       bgp.Update
	ribAttrs  []bgp.Attr

	// Interning (optional): flattened-path scratch and the shared table.
	intern *aspath.Table
	seqBuf aspath.Seq

	// Telemetry, snapshotted from the Stream before decoding starts so
	// workers never build counter keys per record. All nil-safe.
	metrics     *obs.Registry
	recordsC    *obs.Counter
	elemC       [5]*obs.Counter
	sourceElemC *obs.Counter
}

// Stream iterates elements across sources in order.
type Stream struct {
	sources []Source
	filter  *Filter
	workers int
	intern  *aspath.Table

	decs    []*sourceDecoder
	running bool

	// Merge cursor: decoders are served strictly in source order;
	// msgBase is the number of messages the already-served decoders
	// produced, rebasing source-local MsgIndex onto a global sequence.
	cur       int
	msgBase   int
	batch     []Elem
	batchHead int

	// Degradation budget (SetDegradation) and the serve-side quarantine
	// verdicts, judged in source order as the merge passes each source.
	degradeMin  int
	degradeMax  float64
	quarantined map[string]bool

	// attrCache is shared by all decoders in sequential mode (it is not
	// safe for concurrent use; parallel decoders get their own).
	attrCache *bgp.AttrCache

	// Telemetry (nil metrics = disabled; hot counters are cached so
	// the enabled path skips per-record key building).
	metrics   *obs.Registry
	recordsC  *obs.Counter
	filteredC *obs.Counter
	elemC     [5]*obs.Counter // indexed by ElemType
}

// NewStream builds a stream over the sources, applying the filter (nil
// passes all). The attribute cache is pooled and attached lazily on the
// first Next/NextBatch, so constructing a stream allocates no decode
// state.
func NewStream(filter *Filter, sources ...Source) *Stream {
	return &Stream{
		sources: sources, filter: filter,
		degradeMin: DefaultDegradeMinRecords, degradeMax: DefaultDegradeMaxSkipRatio,
	}
}

// Buffer pools, shared by every Stream in the process. A longitudinal
// run builds thousands of short-lived streams (one per archive set per
// era); recycling the two big per-stream buffers — the parallel-mode
// element buffers, whose growth dominated parallel decode's allocation
// bill, and the attribute caches — keeps the steady-state cost of a
// new stream near zero. AttrCache reuse is safe across streams: its
// maps memoize by content and are insert-only, so entries from one
// archive are either re-hit (same wire bytes → same attribute) or
// simply ignored by the next.
var (
	elemsPool = sync.Pool{New: func() any {
		buf := make([]Elem, 0, 4096)
		return &buf
	}}
	attrCachePool = sync.Pool{New: func() any { return bgp.NewAttrCache() }}
)

// forceParallelDecode bypasses the effective-CPU gate on parallel
// materialization (see ensureRunning). Process-wide because it is a
// test seam, not configuration: determinism tests and decode benchmarks
// must exercise the real parallel path even on single-core hosts, where
// the gate would otherwise (correctly) fall back to sequential decode.
var forceParallelDecode atomic.Bool

// ForceParallelDecode makes SetWorkers(n>1) take the parallel
// materialization path even when the host has a single effective CPU.
// For tests and benchmarks pinning parallel-path behavior; production
// callers should let the stream decide.
func ForceParallelDecode(on bool) { forceParallelDecode.Store(on) }

// Degradation-budget defaults: a source is quarantined when, having
// produced at least DefaultDegradeMinRecords records (decoded plus
// skipped), more than DefaultDegradeMaxSkipRatio of them were skipped.
// Small archives never qualify, so a short truncated tail does not
// condemn a feed.
const (
	DefaultDegradeMinRecords   = 16
	DefaultDegradeMaxSkipRatio = 0.3
	// maxResyncsPerSource bounds boundary recovery: a source that keeps
	// losing framing is abandoned rather than scanned forever.
	maxResyncsPerSource = 8
	// maxResyncScan bounds each forward scan for a plausible header.
	maxResyncScan = 1 << 20
)

// SetDegradation overrides the per-source degradation budget. A source
// whose skip ratio exceeds maxSkipRatio after at least minRecords
// records is quarantined: its collector lands in Quarantined() and a
// bgpstream.source_quarantined counter fires. minRecords <= 0 disables
// quarantine entirely.
func (s *Stream) SetDegradation(minRecords int, maxSkipRatio float64) {
	s.degradeMin = minRecords
	s.degradeMax = maxSkipRatio
}

// SetWorkers sets the decode fan-out. n > 1 decodes every source
// concurrently (n caps the worker count) before elements are served;
// n <= 0 means one worker per CPU, the repo-wide -workers convention;
// n == 1 keeps the classic sequential streaming decode. The served
// element order is byte-identical at every worker count. Must be called
// before the first Next/NextBatch.
func (s *Stream) SetWorkers(n int) { s.workers = parallel.Workers(n) }

// SetIntern gives the stream an AS-path intern table: decoders flatten
// each RIB/announce element's path and intern it into t — concurrently
// in parallel mode, which t's striped locks make safe — stamping
// Elem.InternedPath/PathUnusable so consumers skip the flatten+intern
// work entirely. Must be called before the first Next/NextBatch.
func (s *Stream) SetIntern(t *aspath.Table) { s.intern = t }

// Quarantined returns the collectors whose sources blew their
// degradation budget, sorted. Complete only once the stream has
// drained (budgets are judged when each source ends).
func (s *Stream) Quarantined() []string {
	out := make([]string, 0, len(s.quarantined))
	for name := range s.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StateFlaps returns, per peer ASN, how many BGP state-change elements
// the stream decoded — the raw session-flap signal sanitize's
// flap-storm filter consumes. Complete once the stream has drained.
func (s *Stream) StateFlaps() map[uint32]int {
	var out map[uint32]int
	for _, d := range s.decs {
		for as, n := range d.stateFlaps {
			if out == nil {
				out = make(map[uint32]int)
			}
			out[as] += n
		}
	}
	return out
}

// SourceStat summarizes one collector's degradation accounting.
type SourceStat struct {
	Records int // records decoded
	Skipped int // records (or RIB entries) skipped with a warning
	Resyncs int // boundary recoveries
}

// SourceStats returns per-collector degradation accounting, summed
// across sources sharing a collector name.
func (s *Stream) SourceStats() map[string]SourceStat {
	s.ensureDecoders()
	out := make(map[string]SourceStat, len(s.sources))
	for _, d := range s.decs {
		st := out[d.collector]
		st.Records += d.records
		st.Skipped += d.skipped
		st.Resyncs += d.resyncs
		out[d.collector] = st
	}
	return out
}

// DecodedBytes returns the total MRT wire bytes decoded so far, across
// all sources (headers included). Complete once the stream has drained.
func (s *Stream) DecodedBytes() int64 {
	var n int64
	for _, d := range s.decs {
		n += d.bytes
	}
	return n
}

// judge applies the degradation budget to a finished decoder, exactly
// once, as the merge cursor passes it — serve order, so the verdict
// sequence (and the quarantine warning's position in Warnings) is
// identical at every worker count.
func (s *Stream) judge(d *sourceDecoder) {
	if d.judged {
		return
	}
	d.judged = true
	total := d.records + d.skipped
	if s.degradeMin <= 0 || total < s.degradeMin {
		return
	}
	if float64(d.skipped)/float64(total) <= s.degradeMax {
		return
	}
	if s.quarantined == nil {
		s.quarantined = make(map[string]bool)
	}
	if !s.quarantined[d.collector] {
		s.quarantined[d.collector] = true
		d.warn(0, 0, WarnQuarantine, fmt.Sprintf(
			"source quarantined: %d/%d records skipped", d.skipped, total))
		if s.metrics != nil {
			s.metrics.Counter("bgpstream.source_quarantined", "collector", d.collector).Inc()
		}
	}
}

// SetMetrics attaches a telemetry registry. The stream increments:
//
//	bgpstream.records                          MRT records decoded
//	bgpstream.elems{type=R|A|W|S}              elements emitted (pre-filter)
//	bgpstream.elems_filtered                   elements dropped by the filter
//	bgpstream.source_elems{collector=...}      per-collector elements
//	bgpstream.records_skipped{reason=...}      records dropped with a warning
//	bgpstream.warnings{reason=...,subtype=N}   warnings by code and subtype
//	bgpstream.resyncs / bgpstream.resync_bytes boundary recoveries after corruption
//	bgpstream.decode_bytes                     MRT wire bytes decoded
//	bgpstream.source_quarantined{collector=C}  degradation budget exceeded
//
// A nil registry (the default) disables all of it at near-zero cost.
// Must be called before the first Next/NextBatch.
func (s *Stream) SetMetrics(r *obs.Registry) {
	s.metrics = r
	s.recordsC = r.Counter("bgpstream.records")
	s.filteredC = r.Counter("bgpstream.elems_filtered")
	for t := ElemRIB; t <= ElemState; t++ {
		s.elemC[t] = r.Counter("bgpstream.elems", "type", t.String())
	}
}

// Warnings returns parse problems encountered so far, in source order
// (within a source, in decode order).
func (s *Stream) Warnings() []Warning {
	var out []Warning
	for _, d := range s.decs {
		out = append(out, d.warnings...)
	}
	return out
}

// SourceElemCounts returns, per collector, how many elements each
// source emitted (pre-filter), summed across sources sharing a
// collector name. A zero count flags an archive that matched but
// decoded nothing — e.g. a bad -updates glob entry.
func (s *Stream) SourceElemCounts() map[string]int {
	s.ensureDecoders()
	out := make(map[string]int, len(s.sources))
	for _, d := range s.decs {
		out[d.collector] += d.elemCount
	}
	return out
}

// ensureDecoders creates the per-source decode units (cheap: no I/O, no
// reader construction — that happens on first step).
func (s *Stream) ensureDecoders() {
	if s.decs != nil || len(s.sources) == 0 {
		return
	}
	s.decs = make([]*sourceDecoder, len(s.sources))
	for i := range s.sources {
		s.decs[i] = &sourceDecoder{
			src:       s.sources[i],
			collector: s.sources[i].Collector,
		}
	}
}

// ensureRunning finalizes configuration (metrics snapshot, intern
// table, attribute-cache sharing) and, in parallel mode, decodes every
// source to completion on the worker pool. Serving then proceeds in
// deterministic source order either way.
func (s *Stream) ensureRunning() {
	if s.running {
		return
	}
	s.running = true
	s.ensureDecoders()
	// Parallel materialization only pays off when the hardware can
	// actually run decoders concurrently: it trades a full in-memory
	// copy of every source's elements for decode overlap, and with one
	// effective CPU (GOMAXPROCS clamped down, or a single-core host with
	// GOMAXPROCS inflated past it) there is no overlap to buy — the
	// sequential path is faster and far lighter on memory. The served
	// element sequence is byte-identical either way, so this is purely a
	// throughput decision. ForceParallelDecode lets tests and benches
	// pin the parallel path's behavior on any hardware, and race builds
	// always take it — -race runs exist to catch synchronization bugs.
	par := s.workers > 1 && len(s.decs) > 1 &&
		(raceEnabled || forceParallelDecode.Load() ||
			min(runtime.GOMAXPROCS(0), runtime.NumCPU()) > 1)
	if !par && s.attrCache == nil {
		s.attrCache = attrCachePool.Get().(*bgp.AttrCache)
	}
	for _, d := range s.decs {
		d.metrics = s.metrics
		d.recordsC = s.recordsC
		d.elemC = s.elemC
		d.intern = s.intern
		if s.metrics != nil {
			d.sourceElemC = s.metrics.Counter("bgpstream.source_elems", "collector", d.collector)
		}
		if par {
			// The attribute cache is not safe for concurrent use:
			// parallel decoders each get their own (pooled). Their
			// element buffers are pooled too — each will hold the whole
			// source's decoded elements.
			d.attrCache = attrCachePool.Get().(*bgp.AttrCache)
			buf := elemsPool.Get().(*[]Elem)
			// Right-size up front: the pool mixes buffers from sources of
			// very different sizes, and growing a small recycled buffer to
			// a big source's element count would reallocate the whole
			// doubling chain on every reuse. Measured element densities
			// sit around one element per 25-60 archive bytes (RIB entries
			// are denser than update messages), so bytes/32 lands within
			// ~1.3x of the real count either way — at worst one final
			// append growth instead of a chain.
			if est := len(d.src.Data) / 32; cap(*buf) < est {
				*buf = make([]Elem, 0, est)
			}
			d.elems = (*buf)[:0]
		} else {
			d.attrCache = s.attrCache
		}
	}
	if par {
		parallel.ForEach(s.workers, len(s.decs), func(i int) error {
			s.decs[i].drain()
			return nil
		})
	}
}

// fill advances the merge cursor until a run of decoded elements is
// staged in s.batch: strictly source order, record order within each
// source, MsgIndex rebased — the served stream is byte-identical at any
// worker count. Returns io.EOF when every source has drained.
//
//atomlint:hotpath
func (s *Stream) fill() error {
	for {
		if s.cur >= len(s.decs) {
			// Everything is served; hand the shared attribute cache back
			// to the pool (parallel mode never attached one).
			if s.attrCache != nil {
				attrCachePool.Put(s.attrCache)
				s.attrCache = nil
			}
			return io.EOF
		}
		d := s.decs[s.cur]
		if d.head < len(d.elems) {
			run := d.elems[d.head:]
			d.head = len(d.elems)
			if s.msgBase != 0 {
				for i := range run {
					run[i].MsgIndex += s.msgBase
				}
			}
			s.batch = run
			s.batchHead = 0
			return nil
		}
		if !d.done {
			// Sequential streaming: recycle the served element buffer
			// and decode the next record into it.
			d.elems = d.elems[:0]
			d.head = 0
			d.step()
			continue
		}
		s.judge(d)
		s.msgBase += d.msgCount
		s.release(d)
		s.cur++
	}
}

// release recycles a fully-served decoder's big buffers. Safe by the
// NextBatch contract: the merge only advances past d once every one of
// its elements has been served and the following Next/NextBatch call —
// the one driving this fill — has already invalidated the previous
// batch. The element buffer is zeroed before pooling so recycled
// capacity does not pin Path/Communities backing arrays, and the
// attribute cache goes back only in parallel mode (sequential decoders
// borrow the stream's shared cache, released at EOF).
func (s *Stream) release(d *sourceDecoder) {
	if d.attrCache != nil && d.attrCache != s.attrCache {
		attrCachePool.Put(d.attrCache)
	}
	d.attrCache = nil
	if cap(d.elems) > 0 {
		buf := d.elems[:cap(d.elems)]
		clear(buf)
		buf = buf[:0]
		elemsPool.Put(&buf)
		d.elems = nil
		d.head = 0
	}
}

// Next returns the next element, or io.EOF when all sources drain.
func (s *Stream) Next() (Elem, error) {
	s.ensureRunning()
	for {
		if s.batchHead < len(s.batch) {
			e := s.batch[s.batchHead]
			s.batchHead++
			if s.filter.Match(&e) {
				return e, nil
			}
			s.filteredC.Inc()
			continue
		}
		if err := s.fill(); err != nil {
			return Elem{}, err
		}
	}
}

// NextBatch returns the next run of elements passing the filter, or
// io.EOF when all sources drain. The concatenation of batches is
// exactly the sequence Next would produce, and a batch never spans two
// sources. The returned slice is valid only until the following
// Next/NextBatch call — consume (or copy) it before advancing. When the
// backing source is byte-backed, element payloads may alias Source.Data
// (see DESIGN.md "Zero-copy ownership").
//
//atomlint:hotpath
//atomlint:borrowed batch is valid until the next Next/NextBatch call; copy what outlives the window
func (s *Stream) NextBatch() ([]Elem, error) {
	s.ensureRunning()
	for {
		if s.batchHead >= len(s.batch) {
			if err := s.fill(); err != nil {
				return nil, err
			}
		}
		b := s.batch[s.batchHead:]
		s.batchHead = len(s.batch)
		if s.filter == nil {
			return b, nil
		}
		// Compact in place: writes trail reads, so the filtered batch
		// reuses the decoded buffer without copying.
		out := b[:0]
		for i := range b {
			if s.filter.Match(&b[i]) {
				out = append(out, b[i])
			} else {
				s.filteredC.Inc()
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// All drains the stream.
func (s *Stream) All() ([]Elem, error) {
	var out []Elem
	for {
		e, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// drain decodes the whole source (parallel mode).
func (d *sourceDecoder) drain() {
	for !d.done {
		d.step()
	}
}

// step decodes one record: reader init on first use, EOF/resync
// handling, then the type dispatch. Mirrors the classic sequential
// loop exactly so degradation accounting is worker-count independent.
func (d *sourceDecoder) step() {
	if d.done {
		return
	}
	if !d.inited {
		d.inited = true
		d.reader = d.src.open()
		d.resyncsLeft = maxResyncsPerSource
	}
	rec, err := d.reader.Next()
	if err == io.EOF {
		d.finish()
		return
	}
	if err != nil {
		// A corrupt record boundary: warn, then scan forward for the
		// next plausible MRT header instead of abandoning the file. A
		// source that keeps losing framing exhausts its resync budget
		// and is dropped.
		d.warn(0, 0, WarnRecordError, fmt.Sprintf("record error: %v", err))
		if d.resyncsLeft > 0 {
			d.resyncsLeft--
			skipped, rerr := d.reader.Resync(maxResyncScan)
			if rerr == nil {
				d.resyncs++
				d.warn(0, 0, WarnResync, fmt.Sprintf("resynchronized after %d bytes", skipped))
				if d.metrics != nil {
					d.metrics.Counter("bgpstream.resyncs").Inc()
					d.metrics.Counter("bgpstream.resync_bytes").Add(int64(skipped))
				}
				return
			}
		}
		d.finish()
		return
	}
	d.recordsC.Inc()
	d.records++
	d.bytes += int64(len(rec.Body)) + 12
	if rec.Type == mrt.TypeBGP4MPET {
		d.bytes += 4
	}
	d.decode(rec)
}

// finish marks the source drained and flushes its byte count.
func (d *sourceDecoder) finish() {
	d.done = true
	if d.metrics != nil && d.bytes != 0 {
		d.metrics.Counter("bgpstream.decode_bytes").Add(d.bytes)
	}
}

// emit queues an element, interning its path when the stream was given
// an intern table, and does the per-element accounting.
func (d *sourceDecoder) emit(e Elem) {
	if d.intern != nil && (e.Type == ElemRIB || e.Type == ElemAnnounce) {
		seq, err := e.Path.AppendSequence(d.seqBuf[:0])
		if err != nil {
			e.PathUnusable = true
		} else {
			d.seqBuf = seq
			e.InternedPath = d.intern.Intern(seq)
		}
	}
	d.elems = append(d.elems, e)
	d.elemCount++
	d.elemC[e.Type].Inc()
	d.sourceElemC.Inc()
}

func (d *sourceDecoder) warn(peerASN uint32, subtype uint16, code, reason string) {
	d.warnings = append(d.warnings, Warning{
		Collector: d.collector,
		PeerASN:   peerASN,
		Subtype:   subtype,
		Code:      code,
		Reason:    reason,
	})
	// Every warning except the ADD-PATH heuristic and the resync /
	// quarantine notices means the record (or RIB entry) it covers was
	// skipped; skips count against the source's degradation budget.
	skip := code != WarnAddPathSuspect && code != WarnResync && code != WarnQuarantine &&
		code != WarnSequenceGap
	if skip {
		d.skipped++
	}
	if d.metrics != nil {
		d.metrics.Counter("bgpstream.warnings", "reason", code, "subtype", fmt.Sprint(subtype)).Inc()
		if skip {
			d.metrics.Counter("bgpstream.records_skipped", "reason", code).Inc()
		}
	}
}

func (d *sourceDecoder) decode(rec mrt.Record) {
	switch rec.Type {
	case mrt.TypeTableDumpV2:
		switch {
		case rec.Subtype == mrt.SubPeerIndexTable:
			pit, err := mrt.ParsePeerIndexTable(rec.Body)
			if err != nil {
				d.warn(0, rec.Subtype, WarnPeerIndexTable, fmt.Sprintf("peer index table: %v", err))
				return
			}
			d.peers = pit.Peers
		case rec.IsRIB():
			rib, err := mrt.ParseRIB(rec.Subtype, rec.Body)
			if err != nil {
				d.warn(0, rec.Subtype, WarnRIBRecord, fmt.Sprintf("RIB record: %v", err))
				return
			}
			if d.ribSeqValid && rib.Sequence != d.ribSeqNext {
				d.warn(0, rec.Subtype, WarnSequenceGap,
					fmt.Sprintf("RIB sequence %d, expected %d: records lost, duplicated, or reordered", rib.Sequence, d.ribSeqNext))
			}
			d.ribSeqNext, d.ribSeqValid = rib.Sequence+1, true
			d.msgCount++
			for _, entry := range rib.Entries {
				if int(entry.PeerIndex) >= len(d.peers) {
					d.warn(0, rec.Subtype, WarnPeerIndexRange, fmt.Sprintf("peer index %d out of range", entry.PeerIndex))
					continue
				}
				peer := d.peers[entry.PeerIndex]
				// RIB attribute blocks always use 4-octet ASNs (RFC 6396
				// §4.3.4); ADD-PATH follows the record subtype.
				attrs, err := bgp.AppendAttributes(d.ribAttrs[:0], entry.Attrs,
					bgp.Options{AS4: true, AddPath: rib.AddPath, Cache: d.attrCache})
				if err != nil {
					d.warn(peer.ASN, rec.Subtype, WarnRIBAttrs, fmt.Sprintf("RIB attributes: %v", err))
					continue
				}
				d.ribAttrs = attrs[:0]
				e := Elem{
					Type: ElemRIB, Timestamp: rec.Timestamp, Collector: d.collector,
					PeerAddr: peer.Addr, PeerASN: peer.ASN, Prefix: rib.Prefix,
					PathID: entry.PathID, MsgIndex: d.msgCount,
				}
				applyAttrs(&e, attrs)
				d.emit(e)
			}
		default:
			d.warn(0, rec.Subtype, WarnUnknownTD2Subtype, fmt.Sprintf("unknown TABLE_DUMP_V2 record subtype %d", rec.Subtype))
		}
	case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
		switch rec.Subtype {
		case mrt.SubStateChange, mrt.SubStateChangeAS4:
			sc, err := mrt.ParseStateChange(rec.Subtype, rec.Body)
			if err != nil {
				d.warn(0, rec.Subtype, WarnStateChange, fmt.Sprintf("state change: %v", err))
				return
			}
			d.msgCount++
			if d.stateFlaps == nil {
				d.stateFlaps = make(map[uint32]int)
			}
			d.stateFlaps[sc.PeerAS]++
			d.emit(Elem{
				Type: ElemState, Timestamp: rec.Timestamp, Collector: d.collector,
				PeerAddr: sc.PeerAddr, PeerASN: sc.PeerAS,
				OldState: sc.OldState, NewState: sc.NewState, MsgIndex: d.msgCount,
			})
		case mrt.SubMessage, mrt.SubMessageAS4, mrt.SubMessageAP, mrt.SubMessageAS4AP:
			//atomlint:scratch d.msg is per-decoder scratch, overwritten on every record; its views never cross a record boundary
			if err := mrt.ParseMessageInto(&d.msg, rec.Subtype, rec.Body); err != nil {
				d.warn(0, rec.Subtype, WarnBGP4MPMessage, fmt.Sprintf("BGP4MP message: %v", err))
				return
			}
			d.decodeUpdate(rec, &d.msg)
		default:
			d.warn(0, rec.Subtype, WarnUnknownBGP4MP, fmt.Sprintf("unknown BGP4MP record subtype %d", rec.Subtype))
		}
	default:
		d.warn(0, rec.Subtype, WarnUnknownMRTType, fmt.Sprintf("unknown MRT record type %d", rec.Type))
	}
}

func (d *sourceDecoder) decodeUpdate(rec mrt.Record, msg *mrt.Message) {
	h, err := bgp.ParseHeader(msg.Data)
	if err != nil {
		d.warn(msg.PeerAS, rec.Subtype, WarnBGPHeader, fmt.Sprintf("BGP header: %v", err))
		return
	}
	if h.Type != bgp.MsgUpdate {
		// Keepalives etc. are legal in archives; ignore silently.
		return
	}
	opt := d.src.Options
	opt.AS4 = msg.AS4
	opt.AddPath = msg.AddPath
	opt.Cache = d.attrCache
	u := &d.upd
	if err := bgp.ParseUpdateInto(u, msg.Data, opt); err != nil {
		d.warn(msg.PeerAS, rec.Subtype, WarnUpdateParse, fmt.Sprintf("UPDATE parse: %v", err))
		return
	}
	// MP_REACH/MP_UNREACH NLRI are folded in without the copying
	// Reachable/Unreachable helpers.
	var mpAnn, mpWdr []bgp.NLRI
	if m, ok := u.Attr(bgp.AttrTypeMPReach).(bgp.MPReach); ok && m.SAFI == bgp.SAFIUnicast {
		mpAnn = m.NLRI
	}
	if m, ok := u.Attr(bgp.AttrTypeMPUnreach).(bgp.MPUnreach); ok && m.SAFI == bgp.SAFIUnicast {
		mpWdr = m.NLRI
	}
	// ADD-PATH mismatch signature: reading ADD-PATH NLRI as plain NLRI
	// turns the 4-byte path identifiers into phantom default routes.
	// Two or more /0 entries in one message is never legitimate.
	if zeroLen(u.Announced)+zeroLen(mpAnn)+zeroLen(u.Withdrawn)+zeroLen(mpWdr) >= 2 {
		d.warn(msg.PeerAS, rec.Subtype, WarnAddPathSuspect, "suspicious NLRI: repeated zero-length prefixes (possible ADD-PATH mismatch)")
	}
	d.msgCount++
	base := Elem{
		Timestamp: rec.Timestamp, Collector: d.collector,
		PeerAddr: msg.PeerAddr, PeerASN: msg.PeerAS, MsgIndex: d.msgCount,
	}
	var path aspath.Path
	if p, ok := u.ASPathAttr(); ok {
		path = p
	}
	var comms []uint32
	if c, ok := u.Attr(bgp.AttrTypeCommunities).(bgp.Communities); ok {
		comms = c
	}
	emitAll := func(t ElemType, nlri []bgp.NLRI) {
		for _, n := range nlri {
			e := base
			e.Type = t
			e.Prefix = n.Prefix
			e.PathID = n.PathID
			if t == ElemAnnounce {
				e.Path = path
				e.Communities = comms
			}
			d.emit(e)
		}
	}
	emitAll(ElemWithdraw, u.Withdrawn)
	emitAll(ElemWithdraw, mpWdr)
	emitAll(ElemAnnounce, u.Announced)
	emitAll(ElemAnnounce, mpAnn)
}

// zeroLen counts zero-length (default-route) NLRI entries.
func zeroLen(nlri []bgp.NLRI) int {
	n := 0
	for _, x := range nlri {
		if x.Prefix.Bits() == 0 {
			n++
		}
	}
	return n
}

func applyAttrs(e *Elem, attrs []bgp.Attr) {
	var path, path4 aspath.Path
	var have4 bool
	for _, a := range attrs {
		switch v := a.(type) {
		case bgp.ASPath:
			path = v.Path
		case bgp.AS4Path:
			path4, have4 = v.Path, true
		case bgp.Communities:
			e.Communities = v
		}
	}
	if have4 {
		u := bgp.Update{Attrs: []bgp.Attr{bgp.ASPath{Path: path}, bgp.AS4Path{Path: path4}}}
		if p, ok := u.ASPathAttr(); ok {
			path = p
		}
	}
	// The attrs handed in are cache-owned (content-memoized, immutable,
	// stream-lifetime) — storing their views in the batch Elem is the
	// documented NextBatch window, not an escape.
	//atomlint:owned cache-owned attributes are immutable and outlive the batch window
	e.Path = path
}
