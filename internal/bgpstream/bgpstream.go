// Package bgpstream provides a BGPStream-style element abstraction over
// MRT archives: RIB rows and update announce/withdraw events, flattened
// to one element per (prefix, peer), with collector attribution, filter
// predicates, and the per-message grouping the update-correlation
// analysis needs (all prefixes of one UPDATE share a MsgIndex).
//
// Malformed records do not abort the stream: they are skipped and
// recorded as Warnings, mirroring how the paper's pipeline turns
// BGPStream warnings ("unknown BGP4MP record subtype 9", ADD-PATH parse
// errors) into abnormal-peer signals (§A8.3).
package bgpstream

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/obs"
)

// ElemType classifies a stream element.
type ElemType uint8

// Element types.
const (
	ElemRIB ElemType = iota + 1
	ElemAnnounce
	ElemWithdraw
	ElemState
)

// String returns the single-letter BGPStream convention.
func (t ElemType) String() string {
	switch t {
	case ElemRIB:
		return "R"
	case ElemAnnounce:
		return "A"
	case ElemWithdraw:
		return "W"
	case ElemState:
		return "S"
	default:
		return "?"
	}
}

// Elem is one route event.
type Elem struct {
	Type      ElemType
	Timestamp uint32
	Collector string
	PeerAddr  netip.Addr
	PeerASN   uint32
	Prefix    netip.Prefix
	// Path is the raw AS path (announce and RIB elements).
	Path aspath.Path
	// Communities carries the COMMUNITIES attribute when present.
	Communities []uint32
	// PathID is the ADD-PATH identifier, when the encoding carries one.
	PathID uint32
	// MsgIndex groups elements that arrived in the same BGP UPDATE (or
	// the same RIB record). Unique per Stream.
	MsgIndex int
	// OldState/NewState are set on ElemState.
	OldState, NewState uint16
}

// Warning codes: stable, machine-readable categories for warn reasons.
// The Reason string carries the human detail; the Code keys telemetry
// counters (obs: bgpstream.warnings{reason=<code>,subtype=N}).
const (
	WarnRecordError       = "record-error"
	WarnPeerIndexTable    = "peer-index-table"
	WarnRIBRecord         = "rib-record"
	WarnPeerIndexRange    = "peer-index-range"
	WarnRIBAttrs          = "rib-attrs"
	WarnUnknownTD2Subtype = "unknown-td2-subtype"
	WarnStateChange       = "state-change"
	WarnBGP4MPMessage     = "bgp4mp-message"
	WarnUnknownBGP4MP     = "unknown-bgp4mp-subtype"
	WarnUnknownMRTType    = "unknown-mrt-type"
	WarnBGPHeader         = "bgp-header"
	WarnUpdateParse       = "update-parse"
	WarnAddPathSuspect    = "addpath-suspect"
	WarnResync            = "resync"
	WarnQuarantine        = "source-quarantined"
	// WarnSequenceGap flags a TABLE_DUMP_V2 RIB sequence number that is
	// not the successor of the previous record's — evidence of a missing
	// shard, a duplicated record, or reordering. The record itself is
	// still consumed; the warning is the signal that data around it was
	// lost or rearranged.
	WarnSequenceGap = "rib-sequence-gap"
)

// Warning records a record- or message-level parse problem.
type Warning struct {
	Collector string
	PeerASN   uint32
	Subtype   uint16
	// Code is the stable category (Warn* constants).
	Code string
	// Reason is the human-readable detail.
	Reason string
}

// Source is one MRT input attributed to a collector. Byte-backed
// sources (Data set) are reusable: every Stream opens a fresh reader.
// Reader-backed sources (R set) are single-use.
type Source struct {
	Collector string
	// Data is the archive contents; preferred over R when non-nil.
	Data []byte
	// R streams the archive; consumed by the first Stream that reads it.
	R io.Reader
	// Options sets the BGP decode options for update messages in this
	// source (RIB attribute blocks always use AS4 encoding per RFC 6396).
	Options bgp.Options
}

// BytesSource wraps an in-memory archive (reusable across Streams).
func BytesSource(collector string, data []byte, opt bgp.Options) Source {
	return Source{Collector: collector, Data: data, Options: opt}
}

// open returns a fresh reader over the source.
func (s *Source) open() io.Reader {
	if s.Data != nil {
		return bytes.NewReader(s.Data)
	}
	return s.R
}

// Filter selects elements. Zero value passes everything.
type Filter struct {
	Collectors map[string]bool   // nil = all
	PeerASNs   map[uint32]bool   // nil = all
	Types      map[ElemType]bool // nil = all
	StartTime  uint32            // 0 = open
	EndTime    uint32            // 0 = open
	V6Only     bool
	V4Only     bool
}

// Match reports whether e passes the filter.
func (f *Filter) Match(e *Elem) bool {
	if f == nil {
		return true
	}
	if f.Collectors != nil && !f.Collectors[e.Collector] {
		return false
	}
	if f.PeerASNs != nil && !f.PeerASNs[e.PeerASN] {
		return false
	}
	if f.Types != nil && !f.Types[e.Type] {
		return false
	}
	if f.StartTime != 0 && e.Timestamp < f.StartTime {
		return false
	}
	if f.EndTime != 0 && e.Timestamp > f.EndTime {
		return false
	}
	if f.V6Only || f.V4Only {
		if !e.Prefix.IsValid() {
			return false
		}
		v6 := e.Prefix.Addr().Is6() && !e.Prefix.Addr().Is4In6()
		if f.V6Only && !v6 {
			return false
		}
		if f.V4Only && v6 {
			return false
		}
	}
	return true
}

// Stream iterates elements across sources in order.
type Stream struct {
	sources []Source
	filter  *Filter

	cur       int
	reader    *mrt.Reader
	peers     []mrt.Peer // current source's PEER_INDEX_TABLE
	pending   []Elem
	pendHead  int // first unread element of pending
	msgIndex  int
	warnings  []Warning
	elemCount []int // per-source emitted elements (pre-filter)

	// Degradation accounting: per-source decoded/skipped record counts
	// and resync totals feed the quarantine decision (SetDegradation).
	srcRecords  []int
	srcSkipped  []int
	srcResyncs  []int
	resyncsLeft int
	degradeMin  int
	degradeMax  float64
	quarantined map[string]bool
	stateFlaps  map[uint32]int

	// RIB sequence tracking (per source): TABLE_DUMP_V2 writers emit
	// strictly consecutive sequence numbers, so a jump between decoded
	// records means records were lost, duplicated, or reordered even
	// when every surviving record parses cleanly.
	ribSeqNext  uint32
	ribSeqValid bool

	// Decode scratch, reused across records: parsed attribute payloads
	// are deduped through attrCache (archives repeat a small set of
	// distinct paths/next-hops/communities), and msg/upd/ribAttrs absorb
	// the per-record parse allocations.
	attrCache *bgp.AttrCache
	msg       mrt.Message
	upd       bgp.Update
	ribAttrs  []bgp.Attr

	// Telemetry (nil metrics = disabled; hot counters are cached so
	// the enabled path skips per-record key building).
	metrics      *obs.Registry
	recordsC     *obs.Counter
	filteredC    *obs.Counter
	elemC        [5]*obs.Counter // indexed by ElemType
	sourceElemC  *obs.Counter    // current source's per-collector counter
	sourceForCtr int             // source index sourceElemC was built for
}

// NewStream builds a stream over the sources, applying the filter (nil
// passes all).
func NewStream(filter *Filter, sources ...Source) *Stream {
	return &Stream{
		sources: sources, filter: filter,
		elemCount:  make([]int, len(sources)),
		srcRecords: make([]int, len(sources)),
		srcSkipped: make([]int, len(sources)),
		srcResyncs: make([]int, len(sources)),
		degradeMin: DefaultDegradeMinRecords, degradeMax: DefaultDegradeMaxSkipRatio,
		sourceForCtr: -1,
		attrCache:    bgp.NewAttrCache(),
	}
}

// Degradation-budget defaults: a source is quarantined when, having
// produced at least DefaultDegradeMinRecords records (decoded plus
// skipped), more than DefaultDegradeMaxSkipRatio of them were skipped.
// Small archives never qualify, so a short truncated tail does not
// condemn a feed.
const (
	DefaultDegradeMinRecords   = 16
	DefaultDegradeMaxSkipRatio = 0.3
	// maxResyncsPerSource bounds boundary recovery: a source that keeps
	// losing framing is abandoned rather than scanned forever.
	maxResyncsPerSource = 8
	// maxResyncScan bounds each forward scan for a plausible header.
	maxResyncScan = 1 << 20
)

// SetDegradation overrides the per-source degradation budget. A source
// whose skip ratio exceeds maxSkipRatio after at least minRecords
// records is quarantined: its collector lands in Quarantined() and a
// bgpstream.source_quarantined counter fires. minRecords <= 0 disables
// quarantine entirely.
func (s *Stream) SetDegradation(minRecords int, maxSkipRatio float64) {
	s.degradeMin = minRecords
	s.degradeMax = maxSkipRatio
}

// Quarantined returns the collectors whose sources blew their
// degradation budget, sorted. Complete only once the stream has
// drained (budgets are judged when each source ends).
func (s *Stream) Quarantined() []string {
	out := make([]string, 0, len(s.quarantined))
	for name := range s.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StateFlaps returns, per peer ASN, how many BGP state-change elements
// the stream decoded — the raw session-flap signal sanitize's
// flap-storm filter consumes. Complete once the stream has drained.
func (s *Stream) StateFlaps() map[uint32]int { return s.stateFlaps }

// SourceStat summarizes one collector's degradation accounting.
type SourceStat struct {
	Records int // records decoded
	Skipped int // records (or RIB entries) skipped with a warning
	Resyncs int // boundary recoveries
}

// SourceStats returns per-collector degradation accounting, summed
// across sources sharing a collector name.
func (s *Stream) SourceStats() map[string]SourceStat {
	out := make(map[string]SourceStat, len(s.sources))
	for i, src := range s.sources {
		st := out[src.Collector]
		st.Records += s.srcRecords[i]
		st.Skipped += s.srcSkipped[i]
		st.Resyncs += s.srcResyncs[i]
		out[src.Collector] = st
	}
	return out
}

// finishSource judges source i's degradation budget as it ends.
func (s *Stream) finishSource(i int) {
	total := s.srcRecords[i] + s.srcSkipped[i]
	if s.degradeMin <= 0 || total < s.degradeMin {
		return
	}
	if float64(s.srcSkipped[i])/float64(total) <= s.degradeMax {
		return
	}
	name := s.sources[i].Collector
	if s.quarantined == nil {
		s.quarantined = make(map[string]bool)
	}
	if !s.quarantined[name] {
		s.quarantined[name] = true
		s.warn(0, 0, WarnQuarantine, fmt.Sprintf(
			"source quarantined: %d/%d records skipped", s.srcSkipped[i], total))
		if s.metrics != nil {
			s.metrics.Counter("bgpstream.source_quarantined", "collector", name).Inc()
		}
	}
}

// SetMetrics attaches a telemetry registry. The stream increments:
//
//	bgpstream.records                          MRT records decoded
//	bgpstream.elems{type=R|A|W|S}              elements emitted (pre-filter)
//	bgpstream.elems_filtered                   elements dropped by the filter
//	bgpstream.source_elems{collector=...}      per-collector elements
//	bgpstream.records_skipped{reason=...}      records dropped with a warning
//	bgpstream.warnings{reason=...,subtype=N}   warnings by code and subtype
//	bgpstream.resyncs / bgpstream.resync_bytes boundary recoveries after corruption
//	bgpstream.source_quarantined{collector=C}  degradation budget exceeded
//
// A nil registry (the default) disables all of it at near-zero cost.
func (s *Stream) SetMetrics(r *obs.Registry) {
	s.metrics = r
	s.recordsC = r.Counter("bgpstream.records")
	s.filteredC = r.Counter("bgpstream.elems_filtered")
	for t := ElemRIB; t <= ElemState; t++ {
		s.elemC[t] = r.Counter("bgpstream.elems", "type", t.String())
	}
	s.sourceForCtr = -1
}

// Warnings returns parse problems encountered so far.
func (s *Stream) Warnings() []Warning { return s.warnings }

// SourceElemCounts returns, per collector, how many elements each
// source emitted (pre-filter), summed across sources sharing a
// collector name. A zero count flags an archive that matched but
// decoded nothing — e.g. a bad -updates glob entry.
func (s *Stream) SourceElemCounts() map[string]int {
	out := make(map[string]int, len(s.sources))
	for i, src := range s.sources {
		out[src.Collector] += s.elemCount[i]
	}
	return out
}

// emit queues an element and does the per-element accounting.
func (s *Stream) emit(e Elem) {
	s.pending = append(s.pending, e)
	s.elemCount[s.cur]++
	if s.metrics != nil {
		s.elemC[e.Type].Inc()
		if s.sourceForCtr != s.cur {
			s.sourceElemC = s.metrics.Counter("bgpstream.source_elems", "collector", s.sources[s.cur].Collector)
			s.sourceForCtr = s.cur
		}
		s.sourceElemC.Inc()
	}
}

// Next returns the next element, or io.EOF when all sources drain.
func (s *Stream) Next() (Elem, error) {
	for {
		if s.pendHead < len(s.pending) {
			e := s.pending[s.pendHead]
			s.pendHead++
			if s.filter.Match(&e) {
				return e, nil
			}
			s.filteredC.Inc()
			continue
		}
		// Queue drained: rewind it so the next record's elements reuse
		// the backing array instead of growing it forever.
		s.pending = s.pending[:0]
		s.pendHead = 0
		if s.reader == nil {
			if s.cur >= len(s.sources) {
				return Elem{}, io.EOF
			}
			s.reader = mrt.NewReader(s.sources[s.cur].open())
			// Everything decode retains is either copied out of the
			// record body or owned by attrCache, so the reader can hand
			// every record the same body buffer.
			s.reader.SetReuseBuffer(true)
			s.peers = nil
			s.resyncsLeft = maxResyncsPerSource
			s.ribSeqValid = false
		}
		rec, err := s.reader.Next()
		if err == io.EOF {
			s.finishSource(s.cur)
			s.reader = nil
			s.cur++
			continue
		}
		if err != nil {
			// A corrupt record boundary: warn, then scan forward for the
			// next plausible MRT header instead of abandoning the file. A
			// source that keeps losing framing exhausts its resync budget
			// and is dropped.
			s.warn(0, 0, WarnRecordError, fmt.Sprintf("record error: %v", err))
			if s.resyncsLeft > 0 {
				s.resyncsLeft--
				skipped, rerr := s.reader.Resync(maxResyncScan)
				if rerr == nil {
					s.srcResyncs[s.cur]++
					s.warn(0, 0, WarnResync, fmt.Sprintf("resynchronized after %d bytes", skipped))
					if s.metrics != nil {
						s.metrics.Counter("bgpstream.resyncs").Inc()
						s.metrics.Counter("bgpstream.resync_bytes").Add(int64(skipped))
					}
					continue
				}
			}
			s.finishSource(s.cur)
			s.reader = nil
			s.cur++
			continue
		}
		s.recordsC.Inc()
		s.srcRecords[s.cur]++
		s.decode(rec)
	}
}

// All drains the stream.
func (s *Stream) All() ([]Elem, error) {
	var out []Elem
	for {
		e, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

func (s *Stream) warn(peerASN uint32, subtype uint16, code, reason string) {
	s.warnings = append(s.warnings, Warning{
		Collector: s.sources[s.cur].Collector,
		PeerASN:   peerASN,
		Subtype:   subtype,
		Code:      code,
		Reason:    reason,
	})
	// Every warning except the ADD-PATH heuristic and the resync /
	// quarantine notices means the record (or RIB entry) it covers was
	// skipped; skips count against the source's degradation budget.
	skip := code != WarnAddPathSuspect && code != WarnResync && code != WarnQuarantine &&
		code != WarnSequenceGap
	if skip {
		s.srcSkipped[s.cur]++
	}
	if s.metrics != nil {
		s.metrics.Counter("bgpstream.warnings", "reason", code, "subtype", fmt.Sprint(subtype)).Inc()
		if skip {
			s.metrics.Counter("bgpstream.records_skipped", "reason", code).Inc()
		}
	}
}

func (s *Stream) decode(rec mrt.Record) {
	src := s.sources[s.cur]
	switch rec.Type {
	case mrt.TypeTableDumpV2:
		switch {
		case rec.Subtype == mrt.SubPeerIndexTable:
			pit, err := mrt.ParsePeerIndexTable(rec.Body)
			if err != nil {
				s.warn(0, rec.Subtype, WarnPeerIndexTable, fmt.Sprintf("peer index table: %v", err))
				return
			}
			s.peers = pit.Peers
		case rec.IsRIB():
			rib, err := mrt.ParseRIB(rec.Subtype, rec.Body)
			if err != nil {
				s.warn(0, rec.Subtype, WarnRIBRecord, fmt.Sprintf("RIB record: %v", err))
				return
			}
			if s.ribSeqValid && rib.Sequence != s.ribSeqNext {
				s.warn(0, rec.Subtype, WarnSequenceGap,
					fmt.Sprintf("RIB sequence %d, expected %d: records lost, duplicated, or reordered", rib.Sequence, s.ribSeqNext))
			}
			s.ribSeqNext, s.ribSeqValid = rib.Sequence+1, true
			s.msgIndex++
			for _, entry := range rib.Entries {
				if int(entry.PeerIndex) >= len(s.peers) {
					s.warn(0, rec.Subtype, WarnPeerIndexRange, fmt.Sprintf("peer index %d out of range", entry.PeerIndex))
					continue
				}
				peer := s.peers[entry.PeerIndex]
				// RIB attribute blocks always use 4-octet ASNs (RFC 6396
				// §4.3.4); ADD-PATH follows the record subtype.
				attrs, err := bgp.AppendAttributes(s.ribAttrs[:0], entry.Attrs,
					bgp.Options{AS4: true, AddPath: rib.AddPath, Cache: s.attrCache})
				if err != nil {
					s.warn(peer.ASN, rec.Subtype, WarnRIBAttrs, fmt.Sprintf("RIB attributes: %v", err))
					continue
				}
				s.ribAttrs = attrs[:0]
				e := Elem{
					Type: ElemRIB, Timestamp: rec.Timestamp, Collector: src.Collector,
					PeerAddr: peer.Addr, PeerASN: peer.ASN, Prefix: rib.Prefix,
					PathID: entry.PathID, MsgIndex: s.msgIndex,
				}
				applyAttrs(&e, attrs)
				s.emit(e)
			}
		default:
			s.warn(0, rec.Subtype, WarnUnknownTD2Subtype, fmt.Sprintf("unknown TABLE_DUMP_V2 record subtype %d", rec.Subtype))
		}
	case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
		switch rec.Subtype {
		case mrt.SubStateChange, mrt.SubStateChangeAS4:
			sc, err := mrt.ParseStateChange(rec.Subtype, rec.Body)
			if err != nil {
				s.warn(0, rec.Subtype, WarnStateChange, fmt.Sprintf("state change: %v", err))
				return
			}
			s.msgIndex++
			if s.stateFlaps == nil {
				s.stateFlaps = make(map[uint32]int)
			}
			s.stateFlaps[sc.PeerAS]++
			s.emit(Elem{
				Type: ElemState, Timestamp: rec.Timestamp, Collector: src.Collector,
				PeerAddr: sc.PeerAddr, PeerASN: sc.PeerAS,
				OldState: sc.OldState, NewState: sc.NewState, MsgIndex: s.msgIndex,
			})
		case mrt.SubMessage, mrt.SubMessageAS4, mrt.SubMessageAP, mrt.SubMessageAS4AP:
			if err := mrt.ParseMessageInto(&s.msg, rec.Subtype, rec.Body); err != nil {
				s.warn(0, rec.Subtype, WarnBGP4MPMessage, fmt.Sprintf("BGP4MP message: %v", err))
				return
			}
			s.decodeUpdate(rec, &s.msg, src)
		default:
			s.warn(0, rec.Subtype, WarnUnknownBGP4MP, fmt.Sprintf("unknown BGP4MP record subtype %d", rec.Subtype))
		}
	default:
		s.warn(0, rec.Subtype, WarnUnknownMRTType, fmt.Sprintf("unknown MRT record type %d", rec.Type))
	}
}

func (s *Stream) decodeUpdate(rec mrt.Record, msg *mrt.Message, src Source) {
	h, err := bgp.ParseHeader(msg.Data)
	if err != nil {
		s.warn(msg.PeerAS, rec.Subtype, WarnBGPHeader, fmt.Sprintf("BGP header: %v", err))
		return
	}
	if h.Type != bgp.MsgUpdate {
		// Keepalives etc. are legal in archives; ignore silently.
		return
	}
	opt := src.Options
	opt.AS4 = msg.AS4
	opt.AddPath = msg.AddPath
	opt.Cache = s.attrCache
	u := &s.upd
	if err := bgp.ParseUpdateInto(u, msg.Data, opt); err != nil {
		s.warn(msg.PeerAS, rec.Subtype, WarnUpdateParse, fmt.Sprintf("UPDATE parse: %v", err))
		return
	}
	// MP_REACH/MP_UNREACH NLRI are folded in without the copying
	// Reachable/Unreachable helpers.
	var mpAnn, mpWdr []bgp.NLRI
	if m, ok := u.Attr(bgp.AttrTypeMPReach).(bgp.MPReach); ok && m.SAFI == bgp.SAFIUnicast {
		mpAnn = m.NLRI
	}
	if m, ok := u.Attr(bgp.AttrTypeMPUnreach).(bgp.MPUnreach); ok && m.SAFI == bgp.SAFIUnicast {
		mpWdr = m.NLRI
	}
	// ADD-PATH mismatch signature: reading ADD-PATH NLRI as plain NLRI
	// turns the 4-byte path identifiers into phantom default routes.
	// Two or more /0 entries in one message is never legitimate.
	if zeroLen(u.Announced)+zeroLen(mpAnn)+zeroLen(u.Withdrawn)+zeroLen(mpWdr) >= 2 {
		s.warn(msg.PeerAS, rec.Subtype, WarnAddPathSuspect, "suspicious NLRI: repeated zero-length prefixes (possible ADD-PATH mismatch)")
	}
	s.msgIndex++
	base := Elem{
		Timestamp: rec.Timestamp, Collector: src.Collector,
		PeerAddr: msg.PeerAddr, PeerASN: msg.PeerAS, MsgIndex: s.msgIndex,
	}
	var path aspath.Path
	if p, ok := u.ASPathAttr(); ok {
		path = p
	}
	var comms []uint32
	if c, ok := u.Attr(bgp.AttrTypeCommunities).(bgp.Communities); ok {
		comms = c
	}
	emitAll := func(t ElemType, nlri []bgp.NLRI) {
		for _, n := range nlri {
			e := base
			e.Type = t
			e.Prefix = n.Prefix
			e.PathID = n.PathID
			if t == ElemAnnounce {
				e.Path = path
				e.Communities = comms
			}
			s.emit(e)
		}
	}
	emitAll(ElemWithdraw, u.Withdrawn)
	emitAll(ElemWithdraw, mpWdr)
	emitAll(ElemAnnounce, u.Announced)
	emitAll(ElemAnnounce, mpAnn)
}

// zeroLen counts zero-length (default-route) NLRI entries.
func zeroLen(nlri []bgp.NLRI) int {
	n := 0
	for _, x := range nlri {
		if x.Prefix.Bits() == 0 {
			n++
		}
	}
	return n
}

func applyAttrs(e *Elem, attrs []bgp.Attr) {
	var path, path4 aspath.Path
	var have4 bool
	for _, a := range attrs {
		switch v := a.(type) {
		case bgp.ASPath:
			path = v.Path
		case bgp.AS4Path:
			path4, have4 = v.Path, true
		case bgp.Communities:
			e.Communities = v
		}
	}
	if have4 {
		u := bgp.Update{Attrs: []bgp.Attr{bgp.ASPath{Path: path}, bgp.AS4Path{Path: path4}}}
		if p, ok := u.ASPathAttr(); ok {
			path = p
		}
	}
	e.Path = path
}
