package bgpstream

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
)

// mixedSources builds a source set exercising every merge-order hazard:
// clean archives, a truncated one (warning + possible quarantine), one
// with mid-stream garbage (resync), and a reader-backed source (bufio
// path instead of zero-copy).
func mixedSources(t *testing.T) []Source {
	t.Helper()
	good := buildArchive(t)
	corrupt := good[:len(good)-3]
	garbage := append([]byte(nil), good...)
	garbage = append(garbage, bytes.Repeat([]byte{0xff}, 20)...)
	garbage = append(garbage, good...)
	return []Source{
		BytesSource("rrc00", good, bgp.Options{}),
		BytesSource("bad", corrupt, bgp.Options{}),
		BytesSource("route-views2", garbage, bgp.Options{}),
		{Collector: "reader-backed", R: bytes.NewReader(good), Options: bgp.Options{}},
	}
}

// collectAll drains a stream element by element, copying retained
// slices (batch memory is recycled), and returns everything observable:
// elements, warnings, quarantine set, flaps, per-source counts.
type streamResult struct {
	elems       []Elem
	warnings    []Warning
	quarantined []string
	flaps       map[uint32]int
	elemCounts  map[string]int
}

func runStream(t *testing.T, workers int, useBatch bool, intern *aspath.Table) streamResult {
	t.Helper()
	if workers > 1 {
		// The effective-CPU gate would route workers>1 to the sequential
		// path on a single-core host; these tests pin the parallel path
		// itself, so bypass the gate.
		ForceParallelDecode(true)
		defer ForceParallelDecode(false)
	}
	s := NewStream(nil, mixedSources(t)...)
	s.SetWorkers(workers)
	if intern != nil {
		s.SetIntern(intern)
	}
	var elems []Elem
	if useBatch {
		for {
			batch, err := s.NextBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			elems = append(elems, batch...) // append copies the elements out
		}
	} else {
		for {
			e, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			elems = append(elems, e)
		}
	}
	return streamResult{
		elems:       elems,
		warnings:    s.Warnings(),
		quarantined: s.Quarantined(),
		flaps:       s.StateFlaps(),
		elemCounts:  s.SourceElemCounts(),
	}
}

// sameElems compares element streams field by field. InternedPath is
// compared through its table (raw IDs are interleaving-dependent under
// concurrent interning — the PR2 invariant — so only the resolved
// sequences are comparable across runs).
func sameElems(t *testing.T, a []Elem, ta *aspath.Table, b []Elem, tb *aspath.Table) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("element counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if ta != nil {
			sx, sy := ta.Seq(x.InternedPath), tb.Seq(y.InternedPath)
			if !reflect.DeepEqual(sx, sy) {
				t.Fatalf("elem %d interned path: %v vs %v", i, sx, sy)
			}
		}
		x.InternedPath, y.InternedPath = 0, 0
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("elem %d differs:\n  %+v\n  %+v", i, x, y)
		}
	}
}

// TestStreamDeterministicAcrossWorkers is the merge-order contract:
// the full observable output — every element in order, every warning in
// order, quarantine decisions, flap counts — is identical whether
// sources decode sequentially or fanned out across 8 workers. Run
// under -race this also exercises the worker/merge synchronization.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	t1, t8 := aspath.NewTable(), aspath.NewTable()
	seq := runStream(t, 1, false, t1)
	par := runStream(t, 8, false, t8)

	sameElems(t, seq.elems, t1, par.elems, t8)
	if !reflect.DeepEqual(seq.warnings, par.warnings) {
		t.Errorf("warnings diverge:\n  workers=1: %+v\n  workers=8: %+v", seq.warnings, par.warnings)
	}
	if !reflect.DeepEqual(seq.quarantined, par.quarantined) {
		t.Errorf("quarantine diverges: %v vs %v", seq.quarantined, par.quarantined)
	}
	if !reflect.DeepEqual(seq.flaps, par.flaps) {
		t.Errorf("state flaps diverge: %v vs %v", seq.flaps, par.flaps)
	}
	if !reflect.DeepEqual(seq.elemCounts, par.elemCounts) {
		t.Errorf("per-source counts diverge: %v vs %v", seq.elemCounts, par.elemCounts)
	}
	if len(seq.elems) == 0 {
		t.Fatal("fixture produced no elements")
	}
}

// TestNextBatchMatchesNext: the batch API is a view over the same
// merged sequence — batch iteration and element iteration must yield
// identical streams at any worker count.
func TestNextBatchMatchesNext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		one := runStream(t, workers, false, nil)
		bat := runStream(t, workers, true, nil)
		sameElems(t, one.elems, nil, bat.elems, nil)
		if !reflect.DeepEqual(one.warnings, bat.warnings) {
			t.Errorf("workers=%d: warnings diverge between Next and NextBatch", workers)
		}
	}
}

// TestStreamInternStamping: with an intern table attached, every RIB
// and announce element carries the ID of its flattened path, resolvable
// through the table to the same sequence Path.Sequence produces; other
// element types stay at Empty.
func TestStreamInternStamping(t *testing.T) {
	table := aspath.NewTable()
	res := runStream(t, 1, true, table)
	stamped := 0
	for i, e := range res.elems {
		if e.Type != ElemRIB && e.Type != ElemAnnounce {
			if e.InternedPath != aspath.Empty || e.PathUnusable {
				t.Errorf("elem %d (%v): unexpected intern state", i, e.Type)
			}
			continue
		}
		if e.PathUnusable {
			continue
		}
		want, err := e.Path.Sequence()
		if err != nil {
			t.Fatalf("elem %d: unexpected flatten failure: %v", i, err)
		}
		got := table.Seq(e.InternedPath)
		if len(want) == 0 {
			if e.InternedPath != aspath.Empty {
				t.Errorf("elem %d: empty path interned as %d", i, e.InternedPath)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("elem %d: interned %v, path says %v", i, got, want)
		}
		stamped++
	}
	if stamped == 0 {
		t.Fatal("no elements carried interned paths")
	}
}

// TestStreamWorkersZeroMeansAuto: SetWorkers(0) resolves to one worker
// per CPU and still yields the canonical stream.
func TestStreamWorkersZeroMeansAuto(t *testing.T) {
	auto := runStream(t, 0, true, nil)
	one := runStream(t, 1, false, nil)
	sameElems(t, auto.elems, nil, one.elems, nil)
}
