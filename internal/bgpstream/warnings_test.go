package bgpstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/obs"
)

// writeRecord appends one MRT record to buf, failing the test on error.
func writeRecord(t *testing.T, buf *bytes.Buffer, rec mrt.Record) {
	t.Helper()
	w := mrt.NewWriter(buf)
	if err := w.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// marshalPIT builds a peer index table body with n peers.
func marshalPIT(t *testing.T, n int) []byte {
	t.Helper()
	pit := &mrt.PeerIndexTable{CollectorID: netip.MustParseAddr("198.51.100.1")}
	for i := 0; i < n; i++ {
		pit.Peers = append(pit.Peers, mrt.Peer{
			BGPID: netip.MustParseAddr("10.0.0.1"),
			Addr:  netip.MustParseAddr("192.0.2.10"),
			ASN:   uint32(3356 + i),
		})
	}
	body, err := pit.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// marshalMessage wraps data in a BGP4MP MESSAGE_AS4 body.
func marshalMessage(t *testing.T, data []byte) []byte {
	t.Helper()
	msg := &mrt.Message{PeerAS: 65001, LocalAS: 12654,
		PeerAddr: netip.MustParseAddr("192.0.2.10"), LocalAddr: netip.MustParseAddr("192.0.2.1"),
		Data: data, AS4: true}
	body, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestWarningCodes feeds the stream one malformed record per subtest and
// asserts that exactly one warning with the expected code is recorded —
// once per offending record, not per retry or per byte — and that the
// matching obs counters move in lockstep:
//
//	bgpstream.warnings{reason=<code>,subtype=<N>}  +1
//	bgpstream.records_skipped{reason=<code>}       +1 (except addpath-suspect)
func TestWarningCodes(t *testing.T) {
	cases := []struct {
		code    string
		subtype uint16
		skipped bool // code increments records_skipped
		build   func(t *testing.T) []byte
	}{
		{WarnRecordError, 0, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
			return buf.Bytes()[:buf.Len()-3] // cut mid-record
		}},
		{WarnPeerIndexTable, mrt.SubPeerIndexTable, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: []byte{1, 2}})
			return buf.Bytes()
		}},
		{WarnRIBRecord, mrt.SubRIBIPv4Unicast, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubRIBIPv4Unicast, Body: []byte{1}})
			return buf.Bytes()
		}},
		{WarnPeerIndexRange, mrt.SubRIBIPv4Unicast, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 0)})
			attrs, err := bgp.MarshalAttributes([]bgp.Attr{bgp.Origin(0)}, bgp.Options{AS4: true})
			if err != nil {
				t.Fatal(err)
			}
			rib := &mrt.RIB{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
				Entries: []mrt.RIBEntry{{PeerIndex: 5, Attrs: attrs}}}
			body, err := rib.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: body})
			return buf.Bytes()
		}},
		{WarnRIBAttrs, mrt.SubRIBIPv4Unicast, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
			rib := &mrt.RIB{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
				Entries: []mrt.RIBEntry{{PeerIndex: 0, Attrs: []byte{0xff}}}} // flags with no type octet
			body, err := rib.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: body})
			return buf.Bytes()
		}},
		{WarnUnknownTD2Subtype, 99, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: 99, Body: []byte{1, 2, 3}})
			return buf.Bytes()
		}},
		{WarnStateChange, mrt.SubStateChange, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: mrt.SubStateChange, Body: []byte{1, 2}})
			return buf.Bytes()
		}},
		{WarnBGP4MPMessage, mrt.SubMessage, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: mrt.SubMessage, Body: []byte{1, 2}})
			return buf.Bytes()
		}},
		{WarnUnknownBGP4MP, 13, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: 13, Body: []byte{1, 2, 3}})
			return buf.Bytes()
		}},
		{WarnUnknownMRTType, 0, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: 99, Subtype: 0, Body: []byte{1}})
			return buf.Bytes()
		}},
		{WarnBGPHeader, mrt.SubMessageAS4, true, func(t *testing.T) []byte {
			var buf bytes.Buffer
			// BGP payload shorter than the 19-byte header.
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: mrt.SubMessageAS4, Body: marshalMessage(t, []byte{1, 2, 3})})
			return buf.Bytes()
		}},
		{WarnUpdateParse, mrt.SubMessageAS4, true, func(t *testing.T) []byte {
			// Valid header claiming UPDATE, body truncated: withdrawn
			// length says 5 bytes but none follow.
			data := make([]byte, 21)
			for i := 0; i < 16; i++ {
				data[i] = 0xff
			}
			binary.BigEndian.PutUint16(data[16:18], 21)
			data[18] = 2 // UPDATE
			data[19], data[20] = 0, 5
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: mrt.SubMessageAS4, Body: marshalMessage(t, data)})
			return buf.Bytes()
		}},
		{WarnAddPathSuspect, mrt.SubMessageAS4, false, func(t *testing.T) []byte {
			// Two /0 announcements in one message — the phantom-default
			// signature of ADD-PATH NLRI read as plain NLRI (§A8.3.1).
			upd, err := bgp.NewAnnouncement(aspath.Seq{65001}, netip.MustParseAddr("192.0.2.1"),
				[]netip.Prefix{netip.MustParsePrefix("0.0.0.0/0"), netip.MustParsePrefix("0.0.0.0/0")})
			if err != nil {
				t.Fatal(err)
			}
			data, err := upd.Marshal(bgp.Options{AS4: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: mrt.SubMessageAS4, Body: marshalMessage(t, data)})
			return buf.Bytes()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			reg := obs.NewRegistry()
			s := NewStream(nil, BytesSource("rrc00", tc.build(t), bgp.Options{}))
			s.SetMetrics(reg)
			if _, err := s.All(); err != nil {
				t.Fatal(err)
			}

			var matched, others int
			for _, w := range s.Warnings() {
				if w.Code == tc.code {
					matched++
					if w.Subtype != tc.subtype {
						t.Errorf("warning subtype = %d, want %d", w.Subtype, tc.subtype)
					}
				} else {
					others++
				}
			}
			if matched != 1 {
				t.Fatalf("code %q emitted %d times, want exactly 1 (warnings: %+v)", tc.code, matched, s.Warnings())
			}
			if others != 0 {
				t.Errorf("unexpected extra warnings: %+v", s.Warnings())
			}

			snap := reg.Snapshot()
			warnKey := obs.Key("bgpstream.warnings", "reason", tc.code, "subtype", fmt.Sprint(tc.subtype))
			if got := snap.Counters[warnKey]; got != 1 {
				t.Errorf("%s = %d, want 1 (counters: %v)", warnKey, got, snap.Counters)
			}
			skipKey := obs.Key("bgpstream.records_skipped", "reason", tc.code)
			want := int64(0)
			if tc.skipped {
				want = 1
			}
			if got := snap.Counters[skipKey]; got != want {
				t.Errorf("%s = %d, want %d", skipKey, got, want)
			}
		})
	}
}

// TestWarningPerOffendingRecord checks the "once per offending record"
// contract: N bad records yield N warnings and an N-valued counter, not
// one deduplicated warning and not a cascade.
func TestWarningPerOffendingRecord(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: 13, Body: []byte{1, 2, 3}})
	}
	reg := obs.NewRegistry()
	s := NewStream(nil, BytesSource("rrc00", buf.Bytes(), bgp.Options{}))
	s.SetMetrics(reg)
	if _, err := s.All(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Warnings()); got != 3 {
		t.Fatalf("got %d warnings, want 3: %+v", got, s.Warnings())
	}
	key := obs.Key("bgpstream.warnings", "reason", WarnUnknownBGP4MP, "subtype", "13")
	if got := reg.Snapshot().Counters[key]; got != 3 {
		t.Errorf("%s = %d, want 3", key, got)
	}
}

// TestWarningsWithoutMetrics confirms the warning slice works identically
// with telemetry disabled (nil registry never touched).
func TestWarningsWithoutMetrics(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeBGP4MP, Subtype: 13, Body: []byte{1}})
	s := NewStream(nil, BytesSource("rrc00", buf.Bytes(), bgp.Options{}))
	if _, err := s.All(); err != nil {
		t.Fatal(err)
	}
	if len(s.Warnings()) != 1 || s.Warnings()[0].Code != WarnUnknownBGP4MP {
		t.Errorf("warnings = %+v", s.Warnings())
	}
}
