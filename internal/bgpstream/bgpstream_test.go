package bgpstream

import (
	"bytes"
	"io"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
)

// buildArchive assembles an in-memory MRT archive with a peer table, two
// RIB records, one 2-prefix update, one withdraw, a state change, and an
// unknown-subtype record.
func buildArchive(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)

	pit := &mrt.PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []mrt.Peer{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("192.0.2.10"), ASN: 3356},
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("192.0.2.11"), ASN: 7018},
		},
	}
	body, err := pit.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 100, Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body})

	mkAttrs := func(seq aspath.Seq) []byte {
		b, err := bgp.MarshalAttributes([]bgp.Attr{
			bgp.Origin(bgp.OriginIGP),
			bgp.ASPath{Path: aspath.FromSeq(seq)},
			bgp.NextHop(netip.MustParseAddr("192.0.2.1")),
			bgp.Communities{bgp.Community(3356, 100)},
		}, bgp.Options{AS4: true})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	rib1 := &mrt.RIB{Sequence: 0, Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		Entries: []mrt.RIBEntry{
			{PeerIndex: 0, Attrs: mkAttrs(aspath.Seq{3356, 65001})},
			{PeerIndex: 1, Attrs: mkAttrs(aspath.Seq{7018, 65001})},
		}}
	body, err = rib1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 100, Type: mrt.TypeTableDumpV2, Subtype: rib1.Subtype(), Body: body})

	rib2 := &mrt.RIB{Sequence: 1, Prefix: netip.MustParsePrefix("2001:db8::/32"),
		Entries: []mrt.RIBEntry{{PeerIndex: 0, Attrs: mkAttrs(aspath.Seq{3356, 65002})}}}
	body, err = rib2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 100, Type: mrt.TypeTableDumpV2, Subtype: rib2.Subtype(), Body: body})

	upd, err := bgp.NewAnnouncement(aspath.Seq{3356, 65001}, netip.MustParseAddr("192.0.2.1"),
		[]netip.Prefix{netip.MustParsePrefix("10.1.0.0/16"), netip.MustParsePrefix("10.2.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	data, err := upd.Marshal(bgp.Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	msg := &mrt.Message{PeerAS: 3356, LocalAS: 12654,
		PeerAddr: netip.MustParseAddr("192.0.2.10"), LocalAddr: netip.MustParseAddr("192.0.2.1"),
		Data: data, AS4: true}
	body, err = msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 200, Type: mrt.TypeBGP4MP, Subtype: msg.Subtype(), Body: body})

	wd, err := bgp.NewWithdrawal([]netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	data, err = wd.Marshal(bgp.Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	msg2 := &mrt.Message{PeerAS: 7018, LocalAS: 12654,
		PeerAddr: netip.MustParseAddr("192.0.2.11"), LocalAddr: netip.MustParseAddr("192.0.2.1"),
		Data: data, AS4: true}
	body, err = msg2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 260, Type: mrt.TypeBGP4MPET, Micro: 500, Subtype: msg2.Subtype(), Body: body})

	sc := &mrt.StateChange{PeerAS: 3356, LocalAS: 12654,
		PeerAddr: netip.MustParseAddr("192.0.2.10"), LocalAddr: netip.MustParseAddr("192.0.2.1"),
		OldState: mrt.StateEstablished, NewState: mrt.StateIdle, AS4: true}
	body, err = sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(mrt.Record{Timestamp: 300, Type: mrt.TypeBGP4MP, Subtype: sc.Subtype(), Body: body})

	// The paper's artifact: an unknown BGP4MP subtype 9... well, 9 is
	// MESSAGE_AS4_ADDPATH in RFC 8050, so use a truly unknown one (13).
	w.WriteRecord(mrt.Record{Timestamp: 310, Type: mrt.TypeBGP4MP, Subtype: 13, Body: []byte{1, 2, 3}})

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamAll(t *testing.T) {
	data := buildArchive(t)
	s := NewStream(nil, BytesSource("rrc00", data, bgp.Options{}))
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	// 3 RIB rows + 2 announces + 1 withdraw + 1 state = 7.
	if len(elems) != 7 {
		t.Fatalf("got %d elems: %+v", len(elems), elems)
	}
	var counts [5]int
	for _, e := range elems {
		counts[e.Type]++
		if e.Collector != "rrc00" {
			t.Errorf("collector = %q", e.Collector)
		}
	}
	if counts[ElemRIB] != 3 || counts[ElemAnnounce] != 2 || counts[ElemWithdraw] != 1 || counts[ElemState] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// RIB rows carry paths and communities.
	if elems[0].Path.String() != "3356 65001" {
		t.Errorf("rib path = %q", elems[0].Path.String())
	}
	if len(elems[0].Communities) != 1 {
		t.Error("rib communities lost")
	}
	// The two announce elems share a MsgIndex (same UPDATE); the
	// withdraw has a different one.
	var annIdx []int
	var wdIdx int
	for _, e := range elems {
		switch e.Type {
		case ElemAnnounce:
			annIdx = append(annIdx, e.MsgIndex)
		case ElemWithdraw:
			wdIdx = e.MsgIndex
		}
	}
	if len(annIdx) != 2 || annIdx[0] != annIdx[1] {
		t.Errorf("announce MsgIndex = %v", annIdx)
	}
	if wdIdx == annIdx[0] {
		t.Error("withdraw shares MsgIndex with announce")
	}
	// Unknown-subtype warning captured.
	found := false
	for _, w := range s.Warnings() {
		if strings.Contains(w.Reason, "unknown BGP4MP record subtype 13") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %+v", s.Warnings())
	}
}

func TestStreamFilters(t *testing.T) {
	data := buildArchive(t)
	cases := []struct {
		name   string
		filter *Filter
		want   int
	}{
		{"nil", nil, 7},
		{"announce only", &Filter{Types: map[ElemType]bool{ElemAnnounce: true}}, 2},
		{"peer 7018", &Filter{PeerASNs: map[uint32]bool{7018: true}}, 2},
		{"collector miss", &Filter{Collectors: map[string]bool{"rrc01": true}}, 0},
		{"time window", &Filter{StartTime: 150, EndTime: 260}, 3},
		{"v6 only", &Filter{V6Only: true}, 1},
		{"v4 only", &Filter{V4Only: true}, 5}, // state elem has no prefix
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStream(tc.filter, BytesSource("rrc00", data, bgp.Options{}))
			elems, err := s.All()
			if err != nil {
				t.Fatal(err)
			}
			if len(elems) != tc.want {
				t.Errorf("got %d elems, want %d", len(elems), tc.want)
			}
		})
	}
}

func TestStreamMultipleSources(t *testing.T) {
	data := buildArchive(t)
	s := NewStream(nil,
		BytesSource("rrc00", data, bgp.Options{}),
		BytesSource("route-views2", buildArchive(t), bgp.Options{}),
	)
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 14 {
		t.Fatalf("got %d elems", len(elems))
	}
	if elems[0].Collector != "rrc00" || elems[13].Collector != "route-views2" {
		t.Error("collector attribution wrong across sources")
	}
	// MsgIndex remains unique across sources.
	seen := map[int]string{}
	for _, e := range elems {
		if c, ok := seen[e.MsgIndex]; ok && c != e.Collector {
			t.Fatalf("MsgIndex %d reused across collectors", e.MsgIndex)
		}
		seen[e.MsgIndex] = e.Collector
	}
}

func TestStreamBadPeerIndex(t *testing.T) {
	// RIB record referencing a peer index that doesn't exist.
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{CollectorID: netip.MustParseAddr("1.2.3.4")}
	body, _ := pit.Marshal()
	w.WriteRecord(mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body})
	attrs, _ := bgp.MarshalAttributes([]bgp.Attr{bgp.Origin(0)}, bgp.Options{AS4: true})
	rib := &mrt.RIB{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		Entries: []mrt.RIBEntry{{PeerIndex: 5, Attrs: attrs}}}
	body, _ = rib.Marshal()
	w.WriteRecord(mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: body})
	w.Flush()

	s := NewStream(nil, BytesSource("x", buf.Bytes(), bgp.Options{}))
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 0 {
		t.Errorf("got %d elems", len(elems))
	}
	if len(s.Warnings()) == 0 {
		t.Error("no warning for bad peer index")
	}
}

func TestStreamCorruptSourceRecovers(t *testing.T) {
	good := buildArchive(t)
	corrupt := good[:len(good)-3] // cut mid-record
	s := NewStream(nil,
		BytesSource("bad", corrupt, bgp.Options{}),
		BytesSource("good", good, bgp.Options{}),
	)
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	// The good source must still be fully read.
	goodCount := 0
	for _, e := range elems {
		if e.Collector == "good" {
			goodCount++
		}
	}
	if goodCount != 7 {
		t.Errorf("good source yielded %d elems", goodCount)
	}
	found := false
	for _, w := range s.Warnings() {
		if w.Collector == "bad" && strings.Contains(w.Reason, "record error") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %+v", s.Warnings())
	}
}

// TestAddPathMismatchWarning reproduces the paper's §A8.3.1 scenario:
// a peer sends ADD-PATH-encoded updates but the record subtype claims
// plain encoding, producing parse warnings attributable to the peer.
func TestAddPathMismatchWarning(t *testing.T) {
	upd, err := bgp.NewAnnouncement(aspath.Seq{65001}, netip.MustParseAddr("192.0.2.1"),
		[]netip.Prefix{netip.MustParsePrefix("10.0.0.0/8"), netip.MustParsePrefix("10.1.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	// Encode WITH AddPath...
	data, err := upd.Marshal(bgp.Options{AS4: true, AddPath: true})
	if err != nil {
		t.Fatal(err)
	}
	// ...but wrap in a non-ADD-PATH subtype, like a confused collector.
	msg := &mrt.Message{PeerAS: 136557, LocalAS: 12654,
		PeerAddr: netip.MustParseAddr("192.0.2.10"), LocalAddr: netip.MustParseAddr("192.0.2.1"),
		Data: data, AS4: true}
	body, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	w.WriteRecord(mrt.Record{Timestamp: 1, Type: mrt.TypeBGP4MP, Subtype: mrt.SubMessageAS4, Body: body})
	w.Flush()

	s := NewStream(nil, BytesSource("route-views.perth", buf.Bytes(), bgp.Options{}))
	elems, _ := s.All()
	// The misparse is detectable either as a parse warning or as spurious
	// records: reading ADD-PATH bytes as plain NLRI turns each 4-byte path
	// ID into phantom prefixes (typically 0.0.0.0/0 runs). What must NOT
	// happen is a clean parse yielding exactly the true announcement set.
	got := map[string]bool{}
	for _, e := range elems {
		if e.Type == ElemAnnounce {
			got[e.Prefix.String()] = true
		}
	}
	cleanTruth := len(got) == 2 && got["10.0.0.0/8"] && got["10.1.0.0/16"]
	if cleanTruth && len(s.Warnings()) == 0 {
		t.Fatal("ADD-PATH mismatch was undetectable: clean parse of the true prefixes")
	}
	if len(s.Warnings()) == 0 && len(elems) == 0 {
		t.Error("mismatch produced neither elems nor warnings")
	}
	for _, wn := range s.Warnings() {
		if wn.PeerASN != 0 && wn.PeerASN != 136557 {
			t.Errorf("warning attributed to wrong peer: %+v", wn)
		}
	}
}

func TestElemTypeString(t *testing.T) {
	if ElemRIB.String() != "R" || ElemAnnounce.String() != "A" ||
		ElemWithdraw.String() != "W" || ElemState.String() != "S" || ElemType(9).String() != "?" {
		t.Error("ElemType strings wrong")
	}
}

func TestStreamEOFStable(t *testing.T) {
	s := NewStream(nil)
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("empty stream: %v", err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Error("EOF not sticky")
	}
}
