package bgpstream

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
)

// BenchmarkStreamDecode measures end-to-end ingest throughput — MRT
// record iteration, BGP parse, element emission, path interning — over
// in-memory sources at each worker count. MB/s is archive bytes per
// wall second; elems/s is emitted elements per wall second. The
// workers=N subs are the decode fan-out's scaling curve (on a 1-CPU
// host they pin merge overhead instead: workers=8 must not regress
// materially below workers=1).
func BenchmarkStreamDecode(b *testing.B) {
	base := buildArchive(b)
	var archive []byte
	for len(archive) < 1<<19 {
		archive = append(archive, base...)
	}
	const nSources = 4
	sources := make([]Source, nSources)
	for i := range sources {
		sources[i] = BytesSource(fmt.Sprintf("c%d", i), archive, bgp.Options{})
	}
	// Measure the real parallel path at every worker count, even on a
	// single-core host where the effective-CPU gate would fall back to
	// sequential decode.
	ForceParallelDecode(true)
	defer ForceParallelDecode(false)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(archive) * nSources))
			b.ReportAllocs()
			var elems int
			for i := 0; i < b.N; i++ {
				s := NewStream(nil, sources...)
				s.SetWorkers(workers)
				s.SetIntern(aspath.NewTable())
				elems = 0
				for {
					batch, err := s.NextBatch()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					elems += len(batch)
				}
			}
			if elems == 0 {
				b.Fatal("no elements decoded")
			}
			b.ReportMetric(float64(elems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}
