//go:build !race

package bgpstream

// raceEnabled mirrors the -race build flag: race runs always exercise
// the parallel decode path (see ensureRunning's effective-CPU gate).
const raceEnabled = false
