package bgpstream

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/obs"
)

// marshalRIBRecord builds one valid RIB record for 10.<seq>.0.0/16
// referencing peer index 0.
func marshalRIBRecord(t *testing.T, buf *bytes.Buffer, seq uint32) {
	t.Helper()
	rib := &mrt.RIB{
		Sequence: seq,
		Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(seq), 0, 0}), 16),
		Entries:  []mrt.RIBEntry{{PeerIndex: 0, Originated: 1000}},
	}
	body, err := rib.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	writeRecord(t, buf, mrt.Record{Timestamp: 1000, Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: body})
}

func drain(t *testing.T, s *Stream) []Elem {
	t.Helper()
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestResyncRecoversMidSource(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
	marshalRIBRecord(t, &buf, 1)
	// Garbage with an absurd claimed length: the reader errors, then
	// must scan forward and recover the next record instead of
	// abandoning the source.
	buf.Write(bytes.Repeat([]byte{0xff}, 20))
	marshalRIBRecord(t, &buf, 2)

	reg := obs.NewRegistry()
	s := NewStream(nil, BytesSource("rrc01", buf.Bytes(), bgp.Options{}))
	s.SetMetrics(reg)
	elems := drain(t, s)
	if len(elems) != 2 {
		t.Fatalf("decoded %d elements, want 2 (resync should recover the tail)", len(elems))
	}
	var codes []string
	for _, w := range s.Warnings() {
		codes = append(codes, w.Code)
	}
	if len(codes) != 2 || codes[0] != WarnRecordError || codes[1] != WarnResync {
		t.Fatalf("warnings = %v, want [record-error resync]", codes)
	}
	st := s.SourceStats()["rrc01"]
	if st.Resyncs != 1 || st.Records != 3 || st.Skipped != 1 {
		t.Fatalf("source stats = %+v", st)
	}
	m := reg.Snapshot()
	if m.CounterValue("bgpstream.resyncs") != 1 {
		t.Errorf("resyncs counter = %d, want 1", m.CounterValue("bgpstream.resyncs"))
	}
	if m.CounterValue("bgpstream.resync_bytes") != 8 {
		t.Errorf("resync_bytes counter = %d, want 8 (12 of 20 garbage bytes ate the header)", m.CounterValue("bgpstream.resync_bytes"))
	}
	if len(s.Quarantined()) != 0 {
		t.Errorf("healthy source quarantined: %v", s.Quarantined())
	}
}

func TestQuarantineOnSkipRatio(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
	for i := 0; i < 20; i++ {
		// Framing-valid records whose bodies fail to parse: each one
		// warns and counts against the degradation budget.
		writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubRIBIPv4Unicast, Body: []byte{1}})
	}

	reg := obs.NewRegistry()
	s := NewStream(nil, BytesSource("rrc13", buf.Bytes(), bgp.Options{}))
	s.SetMetrics(reg)
	elems := drain(t, s)
	if len(elems) != 0 {
		t.Fatalf("decoded %d elements from garbage", len(elems))
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != "rrc13" {
		t.Fatalf("Quarantined() = %v, want [rrc13]", q)
	}
	last := s.Warnings()[len(s.Warnings())-1]
	if last.Code != WarnQuarantine {
		t.Fatalf("last warning = %+v, want %s", last, WarnQuarantine)
	}
	m := reg.Snapshot()
	if m.CounterValue("bgpstream.source_quarantined", "collector", "rrc13") != 1 {
		t.Error("source_quarantined counter did not fire")
	}
	st := s.SourceStats()["rrc13"]
	if st.Records != 21 || st.Skipped != 20 {
		t.Fatalf("source stats = %+v", st)
	}
}

func TestNoQuarantineBelowMinRecords(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
	for i := 0; i < 3; i++ {
		writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubRIBIPv4Unicast, Body: []byte{1}})
	}
	s := NewStream(nil, BytesSource("rrc13", buf.Bytes(), bgp.Options{}))
	drain(t, s)
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("small archive quarantined: %v (budget must not condemn short tails)", q)
	}
}

func TestSetDegradationDisables(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
	for i := 0; i < 20; i++ {
		writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubRIBIPv4Unicast, Body: []byte{1}})
	}
	s := NewStream(nil, BytesSource("rrc13", buf.Bytes(), bgp.Options{}))
	s.SetDegradation(-1, 0.3)
	drain(t, s)
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine fired while disabled: %v", q)
	}
}

func TestStateFlapsCounts(t *testing.T) {
	var buf bytes.Buffer
	mk := func(asn uint32) {
		sc := &mrt.StateChange{
			PeerAS: asn, LocalAS: 12654,
			PeerAddr:  netip.MustParseAddr("192.0.2.10"),
			LocalAddr: netip.MustParseAddr("192.0.2.1"),
			AS4:       true,
			OldState:  mrt.StateEstablished, NewState: mrt.StateIdle,
		}
		body, err := sc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		writeRecord(t, &buf, mrt.Record{Timestamp: 1000, Type: mrt.TypeBGP4MP, Subtype: sc.Subtype(), Body: body})
	}
	for i := 0; i < 5; i++ {
		mk(65001)
	}
	mk(65002)
	s := NewStream(nil, BytesSource("rrc01", buf.Bytes(), bgp.Options{}))
	elems := drain(t, s)
	if len(elems) != 6 {
		t.Fatalf("decoded %d elements, want 6", len(elems))
	}
	flaps := s.StateFlaps()
	if flaps[65001] != 5 || flaps[65002] != 1 {
		t.Fatalf("StateFlaps = %v", flaps)
	}
}

func TestSequenceGapWarning(t *testing.T) {
	var buf bytes.Buffer
	writeRecord(t, &buf, mrt.Record{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: marshalPIT(t, 1)})
	// Sequences 0, 1, then 5: the jump means records 2..4 vanished even
	// though every surviving record is well-formed.
	marshalRIBRecord(t, &buf, 0)
	marshalRIBRecord(t, &buf, 1)
	marshalRIBRecord(t, &buf, 5)
	s := NewStream(nil, BytesSource("rrc01", buf.Bytes(), bgp.Options{}))
	elems := drain(t, s)
	if len(elems) != 3 {
		t.Fatalf("decoded %d elements, want 3 (gap must not drop records)", len(elems))
	}
	var gaps int
	for _, w := range s.Warnings() {
		if w.Code == WarnSequenceGap {
			gaps++
		}
	}
	if gaps != 1 {
		t.Fatalf("warnings = %+v, want exactly 1 sequence-gap", s.Warnings())
	}
	// The gap is a signal, not a skip: the degradation budget is untouched.
	if st := s.SourceStats()["rrc01"]; st.Skipped != 0 {
		t.Errorf("sequence gap counted as a skip: %+v", st)
	}
	if len(s.Quarantined()) != 0 {
		t.Errorf("sequence gap caused quarantine: %v", s.Quarantined())
	}
}
