package bgp

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
)

// allocTestUpdate builds a representative announcement and its wire form.
func allocTestUpdate(t *testing.T) (*Update, []byte) {
	t.Helper()
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParsePrefix("203.0.113.0/24"),
		netip.MustParsePrefix("192.0.2.128/25"),
	}
	u, err := NewAnnouncement(aspath.Seq{64500, 64501, 64502}, netip.MustParseAddr("192.0.2.1"), prefixes)
	if err != nil {
		t.Fatal(err)
	}
	data, err := u.Marshal(Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	return u, data
}

// The decode hot path: with a reused Update and an attribute cache,
// re-parsing a message must not allocate — this is what lets bgpstream
// drain millions of archive records without fighting the GC.
func TestParseUpdateIntoSteadyStateAllocs(t *testing.T) {
	_, data := allocTestUpdate(t)
	opt := Options{AS4: true, Cache: NewAttrCache()}
	var u Update
	n := testing.AllocsPerRun(100, func() {
		if err := ParseUpdateInto(&u, data, opt); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("ParseUpdateInto steady state: %v allocs/op, want 0", n)
	}
}

// The encode hot path: AppendMessage into a reused buffer must not
// allocate once the buffer has grown to size.
func TestAppendMessageSteadyStateAllocs(t *testing.T) {
	u, want := allocTestUpdate(t)
	var buf []byte
	n := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = u.AppendMessage(buf[:0], Options{AS4: true})
		if err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("AppendMessage steady state: %v allocs/op, want 0", n)
	}
	if string(buf) != string(want) {
		t.Fatal("AppendMessage output diverged from Marshal")
	}
}

// Cache hits must return the identical attribute values, not re-parsed
// copies.
func TestAttrCacheSharesValues(t *testing.T) {
	_, data := allocTestUpdate(t)
	opt := Options{AS4: true, Cache: NewAttrCache()}
	u1, err := ParseUpdate(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ParseUpdate(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := u1.Attr(AttrTypeASPath).(ASPath)
	p2, _ := u2.Attr(AttrTypeASPath).(ASPath)
	if len(p1.Path.Segments) == 0 || &p1.Path.Segments[0].ASNs[0] != &p2.Path.Segments[0].ASNs[0] {
		t.Fatal("cached AS_PATH not shared between parses")
	}
}
