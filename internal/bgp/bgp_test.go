package bgp

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/aspath"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestHeaderRoundTrip(t *testing.T) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, MsgUpdate, 100)
	h, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgUpdate || h.Len != 100 {
		t.Errorf("header = %+v", h)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	short := make([]byte, 10)
	if _, err := ParseHeader(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, HeaderLen)
	putHeader(buf, MsgUpdate, 100)
	buf[3] = 0 // corrupt marker
	if _, err := ParseHeader(buf); !errors.Is(err, ErrBadMarker) {
		t.Errorf("marker: %v", err)
	}
	putHeader(buf, MsgUpdate, 10) // length below header size
	if _, err := ParseHeader(buf); !errors.Is(err, ErrBadLength) {
		t.Errorf("length: %v", err)
	}
	putHeader(buf, 9, 100) // bad type
	if _, err := ParseHeader(buf); !errors.Is(err, ErrBadType) {
		t.Errorf("type: %v", err)
	}
}

func TestNLRIRoundTrip(t *testing.T) {
	cases := []struct {
		p       string
		v6      bool
		addPath bool
		pathID  uint32
	}{
		{"10.0.0.0/8", false, false, 0},
		{"10.1.0.0/16", false, false, 0},
		{"192.168.7.0/24", false, false, 0},
		{"0.0.0.0/0", false, false, 0},
		{"10.0.0.1/32", false, false, 0},
		{"2001:db8::/32", true, false, 0},
		{"2001:db8:1:2::/64", true, false, 0},
		{"::/0", true, false, 0},
		{"10.0.0.0/8", false, true, 42},
		{"2001:db8::/48", true, true, 7},
	}
	for _, tc := range cases {
		in := NLRI{Prefix: mustPrefix(tc.p), PathID: tc.pathID}
		b, err := appendNLRI(nil, in, tc.addPath)
		if err != nil {
			t.Fatalf("%s: %v", tc.p, err)
		}
		if len(b) != nlriLen(in, tc.addPath) {
			t.Errorf("%s: nlriLen = %d, encoded %d", tc.p, nlriLen(in, tc.addPath), len(b))
		}
		out, err := parseNLRI(b, tc.v6, tc.addPath)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.p, err)
		}
		if len(out) != 1 || out[0] != in {
			t.Errorf("%s: round trip = %+v", tc.p, out)
		}
	}
}

func TestNLRIMultiple(t *testing.T) {
	var b []byte
	var err error
	want := []string{"10.0.0.0/8", "172.16.0.0/12", "192.168.1.0/24"}
	for _, p := range want {
		b, err = appendNLRI(b, NLRI{Prefix: mustPrefix(p)}, false)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := parseNLRI(b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d entries", len(out))
	}
	for i, p := range want {
		if out[i].Prefix.String() != p {
			t.Errorf("entry %d = %v, want %s", i, out[i].Prefix, p)
		}
	}
}

func TestNLRIErrors(t *testing.T) {
	if _, err := appendNLRI(nil, NLRI{}, false); !errors.Is(err, ErrBadNLRI) {
		t.Errorf("invalid prefix: %v", err)
	}
	// Prefix length byte too big for family.
	if _, err := parseNLRI([]byte{33, 1, 2, 3, 4, 5}, false, false); !errors.Is(err, ErrBadNLRI) {
		t.Errorf("oversized v4 bits: %v", err)
	}
	// Truncated address bytes.
	if _, err := parseNLRI([]byte{24, 10}, false, false); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	// ADD-PATH needs 5 bytes minimum.
	if _, err := parseNLRI([]byte{0, 0, 1}, false, true); !errors.Is(err, ErrTruncated) {
		t.Errorf("addpath truncated: %v", err)
	}
	// Nonzero trailing bits get masked, not rejected.
	out, err := parseNLRI([]byte{9, 10, 0xff}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Prefix.String() != "10.128.0.0/9" {
		t.Errorf("masking: %v", out[0].Prefix)
	}
}

// TestAddPathMisparse documents the collector artifact the paper
// describes (§A8.3.1): ADD-PATH-encoded NLRI read by a non-ADD-PATH
// parser either errors out or yields garbage prefixes.
func TestAddPathMisparse(t *testing.T) {
	b, err := appendNLRI(nil, NLRI{Prefix: mustPrefix("10.0.0.0/8"), PathID: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := parseNLRI(b, false, false)
	if err == nil {
		// If it parses, it must NOT be the real prefix.
		for _, n := range out {
			if n.Prefix.String() == "10.0.0.0/8" {
				t.Error("misparse accidentally produced the true prefix")
			}
		}
	}
}

func TestASPathDataRoundTrip(t *testing.T) {
	p := aspath.Path{Segments: []aspath.Segment{
		{Type: aspath.SegSequence, ASNs: []uint32{7018, 3356, 65001}},
		{Type: aspath.SegSet, ASNs: []uint32{100, 200}},
	}}
	for _, four := range []bool{true, false} {
		b, err := appendASPathData(nil, p, four)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parseASPathData(b, four)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != p.String() {
			t.Errorf("four=%v: %q != %q", four, got.String(), p.String())
		}
	}
}

func TestASPath2OctetTruncation(t *testing.T) {
	p := aspath.Path{Segments: []aspath.Segment{
		{Type: aspath.SegSequence, ASNs: []uint32{70000, 3356}},
	}}
	b, err := appendASPathData(nil, p, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseASPathData(b, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{AS_TRANS, 3356}
	for i, a := range got.Segments[0].ASNs {
		if a != want[i] {
			t.Errorf("ASN %d = %d, want %d", i, a, want[i])
		}
	}
}

func TestASPathDataErrors(t *testing.T) {
	if _, err := parseASPathData([]byte{2}, false); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	if _, err := parseASPathData([]byte{9, 1, 0, 1}, false); !errors.Is(err, ErrBadAttr) {
		t.Errorf("bad segment type: %v", err)
	}
	if _, err := parseASPathData([]byte{2, 0}, false); !errors.Is(err, ErrBadAttr) {
		t.Errorf("zero count: %v", err)
	}
	if _, err := parseASPathData([]byte{2, 3, 0, 1}, false); !errors.Is(err, ErrTruncated) {
		t.Errorf("short ASNs: %v", err)
	}
	bad := aspath.Path{Segments: []aspath.Segment{{Type: aspath.SegmentType(7), ASNs: []uint32{1}}}}
	if _, err := appendASPathData(nil, bad, true); !errors.Is(err, ErrBadAttr) {
		t.Errorf("encode bad type: %v", err)
	}
	empty := aspath.Path{Segments: []aspath.Segment{{Type: aspath.SegSequence}}}
	if _, err := appendASPathData(nil, empty, true); !errors.Is(err, ErrBadAttr) {
		t.Errorf("encode empty segment: %v", err)
	}
}

func attrsRoundTrip(t *testing.T, attrs []Attr, opt Options) []Attr {
	t.Helper()
	b, err := MarshalAttributes(attrs, opt)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseAttributes(b, opt)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(attrs) {
		t.Fatalf("got %d attrs, want %d", len(got), len(attrs))
	}
	return got
}

func TestAttrRoundTripAll(t *testing.T) {
	nh := netip.MustParseAddr("192.0.2.1")
	v6nh := netip.MustParseAddr("2001:db8::1").As16()
	attrs := []Attr{
		Origin(OriginEGP),
		ASPath{Path: aspath.FromSeq(aspath.Seq{7018, 3356, 65001})},
		NextHop(nh),
		MED(50),
		LocalPref(120),
		AtomicAggregate{},
		Aggregator{ASN: 65001, Addr: nh},
		Communities{Community(3257, 2990), Community(3257, 2592)},
		MPReach{AFI: AFIIPv6, SAFI: SAFIUnicast, NextHop: v6nh[:], NLRI: []NLRI{{Prefix: mustPrefix("2001:db8::/32")}}},
		MPUnreach{AFI: AFIIPv6, SAFI: SAFIUnicast, NLRI: []NLRI{{Prefix: mustPrefix("2001:db8:ffff::/48")}}},
		LargeCommunities{{Global: 3356, Local1: 1, Local2: 2}},
	}
	for _, opt := range []Options{{AS4: true}, {AS4: false}} {
		got := attrsRoundTrip(t, attrs, opt)
		if o := got[0].(Origin); uint8(o) != OriginEGP {
			t.Errorf("origin = %v", o)
		}
		ap := got[1].(ASPath)
		if ap.Path.String() != "7018 3356 65001" {
			t.Errorf("aspath = %q", ap.Path.String())
		}
		if a := netip.Addr(got[2].(NextHop)); a != nh {
			t.Errorf("nexthop = %v", a)
		}
		if m := got[3].(MED); m != 50 {
			t.Errorf("med = %v", m)
		}
		if lp := got[4].(LocalPref); lp != 120 {
			t.Errorf("localpref = %v", lp)
		}
		if _, ok := got[5].(AtomicAggregate); !ok {
			t.Error("atomic aggregate lost")
		}
		if ag := got[6].(Aggregator); ag.ASN != 65001 || ag.Addr != nh {
			t.Errorf("aggregator = %+v", ag)
		}
		cs := got[7].(Communities)
		if len(cs) != 2 || cs[0] != Community(3257, 2990) {
			t.Errorf("communities = %v", cs)
		}
		mr := got[8].(MPReach)
		if mr.AFI != AFIIPv6 || len(mr.NLRI) != 1 || mr.NLRI[0].Prefix.String() != "2001:db8::/32" {
			t.Errorf("mpreach = %+v", mr)
		}
		mu := got[9].(MPUnreach)
		if len(mu.NLRI) != 1 || mu.NLRI[0].Prefix.String() != "2001:db8:ffff::/48" {
			t.Errorf("mpunreach = %+v", mu)
		}
		lc := got[10].(LargeCommunities)
		if len(lc) != 1 || lc[0].Global != 3356 {
			t.Errorf("large communities = %v", lc)
		}
	}
}

func TestAggregator4Octet(t *testing.T) {
	addr := netip.MustParseAddr("203.0.113.9")
	attrs := []Attr{Aggregator{ASN: 400000, Addr: addr}}
	// AS4 session keeps the full ASN.
	got := attrsRoundTrip(t, attrs, Options{AS4: true})
	if ag := got[0].(Aggregator); ag.ASN != 400000 {
		t.Errorf("AS4 aggregator = %d", ag.ASN)
	}
	// 2-octet session degrades to AS_TRANS.
	got = attrsRoundTrip(t, attrs, Options{})
	if ag := got[0].(Aggregator); ag.ASN != AS_TRANS {
		t.Errorf("2-octet aggregator = %d", ag.ASN)
	}
}

func TestUnknownAttrPreserved(t *testing.T) {
	u := Unknown{Flags: flagOptional | flagTransitive, TypeCode: 99, Data: []byte{1, 2, 3}}
	got := attrsRoundTrip(t, []Attr{u}, Options{})
	gu := got[0].(Unknown)
	if gu.TypeCode != 99 || string(gu.Data) != string([]byte{1, 2, 3}) {
		t.Errorf("unknown = %+v", gu)
	}
	// Large unknown uses extended length.
	big := Unknown{Flags: flagOptional, TypeCode: 77, Data: make([]byte, 300)}
	got = attrsRoundTrip(t, []Attr{big}, Options{})
	if len(got[0].(Unknown).Data) != 300 {
		t.Error("extended-length unknown lost data")
	}
}

func TestExtendedLengthASPath(t *testing.T) {
	long := make([]uint32, 200) // 200*4 = 800 bytes > 255
	for i := range long {
		long[i] = uint32(i + 1)
	}
	attrs := []Attr{ASPath{Path: aspath.FromSeq(long)}}
	got := attrsRoundTrip(t, attrs, Options{AS4: true})
	seq, err := got[0].(ASPath).Path.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 200 || seq[199] != 200 {
		t.Errorf("long path mangled: len=%d", len(seq))
	}
}

func TestParseAttrsErrors(t *testing.T) {
	if _, err := parseAttrs(nil, []byte{0x40}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	if _, err := parseAttrs(nil, []byte{0x50, 1}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short ext header: %v", err)
	}
	if _, err := parseAttrs(nil, []byte{0x40, 1, 5, 0}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short body: %v", err)
	}
	// Duplicate attribute.
	b, _ := MarshalAttributes([]Attr{Origin(0)}, Options{})
	b = append(b, b...)
	if _, err := parseAttrs(nil, b, Options{}); !errors.Is(err, ErrDupAttr) {
		t.Errorf("dup: %v", err)
	}
	// Bad ORIGIN value / length.
	if _, err := parseAttrs(nil, []byte{0x40, 1, 1, 9}, Options{}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("bad origin: %v", err)
	}
	if _, err := parseAttrs(nil, []byte{0x40, 1, 2, 0, 0}, Options{}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("origin len: %v", err)
	}
	// Bad lengths for fixed-size attrs.
	for _, tc := range [][]byte{
		{0x40, 3, 3, 1, 2, 3},        // NEXT_HOP len 3
		{0x80, 4, 2, 0, 0},           // MED len 2
		{0x40, 5, 1, 0},              // LOCAL_PREF len 1
		{0x40, 6, 1, 0},              // ATOMIC_AGGREGATE len 1
		{0xc0, 7, 3, 0, 0, 0},        // AGGREGATOR len 3
		{0xc0, 8, 3, 0, 0, 0},        // COMMUNITIES not multiple of 4
		{0xc0, 32, 5, 0, 0, 0, 0, 0}, // LARGE not multiple of 12
		{0xc0, 18, 3, 0, 0, 0},       // AS4_AGGREGATOR len 3
	} {
		if _, err := parseAttrs(nil, tc, Options{}); !errors.Is(err, ErrBadAttr) {
			t.Errorf("attr %d: %v", tc[1], err)
		}
	}
	// Truncated MP_REACH.
	if _, err := parseAttrs(nil, []byte{0x80, 14, 2, 0, 2}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("mp_reach: %v", err)
	}
	if _, err := parseAttrs(nil, []byte{0x80, 15, 2, 0, 2}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("mp_unreach: %v", err)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	nh := netip.MustParseAddr("192.0.2.1")
	u, err := NewAnnouncement(aspath.Seq{64500, 64501}, nh, []netip.Prefix{
		mustPrefix("10.0.0.0/8"), mustPrefix("10.1.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	u.Withdrawn = []NLRI{{Prefix: mustPrefix("172.16.0.0/12")}}
	for _, opt := range []Options{{}, {AS4: true}, {AddPath: true}, {AS4: true, AddPath: true}} {
		b, err := u.Marshal(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		got, err := ParseUpdate(b, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if len(got.Announced) != 2 || got.Announced[0].Prefix.String() != "10.0.0.0/8" {
			t.Errorf("announced = %+v", got.Announced)
		}
		if len(got.Withdrawn) != 1 || got.Withdrawn[0].Prefix.String() != "172.16.0.0/12" {
			t.Errorf("withdrawn = %+v", got.Withdrawn)
		}
		p, ok := got.ASPathAttr()
		if !ok {
			t.Fatal("no AS path")
		}
		seq, err := p.Sequence()
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(aspath.Seq{64500, 64501}) {
			t.Errorf("path = %v", seq)
		}
		if len(got.Reachable()) != 2 || len(got.Unreachable()) != 1 {
			t.Errorf("reachable/unreachable = %d/%d", len(got.Reachable()), len(got.Unreachable()))
		}
	}
}

func TestUpdateIPv6(t *testing.T) {
	nh := netip.MustParseAddr("2001:db8::1")
	u, err := NewAnnouncement(aspath.Seq{64500, 64501}, nh, []netip.Prefix{
		mustPrefix("2001:db8:a::/48"), mustPrefix("2001:db8:b::/48"),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Marshal(Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUpdate(b, Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	reach := got.Reachable()
	if len(reach) != 2 || reach[0].Prefix.String() != "2001:db8:a::/48" {
		t.Errorf("v6 reachable = %+v", reach)
	}
	if len(got.Announced) != 0 {
		t.Error("v6 prefixes leaked into top-level NLRI")
	}

	w, err := NewWithdrawal([]netip.Prefix{mustPrefix("2001:db8:a::/48")})
	if err != nil {
		t.Fatal(err)
	}
	b, err = w.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseUpdate(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if un := got.Unreachable(); len(un) != 1 || un[0].Prefix.String() != "2001:db8:a::/48" {
		t.Errorf("v6 unreachable = %+v", un)
	}
}

func TestNewAnnouncementErrors(t *testing.T) {
	nh := netip.MustParseAddr("192.0.2.1")
	if _, err := NewAnnouncement(aspath.Seq{1}, nh, nil); err == nil {
		t.Error("empty prefixes accepted")
	}
	mixed := []netip.Prefix{mustPrefix("10.0.0.0/8"), mustPrefix("2001:db8::/32")}
	if _, err := NewAnnouncement(aspath.Seq{1}, nh, mixed); err == nil {
		t.Error("mixed families accepted")
	}
	if _, err := NewWithdrawal(nil); err == nil {
		t.Error("empty withdrawal accepted")
	}
	if _, err := NewWithdrawal(mixed); err == nil {
		t.Error("mixed withdrawal accepted")
	}
}

func TestAS4PathReconciliation(t *testing.T) {
	// A 2-octet session: path contains a 4-octet ASN; Marshal must add
	// AS4_PATH, and ParseUpdate must reconcile back to the true path.
	nh := netip.MustParseAddr("192.0.2.1")
	truth := aspath.Seq{64500, 400000, 64501}
	u, err := NewAnnouncement(truth, nh, []netip.Prefix{mustPrefix("10.0.0.0/8")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Marshal(Options{AS4: false})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUpdate(b, Options{AS4: false})
	if err != nil {
		t.Fatal(err)
	}
	if got.Attr(AttrTypeAS4Path) == nil {
		t.Fatal("AS4_PATH not emitted")
	}
	p, ok := got.ASPathAttr()
	if !ok {
		t.Fatal("no path")
	}
	seq, err := p.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(truth) {
		t.Errorf("reconciled = %v, want %v", seq, truth)
	}
}

func TestReconcileAS4LongerIgnored(t *testing.T) {
	short := aspath.FromSeq(aspath.Seq{1, 2})
	long4 := aspath.FromSeq(aspath.Seq{9, 9, 9})
	got := reconcileAS4(short, long4)
	if got.String() != short.String() {
		t.Errorf("longer AS4_PATH should be ignored, got %q", got.String())
	}
}

func TestReconcileAS4Partial(t *testing.T) {
	// Old speaker prepended AS_TRANS twice; AS4_PATH covers the tail.
	path := aspath.FromSeq(aspath.Seq{100, AS_TRANS, 200})
	path4 := aspath.FromSeq(aspath.Seq{400000, 200})
	got := reconcileAS4(path, path4)
	seq, err := got.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(aspath.Seq{100, 400000, 200}) {
		t.Errorf("partial reconcile = %v", seq)
	}
}

func TestReconcileAS4WithSet(t *testing.T) {
	// AS_PATH has a set that counts as one hop.
	path := aspath.Path{Segments: []aspath.Segment{
		{Type: aspath.SegSequence, ASNs: []uint32{100}},
		{Type: aspath.SegSet, ASNs: []uint32{5, 6}},
		{Type: aspath.SegSequence, ASNs: []uint32{200}},
	}}
	path4 := aspath.FromSeq(aspath.Seq{999})
	got := reconcileAS4(path, path4)
	if got.String() != "100 [5 6] 999" {
		t.Errorf("set reconcile = %q", got.String())
	}
}

func TestParseUpdateErrors(t *testing.T) {
	if _, err := ParseUpdate([]byte{1, 2}, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, HeaderLen)
	putHeader(buf, MsgKeepalive, HeaderLen)
	if _, err := ParseUpdate(buf, Options{}); !errors.Is(err, ErrBadType) {
		t.Errorf("keepalive: %v", err)
	}
	putHeader(buf, MsgUpdate, HeaderLen+10)
	if _, err := ParseUpdate(buf, Options{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("claims more: %v", err)
	}
	// Body truncation points.
	mk := func(body []byte) []byte {
		m := make([]byte, HeaderLen+len(body))
		putHeader(m, MsgUpdate, len(m))
		copy(m[HeaderLen:], body)
		return m
	}
	for _, body := range [][]byte{
		{0},          // withdrawn length cut
		{0, 5},       // withdrawn routes cut
		{0, 0, 0},    // attr length cut
		{0, 0, 0, 9}, // attrs cut
	} {
		if _, err := ParseUpdate(mk(body), Options{}); !errors.Is(err, ErrTruncated) {
			t.Errorf("body %v: %v", body, err)
		}
	}
}

func TestMarshalSizeLimit(t *testing.T) {
	// Enough /24s to blow past 4096 bytes.
	var prefixes []netip.Prefix
	for i := 0; i < 1200; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
		prefixes = append(prefixes, netip.PrefixFrom(a, 24))
	}
	u, err := NewAnnouncement(aspath.Seq{1}, netip.MustParseAddr("192.0.2.1"), prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Marshal(Options{}); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversize: %v", err)
	}
}

func TestMarshalRejectsV6TopLevel(t *testing.T) {
	u := &Update{Announced: []NLRI{{Prefix: mustPrefix("2001:db8::/32")}}}
	if _, err := u.Marshal(Options{}); !errors.Is(err, ErrBadNLRI) {
		t.Errorf("v6 NLRI: %v", err)
	}
	u = &Update{Withdrawn: []NLRI{{Prefix: mustPrefix("2001:db8::/32")}}}
	if _, err := u.Marshal(Options{}); !errors.Is(err, ErrBadNLRI) {
		t.Errorf("v6 withdrawn: %v", err)
	}
}

func TestUpdateFuzzRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	nhv4 := netip.MustParseAddr("192.0.2.1")
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(5)
		var prefixes []netip.Prefix
		for j := 0; j < n; j++ {
			a := netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), 0})
			prefixes = append(prefixes, netip.PrefixFrom(a, 8+r.Intn(17)).Masked())
		}
		plen := 1 + r.Intn(6)
		seq := make(aspath.Seq, plen)
		for j := range seq {
			seq[j] = uint32(1 + r.Intn(1000000))
		}
		u, err := NewAnnouncement(seq, nhv4, prefixes)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{AS4: r.Intn(2) == 0, AddPath: r.Intn(2) == 0}
		b, err := u.Marshal(opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseUpdate(b, opt)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		p, _ := got.ASPathAttr()
		gotSeq, err := p.Sequence()
		if err != nil {
			t.Fatal(err)
		}
		if !gotSeq.Equal(seq) {
			t.Fatalf("iter %d: path %v != %v (opt %+v)", i, gotSeq, seq, opt)
		}
		if len(got.Reachable()) != len(prefixes) {
			t.Fatalf("iter %d: prefix count", i)
		}
	}
}
