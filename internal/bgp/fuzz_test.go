package bgp

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzParseUpdate drives the UPDATE decoder with arbitrary messages
// under every session-option combination. The hard property is that the
// parser never panics (the wiresafety invariant: every index dominated
// by a length check). For messages it accepts, re-marshaling is allowed
// to reject non-canonical forms, but once a message re-marshals, the
// canonical bytes must be a parse/marshal fixed point.
func FuzzParseUpdate(f *testing.F) {
	seed := func(u *Update, opt Options) {
		msg, err := u.Marshal(opt)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg, opt.AS4, opt.AddPath)
	}
	nh4 := netip.MustParseAddr("10.0.0.1")
	p4 := []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24"), netip.MustParsePrefix("198.51.100.0/25")}
	p6 := []netip.Prefix{netip.MustParsePrefix("2001:db8::/32")}

	ann4, _ := NewAnnouncement([]uint32{65001, 400000, 65003}, nh4, p4)
	ann4.Attrs = append(ann4.Attrs, MED(10), Communities{0x10001}, AtomicAggregate{},
		Aggregator{ASN: 400000, Addr: nh4})
	seed(ann4, Options{})
	seed(ann4, Options{AS4: true})
	seed(ann4, Options{AS4: true, AddPath: true})

	ann6, _ := NewAnnouncement([]uint32{65001, 65002}, netip.MustParseAddr("2001:db8::1"), p6)
	seed(ann6, Options{AS4: true})

	wd4, _ := NewWithdrawal(p4)
	seed(wd4, Options{})
	wd6, _ := NewWithdrawal(p6)
	seed(wd6, Options{AS4: true})

	f.Add([]byte{}, false, false)
	f.Add(Keepalive(), false, false)

	f.Fuzz(func(t *testing.T, msg []byte, as4, addPath bool) {
		opt := Options{AS4: as4, AddPath: addPath}
		var u Update
		if err := ParseUpdateInto(&u, msg, opt); err != nil {
			return
		}
		canon, err := u.Marshal(opt)
		if err != nil {
			// Accepted on parse but not canonically encodable (e.g. an
			// unknown attribute whose flags this encoder won't emit) — out
			// of round-trip scope.
			return
		}
		var u2 Update
		if err := ParseUpdateInto(&u2, canon, opt); err != nil {
			t.Fatalf("re-parse of canonical encoding failed: %v\ncanon = %x", err, canon)
		}
		canon2, err := u2.Marshal(opt)
		if err != nil {
			t.Fatalf("re-marshal of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first = %x\nsecond = %x", canon, canon2)
		}
	})
}
