package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Capability codes (RFC 5492 registry, the subset relevant to collector
// sessions).
const (
	CapMultiprotocol uint8 = 1  // RFC 4760
	CapRouteRefresh  uint8 = 2  // RFC 2918
	CapAS4           uint8 = 65 // RFC 6793
	CapAddPath       uint8 = 69 // RFC 7911
)

// Capability is one OPEN capability TLV.
type Capability struct {
	Code uint8
	Data []byte
}

// AS4Capability builds the 4-octet-AS capability.
func AS4Capability(asn uint32) Capability {
	return Capability{Code: CapAS4, Data: binary.BigEndian.AppendUint32(nil, asn)}
}

// AddPathCapability builds an ADD-PATH capability for one AFI/SAFI.
// sendReceive: 1 = receive, 2 = send, 3 = both.
func AddPathCapability(afi uint16, safi, sendReceive uint8) Capability {
	data := binary.BigEndian.AppendUint16(nil, afi)
	return Capability{Code: CapAddPath, Data: append(data, safi, sendReceive)}
}

// MultiprotocolCapability builds an MP-BGP capability for one AFI/SAFI.
func MultiprotocolCapability(afi uint16, safi uint8) Capability {
	data := binary.BigEndian.AppendUint16(nil, afi)
	return Capability{Code: CapMultiprotocol, Data: append(data, 0, safi)}
}

// Open is a BGP OPEN message (RFC 4271 §4.2). Capabilities travel in
// the standard optional parameter 2 (RFC 5492).
type Open struct {
	Version      uint8
	ASN          uint16 // AS_TRANS for 4-octet speakers (the truth in CapAS4)
	HoldTime     uint16
	BGPID        netip.Addr
	Capabilities []Capability
}

// Marshal encodes the OPEN into a full message.
func (o *Open) Marshal() ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("%w: BGP identifier must be IPv4", ErrBadAttr)
	}
	var caps []byte
	for _, c := range o.Capabilities {
		if len(c.Data) > 255 {
			return nil, fmt.Errorf("%w: capability %d data too long", ErrBadAttr, c.Code)
		}
		caps = append(caps, c.Code, byte(len(c.Data)))
		caps = append(caps, c.Data...)
	}
	var params []byte
	if len(caps) > 0 {
		// The parameter header adds 2 bytes, and the optional-parameters
		// length field below is one byte, so the caps block must leave
		// room for both: len(params) = len(caps)+2 must fit in a byte.
		if len(caps) > 253 {
			return nil, fmt.Errorf("%w: capabilities block too long", ErrBadAttr)
		}
		params = append(params, 2 /* capabilities */, byte(len(caps)))
		params = append(params, caps...)
	}
	total := HeaderLen + 10 + len(params)
	msg := make([]byte, HeaderLen, total)
	putHeader(msg, MsgOpen, total)
	version := o.Version
	if version == 0 {
		version = 4
	}
	msg = append(msg, version)
	msg = binary.BigEndian.AppendUint16(msg, o.ASN)
	msg = binary.BigEndian.AppendUint16(msg, o.HoldTime)
	id := o.BGPID.As4()
	msg = append(msg, id[:]...)
	if len(params) > 255 {
		return nil, fmt.Errorf("%w: optional parameters %d bytes", ErrBadLength, len(params))
	}
	msg = append(msg, byte(len(params)))
	return append(msg, params...), nil
}

// ParseOpen decodes a full OPEN message.
func ParseOpen(b []byte) (*Open, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Type != MsgOpen {
		return nil, fmt.Errorf("%w: got type %d, want OPEN", ErrBadType, h.Type)
	}
	if int(h.Len) > len(b) {
		return nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrTruncated, h.Len, len(b))
	}
	body := b[HeaderLen:h.Len]
	if len(body) < 10 {
		return nil, fmt.Errorf("%w: OPEN body", ErrTruncated)
	}
	o := &Open{
		Version:  body[0],
		ASN:      binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	plen := int(body[9])
	params := body[10:]
	if len(params) < plen {
		return nil, fmt.Errorf("%w: OPEN optional parameters", ErrTruncated)
	}
	params = params[:plen]
	for len(params) > 0 {
		if len(params) < 2 {
			return nil, fmt.Errorf("%w: optional parameter header", ErrTruncated)
		}
		ptype, pl := params[0], int(params[1])
		if len(params) < 2+pl {
			return nil, fmt.Errorf("%w: optional parameter body", ErrTruncated)
		}
		data := params[2 : 2+pl]
		params = params[2+pl:]
		if ptype != 2 {
			continue // non-capability parameters are obsolete; skip
		}
		for len(data) > 0 {
			if len(data) < 2 {
				return nil, fmt.Errorf("%w: capability header", ErrTruncated)
			}
			code, cl := data[0], int(data[1])
			if len(data) < 2+cl {
				return nil, fmt.Errorf("%w: capability body", ErrTruncated)
			}
			o.Capabilities = append(o.Capabilities, Capability{
				Code: code, Data: append([]byte(nil), data[2:2+cl]...),
			})
			data = data[2+cl:]
		}
	}
	return o, nil
}

// AS4 returns the 4-octet ASN from the AS4 capability, or (0, false).
func (o *Open) AS4() (uint32, bool) {
	for _, c := range o.Capabilities {
		if c.Code == CapAS4 && len(c.Data) == 4 {
			return binary.BigEndian.Uint32(c.Data), true
		}
	}
	return 0, false
}

// AddPath reports whether the speaker offered ADD-PATH for the AFI/SAFI
// in the given direction bits (1 receive, 2 send).
func (o *Open) AddPath(afi uint16, safi uint8, direction uint8) bool {
	for _, c := range o.Capabilities {
		if c.Code != CapAddPath {
			continue
		}
		for d := c.Data; len(d) >= 4; d = d[4:] {
			if binary.BigEndian.Uint16(d) == afi && d[2] == safi && d[3]&direction != 0 {
				return true
			}
		}
	}
	return false
}

// Keepalive returns an encoded KEEPALIVE message.
func Keepalive() []byte {
	msg := make([]byte, HeaderLen)
	putHeader(msg, MsgKeepalive, HeaderLen)
	return msg
}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Marshal encodes the NOTIFICATION into a full message.
func (n *Notification) Marshal() ([]byte, error) {
	total := HeaderLen + 2 + len(n.Data)
	if total > MaxMsgLen {
		return nil, fmt.Errorf("%w: notification size %d", ErrBadLength, total)
	}
	msg := make([]byte, HeaderLen, total)
	putHeader(msg, MsgNotification, total)
	msg = append(msg, n.Code, n.Subcode)
	return append(msg, n.Data...), nil
}

// ParseNotification decodes a full NOTIFICATION message.
func ParseNotification(b []byte) (*Notification, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Type != MsgNotification {
		return nil, fmt.Errorf("%w: got type %d, want NOTIFICATION", ErrBadType, h.Type)
	}
	if int(h.Len) > len(b) {
		return nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrTruncated, h.Len, len(b))
	}
	body := b[HeaderLen:h.Len]
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: NOTIFICATION body", ErrTruncated)
	}
	return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}
