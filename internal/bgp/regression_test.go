package bgp

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
)

// Regression tests for the wire-safety findings the atomlint suite
// surfaced: parsers trusting the header length over the buffer length
// (panic on truncated input), and marshalers narrowing section lengths
// without range checks (silent truncation on the wire).

// headerOverclaim returns msg cut short so the header's length field
// claims more bytes than the slice holds — the shape a truncated read
// from a TCP stream or MRT file produces.
func headerOverclaim(msg []byte) []byte {
	return msg[:len(msg)-2]
}

func TestParseOpenHeaderOverclaim(t *testing.T) {
	o := &Open{ASN: 65001, HoldTime: 90, BGPID: netip.MustParseAddr("10.0.0.1"),
		Capabilities: []Capability{AS4Capability(65001)}}
	msg, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOpen(headerOverclaim(msg)); !errors.Is(err, ErrTruncated) {
		t.Errorf("overclaiming OPEN: err = %v, want ErrTruncated", err)
	}
}

func TestParseNotificationHeaderOverclaim(t *testing.T) {
	n := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	msg, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNotification(headerOverclaim(msg)); !errors.Is(err, ErrTruncated) {
		t.Errorf("overclaiming NOTIFICATION: err = %v, want ErrTruncated", err)
	}
}

func TestParseUpdateHeaderOverclaim(t *testing.T) {
	u, err := NewAnnouncement([]uint32{65001, 65002}, netip.MustParseAddr("10.0.0.1"),
		[]netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := u.Marshal(Options{AS4: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseUpdate(headerOverclaim(msg), Options{AS4: true}); !errors.Is(err, ErrTruncated) {
		t.Errorf("overclaiming UPDATE: err = %v, want ErrTruncated", err)
	}
}

func TestOpenCapsBlockBoundary(t *testing.T) {
	// The optional-parameters length is one byte and the capability
	// parameter header costs 2, so the caps block tops out at 253 bytes.
	// One byte over must error, not wrap the length byte.
	capOf := func(n int) *Open {
		return &Open{ASN: 65001, BGPID: netip.MustParseAddr("10.0.0.1"),
			Capabilities: []Capability{{Code: 200, Data: make([]byte, n)}}}
	}
	// 2-byte TLV header + 251 data = 253: the largest encodable block.
	msg, err := capOf(251).Marshal()
	if err != nil {
		t.Fatalf("253-byte caps block: %v", err)
	}
	got, err := ParseOpen(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Capabilities) != 1 || len(got.Capabilities[0].Data) != 251 {
		t.Errorf("capabilities = %+v", got.Capabilities)
	}
	if _, err := capOf(252).Marshal(); !errors.Is(err, ErrBadAttr) {
		t.Errorf("254-byte caps block: err = %v, want ErrBadAttr", err)
	}
}

func TestUnknownAttrLengthBoundary(t *testing.T) {
	attr := func(n int) Unknown {
		return Unknown{Flags: flagOptional | flagTransitive, TypeCode: 200, Data: make([]byte, n)}
	}
	// 0xffff fits the extended length and must round-trip.
	b, err := MarshalAttributes([]Attr{attr(0xffff)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := ParseAttributes(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	if u, ok := attrs[0].(Unknown); !ok || len(u.Data) != 0xffff {
		t.Errorf("round-tripped attr = %#v", attrs[0])
	}
	// One byte more overflows uint16 and must error, not truncate.
	if _, err := MarshalAttributes([]Attr{attr(0x10000)}, Options{}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("oversized unknown attr: err = %v, want ErrBadAttr", err)
	}
}

func TestAttrBodyExceedsExtendedLength(t *testing.T) {
	// TABLE_DUMP_V2 RIB entries carry bare attribute blocks with no
	// message-size cap, so an encoded body over 0xffff bytes must be
	// rejected at the attribute level.
	comms := make(Communities, 0x10000/4+1) // 65540-byte body
	if _, err := MarshalAttributes([]Attr{comms}, Options{}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("oversized communities: err = %v, want ErrBadAttr", err)
	}
	// Just under the limit still uses the extended-length form.
	comms = make(Communities, 0xfffc/4) // 65532-byte body
	b, err := MarshalAttributes([]Attr{comms}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := ParseAttributes(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := attrs[0].(Communities); !ok || len(got) != len(comms) {
		t.Errorf("round-tripped %T len %d, want Communities len %d", attrs[0], len(got), len(comms))
	}
}

func TestMPReachNextHopTooLong(t *testing.T) {
	nh := netip.MustParseAddr("2001:db8::1").As16()
	ok := MPReach{AFI: AFIIPv6, SAFI: SAFIUnicast, NextHop: nh[:],
		NLRI: []NLRI{{Prefix: netip.MustParsePrefix("2001:db8::/32")}}}
	if _, err := MarshalAttributes([]Attr{ok}, Options{}); err != nil {
		t.Fatalf("16-byte next hop: %v", err)
	}
	bad := ok
	bad.NextHop = make([]byte, 256) // length field is one byte
	if _, err := MarshalAttributes([]Attr{bad}, Options{}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("256-byte next hop: err = %v, want ErrBadAttr", err)
	}
}

func TestAppendMessageSectionOverflow(t *testing.T) {
	// ~14k /32 withdrawals encode to ~70000 bytes: past the 16-bit
	// withdrawn-routes length. The section guard must reject this before
	// the length field is patched (the message-size check alone would
	// also fire, but only after the uint16 had silently wrapped).
	u := &Update{}
	for i := 0; i < 14000; i++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.%d/32", i>>16&0xff, i>>8&0xff, i&0xff))
		u.Withdrawn = append(u.Withdrawn, NLRI{Prefix: p})
	}
	if _, err := u.Marshal(Options{}); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversized withdrawn section: err = %v, want ErrBadLength", err)
	}
}
