package bgp

import (
	"errors"
	"net/netip"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{
		ASN:      AS_TRANS,
		HoldTime: 180,
		BGPID:    netip.MustParseAddr("192.0.2.1"),
		Capabilities: []Capability{
			MultiprotocolCapability(AFIIPv4, SAFIUnicast),
			MultiprotocolCapability(AFIIPv6, SAFIUnicast),
			AS4Capability(400000),
			AddPathCapability(AFIIPv4, SAFIUnicast, 3),
			{Code: CapRouteRefresh},
		},
	}
	b, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseOpen(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 4 || got.ASN != AS_TRANS || got.HoldTime != 180 || got.BGPID != o.BGPID {
		t.Errorf("open = %+v", got)
	}
	if len(got.Capabilities) != 5 {
		t.Fatalf("capabilities = %d", len(got.Capabilities))
	}
	if asn, ok := got.AS4(); !ok || asn != 400000 {
		t.Errorf("AS4 = %d,%v", asn, ok)
	}
	if !got.AddPath(AFIIPv4, SAFIUnicast, 1) || !got.AddPath(AFIIPv4, SAFIUnicast, 2) {
		t.Error("ADD-PATH both directions expected")
	}
	if got.AddPath(AFIIPv6, SAFIUnicast, 1) {
		t.Error("v6 ADD-PATH not offered")
	}
}

func TestOpenNoCapabilities(t *testing.T) {
	o := &Open{ASN: 65001, HoldTime: 90, BGPID: netip.MustParseAddr("10.0.0.1")}
	b, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseOpen(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Capabilities) != 0 {
		t.Errorf("capabilities = %v", got.Capabilities)
	}
	if _, ok := got.AS4(); ok {
		t.Error("phantom AS4 capability")
	}
}

func TestOpenErrors(t *testing.T) {
	bad := &Open{BGPID: netip.MustParseAddr("2001:db8::1")}
	if _, err := bad.Marshal(); err == nil {
		t.Error("v6 BGP ID accepted")
	}
	big := &Open{BGPID: netip.MustParseAddr("10.0.0.1"),
		Capabilities: []Capability{{Code: 1, Data: make([]byte, 300)}}}
	if _, err := big.Marshal(); err == nil {
		t.Error("oversized capability accepted")
	}
	// Wrong type.
	if _, err := ParseOpen(Keepalive()); !errors.Is(err, ErrBadType) {
		t.Errorf("keepalive as open: %v", err)
	}
	// Truncated bodies.
	o := &Open{ASN: 1, BGPID: netip.MustParseAddr("10.0.0.1"),
		Capabilities: []Capability{AS4Capability(99)}}
	b, _ := o.Marshal()
	for cut := HeaderLen + 1; cut < len(b); cut++ {
		trimmed := append([]byte(nil), b[:cut]...)
		putHeader(trimmed, MsgOpen, cut)
		if _, err := ParseOpen(trimmed); err == nil {
			t.Errorf("cut at %d parsed", cut)
		}
	}
}

func TestKeepalive(t *testing.T) {
	b := Keepalive()
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgKeepalive || int(h.Len) != HeaderLen {
		t.Errorf("keepalive header = %+v", h)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: 6, Subcode: 2, Data: []byte("shutdown")}
	b, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNotification(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "shutdown" {
		t.Errorf("notification = %+v", got)
	}
	if _, err := ParseNotification(Keepalive()); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong type: %v", err)
	}
	huge := &Notification{Data: make([]byte, MaxMsgLen)}
	if _, err := huge.Marshal(); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversize: %v", err)
	}
}
