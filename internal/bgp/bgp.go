// Package bgp implements the subset of the BGP-4 wire protocol that the
// policy-atom pipeline needs: UPDATE message encoding and decoding with
// the full path-attribute set observed in public collector data —
// AS_PATH (2- and 4-octet, RFC 6793), MP_REACH/MP_UNREACH for IPv6
// (RFC 4760), communities (RFC 1997) and large communities (RFC 8092),
// and ADD-PATH NLRI encoding (RFC 7911).
//
// The decoder is strict about structure (truncation, bad flags, bad
// lengths are errors) but tolerant about unknown attributes, which are
// preserved as raw bytes — collectors archive whatever their peers send.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Header sizes and limits.
const (
	MarkerLen  = 16
	HeaderLen  = 19
	MaxMsgLen  = 4096
	AS_TRANS   = 23456 // RFC 6793 2-octet placeholder for a 4-octet ASN
	maxPathLen = 1024  // sanity cap on segment ASN counts
)

// Wire-format errors. All decoding errors wrap one of these.
var (
	ErrTruncated  = errors.New("bgp: truncated message")
	ErrBadMarker  = errors.New("bgp: bad marker")
	ErrBadLength  = errors.New("bgp: bad length")
	ErrBadType    = errors.New("bgp: bad message type")
	ErrBadAttr    = errors.New("bgp: malformed path attribute")
	ErrBadNLRI    = errors.New("bgp: malformed NLRI")
	ErrDupAttr    = errors.New("bgp: duplicate path attribute")
	ErrNotAddPath = errors.New("bgp: NLRI not ADD-PATH encoded")
)

// AFI / SAFI values used by MP-BGP.
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2

	SAFIUnicast uint8 = 1
)

// Header is the fixed 19-byte BGP message header.
type Header struct {
	Len  uint16
	Type uint8
}

// marker is the all-ones marker mandated by RFC 4271.
var marker = [MarkerLen]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// ParseHeader decodes the fixed header and validates the marker, length
// bounds, and message type.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncated, HeaderLen, len(b))
	}
	for i := 0; i < MarkerLen; i++ {
		if b[i] != 0xff {
			return Header{}, ErrBadMarker
		}
	}
	h := Header{
		Len:  binary.BigEndian.Uint16(b[16:18]),
		Type: b[18],
	}
	if h.Len < HeaderLen || h.Len > MaxMsgLen {
		return Header{}, fmt.Errorf("%w: %d", ErrBadLength, h.Len)
	}
	if h.Type < MsgOpen || h.Type > MsgKeepalive {
		return Header{}, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	return h, nil
}

// putHeader writes the 19-byte header for a message of total length n.
func putHeader(dst []byte, msgType uint8, n int) {
	copy(dst, marker[:])
	binary.BigEndian.PutUint16(dst[16:18], uint16(n))
	dst[18] = msgType
}

// Options controls encoding and decoding behaviors that are negotiated
// per-session in real BGP (and recorded per-peer in MRT dumps).
type Options struct {
	// AS4 selects 4-octet AS number encoding in AS_PATH/AGGREGATOR
	// (RFC 6793 capability negotiated). When false, ASNs above 65535 are
	// encoded as AS_TRANS and a separate AS4_PATH carries the truth.
	AS4 bool
	// AddPath selects RFC 7911 NLRI encoding (a 4-byte path identifier
	// precedes every prefix) for both IPv4 NLRI and MP-BGP NLRI.
	AddPath bool
	// Cache, when non-nil, dedupes decoded AS_PATH, NEXT_HOP, and
	// COMMUNITIES attributes across messages (archives repeat a small set
	// of distinct values millions of times). Cached attributes are shared
	// between messages and MUST be treated as read-only by callers.
	Cache *AttrCache
}

// AttrCache memoizes decoded attributes keyed by their raw wire bytes.
// One cache serves one stream of messages; it is not safe for concurrent
// use. The zero value is not usable — call NewAttrCache.
type AttrCache struct {
	paths    [2]map[string]Attr // AS_PATH, indexed by AS4 flag
	paths4   map[string]Attr    // AS4_PATH (always 4-octet)
	nextHops map[netip.Addr]Attr
	comms    map[string]Attr
}

// NewAttrCache returns an empty attribute cache.
func NewAttrCache() *AttrCache {
	return &AttrCache{
		paths:    [2]map[string]Attr{{}, {}},
		paths4:   map[string]Attr{},
		nextHops: map[netip.Addr]Attr{},
		comms:    map[string]Attr{},
	}
}
