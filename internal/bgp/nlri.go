package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// NLRI is one reachability entry: a prefix, plus the RFC 7911 path
// identifier when ADD-PATH encoding is in effect (zero otherwise).
type NLRI struct {
	Prefix netip.Prefix
	PathID uint32
}

// appendNLRI encodes one prefix in RFC 4271 NLRI form: length byte then
// ceil(len/8) address bytes, optionally preceded by a 4-byte path ID.
func appendNLRI(dst []byte, n NLRI, addPath bool) ([]byte, error) {
	p := n.Prefix
	if !p.IsValid() {
		return nil, fmt.Errorf("%w: invalid prefix", ErrBadNLRI)
	}
	if addPath {
		dst = binary.BigEndian.AppendUint32(dst, n.PathID)
	}
	bits := p.Bits()
	dst = append(dst, byte(bits))
	nbytes := (bits + 7) / 8
	addr := p.Addr().AsSlice()
	dst = append(dst, addr[:nbytes]...)
	return dst, nil
}

// parseNLRI decodes a run of NLRI entries from b. v6 selects the address
// family (NLRI in the top-level UPDATE fields is always IPv4; MP-BGP NLRI
// family follows the attribute's AFI).
func parseNLRI(b []byte, v6, addPath bool) ([]NLRI, error) {
	return appendParsedNLRI(nil, b, v6, addPath)
}

// appendParsedNLRI decodes a run of NLRI entries from b, appending to
// dst. The address scratch lives on the stack, so steady-state decoding
// into a reused dst is allocation-free.
func appendParsedNLRI(dst []NLRI, b []byte, v6, addPath bool) ([]NLRI, error) {
	out := dst
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	for len(b) > 0 {
		var pathID uint32
		if addPath {
			if len(b) < 5 {
				return nil, fmt.Errorf("%w: ADD-PATH NLRI needs 5+ bytes, have %d", ErrTruncated, len(b))
			}
			pathID = binary.BigEndian.Uint32(b)
			b = b[4:]
		}
		bits := int(b[0])
		b = b[1:]
		if bits > maxBits {
			return nil, fmt.Errorf("%w: prefix length %d exceeds %d", ErrBadNLRI, bits, maxBits)
		}
		nbytes := (bits + 7) / 8
		if len(b) < nbytes {
			return nil, fmt.Errorf("%w: NLRI needs %d address bytes, have %d", ErrTruncated, nbytes, len(b))
		}
		var buf [16]byte
		copy(buf[:], b[:nbytes])
		b = b[nbytes:]
		// Trailing bits beyond the prefix length must be zero for the
		// prefix to be canonical; we mask rather than reject, matching
		// collector behavior.
		if rem := bits % 8; rem != 0 && nbytes > 0 {
			buf[nbytes-1] &= byte(0xff << (8 - rem))
		}
		var addr netip.Addr
		if v6 {
			addr = netip.AddrFrom16(buf)
		} else {
			addr = netip.AddrFrom4([4]byte(buf[:4]))
		}
		out = append(out, NLRI{Prefix: netip.PrefixFrom(addr, bits), PathID: pathID})
	}
	return out, nil
}

// nlriLen returns the encoded size of one entry.
func nlriLen(n NLRI, addPath bool) int {
	sz := 1 + (n.Prefix.Bits()+7)/8
	if addPath {
		sz += 4
	}
	return sz
}
