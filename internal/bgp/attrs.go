package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"repro/internal/aspath"
)

// AttrType is a BGP path attribute type code.
type AttrType uint8

// Path attribute type codes.
const (
	AttrTypeOrigin           AttrType = 1
	AttrTypeASPath           AttrType = 2
	AttrTypeNextHop          AttrType = 3
	AttrTypeMED              AttrType = 4
	AttrTypeLocalPref        AttrType = 5
	AttrTypeAtomicAggregate  AttrType = 6
	AttrTypeAggregator       AttrType = 7
	AttrTypeCommunities      AttrType = 8
	AttrTypeMPReach          AttrType = 14
	AttrTypeMPUnreach        AttrType = 15
	AttrTypeAS4Path          AttrType = 17
	AttrTypeAS4Aggregator    AttrType = 18
	AttrTypeLargeCommunities AttrType = 32
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// Origin values.
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// Attr is a decoded path attribute.
type Attr interface {
	Type() AttrType
}

// Origin is the ORIGIN attribute.
type Origin uint8

// Type implements Attr.
func (Origin) Type() AttrType { return AttrTypeOrigin }

// ASPath is the AS_PATH attribute.
type ASPath struct{ Path aspath.Path }

// Type implements Attr.
func (ASPath) Type() AttrType { return AttrTypeASPath }

// NextHop is the NEXT_HOP attribute (IPv4 only; IPv6 next hops travel in
// MP_REACH_NLRI).
type NextHop netip.Addr

// Type implements Attr.
func (NextHop) Type() AttrType { return AttrTypeNextHop }

// MED is MULTI_EXIT_DISC.
type MED uint32

// Type implements Attr.
func (MED) Type() AttrType { return AttrTypeMED }

// LocalPref is LOCAL_PREF.
type LocalPref uint32

// Type implements Attr.
func (LocalPref) Type() AttrType { return AttrTypeLocalPref }

// AtomicAggregate is the zero-length ATOMIC_AGGREGATE marker.
type AtomicAggregate struct{}

// Type implements Attr.
func (AtomicAggregate) Type() AttrType { return AttrTypeAtomicAggregate }

// Aggregator is AGGREGATOR (the ASN width follows the session's AS4
// option; AS4Aggregator carries the 4-octet truth on 2-octet sessions).
type Aggregator struct {
	ASN  uint32
	Addr netip.Addr
}

// Type implements Attr.
func (Aggregator) Type() AttrType { return AttrTypeAggregator }

// Communities is the RFC 1997 COMMUNITIES attribute; each value packs
// (ASN<<16 | value).
type Communities []uint32

// Type implements Attr.
func (Communities) Type() AttrType { return AttrTypeCommunities }

// Community constructs a community value from its AS and local parts.
func Community(asn, value uint16) uint32 { return uint32(asn)<<16 | uint32(value) }

// LargeCommunity is one RFC 8092 value.
type LargeCommunity struct {
	Global uint32
	Local1 uint32
	Local2 uint32
}

// LargeCommunities is the RFC 8092 LARGE_COMMUNITY attribute.
type LargeCommunities []LargeCommunity

// Type implements Attr.
func (LargeCommunities) Type() AttrType { return AttrTypeLargeCommunities }

// MPReach is MP_REACH_NLRI (RFC 4760).
type MPReach struct {
	AFI     uint16
	SAFI    uint8
	NextHop []byte
	NLRI    []NLRI
}

// Type implements Attr.
func (MPReach) Type() AttrType { return AttrTypeMPReach }

// MPUnreach is MP_UNREACH_NLRI (RFC 4760).
type MPUnreach struct {
	AFI  uint16
	SAFI uint8
	NLRI []NLRI
}

// Type implements Attr.
func (MPUnreach) Type() AttrType { return AttrTypeMPUnreach }

// AS4Path carries the 4-octet AS_PATH on 2-octet sessions (RFC 6793).
type AS4Path struct{ Path aspath.Path }

// Type implements Attr.
func (AS4Path) Type() AttrType { return AttrTypeAS4Path }

// AS4Aggregator carries the 4-octet AGGREGATOR on 2-octet sessions.
type AS4Aggregator struct {
	ASN  uint32
	Addr netip.Addr
}

// Type implements Attr.
func (AS4Aggregator) Type() AttrType { return AttrTypeAS4Aggregator }

// Unknown preserves an attribute this package does not interpret.
type Unknown struct {
	Flags    uint8
	TypeCode AttrType
	Data     []byte
}

// Type implements Attr.
func (u Unknown) Type() AttrType { return u.TypeCode }

// --- AS path segment codec ---

// parseASPathData decodes AS_PATH segment data; four selects 4-octet ASNs.
func parseASPathData(b []byte, four bool) (aspath.Path, error) {
	var p aspath.Path
	asnLen := 2
	if four {
		asnLen = 4
	}
	for len(b) > 0 {
		if len(b) < 2 {
			return aspath.Path{}, fmt.Errorf("%w: AS_PATH segment header", ErrTruncated)
		}
		segType := aspath.SegmentType(b[0])
		count := int(b[1])
		b = b[2:]
		if !segType.Valid() {
			return aspath.Path{}, fmt.Errorf("%w: AS_PATH segment type %d", ErrBadAttr, segType)
		}
		if count == 0 || count > maxPathLen {
			return aspath.Path{}, fmt.Errorf("%w: AS_PATH segment count %d", ErrBadAttr, count)
		}
		need := count * asnLen
		if len(b) < need {
			return aspath.Path{}, fmt.Errorf("%w: AS_PATH segment needs %d bytes, have %d", ErrTruncated, need, len(b))
		}
		asns := make([]uint32, count)
		for i := 0; i < count; i++ {
			if four {
				asns[i] = binary.BigEndian.Uint32(b[i*4:])
			} else {
				asns[i] = uint32(binary.BigEndian.Uint16(b[i*2:]))
			}
		}
		b = b[need:]
		p.Segments = append(p.Segments, aspath.Segment{Type: segType, ASNs: asns})
	}
	return p, nil
}

// appendASPathData encodes AS_PATH segment data; four selects 4-octet
// ASNs. On 2-octet encoding, ASNs above 65535 become AS_TRANS.
func appendASPathData(dst []byte, p aspath.Path, four bool) ([]byte, error) {
	for _, s := range p.Segments {
		if !s.Type.Valid() {
			return nil, fmt.Errorf("%w: segment type %d", ErrBadAttr, s.Type)
		}
		if len(s.ASNs) == 0 || len(s.ASNs) > 255 {
			return nil, fmt.Errorf("%w: segment with %d ASNs", ErrBadAttr, len(s.ASNs))
		}
		dst = append(dst, byte(s.Type), byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			if four {
				dst = binary.BigEndian.AppendUint32(dst, a)
			} else {
				if a > 0xffff {
					a = AS_TRANS
				}
				dst = binary.BigEndian.AppendUint16(dst, uint16(a))
			}
		}
	}
	return dst, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// pathNeedsAS4 reports whether any ASN in the path does not fit in 2 octets.
func pathNeedsAS4(p aspath.Path) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a > 0xffff {
				return true
			}
		}
	}
	return false
}

// --- attribute codec ---

// attrSpec describes the canonical flags for the attributes we emit.
var attrFlags = map[AttrType]uint8{
	AttrTypeOrigin:           flagTransitive,
	AttrTypeASPath:           flagTransitive,
	AttrTypeNextHop:          flagTransitive,
	AttrTypeMED:              flagOptional,
	AttrTypeLocalPref:        flagTransitive,
	AttrTypeAtomicAggregate:  flagTransitive,
	AttrTypeAggregator:       flagOptional | flagTransitive,
	AttrTypeCommunities:      flagOptional | flagTransitive,
	AttrTypeMPReach:          flagOptional,
	AttrTypeMPUnreach:        flagOptional,
	AttrTypeAS4Path:          flagOptional | flagTransitive,
	AttrTypeAS4Aggregator:    flagOptional | flagTransitive,
	AttrTypeLargeCommunities: flagOptional | flagTransitive,
}

// appendAttr encodes one attribute with canonical flags, choosing the
// extended-length form when the payload exceeds 255 bytes. The body is
// encoded in place after a short-form header; on overflow the body is
// shifted one byte for the extended length — no per-attribute scratch.
func appendAttr(dst []byte, a Attr, opt Options) ([]byte, error) {
	if v, ok := a.(Unknown); ok {
		if len(v.Data) > 0xffff {
			return nil, fmt.Errorf("%w: attribute %d payload %d bytes exceeds extended length", ErrBadAttr, v.TypeCode, len(v.Data))
		}
		flags := v.Flags &^ flagExtLen
		if len(v.Data) > 255 {
			flags |= flagExtLen
		}
		dst = append(dst, flags, byte(v.TypeCode))
		if flags&flagExtLen != 0 {
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Data)))
		} else {
			dst = append(dst, byte(len(v.Data)))
		}
		return append(dst, v.Data...), nil
	}

	flags := attrFlags[a.Type()]
	dst = append(dst, flags, byte(a.Type()), 0) // short-form length, patched below
	bodyStart := len(dst)

	var err error
	switch v := a.(type) {
	case Origin:
		dst = append(dst, byte(v))
	case ASPath:
		dst, err = appendASPathData(dst, v.Path, opt.AS4)
	case NextHop:
		addr := netip.Addr(v)
		if !addr.Is4() {
			return nil, fmt.Errorf("%w: NEXT_HOP must be IPv4", ErrBadAttr)
		}
		b4 := addr.As4()
		dst = append(dst, b4[:]...)
	case MED:
		dst = binary.BigEndian.AppendUint32(dst, uint32(v))
	case LocalPref:
		dst = binary.BigEndian.AppendUint32(dst, uint32(v))
	case AtomicAggregate:
		// zero-length body
	case Aggregator:
		if !v.Addr.Is4() {
			return nil, fmt.Errorf("%w: AGGREGATOR address must be IPv4", ErrBadAttr)
		}
		if opt.AS4 {
			dst = binary.BigEndian.AppendUint32(dst, v.ASN)
		} else {
			asn := v.ASN
			if asn > 0xffff {
				asn = AS_TRANS
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(asn))
		}
		b4 := v.Addr.As4()
		dst = append(dst, b4[:]...)
	case Communities:
		for _, c := range v {
			dst = binary.BigEndian.AppendUint32(dst, c)
		}
	case LargeCommunities:
		for _, c := range v {
			dst = binary.BigEndian.AppendUint32(dst, c.Global)
			dst = binary.BigEndian.AppendUint32(dst, c.Local1)
			dst = binary.BigEndian.AppendUint32(dst, c.Local2)
		}
	case MPReach:
		if len(v.NextHop) > 255 {
			return nil, fmt.Errorf("%w: MP_REACH next hop %d bytes", ErrBadAttr, len(v.NextHop))
		}
		dst = binary.BigEndian.AppendUint16(dst, v.AFI)
		dst = append(dst, v.SAFI, byte(len(v.NextHop)))
		dst = append(dst, v.NextHop...)
		dst = append(dst, 0) // reserved SNPA count
		for _, n := range v.NLRI {
			dst, err = appendNLRI(dst, n, opt.AddPath)
			if err != nil {
				return nil, err
			}
		}
	case MPUnreach:
		dst = binary.BigEndian.AppendUint16(dst, v.AFI)
		dst = append(dst, v.SAFI)
		for _, n := range v.NLRI {
			dst, err = appendNLRI(dst, n, opt.AddPath)
			if err != nil {
				return nil, err
			}
		}
	case AS4Path:
		dst, err = appendASPathData(dst, v.Path, true)
	case AS4Aggregator:
		if !v.Addr.Is4() {
			return nil, fmt.Errorf("%w: AS4_AGGREGATOR address must be IPv4", ErrBadAttr)
		}
		dst = binary.BigEndian.AppendUint32(dst, v.ASN)
		b4 := v.Addr.As4()
		dst = append(dst, b4[:]...)
	default:
		return nil, fmt.Errorf("%w: cannot encode %T", ErrBadAttr, a)
	}
	if err != nil {
		return nil, err
	}

	blen := len(dst) - bodyStart
	if blen > 0xffff {
		// Bare attribute blocks (MarshalAttributes for TABLE_DUMP_V2 RIB
		// entries) have no message-size cap upstream, so the extended
		// length must be range-checked here or it truncates on the wire.
		return nil, fmt.Errorf("%w: attribute %d body %d bytes exceeds extended length", ErrBadAttr, a.Type(), blen)
	}
	if blen > 255 {
		// Extended length: make room for the second length byte and
		// shift the body right by one.
		dst = append(dst, 0)
		copy(dst[bodyStart+1:], dst[bodyStart:len(dst)-1])
		dst[bodyStart-3] = flags | flagExtLen
		binary.BigEndian.PutUint16(dst[bodyStart-1:], uint16(blen))
	} else {
		dst[bodyStart-1] = byte(blen)
	}
	return dst, nil
}

// parseAttrs decodes a path-attribute block, appending to dst (which
// may be nil, or a reused slice truncated to length 0).
func parseAttrs(dst []Attr, b []byte, opt Options) ([]Attr, error) {
	out := dst
	var seen [256]bool
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("%w: attribute header", ErrTruncated)
		}
		flags := b[0]
		typ := AttrType(b[1])
		var alen int
		var hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: extended attribute header", ErrTruncated)
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			hdr = 4
		} else {
			alen = int(b[2])
			hdr = 3
		}
		if len(b) < hdr+alen {
			return nil, fmt.Errorf("%w: attribute %d needs %d bytes, have %d", ErrTruncated, typ, alen, len(b)-hdr)
		}
		data := b[hdr : hdr+alen]
		b = b[hdr+alen:]
		if seen[typ] {
			return nil, fmt.Errorf("%w: type %d", ErrDupAttr, typ)
		}
		seen[typ] = true
		a, err := parseAttrBody(flags, typ, data, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func parseAttrBody(flags uint8, typ AttrType, data []byte, opt Options) (Attr, error) {
	switch typ {
	case AttrTypeOrigin:
		if len(data) != 1 {
			return nil, fmt.Errorf("%w: ORIGIN length %d", ErrBadAttr, len(data))
		}
		if data[0] > OriginIncomplete {
			return nil, fmt.Errorf("%w: ORIGIN value %d", ErrBadAttr, data[0])
		}
		return Origin(data[0]), nil
	case AttrTypeASPath:
		var m map[string]Attr
		if opt.Cache != nil {
			m = opt.Cache.paths[b2i(opt.AS4)]
			if a, ok := m[string(data)]; ok {
				return a, nil
			}
		}
		p, err := parseASPathData(data, opt.AS4)
		if err != nil {
			return nil, err
		}
		a := ASPath{Path: p}
		if m != nil {
			m[string(data)] = a
		}
		return a, nil
	case AttrTypeNextHop:
		if len(data) != 4 {
			return nil, fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttr, len(data))
		}
		addr := netip.AddrFrom4([4]byte(data))
		if c := opt.Cache; c != nil {
			if a, ok := c.nextHops[addr]; ok {
				return a, nil
			}
			a := NextHop(addr)
			c.nextHops[addr] = a
			return a, nil
		}
		return NextHop(addr), nil
	case AttrTypeMED:
		if len(data) != 4 {
			return nil, fmt.Errorf("%w: MED length %d", ErrBadAttr, len(data))
		}
		return MED(binary.BigEndian.Uint32(data)), nil
	case AttrTypeLocalPref:
		if len(data) != 4 {
			return nil, fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttr, len(data))
		}
		return LocalPref(binary.BigEndian.Uint32(data)), nil
	case AttrTypeAtomicAggregate:
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadAttr, len(data))
		}
		return AtomicAggregate{}, nil
	case AttrTypeAggregator:
		want := 6
		if opt.AS4 {
			want = 8
		}
		if len(data) != want {
			return nil, fmt.Errorf("%w: AGGREGATOR length %d", ErrBadAttr, len(data))
		}
		var asn uint32
		if opt.AS4 {
			asn = binary.BigEndian.Uint32(data)
			data = data[4:]
		} else {
			asn = uint32(binary.BigEndian.Uint16(data))
			data = data[2:]
		}
		return Aggregator{ASN: asn, Addr: netip.AddrFrom4([4]byte(data))}, nil
	case AttrTypeCommunities:
		if len(data)%4 != 0 {
			return nil, fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttr, len(data))
		}
		if c := opt.Cache; c != nil {
			if a, ok := c.comms[string(data)]; ok {
				return a, nil
			}
		}
		cs := make(Communities, len(data)/4)
		for i := range cs {
			cs[i] = binary.BigEndian.Uint32(data[i*4:])
		}
		if c := opt.Cache; c != nil {
			c.comms[string(data)] = cs
		}
		return cs, nil
	case AttrTypeLargeCommunities:
		if len(data)%12 != 0 {
			return nil, fmt.Errorf("%w: LARGE_COMMUNITY length %d", ErrBadAttr, len(data))
		}
		cs := make(LargeCommunities, len(data)/12)
		for i := range cs {
			cs[i] = LargeCommunity{
				Global: binary.BigEndian.Uint32(data[i*12:]),
				Local1: binary.BigEndian.Uint32(data[i*12+4:]),
				Local2: binary.BigEndian.Uint32(data[i*12+8:]),
			}
		}
		return cs, nil
	case AttrTypeMPReach:
		if len(data) < 5 {
			return nil, fmt.Errorf("%w: MP_REACH header", ErrTruncated)
		}
		m := MPReach{AFI: binary.BigEndian.Uint16(data), SAFI: data[2]}
		nhLen := int(data[3])
		data = data[4:]
		if len(data) < nhLen+1 {
			return nil, fmt.Errorf("%w: MP_REACH next hop", ErrTruncated)
		}
		m.NextHop = append([]byte(nil), data[:nhLen]...)
		data = data[nhLen:]
		// one reserved byte (SNPA count, must be 0 post-RFC4760)
		data = data[1:]
		nlri, err := parseNLRI(data, m.AFI == AFIIPv6, opt.AddPath)
		if err != nil {
			return nil, err
		}
		m.NLRI = nlri
		return m, nil
	case AttrTypeMPUnreach:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: MP_UNREACH header", ErrTruncated)
		}
		m := MPUnreach{AFI: binary.BigEndian.Uint16(data), SAFI: data[2]}
		nlri, err := parseNLRI(data[3:], m.AFI == AFIIPv6, opt.AddPath)
		if err != nil {
			return nil, err
		}
		m.NLRI = nlri
		return m, nil
	case AttrTypeAS4Path:
		if c := opt.Cache; c != nil {
			if a, ok := c.paths4[string(data)]; ok {
				return a, nil
			}
		}
		p, err := parseASPathData(data, true)
		if err != nil {
			return nil, err
		}
		a := AS4Path{Path: p}
		if c := opt.Cache; c != nil {
			c.paths4[string(data)] = a
		}
		return a, nil
	case AttrTypeAS4Aggregator:
		if len(data) != 8 {
			return nil, fmt.Errorf("%w: AS4_AGGREGATOR length %d", ErrBadAttr, len(data))
		}
		return AS4Aggregator{
			ASN:  binary.BigEndian.Uint32(data),
			Addr: netip.AddrFrom4([4]byte(data[4:8])),
		}, nil
	default:
		return Unknown{Flags: flags, TypeCode: typ, Data: append([]byte(nil), data...)}, nil
	}
}
