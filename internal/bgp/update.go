package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"repro/internal/aspath"
)

// Update is a decoded BGP UPDATE message. Withdrawn and Announced hold
// the top-level IPv4 fields; IPv6 reachability travels inside MPReach /
// MPUnreach attributes, which the Reachable/Unreachable helpers merge.
type Update struct {
	Withdrawn []NLRI
	Attrs     []Attr
	Announced []NLRI
}

// Attr returns the first attribute of the given type, or nil.
//
//atomlint:borrowed cache-shared: decoded attributes may be AttrCache entries shared by every element with the same attribute bytes; mutating one corrupts them all
func (u *Update) Attr(t AttrType) Attr {
	for _, a := range u.Attrs {
		if a.Type() == t {
			return a
		}
	}
	return nil
}

// ASPathAttr returns the effective AS path, reconciling AS4_PATH with
// AS_PATH per RFC 6793 §4.2.3 when the session used 2-octet encoding:
// if AS4_PATH is present and no longer than AS_PATH, the trailing
// portion of AS_PATH is replaced by AS4_PATH (the leading AS_TRANS
// hops contributed by old speakers are kept).
//
//atomlint:borrowed cache-shared: the merged path's segments alias the decoded (possibly cache-shared) attributes
func (u *Update) ASPathAttr() (aspath.Path, bool) {
	ap, ok := u.Attr(AttrTypeASPath).(ASPath)
	if !ok {
		return aspath.Path{}, false
	}
	a4, ok4 := u.Attr(AttrTypeAS4Path).(AS4Path)
	if !ok4 {
		return ap.Path, true
	}
	return reconcileAS4(ap.Path, a4.Path), true
}

// reconcileAS4 merges AS_PATH with AS4_PATH per RFC 6793.
func reconcileAS4(path, path4 aspath.Path) aspath.Path {
	n, n4 := path.Len(), path4.Len()
	if n4 > n {
		// AS4_PATH longer than AS_PATH: ignore it (RFC 6793 §4.2.3).
		return path
	}
	keep := n - n4
	// Take the first `keep` path units from AS_PATH, then all of AS4_PATH.
	var out aspath.Path
	for _, s := range path.Segments {
		if keep == 0 {
			break
		}
		switch s.Type {
		case aspath.SegSequence, aspath.SegConfedSequence:
			if len(s.ASNs) <= keep {
				out.Segments = append(out.Segments, s)
				keep -= len(s.ASNs)
			} else {
				out.Segments = append(out.Segments, aspath.Segment{Type: s.Type, ASNs: s.ASNs[:keep]})
				keep = 0
			}
		case aspath.SegSet, aspath.SegConfedSet:
			out.Segments = append(out.Segments, s)
			keep--
		}
	}
	out.Segments = append(out.Segments, path4.Segments...)
	return out
}

// Reachable returns every announced NLRI: top-level IPv4 plus MP_REACH.
func (u *Update) Reachable() []NLRI {
	out := append([]NLRI(nil), u.Announced...)
	if m, ok := u.Attr(AttrTypeMPReach).(MPReach); ok && m.SAFI == SAFIUnicast {
		out = append(out, m.NLRI...)
	}
	return out
}

// Unreachable returns every withdrawn NLRI: top-level IPv4 plus MP_UNREACH.
func (u *Update) Unreachable() []NLRI {
	out := append([]NLRI(nil), u.Withdrawn...)
	if m, ok := u.Attr(AttrTypeMPUnreach).(MPUnreach); ok && m.SAFI == SAFIUnicast {
		out = append(out, m.NLRI...)
	}
	return out
}

// Marshal encodes the UPDATE into a full BGP message (header included).
// If the path contains 4-octet ASNs and opt.AS4 is false, an AS4_PATH
// attribute is appended automatically unless one is already present.
func (u *Update) Marshal(opt Options) ([]byte, error) {
	return u.AppendMessage(nil, opt)
}

// AppendMessage appends the encoded UPDATE (header included) to dst and
// returns the extended slice. Encoding is single-pass: section lengths
// are back-patched, so a caller looping over messages can reuse one
// scratch buffer and encode with zero per-message allocations.
func (u *Update) AppendMessage(dst []byte, opt Options) ([]byte, error) {
	start := len(dst)
	var zero [HeaderLen]byte
	dst = append(dst, zero[:]...)

	var err error
	dst = append(dst, 0, 0) // withdrawn routes length, patched below
	wStart := len(dst)
	for _, n := range u.Withdrawn {
		if !n.Prefix.Addr().Is4() {
			return nil, fmt.Errorf("%w: IPv6 prefix in top-level withdrawn", ErrBadNLRI)
		}
		dst, err = appendNLRI(dst, n, opt.AddPath)
		if err != nil {
			return nil, err
		}
	}
	if len(dst)-wStart > 0xffff {
		return nil, fmt.Errorf("%w: withdrawn routes %d bytes", ErrBadLength, len(dst)-wStart)
	}
	binary.BigEndian.PutUint16(dst[wStart-2:], uint16(len(dst)-wStart))

	dst = append(dst, 0, 0) // total path attribute length, patched below
	aStart := len(dst)
	for _, a := range u.Attrs {
		dst, err = appendAttr(dst, a, opt)
		if err != nil {
			return nil, err
		}
	}
	if !opt.AS4 {
		// 2-octet session with 4-octet ASNs in the path: append AS4_PATH
		// automatically (last, as routers do) unless one is present.
		if ap, ok := u.Attr(AttrTypeASPath).(ASPath); ok && pathNeedsAS4(ap.Path) {
			if u.Attr(AttrTypeAS4Path) == nil {
				dst, err = appendAttr(dst, AS4Path{Path: ap.Path}, opt)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if len(dst)-aStart > 0xffff {
		return nil, fmt.Errorf("%w: path attributes %d bytes", ErrBadLength, len(dst)-aStart)
	}
	binary.BigEndian.PutUint16(dst[aStart-2:], uint16(len(dst)-aStart))

	for _, n := range u.Announced {
		if !n.Prefix.Addr().Is4() {
			return nil, fmt.Errorf("%w: IPv6 prefix in top-level NLRI", ErrBadNLRI)
		}
		dst, err = appendNLRI(dst, n, opt.AddPath)
		if err != nil {
			return nil, err
		}
	}

	total := len(dst) - start
	if total > MaxMsgLen {
		return nil, fmt.Errorf("%w: message size %d exceeds %d", ErrBadLength, total, MaxMsgLen)
	}
	putHeader(dst[start:], MsgUpdate, total)
	return dst, nil
}

// ParseUpdate decodes a full BGP message (header included) that must be
// an UPDATE.
func ParseUpdate(b []byte, opt Options) (*Update, error) {
	u := &Update{}
	if err := ParseUpdateInto(u, b, opt); err != nil {
		return nil, err
	}
	return u, nil
}

// ParseUpdateInto decodes a full BGP UPDATE message into u, reusing the
// capacity of u's slices — a caller looping over messages can decode
// with near-zero per-message allocations (combine with Options.Cache to
// also dedupe attribute payloads). On error u is left in an undefined
// state.
//
//atomlint:hotpath
func ParseUpdateInto(u *Update, b []byte, opt Options) error {
	h, err := ParseHeader(b)
	if err != nil {
		return err
	}
	if h.Type != MsgUpdate {
		return fmt.Errorf("%w: got type %d, want UPDATE", ErrBadType, h.Type)
	}
	if int(h.Len) > len(b) {
		return fmt.Errorf("%w: header claims %d bytes, have %d", ErrTruncated, h.Len, len(b))
	}
	return parseUpdateBody(u, b[HeaderLen:h.Len], opt)
}

// parseUpdateBody decodes the UPDATE payload (header stripped) into u.
// MRT BGP4MP records carry full messages; TABLE_DUMP_V2 RIB entries
// carry bare attribute blocks, which use parseAttrs directly.
func parseUpdateBody(u *Update, b []byte, opt Options) error {
	u.Withdrawn = u.Withdrawn[:0]
	u.Attrs = u.Attrs[:0]
	u.Announced = u.Announced[:0]
	if len(b) < 2 {
		return fmt.Errorf("%w: withdrawn length", ErrTruncated)
	}
	wlen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < wlen {
		return fmt.Errorf("%w: withdrawn routes", ErrTruncated)
	}
	var err error
	if wlen > 0 {
		u.Withdrawn, err = appendParsedNLRI(u.Withdrawn, b[:wlen], false, opt.AddPath)
		if err != nil {
			return err
		}
	}
	b = b[wlen:]
	if len(b) < 2 {
		return fmt.Errorf("%w: attribute length", ErrTruncated)
	}
	alen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < alen {
		return fmt.Errorf("%w: path attributes", ErrTruncated)
	}
	if alen > 0 {
		u.Attrs, err = parseAttrs(u.Attrs, b[:alen], opt)
		if err != nil {
			return err
		}
	}
	b = b[alen:]
	if len(b) > 0 {
		u.Announced, err = appendParsedNLRI(u.Announced, b, false, opt.AddPath)
		if err != nil {
			return err
		}
	}
	return nil
}

// ParseAttributes decodes a bare path-attribute block (as stored in MRT
// TABLE_DUMP_V2 RIB entries).
func ParseAttributes(b []byte, opt Options) ([]Attr, error) {
	return parseAttrs(nil, b, opt)
}

// AppendAttributes decodes a bare path-attribute block, appending to dst
// — a caller looping over RIB entries can reuse one scratch slice.
func AppendAttributes(dst []Attr, b []byte, opt Options) ([]Attr, error) {
	return parseAttrs(dst, b, opt)
}

// MarshalAttributes encodes a bare path-attribute block.
func MarshalAttributes(attrs []Attr, opt Options) ([]byte, error) {
	var out []byte
	var err error
	for _, a := range attrs {
		out, err = appendAttr(out, a, opt)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NewAnnouncement builds a minimal well-formed announcement UPDATE for
// the given prefixes sharing one path: ORIGIN, AS_PATH, and NEXT_HOP (or
// MP_REACH for IPv6). All prefixes must be one family.
func NewAnnouncement(path aspath.Seq, nextHop netip.Addr, prefixes []netip.Prefix) (*Update, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("%w: no prefixes", ErrBadNLRI)
	}
	v6 := prefixes[0].Addr().Is6() && !prefixes[0].Addr().Is4In6()
	nlri := make([]NLRI, len(prefixes))
	for i, p := range prefixes {
		if (p.Addr().Is6() && !p.Addr().Is4In6()) != v6 {
			return nil, fmt.Errorf("%w: mixed address families", ErrBadNLRI)
		}
		nlri[i] = NLRI{Prefix: p}
	}
	u := &Update{Attrs: []Attr{Origin(OriginIGP), ASPath{Path: aspath.FromSeq(path)}}}
	if v6 {
		nh := nextHop.As16()
		u.Attrs = append(u.Attrs, MPReach{AFI: AFIIPv6, SAFI: SAFIUnicast, NextHop: nh[:], NLRI: nlri})
	} else {
		u.Attrs = append(u.Attrs, NextHop(nextHop))
		u.Announced = nlri
	}
	return u, nil
}

// NewWithdrawal builds a withdrawal UPDATE for the given prefixes (one
// family).
func NewWithdrawal(prefixes []netip.Prefix) (*Update, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("%w: no prefixes", ErrBadNLRI)
	}
	v6 := prefixes[0].Addr().Is6() && !prefixes[0].Addr().Is4In6()
	nlri := make([]NLRI, len(prefixes))
	for i, p := range prefixes {
		if (p.Addr().Is6() && !p.Addr().Is4In6()) != v6 {
			return nil, fmt.Errorf("%w: mixed address families", ErrBadNLRI)
		}
		nlri[i] = NLRI{Prefix: p}
	}
	u := &Update{}
	if v6 {
		u.Attrs = []Attr{MPUnreach{AFI: AFIIPv6, SAFI: SAFIUnicast, NLRI: nlri}}
	} else {
		u.Withdrawn = nlri
	}
	return u, nil
}
