// Package dynamics implements the paper's §7.2 proposal: using policy
// atoms as a lens on BGP dynamics. Because prefixes inside an atom have
// a high likelihood of changing AS path together, an update burst that
// covers an entire atom reflects a policy change or network event,
// whereas churn touching one prefix of a multi-prefix atom is far more
// likely noise — a flap, a leak, or a transient misconfiguration.
//
// The classifier consumes a computed AtomSet and an update stream and
// produces per-event verdicts plus a per-atom event history, from which
// it derives "historically stable atom" priorities. The simulator's
// ground-truth event labels make the classifier's precision directly
// testable (see dynamics_test.go).
package dynamics

import (
	"net/netip"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Kind classifies one observed routing event.
type Kind uint8

// Event kinds.
const (
	// KindAtomEvent: the update covered the atom (or nearly all of it) —
	// a policy change or network event affecting the whole atom.
	KindAtomEvent Kind = iota + 1
	// KindPartialEvent: a strict subset of a multi-prefix atom moved —
	// possible atom split in progress, worth watching.
	KindPartialEvent
	// KindNoise: isolated single-prefix churn inside a multi-prefix
	// atom, most likely a flap or transient leak.
	KindNoise
	// KindSingleton: activity on a single-prefix atom — indistinguishable
	// from policy by structure alone; classified by repetition.
	KindSingleton
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAtomEvent:
		return "atom-event"
	case KindPartialEvent:
		return "partial"
	case KindNoise:
		return "noise"
	case KindSingleton:
		return "singleton"
	default:
		return "unknown"
	}
}

// Event is one classified (atom, record) incidence.
type Event struct {
	AtomID    int
	Timestamp uint32
	Kind      Kind
	// Covered / Size: how much of the atom the record carried.
	Covered, Size int
	Withdraw      bool
	Collector     string
	PeerASN       uint32
}

// Options tunes the classifier.
type Options struct {
	// FullCoverage is the atom-coverage fraction at or above which a
	// record counts as an atom event (1.0 = exact; the default 0.9
	// tolerates one missing prefix in large atoms).
	FullCoverage float64
	// NoiseRepeat: a prefix flapping at this many distinct instants
	// within the window is noise even when its atom is a singleton.
	// Repetition counts distinct timestamps, not records: one event is
	// reported by every vantage point at once and must count once.
	NoiseRepeat int
}

// DefaultOptions returns the calibrated defaults.
func DefaultOptions() Options {
	return Options{FullCoverage: 0.9, NoiseRepeat: 3}
}

// Report summarizes a classified stream.
type Report struct {
	Events []Event
	// PerAtom aggregates by atom ID.
	PerAtom map[int]*AtomHistory
	// Counts by kind.
	AtomEvents, Partials, Noise, Singletons int
}

// AtomHistory is one atom's event record over the window.
type AtomHistory struct {
	AtomID     int
	Size       int
	AtomEvents int
	Partials   int
	Noise      int
}

// StabilityScore orders atoms by how trustworthy their signal is: atoms
// that only ever move in full are high-signal; atoms dominated by noise
// are low-signal. Range (0,1].
func (h *AtomHistory) StabilityScore() float64 {
	total := h.AtomEvents + h.Partials + h.Noise
	if total == 0 {
		return 1
	}
	return float64(h.AtomEvents+1) / float64(total+1)
}

// Classify runs the lens over update records.
func Classify(as *core.AtomSet, records []metrics.UpdateRecord, opts Options) *Report {
	if opts.FullCoverage <= 0 {
		opts.FullCoverage = 0.9
	}
	if opts.NoiseRepeat <= 0 {
		opts.NoiseRepeat = 3
	}
	atomOf := make(map[netip.Prefix]int, len(as.Snap.Prefixes))
	for p, pfx := range as.Snap.Prefixes {
		atomOf[pfx] = as.ByPrefix[p]
	}

	// First pass: per-prefix distinct event instants (flap detection).
	// A single routing event reaches the collector through every vantage
	// point at the same moment; counting records would misread fan-out
	// as flapping.
	prefixTimes := map[netip.Prefix]map[uint32]struct{}{}
	for _, r := range records {
		for _, pfx := range r.Prefixes {
			if _, ok := atomOf[pfx]; !ok {
				continue
			}
			ts := prefixTimes[pfx]
			if ts == nil {
				ts = map[uint32]struct{}{}
				prefixTimes[pfx] = ts
			}
			ts[r.Timestamp] = struct{}{}
		}
	}
	prefixHits := make(map[netip.Prefix]int, len(prefixTimes))
	for pfx, ts := range prefixTimes {
		prefixHits[pfx] = len(ts)
	}

	rep := &Report{PerAtom: map[int]*AtomHistory{}}
	hits := map[int]int{}
	repeats := map[int]bool{}
	for _, r := range records {
		clear(hits)
		clear(repeats)
		for _, pfx := range r.Prefixes {
			aid, ok := atomOf[pfx]
			if !ok {
				continue
			}
			hits[aid]++
			if prefixHits[pfx] >= opts.NoiseRepeat {
				repeats[aid] = true
			}
		}
		for aid, n := range hits {
			size := as.Atoms[aid].Size()
			ev := Event{
				AtomID: aid, Timestamp: r.Timestamp,
				Covered: n, Size: size,
				Collector: r.Collector, PeerASN: r.PeerASN,
			}
			switch {
			case size == 1:
				if repeats[aid] {
					ev.Kind = KindNoise
				} else {
					ev.Kind = KindSingleton
				}
			case float64(n) >= opts.FullCoverage*float64(size):
				ev.Kind = KindAtomEvent
			case n == 1:
				ev.Kind = KindNoise
			default:
				ev.Kind = KindPartialEvent
			}
			rep.add(ev)
		}
	}
	return rep
}

func (rep *Report) add(ev Event) {
	rep.Events = append(rep.Events, ev)
	h := rep.PerAtom[ev.AtomID]
	if h == nil {
		h = &AtomHistory{AtomID: ev.AtomID, Size: ev.Size}
		rep.PerAtom[ev.AtomID] = h
	}
	switch ev.Kind {
	case KindAtomEvent:
		rep.AtomEvents++
		h.AtomEvents++
	case KindPartialEvent:
		rep.Partials++
		h.Partials++
	case KindNoise:
		rep.Noise++
		h.Noise++
	case KindSingleton:
		rep.Singletons++
	}
}

// Prioritized returns atoms that experienced atom-level events, ordered
// by stability score (most trustworthy signal first) — the paper's
// "prioritize events that affect historically stable atoms".
func (rep *Report) Prioritized() []*AtomHistory {
	var out []*AtomHistory
	for _, h := range rep.PerAtom {
		if h.AtomEvents > 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].StabilityScore(), out[j].StabilityScore()
		if si != sj {
			return si > sj
		}
		return out[i].AtomID < out[j].AtomID
	})
	return out
}

// NoiseShare returns the fraction of incidences classified as noise —
// the volume the filter would suppress.
func (rep *Report) NoiseShare() float64 {
	total := len(rep.Events)
	if total == 0 {
		return 0
	}
	return float64(rep.Noise) / float64(total)
}
