package dynamics

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func pfx(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
}

// handSnapshot builds an atom set with one 3-prefix atom {0,1,2}, one
// 2-prefix atom {3,4}, and a singleton {5}.
func handSnapshot(t *testing.T) *core.AtomSet {
	t.Helper()
	vps := []core.VP{{Collector: "c", ASN: 1}}
	prefixes := []netip.Prefix{pfx(0), pfx(1), pfx(2), pfx(3), pfx(4), pfx(5)}
	s := core.NewSnapshot(0, vps, prefixes)
	pathA := aspath.Seq{1, 100}
	pathB := aspath.Seq{1, 200}
	pathC := aspath.Seq{1, 300}
	for i := 0; i < 3; i++ {
		s.SetRoute(i, 0, pathA)
	}
	s.SetRoute(3, 0, pathB)
	s.SetRoute(4, 0, pathB)
	s.SetRoute(5, 0, pathC)
	return core.ComputeAtoms(s)
}

func rec(prefixes ...netip.Prefix) metrics.UpdateRecord {
	return metrics.UpdateRecord{Prefixes: prefixes}
}

func TestClassifyKinds(t *testing.T) {
	as := handSnapshot(t)
	records := []metrics.UpdateRecord{
		rec(pfx(0), pfx(1), pfx(2)), // full atom → atom event
		rec(pfx(3), pfx(4)),         // full atom → atom event
		rec(pfx(0)),                 // one of three → noise
		rec(pfx(3), pfx(0), pfx(1)), // atom {3,4} partial is 1 of 2 → noise; atom {0,1,2} covered 2/3 → partial
		rec(pfx(5)),                 // singleton, appears once → singleton
	}
	rep := Classify(as, records, DefaultOptions())
	if rep.AtomEvents != 2 {
		t.Errorf("atom events = %d, want 2", rep.AtomEvents)
	}
	if rep.Partials != 1 {
		t.Errorf("partials = %d, want 1", rep.Partials)
	}
	if rep.Noise != 2 {
		t.Errorf("noise = %d, want 2", rep.Noise)
	}
	if rep.Singletons != 1 {
		t.Errorf("singletons = %d, want 1", rep.Singletons)
	}
}

func TestClassifyFlappingSingleton(t *testing.T) {
	as := handSnapshot(t)
	// The singleton prefix flaps at 4 distinct instants: repetition
	// marks it noise.
	var records []metrics.UpdateRecord
	for i := 0; i < 4; i++ {
		r := rec(pfx(5))
		r.Timestamp = uint32(100 + i*60)
		records = append(records, r)
	}
	rep := Classify(as, records, DefaultOptions())
	if rep.Noise != 4 || rep.Singletons != 0 {
		t.Errorf("flapping singleton: noise=%d singletons=%d", rep.Noise, rep.Singletons)
	}
	if rep.NoiseShare() != 1.0 {
		t.Errorf("noise share = %v", rep.NoiseShare())
	}
}

func TestPrioritized(t *testing.T) {
	as := handSnapshot(t)
	records := []metrics.UpdateRecord{
		// Atom {0,1,2}: one clean atom event.
		rec(pfx(0), pfx(1), pfx(2)),
		// Atom {3,4}: one atom event drowned in noise.
		rec(pfx(3), pfx(4)),
		rec(pfx(3)), rec(pfx(3)), rec(pfx(4)), rec(pfx(3)),
	}
	rep := Classify(as, records, DefaultOptions())
	pri := rep.Prioritized()
	if len(pri) != 2 {
		t.Fatalf("prioritized = %d", len(pri))
	}
	// The clean atom ranks first.
	if pri[0].Noise != 0 || pri[1].Noise == 0 {
		t.Errorf("priority order wrong: %+v then %+v", pri[0], pri[1])
	}
	if pri[0].StabilityScore() <= pri[1].StabilityScore() {
		t.Errorf("scores not ordered: %v vs %v", pri[0].StabilityScore(), pri[1].StabilityScore())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindAtomEvent: "atom-event", KindPartialEvent: "partial",
		KindNoise: "noise", KindSingleton: "singleton", Kind(0): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

// TestClassifyAgainstSimulatorGroundTruth runs the lens over a real
// synthesized stream: ground-truth flap noise must be classified as
// noise at high precision, and unit-event batches as atom events.
func TestClassifyAgainstSimulatorGroundTruth(t *testing.T) {
	cfg := longitudinal.DefaultConfig(5)
	cfg.Scale = 0.008
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2016, 1))
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := r.Updates(longitudinal.OffsetBase, longitudinal.OffsetBase+longitudinal.UpdateHours)
	if err != nil {
		t.Fatal(err)
	}
	rep := Classify(atoms, records, DefaultOptions())
	if len(rep.Events) == 0 {
		t.Skip("no events at this scale")
	}
	// The stream contains both signal and noise by construction.
	if rep.AtomEvents == 0 {
		t.Error("no atom events recognized in a stream with unit events")
	}
	if rep.Noise == 0 {
		t.Error("no noise recognized in a stream with flaps")
	}
	// Prioritized atoms exist and are score-ordered.
	pri := rep.Prioritized()
	for i := 1; i < len(pri); i++ {
		if pri[i-1].StabilityScore() < pri[i].StabilityScore() {
			t.Fatalf("priorities out of order at %d", i)
		}
	}
}
