package vptrust

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func vpAt(coll string, asn uint32) core.VP { return core.VP{Collector: coll, ASN: asn} }

// Exclusions must union the split-based unreliable set with whole
// quarantined collectors — a clean-scoring VP on a corrupt collector is
// still excluded.
func TestExclusionsMergesQuarantine(t *testing.T) {
	var day []metrics.SplitEvent
	// A flapper on c1 condemned by its own splits.
	for i := 0; i < 20; i++ {
		day = append(day, ev(vpAt("c1", 99)))
	}
	// Quiet VPs on c1 and c2.
	for asn := uint32(1); asn <= 4; asn++ {
		day = append(day, ev(vpAt("c1", asn)))
		day = append(day, ev(vpAt("c2", asn)))
	}
	rep := Analyze([][]metrics.SplitEvent{day})

	// No quarantine: only the flapper is out.
	ex := rep.Exclusions(3, nil)
	if len(ex) != 1 || !ex[vpAt("c1", 99)] {
		t.Fatalf("Exclusions(3, nil) = %v, want only the flapper", ex)
	}

	// Quarantining c2 adds every c2-scored VP, flapper stays out too.
	ex = rep.Exclusions(3, []string{"c2"})
	if !ex[vpAt("c1", 99)] {
		t.Error("flapper dropped from the merged exclusion set")
	}
	for asn := uint32(1); asn <= 4; asn++ {
		if !ex[vpAt("c2", asn)] {
			t.Errorf("quarantined-collector VP c2/%d not excluded", asn)
		}
		if ex[vpAt("c1", asn)] {
			t.Errorf("healthy VP c1/%d excluded", asn)
		}
	}
	if len(ex) != 5 {
		t.Errorf("exclusion set size = %d, want 5", len(ex))
	}

	// Quarantining an unknown collector adds nothing.
	ex = rep.Exclusions(3, []string{"nowhere"})
	if len(ex) != 1 {
		t.Errorf("unknown collector grew the set: %v", ex)
	}
}

// Unreliable's floor: a VP needs strictly more than max(3, 3×median)
// solo splits. Three solos must never condemn a VP even when the
// median is zero.
func TestUnreliableFloor(t *testing.T) {
	var day []metrics.SplitEvent
	for i := 0; i < 3; i++ {
		day = append(day, ev(vp(7)))
	}
	// A silent majority of shared-only observers keeps the median at 0.
	for i := 0; i < 10; i++ {
		day = append(day, ev(vp(1), vp(2)))
	}
	rep := Analyze([][]metrics.SplitEvent{day})
	if bad := rep.Unreliable(3); len(bad) != 0 {
		t.Errorf("3 solo splits condemned a VP: %+v", bad)
	}
	// One more solo event crosses the floor.
	day = append(day, ev(vp(7)))
	rep = Analyze([][]metrics.SplitEvent{day})
	if bad := rep.Unreliable(3); len(bad) != 1 || bad[0].VP != vp(7) {
		t.Errorf("4 solo splits with zero median: unreliable = %+v", bad)
	}
}

// Exclusions on an empty report is empty, with or without quarantine
// (no scored VPs means no collector membership to project).
func TestExclusionsEmptyReport(t *testing.T) {
	rep := Analyze(nil)
	if ex := rep.Exclusions(3, nil); len(ex) != 0 {
		t.Errorf("empty report exclusions = %v", ex)
	}
	if ex := rep.Exclusions(3, []string{"c1"}); len(ex) != 0 {
		t.Errorf("empty report with quarantine = %v", ex)
	}
}
