package vptrust

import (
	"testing"

	"repro/internal/core"
	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func vp(asn uint32) core.VP { return core.VP{Collector: "c", ASN: asn} }

func ev(observers ...core.VP) metrics.SplitEvent {
	return metrics.SplitEvent{Observers: observers}
}

func TestAnalyzeBasics(t *testing.T) {
	days := [][]metrics.SplitEvent{
		{ev(vp(1)), ev(vp(1)), ev(vp(2)), ev(vp(1), vp(2))},
		{ev(vp(1)), ev(vp(3), vp(2))},
	}
	rep := Analyze(days)
	if rep.Days != 2 || rep.TotalEvents != 6 || rep.SoloEvents != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Scores[0].VP != vp(1) || rep.Scores[0].SoloSplits != 3 {
		t.Errorf("top = %+v", rep.Scores[0])
	}
	if rep.Scores[0].ActiveDays != 2 {
		t.Errorf("active days = %d", rep.Scores[0].ActiveDays)
	}
	// vp(2): 1 solo + 2 shared.
	var s2 Score
	for _, s := range rep.Scores {
		if s.VP == vp(2) {
			s2 = s
		}
	}
	if s2.SoloSplits != 1 || s2.SharedSplits != 2 {
		t.Errorf("vp2 = %+v", s2)
	}
	if got := s2.SoloShare(); got < 0.33 || got > 0.34 {
		t.Errorf("solo share = %v", got)
	}
	if (Score{}).SoloShare() != 0 {
		t.Error("empty solo share")
	}
}

func TestUnreliableThreshold(t *testing.T) {
	var day []metrics.SplitEvent
	// One flapper with 20 solo events, nine quiet VPs with one each.
	for i := 0; i < 20; i++ {
		day = append(day, ev(vp(99)))
	}
	for asn := uint32(1); asn <= 9; asn++ {
		day = append(day, ev(vp(asn)))
	}
	rep := Analyze([][]metrics.SplitEvent{day})
	bad := rep.Unreliable(3)
	if len(bad) != 1 || bad[0].VP != vp(99) {
		t.Fatalf("unreliable = %+v", bad)
	}
	// No events → no unreliable VPs.
	if got := Analyze(nil).Unreliable(3); got != nil {
		t.Errorf("empty analyze unreliable = %+v", got)
	}
}

// TestDetectsPlantedFlappyVP runs the whole pipeline: the churn model
// plants heavy-tailed per-VP event rates; the top-scored VP must be one
// of the few VPs with the highest ground-truth rate.
func TestDetectsPlantedFlappyVP(t *testing.T) {
	cfg := longitudinal.DefaultConfig(5)
	cfg.Scale = 0.005
	const days = 10
	study, err := longitudinal.RunSplits(cfg, topology.EraOf(2018, 1), days)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive per-day events for Analyze via RunSplits' breakdown...
	// RunSplits already aggregates; drive Analyze directly instead.
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2018, 1))
	snaps := make([]*core.AtomSet, days+2)
	for d := range snaps {
		s, _, err := r.SnapshotAt(longitudinal.OffsetBase + float64(d))
		if err != nil {
			t.Fatal(err)
		}
		snaps[d] = s
	}
	var perDay [][]metrics.SplitEvent
	for d := 0; d+2 < len(snaps); d++ {
		perDay = append(perDay, metrics.DetectSplits(snaps[d], snaps[d+1], snaps[d+2]))
	}
	rep := Analyze(perDay)
	if rep.TotalEvents == 0 {
		t.Skip("no split events at this scale")
	}
	if len(rep.Scores) == 0 || rep.Scores[0].SoloSplits == 0 {
		t.Fatal("no solo observers found")
	}
	// Ground truth: rank VPs by the churn model's planted event count.
	top := rep.Scores[0].VP
	topTruth := r.Model.VPVersion(top.ASN, longitudinal.OffsetBase+days)
	better := 0
	for _, vpASN := range r.Infra.FullFeedASNs() {
		if r.Model.VPVersion(vpASN, longitudinal.OffsetBase+days) > topTruth {
			better++
		}
	}
	if better > 3 {
		t.Errorf("top-scored VP %v has ground-truth rank %d (> 3): not the planted flapper",
			top, better+1)
	}
	_ = study
}
