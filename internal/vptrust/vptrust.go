// Package vptrust implements the paper's §7.1 proposal: detecting
// unreliable vantage points from atom-split observations. A VP that
// repeatedly appears as the *sole* observer of atom splits is breaking
// atoms through its own local policy churn; counting it as a witness of
// network-wide events would mistake local artifacts for routing changes.
//
// Scores aggregate split-observer data over a window of daily snapshots
// (metrics.DetectSplits) into a per-VP reliability ranking, with a
// recommended exclusion set for global routing-policy studies.
package vptrust

import (
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Score is one VP's split-observation record.
type Score struct {
	VP core.VP
	// SoloSplits counts events this VP alone observed.
	SoloSplits int
	// SharedSplits counts events it co-observed with others.
	SharedSplits int
	// Days with at least one solo observation.
	ActiveDays int
}

// SoloShare is the fraction of the VP's observations that were solo —
// the localness of its signal.
func (s Score) SoloShare() float64 {
	t := s.SoloSplits + s.SharedSplits
	if t == 0 {
		return 0
	}
	return float64(s.SoloSplits) / float64(t)
}

// Report ranks VPs by solo-split volume.
type Report struct {
	Scores []Score
	// TotalEvents and SoloEvents summarize the window.
	TotalEvents, SoloEvents int
	Days                    int
}

// Analyze aggregates per-day split events into VP scores. Each events
// slice is one day's metrics.DetectSplits output.
func Analyze(days [][]metrics.SplitEvent) *Report {
	rep := &Report{Days: len(days)}
	acc := map[core.VP]*Score{}
	soloToday := map[core.VP]bool{}
	get := func(vp core.VP) *Score {
		s := acc[vp]
		if s == nil {
			s = &Score{VP: vp}
			acc[vp] = s
		}
		return s
	}
	for _, events := range days {
		clear(soloToday)
		for _, e := range events {
			rep.TotalEvents++
			if len(e.Observers) == 1 {
				rep.SoloEvents++
				s := get(e.Observers[0])
				s.SoloSplits++
				soloToday[e.Observers[0]] = true
				continue
			}
			for _, vp := range e.Observers {
				get(vp).SharedSplits++
			}
		}
		for vp := range soloToday {
			acc[vp].ActiveDays++
		}
	}
	for _, s := range acc {
		rep.Scores = append(rep.Scores, *s)
	}
	sort.Slice(rep.Scores, func(i, j int) bool {
		if rep.Scores[i].SoloSplits != rep.Scores[j].SoloSplits {
			return rep.Scores[i].SoloSplits > rep.Scores[j].SoloSplits
		}
		a, b := rep.Scores[i].VP, rep.Scores[j].VP
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.ASN < b.ASN
	})
	return rep
}

// Unreliable returns the VPs whose solo-split volume exceeds `factor`
// times the median — the exclusion set recommended for global
// routing-policy studies (use-case dependent: coverage-maximizing
// applications should keep every VP, §4.4.1).
func (rep *Report) Unreliable(factor float64) []Score {
	if len(rep.Scores) == 0 {
		return nil
	}
	solos := make([]int, 0, len(rep.Scores))
	for _, s := range rep.Scores {
		solos = append(solos, s.SoloSplits)
	}
	sort.Ints(solos)
	median := float64(solos[len(solos)/2])
	// With a silent majority the median can be zero; require a floor.
	threshold := median * factor
	if threshold < 3 {
		threshold = 3
	}
	var out []Score
	for _, s := range rep.Scores {
		if float64(s.SoloSplits) > threshold {
			out = append(out, s)
		}
	}
	return out
}

// Exclusions merges the split-based unreliable set with collector-level
// quarantine verdicts (bgpstream degradation budgets, surfaced through
// the sanitize report) into one VP exclusion set: a VP is excluded when
// its own split behavior condemns it, or when its entire collector was
// quarantined — a feed on a corrupt collector is untrustworthy even if
// its split record looks clean.
func (rep *Report) Exclusions(factor float64, quarantinedCollectors []string) map[core.VP]bool {
	out := map[core.VP]bool{}
	for _, s := range rep.Unreliable(factor) {
		out[s.VP] = true
	}
	if len(quarantinedCollectors) == 0 {
		return out
	}
	q := make(map[string]bool, len(quarantinedCollectors))
	for _, c := range quarantinedCollectors {
		q[c] = true
	}
	for _, s := range rep.Scores {
		if q[s.VP.Collector] {
			out[s.VP] = true
		}
	}
	return out
}
