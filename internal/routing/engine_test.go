package routing

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/topology"
)

// testTopology builds a small fixed Internet:
//
//	   T1a (1) ---peer--- T1b (2)
//	   /   \                |
//	 T2a(11) T2b(12)      T2c(13)
//	  |  \   /  |           |
//	  |   \ /   |           |
//	 VP1   O    VP2        VP3
//	(21)  (100) (22)       (23)
//
// Origin O (100) is a customer of T2a and T2b. VP1..3 are stubs used as
// vantage points. T1a/T1b form the clique; T2a,T2b under T1a; T2c under
// T1b.
func testTopology(groups []*topology.PolicyGroup) *topology.Graph {
	ases := []*topology.AS{
		{ASN: 1, Tier: topology.TierClique, Peers: []uint32{2}},
		{ASN: 2, Tier: topology.TierClique, Peers: []uint32{1}},
		{ASN: 11, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 12, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 13, Tier: topology.TierTransit, Providers: []uint32{2}},
		{ASN: 21, Tier: topology.TierStub, Providers: []uint32{11}},
		{ASN: 22, Tier: topology.TierStub, Providers: []uint32{12}},
		{ASN: 23, Tier: topology.TierStub, Providers: []uint32{13}},
		{ASN: 100, Tier: topology.TierStub, Providers: []uint32{11, 12}},
	}
	for _, a := range ases {
		if len(groups) > 0 && groups[0].Origin == a.ASN {
			a.Groups = groups
		}
	}
	return topology.NewGraph(topology.EraOf(2014, 1), 1, ases, groups)
}

func group(id int, origin uint32, announce map[uint32]topology.AnnouncePolicy, prefixes ...string) *topology.PolicyGroup {
	g := &topology.PolicyGroup{ID: id, Origin: origin, Announce: announce}
	for _, p := range prefixes {
		g.Prefixes = append(g.Prefixes, netip.MustParsePrefix(p))
	}
	return g
}

func pathOf(t *testing.T, e *Engine, u *topology.PolicyGroup, vp uint32) aspath.Seq {
	t.Helper()
	routes := e.PathsAt(u, []uint32{vp})
	return routes[0].Path
}

func TestEngineBasicPaths(t *testing.T) {
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	e := NewEngine(g, nil)

	// VP1 (21) sits under T2a (11), which hears O directly as customer.
	if got := pathOf(t, e, u, 21); !got.Equal(aspath.Seq{21, 11, 100}) {
		t.Errorf("VP1 path = %v", got)
	}
	// VP2 (22) under T2b (12), also a provider of O.
	if got := pathOf(t, e, u, 22); !got.Equal(aspath.Seq{22, 12, 100}) {
		t.Errorf("VP2 path = %v", got)
	}
	// VP3 (23) under T2c (13): route must climb T1b and cross the peering:
	// 23 13 2 1 11 100 or via 12 (tie broken by lower ASN → 11).
	if got := pathOf(t, e, u, 23); !got.Equal(aspath.Seq{23, 13, 2, 1, 11, 100}) {
		t.Errorf("VP3 path = %v", got)
	}
	// The origin itself.
	if got := pathOf(t, e, u, 100); !got.Equal(aspath.Seq{100}) {
		t.Errorf("origin path = %v", got)
	}
}

func TestEngineSelectiveAnnounce(t *testing.T) {
	// O announces only to T2b (12): VP1's path must go up and around.
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	e := NewEngine(g, nil)
	if got := pathOf(t, e, u, 22); !got.Equal(aspath.Seq{22, 12, 100}) {
		t.Errorf("VP2 = %v", got)
	}
	// VP1 (21) under T2a (11): 11 did not hear from O directly; it gets
	// the route from its provider T1a (1), which heard from 12.
	if got := pathOf(t, e, u, 21); !got.Equal(aspath.Seq{21, 11, 1, 12, 100}) {
		t.Errorf("VP1 = %v", got)
	}
}

func TestEngineOriginPrepending(t *testing.T) {
	// O prepends 2 extra to T2a: path via 12 becomes shorter for T1a.
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {Prepend: 2}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	e := NewEngine(g, nil)
	// VP1 still gets the customer route from 11 (customer class wins at
	// 11 regardless of length) but with the prepended origin.
	if got := pathOf(t, e, u, 21); !got.Equal(aspath.Seq{21, 11, 100, 100, 100}) {
		t.Errorf("VP1 = %v", got)
	}
	// T1a picks the shorter customer route via 12.
	if got := pathOf(t, e, u, 23); !got.Equal(aspath.Seq{23, 13, 2, 1, 12, 100}) {
		t.Errorf("VP3 = %v", got)
	}
}

func TestEngineCustomerPreferredOverPeer(t *testing.T) {
	// Give T1b a direct customer route to a second origin under it, then
	// check T1b prefers its (longer) customer route over the peer route.
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	ases := []*topology.AS{
		{ASN: 1, Tier: topology.TierClique, Peers: []uint32{2}},
		{ASN: 2, Tier: topology.TierClique, Peers: []uint32{1}},
		{ASN: 11, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 12, Tier: topology.TierTransit, Providers: []uint32{1}},
		// 13 is customer of BOTH clique members and of 11 — it will hear
		// 100 from its provider 11 (provider class) and from 2 (provider
		// class)... so instead make 13 a *provider* chain: 100 -> 13 -> 2.
		{ASN: 13, Tier: topology.TierTransit, Providers: []uint32{2}},
		{ASN: 100, Tier: topology.TierStub, Providers: []uint32{11, 12, 13}},
		{ASN: 23, Tier: topology.TierStub, Providers: []uint32{13}},
	}
	u2 := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}, 13: {}}, "10.0.0.0/24")
	ases[5].Groups = []*topology.PolicyGroup{u2}
	g := topology.NewGraph(topology.EraOf(2014, 1), 1, ases, []*topology.PolicyGroup{u2})
	e := NewEngine(g, nil)
	_ = u
	// At T1b (2): customer route via 13 (cost 2) vs peer route via 1
	// (cost 2). Customer class must win.
	e.ComputeUnit(u2)
	r, ok := e.RouteAt(2)
	if !ok {
		t.Fatal("no route at 2")
	}
	if !r.Path.Equal(aspath.Seq{2, 13, 100}) {
		t.Errorf("T1b path = %v (class %v)", r.Path, r.Class)
	}
	if r.Class != ClassCustomer {
		t.Errorf("T1b class = %v", r.Class)
	}
}

func TestEngineWithdrawnUnit(t *testing.T) {
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	e := NewEngine(g, &Overlay{WithdrawnUnits: map[int]bool{0: true}})
	routes := e.PathsAt(u, []uint32{21, 22, 23})
	for i, r := range routes {
		if r.Path != nil {
			t.Errorf("route %d = %v, want withdrawn", i, r.Path)
		}
	}
}

func TestEngineAnnounceOverride(t *testing.T) {
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	ov := &Overlay{AnnounceOverride: map[int]map[uint32]topology.AnnouncePolicy{
		0: {12: {}}, // now only to 12
	}}
	e := NewEngine(g, ov)
	if got := pathOf(t, e, u, 21); !got.Equal(aspath.Seq{21, 11, 1, 12, 100}) {
		t.Errorf("VP1 = %v", got)
	}
}

func TestEngineExportFlip(t *testing.T) {
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	// Flip 11's export to its provider 1: T1a must now route via 12.
	ov := &Overlay{ExportFlip: map[ExportKey]bool{
		{ASN: 11, UnitID: 0, Neighbor: 1}: true,
	}}
	e := NewEngine(g, ov)
	// VP1 under 11 unaffected (customer route at 11).
	if got := pathOf(t, e, u, 21); !got.Equal(aspath.Seq{21, 11, 100}) {
		t.Errorf("VP1 = %v", got)
	}
	// VP3's path now goes via 12 (11 withheld its route from 1).
	if got := pathOf(t, e, u, 23); !got.Equal(aspath.Seq{23, 13, 2, 1, 12, 100}) {
		t.Errorf("VP3 = %v", got)
	}
}

func TestEngineVPSaltLocality(t *testing.T) {
	// With default tiebreak, T1a picks 11 over 12; salting node 1's
	// choice may flip it, but must not affect VP1/VP2 customer routes.
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	g := testTopology([]*topology.PolicyGroup{u})
	base := NewEngine(g, nil)
	baseVP3 := pathOf(t, base, u, 23).Clone()

	// Find a salt that flips node 1's equal-cost choice.
	flipped := false
	for salt := uint64(1); salt < 64 && !flipped; salt++ {
		e := NewEngine(g, &Overlay{VPSalt: map[uint32]uint64{1: salt}})
		got := pathOf(t, e, u, 23)
		if !got.Equal(baseVP3) {
			flipped = true
			if !got.Equal(aspath.Seq{23, 13, 2, 1, 12, 100}) {
				t.Errorf("flipped VP3 = %v", got)
			}
		}
		// Customer routes unaffected regardless of salt.
		if p := pathOf(t, e, u, 21); !p.Equal(aspath.Seq{21, 11, 100}) {
			t.Errorf("salt leaked into VP1: %v", p)
		}
	}
	if !flipped {
		t.Error("no salt flipped the equal-cost choice (tie-break not salted?)")
	}
}

func TestEngineDeterminism(t *testing.T) {
	p := topology.DefaultParams(11)
	p.Scale = 0.01
	g := topology.Generate(p, topology.EraOf(2012, 1))
	vps := []uint32{10, 100, 101, 102, 10000, 10001}
	e1 := NewEngine(g, nil)
	e2 := NewEngine(g, nil)
	for _, u := range g.Groups {
		r1 := e1.PathsAt(u, vps)
		r2 := e2.PathsAt(u, vps)
		for i := range r1 {
			if !r1[i].Path.Equal(r2[i].Path) {
				t.Fatalf("unit %d vp %d: %v != %v", u.ID, vps[i], r1[i].Path, r2[i].Path)
			}
		}
	}
}

// TestEngineValleyFree verifies that every computed path is valley-free
// (up* [peer-step] down*) and loop-free on a generated topology.
func TestEngineValleyFree(t *testing.T) {
	p := topology.DefaultParams(13)
	p.Scale = 0.01
	g := topology.Generate(p, topology.EraOf(2020, 1))
	// Build relationship lookup.
	rel := func(a, b uint32) int { // 1 = b is provider of a, -1 = b customer of a, 0 = peer, -9 unknown
		as := g.AS(a)
		for _, x := range as.Providers {
			if x == b {
				return 1
			}
		}
		for _, x := range as.Customers {
			if x == b {
				return -1
			}
		}
		for _, x := range as.Peers {
			if x == b {
				return 0
			}
		}
		return -9
	}
	vps := []uint32{10, 11, 100, 101, 110, 10005, 10017}
	e := NewEngine(g, nil)
	checked := 0
	for _, u := range g.Groups {
		if u.ID%7 != 0 {
			continue // sample for speed
		}
		for _, r := range e.PathsAt(u, vps) {
			if r.Path == nil {
				continue
			}
			seq := r.Path.StripPrepending()
			if seq.HasLoop() {
				t.Fatalf("loop in path %v", r.Path)
			}
			// Walk from the VP: each adjacent pair must be linked, and the
			// direction profile must be valley-free when read from origin:
			// ascending (customer→provider) steps, at most one peer step,
			// then descending. Reading from the VP side it is the mirror.
			// phase 0: descending from VP (VP side), phase 1: peer, phase 2: ascending (origin side).
			phase := 0
			for i := 0; i+1 < len(seq); i++ {
				r := rel(seq[i], seq[i+1])
				if r == -9 {
					t.Fatalf("non-adjacent hop %d-%d in %v", seq[i], seq[i+1], seq)
				}
				switch r {
				case -1: // next is customer of current: descending toward origin
					phase = 2
				case 0: // peer step
					if phase >= 1 {
						t.Fatalf("second lateral/up move after descent in %v", seq)
					}
					phase = 1
				case 1: // next is provider of current: ascending (still on VP side)
					if phase != 0 {
						t.Fatalf("up move after peer/descent (valley) in %v", seq)
					}
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestChurnModelVersions(t *testing.T) {
	m := ChurnModel{Seed: 5, UnitEventRate: 0.5, VPEventRate: 0.2, TransitFlipShare: 0.4}
	grp := func(sig int) *topology.PolicyGroup { return &topology.PolicyGroup{ID: sig, SigID: sig} }
	// Versions are monotone in t and deterministic.
	for id := 0; id < 50; id++ {
		prev := 0
		for _, tm := range []float64{0, 0.5, 1, 5, 20, 100} {
			v := m.UnitVersion(grp(id), tm)
			if v < prev {
				t.Fatalf("unit %d version decreased: %d -> %d", id, prev, v)
			}
			if v != m.UnitVersion(grp(id), tm) {
				t.Fatal("non-deterministic version")
			}
			prev = v
		}
	}
	if m.UnitVersion(grp(3), 0) != 0 {
		t.Error("version at t=0 should be 0")
	}
	// Two groups sharing a signature share a clock.
	a := &topology.PolicyGroup{ID: 1, SigID: 9}
	b := &topology.PolicyGroup{ID: 2, SigID: 9}
	if m.UnitVersion(a, 50) != m.UnitVersion(b, 50) {
		t.Error("signature peers have different versions")
	}
	// Mean event rate sanity over many units at t=10 days: ~0.5/day.
	total := 0
	const n = 2000
	for id := 0; id < n; id++ {
		total += m.UnitVersion(grp(id), 10)
	}
	mean := float64(total) / n / 10
	if mean < 0.3 || mean > 0.7 {
		t.Errorf("mean unit rate = %v, want ≈0.5", mean)
	}
}

func TestChurnOverlayEffects(t *testing.T) {
	p := topology.DefaultParams(17)
	p.Scale = 0.01
	g := topology.Generate(p, topology.EraOf(2018, 1))
	vps := []uint32{10, 100, 101, 102}
	m := ChurnModel{Seed: 5, UnitEventRate: 0.3, VPEventRate: 0.1, TransitFlipShare: 0.4}

	ov0 := m.OverlayAt(g, 0, vps)
	if len(ov0.AnnounceOverride) != 0 || len(ov0.ExportFlip) != 0 || len(ov0.VPSalt) != 0 {
		t.Errorf("t=0 overlay not empty: %d/%d/%d",
			len(ov0.AnnounceOverride), len(ov0.ExportFlip), len(ov0.VPSalt))
	}
	ov30 := m.OverlayAt(g, 30, vps)
	if len(ov30.AnnounceOverride)+len(ov30.ExportFlip) == 0 {
		t.Fatal("t=30d overlay has no unit events")
	}
	// Overlays must change some paths but not most.
	e0 := NewEngine(g, ov0)
	e30 := NewEngine(g, ov30)
	changed, total := 0, 0
	for _, u := range g.Groups {
		r0 := e0.PathsAt(u, vps)
		r30 := e30.PathsAt(u, vps)
		for i := range r0 {
			total++
			if !r0[i].Path.Equal(r30[i].Path) {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Error("churn changed nothing")
	}
	if changed > total/2 {
		t.Errorf("churn changed %d/%d paths — too aggressive", changed, total)
	}
	// Announce overrides always keep at least one neighbor.
	for id, ann := range ov30.AnnounceOverride {
		if len(ann) == 0 {
			t.Errorf("unit %d override empty", id)
		}
	}
}

// TestApplyUnitVersionMatchesOverlayAt pins the consistency contract
// between update generation and snapshot overlays: starting from
// OverlayAt(t1) and applying each unit's version transitions must yield
// exactly the unit mutations OverlayAt(t2) would produce. Without this,
// synthesized update streams would disagree with RIB diffs.
func TestApplyUnitVersionMatchesOverlayAt(t *testing.T) {
	p := topology.DefaultParams(23)
	p.Scale = 0.008
	g := topology.Generate(p, topology.EraOf(2019, 1))
	m := ChurnModel{Seed: 9, UnitEventRate: 0.6, VPEventRate: 0.1,
		TransitFlipShare: 0.5, PrefixMobileShare: 0.02, PrefixBaseMoveRate: 0.01}
	vps := []uint32{10, 100, 101}
	t1, t2 := 3.0, 9.0

	evolved := m.OverlayAt(g, t1, vps)
	for _, u := range g.Groups {
		v1, v2 := m.UnitVersion(u, t1), m.UnitVersion(u, t2)
		vPrev := v1
		for k := v1 + 1; k <= v2; k++ {
			m.ApplyUnitVersion(g, evolved, u, vPrev, k)
			vPrev = k
		}
	}
	target := m.OverlayAt(g, t2, vps)

	// Announce overrides must match exactly.
	if len(evolved.AnnounceOverride) != len(target.AnnounceOverride) {
		t.Fatalf("override count %d != %d", len(evolved.AnnounceOverride), len(target.AnnounceOverride))
	}
	for id, want := range target.AnnounceOverride {
		got, ok := evolved.AnnounceOverride[id]
		if !ok {
			t.Fatalf("unit %d override missing after evolution", id)
		}
		if len(got) != len(want) {
			t.Fatalf("unit %d override size %d != %d", id, len(got), len(want))
		}
		for n, pol := range want {
			if got[n] != pol {
				t.Fatalf("unit %d neighbor %d: %+v != %+v", id, n, got[n], pol)
			}
		}
	}
	// Export flips must match exactly.
	if len(evolved.ExportFlip) != len(target.ExportFlip) {
		t.Fatalf("flip count %d != %d", len(evolved.ExportFlip), len(target.ExportFlip))
	}
	for k := range target.ExportFlip {
		if !evolved.ExportFlip[k] {
			t.Fatalf("flip %+v missing after evolution", k)
		}
	}
}

// TestAltRouteAt checks the runner-up route used by VP shifts: it must
// differ from the best route and be absent when no alternative exists.
// Alternatives come from the final selection step's other candidates
// (other providers, the peer route behind a customer route); a losing
// same-class customer route is not tracked — real vantage points are
// multihomed transits whose alternatives are provider/peer candidates.
func TestAltRouteAt(t *testing.T) {
	u := group(0, 100, map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}, "10.0.0.0/24")
	ases := []*topology.AS{
		{ASN: 1, Tier: topology.TierClique, Peers: []uint32{2}},
		{ASN: 2, Tier: topology.TierClique, Peers: []uint32{1}},
		{ASN: 11, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 12, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 21, Tier: topology.TierStub, Providers: []uint32{11}},
		// VP 24 is dual-homed: two provider-class candidates.
		{ASN: 24, Tier: topology.TierStub, Providers: []uint32{11, 12}},
		{ASN: 100, Tier: topology.TierStub, Providers: []uint32{11, 12}},
	}
	ases[6].Groups = []*topology.PolicyGroup{u}
	g := topology.NewGraph(topology.EraOf(2014, 1), 1, ases, []*topology.PolicyGroup{u})
	e := NewEngine(g, nil)
	e.ComputeUnit(u)

	best, ok := e.RouteAt(24)
	if !ok {
		t.Fatal("no best at 24")
	}
	if !best.Path.Equal(aspath.Seq{24, 11, 100}) {
		t.Fatalf("best at 24 = %v", best.Path)
	}
	alt, ok := e.AltRouteAt(24)
	if !ok {
		t.Fatal("no alt at 24")
	}
	if best.Path.Equal(alt.Path) {
		t.Fatalf("alt equals best: %v", alt.Path)
	}
	if !alt.Path.Equal(aspath.Seq{24, 12, 100}) {
		t.Errorf("alt at 24 = %v", alt.Path)
	}
	// VP 21 has exactly one provider and one route: no alternative.
	if _, ok := e.AltRouteAt(21); ok {
		t.Error("phantom alternative at single-homed stub")
	}
	// The origin has no alternative to itself.
	if _, ok := e.AltRouteAt(100); ok {
		t.Error("origin should have no alternative")
	}
}
